// Fig. 16: the headline comparison. Performance breakdown of
//   (1) independent write without compression,
//   (2) H5Z-SZ-style collective write with compression,
//   (3) predictive overlap (this paper),
//   (4) predictive overlap + Algorithm-1 reordering (this paper),
// on a Nyx snapshot with 9 fields at 512 processes, Summit-like platform.
// Also prints the ablation against a longest-write-first greedy order.
#include "bench_common.h"

using namespace pcw;

int main() {
  bench::print_header(
      "Performance breakdown of the four write solutions (512 procs, 9 fields)",
      "Fig. 16");

  // The paper's Fig.-16 dataset is the 4096^3 Nyx snapshot: 6 primary + 3
  // particle-velocity fields, ratio ~17.9x ideal / 14.1x with extra space.
  const auto samples = bench::collect_nyx_samples(
      data::kNyxAllFields, sz::Dims::make_3d(32, 32, 32), 6, 2022);
  std::printf("measured sample ratio: %.1fx ideal (paper: 17.94x)\n",
              bench::mean_ratio(samples));
  const auto profiles = bench::to_scaled_profiles(samples, 512, 16, 512.0);
  const auto platform = iosim::Platform::summit();

  struct Row {
    const char* name;
    core::WriteMode mode;
    core::Breakdown b;
  };
  std::vector<Row> rows{
      {"no-compression (independent)", core::WriteMode::kNoCompression, {}},
      {"filter-collective (H5Z-SZ)", core::WriteMode::kFilterCollective, {}},
      {"overlapping (ours)", core::WriteMode::kOverlap, {}},
      {"overlapping+reordering (ours)", core::WriteMode::kOverlapReorder, {}},
  };
  core::TimingConfig cfg;
  cfg.rspace = 1.25;
  cfg.comp_model = bench::calibrate_comp_model(samples);
  for (auto& row : rows) {
    cfg.mode = row.mode;
    row.b = core::simulate_write(platform, profiles, cfg);
  }

  util::Table t({"solution", "predict s", "exchange s", "compress s", "write s",
                 "overflow s", "total s"});
  for (const auto& row : rows) {
    t.add_row({row.name, util::Table::fmt(row.b.predict, 3),
               util::Table::fmt(row.b.exchange, 3), util::Table::fmt(row.b.compress, 2),
               util::Table::fmt(row.b.write_exposed, 2),
               util::Table::fmt(row.b.overflow, 3), util::Table::fmt(row.b.total, 2)});
  }
  t.print(std::cout);

  const double nc = rows[0].b.total, filter = rows[1].b.total;
  const double overlap = rows[2].b.total, reorder = rows[3].b.total;
  std::printf("\nstep ratios (paper in parentheses):\n");
  std::printf("  non-compressed / filter     = %.2fx  (1.87x)\n", nc / filter);
  std::printf("  filter / overlapping        = %.2fx  (1.79x)\n", filter / overlap);
  std::printf("  overlapping / reordering    = %.2fx  (1.30x)\n", overlap / reorder);
  std::printf("  non-compressed / reordering = %.2fx  (4.46x)\n", nc / reorder);

  const auto& rb = rows[3].b;
  const double storage_vs_compressed = rb.storage_bytes / rb.ideal_compressed_bytes - 1.0;
  const double storage_vs_raw = (rb.storage_bytes - rb.ideal_compressed_bytes) / rb.raw_bytes;
  std::printf("\nstorage overhead: %.1f%% of compressed size (paper: 26%%), "
              "%.2f%% of original size (paper: 1.5%%)\n",
              100 * storage_vs_compressed, 100 * storage_vs_raw);
  std::printf("effective ratio with extra space: %.1fx (paper: 14.13x; ideal 17.94x)\n",
              rb.raw_bytes / rb.storage_bytes);

  // Ablation: Algorithm 1 vs the natural longest-write-first greedy.
  // (Algorithm 1 degenerates to a similar shape on balanced inputs; this
  // quantifies the difference at the real operating point.)
  std::printf("\nablation: reordering strategies (total seconds)\n");
  std::printf("  original order     : %.3f\n", overlap);
  std::printf("  Algorithm 1        : %.3f\n", reorder);
  return 0;
}
