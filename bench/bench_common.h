// Shared helpers for the figure/table reproduction benches.
//
// Every bench follows the same recipe the paper's evaluation uses:
//   1. generate synthetic Nyx/VPIC/RTM partitions (pcw::data),
//   2. *measure* real compressions of sample partitions (times + sizes +
//      model predictions),
//   3. bootstrap the measured samples to the target process count,
//   4. play the write schedules against the iosim platform model,
//   5. print the paper-shaped rows.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "pcw/kernels.h"
#include "pcw/models.h"
#include "pcw/sim.h"
#include "pcw/text.h"
#include "pcw/workloads.h"

namespace pcw::bench {

/// Measured sample pool for one field.
struct FieldSamples {
  std::string name;
  double abs_error_bound = 0.0;
  std::vector<core::PartitionProfile> pool;
};

/// Compresses one partition for real and records everything the timing
/// engine needs. Times are min-of-2 warm runs: the sample partitions are
/// deliberately small, so a single cold measurement is allocator/page-
/// fault noise, and that noise would be scaled up 512x downstream.
template <typename T>
core::PartitionProfile profile_partition(std::span<const T> data, const sz::Dims& dims,
                                         const sz::Params& params) {
  core::PartitionProfile prof;
  prof.raw_bytes = static_cast<double>(data.size_bytes());
  prof.elem_count = static_cast<double>(data.size());
  const auto est = model::estimate_ratio<T>(data, dims, params);
  prof.predicted_bytes = est.bit_rate / 8.0 * static_cast<double>(data.size());
  prof.predicted_ratio = est.ratio;
  double best = 1e300;
  std::size_t size = 0;
  for (int rep = 0; rep < 2; ++rep) {
    util::trace::StageTimer timer("profile_compress", "bench", "bytes",
                                  data.size_bytes());
    const auto blob = sz::compress<T>(data, dims, params);
    best = std::min(best, timer.seconds());
    size = blob.size();
  }
  prof.comp_seconds = best;
  prof.actual_bytes = static_cast<double>(size);
  return prof;
}

/// Fits the Eq.-(1) compression-throughput model to the measured samples
/// so Algorithm 1's predicted compression times live in this machine's
/// band rather than the paper platform's.
inline model::CompressionThroughputModel calibrate_comp_model(
    const std::vector<FieldSamples>& samples) {
  std::vector<model::ThroughputSample> pts;
  for (const auto& fs : samples) {
    for (const auto& p : fs.pool) {
      if (p.comp_seconds > 0.0 && p.elem_count > 0.0) {
        pts.push_back({8.0 * p.actual_bytes / p.elem_count, p.raw_bytes / p.comp_seconds});
      }
    }
  }
  if (pts.size() < 3) return model::CompressionThroughputModel();
  return model::CompressionThroughputModel::calibrate(pts);
}

/// Measures `n_samples` partitions of every primary Nyx field. Each
/// sample is a distinct `part_dims` block of a larger logical volume.
/// `eb_scale` scales the paper bounds (1.0 = paper config). `threads`
/// feeds sz::Params::threads for each measured compression (0 = all
/// hardware threads).
inline std::vector<FieldSamples> collect_nyx_samples(int n_fields,
                                                     const sz::Dims& part_dims,
                                                     int n_samples, std::uint64_t seed,
                                                     double eb_scale = 1.0,
                                                     unsigned threads = 1) {
  std::vector<FieldSamples> out;
  const sz::Dims volume = sz::Dims::make_3d(
      part_dims.d0, part_dims.d1, part_dims.d2 * static_cast<std::size_t>(n_samples));
  for (int f = 0; f < n_fields; ++f) {
    const auto field = static_cast<data::NyxField>(f);
    const auto info = data::nyx_field_info(field);
    FieldSamples fs;
    fs.name = info.name;
    fs.abs_error_bound = info.abs_error_bound * eb_scale;
    sz::Params params;
    params.error_bound = fs.abs_error_bound;
    params.threads = threads;
    for (int s = 0; s < n_samples; ++s) {
      std::vector<float> block(part_dims.count());
      data::fill_nyx_field(block, part_dims,
                           {0, 0, static_cast<std::size_t>(s) * part_dims.d2}, volume,
                           field, seed);
      fs.pool.push_back(profile_partition<float>(block, part_dims, params));
    }
    out.push_back(std::move(fs));
  }
  return out;
}

/// Measures `n_samples` slices of every VPIC field. `threads` feeds
/// sz::Params::threads for each measured compression.
inline std::vector<FieldSamples> collect_vpic_samples(std::size_t particles_per_sample,
                                                      int n_samples, std::uint64_t seed,
                                                      double eb_scale = 1.0,
                                                      unsigned threads = 1) {
  std::vector<FieldSamples> out;
  const std::uint64_t total =
      particles_per_sample * static_cast<std::uint64_t>(n_samples);
  for (int f = 0; f < data::kVpicAllFields; ++f) {
    const auto field = static_cast<data::VpicField>(f);
    const auto info = data::vpic_field_info(field);
    FieldSamples fs;
    fs.name = info.name;
    fs.abs_error_bound = info.abs_error_bound * eb_scale;
    sz::Params params;
    params.error_bound = fs.abs_error_bound;
    params.threads = threads;
    for (int s = 0; s < n_samples; ++s) {
      std::vector<float> slice(particles_per_sample);
      data::fill_vpic_field(slice, static_cast<std::uint64_t>(s) * particles_per_sample,
                            total, field, seed);
      fs.pool.push_back(profile_partition<float>(
          slice, sz::Dims::make_1d(particles_per_sample), params));
    }
    out.push_back(std::move(fs));
  }
  return out;
}

/// Finds the error-bound scale that hits `target_bit_rate` (averaged over
/// fields) by bisection on the measured samples' geometric structure.
/// Uses the ratio model only (cheap), then the caller re-measures.
template <typename MakeSamples>
double find_eb_scale_for_bitrate(double target_bit_rate, MakeSamples&& probe) {
  double lo = 1e-3, hi = 1e3;
  for (int it = 0; it < 24; ++it) {
    const double mid = std::sqrt(lo * hi);
    const double br = probe(mid);  // mean bit-rate at scale `mid`
    if (br > target_bit_rate) {
      lo = mid;  // bound too tight -> loosen
    } else {
      hi = mid;
    }
  }
  return std::sqrt(lo * hi);
}

/// Bootstraps sample pools to a [rank][field] profile matrix.
inline std::vector<std::vector<core::PartitionProfile>> to_profiles(
    const std::vector<FieldSamples>& samples, int nranks, std::uint64_t seed,
    double jitter = 0.08) {
  std::vector<std::vector<core::PartitionProfile>> pools;
  pools.reserve(samples.size());
  for (const auto& fs : samples) pools.push_back(fs.pool);
  util::Rng rng(seed);
  return core::bootstrap_profiles(pools, nranks, rng, jitter);
}

/// to_profiles + scale_profiles in one step: measurement partitions are
/// small (fast to compress); `scale` grows them to the paper's
/// per-process sizes (e.g. 512 turns a 32^3 sample into a 256^3 rank).
inline std::vector<std::vector<core::PartitionProfile>> to_scaled_profiles(
    const std::vector<FieldSamples>& samples, int nranks, std::uint64_t seed,
    double scale, double jitter = 0.08) {
  auto profiles = to_profiles(samples, nranks, seed, jitter);
  core::scale_profiles(profiles, scale);
  return profiles;
}

/// Mean achieved bit-rate over a sample set.
inline double mean_bit_rate(const std::vector<FieldSamples>& samples) {
  double bits = 0.0, elems = 0.0;
  for (const auto& fs : samples) {
    for (const auto& p : fs.pool) {
      bits += p.actual_bytes * 8.0;
      elems += p.elem_count;
    }
  }
  return elems > 0.0 ? bits / elems : 0.0;
}

inline double mean_ratio(const std::vector<FieldSamples>& samples) {
  double raw = 0.0, comp = 0.0;
  for (const auto& fs : samples) {
    for (const auto& p : fs.pool) {
      raw += p.raw_bytes;
      comp += p.actual_bytes;
    }
  }
  return comp > 0.0 ? raw / comp : 0.0;
}

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("reproduces: %s\n\n", paper_ref.c_str());
}

}  // namespace pcw::bench
