// Fig. 7: independent-write I/O throughput per process vs data size per
// process, at 128 processes — the offline calibration that feeds Eq. (2).
// Reported both for the Summit-like and Bebop-like platform models, plus
// a real-file measurement at thread scale for grounding.
#include "bench_common.h"

#include <filesystem>

#include "pcw/sim.h"
#include "pcw/models.h"

using namespace pcw;

namespace {

void sweep_platform(const iosim::Platform& platform) {
  std::printf("\nplatform: %s (aggregate %.1f GB/s, plateau %.1f MB/s)\n",
              platform.name.c_str(), platform.aggregate_bw / 1e9,
              platform.per_proc_plateau / 1e6);
  util::Table t({"MB/process", "per-proc MB/s", "aggregate GB/s"});
  std::vector<model::WriteSample> samples;
  const int procs = 128;
  for (const double mb : {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0}) {
    std::vector<iosim::WriteJob> jobs(procs);
    for (int i = 0; i < procs; ++i) {
      jobs[static_cast<std::size_t>(i)] = {0.0, mb * 1e6, 0.0, i, 0, i};
    }
    const auto r = simulate_independent(platform, jobs);
    const double per_proc = mb * 1e6 / r.makespan;
    samples.push_back({mb * 1e6, per_proc});
    t.add_row({util::Table::fmt(mb, 0), util::Table::fmt(per_proc / 1e6, 2),
               util::Table::fmt(per_proc * procs / 1e9, 2)});
  }
  t.print(std::cout);
  const auto fit = model::WriteThroughputModel::calibrate(samples);
  std::printf("Eq. (2) calibration: C_thr (plateau) = %.1f MB/s, half-size = %.1f MB\n",
              fit.stable_throughput() / 1e6, fit.half_size() / 1e6);
}

}  // namespace

int main() {
  bench::print_header("Independent write throughput per process vs size", "Fig. 7");
  sweep_platform(iosim::Platform::summit());
  sweep_platform(iosim::Platform::bebop());

  // Grounding: a real shared file written by 8 simulated ranks on this
  // machine (page-cache speeds, so magnitudes differ; the *shape* —
  // rising then saturating — is what Fig. 7 shows).
  std::printf("\nreal shared-file measurement (8 ranks, this machine):\n");
  util::Table t({"MB/process", "per-proc MB/s"});
  const std::string path =
      (std::filesystem::temp_directory_path() / "pcw_fig07.pcw5").string();
  for (const double mb : {1.0, 4.0, 16.0, 64.0}) {
    auto file = h5::File::create(path);
    const auto bytes = static_cast<std::size_t>(mb * 1e6);
    std::vector<std::uint8_t> payload(bytes, 0x5a);
    util::Timer timer;
    mpi::Runtime::run(8, [&](mpi::Comm& comm) {
      const auto off = file->alloc_collective(comm, bytes * 8);
      file->pwrite(off + static_cast<std::uint64_t>(comm.rank()) * bytes, payload);
      comm.barrier();
    });
    const double dt = timer.seconds();
    t.add_row({util::Table::fmt(mb, 0), util::Table::fmt(mb * 1e6 / dt / 1e6, 1)});
  }
  t.print(std::cout);
  std::remove(path.c_str());
  return 0;
}
