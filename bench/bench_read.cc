// Read-path benchmark: the measured baseline for the parallel restart /
// read engine, emitted as machine-readable JSON with `--json` (schema
// pcw.bench_read.v1 -> BENCH_read.json). Drives the engine through the
// public pcw:: façade (Writer/Reader/run).
//
// Scenarios:
//   * full_restart  — N ranks read every field whole, across a thread
//                     sweep and with the read/decode pipeline on/off
//                     (threads=1 + pipeline=off is the serial baseline).
//                     serial_noverify/serial_verify rows isolate the cost
//                     of checksum verification (off vs blob-level CRC);
//                     check_bench.py gates the overhead at < 5%.
//   * repartition   — M != N ranks restart from an N-rank checkpoint via
//                     restart_region hyperslabs.
//   * sparse_slice  — analysis slices (one plane, a small box) where the
//                     v2 block index pays: only intersecting blocks
//                     decode, against a full-field reference datapoint.
//
// Standalone on purpose (no google-benchmark): CI runs
// `bench_read --json --smoke` so the read path can never silently stop
// compiling.
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <stdexcept>
#include <vector>

#include "pcw/pcw.h"
#include "pcw/text.h"
#include "pcw/workloads.h"

namespace {

using namespace pcw;

struct Options {
  Dims dims = Dims::make_3d(128, 128, 128);
  int fields = 4;
  int write_ranks = 4;
  int reps = 3;
  std::vector<unsigned> threads{1, 2, 4};
  bool smoke = false;
  bool json = false;
  std::string json_path = "BENCH_read.json";
};

struct BenchResult {
  std::string scenario;
  std::string label;
  int ranks = 0;
  unsigned threads = 0;
  bool pipeline = true;
  double seconds = 0.0;
  double mb_per_s = 0.0;
  std::uint64_t bytes_read = 0;
  std::uint64_t blocks_decoded = 0;
  std::uint64_t blocks_total = 0;
};

[[noreturn]] void usage(int code) {
  std::fprintf(stderr,
               "usage: bench_read [--json [PATH]] [--smoke] [--dims X,Y,Z]\n"
               "                  [--fields N] [--write-ranks N] [--reps N]\n"
               "                  [--threads LIST]\n"
               "  --json [PATH]   write pcw.bench_read.v1 JSON (default %s)\n"
               "  --smoke         small field, 1 rep (CI compile+run gate)\n"
               "  --threads LIST  comma-separated decode thread counts\n",
               "BENCH_read.json");
  std::exit(code);
}

std::size_t parse_count(const std::string& s) {
  try {
    std::size_t used = 0;
    const auto v = std::stoull(s, &used);
    if (used != s.size()) throw std::invalid_argument(s);
    return static_cast<std::size_t>(v);
  } catch (const std::exception&) {
    std::fprintf(stderr, "error: '%s' is not a number\n", s.c_str());
    usage(2);
  }
}

std::vector<std::size_t> parse_list(const std::string& s) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t next = s.find(',', pos);
    if (next == std::string::npos) next = s.size();
    out.push_back(parse_count(s.substr(pos, next - pos)));
    pos = next + 1;
  }
  return out;
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s requires a value\n", flag);
        usage(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage(0);
    } else if (arg == "--smoke") {
      opt.smoke = true;
    } else if (arg == "--json") {
      opt.json = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') opt.json_path = argv[++i];
    } else if (arg == "--dims") {
      const auto v = parse_list(next_value("--dims"));
      if (v.size() != 3 || v[0] == 0 || v[1] == 0 || v[2] == 0) {
        std::fprintf(stderr, "error: --dims expects X,Y,Z > 0\n");
        usage(2);
      }
      opt.dims = Dims::make_3d(v[0], v[1], v[2]);
    } else if (arg == "--fields") {
      opt.fields = static_cast<int>(parse_count(next_value("--fields")));
    } else if (arg == "--write-ranks") {
      opt.write_ranks = static_cast<int>(parse_count(next_value("--write-ranks")));
    } else if (arg == "--reps") {
      opt.reps = static_cast<int>(parse_count(next_value("--reps")));
    } else if (arg == "--threads") {
      opt.threads.clear();
      for (const auto t : parse_list(next_value("--threads"))) {
        opt.threads.push_back(static_cast<unsigned>(t));
      }
      if (opt.threads.empty()) usage(2);
    } else {
      std::fprintf(stderr, "error: unknown argument '%s'\n", arg.c_str());
      usage(2);
    }
  }
  if (opt.smoke) {
    // Each of the 2 writers owns 32x64x32 = 65536 elements -> two sz
    // blocks per partition, so the sparse-slice rows keep a strict
    // blocks_decoded < blocks_total for CI to assert on.
    opt.dims = Dims::make_3d(64, 64, 32);
    opt.fields = 2;
    opt.write_ranks = 2;
    opt.reps = 1;
    opt.threads = {1, 2};
  }
  if (opt.fields < 1 || opt.fields > data::kNyxAllFields || opt.write_ranks < 1 ||
      opt.dims.d0 % static_cast<std::size_t>(opt.write_ranks) != 0) {
    std::fprintf(stderr, "error: need 1..%d fields and write-ranks dividing dims[0]\n",
                 data::kNyxAllFields);
    usage(2);
  }
  return opt;
}

template <typename Fn>
double best_seconds(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    util::Timer timer;
    fn();
    best = std::min(best, timer.seconds());
  }
  return best;
}

void emit_json(const Options& opt, const std::vector<BenchResult>& results,
               std::uint64_t raw_bytes, std::uint64_t file_bytes) {
  std::ofstream out(opt.json_path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", opt.json_path.c_str());
    std::exit(1);
  }
  out << "{\n";
  out << "  \"schema\": \"pcw.bench_read.v1\",\n";
  out << "  \"case\": {\n";
  out << "    \"dims\": [" << opt.dims.d0 << ", " << opt.dims.d1 << ", "
      << opt.dims.d2 << "],\n";
  out << "    \"dtype\": \"float32\",\n";
  out << "    \"fields\": " << opt.fields << ",\n";
  out << "    \"write_ranks\": " << opt.write_ranks << ",\n";
  out << "    \"reps\": " << opt.reps << ",\n";
  out << "    \"smoke\": " << (opt.smoke ? "true" : "false") << "\n";
  out << "  },\n";
  out << "  \"raw_bytes\": " << raw_bytes << ",\n";
  out << "  \"file_bytes\": " << file_bytes << ",\n";
  out << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    char line[320];
    std::snprintf(line, sizeof line,
                  "    {\"scenario\": \"%s\", \"label\": \"%s\", \"ranks\": %d, "
                  "\"threads\": %u, \"pipeline\": %s, \"seconds\": %.6f, "
                  "\"mb_per_s\": %.1f, \"bytes_read\": %llu, "
                  "\"blocks_decoded\": %llu, \"blocks_total\": %llu}%s\n",
                  r.scenario.c_str(), r.label.c_str(), r.ranks, r.threads,
                  r.pipeline ? "true" : "false", r.seconds, r.mb_per_s,
                  static_cast<unsigned long long>(r.bytes_read),
                  static_cast<unsigned long long>(r.blocks_decoded),
                  static_cast<unsigned long long>(r.blocks_total),
                  i + 1 < results.size() ? "," : "");
    out << line;
  }
  out << "  ]\n}\n";
  std::printf("wrote %s\n", opt.json_path.c_str());
}

[[noreturn]] void die(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.to_string().c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("pcw_bench_read_" + std::to_string(::getpid()) + ".pcw5"))
          .string();

  std::printf("bench_read: %zux%zux%zu f32, %d field(s), %d write rank(s), reps=%d\n",
              opt.dims.d0, opt.dims.d1, opt.dims.d2, opt.fields, opt.write_ranks,
              opt.reps);

  // ---- checkpoint write (fixture, not timed) ------------------------------
  const Dims local = Dims::make_3d(
      opt.dims.d0 / static_cast<std::size_t>(opt.write_ranks), opt.dims.d1,
      opt.dims.d2);
  std::vector<std::vector<std::vector<float>>> blocks(
      static_cast<std::size_t>(opt.fields));
  for (int f = 0; f < opt.fields; ++f) {
    auto& per_rank = blocks[static_cast<std::size_t>(f)];
    per_rank.resize(static_cast<std::size_t>(opt.write_ranks));
    for (int r = 0; r < opt.write_ranks; ++r) {
      auto& vec = per_rank[static_cast<std::size_t>(r)];
      vec.resize(local.count());
      data::fill_nyx_field(vec, local, {static_cast<std::size_t>(r) * local.d0, 0, 0},
                           opt.dims, static_cast<data::NyxField>(f), 1234);
    }
  }
  {
    Result<Writer> writer =
        Writer::create(path, WriterOptions().with_mode(WriteMode::kOverlapReorder));
    if (!writer.ok()) die(writer.status());
    const Status ran = run(opt.write_ranks, [&](Rank& rank) {
      std::vector<Field> fields(static_cast<std::size_t>(opt.fields));
      for (int f = 0; f < opt.fields; ++f) {
        auto& field = fields[static_cast<std::size_t>(f)];
        const auto info = data::nyx_field_info(static_cast<data::NyxField>(f));
        field.name = info.name;
        field.local = FieldView::of(blocks[static_cast<std::size_t>(f)]
                                          [static_cast<std::size_t>(rank.rank())],
                                    local);
        field.global_dims = opt.dims;
        field.codec = CodecOptions().with_error_bound(info.abs_error_bound);
      }
      const Result<WriteReport> report = writer->write(rank, fields);
      if (!report.ok()) throw std::runtime_error(report.status().to_string());
      const Status closed = writer->close(rank);
      if (!closed.ok()) throw std::runtime_error(closed.to_string());
    });
    if (!ran.ok()) die(ran);
  }
  const Result<Reader> probe = Reader::open(path);
  if (!probe.ok()) die(probe.status());
  const std::uint64_t file_bytes = probe->file_bytes();
  const std::uint64_t raw_bytes =
      static_cast<std::uint64_t>(opt.fields) * opt.dims.count() * sizeof(float);
  std::printf("checkpoint: %.2f MB on disk (raw %.2f MB)\n", file_bytes / 1e6,
              static_cast<double>(raw_bytes) / 1e6);

  std::vector<ReadRequest> all_fields(static_cast<std::size_t>(opt.fields));
  for (int f = 0; f < opt.fields; ++f) {
    all_fields[static_cast<std::size_t>(f)].name =
        data::nyx_field_info(static_cast<data::NyxField>(f)).name;
  }

  std::vector<BenchResult> results;
  auto record = [&](BenchResult r) {
    std::printf("  %-14s %-10s ranks=%d threads=%u pipeline=%d  %8.4f s  %9.1f MB/s"
                "  (%llu/%llu blocks)\n",
                r.scenario.c_str(), r.label.empty() ? "-" : r.label.c_str(), r.ranks,
                r.threads, r.pipeline ? 1 : 0, r.seconds, r.mb_per_s,
                static_cast<unsigned long long>(r.blocks_decoded),
                static_cast<unsigned long long>(r.blocks_total));
    results.push_back(std::move(r));
  };

  /// One timed restart: `ranks` ranks, each reading `region_of(rank)` (or
  /// everything when it returns nullopt) for every field. The Reader is
  /// opened per configuration (untimed); only the reads are measured.
  auto timed_restart = [&](const char* scenario, const char* label, int ranks,
                           unsigned threads, bool pipeline, auto&& region_of,
                           VerifyMode verify = VerifyMode::kBlock) {
    BenchResult res;
    res.scenario = scenario;
    res.label = label;
    res.ranks = ranks;
    res.threads = threads;
    res.pipeline = pipeline;
    const Result<Reader> reader = Reader::open(
        path, ReaderOptions()
                  .with_decompress_threads(threads)
                  .with_pipeline(pipeline)
                  .with_verify(verify));
    if (!reader.ok()) die(reader.status());
    std::vector<ReadReport> reports(static_cast<std::size_t>(ranks));
    res.seconds = best_seconds(opt.reps, [&] {
      reports.assign(static_cast<std::size_t>(ranks), ReadReport{});
      const Status ran = run(ranks, [&](Rank& rank) {
        std::vector<ReadRequest> requests = all_fields;
        for (auto& req : requests) req.region = region_of(rank.rank());
        const auto got = reader->read_fields<float>(
            rank, requests, &reports[static_cast<std::size_t>(rank.rank())]);
        // Thrown failures abort the whole rank group cleanly (exit()
        // from a rank thread would leave siblings blocked in barriers).
        if (!got.ok()) throw std::runtime_error(got.status().to_string());
      });
      if (!ran.ok()) die(ran);
    });
    std::uint64_t delivered = 0;
    for (const auto& rep : reports) {
      res.bytes_read += rep.bytes_read;
      res.blocks_decoded += rep.blocks_decoded;
      res.blocks_total += rep.blocks_total;
      delivered += rep.elements_out * sizeof(float);
    }
    // Rate against bytes *delivered* (a full restart delivers the whole
    // checkpoint to every rank), so scenarios compare like-for-like.
    res.mb_per_s = res.seconds > 0.0
                       ? static_cast<double>(delivered) / res.seconds / 1e6
                       : 0.0;
    record(std::move(res));
  };

  auto whole_field = [](int) { return std::optional<Region>{}; };

  // ---- scenario 1: full restart, thread sweep + serial baseline ----------
  std::printf("full restart (%d ranks, every field whole):\n", opt.write_ranks);
  timed_restart("full_restart", "serial", opt.write_ranks, 1, /*pipeline=*/false,
                whole_field);
  // Verification cost, isolated on the serial path: no checks vs the
  // blob-level CRC pass (one sequential CRC32C over every stored byte).
  timed_restart("full_restart", "serial_noverify", opt.write_ranks, 1,
                /*pipeline=*/false, whole_field, VerifyMode::kOff);
  timed_restart("full_restart", "serial_verify", opt.write_ranks, 1,
                /*pipeline=*/false, whole_field, VerifyMode::kBlob);
  for (const unsigned threads : opt.threads) {
    timed_restart("full_restart", "", opt.write_ranks, threads, /*pipeline=*/true,
                  whole_field);
  }

  // ---- scenario 2: repartitioned restart ----------------------------------
  std::vector<int> read_rank_counts;
  if (opt.write_ranks > 1) read_rank_counts.push_back(opt.write_ranks / 2);
  read_rank_counts.push_back(opt.write_ranks * 2);
  for (const int ranks : read_rank_counts) {
    std::printf("repartitioned restart (%d -> %d ranks):\n", opt.write_ranks, ranks);
    timed_restart("repartition", "", ranks, 1, /*pipeline=*/true, [&](int rank) {
      return std::optional<Region>(restart_region(opt.dims, rank, ranks));
    });
  }

  // ---- scenario 3: sparse analysis slices ---------------------------------
  std::printf("sparse analysis slices (1 rank):\n");
  struct Slice {
    const char* label;
    Region region;
  };
  const std::size_t midx = opt.dims.d0 / 2;
  const std::size_t box = std::min<std::size_t>(
      8, std::min({opt.dims.d0, opt.dims.d1, opt.dims.d2}));
  const Slice slices[] = {
      {"plane", {{midx, 0, 0}, {midx + 1, opt.dims.d1, opt.dims.d2}}},
      {"box8", {{midx, 0, 0}, {midx + box, box, box}}},
      {"full_ref", Region::of(opt.dims)},
  };
  const std::string field0 = all_fields[0].name;
  for (const Slice& s : slices) {
    BenchResult res;
    res.scenario = "sparse_slice";
    res.label = s.label;
    res.ranks = 1;
    res.threads = 1;
    res.pipeline = false;
    ReadReport stats;
    res.seconds = best_seconds(opt.reps, [&] {
      stats = ReadReport{};
      const auto out = probe->read_region<float>(field0, s.region, &stats);
      if (!out.ok()) die(out.status());
      if (out->size() != s.region.count()) {
        std::fprintf(stderr, "error: region element count\n");
        std::exit(1);
      }
    });
    res.bytes_read = stats.bytes_read;
    res.blocks_decoded = stats.blocks_decoded;
    res.blocks_total = stats.blocks_total;
    // Rate against the bytes the slice delivers, not the whole field.
    res.mb_per_s =
        res.seconds > 0.0
            ? static_cast<double>(s.region.count()) * sizeof(float) / res.seconds / 1e6
            : 0.0;
    std::printf("  %-14s %-10s %llu/%llu blocks, %8.4f s, %.2f MB payload\n",
                res.scenario.c_str(), res.label.c_str(),
                static_cast<unsigned long long>(res.blocks_decoded),
                static_cast<unsigned long long>(res.blocks_total), res.seconds,
                static_cast<double>(res.bytes_read) / 1e6);
    results.push_back(std::move(res));
  }

  // The acceptance gate this bench exists for: a multi-threaded pipelined
  // full restart must not lose to the serial baseline.
  double serial = 0.0, best_mt = 1e300;
  for (const BenchResult& r : results) {
    if (r.scenario != "full_restart") continue;
    if (r.label == "serial") serial = r.seconds;
    else if (r.threads > 1) best_mt = std::min(best_mt, r.seconds);
  }
  if (serial > 0.0 && best_mt < 1e300) {
    std::printf("full restart: serial %.4f s vs best multi-threaded %.4f s (%.2fx)\n",
                serial, best_mt, serial / best_mt);
  }

  if (opt.json) emit_json(opt, results, raw_bytes, file_bytes);
  std::filesystem::remove(path);
  return 0;
}
