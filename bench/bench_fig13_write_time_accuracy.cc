// Fig. 13: accuracy of the Eq.-(2) write-time estimate across bit-rates.
// The estimator deliberately uses a *stable* per-process throughput
// (plateau); the "actual" write times come from the platform model's
// size-dependent curve under contention — reproducing the paper's
// observation that accuracy drops at low bit-rates (tiny requests), and
// that this does not matter for the ordering decisions.
#include "bench_common.h"

#include "pcw/sim.h"
#include "pcw/models.h"
#include "pcw/text.h"

using namespace pcw;

int main() {
  bench::print_header("Write-time estimation accuracy vs bit-rate", "Fig. 13");

  const auto platform = iosim::Platform::summit();
  const int procs = 64;
  const double elems = 256.0 * 256 * 256 / 4;  // per-partition element count

  // Offline calibration: per-process write throughput at several sizes
  // (the Fig. 7 procedure) -> stable C_thr.
  std::vector<model::WriteSample> cal;
  for (const double mb : {5.0, 10.0, 20.0, 50.0, 100.0}) {
    std::vector<iosim::WriteJob> jobs(128);
    for (int i = 0; i < 128; ++i) jobs[static_cast<std::size_t>(i)] = {0.0, mb * 1e6, 0.0, i, 0, i};
    const auto r = simulate_independent(platform, jobs);
    cal.push_back({mb * 1e6, mb * 1e6 / r.makespan});
  }
  const auto wmodel = model::WriteThroughputModel::calibrate(cal);
  std::printf("calibrated C_thr = %.2f MB/s\n\n", wmodel.stable_throughput() / 1e6);

  util::Table t({"bit-rate", "size/proc MiB", "predicted s", "actual s", "error %"});
  std::vector<double> preds, acts;
  for (const double br : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0}) {
    const double bytes = br * elems / 8.0;
    // Actual: 64 processes writing simultaneously (independent async).
    std::vector<iosim::WriteJob> jobs(static_cast<std::size_t>(procs));
    for (int i = 0; i < procs; ++i) {
      jobs[static_cast<std::size_t>(i)] = {0.0, bytes, 0.0, i, 0, i};
    }
    const double actual = simulate_independent(platform, jobs).makespan;
    const double predicted = wmodel.predict_time(bytes);
    preds.push_back(predicted);
    acts.push_back(actual);
    t.add_row({util::Table::fmt(br, 2), util::Table::fmt(bytes / 1048576.0, 2),
               util::Table::fmt(predicted, 3), util::Table::fmt(actual, 3),
               util::Table::fmt(100 * (predicted - actual) / actual, 1)});
  }
  t.print(std::cout);
  std::printf("\noverall MAPE %.1f%% — larger at low bit-rates (tiny writes get "
              "below-plateau throughput), as the paper reports.\n",
              100 * util::mape(preds, acts));

  // And the paper's defence: ordering decisions are insensitive to the
  // plateau error. Check Algorithm 1 picks the same order under the
  // predicted and the actual write times.
  std::vector<core::ScheduledTask> by_pred(4), by_act(4);
  const double brs[4] = {0.5, 1.5, 3.0, 6.0};
  for (int f = 0; f < 4; ++f) {
    const double bytes = brs[f] * elems / 8.0;
    by_pred[static_cast<std::size_t>(f)] = {0.3 + 0.05 * f, wmodel.predict_time(bytes)};
    by_act[static_cast<std::size_t>(f)] = {
        0.3 + 0.05 * f, bytes / platform.per_proc_throughput(bytes)};
  }
  const auto o1 = core::optimize_order(by_pred);
  const auto o2 = core::optimize_order(by_act);
  std::printf("Algorithm-1 order by predicted times: ");
  for (const int i : o1) std::printf("%d ", i);
  std::printf("| by actual times: ");
  for (const int i : o2) std::printf("%d ", i);
  std::printf("%s\n", o1 == o2 ? "(identical)" : "(different)");
  return 0;
}
