// Table I: tested datasets. Prints the paper's inventory next to the
// synthetic stand-ins this reproduction generates (scaled to one node).
#include "bench_common.h"

int main() {
  using pcw::util::Table;
  pcw::bench::print_header("Tested datasets", "Table I");

  Table paper({"name", "description", "scale (paper)", "size (paper)"});
  paper.add_row({"nyx", "Cosmology simulation", "4096^3", "2.47 TB"});
  paper.add_row({"", "", "2048^3", "206.15 GB"});
  paper.add_row({"", "", "1024^3", "25.76 GB"});
  paper.add_row({"", "", "512^3", "3.22 GB"});
  paper.add_row({"VPIC", "Particle simulation", "161,297,451,573", "4.62 TB"});
  paper.print(std::cout);

  std::printf("\nsynthetic stand-ins used by this reproduction:\n\n");
  Table ours({"name", "generator", "fields", "scale (here)", "size (here)"});

  const pcw::sz::Dims nyx_small = pcw::sz::Dims::make_3d(128, 128, 128);
  const pcw::sz::Dims nyx_large = pcw::sz::Dims::make_3d(256, 256, 256);
  const std::uint64_t vpic_n = 64ull << 20;
  ours.add_row({"nyx", "fractal lognormal grids", "6 (+3 particle)",
                "128^3..256^3",
                Table::fmt_bytes(static_cast<double>(nyx_small.count()) * 4 * 6) + ".." +
                    Table::fmt_bytes(static_cast<double>(nyx_large.count()) * 4 * 9)});
  ours.add_row({"VPIC", "cell-sorted drifting Maxwellian", "8",
                std::to_string(vpic_n) + " particles",
                Table::fmt_bytes(static_cast<double>(vpic_n) * 4 * 8)});
  ours.add_row({"RTM", "Ricker wavefield", "1", "256^3",
                Table::fmt_bytes(static_cast<double>(nyx_large.count()) * 4)});
  ours.print(std::cout);

  // Show the generators actually run and compress in the paper's regime.
  const auto samples =
      pcw::bench::collect_nyx_samples(pcw::data::kNyxPrimaryFields,
                                      pcw::sz::Dims::make_3d(32, 32, 32), 2, 42);
  std::printf("\nNyx @ paper error bounds: overall ratio %.1fx (paper: ~16x)\n",
              pcw::bench::mean_ratio(samples));
  const auto vpic =
      pcw::bench::collect_vpic_samples(1 << 16, 2, 42);
  std::printf("VPIC @ suggested config:  overall ratio %.1fx (paper: 13.8x)\n",
              pcw::bench::mean_ratio(vpic));
  return 0;
}
