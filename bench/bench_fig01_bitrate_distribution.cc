// Fig. 1: compression bit-rate distribution on a Nyx dataset with 512
// partitions, every partition using the same compression configuration.
// The spread across partitions is the reason naive pre-allocation fails.
#include "bench_common.h"

#include "pcw/text.h"

int main() {
  using namespace pcw;
  bench::print_header("Compression bit-rate distribution, 512 partitions", "Fig. 1");

  const int kPartitions = 512;
  const sz::Dims part = sz::Dims::make_3d(32, 32, 32);
  const auto dec = data::decompose(sz::Dims::make_3d(256, 256, 256), kPartitions);

  std::vector<double> bitrates;
  sz::Params params;
  params.error_bound = data::nyx_field_info(data::NyxField::kBaryonDensity).abs_error_bound;
  std::vector<float> block(part.count());
  for (int r = 0; r < kPartitions; ++r) {
    data::fill_nyx_field(block, dec.local, dec.origin_of(r),
                         sz::Dims::make_3d(256, 256, 256),
                         data::NyxField::kBaryonDensity, 2022);
    const auto blob = sz::compress<float>(block, dec.local, params);
    bitrates.push_back(sz::bit_rate(blob.size(), block.size()));
  }

  const double lo = util::quantile(bitrates, 0.0);
  const double hi = util::quantile(bitrates, 1.0);
  util::Histogram hist(lo, hi * 1.0001, 24);
  hist.add_all(bitrates);
  std::printf("%s\n", hist.ascii(60).c_str());

  util::Table t({"statistic", "bits/value"});
  t.add_row({"min", util::Table::fmt(lo)});
  t.add_row({"p25", util::Table::fmt(util::quantile(bitrates, 0.25))});
  t.add_row({"median", util::Table::fmt(util::median(bitrates))});
  t.add_row({"p75", util::Table::fmt(util::quantile(bitrates, 0.75))});
  t.add_row({"max", util::Table::fmt(hi)});
  t.print(std::cout);
  std::printf(
      "\nshape check: wide spread (max/min = %.2fx) under one config, as in the paper\n",
      hi / lo);
  return 0;
}
