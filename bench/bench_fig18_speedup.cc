// Fig. 18: overall improvement of the proposed solution over the previous
// H5Z-SZ-style write, plus storage overhead, (a, b) across compression
// ratios at 512 processes and (c, d) across scales at target bit-rate 2.
// The dashed red line of the paper (HDF5 without compression) is printed
// as its own column.
#include "bench_common.h"

using namespace pcw;

namespace {

void sweep_ratio(const std::string& dataset, bool is_vpic) {
  std::printf("\n--- (%s) improvement vs compression ratio, 512 procs, summit ---\n",
              dataset.c_str());
  util::Table t({"bit-rate", "ratio", "vs filter", "vs no-comp", "filter vs no-comp",
                 "storage ovh %"});
  const auto platform = iosim::Platform::summit();
  for (const double target_br : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    auto probe = [&](double eb_scale) {
      const auto s = is_vpic ? bench::collect_vpic_samples(1 << 16, 1, 3, eb_scale)
                             : bench::collect_nyx_samples(data::kNyxPrimaryFields,
                                                          sz::Dims::make_3d(32, 32, 32),
                                                          1, 3, eb_scale);
      return bench::mean_bit_rate(s);
    };
    const double eb_scale = bench::find_eb_scale_for_bitrate(target_br, probe);
    const auto samples =
        is_vpic ? bench::collect_vpic_samples(1 << 16, 3, 5, eb_scale)
                : bench::collect_nyx_samples(data::kNyxPrimaryFields,
                                             sz::Dims::make_3d(32, 32, 32), 3, 5,
                                             eb_scale);
    const auto profiles = bench::to_scaled_profiles(samples, 512, 23, 512.0);
    core::TimingConfig cfg;
    cfg.comp_model = bench::calibrate_comp_model(samples);
    cfg.mode = core::WriteMode::kNoCompression;
    const auto nc = core::simulate_write(platform, profiles, cfg);
    cfg.mode = core::WriteMode::kFilterCollective;
    const auto filter = core::simulate_write(platform, profiles, cfg);
    cfg.mode = core::WriteMode::kOverlapReorder;
    const auto ours = core::simulate_write(platform, profiles, cfg);
    t.add_row({util::Table::fmt(bench::mean_bit_rate(samples), 2),
               util::Table::fmt(bench::mean_ratio(samples), 1),
               util::Table::fmt(filter.total / ours.total, 2) + "x",
               util::Table::fmt(nc.total / ours.total, 2) + "x",
               util::Table::fmt(nc.total / filter.total, 2) + "x",
               util::Table::fmt(
                   100 * (ours.storage_bytes / ours.ideal_compressed_bytes - 1.0), 1)});
  }
  t.print(std::cout);
}

void sweep_scale(const std::string& dataset, bool is_vpic) {
  std::printf("\n--- (%s) improvement vs scale, target bit-rate 2, summit ---\n",
              dataset.c_str());
  auto probe = [&](double eb_scale) {
    const auto s = is_vpic ? bench::collect_vpic_samples(1 << 16, 1, 3, eb_scale)
                           : bench::collect_nyx_samples(data::kNyxPrimaryFields,
                                                        sz::Dims::make_3d(32, 32, 32),
                                                        1, 3, eb_scale);
    return bench::mean_bit_rate(s);
  };
  const double eb_scale = bench::find_eb_scale_for_bitrate(2.0, probe);
  const auto samples =
      is_vpic ? bench::collect_vpic_samples(1 << 16, 3, 5, eb_scale)
              : bench::collect_nyx_samples(data::kNyxPrimaryFields,
                                           sz::Dims::make_3d(32, 32, 32), 3, 5,
                                           eb_scale);
  util::Table t({"procs", "vs filter", "vs no-comp", "storage ovh %"});
  const auto platform = iosim::Platform::summit();
  for (const int procs : {256, 512, 1024, 2048, 4096}) {
    const auto profiles = bench::to_scaled_profiles(samples, procs, 29, 512.0);
    core::TimingConfig cfg;
    cfg.comp_model = bench::calibrate_comp_model(samples);
    cfg.mode = core::WriteMode::kNoCompression;
    const auto nc = core::simulate_write(platform, profiles, cfg);
    cfg.mode = core::WriteMode::kFilterCollective;
    const auto filter = core::simulate_write(platform, profiles, cfg);
    cfg.mode = core::WriteMode::kOverlapReorder;
    const auto ours = core::simulate_write(platform, profiles, cfg);
    t.add_row({std::to_string(procs),
               util::Table::fmt(filter.total / ours.total, 2) + "x",
               util::Table::fmt(nc.total / ours.total, 2) + "x",
               util::Table::fmt(
                   100 * (ours.storage_bytes / ours.ideal_compressed_bytes - 1.0), 1)});
  }
  t.print(std::cout);
}

}  // namespace

int main() {
  bench::print_header("Overall improvement + storage overhead", "Fig. 18 (a-d)");
  sweep_ratio("nyx", false);    // Fig. 18a
  sweep_ratio("vpic", true);    // Fig. 18b
  sweep_scale("nyx", false);    // Fig. 18c
  sweep_scale("vpic", true);    // Fig. 18d
  std::printf(
      "\nshape checks (paper): improvement over H5Z-SZ peaks near ratios 10-20x\n"
      "(paper: up to 2.91x); at very low ratios the filter path can lose to\n"
      "non-compressed write; gains are stable-to-rising with scale.\n");
  return 0;
}
