// Time-series benchmark: the measured baseline for the temporal-predictor
// series engine, emitted as machine-readable JSON with `--json` (schema
// pcw.bench_timeseries.v1 -> BENCH_timeseries.json, gated in CI by
// tools/check_bench.py). Drives the engine through the public pcw::
// façade (SeriesWriter / restart / the blob-level codec surface).
//
// Scenarios:
//   * write_series      — S steps of every field through SeriesWriter,
//                         once with temporal deltas + keyframes every K
//                         (label "temporal") and once with K=1, i.e.
//                         per-step spatial checkpoints (label "spatial").
//                         The ratio column is the acceptance metric: the
//                         temporal predictor must buy >= 1.3x on a smooth
//                         series.
//   * restart_mid_chain — restart() mid-chain (worst case) and at a
//                         keyframe (best case), verified bit-for-bit
//                         against a from-scratch chain of full decodes.
//   * sparse_step_read  — one plane of a late step: only the touched
//                         blocks chain-decode, per link.
//
// Standalone on purpose (no google-benchmark): CI runs
// `bench_timeseries --json --smoke` so the series path can never silently
// stop compiling.
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "pcw/pcw.h"
#include "pcw/text.h"
#include "pcw/workloads.h"

namespace {

using namespace pcw;

struct Options {
  Dims dims = Dims::make_3d(128, 64, 64);
  int fields = 2;
  int steps = 12;
  std::uint32_t interval = 6;
  int write_ranks = 2;
  int reps = 3;
  bool smoke = false;
  bool json = false;
  std::string json_path = "BENCH_timeseries.json";
};

struct BenchResult {
  std::string scenario;
  std::string label;
  double seconds = 0.0;
  double mb_per_s = 0.0;
  std::uint64_t raw_bytes = 0;
  std::uint64_t compressed_bytes = 0;
  double ratio = 0.0;
  std::uint64_t steps_chained = 0;
  std::uint64_t blocks_decoded = 0;
  std::uint64_t blocks_total = 0;
  std::uint32_t temporal_blocks = 0;
  bool bit_exact = true;
};

[[noreturn]] void usage(int code) {
  std::fprintf(stderr,
               "usage: bench_timeseries [--json [PATH]] [--smoke] [--dims X,Y,Z]\n"
               "                        [--fields N] [--steps N] [--interval K]\n"
               "                        [--write-ranks N] [--reps N]\n"
               "  --json [PATH]   write pcw.bench_timeseries.v1 JSON (default %s)\n"
               "  --smoke         small series, 1 rep (CI compile+run gate)\n"
               "  --interval K    spatial keyframe every K steps (default 6)\n",
               "BENCH_timeseries.json");
  std::exit(code);
}

std::size_t parse_count(const std::string& s) {
  try {
    std::size_t used = 0;
    const auto v = std::stoull(s, &used);
    if (used != s.size()) throw std::invalid_argument(s);
    return static_cast<std::size_t>(v);
  } catch (const std::exception&) {
    std::fprintf(stderr, "error: '%s' is not a number\n", s.c_str());
    usage(2);
  }
}

std::vector<std::size_t> parse_list(const std::string& s) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t next = s.find(',', pos);
    if (next == std::string::npos) next = s.size();
    out.push_back(parse_count(s.substr(pos, next - pos)));
    pos = next + 1;
  }
  return out;
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s requires a value\n", flag);
        usage(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage(0);
    } else if (arg == "--smoke") {
      opt.smoke = true;
    } else if (arg == "--json") {
      opt.json = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') opt.json_path = argv[++i];
    } else if (arg == "--dims") {
      const auto v = parse_list(next_value("--dims"));
      if (v.size() != 3 || v[0] == 0 || v[1] == 0 || v[2] == 0) {
        std::fprintf(stderr, "error: --dims expects X,Y,Z > 0\n");
        usage(2);
      }
      opt.dims = Dims::make_3d(v[0], v[1], v[2]);
    } else if (arg == "--fields") {
      opt.fields = static_cast<int>(parse_count(next_value("--fields")));
    } else if (arg == "--steps") {
      opt.steps = static_cast<int>(parse_count(next_value("--steps")));
    } else if (arg == "--interval") {
      opt.interval = static_cast<std::uint32_t>(parse_count(next_value("--interval")));
    } else if (arg == "--write-ranks") {
      opt.write_ranks = static_cast<int>(parse_count(next_value("--write-ranks")));
    } else if (arg == "--reps") {
      opt.reps = static_cast<int>(parse_count(next_value("--reps")));
    } else {
      std::fprintf(stderr, "error: unknown argument '%s'\n", arg.c_str());
      usage(2);
    }
  }
  if (opt.smoke) {
    // Each of the 2 writers owns 32x64x32 = 65536 elements -> two sz
    // blocks per partition, so sparse_step_read keeps a strict
    // blocks_decoded < blocks_total for the ratchet to assert on.
    opt.dims = Dims::make_3d(64, 64, 32);
    opt.fields = 2;
    opt.steps = 6;
    opt.interval = 3;
    opt.write_ranks = 2;
    opt.reps = 1;
  }
  if (opt.fields < 1 || opt.fields > data::kNyxAllFields || opt.write_ranks < 1 ||
      opt.steps < 2 || opt.interval < 1 ||
      opt.dims.d0 % static_cast<std::size_t>(opt.write_ranks) != 0) {
    std::fprintf(stderr,
                 "error: need 1..%d fields, steps >= 2, interval >= 1, and "
                 "write-ranks dividing dims[0]\n",
                 data::kNyxAllFields);
    usage(2);
  }
  return opt;
}

/// Step t of field f: the Nyx generator with a gentle per-step drift —
/// the in-situ shape the temporal predictor targets.
constexpr double kStepTime = 0.02;

void fill_step(std::span<float> out, const Dims& local,
               const std::array<std::size_t, 3>& origin, const Dims& global, int f,
               int t) {
  data::fill_nyx_field(out, local, origin, global, static_cast<data::NyxField>(f), 1234,
                       kStepTime * t);
}

template <typename Fn>
double best_seconds(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    util::Timer timer;
    fn();
    best = std::min(best, timer.seconds());
  }
  return best;
}

void emit_json(const Options& opt, const std::vector<BenchResult>& results) {
  std::ofstream out(opt.json_path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", opt.json_path.c_str());
    std::exit(1);
  }
  out << "{\n";
  out << "  \"schema\": \"pcw.bench_timeseries.v1\",\n";
  out << "  \"case\": {\n";
  out << "    \"dims\": [" << opt.dims.d0 << ", " << opt.dims.d1 << ", "
      << opt.dims.d2 << "],\n";
  out << "    \"dtype\": \"float32\",\n";
  out << "    \"fields\": " << opt.fields << ",\n";
  out << "    \"steps\": " << opt.steps << ",\n";
  out << "    \"keyframe_interval\": " << opt.interval << ",\n";
  out << "    \"write_ranks\": " << opt.write_ranks << ",\n";
  out << "    \"reps\": " << opt.reps << ",\n";
  out << "    \"smoke\": " << (opt.smoke ? "true" : "false") << "\n";
  out << "  },\n";
  out << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    char line[400];
    std::snprintf(line, sizeof line,
                  "    {\"scenario\": \"%s\", \"label\": \"%s\", \"seconds\": %.6f, "
                  "\"mb_per_s\": %.1f, \"raw_bytes\": %llu, \"compressed_bytes\": %llu, "
                  "\"ratio\": %.3f, \"steps_chained\": %llu, \"blocks_decoded\": %llu, "
                  "\"blocks_total\": %llu, \"temporal_blocks\": %u, \"bit_exact\": %s}%s\n",
                  r.scenario.c_str(), r.label.c_str(), r.seconds, r.mb_per_s,
                  static_cast<unsigned long long>(r.raw_bytes),
                  static_cast<unsigned long long>(r.compressed_bytes), r.ratio,
                  static_cast<unsigned long long>(r.steps_chained),
                  static_cast<unsigned long long>(r.blocks_decoded),
                  static_cast<unsigned long long>(r.blocks_total), r.temporal_blocks,
                  r.bit_exact ? "true" : "false",
                  i + 1 < results.size() ? "," : "");
    out << line;
  }
  out << "  ]\n}\n";
  std::printf("wrote %s\n", opt.json_path.c_str());
}

[[noreturn]] void die(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.to_string().c_str());
  std::exit(1);
}

/// From-scratch reference: chain full partition decodes from the nearest
/// keyframe through the blob-level codec surface, independently of the
/// restart engine under test.
std::vector<float> reference_at_step(const Reader& reader, const std::string& base,
                                     std::uint32_t step, std::uint32_t interval) {
  const std::uint32_t key = step - step % interval;
  std::vector<float> full;
  for (std::uint32_t s = key; s <= step; ++s) {
    const Result<DatasetInfo> desc = reader.series_step(base, s);
    if (!desc.ok()) die(desc.status());
    std::vector<float> out(desc->dims.count());
    for (std::size_t p = 0; p < desc->partitions.size(); ++p) {
      const PartitionInfo& part = desc->partitions[p];
      const auto payload = reader.partition_payload(desc->name, p);
      if (!payload.ok()) die(payload.status());
      FieldView prev;
      if (!full.empty()) {
        prev = FieldView::of(
            std::span<const float>(full.data() + part.elem_offset, part.elem_count),
            Dims::make_1d(part.elem_count));
      }
      const Result<DecodedBlob> decoded = decode_blob(*payload, prev);
      if (!decoded.ok()) die(decoded.status());
      std::memcpy(out.data() + part.elem_offset, decoded->bytes.data(),
                  decoded->bytes.size());
    }
    full = std::move(out);
  }
  return full;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);
  std::printf(
      "bench_timeseries: %zux%zux%zu f32, %d field(s), %d step(s), K=%u, %d write "
      "rank(s), reps=%d\n",
      opt.dims.d0, opt.dims.d1, opt.dims.d2, opt.fields, opt.steps, opt.interval,
      opt.write_ranks, opt.reps);

  const Dims local = Dims::make_3d(
      opt.dims.d0 / static_cast<std::size_t>(opt.write_ranks), opt.dims.d1,
      opt.dims.d2);
  const std::uint64_t raw_bytes_per_series = static_cast<std::uint64_t>(opt.fields) *
                                             static_cast<std::uint64_t>(opt.steps) *
                                             opt.dims.count() * sizeof(float);

  // Pre-generate every (field, step, rank) slab once; the series write is
  // what gets timed, not the synthetic-data generator.
  std::vector<std::vector<std::vector<float>>> slabs(
      static_cast<std::size_t>(opt.fields * opt.steps));
  for (int f = 0; f < opt.fields; ++f) {
    for (int t = 0; t < opt.steps; ++t) {
      auto& per_rank = slabs[static_cast<std::size_t>(f * opt.steps + t)];
      per_rank.resize(static_cast<std::size_t>(opt.write_ranks));
      for (int r = 0; r < opt.write_ranks; ++r) {
        auto& vec = per_rank[static_cast<std::size_t>(r)];
        vec.resize(local.count());
        fill_step(vec, local, {static_cast<std::size_t>(r) * local.d0, 0, 0}, opt.dims,
                  f, t);
      }
    }
  }

  std::vector<BenchResult> results;
  auto record = [&](BenchResult r) {
    std::printf("  %-18s %-10s %8.4f s %9.1f MB/s  ratio %5.2fx  chain %llu  "
                "(%llu/%llu blocks)%s\n",
                r.scenario.c_str(), r.label.empty() ? "-" : r.label.c_str(), r.seconds,
                r.mb_per_s, r.ratio, static_cast<unsigned long long>(r.steps_chained),
                static_cast<unsigned long long>(r.blocks_decoded),
                static_cast<unsigned long long>(r.blocks_total),
                r.bit_exact ? "" : "  BIT MISMATCH");
    results.push_back(std::move(r));
  };

  // ---- scenario 1: series write, temporal vs per-step spatial -------------
  const std::string path_base =
      (std::filesystem::temp_directory_path() /
       ("pcw_bench_ts_" + std::to_string(::getpid())))
          .string();
  auto write_series_once = [&](const std::string& path, std::uint32_t interval,
                               BenchResult* res) {
    std::filesystem::remove(path);
    Result<Writer> writer = Writer::create(path);
    if (!writer.ok()) die(writer.status());
    std::vector<SeriesStepReport> reports(static_cast<std::size_t>(opt.steps));
    const Status ran = run(opt.write_ranks, [&](Rank& rank) {
      // Thrown failures abort the whole rank group cleanly (exit() from
      // a rank thread would leave siblings blocked in collectives).
      Result<SeriesWriter> series = SeriesWriter::create(
          *writer, SeriesOptions().with_keyframe_interval(interval));
      if (!series.ok()) throw std::runtime_error(series.status().to_string());
      for (int t = 0; t < opt.steps; ++t) {
        std::vector<Field> fields(static_cast<std::size_t>(opt.fields));
        for (int f = 0; f < opt.fields; ++f) {
          auto& field = fields[static_cast<std::size_t>(f)];
          const auto info = data::nyx_field_info(static_cast<data::NyxField>(f));
          field.name = info.name;
          field.local =
              FieldView::of(slabs[static_cast<std::size_t>(f * opt.steps + t)]
                                 [static_cast<std::size_t>(rank.rank())],
                            local);
          field.global_dims = opt.dims;
          field.codec = CodecOptions().with_error_bound(info.abs_error_bound);
        }
        const Result<SeriesStepReport> report = series->write_step(rank, fields);
        if (!report.ok()) throw std::runtime_error(report.status().to_string());
        if (rank.rank() == 0) reports[static_cast<std::size_t>(t)] = *report;
      }
      const Status closed = writer->close(rank);
      if (!closed.ok()) throw std::runtime_error(closed.to_string());
    });
    if (!ran.ok()) die(ran);
    if (res != nullptr) {
      for (const auto& r : reports) res->temporal_blocks += r.temporal_blocks;
    }
    return writer->file_bytes();
  };

  std::printf("series write (%d steps x %d fields):\n", opt.steps, opt.fields);
  const std::string path_t = path_base + "_temporal.pcw5";
  const std::string path_s = path_base + "_spatial.pcw5";
  BenchResult wt, ws;
  wt.scenario = ws.scenario = "write_series";
  wt.label = "temporal";
  ws.label = "spatial";
  std::uint64_t file_bytes_t = 0, file_bytes_s = 0;
  wt.seconds = best_seconds(opt.reps, [&] {
    wt.temporal_blocks = 0;
    file_bytes_t = write_series_once(path_t, opt.interval, &wt);
  });
  ws.seconds = best_seconds(opt.reps, [&] {
    file_bytes_s = write_series_once(path_s, 1, nullptr);
  });
  for (BenchResult* r : {&wt, &ws}) {
    r->raw_bytes = raw_bytes_per_series;
    r->compressed_bytes = r == &wt ? file_bytes_t : file_bytes_s;
    r->ratio = static_cast<double>(r->raw_bytes) / static_cast<double>(r->compressed_bytes);
    r->mb_per_s = static_cast<double>(r->raw_bytes) / r->seconds / 1e6;
  }
  const double ratio_gain = wt.ratio / ws.ratio;
  record(wt);
  record(ws);
  std::printf("  temporal/spatial compression-ratio gain: %.2fx\n", ratio_gain);

  // ---- scenario 2: mid-chain + keyframe restart, verified bit-for-bit ----
  const Result<Reader> reader = Reader::open(path_t);
  if (!reader.ok()) die(reader.status());
  const std::string field0 = data::nyx_field_info(data::NyxField::kBaryonDensity).name;
  struct RestartCase {
    const char* label;
    std::uint32_t step;
  };
  const std::uint32_t mid =
      std::min<std::uint32_t>(opt.interval + opt.interval / 2 + 1,
                              static_cast<std::uint32_t>(opt.steps) - 1);
  const RestartCase restarts[] = {
      {"mid_chain", mid},
      {"keyframe", opt.interval},
  };
  std::printf("restart (chain decode, 1 rank, full field):\n");
  for (const RestartCase& rc : restarts) {
    BenchResult res;
    res.scenario = "restart_mid_chain";
    res.label = rc.label;
    SeriesReadReport rep;
    std::vector<float> got;
    res.seconds = best_seconds(opt.reps, [&] {
      rep = SeriesReadReport{};
      Result<std::vector<float>> out =
          restart<float>(*reader, field0, rc.step, std::nullopt, {}, &rep);
      if (!out.ok()) die(out.status());
      got = std::move(*out);
    });
    const auto want = reference_at_step(*reader, field0, rc.step, opt.interval);
    res.bit_exact = got.size() == want.size() &&
                    std::memcmp(got.data(), want.data(), got.size() * sizeof(float)) == 0;
    res.raw_bytes = got.size() * sizeof(float);
    res.compressed_bytes = rep.bytes_read;
    res.ratio = static_cast<double>(res.raw_bytes) / static_cast<double>(rep.bytes_read);
    res.mb_per_s = static_cast<double>(res.raw_bytes) / res.seconds / 1e6;
    res.steps_chained = rep.steps_chained;
    res.blocks_decoded = rep.blocks_decoded;
    res.blocks_total = rep.blocks_total;
    record(res);
  }

  // ---- scenario 3: sparse plane read of a late step -----------------------
  std::printf("sparse plane read at step %d:\n", opt.steps - 1);
  {
    const std::size_t midx = opt.dims.d0 / 2;
    const Region plane{{midx, 0, 0}, {midx + 1, opt.dims.d1, opt.dims.d2}};
    BenchResult res;
    res.scenario = "sparse_step_read";
    res.label = "plane";
    SeriesReadReport rep;
    std::vector<float> got;
    res.seconds = best_seconds(opt.reps, [&] {
      rep = SeriesReadReport{};
      Result<std::vector<float>> out = restart<float>(
          *reader, field0, static_cast<std::uint32_t>(opt.steps - 1), plane, {}, &rep);
      if (!out.ok()) die(out.status());
      got = std::move(*out);
    });
    res.raw_bytes = got.size() * sizeof(float);
    res.compressed_bytes = rep.bytes_read;
    res.ratio = rep.bytes_read > 0
                    ? static_cast<double>(res.raw_bytes) / static_cast<double>(rep.bytes_read)
                    : 0.0;
    res.mb_per_s = static_cast<double>(res.raw_bytes) / res.seconds / 1e6;
    res.steps_chained = rep.steps_chained;
    res.blocks_decoded = rep.blocks_decoded;
    res.blocks_total = rep.blocks_total;
    record(res);
  }

  bool ok = true;
  for (const BenchResult& r : results) ok = ok && r.bit_exact;
  if (ratio_gain < 1.3) {
    std::printf("WARNING: temporal ratio gain %.2fx below the 1.3x acceptance bar\n",
                ratio_gain);
    ok = opt.smoke && ok;  // the tiny smoke case is informational only
  }
  if (opt.json) emit_json(opt, results);

  std::filesystem::remove(path_t);
  std::filesystem::remove(path_s);
  return ok ? 0 : 1;
}
