// Fig. 15: consistency of storage and performance overheads across
// simulation time-steps at the default extra-space ratio 1.25, 512
// processes ("red shift" = earlier snapshots in the paper's x-axis).
#include "bench_common.h"

using namespace pcw;

int main() {
  bench::print_header("Overhead consistency across time-steps (R_space = 1.25)",
                      "Fig. 15");

  const auto platform = iosim::Platform::summit();
  util::Table t({"time-step", "mean bit-rate", "perf overhead %", "storage overhead %",
                 "overflow parts"});
  for (int step = 0; step < 5; ++step) {
    // Regenerate the evolving snapshot and re-measure sample partitions.
    std::vector<bench::FieldSamples> samples;
    const sz::Dims part = sz::Dims::make_3d(32, 32, 32);
    const sz::Dims volume = sz::Dims::make_3d(32, 32, 32 * 4);
    for (int f = 0; f < data::kNyxPrimaryFields; ++f) {
      const auto field = static_cast<data::NyxField>(f);
      const auto info = data::nyx_field_info(field);
      bench::FieldSamples fs;
      fs.name = info.name;
      fs.abs_error_bound = info.abs_error_bound;
      sz::Params params;
      params.error_bound = info.abs_error_bound;
      for (int s = 0; s < 4; ++s) {
        std::vector<float> block(part.count());
        data::fill_nyx_field(block, part, {0, 0, static_cast<std::size_t>(s) * 32},
                             volume, field, 77, static_cast<double>(step));
        fs.pool.push_back(bench::profile_partition<float>(block, part, params));
      }
      samples.push_back(std::move(fs));
    }

    const auto profiles = bench::to_scaled_profiles(samples, 512, 55, 512.0);
    core::TimingConfig cfg;
    cfg.comp_model = bench::calibrate_comp_model(samples);
    cfg.mode = core::WriteMode::kOverlapReorder;
    cfg.rspace = 1.25;
    const auto b = core::simulate_write(platform, profiles, cfg);
    core::TimingConfig no_ovf = cfg;
    no_ovf.rspace = 4.0;
    const auto base = core::simulate_write(platform, profiles, no_ovf);
    const double perf = (b.write_exposed + b.overflow) /
                            std::max(1e-9, base.write_exposed + base.overflow) -
                        1.0;
    const double storage = b.storage_bytes / b.ideal_compressed_bytes - 1.0;
    t.add_row({std::to_string(step), util::Table::fmt(bench::mean_bit_rate(samples), 2),
               util::Table::fmt(100 * perf, 1), util::Table::fmt(100 * storage, 1),
               std::to_string(b.overflow_partitions)});
  }
  t.print(std::cout);
  std::printf("\nshape check: both overheads stay in a narrow band across "
              "time-steps (paper: consistent at R_space = 1.25).\n");
  return 0;
}
