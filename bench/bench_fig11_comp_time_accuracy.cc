// Fig. 11 (+ the §IV-B fit): accuracy of the Eq.-(1) compression-time
// estimate. Offline phase fits C_min/C_max/a on the baryon-density field
// alone; online phase predicts the compression time of 64 partitions x 6
// fields and compares against measured times.
#include "bench_common.h"

#include "pcw/models.h"
#include "pcw/text.h"

using namespace pcw;

int main() {
  bench::print_header("Compression-time estimation accuracy (64 partitions)",
                      "Fig. 11 + §IV-B fit");

  // ---- offline: sweep relative error bounds on baryon density ----------
  const sz::Dims cal_dims = sz::Dims::make_3d(64, 64, 64);
  const auto cal_field = data::make_nyx_field(cal_dims, data::NyxField::kBaryonDensity, 5);
  std::vector<model::ThroughputSample> cal;
  for (const double rel_eb : {1e-1, 1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-7, 1e-8}) {
    sz::Params p;
    p.mode = sz::ErrorBoundMode::kRelative;
    p.error_bound = rel_eb;
    double best = 1e300;
    std::size_t size = 0;
    for (int rep = 0; rep < 3; ++rep) {
      util::Timer t;
      const auto blob = sz::compress<float>(cal_field, cal_dims, p);
      best = std::min(best, t.seconds());
      size = blob.size();
    }
    cal.push_back({sz::bit_rate(size, cal_field.size()), cal_field.size() * 4.0 / best});
  }
  const auto fit = model::CompressionThroughputModel::calibrate(cal);
  std::printf("offline fit (baryon density only): C_min=%.1f MB/s C_max=%.1f MB/s a=%.3f\n",
              fit.c_min() / 1e6, fit.c_max() / 1e6, fit.exponent());
  std::printf("paper's fit on its platform:       C_min=101.7  C_max=240.6  a=-1.716\n\n");

  // ---- online: 64 partitions across all 6 fields ------------------------
  const int kPartitions = 64;
  const sz::Dims global = sz::Dims::make_3d(128, 128, 128);
  const auto dec = data::decompose(global, kPartitions);
  std::vector<double> predicted, actual;
  util::Table t({"field", "partitions", "MAPE %", "corr"});
  for (int f = 0; f < data::kNyxPrimaryFields; ++f) {
    const auto field = static_cast<data::NyxField>(f);
    const auto info = data::nyx_field_info(field);
    sz::Params p;
    p.error_bound = info.abs_error_bound;
    std::vector<double> pf, af;
    std::vector<float> block(dec.local.count());
    for (int r = 0; r < kPartitions; ++r) {
      data::fill_nyx_field(block, dec.local, dec.origin_of(r), global, field, 5);
      const auto est = model::estimate_ratio<float>(block, dec.local, p);
      const double pred = fit.predict_time(static_cast<double>(block.size()) * 4,
                                           est.bit_rate);
      util::Timer timer;
      (void)sz::compress<float>(block, dec.local, p);
      const double act = timer.seconds();
      pf.push_back(pred);
      af.push_back(act);
    }
    predicted.insert(predicted.end(), pf.begin(), pf.end());
    actual.insert(actual.end(), af.begin(), af.end());
    t.add_row({info.name, std::to_string(kPartitions),
               util::Table::fmt(100 * util::mape(pf, af), 1),
               util::Table::fmt(util::pearson(pf, af), 3)});
  }
  t.print(std::cout);
  std::printf("\noverall: MAPE %.1f%%, correlation %.3f over %zu partitions "
              "(paper: visually tight fit in Fig. 11)\n",
              100 * util::mape(predicted, actual), util::pearson(predicted, actual),
              predicted.size());
  return 0;
}
