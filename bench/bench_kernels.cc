// Engineering microbenchmarks: per-stage throughput of the pcw::sz
// pipeline (quantize, Huffman encode, end-to-end compress/decompress) at
// 1..N threads. Not a paper figure; this is the measured perf baseline
// every perf PR must beat, emitted as machine-readable JSON with
// `--json` (schema pcw.bench_kernels.v1 -> BENCH_kernels.json).
//
// Standalone on purpose (no google-benchmark): CI runs
// `bench_kernels --json --smoke` so the perf path can never silently
// stop compiling.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "pcw/kernels.h"
#include "pcw/text.h"
#include "pcw/workloads.h"

namespace {

using namespace pcw;

struct Options {
  sz::Dims dims = sz::Dims::make_3d(256, 256, 256);
  double eb = 0.2;
  int reps = 3;
  std::vector<unsigned> threads{1, 2, 4, 8};
  bool smoke = false;
  bool json = false;
  std::string json_path = "BENCH_kernels.json";
};

struct Result {
  std::string stage;
  unsigned threads = 0;
  double seconds = 0.0;
  double mb_per_s = 0.0;
};

[[noreturn]] void usage(int code) {
  std::fprintf(stderr,
               "usage: bench_kernels [--json [PATH]] [--smoke] [--dims X,Y,Z]\n"
               "                     [--eb EB] [--reps N] [--threads LIST]\n"
               "  --json [PATH]   write pcw.bench_kernels.v1 JSON (default %s)\n"
               "  --smoke         small field, 1 rep, threads 1,2 (CI compile+run gate)\n"
               "  --threads LIST  comma-separated thread counts (0 = all hardware)\n",
               "BENCH_kernels.json");
  std::exit(code);
}

std::vector<std::size_t> parse_list(const std::string& s) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t next = s.find(',', pos);
    if (next == std::string::npos) next = s.size();
    out.push_back(static_cast<std::size_t>(std::stoull(s.substr(pos, next - pos))));
    pos = next + 1;
  }
  return out;
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s requires a value\n", flag);
        usage(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage(0);
    } else if (arg == "--smoke") {
      opt.smoke = true;
    } else if (arg == "--json") {
      opt.json = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') opt.json_path = argv[++i];
    } else if (arg == "--dims") {
      const auto v = parse_list(next_value("--dims"));
      if (v.size() != 3 || v[0] == 0 || v[1] == 0 || v[2] == 0) {
        std::fprintf(stderr, "error: --dims expects X,Y,Z > 0\n");
        usage(2);
      }
      opt.dims = sz::Dims::make_3d(v[0], v[1], v[2]);
    } else if (arg == "--eb") {
      opt.eb = std::stod(next_value("--eb"));
    } else if (arg == "--reps") {
      opt.reps = static_cast<int>(std::stoull(next_value("--reps")));
    } else if (arg == "--threads") {
      opt.threads.clear();
      for (const auto t : parse_list(next_value("--threads"))) {
        opt.threads.push_back(static_cast<unsigned>(t));
      }
      if (opt.threads.empty()) usage(2);
    } else {
      std::fprintf(stderr, "error: unknown argument '%s'\n", arg.c_str());
      usage(2);
    }
  }
  if (opt.smoke) {
    opt.dims = sz::Dims::make_3d(64, 64, 64);
    opt.reps = 1;
    opt.threads = {1, 2};
  }
  return opt;
}

/// Best-of-reps wall time for one timed closure.
template <typename Fn>
double best_seconds(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    util::Timer timer;
    fn();
    best = std::min(best, timer.seconds());
  }
  return best;
}

void emit_json(const Options& opt, const std::vector<Result>& results,
               std::size_t raw_bytes, std::size_t blob_bytes) {
  std::ofstream out(opt.json_path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", opt.json_path.c_str());
    std::exit(1);
  }
  out << "{\n";
  out << "  \"schema\": \"pcw.bench_kernels.v1\",\n";
  out << "  \"case\": {\n";
  out << "    \"dims\": [" << opt.dims.d0 << ", " << opt.dims.d1 << ", "
      << opt.dims.d2 << "],\n";
  out << "    \"dtype\": \"float32\",\n";
  out << "    \"error_bound\": " << opt.eb << ",\n";
  out << "    \"reps\": " << opt.reps << ",\n";
  out << "    \"smoke\": " << (opt.smoke ? "true" : "false") << ",\n";
  // Host facts: throughput numbers are uninterpretable without knowing
  // the core budget and which kernel flavour actually ran (PCW_SIMD can
  // clamp below the detected level).
  out << "    \"host\": {\n";
  out << "      \"cpu_count\": " << util::hardware_threads() << ",\n";
  out << "      \"simd_detected\": \"" << util::simd_name(util::simd_detected())
      << "\",\n";
  out << "      \"simd_active\": \"" << util::simd_name(util::simd_active())
      << "\"\n";
  out << "    }\n";
  out << "  },\n";
  out << "  \"raw_bytes\": " << raw_bytes << ",\n";
  out << "  \"blob_bytes\": " << blob_bytes << ",\n";
  out << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    char line[256];
    std::snprintf(line, sizeof line,
                  "    {\"stage\": \"%s\", \"threads\": %u, \"seconds\": %.6f, "
                  "\"mb_per_s\": %.1f}%s\n",
                  r.stage.c_str(), r.threads, r.seconds, r.mb_per_s,
                  i + 1 < results.size() ? "," : "");
    out << line;
  }
  out << "  ]\n}\n";
  std::printf("wrote %s\n", opt.json_path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
#if defined(__GLIBC__)
  // Keep the field-sized work buffers on the main heap and stop free()
  // from trimming them back to the kernel. Without this every rep's
  // >32 MiB allocations take the mmap path (glibc caps the dynamic
  // threshold below our buffer sizes), so each pass re-faults and
  // re-zeroes ~64 MiB of pages — timing the kernel's page zeroer, not
  // the codec. Long-lived HPC processes reuse their arenas; this makes
  // the steady state the thing measured.
  mallopt(M_MMAP_THRESHOLD, 1 << 30);
  mallopt(M_TRIM_THRESHOLD, 1 << 30);
#endif
  const Options opt = parse_args(argc, argv);
  const std::size_t raw_bytes = opt.dims.count() * sizeof(float);

  std::printf("bench_kernels: %zux%zux%zu f32, eb=%g, reps=%d\n", opt.dims.d0,
              opt.dims.d1, opt.dims.d2, opt.eb, opt.reps);
  std::printf("host: %u hardware threads, simd %s (detected %s)\n",
              util::hardware_threads(), util::simd_name(util::simd_active()),
              util::simd_name(util::simd_detected()));
  const std::vector<float> field =
      data::make_nyx_field(opt.dims, data::NyxField::kBaryonDensity, 9);

  sz::Params params;
  params.error_bound = opt.eb;

  // Shared fixtures for the stage-level measurements: one serial pipeline
  // pass provides the codes/codebook the encode stage re-times.
  const std::vector<sz::BlockRange> blocks = sz::split_blocks(opt.dims);
  std::vector<sz::QuantizeResult<float>> quants(blocks.size());
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    quants[b] = sz::lorenzo_quantize<float>(
        std::span<const float>(field).subspan(blocks[b].elem_offset,
                                              blocks[b].dims.count()),
        blocks[b].dims, opt.eb, params.radius);
  }
  std::vector<std::uint64_t> counts(2ull * params.radius, 0);
  for (const auto& q : quants) {
    for (const auto c : q.codes) ++counts[c];
  }
  std::vector<sz::SymbolCount> freqs;
  for (std::uint32_t s = 0; s < counts.size(); ++s) {
    if (counts[s] > 0) freqs.push_back({s, counts[s]});
  }
  const sz::HuffmanEncoder encoder(freqs);
  const std::vector<std::uint8_t> blob = sz::compress<float>(field, opt.dims, params);

  std::vector<Result> results;
  auto record = [&](const char* stage, unsigned threads, double seconds) {
    Result r;
    r.stage = stage;
    r.threads = threads;
    r.seconds = seconds;
    r.mb_per_s = static_cast<double>(raw_bytes) / seconds / 1e6;
    results.push_back(r);
    std::printf("  %-10s %2u thread%s  %8.4f s  %9.1f MB/s\n", stage, threads,
                threads == 1 ? " " : "s", seconds, r.mb_per_s);
  };

  for (const unsigned threads : opt.threads) {
    std::printf("threads=%u (%u blocks)\n", threads,
                static_cast<unsigned>(blocks.size()));
    // Stage: Lorenzo quantization over blocks.
    record("quantize", threads, best_seconds(opt.reps, [&] {
             std::vector<sz::QuantizeResult<float>> out(blocks.size());
             util::parallel_for(blocks.size(), threads, [&](std::size_t b) {
               out[b] = sz::lorenzo_quantize<float>(
                   std::span<const float>(field).subspan(blocks[b].elem_offset,
                                                         blocks[b].dims.count()),
                   blocks[b].dims, opt.eb, params.radius);
             });
           }));
    // Stage: Huffman encode of the pre-computed codes.
    record("encode", threads, best_seconds(opt.reps, [&] {
             std::vector<std::vector<std::uint8_t>> out(blocks.size());
             util::parallel_for(blocks.size(), threads, [&](std::size_t b) {
               util::BitWriter writer;
               writer.reserve_bytes(quants[b].codes.size() / 2);
               for (const auto c : quants[b].codes) encoder.encode(c, writer);
               out[b] = writer.finish();
             });
           }));
    // End-to-end compress and decompress through the public API.
    sz::Params p = params;
    p.threads = threads;
    record("compress", threads, best_seconds(opt.reps, [&] {
             const auto out = sz::compress<float>(field, opt.dims, p);
             if (out.size() != blob.size()) {
               std::fprintf(stderr, "error: blob size varies with threads\n");
               std::exit(1);
             }
           }));
    record("decompress", threads, best_seconds(opt.reps, [&] {
             const auto out = sz::decompress<float>(blob, nullptr, threads);
             if (out.size() != field.size()) {
               std::fprintf(stderr, "error: decompress element count\n");
               std::exit(1);
             }
           }));
    // Same serial compress with tracing armed (buffered, no export):
    // the enabled-telemetry overhead surface check_bench.py gates at
    // 1.10x over the dormant "compress" row.
    if (threads == 1) {
      util::trace::start();
      record("compress_traced", threads, best_seconds(opt.reps, [&] {
               const auto out = sz::compress<float>(field, opt.dims, p);
               if (out.size() != blob.size()) {
                 std::fprintf(stderr, "error: blob size varies under tracing\n");
                 std::exit(1);
               }
             }));
      util::trace::stop();
      util::trace::clear();
    }
  }

  std::printf("blob: %zu bytes (ratio %.2fx)\n", blob.size(),
              sz::compression_ratio<float>(blob.size(), field.size()));
  if (opt.json) emit_json(opt, results, raw_bytes, blob.size());
  return 0;
}
