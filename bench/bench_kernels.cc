// Engineering microbenchmarks (google-benchmark): per-stage costs of the
// pcw::sz pipeline and the prediction models. Not a paper figure; used to
// keep the compressor in the throughput band Eq. (1) assumes.
#include <benchmark/benchmark.h>

#include <cmath>

#include "data/workloads.h"
#include "model/ratio_model.h"
#include "sz/compressor.h"
#include "sz/huffman.h"
#include "sz/lorenzo.h"
#include "sz/lossless.h"
#include "util/bitstream.h"

namespace {

using namespace pcw;

const sz::Dims kDims = sz::Dims::make_3d(64, 64, 64);

const std::vector<float>& field() {
  static const std::vector<float> f =
      data::make_nyx_field(kDims, data::NyxField::kBaryonDensity, 9);
  return f;
}

void BM_LorenzoQuantize(benchmark::State& state) {
  const double eb = 0.2;
  for (auto _ : state) {
    auto q = sz::lorenzo_quantize<float>(field(), kDims, eb, 32768);
    benchmark::DoNotOptimize(q.codes.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(field().size() * 4));
}
BENCHMARK(BM_LorenzoQuantize);

void BM_HuffmanEncode(benchmark::State& state) {
  const auto q = sz::lorenzo_quantize<float>(field(), kDims, 0.2, 32768);
  std::vector<std::uint64_t> counts(65536, 0);
  for (const auto c : q.codes) ++counts[c];
  std::vector<sz::SymbolCount> freqs;
  for (std::uint32_t s = 0; s < counts.size(); ++s) {
    if (counts[s] > 0) freqs.push_back({s, counts[s]});
  }
  const sz::HuffmanEncoder enc(freqs);
  for (auto _ : state) {
    util::BitWriter w;
    for (const auto c : q.codes) enc.encode(c, w);
    auto bytes = w.finish();
    benchmark::DoNotOptimize(bytes.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(q.codes.size() * 4));
}
BENCHMARK(BM_HuffmanEncode);

void BM_LzCompress(benchmark::State& state) {
  sz::Params p;
  p.error_bound = 0.5;
  p.lossless = false;
  const auto blob = sz::compress<float>(field(), kDims, p);
  for (auto _ : state) {
    auto out = sz::lz_compress(blob);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(blob.size()));
}
BENCHMARK(BM_LzCompress);

void BM_CompressEndToEnd(benchmark::State& state) {
  sz::Params p;
  p.error_bound = 0.2 * std::pow(10.0, -static_cast<double>(state.range(0)));
  for (auto _ : state) {
    auto blob = sz::compress<float>(field(), kDims, p);
    benchmark::DoNotOptimize(blob.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(field().size() * 4));
}
BENCHMARK(BM_CompressEndToEnd)->Arg(0)->Arg(2)->Arg(4);

void BM_DecompressEndToEnd(benchmark::State& state) {
  sz::Params p;
  p.error_bound = 0.2;
  const auto blob = sz::compress<float>(field(), kDims, p);
  for (auto _ : state) {
    auto out = sz::decompress<float>(blob);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(field().size() * 4));
}
BENCHMARK(BM_DecompressEndToEnd);

void BM_RatioModelEstimate(benchmark::State& state) {
  sz::Params p;
  p.error_bound = 0.2;
  for (auto _ : state) {
    auto est = model::estimate_ratio<float>(field(), kDims, p);
    benchmark::DoNotOptimize(&est);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(field().size() * 4));
}
BENCHMARK(BM_RatioModelEstimate);

}  // namespace

BENCHMARK_MAIN();
