// Fig. 5: single-core compression throughput at different bit-rates, on
// Nyx and RTM fields, plus the Eq.-(1) fit (the C_min/C_max/a numbers the
// paper reports in §IV-B).
#include "bench_common.h"

#include "pcw/models.h"

using namespace pcw;

namespace {

struct Series {
  std::string name;
  std::vector<float> field;
  sz::Dims dims;
};

}  // namespace

int main() {
  bench::print_header("Single-core compression throughput vs bit-rate",
                      "Fig. 5 (+ §IV-B fit)");

  const sz::Dims dims = sz::Dims::make_3d(64, 64, 64);
  std::vector<Series> series;
  series.push_back({"nyx/baryon_density",
                    data::make_nyx_field(dims, data::NyxField::kBaryonDensity, 7), dims});
  series.push_back({"nyx/temperature",
                    data::make_nyx_field(dims, data::NyxField::kTemperature, 7), dims});
  series.push_back({"nyx/velocity_x",
                    data::make_nyx_field(dims, data::NyxField::kVelocityX, 7), dims});
  series.push_back({"rtm/wavefield", data::make_rtm_field(dims, 7), dims});

  util::Table t({"field", "rel_eb", "bit-rate", "ratio", "throughput MB/s"});
  std::vector<model::ThroughputSample> fit_samples;

  for (const auto& s : series) {
    for (const double rel_eb : {1e-1, 3e-2, 1e-2, 3e-3, 1e-3, 3e-4, 1e-4, 1e-5, 1e-6}) {
      sz::Params p;
      p.mode = sz::ErrorBoundMode::kRelative;
      p.error_bound = rel_eb;
      // Median of 3 runs to tame timer noise.
      double best = 1e300;
      std::size_t size = 0;
      for (int rep = 0; rep < 3; ++rep) {
        util::Timer timer;
        const auto blob = sz::compress<float>(s.field, s.dims, p);
        best = std::min(best, timer.seconds());
        size = blob.size();
      }
      const double br = sz::bit_rate(size, s.field.size());
      const double thr = static_cast<double>(s.field.size() * 4) / best;
      t.add_row({s.name, util::Table::fmt(rel_eb, 6), util::Table::fmt(br, 3),
                 util::Table::fmt(sz::compression_ratio<float>(size, s.field.size()), 1),
                 util::Table::fmt(thr / 1e6, 1)});
      fit_samples.push_back({br, thr});
    }
  }
  t.print(std::cout);

  const auto fitted = model::CompressionThroughputModel::calibrate(fit_samples);
  std::printf("\nEq. (1) fit on this machine: C_min=%.1f MB/s  C_max=%.1f MB/s  a=%.3f\n",
              fitted.c_min() / 1e6, fitted.c_max() / 1e6, fitted.exponent());
  std::printf("paper (Summit-class core, 512^3 baryon density): C_min=101.7  C_max=240.6  a=-1.716\n");

  // Shape checks the paper asserts: bounded band, rising as bit-rate falls.
  std::vector<double> pred, act;
  for (const auto& s : fit_samples) {
    pred.push_back(fitted.throughput(s.bit_rate));
    act.push_back(s.throughput);
  }
  std::printf("model-vs-measured MAPE: %.1f%%  (band C_max/C_min = %.2fx; paper ~2.1x)\n",
              100.0 * util::mape(pred, act), fitted.c_max() / fitted.c_min());
  return 0;
}
