// Fig. 17: performance breakdown of the overlap and overlap+reorder
// solutions (a, b) across overall compression ratios at 512 processes and
// (c, d) across scales 256..4096 at target bit-rate 2, for both Nyx and
// VPIC.
#include "bench_common.h"

using namespace pcw;

namespace {

void print_breakdown_row(util::Table& t, const std::string& tag,
                         const char* method, const core::Breakdown& b) {
  t.add_row({tag, method, util::Table::fmt(b.compress, 2),
             util::Table::fmt(b.write_exposed, 2), util::Table::fmt(b.overflow, 3),
             util::Table::fmt(b.predict + b.exchange, 3),
             util::Table::fmt(b.total, 2)});
}

void ratio_sweep(const std::string& dataset, bool is_vpic) {
  std::printf("\n--- (%s) breakdown vs compression ratio, 512 procs, summit ---\n",
              dataset.c_str());
  util::Table t({"target bit-rate", "method", "compress s", "write s", "overflow s",
                 "predict+exch s", "total s"});
  const auto platform = iosim::Platform::summit();
  for (const double target_br : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    auto probe = [&](double eb_scale) {
      const auto s =
          is_vpic ? bench::collect_vpic_samples(1 << 16, 1, 3, eb_scale)
                  : bench::collect_nyx_samples(data::kNyxPrimaryFields,
                                               sz::Dims::make_3d(32, 32, 32), 1, 3,
                                               eb_scale);
      return bench::mean_bit_rate(s);
    };
    const double eb_scale = bench::find_eb_scale_for_bitrate(target_br, probe);
    const auto samples =
        is_vpic ? bench::collect_vpic_samples(1 << 16, 3, 5, eb_scale)
                : bench::collect_nyx_samples(data::kNyxPrimaryFields,
                                             sz::Dims::make_3d(32, 32, 32), 3, 5,
                                             eb_scale);
    const auto profiles = bench::to_scaled_profiles(samples, 512, 31, 512.0);
    core::TimingConfig cfg;
    cfg.comp_model = bench::calibrate_comp_model(samples);
    const std::string tag = util::Table::fmt(target_br, 1) +
                            " (got " + util::Table::fmt(bench::mean_bit_rate(samples), 2) + ")";
    cfg.mode = core::WriteMode::kOverlap;
    print_breakdown_row(t, tag, "overlap", core::simulate_write(platform, profiles, cfg));
    cfg.mode = core::WriteMode::kOverlapReorder;
    print_breakdown_row(t, tag, "reorder", core::simulate_write(platform, profiles, cfg));
  }
  t.print(std::cout);
}

void scale_sweep(const std::string& dataset, bool is_vpic) {
  std::printf("\n--- (%s) breakdown vs scale, target bit-rate 2, summit ---\n",
              dataset.c_str());
  auto probe = [&](double eb_scale) {
    const auto s = is_vpic ? bench::collect_vpic_samples(1 << 16, 1, 3, eb_scale)
                           : bench::collect_nyx_samples(data::kNyxPrimaryFields,
                                                        sz::Dims::make_3d(32, 32, 32),
                                                        1, 3, eb_scale);
    return bench::mean_bit_rate(s);
  };
  const double eb_scale = bench::find_eb_scale_for_bitrate(2.0, probe);
  const auto samples =
      is_vpic ? bench::collect_vpic_samples(1 << 16, 3, 5, eb_scale)
              : bench::collect_nyx_samples(data::kNyxPrimaryFields,
                                           sz::Dims::make_3d(32, 32, 32), 3, 5, eb_scale);
  util::Table t({"procs", "method", "compress s", "write s", "overflow s",
                 "predict+exch s", "total s"});
  const auto platform = iosim::Platform::summit();
  for (const int procs : {256, 512, 1024, 2048, 4096}) {
    // Weak scaling: same per-rank partition (256^3-equivalent).
    const auto profiles = bench::to_scaled_profiles(samples, procs, 41, 512.0);
    core::TimingConfig cfg;
    cfg.comp_model = bench::calibrate_comp_model(samples);
    cfg.mode = core::WriteMode::kOverlap;
    print_breakdown_row(t, std::to_string(procs), "overlap",
                        core::simulate_write(platform, profiles, cfg));
    cfg.mode = core::WriteMode::kOverlapReorder;
    print_breakdown_row(t, std::to_string(procs), "reorder",
                        core::simulate_write(platform, profiles, cfg));
  }
  t.print(std::cout);
}

}  // namespace

int main() {
  bench::print_header("Breakdown vs ratio and vs scale", "Fig. 17 (a-d)");
  ratio_sweep("nyx", false);     // Fig. 17a
  ratio_sweep("vpic", true);     // Fig. 17b
  scale_sweep("nyx", false);     // Fig. 17c
  scale_sweep("vpic", true);     // Fig. 17d
  std::printf(
      "\nshape checks (paper §IV-D): reordering gain is largest at mid ratios\n"
      "(~10-20x) and fades at both extremes; per-rank times are stable across\n"
      "scales with slowly growing communication terms.\n");
  return 0;
}
