// Fig. 12: the same compression-time model *transferred* — offline
// parameters fitted on the small (64^3) baryon-density run are applied,
// unchanged, to a larger volume split into 512 partitions.
#include "bench_common.h"

#include "pcw/models.h"
#include "pcw/text.h"

using namespace pcw;

int main() {
  bench::print_header(
      "Compression-time estimation with transferred offline parameters",
      "Fig. 12");

  // Offline fit on the small dataset (matches bench_fig11's procedure).
  const sz::Dims cal_dims = sz::Dims::make_3d(64, 64, 64);
  const auto cal_field = data::make_nyx_field(cal_dims, data::NyxField::kBaryonDensity, 5);
  std::vector<model::ThroughputSample> cal;
  for (const double rel_eb : {1e-1, 1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-7, 1e-8}) {
    sz::Params p;
    p.mode = sz::ErrorBoundMode::kRelative;
    p.error_bound = rel_eb;
    double best = 1e300;
    std::size_t size = 0;
    for (int rep = 0; rep < 3; ++rep) {
      util::Timer t;
      const auto blob = sz::compress<float>(cal_field, cal_dims, p);
      best = std::min(best, t.seconds());
      size = blob.size();
    }
    cal.push_back({sz::bit_rate(size, cal_field.size()), cal_field.size() * 4.0 / best});
  }
  const auto fit = model::CompressionThroughputModel::calibrate(cal);

  // Online: a *different, larger* volume (different seed = different
  // snapshot), 512 partitions, all 6 fields sampled sparsely (every 8th
  // partition to keep the bench under a minute).
  const int kPartitions = 512;
  const sz::Dims global = sz::Dims::make_3d(256, 256, 256);
  const auto dec = data::decompose(global, kPartitions);
  std::vector<double> predicted, actual;
  std::vector<float> block(dec.local.count());
  for (int f = 0; f < data::kNyxPrimaryFields; ++f) {
    const auto field = static_cast<data::NyxField>(f);
    sz::Params p;
    p.error_bound = data::nyx_field_info(field).abs_error_bound;
    for (int r = 0; r < kPartitions; r += 8) {
      data::fill_nyx_field(block, dec.local, dec.origin_of(r), global, field, 31);
      const auto est = model::estimate_ratio<float>(block, dec.local, p);
      predicted.push_back(
          fit.predict_time(static_cast<double>(block.size()) * 4, est.bit_rate));
      util::Timer timer;
      (void)sz::compress<float>(block, dec.local, p);
      actual.push_back(timer.seconds());
    }
  }
  util::Table t({"metric", "value"});
  t.add_row({"partitions sampled", std::to_string(predicted.size())});
  t.add_row({"MAPE", util::Table::fmt(100 * util::mape(predicted, actual), 1) + "%"});
  t.add_row({"correlation", util::Table::fmt(util::pearson(predicted, actual), 3)});
  t.add_row({"mean predicted (ms)",
             util::Table::fmt(1e3 * util::mean(predicted), 2)});
  t.add_row({"mean actual (ms)", util::Table::fmt(1e3 * util::mean(actual), 2)});
  t.print(std::cout);
  std::printf("\nshape check: parameters transfer across dataset sizes because\n"
              "different fields/datasets share the same throughput band (Fig. 5).\n");
  return 0;
}
