// Fig. 9: the trade-off between write-performance overhead and storage
// overhead as the extra-space ratio varies, averaged over Nyx and VPIC at
// 512 processes — and the resulting weight -> R_space mapping.
#include "bench_common.h"

#include "pcw/models.h"

using namespace pcw;

int main() {
  bench::print_header("Extra-space ratio mapping", "Fig. 9");

  const int procs = 512;
  const auto nyx = bench::collect_nyx_samples(data::kNyxPrimaryFields,
                                              sz::Dims::make_3d(32, 32, 32), 4, 11);
  const auto vpic = bench::collect_vpic_samples(1 << 16, 4, 11);
  const auto platform = iosim::Platform::summit();

  auto overheads = [&](const std::vector<bench::FieldSamples>& samples,
                       double rspace) {
    const auto profiles = bench::to_scaled_profiles(samples, procs, 99, 512.0);
    core::TimingConfig cfg;
    cfg.comp_model = bench::calibrate_comp_model(samples);
    cfg.mode = core::WriteMode::kOverlap;
    cfg.rspace = rspace;
    const auto b = core::simulate_write(platform, profiles, cfg);
    // Performance overhead relative to the write path without overflow
    // handling (paper definition: excludes compression).
    core::TimingConfig no_ovf = cfg;
    no_ovf.rspace = 4.0;  // enough head-room that nothing overflows
    const auto base = core::simulate_write(platform, profiles, no_ovf);
    const double perf_overhead = (b.write_exposed + b.overflow) /
                                     std::max(1e-9, base.write_exposed + base.overflow) -
                                 1.0;
    const double storage_overhead = b.storage_bytes / b.ideal_compressed_bytes - 1.0;
    return std::pair{perf_overhead, storage_overhead};
  };

  util::Table t({"R_space", "perf overhead (nyx)", "storage overhead (nyx)",
                 "perf overhead (vpic)", "storage overhead (vpic)"});
  for (const double r : {1.05, 1.10, 1.15, 1.20, 1.25, 1.30, 1.35, 1.43, 1.50}) {
    const auto [pn, sn] = overheads(nyx, r);
    const auto [pv, sv] = overheads(vpic, r);
    t.add_row({util::Table::fmt(r, 2), util::Table::fmt(100 * pn, 1) + "%",
               util::Table::fmt(100 * sn, 1) + "%", util::Table::fmt(100 * pv, 1) + "%",
               util::Table::fmt(100 * sv, 1) + "%"});
  }
  t.print(std::cout);

  std::printf("\nweight -> R_space mapping (performance weight 0..1):\n");
  util::Table m({"weight", "R_space"});
  for (int w = 0; w <= 10; ++w) {
    m.add_row({util::Table::fmt(w / 10.0, 1),
               util::Table::fmt(model::rspace_for_weight(w / 10.0), 3)});
  }
  m.print(std::cout);
  std::printf("\nshape check: perf overhead falls and storage overhead rises with "
              "R_space; knee near 1.1-1.25; default 1.25.\n");
  return 0;
}
