// Fig. 6: minimum and maximum single-core compression throughput over 30
// data samples drawn from baryon density, dark matter density,
// temperature and velocity_x. Shows the bounded throughput band that
// justifies Eq. (1)'s clamped form.
#include "bench_common.h"

using namespace pcw;

int main() {
  bench::print_header("Min/max compression throughput over 30 samples", "Fig. 6");

  const data::NyxField fields[] = {
      data::NyxField::kBaryonDensity, data::NyxField::kDarkMatterDensity,
      data::NyxField::kTemperature, data::NyxField::kVelocityX};
  const sz::Dims dims = sz::Dims::make_3d(48, 48, 48);

  util::Table t({"sample", "field", "min MB/s", "max MB/s", "max/min"});
  double global_min = 1e300, global_max = 0.0;
  int sample_id = 0;
  for (int rep = 0; rep < 8 && sample_id < 30; ++rep) {
    for (const auto field : fields) {
      if (sample_id >= 30) break;
      const auto block =
          data::make_nyx_field(dims, field, 1000 + static_cast<std::uint64_t>(sample_id));
      double lo = 1e300, hi = 0.0;
      // Sweep error bounds from very loose to very tight: the throughput
      // extremes of this sample.
      for (const double rel_eb : {3e-1, 1e-2, 1e-4, 1e-6, 1e-8}) {
        sz::Params p;
        p.mode = sz::ErrorBoundMode::kRelative;
        p.error_bound = rel_eb;
        util::Timer timer;
        (void)sz::compress<float>(block, dims, p);
        const double thr = static_cast<double>(block.size() * 4) / timer.seconds();
        lo = std::min(lo, thr);
        hi = std::max(hi, thr);
      }
      global_min = std::min(global_min, lo);
      global_max = std::max(global_max, hi);
      t.add_row({std::to_string(sample_id), data::nyx_field_info(field).name,
                 util::Table::fmt(lo / 1e6, 1), util::Table::fmt(hi / 1e6, 1),
                 util::Table::fmt(hi / lo, 2)});
      ++sample_id;
    }
  }
  t.print(std::cout);
  std::printf("\nglobal band: %.1f .. %.1f MB/s (%.2fx). paper: ~120 .. ~250 MB/s (~2.1x)\n",
              global_min / 1e6, global_max / 1e6, global_max / global_min);
  return 0;
}
