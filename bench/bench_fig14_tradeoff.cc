// Fig. 14: per-field trade-off between write-performance overhead and
// storage overhead across extra-space ratios, for Nyx (6 fields) and VPIC
// (7 fields), on both the Bebop-like and Summit-like platforms, 512
// processes, target bit-rate ~2 bits/value.
#include "bench_common.h"

using namespace pcw;

namespace {

void sweep(const std::string& dataset, const std::vector<bench::FieldSamples>& samples,
           const iosim::Platform& platform, double scale) {
  std::printf("\n--- %s on %s (512 procs) ---\n", dataset.c_str(),
              platform.name.c_str());
  util::Table t({"field", "R_space", "perf overhead %", "storage overhead %"});
  for (std::size_t f = 0; f < samples.size(); ++f) {
    std::vector<bench::FieldSamples> single{samples[f]};
    for (const double r : {1.10, 1.25, 1.43}) {
      const auto profiles = bench::to_scaled_profiles(single, 512, 7 + f, scale);
      core::TimingConfig cfg;
      cfg.comp_model = bench::calibrate_comp_model(single);
      cfg.mode = core::WriteMode::kOverlap;
      cfg.rspace = r;
      const auto b = core::simulate_write(platform, profiles, cfg);
      core::TimingConfig no_ovf = cfg;
      no_ovf.rspace = 4.0;
      const auto base = core::simulate_write(platform, profiles, no_ovf);
      const double perf =
          (b.write_exposed + b.overflow) /
              std::max(1e-9, base.write_exposed + base.overflow) -
          1.0;
      const double storage = b.storage_bytes / b.ideal_compressed_bytes - 1.0;
      t.add_row({samples[f].name, util::Table::fmt(r, 2),
                 util::Table::fmt(100 * perf, 1), util::Table::fmt(100 * storage, 1)});
    }
  }
  t.print(std::cout);
}

}  // namespace

int main() {
  bench::print_header("Performance/storage trade-off per field", "Fig. 14");

  // Target bit-rate 2: find the error-bound scale per dataset with the
  // ratio model, then measure for real at that scale.
  auto nyx_probe = [&](double eb_scale) {
    const auto s = bench::collect_nyx_samples(data::kNyxPrimaryFields,
                                              sz::Dims::make_3d(32, 32, 32), 1, 3,
                                              eb_scale);
    return bench::mean_bit_rate(s);
  };
  const double nyx_scale = bench::find_eb_scale_for_bitrate(2.0, nyx_probe);
  const auto nyx = bench::collect_nyx_samples(data::kNyxPrimaryFields,
                                              sz::Dims::make_3d(32, 32, 32), 4, 3,
                                              nyx_scale);
  std::printf("nyx: eb scale %.3f -> mean bit-rate %.2f (target 2)\n", nyx_scale,
              bench::mean_bit_rate(nyx));

  auto vpic_probe = [&](double eb_scale) {
    const auto s = bench::collect_vpic_samples(1 << 16, 1, 3, eb_scale);
    return bench::mean_bit_rate(s);
  };
  const double vpic_scale = bench::find_eb_scale_for_bitrate(2.0, vpic_probe);
  auto vpic = bench::collect_vpic_samples(1 << 16, 4, 3, vpic_scale);
  vpic.resize(7);  // the paper's Fig. 14 uses 7 VPIC fields
  std::printf("vpic: eb scale %.3f -> mean bit-rate %.2f (target 2)\n", vpic_scale,
              bench::mean_bit_rate(vpic));

  // 32^3 samples -> 256^3-per-rank equivalents: x512. VPIC samples are
  // 2^16 particles -> ~39M-per-rank (paper's weak scaling): x512 too.
  for (const auto* platform_name : {"summit", "bebop"}) {
    const auto platform = std::string(platform_name) == "summit"
                              ? iosim::Platform::summit()
                              : iosim::Platform::bebop();
    sweep("nyx (6 fields)", nyx, platform, 512.0);
    sweep("vpic (7 fields)", vpic, platform, 512.0);
  }
  std::printf("\nshape check: per-field curves nearly coincide within a dataset;\n"
              "the trade-off is similar across datasets and platforms (paper §IV-C).\n");
  return 0;
}
