// Ablation (beyond the paper, enabled by its own future-work item): what
// does the predictive machinery cost relative to a *fixed-rate*
// compressor, where compressed sizes are known exactly up front?
//
// With pcw::zfp at rate r every partition is exactly r*n/8 bytes (+block
// headers): offsets need no prediction, no extra space, no overflow
// phase. The flip side is no point-wise error bound. This bench compares,
// at matched bit-rates:
//   * SZ + prediction + extra space (the paper's design), vs
//   * ZFP fixed-rate with exact offsets,
// on write time and storage — quantifying what the extra-space overhead
// buys (an error bound) and what it costs.
#include "bench_common.h"

#include "pcw/kernels.h"

using namespace pcw;

int main() {
  bench::print_header("Predictive SZ vs fixed-rate ZFP write path",
                      "ablation (paper future work: ZFP support)");

  const int procs = 512;
  const auto platform = iosim::Platform::summit();
  const sz::Dims part = sz::Dims::make_3d(32, 32, 32);

  util::Table t({"bit-rate", "method", "write+ovf s", "storage ovh %", "max err (bd)"});
  for (const double target_br : {1.0, 2.0, 4.0}) {
    // --- SZ predictive path at this bit-rate --------------------------
    auto probe = [&](double eb_scale) {
      const auto s = bench::collect_nyx_samples(data::kNyxPrimaryFields, part, 1, 3,
                                                eb_scale);
      return bench::mean_bit_rate(s);
    };
    const double eb_scale = bench::find_eb_scale_for_bitrate(target_br, probe);
    const auto samples =
        bench::collect_nyx_samples(data::kNyxPrimaryFields, part, 3, 5, eb_scale);
    const auto profiles = bench::to_scaled_profiles(samples, procs, 77, 512.0);
    core::TimingConfig cfg;
    cfg.comp_model = bench::calibrate_comp_model(samples);
    cfg.mode = core::WriteMode::kOverlapReorder;
    const auto sz_run = core::simulate_write(platform, profiles, cfg);

    // SZ error on the baryon-density field (it has a bound by design).
    const auto field = data::make_nyx_field(part, data::NyxField::kBaryonDensity, 5);
    sz::Params sp;
    sp.error_bound =
        data::nyx_field_info(data::NyxField::kBaryonDensity).abs_error_bound * eb_scale;
    const auto sz_rec = sz::decompress<float>(sz::compress<float>(field, part, sp));
    double sz_err = 0.0;
    for (std::size_t i = 0; i < field.size(); ++i) {
      sz_err = std::max(sz_err, std::abs(static_cast<double>(field[i]) - sz_rec[i]));
    }

    t.add_row({util::Table::fmt(bench::mean_bit_rate(samples), 2), "sz+predict",
               util::Table::fmt(sz_run.write_exposed + sz_run.overflow, 2),
               util::Table::fmt(
                   100 * (sz_run.storage_bytes / sz_run.ideal_compressed_bytes - 1.0), 1),
               util::Table::fmt(sz_err, 4) + " (bounded)"});

    // --- ZFP fixed-rate path: identical partitions, exact sizes -------
    zfp::Params zp;
    zp.rate_bits = std::max(2, static_cast<int>(target_br + 0.5));
    auto zfp_profiles = profiles;
    for (auto& rank : zfp_profiles) {
      for (auto& p : rank) {
        const double bytes =
            static_cast<double>(zfp::compressed_size(part, zp)) * 512.0;
        p.actual_bytes = bytes;
        p.predicted_bytes = bytes;  // exact: fixed rate
        p.predicted_ratio = p.raw_bytes / bytes;
      }
    }
    core::TimingConfig zcfg = cfg;
    zcfg.rspace = 1.0;  // nothing can overflow: reserve exactly
    const auto zfp_run = core::simulate_write(platform, zfp_profiles, zcfg);

    const auto zfp_rec = zfp::decompress(zfp::compress(field, part, zp));
    double zfp_err = 0.0;
    for (std::size_t i = 0; i < field.size(); ++i) {
      zfp_err = std::max(zfp_err, std::abs(static_cast<double>(field[i]) - zfp_rec[i]));
    }

    t.add_row({std::to_string(zp.rate_bits) + ".00", "zfp fixed-rate",
               util::Table::fmt(zfp_run.write_exposed + zfp_run.overflow, 2),
               util::Table::fmt(
                   100 * (zfp_run.storage_bytes / zfp_run.ideal_compressed_bytes - 1.0), 1),
               util::Table::fmt(zfp_err, 4) + " (unbounded)"});
  }
  t.print(std::cout);
  std::printf(
      "\nreading: fixed-rate removes the storage overhead and the overflow phase\n"
      "entirely, but gives up the point-wise error bound the paper's scientific\n"
      "use cases require — the extra-space cost IS the price of the bound.\n");
  return 0;
}
