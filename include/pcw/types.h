// pcw public API — shared value types.
//
// These mirror the engine's internal extent/region/dtype types with
// plain, dependency-free definitions so installed headers stand alone;
// the façade converts at the boundary. A FieldView is the type-erased
// handle the whole surface trades in: a dtype tag, a raw byte span, and
// logical extents — no per-call-site templating on the element type.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace pcw {

enum class DType : std::uint8_t { kFloat32 = 0, kFloat64 = 1, kBytes = 2 };

template <typename T>
constexpr DType dtype_of();
template <>
constexpr DType dtype_of<float>() {
  return DType::kFloat32;
}
template <>
constexpr DType dtype_of<double>() {
  return DType::kFloat64;
}

inline std::size_t element_size(DType t) {
  switch (t) {
    case DType::kFloat32: return 4;
    case DType::kFloat64: return 8;
    case DType::kBytes: return 1;
  }
  return 1;
}

const char* to_string(DType t);

/// Logical extents, row-major C order: d0 slowest, d2 fastest. 1-D data
/// is {1, 1, n}; 2-D data is {1, rows, cols}.
struct Dims {
  std::size_t d0 = 1;
  std::size_t d1 = 1;
  std::size_t d2 = 1;

  static Dims make_1d(std::size_t n) { return {1, 1, n}; }
  static Dims make_2d(std::size_t rows, std::size_t cols) { return {1, rows, cols}; }
  static Dims make_3d(std::size_t x, std::size_t y, std::size_t z) { return {x, y, z}; }

  std::size_t count() const { return d0 * d1 * d2; }

  bool operator==(const Dims&) const = default;
};

/// Half-open axis-aligned box [lo, hi) in Dims coordinates.
struct Region {
  std::array<std::size_t, 3> lo{0, 0, 0};
  std::array<std::size_t, 3> hi{0, 0, 0};

  static Region of(const Dims& d) { return {{0, 0, 0}, {d.d0, d.d1, d.d2}}; }

  bool empty() const { return hi[0] <= lo[0] || hi[1] <= lo[1] || hi[2] <= lo[2]; }

  Dims extents() const {
    if (empty()) return Dims{0, 0, 0};
    return Dims{hi[0] - lo[0], hi[1] - lo[1], hi[2] - lo[2]};
  }

  std::size_t count() const { return empty() ? 0 : extents().count(); }

  bool operator==(const Region&) const = default;
};

/// Type-erased read-only view of one field's elements: dtype tag + byte
/// span + logical extents. Replaces per-call-site templating on T — the
/// façade dispatches on `dtype` internally.
struct FieldView {
  DType dtype = DType::kFloat32;
  std::span<const std::uint8_t> bytes;
  Dims dims;

  template <typename T>
  static FieldView of(std::span<const T> data, const Dims& dims) {
    FieldView v;
    v.dtype = dtype_of<T>();
    v.bytes = {reinterpret_cast<const std::uint8_t*>(data.data()), data.size_bytes()};
    v.dims = dims;
    return v;
  }
  template <typename T>
  static FieldView of(const std::vector<T>& data, const Dims& dims) {
    return of(std::span<const T>(data), dims);
  }

  std::size_t elements() const { return bytes.size() / element_size(dtype); }
};

/// Reinterprets a byte buffer as `T` elements (the typed convenience over
/// the type-erased core; sizes must divide evenly).
template <typename T>
std::vector<T> bytes_as(const std::vector<std::uint8_t>& bytes) {
  std::vector<T> out(bytes.size() / sizeof(T));
  if (!out.empty()) {
    std::memcpy(out.data(), bytes.data(), out.size() * sizeof(T));
  }
  return out;
}

}  // namespace pcw
