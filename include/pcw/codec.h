// pcw public API — codecs and the codec registry.
//
// Every stored blob names its codec by a numeric filter id (the on-disk
// FilterId). The library registers its built-ins (0 = none, 1 = sz,
// 2 = zfp); out-of-tree codecs implement pcw::Codec, register a factory
// under a fresh id, and from then on the h5 layer resolves them through
// the registry exactly like the built-ins — writing and reading datasets
// with a custom codec never touches internal headers.
//
// The blob-level free functions (encode_blob / decode_blob / inspect_*)
// are the standalone-compressor surface the pcwz CLI is built on.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "pcw/status.h"
#include "pcw/types.h"

namespace pcw {

// Built-in filter ids (stable on-disk values).
inline constexpr std::uint32_t kCodecNone = 0;
inline constexpr std::uint32_t kCodecSz = 1;
inline constexpr std::uint32_t kCodecZfp = 2;

/// Capability metadata recorded at registration and surfaced through
/// registered_codecs()/find_codec() (how tools describe codecs they have
/// never heard of). The flags document the codec's container, they do
/// not switch library behavior: sparse region decode is driven by the
/// codec's own decode machinery (codecs without it are decoded whole and
/// sliced — always correct), and series chains require the built-in sz
/// temporal container regardless of what a custom codec declares.
struct CodecCaps {
  bool supports_decode_region = false;
  bool supports_temporal = false;
};

/// Extension interface for out-of-tree codecs. Implementations may throw
/// (std::runtime_error on corrupt blobs, std::invalid_argument on bad
/// requests); the library converts at its boundary — a registered codec's
/// exceptions never cross the pcw:: surface.
class Codec {
 public:
  virtual ~Codec() = default;

  /// Encodes `raw` element bytes (field.elements() elements of
  /// field.dtype with extents field.dims) to a self-describing blob.
  virtual std::vector<std::uint8_t> encode(const FieldView& field) const = 0;

  /// Decodes a blob back to exactly `expect_elems` elements of `dtype`.
  virtual std::vector<std::uint8_t> decode(std::span<const std::uint8_t> blob,
                                           DType dtype,
                                           std::uint64_t expect_elems) const = 0;
};

using CodecFactory = std::function<std::unique_ptr<Codec>()>;

/// Registers an out-of-tree codec under `filter_id`. Fails with
/// kAlreadyExists when the id is taken (built-ins included) and
/// kInvalidArgument on an empty name or factory. Thread-safe; typically
/// called once at startup.
Status register_codec(std::uint32_t filter_id, std::string name, CodecCaps caps,
                      CodecFactory factory);

struct CodecInfo {
  std::uint32_t filter_id = 0;
  std::string name;
  CodecCaps caps;
  bool builtin = false;
};

/// Every registered codec, built-ins first, then customs by id.
std::vector<CodecInfo> registered_codecs();

/// Lookup by id; kNotFound names the id and the known set.
Result<CodecInfo> find_codec(std::uint32_t filter_id);

// ---- per-field codec selection --------------------------------------------

enum class ErrorBoundMode : std::uint8_t { kAbsolute = 0, kRelative = 1 };

/// Which codec a field is stored with, plus its knobs. Builder-style
/// setters chain: CodecOptions().with_error_bound(1e-3).with_relative().
/// Only the knobs the selected codec understands apply (sz reads the
/// error-bound family, zfp reads rate_bits, customs read none).
struct CodecOptions {
  std::uint32_t filter_id = kCodecSz;
  // sz knobs:
  ErrorBoundMode mode = ErrorBoundMode::kAbsolute;
  double error_bound = 1e-3;
  std::uint32_t radius = 32768;
  bool lossless = true;
  // zfp knob:
  std::uint32_t rate_bits = 8;

  CodecOptions& with_codec(std::uint32_t id) { filter_id = id; return *this; }
  CodecOptions& with_error_bound(double eb) { error_bound = eb; return *this; }
  CodecOptions& with_relative() { mode = ErrorBoundMode::kRelative; return *this; }
  CodecOptions& with_radius(std::uint32_t r) { radius = r; return *this; }
  CodecOptions& with_lossless(bool on) { lossless = on; return *this; }
  CodecOptions& with_zfp_rate(std::uint32_t bits) {
    filter_id = kCodecZfp;
    rate_bits = bits;
    return *this;
  }

  static CodecOptions none() { return CodecOptions{}.with_codec(kCodecNone); }
};

// ---- standalone blob surface (what pcwz is built on) ----------------------

/// Upper bound on any supported container's header + block index size:
/// the leading kMaxBlobHeaderBytes of a blob always suffice for
/// inspect_blob()/inspect_blob_blocks(), so tools can summarize huge
/// datasets with header-sized reads.
inline constexpr std::size_t kMaxBlobHeaderBytes = 2048;

/// Parsed blob summary. Codec-specific fields are zero where they do not
/// apply (a zfp blob has no quantizer radius, etc.).
struct BlobInfo {
  std::uint32_t filter_id = 0;
  std::string codec;  // registered codec name ("sz", "zfp", ...)
  DType dtype = DType::kFloat32;
  Dims dims;
  // sz container details:
  double abs_error_bound = 0.0;
  std::uint32_t radius = 0;
  std::uint64_t outlier_count = 0;
  bool lz_applied = false;
  std::uint32_t version = 0;
  std::uint32_t block_count = 0;
  std::uint32_t temporal_blocks = 0;
  /// True for sz container v4: the blob carries CRC32C checksums.
  bool checksummed = false;
};

/// One per-block index entry of an sz blob (the marginal cost of decoding
/// that block in a partial read).
struct BlobBlockInfo {
  std::uint64_t elem_count = 0;
  std::uint64_t stored_bytes = 0;
  bool temporal = false;
};

/// Bits per element for a blob of `compressed_bytes` covering
/// `element_count` values.
inline double bit_rate(std::size_t compressed_bytes, std::size_t element_count) {
  return element_count == 0 ? 0.0
                            : 8.0 * static_cast<double>(compressed_bytes) /
                                  static_cast<double>(element_count);
}

/// Compresses one field into a standalone blob with the selected codec.
Result<std::vector<std::uint8_t>> encode_blob(const FieldView& field,
                                              const CodecOptions& options);

/// A decoded standalone blob: the element bytes plus what the container
/// said about them.
struct DecodedBlob {
  DType dtype = DType::kFloat32;
  Dims dims;
  std::vector<std::uint8_t> bytes;

  template <typename T>
  std::vector<T> as() const {
    return bytes_as<T>(bytes);
  }
};

/// Decompresses a standalone blob, sniffing the codec from the container
/// magic. Supports the built-in self-describing containers (sz and zfp);
/// blobs from registered custom codecs are not self-describing — decode
/// those through the Codec interface with their known id and element
/// count. `prev` supplies the reconstructed reference step for sz
/// temporal blobs (empty view for spatial blobs; required —
/// kFailedPrecondition — for temporal ones).
Result<DecodedBlob> decode_blob(std::span<const std::uint8_t> blob,
                                const FieldView& prev = {});

/// Parses a blob's container header without touching the payload
/// (built-in self-describing containers only, like decode_blob).
Result<BlobInfo> inspect_blob(std::span<const std::uint8_t> blob);

/// The per-block index of an sz blob (one synthetic whole-field entry for
/// v1 containers); kInvalidArgument for non-sz blobs.
Result<std::vector<BlobBlockInfo>> inspect_blob_blocks(std::span<const std::uint8_t> blob);

/// verify_blob() outcome — a non-throwing damage report (`pcwz verify`).
struct BlobVerifyReport {
  bool parsed = false;        // container header parsed and consistent
  std::uint32_t version = 0;  // container version (0 when unparseable)
  bool checksummed = false;   // the blob carries CRCs to check (sz v4)
  /// Parsed, structurally sound, and every applicable checksum matched.
  /// For containers without checksums this is structural consistency only.
  bool ok = false;
  /// Deep mode, checksummed sz blobs: indices of blocks whose CRC failed.
  std::vector<std::uint32_t> damaged_blocks;
  std::string detail;  // first failure, human-readable ("" when ok)
};

/// Verifies a standalone blob without decoding it and without failing:
/// damage comes back in the report, never as an error Status. The cheap
/// pass checks structure plus (checksummed sz blobs) the header and
/// stored-payload CRCs — enough to detect any corruption. `deep`
/// additionally checks the codebook and every per-block CRC, localizing
/// damage to block indices. Non-sz containers get a structural parse only.
BlobVerifyReport verify_blob(std::span<const std::uint8_t> blob, bool deep = false);

}  // namespace pcw
