// pcw toolkit — synthetic scientific workloads (Nyx/VPIC-like fields,
// noise models, domain decomposition) used by the examples and benches.
//
// In-tree convenience surface: re-exports the library's data layer so
// examples/tools/bench compile against "pcw/" headers only. Not part of
// the installed API (see docs/public_api.md).
#pragma once

#include "data/noise.h"      // IWYU pragma: export
#include "data/workloads.h"  // IWYU pragma: export
#include "pcw/bridge.h"      // IWYU pragma: export
#include "pcw/types.h"

namespace pcw::data {

// Façade-typed overloads, so code written against pcw::Dims drives the
// generators without spelling the internal extent type.

inline void fill_nyx_field(std::span<float> out, const pcw::Dims& local,
                           const std::array<std::size_t, 3>& origin,
                           const pcw::Dims& global, NyxField field, std::uint64_t seed,
                           double time = 0.0) {
  fill_nyx_field(out, as_internal(local), origin, as_internal(global), field, seed,
                 time);
}

inline std::vector<float> make_nyx_field(const pcw::Dims& global, NyxField field,
                                         std::uint64_t seed, double time = 0.0) {
  return make_nyx_field(as_internal(global), field, seed, time);
}

inline std::vector<float> make_rtm_field(const pcw::Dims& global, std::uint64_t seed,
                                         double time = 0.4) {
  return make_rtm_field(as_internal(global), seed, time);
}

inline BlockDecomposition decompose(const pcw::Dims& global, int nranks) {
  return decompose(as_internal(global), nranks);
}

}  // namespace pcw::data
