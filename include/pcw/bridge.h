// pcw toolkit — bridges between the public façade value types and the
// engine-internal ones, for in-tree code that mixes the façade with the
// toolkit headers (workloads/models/sim/kernels).
//
// In-tree convenience surface; not part of the installed API.
#pragma once

#include "pcw/types.h"
#include "sz/dims.h"

namespace pcw {

inline Dims as_dims(const sz::Dims& d) { return {d.d0, d.d1, d.d2}; }
inline sz::Dims as_internal(const Dims& d) { return {d.d0, d.d1, d.d2}; }

inline Region as_region(const sz::Region& r) {
  Region out;
  out.lo = r.lo;
  out.hi = r.hi;
  return out;
}
inline sz::Region as_internal(const Region& r) {
  sz::Region out;
  out.lo = r.lo;
  out.hi = r.hi;
  return out;
}

}  // namespace pcw
