// pcw toolkit — the compression kernel internals (Lorenzo stencil,
// canonical Huffman, bitstreams, block splitting, the sz container, the
// zfp stand-in, the shared thread pool) for stage-level benchmarking.
//
// In-tree convenience surface for bench_kernels and kernel-level tools;
// applications compress through pcw/codec.h instead. Not part of the
// installed API (see docs/public_api.md).
#pragma once

#include "sz/blocks.h"         // IWYU pragma: export
#include "sz/compressor.h"     // IWYU pragma: export
#include "sz/dims.h"           // IWYU pragma: export
#include "sz/huffman.h"        // IWYU pragma: export
#include "sz/kernels.h"        // IWYU pragma: export
#include "sz/lorenzo.h"        // IWYU pragma: export
#include "util/bitstream.h"    // IWYU pragma: export
#include "util/cpu.h"          // IWYU pragma: export
#include "util/thread_pool.h"  // IWYU pragma: export
#include "zfp/zfp.h"           // IWYU pragma: export
