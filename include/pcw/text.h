// pcw toolkit — terminal tables, summary statistics, histograms, and the
// wall-clock timer the examples/tools/benches format their output with.
//
// In-tree convenience surface: re-exports the library's util formatting
// layer so examples/tools/bench compile against "pcw/" headers only. Not
// part of the installed API (see docs/public_api.md).
#pragma once

#include "util/histogram.h"  // IWYU pragma: export
#include "util/stats.h"      // IWYU pragma: export
#include "util/table.h"      // IWYU pragma: export
#include "util/timer.h"      // IWYU pragma: export
#include "util/trace.h"      // IWYU pragma: export
