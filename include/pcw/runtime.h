// pcw public API — the SPMD runtime handle.
//
// The engine's collective operations (parallel writes, repartitioned
// restarts) run SPMD: N ranks execute the same code against one shared
// file, exactly like an MPI program. pcw::run spawns the ranks (threads
// over shared memory) and hands each a Rank handle; Writer/Reader methods
// taking a Rank& are collective — every rank must call them in the same
// order with agreeing metadata.
#pragma once

#include <functional>

#include "pcw/status.h"

namespace pcw {

/// One rank's handle inside a pcw::run region. Not constructible by user
/// code; valid only for the duration of the callback it is passed to.
class Rank {
 public:
  struct Impl;

  int rank() const;
  int size() const;
  void barrier();

  /// Internal accessor (stable across versions, not for user code).
  Impl& impl() const { return *impl_; }

  explicit Rank(Impl* impl) : impl_(impl) {}

 private:
  Impl* impl_;
};

/// Runs `body` on `ranks` SPMD ranks and blocks until all complete. If
/// any rank throws or fails, the group is aborted (ranks blocked in
/// collectives wake up) and the first failure comes back as an error
/// Status — exceptions never escape.
Status run(int ranks, const std::function<void(Rank&)>& body);

}  // namespace pcw
