// pcw public API — observability: the metrics registry snapshot and the
// tracing control plane.
//
// The library is instrumented unconditionally. Metrics (counters, queue
// gauges, latency percentiles) are always on — an uncontended relaxed
// atomic per block/syscall-grained event — and snapshot into the plain
// Telemetry struct below. Tracing (scoped spans over every pipeline
// stage: sz quantize/huffman/lz per block, the h5 async write queue,
// the engines' per-step phases) is dormant until armed, either here via
// RuntimeOptions or by the PCW_TRACE=<path>[:cap=<n>] environment
// variable; armed traces export as Chrome trace-event JSON loadable in
// Perfetto or chrome://tracing.
//
// Writer, Reader, and SeriesWriter each expose telemetry() — the
// process-wide delta since that handle was created — while
// metrics_snapshot() reads the absolute process-wide totals.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "pcw/status.h"

namespace pcw {

/// Plain snapshot of every process-wide metric. Counters are cumulative
/// since process start (or the last metrics_reset()); *_p50/_p99 are
/// log2-bucket upper bounds over all samples so far; io_queue_depth is
/// the instantaneous async-queue level and io_queue_hiwater its peak.
struct Telemetry {
  // sz codec pipeline
  std::uint64_t sz_bytes_in = 0;         // raw bytes entering compress()
  std::uint64_t sz_bytes_out = 0;        // container bytes leaving compress()
  std::uint64_t sz_blocks_encoded = 0;   // blocks quantized + entropy-coded
  std::uint64_t sz_blocks_decoded = 0;   // blocks entropy-decoded
  std::uint64_t sz_temporal_blocks = 0;  // encoded blocks on the temporal path
  std::uint64_t sz_outliers = 0;         // unpredictable values stored verbatim
  std::uint64_t sz_huffman_symbols = 0;  // symbols through the Huffman tables
  // h5 I/O + async queue
  std::uint64_t io_writes = 0;
  std::uint64_t io_write_bytes = 0;
  std::uint64_t io_reads = 0;
  std::uint64_t io_read_bytes = 0;
  std::uint64_t io_syncs = 0;
  std::uint64_t io_write_retries = 0;
  std::uint64_t io_async_enqueues = 0;
  std::uint64_t io_queue_depth = 0;
  std::uint64_t io_queue_hiwater = 0;
  std::uint64_t io_write_p50_ns = 0;
  std::uint64_t io_write_p99_ns = 0;
  // fault injection (PCW_FAULT): ops observed while a plan was armed
  std::uint64_t fault_writes = 0;
  std::uint64_t fault_reads = 0;
  std::uint64_t fault_syncs = 0;
  std::uint64_t fault_fired = 0;
  // engine / series
  std::uint64_t engine_writes = 0;
  std::uint64_t series_steps = 0;
  std::uint64_t chain_links_decoded = 0;
  std::uint64_t degraded_reads = 0;
  // checkpoint-store service (pcwd)
  std::uint64_t store_requests = 0;         // protocol requests served
  std::uint64_t store_cache_hits = 0;       // decoded-block cache hits
  std::uint64_t store_cache_misses = 0;     // misses that became decodes
  std::uint64_t store_cache_evictions = 0;  // evictions under the byte budget
  std::uint64_t store_coalesced = 0;        // readers joining an in-flight decode
  std::uint64_t store_write_batches = 0;    // group commits of admitted writes
  std::uint64_t store_cache_bytes = 0;      // bytes resident in the cache
  std::uint64_t store_cache_hiwater = 0;    // peak resident bytes
  std::uint64_t store_active_clients = 0;   // currently connected clients
  std::uint64_t store_clients_hiwater = 0;  // peak concurrent clients
  // tracing
  std::uint64_t trace_spans = 0;    // events recorded since arming
  std::uint64_t trace_dropped = 0;  // of those, lost to ring wrap
};

/// One (name, value) row of a Telemetry — the iteration order the CLIs'
/// --stats tables print in.
struct TelemetryItem {
  const char* name;
  std::uint64_t value;
};

/// Absolute process-wide totals.
Telemetry metrics_snapshot();

/// Zeroes every metric (tests, CLI sessions). Does not touch the trace
/// buffers — use trace_reset() for those.
void metrics_reset();

/// Flattens a snapshot into named rows, in the declaration order above.
std::vector<TelemetryItem> telemetry_items(const Telemetry& t);

/// Process-wide runtime knobs, builder-style like the other *Options.
struct RuntimeOptions {
  /// Arm tracing and flush the Chrome trace-event JSON to this path at
  /// process exit (same effect as PCW_TRACE=<path>). Empty = leave
  /// tracing as it is.
  std::string trace_path;
  /// Arm tracing with no exit flush: events stay buffered for
  /// flush_trace() / trace_span_stats().
  bool trace_buffered = false;
  /// Per-thread ring capacity in events (0 = keep the default, 32768).
  /// Rings wrap, dropping oldest; Telemetry::trace_dropped counts them.
  std::size_t trace_capacity = 0;

  RuntimeOptions& with_trace(std::string path) {
    trace_path = std::move(path);
    return *this;
  }
  RuntimeOptions& with_trace_buffered(bool on = true) {
    trace_buffered = on;
    return *this;
  }
  RuntimeOptions& with_trace_capacity(std::size_t events) {
    trace_capacity = events;
    return *this;
  }
};

/// Applies the runtime knobs (arming tracing as requested). Safe to call
/// more than once; later calls win.
Status configure(const RuntimeOptions& options);

/// true while spans are being collected (armed via configure(), a bench
/// harness, or PCW_TRACE).
bool tracing_active();

/// Stops tracing and writes the buffered events as Chrome trace-event
/// JSON to `path` (empty = the path configure()/PCW_TRACE registered).
/// Events are kept for a second flush; trace_reset() discards them.
Status flush_trace(const std::string& path = "");

/// Stops collecting spans; buffered events are kept.
void trace_stop();

/// Stops collecting and discards every buffered event.
void trace_reset();

/// Aggregate per-span-site view of the buffered events: count and total
/// wall time per distinct (category, name) — what the CLIs' --stats
/// print when tracing was active.
struct SpanStat {
  const char* name;
  const char* cat;
  std::uint64_t count;
  std::uint64_t total_ns;
};
std::vector<SpanStat> trace_span_stats();

}  // namespace pcw
