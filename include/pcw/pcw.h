// pcw — public API umbrella.
//
// Predictive-compression parallel write path (SC'22 reproduction):
//
//   #include "pcw/pcw.h"
//
//   auto writer = pcw::Writer::create("out.pcw5");
//   pcw::run(8, [&](pcw::Rank& rank) {
//     pcw::Field f{"rho", pcw::FieldView::of(my_slice, local_dims), global_dims,
//                  pcw::CodecOptions().with_error_bound(1e-3)};
//     writer->write(rank, {&f, 1});
//     writer->close(rank);
//   });
//
// Everything lives in namespace pcw. See docs/public_api.md for the tour
// (error model, codec registry extension how-to, series engine).
#pragma once

#include "pcw/codec.h"     // codec registry, blob-level compress/inspect
#include "pcw/reader.h"    // Reader, DatasetInfo, region + multi-field reads
#include "pcw/runtime.h"   // SPMD run() + Rank
#include "pcw/series.h"    // SeriesWriter, restart(), read_series()
#include "pcw/status.h"    // Status, Result<T>
#include "pcw/telemetry.h" // Telemetry, tracing control plane
#include "pcw/types.h"     // DType, Dims, Region, FieldView
#include "pcw/writer.h"    // Writer, Field, WriterOptions
