// pcw toolkit — the paper's analytic models: compression-ratio
// estimation, compression/write throughput fits, and the extra-space
// (R_space) policy.
//
// In-tree convenience surface: re-exports the library's model layer so
// examples/tools/bench compile against "pcw/" headers only. Not part of
// the installed API (see docs/public_api.md).
#pragma once

#include "model/extra_space.h"       // IWYU pragma: export
#include "model/ratio_model.h"       // IWYU pragma: export
#include "model/throughput_model.h"  // IWYU pragma: export
