// pcw public API — the read/restart path.
//
// A Reader opens one shared file and exposes the dataset table, whole-
// and region reads, and the pipelined multi-field restart engine. The
// type-erased `*_bytes` methods carry an expected DType tag and return
// raw element bytes; the template wrappers deliver typed vectors.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "pcw/runtime.h"
#include "pcw/status.h"
#include "pcw/telemetry.h"
#include "pcw/types.h"

namespace pcw {

/// Checksum depth applied while decoding v4 containers (a no-op on blobs
/// from earlier format versions, which carry no checksums).
enum class VerifyMode : std::uint8_t {
  kOff = 0,    // trust the bytes; fastest
  kBlob = 1,   // header + whole-payload CRC in one pass, before any decode
  kBlock = 2,  // header + codebook + per-decoded-block CRCs (partial reads
               // verify only the blocks they touch); the default
};

struct ReaderOptions {
  /// Background I/O threads serving async payload prefetch.
  unsigned async_threads = 1;
  /// Worker threads per partition block decode (0 = all hardware threads).
  unsigned decompress_threads = 1;
  /// true: multi-field reads prefetch payloads on the async queue so
  /// field k+1's I/O overlaps field k's decode.
  bool pipeline = true;
  /// Checksum verification applied to every decoded container. Corruption
  /// surfaces as kCorruptData naming dataset/partition/block.
  VerifyMode verify = VerifyMode::kBlock;

  ReaderOptions& with_async_threads(unsigned n) { async_threads = n; return *this; }
  ReaderOptions& with_decompress_threads(unsigned n) { decompress_threads = n; return *this; }
  ReaderOptions& with_pipeline(bool on) { pipeline = on; return *this; }
  ReaderOptions& with_verify(VerifyMode mode) { verify = mode; return *this; }
};

enum class Layout : std::uint8_t { kContiguous = 0, kPartitioned = 1 };

/// One rank's stored slice of a partitioned dataset.
struct PartitionInfo {
  std::uint32_t rank = 0;
  std::uint64_t elem_offset = 0;
  std::uint64_t elem_count = 0;
  std::uint64_t file_offset = 0;
  std::uint64_t reserved_bytes = 0;
  std::uint64_t actual_bytes = 0;
  std::uint64_t overflow_offset = 0;
  std::uint64_t overflow_bytes = 0;
};

struct DatasetInfo {
  std::string name;
  DType dtype = DType::kFloat32;
  Dims dims;
  Layout layout = Layout::kContiguous;
  std::uint32_t filter_id = 0;  // codec id; resolve via find_codec()
  double error_bound = 0.0;
  std::uint64_t stored_bytes = 0;  // actual payload bytes on disk
  std::vector<PartitionInfo> partitions;

  // Time-series membership (empty/zero for plain datasets).
  bool series_member = false;
  std::string series_base;
  std::uint32_t series_step = 0;
  std::uint32_t series_ref_step = 0;
  bool is_keyframe() const { return series_member && series_ref_step == series_step; }
};

/// One field of a multi-field read: whole field, or a hyperslab of it.
struct ReadRequest {
  std::string name;
  std::optional<Region> region;  // nullopt = everything
};

/// Outcome and cost accounting of a read call (accumulated across fields).
struct ReadReport {
  double plan_seconds = 0.0;
  double read_seconds = 0.0;
  double decompress_seconds = 0.0;
  double total_seconds = 0.0;

  std::uint64_t bytes_read = 0;
  std::uint64_t elements_out = 0;
  std::uint64_t partitions_total = 0;
  std::uint64_t partitions_read = 0;
  std::uint64_t blocks_total = 0;
  std::uint64_t blocks_decoded = 0;
};

// ---- scrub (offline damage audit) -----------------------------------------

enum class ScrubHealth : std::uint8_t {
  kClean = 0,       // every check passed
  kDamaged = 1,     // some payload failed verification (or its chain did)
  kUnreadable = 2,  // no payload byte of the dataset could even be read
};

struct ScrubDataset {
  std::string name;
  ScrubHealth state = ScrubHealth::kClean;
  /// Damaged, but a degraded series read can still deliver data for this
  /// dataset (its restart chain's keyframe is intact). False when clean.
  bool salvageable = false;
  std::uint64_t partitions = 0;
  std::uint64_t damaged_partitions = 0;
  /// First damage found, naming partition (and blocks when localized).
  std::string detail;
};

struct ScrubReport {
  std::vector<ScrubDataset> datasets;
  std::uint64_t clean = 0;
  std::uint64_t damaged = 0;
  std::uint64_t unreadable = 0;
  bool ok() const { return damaged == 0 && unreadable == 0; }
};

class Reader {
 public:
  struct Impl;

  static Result<Reader> open(const std::string& path, ReaderOptions options = {});

  /// Invalid handle; every operation fails with kFailedPrecondition.
  Reader() = default;
  bool valid() const { return impl_ != nullptr; }

  std::vector<DatasetInfo> datasets() const;
  Result<DatasetInfo> dataset(const std::string& name) const;
  /// Resolves one step of a time series by its logical field name
  /// (DatasetInfo::series_base); kNotFound when absent.
  Result<DatasetInfo> series_step(const std::string& base, std::uint32_t step) const;
  std::uint64_t file_bytes() const;
  std::string path() const;

  /// Process-wide telemetry delta since this reader was opened (zeroed
  /// struct on an invalid handle). Counters are differences; queue depth,
  /// high-water and latency percentiles read current process state.
  Telemetry telemetry() const;

  /// Whole dataset as the flattened global array. `expected` guards the
  /// element type and must be kFloat32 or kFloat64 (the dtypes the format
  /// stores) — discover a dataset's dtype via dataset(name) first.
  Result<std::vector<std::uint8_t>> read_bytes(const std::string& name,
                                               DType expected) const;

  /// One hyperslab, decoding only the blocks the selection touches.
  Result<std::vector<std::uint8_t>> read_region_bytes(const std::string& name,
                                                      const Region& region, DType expected,
                                                      ReadReport* report = nullptr) const;

  /// Collective pipelined multi-field read (the parallel restart engine):
  /// result i holds requests[i]'s selection in its own row-major order.
  Result<std::vector<std::vector<std::uint8_t>>> read_fields_bytes(
      Rank& rank, std::span<const ReadRequest> requests, DType expected,
      ReadReport* report = nullptr) const;

  /// One partition's stored payload (slot + overflow joined), for blob-
  /// level tooling (pcwz/pcw5ls style inspection).
  Result<std::vector<std::uint8_t>> partition_payload(const std::string& name,
                                                      std::size_t part_index) const;
  /// The payload's leading `max_bytes` (container header economy:
  /// kMaxBlobHeaderBytes always suffice for inspect_blob*).
  Result<std::vector<std::uint8_t>> partition_prefix(const std::string& name,
                                                     std::size_t part_index,
                                                     std::uint64_t max_bytes) const;

  /// Audits every dataset for damage without decoding payloads: extent
  /// and structure checks plus, for checksummed (v4) containers, the
  /// stored CRCs. `deep` additionally CRCs the codebook and every block,
  /// localizing damage to block indices. Series steps whose restart chain
  /// passes through a damaged ancestor are reported damaged too, with
  /// `salvageable` telling whether a degraded read can still recover them.
  Result<ScrubReport> scrub(bool deep = true) const;

  // ---- typed fast paths ---------------------------------------------------
  //
  // Defined in the library and explicitly instantiated for float and
  // double (the element types the format stores), so the typed path
  // returns the engine's buffers by move — no byte-conversion copies.
  // Use the `*_bytes` methods when the dtype is only known at runtime.

  template <typename T>
  Result<std::vector<T>> read(const std::string& name) const;

  template <typename T>
  Result<std::vector<T>> read_region(const std::string& name, const Region& region,
                                     ReadReport* report = nullptr) const;

  template <typename T>
  Result<std::vector<std::vector<T>>> read_fields(Rank& rank,
                                                  std::span<const ReadRequest> requests,
                                                  ReadReport* report = nullptr) const;

  /// Internal accessor (stable across versions, not for user code).
  const std::shared_ptr<Impl>& impl() const { return impl_; }

 private:
  std::shared_ptr<Impl> impl_;
};

/// The hyperslab rank `rank` of `nranks` owns on a repartitioned restart:
/// the global box cut into contiguous slabs along its slowest non-unit
/// axis, remainder spread over the leading ranks.
Region restart_region(const Dims& global, int rank, int nranks);

}  // namespace pcw
