// pcw public API — the checkpoint-store service (pcwd).
//
// A Server owns a catalog of `.pcw5` files and serves concurrent clients
// over a Unix or TCP stream socket with a small length-prefixed binary
// protocol (docs/store.md). Reads go through a byte-bounded LRU cache of
// decoded blocks and keyframe reconstructions with single-flight
// coalescing of identical in-flight decodes; concurrent WRITE_STEPs are
// admitted in arrival order and group-committed through the container's
// dual-slot commit, so remote readers always observe a committed state —
// old or new, never a hybrid.
//
// A Client is a thin blocking handle over one connection. All calls are
// serialized per handle; open one Client per thread for parallelism.
// Addresses use the grammar "unix:<path>" or "tcp:<host>:<port>"
// ("tcp:host:0" asks the kernel for an ephemeral port, reported back by
// Server::address()).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "pcw/reader.h"
#include "pcw/status.h"
#include "pcw/types.h"

namespace pcw::store {

struct StoreOptions {
  /// Byte budget of the decoded-block cache (0 disables caching; every
  /// read decodes). Entries larger than one shard's share bypass the
  /// cache entirely.
  std::uint64_t cache_bytes = 256ull << 20;
  /// Cache shard count (power of two recommended); each shard has its
  /// own lock, LRU list, and cache_bytes / cache_shards budget.
  unsigned cache_shards = 8;
  /// Options for the server-side readers backing every catalog file.
  ReaderOptions reader;

  StoreOptions& with_cache_bytes(std::uint64_t bytes) {
    cache_bytes = bytes;
    return *this;
  }
  StoreOptions& with_cache_shards(unsigned shards) {
    cache_shards = shards;
    return *this;
  }
  StoreOptions& with_reader(ReaderOptions options) {
    reader = options;
    return *this;
  }
};

/// OPEN access mode. kRead requires an existing committed file; kCreate
/// stages a new file (atomic-create: visible at its path only once the
/// first write batch commits).
enum class OpenMode : std::uint8_t { kRead = 0, kCreate = 1 };

/// One catalog entry as reported by OPEN and the catalog listing.
struct RemoteFile {
  std::uint32_t id = 0;  // handle all per-file requests take
  std::string path;
  bool writable = false;
  std::uint64_t generation = 0;  // commits observed (0 = nothing committed)
  std::uint32_t datasets = 0;
};

/// The subset of DatasetInfo the LIST reply carries.
struct RemoteDataset {
  std::string name;
  DType dtype = DType::kFloat32;
  Dims dims;
  std::uint32_t filter_id = 0;
  std::uint64_t stored_bytes = 0;
  std::uint32_t partitions = 0;
  bool series_member = false;
  std::string series_base;
  std::uint32_t series_step = 0;
  std::uint32_t series_ref_step = 0;
};

/// A decoded read: raw element bytes plus their dtype and extents.
struct RemoteRead {
  DType dtype = DType::kFloat32;
  Dims extents;
  std::vector<std::uint8_t> bytes;
};

/// WRITE_STEP acknowledgement, sent after the group commit that made the
/// step durable.
struct RemoteStep {
  std::uint32_t step = 0;
  bool keyframe = false;
  std::uint64_t generation = 0;  // file generation the step committed in
};

/// One (name, value) row of the STATS reply — the server's
/// pcw::metrics_snapshot() flattened through telemetry_items().
struct RemoteStat {
  std::string name;
  std::uint64_t value = 0;
};

class Server {
 public:
  struct Impl;

  /// Binds `address`, starts the accept loop, and returns a running
  /// server. The returned handle is the only way to stop it.
  static Result<Server> start(const std::string& address, StoreOptions options = {});

  /// Invalid handle; every operation fails / returns defaults.
  Server() = default;
  bool valid() const { return impl_ != nullptr; }

  /// The canonical listen address ("unix:<path>" / "tcp:<host>:<port>"
  /// with any ephemeral port resolved), for handing to clients.
  std::string address() const;

  /// Blocks until some client sends SHUTDOWN or stop() is called
  /// elsewhere. Returns immediately on an invalid handle.
  void wait();
  /// Same, with a timeout; true once shutdown has been requested.
  bool wait_for_ms(unsigned ms);

  /// Graceful stop: closes the listener, disconnects clients, joins all
  /// service threads, and commits + closes writable catalog files.
  /// Idempotent; the first call's status sticks.
  Status stop();

 private:
  std::shared_ptr<Impl> impl_;
};

class Client {
 public:
  struct Impl;

  static Result<Client> connect(const std::string& address);

  /// Invalid handle; every operation fails with kFailedPrecondition.
  Client() = default;
  bool valid() const { return impl_ != nullptr; }

  /// Opens (or, with kCreate, creates) a file server-side and returns
  /// its catalog entry. Opening the same path twice returns the same id.
  Result<RemoteFile> open(const std::string& path, OpenMode mode = OpenMode::kRead);

  /// Every file in the server's catalog.
  Result<std::vector<RemoteFile>> catalog();

  /// The dataset table of one open file.
  Result<std::vector<RemoteDataset>> list(std::uint32_t file_id);

  /// Whole dataset (region = nullopt) or one hyperslab of it, decoded
  /// server-side (through the cache). `expected` nullopt accepts the
  /// stored dtype; a value makes the server enforce it.
  Result<RemoteRead> read_region(std::uint32_t file_id, const std::string& dataset,
                                 const std::optional<Region>& region = std::nullopt,
                                 std::optional<DType> expected = std::nullopt);

  /// One step of a time series by logical field name, resolving the
  /// restart chain server-side.
  Result<RemoteRead> read_step(std::uint32_t file_id, const std::string& base,
                               std::uint32_t step,
                               const std::optional<Region>& region = std::nullopt,
                               std::optional<DType> expected = std::nullopt);

  /// Appends the next step of field `data` (name taken from `field`).
  /// The first WRITE_STEP for a field pins its dims, dtype, error bound
  /// and keyframe cadence. Blocks until the admitting group commit has
  /// made the step durable.
  Result<RemoteStep> write_step(std::uint32_t file_id, const std::string& field,
                                const FieldView& data, double error_bound,
                                std::uint32_t keyframe_interval = 8);

  /// Server-side damage audit of one open file (Reader::scrub).
  Result<ScrubReport> scrub(std::uint32_t file_id, bool deep = true);

  /// The server's current metrics snapshot as named rows.
  Result<std::vector<RemoteStat>> stats();

  /// Round-trip liveness probe.
  Status ping();

  /// Asks the server to shut down (acknowledged before it begins).
  Status shutdown_server();

  /// Closes the connection; further calls fail with kFailedPrecondition.
  Status close();

 private:
  std::shared_ptr<Impl> impl_;
};

}  // namespace pcw::store
