// pcw toolkit — the figure-reproduction simulation stack: the timing
// engine, the Algorithm-1 scheduler, the I/O-platform simulator, the
// simulated-MPI runtime, and the raw h5lite file handle they drive.
//
// In-tree convenience surface for the bench/ executables that replay the
// paper's figures; applications use the pcw::Writer/Reader façade
// instead. Not part of the installed API (see docs/public_api.md).
#pragma once

#include "core/scheduler.h"      // IWYU pragma: export
#include "core/timing_engine.h"  // IWYU pragma: export
#include "h5/file.h"             // IWYU pragma: export
#include "iosim/platform.h"      // IWYU pragma: export
#include "iosim/simulator.h"     // IWYU pragma: export
#include "mpi/comm.h"            // IWYU pragma: export
