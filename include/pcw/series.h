// pcw public API — the time-series engine.
//
// SeriesWriter appends one checkpoint step per write_step call, keeping
// each field's decoded previous step as the temporal reference and
// inserting spatial keyframes every K steps. restart()/read_series()
// reconstruct any step by chain-decoding from the nearest keyframe,
// fetching whole-chain payloads asynchronously and entropy-decoding only
// the blocks a sparse request touches — at every link of the chain.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "pcw/reader.h"
#include "pcw/runtime.h"
#include "pcw/status.h"
#include "pcw/types.h"
#include "pcw/writer.h"

namespace pcw {

struct SeriesOptions {
  /// K: a spatial keyframe every K steps (step 0 always is one). K=1
  /// disables the temporal predictor; larger K trades restart chain
  /// length for compression ratio.
  std::uint32_t keyframe_interval = 8;
  /// Worker threads per step compression (0 = all hardware threads).
  unsigned compress_threads = 1;
  /// true: async-write overlap (field k+1 compresses while field k lands).
  bool pipeline = true;
  /// true: every write_step ends with a crash-consistent commit, bounding
  /// data loss after a crash to one step at the cost of three fsyncs per
  /// step. false: data becomes durable when the writer closes.
  bool commit_every_step = false;

  SeriesOptions& with_keyframe_interval(std::uint32_t k) { keyframe_interval = k; return *this; }
  SeriesOptions& with_compress_threads(unsigned n) { compress_threads = n; return *this; }
  SeriesOptions& with_pipeline(bool on) { pipeline = on; return *this; }
  SeriesOptions& with_commit_every_step(bool on) { commit_every_step = on; return *this; }
};

/// Per-rank outcome of one write_step call.
struct SeriesStepReport {
  std::uint32_t step = 0;
  bool keyframe = false;
  double compress_seconds = 0.0;
  double write_seconds = 0.0;
  double total_seconds = 0.0;
  std::uint64_t raw_bytes = 0;
  std::uint64_t compressed_bytes = 0;
  std::uint32_t temporal_blocks = 0;
  std::uint32_t spatial_blocks = 0;
};

/// One instance per rank, living for the whole run (it holds the
/// temporal references). Collective: every rank calls write_step with
/// the same field names/global dims in the same order, every step; the
/// field set and element type are pinned by the first call.
class SeriesWriter {
 public:
  struct Impl;

  static Result<SeriesWriter> create(Writer& writer, SeriesOptions options = {});

  /// Invalid handle; write_step fails with kFailedPrecondition.
  SeriesWriter() = default;
  bool valid() const { return impl_ != nullptr; }

  Result<SeriesStepReport> write_step(Rank& rank, std::span<const Field> fields);

  /// Steps written so far == the step index the next call will get.
  std::uint32_t next_step() const;

  /// Process-wide telemetry delta since this series writer was created
  /// (zeroed struct on an invalid handle).
  Telemetry telemetry() const;

 private:
  std::shared_ptr<Impl> impl_;
};

/// The keyframe planner: pure function of (step, K), identical on every
/// rank.
inline bool is_keyframe_step(std::uint32_t step, std::uint32_t interval) {
  return interval == 0 || step % interval == 0;
}

struct SeriesReadOptions {
  unsigned decompress_threads = 1;
  bool pipeline = true;
  /// Checksum depth applied at every link of the restart chain (no-op on
  /// blobs from format versions without checksums).
  VerifyMode verify = VerifyMode::kBlock;
  /// true: when a non-keyframe link of a field's restart chain is corrupt,
  /// deliver the chain's keyframe step for that whole field instead of
  /// failing, recording the downgrade in SeriesReadReport::degraded. A
  /// corrupt keyframe still fails with kCorruptData.
  bool degraded = false;

  SeriesReadOptions& with_decompress_threads(unsigned n) { decompress_threads = n; return *this; }
  SeriesReadOptions& with_pipeline(bool on) { pipeline = on; return *this; }
  SeriesReadOptions& with_verify(VerifyMode mode) { verify = mode; return *this; }
  SeriesReadOptions& with_degraded(bool on) { degraded = on; return *this; }
};

/// One field the read had to time-travel: the requested step's chain was
/// damaged, so the chain's keyframe step was delivered instead.
struct DegradedRead {
  std::string dataset;             // the damaged step dataset ("rho@t0005")
  std::uint64_t partition = 0;     // partition whose payload was corrupt
  std::uint32_t step_requested = 0;
  std::uint32_t step_recovered = 0;  // keyframe step actually delivered
  std::string detail;              // underlying error (names the block)
};

/// Outcome and cost accounting for a chained series read.
struct SeriesReadReport {
  std::uint64_t steps_chained = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t elements_out = 0;
  std::uint64_t blocks_total = 0;
  std::uint64_t blocks_decoded = 0;
  double read_seconds = 0.0;
  double decompress_seconds = 0.0;
  double total_seconds = 0.0;
  /// Fields downgraded to their keyframe (SeriesReadOptions::degraded).
  std::vector<DegradedRead> degraded;
};

/// Single-rank restart: reconstructs `field` at `step` (whole field, or
/// `region` of it), chain-decoding from the nearest keyframe.
Result<std::vector<std::uint8_t>> restart_bytes(const Reader& reader,
                                                const std::string& field,
                                                std::uint32_t step, DType expected,
                                                const std::optional<Region>& region = std::nullopt,
                                                const SeriesReadOptions& options = {},
                                                SeriesReadReport* report = nullptr);

/// Typed fast path; instantiated in the library for float and double
/// (the dtypes the format stores), returning the engine's buffer by
/// move. Use restart_bytes when the dtype is only known at runtime.
template <typename T>
Result<std::vector<T>> restart(const Reader& reader, const std::string& field,
                               std::uint32_t step,
                               const std::optional<Region>& region = std::nullopt,
                               const SeriesReadOptions& options = {},
                               SeriesReadReport* report = nullptr);

/// Collective multi-field series read at `step`; result i holds
/// requests[i]'s selection (request names are series base names).
Result<std::vector<std::vector<std::uint8_t>>> read_series_bytes(
    Rank& rank, const Reader& reader, std::span<const ReadRequest> requests,
    std::uint32_t step, DType expected, const SeriesReadOptions& options = {},
    SeriesReadReport* report = nullptr);

/// Typed fast path; see restart<T>.
template <typename T>
Result<std::vector<std::vector<T>>> read_series(Rank& rank, const Reader& reader,
                                                std::span<const ReadRequest> requests,
                                                std::uint32_t step,
                                                const SeriesReadOptions& options = {},
                                                SeriesReadReport* report = nullptr);

}  // namespace pcw
