// pcw public API — the parallel write path.
//
// A Writer owns one shared output file. Writer::write is the paper's
// predictive-compression engine: ratio prediction, pre-computed offsets
// with extra space, async overlap, compression reordering — selected per
// WriterOptions::mode. Fields are passed type-erased (FieldView); codec
// choice per field is a CodecOptions naming any registered codec.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "pcw/codec.h"
#include "pcw/runtime.h"
#include "pcw/status.h"
#include "pcw/telemetry.h"
#include "pcw/types.h"

namespace pcw {

/// The four write paths of the paper's Fig. 4.
enum class WriteMode : std::uint8_t {
  kNoCompression = 0,     // independent raw writes (baseline 1)
  kFilterCollective = 1,  // compress -> size exchange -> collective write
  kOverlap = 2,           // predictive offsets + async overlap
  kOverlapReorder = 3,    // kOverlap + Algorithm-1 compression reordering
};

const char* to_string(WriteMode mode);

struct WriterOptions {
  WriteMode mode = WriteMode::kOverlapReorder;
  /// Extra-space ratio R_space reserved over predicted compressed sizes.
  double extra_space = 1.25;
  /// Worker threads per partition compression (0 = all hardware threads).
  unsigned compress_threads = 1;
  /// Background I/O threads for the async write queue.
  unsigned async_threads = 1;
  /// true: build the file under a temporary name and atomically rename it
  /// into place at the first commit, so the final path never names a
  /// half-written file. false: write in place (needed when the directory
  /// forbids renames).
  bool atomic_create = true;
  /// Retries (with backoff) for transient I/O errors on the async queue.
  unsigned write_retries = 3;

  WriterOptions& with_mode(WriteMode m) { mode = m; return *this; }
  WriterOptions& with_extra_space(double r) { extra_space = r; return *this; }
  WriterOptions& with_compress_threads(unsigned n) { compress_threads = n; return *this; }
  WriterOptions& with_async_threads(unsigned n) { async_threads = n; return *this; }
  WriterOptions& with_atomic_create(bool on) { atomic_create = on; return *this; }
  WriterOptions& with_write_retries(unsigned n) { write_retries = n; return *this; }
};

/// One field (dataset) as seen by one rank: this rank's slice, where it
/// sits in the global extents, and how to store it.
struct Field {
  std::string name;
  FieldView local;       // this rank's slice (dtype + bytes + local dims)
  Dims global_dims;      // logical global extents
  CodecOptions codec;    // which registered codec stores it, and its knobs
};

/// Per-rank outcome and phase timings of one write call.
struct WriteReport {
  double predict_seconds = 0.0;
  double exchange_seconds = 0.0;
  double compress_seconds = 0.0;
  double write_seconds = 0.0;
  double overflow_seconds = 0.0;
  double total_seconds = 0.0;

  std::uint64_t raw_bytes = 0;
  std::uint64_t compressed_bytes = 0;
  std::uint64_t reserved_bytes = 0;
  std::uint64_t overflow_bytes = 0;
  int overflow_partitions = 0;
  std::vector<int> order;  // compression order used
};

class Writer {
 public:
  struct Impl;

  /// Creates/truncates the output file. The returned handle is shared by
  /// every rank of a run (create once, capture by reference).
  static Result<Writer> create(const std::string& path, WriterOptions options = {});

  /// Invalid handle; every operation fails with kFailedPrecondition.
  Writer() = default;
  bool valid() const { return impl_ != nullptr; }

  /// Collective write of all fields through the configured mode. Every
  /// rank passes slices of the same field names/global dims in the same
  /// order. Fields stored with kCodecSz run the full predictive engine;
  /// other codecs (built-in or registered) take the collective filter
  /// path; mode kNoCompression stores everything raw.
  Result<WriteReport> write(Rank& rank, std::span<const Field> fields);

  /// Collective crash-consistent commit: flushes async writes, fsyncs the
  /// data, lands a checksummed footer, and fsyncs again — after it
  /// returns, everything written so far survives a crash (the previous
  /// committed state stays intact as the fallback until then). Cheap
  /// enough to call per checkpoint; close() commits implicitly.
  Status commit(Rank& rank);
  /// Non-collective commit for single-writer use.
  Status commit();

  /// Collective close: flushes async writes, rank 0 lands the footer.
  Status close(Rank& rank);
  /// Non-collective close for single-writer use.
  Status close();

  /// Total file bytes (superblock + data + footer); valid after close.
  std::uint64_t file_bytes() const;
  std::string path() const;

  /// Process-wide telemetry delta since this writer was created (zeroed
  /// struct on an invalid handle). Counters are differences; queue depth,
  /// high-water and latency percentiles read current process state.
  Telemetry telemetry() const;

  /// Internal accessor (stable across versions, not for user code).
  const std::shared_ptr<Impl>& impl() const { return impl_; }

 private:
  std::shared_ptr<Impl> impl_;
};

}  // namespace pcw
