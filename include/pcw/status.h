// pcw public API — error model.
//
// The façade never lets an exception cross the library boundary: internal
// throws (std::invalid_argument, std::runtime_error, ...) are caught at
// the pcw:: surface and converted to a Status carrying the failing
// dataset/partition context in its message. Result<T> is the value-or-
// Status return used by every fallible accessor.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

namespace pcw {

enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument = 1,  // caller bug: bad dims/region/params/flag
  kNotFound = 2,         // unknown dataset, series, step, or codec id
  kCorruptData = 3,      // malformed container/footer, size mismatch
  kIoError = 4,          // open/read/write failure on the file
  kFailedPrecondition = 5,  // call sequencing (closed writer, mixed dtypes)
  kAlreadyExists = 6,    // duplicate codec id / dataset name
  kInternal = 7,         // anything that escaped classification
  kResourceExhausted = 8,  // device or quota full (ENOSPC/EDQUOT): free space, retry
};

const char* to_string(StatusCode code);

class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return {}; }
  static Status Error(StatusCode code, std::string message) {
    return {code, std::move(message)};
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code>: <message>".
  std::string to_string() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Value-or-Status. value()/operator* on an error Result returns the
/// default-constructed T placeholder — there is no trap or throw; always
/// test ok() first (or use value_or).
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}            // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {}    // NOLINT(google-explicit-constructor)
  Result(StatusCode code, std::string message) : status_(code, std::move(message)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return value_; }
  T& value() & { return value_; }
  T&& value() && { return std::move(value_); }

  T value_or(T fallback) const& { return ok() ? value_ : std::move(fallback); }

  const T& operator*() const& { return value_; }
  T& operator*() & { return value_; }
  const T* operator->() const { return &value_; }
  T* operator->() { return &value_; }

 private:
  T value_{};
  Status status_;
};

}  // namespace pcw
