#!/usr/bin/env python3
"""Include-boundary check for the public pcw:: facade.

examples/, tools/, and bench/ must compile against the public surface
only: every quoted include must be either a "pcw/..." header or a local
helper header living in the same directory (bench_common.h,
cli_common.h). Internal layers (core/, sz/, h5/, model/, util/, ...) are
off limits -- that is what keeps the facade from silently eroding back
into everyone reaching around it.

Run from anywhere:  python3 tools/check_includes.py
Registered as a tier1 CTest and a CI step.
"""

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
CHECKED_DIRS = ("examples", "tools", "bench")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')


def violations():
    found = []
    for dirname in CHECKED_DIRS:
        directory = ROOT / dirname
        sources = sorted(
            p for ext in ("*.cc", "*.cpp", "*.h") for p in directory.rglob(ext)
        )
        for path in sources:
            for lineno, line in enumerate(path.read_text().splitlines(), 1):
                match = INCLUDE_RE.match(line)
                if match is None:
                    continue
                include = match.group(1)
                if include.startswith("pcw/"):
                    continue
                # Same-directory helper headers (they are checked themselves).
                if "/" not in include and (path.parent / include).is_file():
                    continue
                found.append(
                    f'{path.relative_to(ROOT)}:{lineno}: includes internal header "{include}"'
                )
    return found


def main():
    bad = violations()
    if bad:
        print(
            "include-boundary violations (examples/, tools/, and bench/ must "
            'include only "pcw/..." public headers or same-directory helpers):'
        )
        print("\n".join(bad))
        return 1
    count = sum(
        len(list((ROOT / d).rglob(ext)))
        for d in CHECKED_DIRS
        for ext in ("*.cc", "*.cpp", "*.h")
    )
    print(f"include boundary OK: {count} sources in {', '.join(CHECKED_DIRS)} are pcw/-only")
    return 0


if __name__ == "__main__":
    sys.exit(main())
