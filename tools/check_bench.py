#!/usr/bin/env python3
"""Perf-ratchet for the checked-in BENCH_*.json baselines.

One gate for all three perf surfaces (replacing the inline python that
used to live in ci.yml):

  * schema + scenario/stage coverage of every checked-in baseline, so a
    baseline regeneration can never silently drop a scenario;
  * the same validation for the CI smoke runs (``--smoke-dir``), plus a
    smoke-tolerant throughput ratchet: a smoke run may be slower than the
    committed baseline (tiny inputs, cold caches, shared runners), but a
    serial-throughput drop of more than RATCHET (3x) fails the job;
  * bench-specific invariants: sparse reads must decode strictly fewer
    blocks than the container holds, the temporal predictor must keep its
    >= 1.3x ratio edge over per-step spatial on the non-smoke baseline,
    and every restart verification must be bit-exact.

Usage:
  tools/check_bench.py --baseline-dir . [--smoke-dir build] [--bench NAME ...]

Exit code 0 = all gates green; 1 = any violation (each is printed).
"""

import argparse
import json
import os
import sys

RATCHET = 3.0  # smoke serial throughput may not drop below baseline/3

# Telemetry-overhead gates (non-smoke baseline only; smoke timings are
# noise). DORMANT_FLOOR pins the serial t1 throughput the kernels must
# hold: with tracing off, the instrumented kernels may cost at most 2%
# against it. Raised with the SIMD kernel rewrite (see docs/kernels.md);
# set below the worst of repeated runs on the reference host because the
# virtualized runners show large run-to-run variance. TRACED_OVERHEAD
# bounds the armed cost: compress_traced (buffered tracing on) vs
# compress on the same run.
DORMANT_FLOOR = {"compress": 260.0, "decompress": 620.0}  # MB/s, t1
DORMANT_TOLERANCE = 1.02
TRACED_OVERHEAD = 1.10

PROBLEMS = []


def problem(msg):
    PROBLEMS.append(msg)
    print(f"FAIL: {msg}")


def ok(msg):
    print(f"ok: {msg}")


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        problem(f"{path}: unreadable ({e})")
        return None


def rows(doc, **match):
    out = []
    for r in doc.get("results", []):
        if all(r.get(k) == v for k, v in match.items()):
            out.append(r)
    return out


# --- per-bench validation rules --------------------------------------------


def check_kernels(doc, path, smoke):
    if doc.get("schema") != "pcw.bench_kernels.v1":
        problem(f"{path}: schema {doc.get('schema')!r}")
        return
    # Host facts make the throughput rows interpretable: a slow row on a
    # 1-core runner or a PCW_SIMD=off run is expected, not a regression.
    host = doc.get("case", {}).get("host", {})
    if not isinstance(host.get("cpu_count"), int) or host["cpu_count"] < 1:
        problem(f"{path}: case.host.cpu_count missing or invalid: {host!r}")
        return
    for key in ("simd_detected", "simd_active"):
        if not isinstance(host.get(key), str) or not host[key]:
            problem(f"{path}: case.host.{key} missing: {host!r}")
            return
    ok(f"{path}: host {host['cpu_count']} cpu(s), simd {host['simd_active']} "
       f"(detected {host['simd_detected']})")
    stages = {r["stage"] for r in doc.get("results", [])}
    want = {"quantize", "encode", "compress", "decompress", "compress_traced"}
    if not stages >= want:
        problem(f"{path}: stages {sorted(stages)} lack {sorted(want - stages)}")
        return
    t1 = {r["stage"]: r["mb_per_s"]
          for r in doc.get("results", []) if r.get("threads") == 1}
    if not smoke:
        # Dormant telemetry must stay free: serial throughput within 2%
        # of the pre-telemetry floor.
        for stage, floor in sorted(DORMANT_FLOOR.items()):
            mb = t1.get(stage, 0.0)
            if mb <= 0 or floor / mb > DORMANT_TOLERANCE:
                problem(f"{path}: {stage} t1 {mb:.1f} MB/s vs dormant floor "
                        f"{floor:.1f} MB/s (> {DORMANT_TOLERANCE:.2f}x cost)")
                return
        # Armed (buffered) tracing may cost at most 10% over dormant.
        traced = t1.get("compress_traced", 0.0)
        dormant = t1.get("compress", 0.0)
        if traced <= 0 or dormant <= 0 or dormant / traced > TRACED_OVERHEAD:
            problem(f"{path}: compress_traced t1 {traced:.1f} MB/s vs compress "
                    f"{dormant:.1f} MB/s (> {TRACED_OVERHEAD:.2f}x overhead)")
            return
        ok(f"{path}: telemetry gates green (dormant within "
           f"{DORMANT_TOLERANCE:.2f}x floor, traced {dormant / traced:.3f}x)")
    ok(f"{path}: pcw.bench_kernels.v1, stages {sorted(stages)}")


def check_read(doc, path, smoke):
    if doc.get("schema") != "pcw.bench_read.v1":
        problem(f"{path}: schema {doc.get('schema')!r}")
        return
    scenarios = {r["scenario"] for r in doc.get("results", [])}
    want = {"full_restart", "repartition", "sparse_slice"}
    if not scenarios >= want:
        problem(f"{path}: scenarios {sorted(scenarios)} lack {sorted(want - scenarios)}")
        return
    sparse = [r for r in rows(doc, scenario="sparse_slice") if r["label"] != "full_ref"]
    # The property the block index exists for: sparse slices decode
    # strictly fewer blocks than the container holds.
    if not sparse or not all(r["blocks_decoded"] < r["blocks_total"] for r in sparse):
        problem(f"{path}: sparse_slice rows not strictly partial: {sparse}")
        return
    # Checksums must stay off the hot path: the blob-CRC verified restart
    # may cost at most 5% over the unverified one. Timing-sensitive, so
    # the bar holds on the real baseline; smoke runs only need the rows.
    verify = rows(doc, scenario="full_restart", label="serial_verify")
    noverify = rows(doc, scenario="full_restart", label="serial_noverify")
    if len(verify) != 1 or len(noverify) != 1:
        problem(f"{path}: full_restart needs one serial_verify + one "
                f"serial_noverify row")
        return
    overhead = verify[0]["seconds"] / noverify[0]["seconds"]
    if not smoke and overhead > 1.05:
        problem(f"{path}: verification overhead {overhead:.3f}x > 1.05x")
        return
    ok(f"{path}: pcw.bench_read.v1, scenarios {sorted(scenarios)}, "
       f"verify overhead {overhead:.3f}x")


def check_timeseries(doc, path, smoke):
    if doc.get("schema") != "pcw.bench_timeseries.v1":
        problem(f"{path}: schema {doc.get('schema')!r}")
        return
    scenarios = {r["scenario"] for r in doc.get("results", [])}
    want = {"write_series", "restart_mid_chain", "sparse_step_read"}
    if not scenarios >= want:
        problem(f"{path}: scenarios {sorted(scenarios)} lack {sorted(want - scenarios)}")
        return
    if not all(r.get("bit_exact", False) for r in rows(doc, scenario="restart_mid_chain")):
        problem(f"{path}: restart verification not bit-exact")
        return
    sparse = rows(doc, scenario="sparse_step_read")
    if not sparse or not all(r["blocks_decoded"] < r["blocks_total"] for r in sparse):
        problem(f"{path}: sparse_step_read rows not strictly partial: {sparse}")
        return
    temporal = rows(doc, scenario="write_series", label="temporal")
    spatial = rows(doc, scenario="write_series", label="spatial")
    if len(temporal) != 1 or len(spatial) != 1:
        problem(f"{path}: write_series needs exactly one temporal + one spatial row")
        return
    gain = temporal[0]["ratio"] / spatial[0]["ratio"]
    # The acceptance bar holds on the real (non-smoke) baseline; the tiny
    # smoke series is validated for coverage but its gain is reported only.
    if not smoke and gain < 1.3:
        problem(f"{path}: temporal ratio gain {gain:.2f}x < 1.3x")
        return
    ok(f"{path}: pcw.bench_timeseries.v1, temporal gain {gain:.2f}x")


# Serial-throughput extractors for the ratchet: (description, selector).
def serial_metrics(name, doc):
    if name == "kernels":
        return {
            f"{r['stage']} t1": r["mb_per_s"]
            for r in doc.get("results", [])
            if r.get("threads") == 1
        }
    if name == "read":
        return {
            "full_restart serial": r["mb_per_s"]
            for r in rows(doc, scenario="full_restart", label="serial")
        }
    if name == "timeseries":
        return {
            f"write_series {r['label']}": r["mb_per_s"]
            for r in rows(doc, scenario="write_series")
        }
    return {}


BENCHES = {
    "kernels": check_kernels,
    "read": check_read,
    "timeseries": check_timeseries,
}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline-dir", default=".",
                    help="directory of the checked-in BENCH_*.json (default .)")
    ap.add_argument("--smoke-dir", default=None,
                    help="directory of CI smoke BENCH_*.json; enables the ratchet")
    ap.add_argument("--bench", action="append", choices=sorted(BENCHES),
                    help="restrict to specific benches (default: all)")
    args = ap.parse_args()

    names = args.bench or sorted(BENCHES)
    for name in names:
        fname = f"BENCH_{name}.json"
        check = BENCHES[name]

        base_path = os.path.join(args.baseline_dir, fname)
        base = load(base_path)
        if base is not None:
            if base.get("case", {}).get("smoke"):
                problem(f"{base_path}: checked-in baseline is a --smoke run")
            else:
                check(base, base_path, smoke=False)

        if args.smoke_dir is None:
            continue
        smoke_path = os.path.join(args.smoke_dir, fname)
        smoke = load(smoke_path)
        if smoke is None:
            continue
        check(smoke, smoke_path, smoke=True)

        if base is None:
            continue
        base_m = serial_metrics(name, base)
        smoke_m = serial_metrics(name, smoke)
        for key, base_v in sorted(base_m.items()):
            if key not in smoke_m:
                problem(f"{smoke_path}: smoke run dropped metric '{key}'")
                continue
            smoke_v = smoke_m[key]
            if smoke_v <= 0 or base_v / smoke_v > RATCHET:
                problem(f"{smoke_path}: {key} {smoke_v:.1f} MB/s vs baseline "
                        f"{base_v:.1f} MB/s (> {RATCHET:.0f}x regression)")
            else:
                ok(f"{smoke_path}: {key} {smoke_v:.1f} MB/s within "
                   f"{RATCHET:.0f}x of baseline {base_v:.1f} MB/s")

    if PROBLEMS:
        print(f"\n{len(PROBLEMS)} perf-gate violation(s)")
        return 1
    print("\nall perf gates green")
    return 0


if __name__ == "__main__":
    sys.exit(main())
