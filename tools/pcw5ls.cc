// pcw5ls — inspect a .pcw5 shared file: dataset table, per-partition
// layout, storage accounting, per-block codec index summaries, and
// optional full decode verification. Built entirely on the pcw:: façade
// (Reader + the blob-level codec surface).
//
//   pcw5ls <file.pcw5> [--partitions] [--blocks] [--steps] [--verify] [--scrub]
//   pcw5ls --remote <addr> [<file.pcw5>]
//
// --scrub audits the file for damage (checksums, extents, restart
// chains) without decoding payloads, prints a per-dataset damage table,
// and exits 0 (clean), 1 (damage, but every damaged dataset is
// salvageable via a degraded read), or 2 (unreadable data, or the file
// itself would not open).
//
// --remote lists through a running pcwd server instead of opening
// locally: with a file argument, the server opens it and returns its
// dataset table; without one, the server's whole catalog is listed. The
// local deep-inspection flags need the file and do not compose with
// --remote.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "cli_common.h"
#include "pcw/pcw.h"
#include "pcw/store.h"
#include "pcw/text.h"

namespace {

using namespace pcw;

constexpr const char* kUsage =
    "usage: pcw5ls <file.pcw5> [--partitions] [--blocks] [--steps] [--verify] "
    "[--scrub] [--stats]\n"
    "       pcw5ls --remote unix:<path>|tcp:<host>:<port> [<file.pcw5>] [--stats]\n";

std::string filter_name(std::uint32_t filter_id) {
  const Result<CodecInfo> info = find_codec(filter_id);
  return info.ok() ? info->name : "?";
}

/// Per-dataset codec container summary: version(s), codec, and the
/// compressed block-size distribution across every partition's block
/// index — what a partial (region) read of this dataset will cost per
/// decoded block.
void print_block_summaries(const Reader& reader) {
  util::Table table({"dataset", "container", "codec", "blocks", "min blk",
                     "median blk", "max blk", "lz"});
  bool any = false;
  for (const DatasetInfo& info : reader.datasets()) {
    if (info.layout != Layout::kPartitioned || info.filter_id != kCodecSz) continue;
    any = true;
    std::vector<std::uint64_t> block_bytes;
    std::uint32_t vmin = 0, vmax = 0;
    int lz_parts = 0;
    // The container header + block index live in the blob's first
    // kMaxBlobHeaderBytes, so summarizing costs header-sized reads, not
    // full payloads — the same economy partial reads themselves enjoy.
    for (std::size_t p = 0; p < info.partitions.size(); ++p) {
      const auto head = reader.partition_prefix(info.name, p, kMaxBlobHeaderBytes);
      if (!head.ok()) throw std::runtime_error(head.status().message());
      const Result<BlobInfo> blob = inspect_blob(*head);
      if (!blob.ok()) throw std::runtime_error(blob.status().message());
      vmin = vmin == 0 ? blob->version : std::min(vmin, blob->version);
      vmax = std::max(vmax, blob->version);
      lz_parts += blob->lz_applied ? 1 : 0;
      const auto blocks = inspect_blob_blocks(*head);
      if (!blocks.ok()) throw std::runtime_error(blocks.status().message());
      for (const BlobBlockInfo& blk : *blocks) block_bytes.push_back(blk.stored_bytes);
    }
    std::sort(block_bytes.begin(), block_bytes.end());
    const std::uint64_t median = block_bytes[block_bytes.size() / 2];
    const std::string container =
        vmin == vmax ? "v" + std::to_string(vmin)
                     : "v" + std::to_string(vmin) + "/v" + std::to_string(vmax);
    table.add_row(
        {info.name, container, "sz", std::to_string(block_bytes.size()),
         util::Table::fmt_bytes(static_cast<double>(block_bytes.front())),
         util::Table::fmt_bytes(static_cast<double>(median)),
         util::Table::fmt_bytes(static_cast<double>(block_bytes.back())),
         std::to_string(lz_parts) + "/" + std::to_string(info.partitions.size())});
  }
  if (!any) {
    std::printf("no sz-filtered datasets\n");
    return;
  }
  table.print(std::cout);
}

/// Per-series step table: the restart-cost view. Chain length is how many
/// blobs restart(t) decodes; temporal column counts the per-block
/// predictor outcomes across the step's partitions.
void print_step_tables(const Reader& reader) {
  std::map<std::string, std::vector<DatasetInfo>> series;
  for (const DatasetInfo& info : reader.datasets()) {
    if (info.series_member) series[info.series_base].push_back(info);
  }
  if (series.empty()) {
    std::printf("no time series\n");
    return;
  }
  for (auto& [base, steps] : series) {
    std::sort(steps.begin(), steps.end(),
              [](const auto& a, const auto& b) { return a.series_step < b.series_step; });
    std::printf("\nseries %s (%zu steps):\n", base.c_str(), steps.size());
    util::Table table({"step", "kind", "ref", "chain", "parts", "stored",
                       "temporal blks"});
    // Chain length = blobs a restart actually decodes: walk the real
    // reference links (refs may skip steps), "?" on a broken chain.
    std::map<std::uint32_t, const DatasetInfo*> by_step;
    for (const DatasetInfo& d : steps) by_step[d.series_step] = &d;
    auto chain_of = [&](const DatasetInfo* d) -> std::string {
      std::uint64_t len = 1;
      while (!d->is_keyframe()) {
        const auto it = by_step.find(d->series_ref_step);
        if (it == by_step.end() || it->second->series_step >= d->series_step) return "?";
        d = it->second;
        ++len;
      }
      return std::to_string(len);
    };
    for (const DatasetInfo& d : steps) {
      std::uint64_t stored = 0;
      std::uint64_t blocks = 0, temporal = 0;
      for (std::size_t p = 0; p < d.partitions.size(); ++p) {
        stored += d.partitions[p].actual_bytes;
        const auto head = reader.partition_prefix(d.name, p, kMaxBlobHeaderBytes);
        if (!head.ok()) throw std::runtime_error(head.status().message());
        const auto blks = inspect_blob_blocks(*head);
        if (!blks.ok()) throw std::runtime_error(blks.status().message());
        for (const BlobBlockInfo& blk : *blks) {
          ++blocks;
          temporal += blk.temporal ? 1 : 0;
        }
      }
      table.add_row({std::to_string(d.series_step),
                     d.is_keyframe() ? "keyframe" : "delta",
                     std::to_string(d.series_ref_step), chain_of(&d),
                     std::to_string(d.partitions.size()),
                     util::Table::fmt_bytes(static_cast<double>(stored)),
                     std::to_string(temporal) + "/" + std::to_string(blocks)});
    }
    table.print(std::cout);
  }
}

/// Verifies one series by walking its steps in order with a running
/// reconstruction — O(steps) decodes instead of one full restart chain
/// per step. A step whose reference is not the previously decoded one
/// (gap refs are legal in the format) falls back to a real chain restart.
template <typename T>
void verify_series_chain(const Reader& reader, const std::vector<DatasetInfo>& steps) {
  std::vector<T> prev;
  std::uint32_t prev_step = 0;
  for (const DatasetInfo& d : steps) {
    std::vector<T> out;
    if (!d.is_keyframe() && (prev.empty() || d.series_ref_step != prev_step)) {
      Result<std::vector<T>> chained = restart<T>(reader, d.series_base, d.series_step);
      if (!chained.ok()) throw std::runtime_error(chained.status().message());
      out = std::move(*chained);
    } else {
      out.resize(d.dims.count());
      for (std::size_t p = 0; p < d.partitions.size(); ++p) {
        const PartitionInfo& part = d.partitions[p];
        // Same guards as the library read path: a corrupt footer or a
        // blob whose stored extents disagree with the partition must
        // fail cleanly, not scatter out of bounds.
        if (part.elem_offset + part.elem_count > out.size() ||
            part.elem_offset + part.elem_count < part.elem_offset ||
            (!d.is_keyframe() && part.elem_offset + part.elem_count > prev.size())) {
          throw std::runtime_error("series partition exceeds dataset extent");
        }
        const auto payload = reader.partition_payload(d.name, p);
        if (!payload.ok()) throw std::runtime_error(payload.status().message());
        FieldView ref;
        if (!d.is_keyframe()) {
          ref = FieldView::of(
              std::span<const T>(prev.data() + part.elem_offset, part.elem_count),
              Dims::make_1d(part.elem_count));
        }
        const Result<DecodedBlob> decoded = decode_blob(*payload, ref);
        if (!decoded.ok()) throw std::runtime_error(decoded.status().message());
        const std::vector<T> vals = decoded->as<T>();
        if (vals.size() != part.elem_count) {
          throw std::runtime_error("series partition extents disagree with blob");
        }
        std::memcpy(out.data() + part.elem_offset, vals.data(),
                    vals.size() * sizeof(T));
      }
    }
    std::printf("  %-24s OK (%zu values, via chain)\n", d.name.c_str(), out.size());
    prev = std::move(out);
    prev_step = d.series_step;
  }
}

const char* health_name(ScrubHealth h) {
  switch (h) {
    case ScrubHealth::kClean: return "clean";
    case ScrubHealth::kDamaged: return "DAMAGED";
    case ScrubHealth::kUnreadable: return "UNREADABLE";
  }
  return "?";
}

/// The --scrub exit contract tests/cli_test.sh pins: 0 = clean,
/// 1 = damage but every damaged dataset is recoverable via a degraded
/// read, 2 = data that cannot be delivered at all.
int run_scrub(const Reader& reader) {
  const Result<ScrubReport> scrubbed = reader.scrub();
  if (!scrubbed.ok()) {
    std::fprintf(stderr, "error: %s\n", scrubbed.status().message().c_str());
    return 2;
  }
  const ScrubReport& report = *scrubbed;
  std::printf("\nscrub (%llu clean, %llu damaged, %llu unreadable):\n",
              static_cast<unsigned long long>(report.clean),
              static_cast<unsigned long long>(report.damaged),
              static_cast<unsigned long long>(report.unreadable));
  util::Table table({"dataset", "state", "parts", "damaged", "recovery", "detail"});
  bool unrecoverable = false;
  for (const ScrubDataset& d : report.datasets) {
    const bool bad = d.state != ScrubHealth::kClean;
    if (bad && (d.state == ScrubHealth::kUnreadable || !d.salvageable)) {
      unrecoverable = true;
    }
    table.add_row({d.name, health_name(d.state), std::to_string(d.partitions),
                   bad ? std::to_string(d.damaged_partitions) : "-",
                   !bad ? "-" : (d.salvageable ? "degraded read" : "none"),
                   d.detail.empty() ? "-" : d.detail});
  }
  table.print(std::cout);
  if (report.ok()) return 0;
  return unrecoverable ? 2 : 1;
}

int run(const std::string& path, bool show_partitions, bool show_blocks,
        bool show_steps, bool verify, bool scrub) {
  const Result<Reader> opened = Reader::open(path);
  if (!opened.ok()) {
    std::fprintf(stderr, "error: %s\n", opened.status().message().c_str());
    // In scrub mode an unopenable file is the "unreadable" verdict, not a
    // usage error.
    return scrub ? 2 : 1;
  }
  const Reader& reader = *opened;
  const std::vector<DatasetInfo> datasets = reader.datasets();
  std::printf("%s: %llu bytes, %zu dataset(s)\n\n", path.c_str(),
              static_cast<unsigned long long>(reader.file_bytes()), datasets.size());

  util::Table table({"dataset", "dtype", "dims", "filter", "parts", "stored",
                     "reserved", "ratio", "overflows"});
  for (const DatasetInfo& info : datasets) {
    std::uint64_t reserved = 0;
    int overflows = 0;
    if (info.layout == Layout::kContiguous) {
      reserved = info.stored_bytes;
    } else {
      for (const PartitionInfo& part : info.partitions) {
        reserved += std::max(part.reserved_bytes, part.actual_bytes);
        overflows += part.overflow_bytes > 0;
      }
    }
    const double raw =
        static_cast<double>(info.dims.count() * element_size(info.dtype));
    char dims_str[64];
    std::snprintf(dims_str, sizeof(dims_str), "%zux%zux%zu", info.dims.d0,
                  info.dims.d1, info.dims.d2);
    table.add_row({info.name, to_string(info.dtype), dims_str,
                   filter_name(info.filter_id), std::to_string(info.partitions.size()),
                   util::Table::fmt_bytes(static_cast<double>(info.stored_bytes)),
                   util::Table::fmt_bytes(static_cast<double>(reserved)),
                   util::Table::fmt(raw / static_cast<double>(info.stored_bytes), 1) + "x",
                   std::to_string(overflows)});
  }
  table.print(std::cout);

  if (show_partitions) {
    for (const DatasetInfo& info : datasets) {
      if (info.layout != Layout::kPartitioned) continue;
      std::printf("\n%s partitions:\n", info.name.c_str());
      util::Table pt({"rank", "elems", "offset", "reserved", "actual", "overflow"});
      for (const PartitionInfo& part : info.partitions) {
        pt.add_row({std::to_string(part.rank), std::to_string(part.elem_count),
                    std::to_string(part.file_offset),
                    std::to_string(part.reserved_bytes),
                    std::to_string(part.actual_bytes),
                    part.overflow_bytes > 0
                        ? std::to_string(part.overflow_bytes) + "@" +
                              std::to_string(part.overflow_offset)
                        : "-"});
      }
      pt.print(std::cout);
    }
  }

  if (show_blocks) {
    std::printf("\nsz block index (per-block cost of partial reads):\n");
    print_block_summaries(reader);
  }

  if (show_steps) {
    std::printf("\ntime-series steps (chain = blobs a restart decodes):\n");
    print_step_tables(reader);
  }

  if (verify) {
    std::printf("\nverifying (full decode of every dataset)...\n");
    for (const DatasetInfo& info : datasets) {
      if (info.series_member) continue;  // verified chain-wise below
      if (info.dtype == DType::kBytes) {
        std::printf("  %-24s skipped (raw bytes)\n", info.name.c_str());
        continue;
      }
      const Result<std::vector<std::uint8_t>> v = reader.read_bytes(info.name, info.dtype);
      if (!v.ok()) {
        std::printf("  %-24s FAILED: %s\n", info.name.c_str(),
                    v.status().message().c_str());
        return 1;
      }
      std::printf("  %-24s OK (%zu values)\n", info.name.c_str(),
                  v->size() / element_size(info.dtype));
    }
    // Series: temporal deltas cannot decode standalone, and chaining per
    // step would redo shared prefixes — walk each series once in step
    // order with a running reconstruction instead.
    std::map<std::string, std::vector<DatasetInfo>> series;
    for (const DatasetInfo& info : datasets) {
      if (info.series_member) series[info.series_base].push_back(info);
    }
    for (auto& [base, steps] : series) {
      std::sort(steps.begin(), steps.end(), [](const auto& a, const auto& b) {
        return a.series_step < b.series_step;
      });
      try {
        if (steps.front().dtype == DType::kFloat32) {
          verify_series_chain<float>(reader, steps);
        } else {
          verify_series_chain<double>(reader, steps);
        }
      } catch (const std::exception& e) {
        std::printf("  %-24s FAILED: %s\n", base.c_str(), e.what());
        return 1;
      }
    }
  }

  if (scrub) return run_scrub(reader);
  return 0;
}

/// --remote catalog / dataset listing through a pcwd server.
int run_remote(const std::string& address, const std::optional<std::string>& path) {
  Result<store::Client> connected = store::Client::connect(address);
  if (!connected.ok()) {
    std::fprintf(stderr, "error: %s\n", connected.status().message().c_str());
    return 1;
  }
  store::Client client = std::move(connected).value();
  if (!path) {
    const Result<std::vector<store::RemoteFile>> files = client.catalog();
    if (!files.ok()) {
      std::fprintf(stderr, "error: %s\n", files.status().message().c_str());
      return 1;
    }
    std::printf("%s: %zu open file(s)\n\n", address.c_str(), files->size());
    util::Table table({"id", "path", "mode", "generation", "datasets"});
    for (const store::RemoteFile& f : *files) {
      table.add_row({std::to_string(f.id), f.path, f.writable ? "rw" : "ro",
                     std::to_string(f.generation), std::to_string(f.datasets)});
    }
    table.print(std::cout);
    return 0;
  }
  const Result<store::RemoteFile> file = client.open(*path);
  if (!file.ok()) {
    std::fprintf(stderr, "error: %s\n", file.status().message().c_str());
    return 1;
  }
  const Result<std::vector<store::RemoteDataset>> listed = client.list(file->id);
  if (!listed.ok()) {
    std::fprintf(stderr, "error: %s\n", listed.status().message().c_str());
    return 1;
  }
  std::printf("%s via %s: %zu dataset(s), generation %llu\n\n", path->c_str(),
              address.c_str(), listed->size(),
              static_cast<unsigned long long>(file->generation));
  util::Table table({"dataset", "dtype", "dims", "filter", "parts", "stored", "series"});
  for (const store::RemoteDataset& d : *listed) {
    char dims_str[64];
    std::snprintf(dims_str, sizeof(dims_str), "%zux%zux%zu", d.dims.d0, d.dims.d1,
                  d.dims.d2);
    table.add_row({d.name, to_string(d.dtype), dims_str, filter_name(d.filter_id),
                   std::to_string(d.partitions),
                   util::Table::fmt_bytes(static_cast<double>(d.stored_bytes)),
                   d.series_member
                       ? d.series_base + "@" + std::to_string(d.series_step)
                       : "-"});
  }
  table.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool stats = cli::strip_stats_flag(argc, argv);
  const std::optional<std::string> remote =
      cli::strip_value_flag(argc, argv, "--remote", kUsage);
  if (remote) {
    std::optional<std::string> path;
    cli::ArgCursor args(argc, argv, 1, kUsage);
    while (args.next()) {
      const std::string arg = args.arg();
      if (!arg.empty() && arg[0] == '-') {
        cli::usage_exit(kUsage, arg + " is not supported with --remote");
      }
      if (path) cli::usage_exit(kUsage, "more than one file with --remote");
      path = arg;
    }
    const int rc = run_remote(*remote, path);
    if (stats) cli::print_stats();
    return rc;
  }
  if (argc < 2) cli::usage_exit(kUsage);
  bool show_partitions = false, show_blocks = false, show_steps = false, verify = false;
  bool scrub = false;
  cli::ArgCursor args(argc, argv, 2, kUsage);
  while (args.next()) {
    const std::string arg = args.arg();
    if (arg == "--partitions") {
      show_partitions = true;
    } else if (arg == "--blocks") {
      show_blocks = true;
    } else if (arg == "--steps") {
      show_steps = true;
    } else if (arg == "--verify") {
      verify = true;
    } else if (arg == "--scrub") {
      scrub = true;
    } else {
      args.unknown();
    }
  }
  try {
    const int rc = run(argv[1], show_partitions, show_blocks, show_steps, verify, scrub);
    if (stats) cli::print_stats();
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return scrub ? 2 : 1;
  }
}
