// pcw5ls — inspect a .pcw5 shared file: dataset table, per-partition
// layout, storage accounting, per-block sz index summaries, and optional
// full decode verification.
//
//   pcw5ls <file.pcw5> [--partitions] [--blocks] [--steps] [--verify]
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/series.h"
#include "h5/dataset_io.h"
#include "h5/file.h"
#include "sz/compressor.h"
#include "util/table.h"

namespace {

const char* filter_name(pcw::h5::FilterId id) {
  switch (id) {
    case pcw::h5::FilterId::kNone: return "none";
    case pcw::h5::FilterId::kSz: return "sz";
    case pcw::h5::FilterId::kZfp: return "zfp";
  }
  return "?";
}

const char* dtype_name(pcw::h5::DataType t) {
  switch (t) {
    case pcw::h5::DataType::kFloat32: return "float32";
    case pcw::h5::DataType::kFloat64: return "float64";
    case pcw::h5::DataType::kBytes: return "bytes";
  }
  return "?";
}

/// Per-dataset sz container summary: version(s), codec, and the compressed
/// block-size distribution across every partition's block index — what a
/// partial (region) read of this dataset will cost per decoded block.
void print_block_summaries(const pcw::h5::File& file) {
  pcw::util::Table table({"dataset", "container", "codec", "blocks", "min blk",
                          "median blk", "max blk", "lz"});
  bool any = false;
  for (const auto& desc : file.datasets()) {
    if (desc.layout != pcw::h5::Layout::kPartitioned ||
        desc.filter != pcw::h5::FilterId::kSz) {
      continue;
    }
    any = true;
    const std::size_t esize = pcw::h5::element_size(desc.dtype);
    std::vector<std::uint64_t> block_bytes;
    std::uint32_t vmin = 0, vmax = 0;
    int lz_parts = 0;
    // The sz header + block index live in the blob's first
    // kMaxHeaderBytes, so summarizing costs header-sized reads, not full
    // payloads — the same economy partial reads themselves enjoy. The
    // prefix may straddle slot and overflow.
    for (const auto& part : desc.partitions) {
      const std::uint64_t want =
          std::min<std::uint64_t>(part.actual_bytes, pcw::sz::kMaxHeaderBytes);
      const std::uint64_t in_slot =
          std::min(want, std::min(part.actual_bytes, part.reserved_bytes));
      auto payload = file.pread(part.file_offset, in_slot);
      if (want > in_slot) {
        const auto tail = file.pread(part.overflow_offset, want - in_slot);
        payload.insert(payload.end(), tail.begin(), tail.end());
      }
      const auto info = pcw::sz::inspect(payload);
      vmin = vmin == 0 ? info.version : std::min(vmin, info.version);
      vmax = std::max(vmax, info.version);
      lz_parts += info.lz_applied ? 1 : 0;
      for (const auto& blk : pcw::sz::inspect_blocks(payload)) {
        block_bytes.push_back(blk.stored_bytes(esize));
      }
    }
    std::sort(block_bytes.begin(), block_bytes.end());
    const std::uint64_t median = block_bytes[block_bytes.size() / 2];
    const std::string container =
        vmin == vmax ? "v" + std::to_string(vmin)
                     : "v" + std::to_string(vmin) + "/v" + std::to_string(vmax);
    table.add_row(
        {desc.name, container, "sz", std::to_string(block_bytes.size()),
         pcw::util::Table::fmt_bytes(static_cast<double>(block_bytes.front())),
         pcw::util::Table::fmt_bytes(static_cast<double>(median)),
         pcw::util::Table::fmt_bytes(static_cast<double>(block_bytes.back())),
         std::to_string(lz_parts) + "/" + std::to_string(desc.partitions.size())});
  }
  if (!any) {
    std::printf("no sz-filtered datasets\n");
    return;
  }
  table.print(std::cout);
}

/// Per-series step table: the restart-cost view. Chain length is how many
/// blobs restart_at_step(t) decodes; temporal column counts the per-block
/// predictor outcomes across the step's partitions.
void print_step_tables(const pcw::h5::File& file) {
  std::map<std::string, std::vector<const pcw::h5::DatasetDesc*>> series;
  for (const auto& desc : file.datasets()) {
    if (desc.series_member) series[desc.series_base].push_back(&desc);
  }
  if (series.empty()) {
    std::printf("no time series\n");
    return;
  }
  for (auto& [base, steps] : series) {
    std::sort(steps.begin(), steps.end(),
              [](const auto* a, const auto* b) { return a->series_step < b->series_step; });
    std::printf("\nseries %s (%zu steps):\n", base.c_str(), steps.size());
    pcw::util::Table table({"step", "kind", "ref", "chain", "parts", "stored",
                            "temporal blks"});
    // Chain length = blobs a restart actually decodes: walk the real
    // reference links (refs may skip steps), "?" on a broken chain.
    std::map<std::uint32_t, const pcw::h5::DatasetDesc*> by_step;
    for (const auto* d : steps) by_step[d->series_step] = d;
    auto chain_of = [&](const pcw::h5::DatasetDesc* d) -> std::string {
      std::uint64_t len = 1;
      while (!d->is_keyframe()) {
        const auto it = by_step.find(d->series_ref_step);
        if (it == by_step.end() || it->second->series_step >= d->series_step) return "?";
        d = it->second;
        ++len;
      }
      return std::to_string(len);
    };
    for (const auto* d : steps) {
      std::uint64_t stored = 0;
      std::uint64_t blocks = 0, temporal = 0;
      for (const auto& part : d->partitions) {
        stored += part.actual_bytes;
        const std::uint64_t want =
            std::min<std::uint64_t>(part.actual_bytes, pcw::sz::kMaxHeaderBytes);
        const auto head = file.pread(part.file_offset, want);
        for (const auto& blk : pcw::sz::inspect_blocks(head)) {
          ++blocks;
          temporal += blk.predictor == pcw::sz::Predictor::kTemporal ? 1 : 0;
        }
      }
      table.add_row(
          {std::to_string(d->series_step), d->is_keyframe() ? "keyframe" : "delta",
           std::to_string(d->series_ref_step), chain_of(d),
           std::to_string(d->partitions.size()),
           pcw::util::Table::fmt_bytes(static_cast<double>(stored)),
           std::to_string(temporal) + "/" + std::to_string(blocks)});
    }
    table.print(std::cout);
  }
}

/// Verifies one series by walking its steps in order with a running
/// reconstruction — O(steps) decodes instead of one full restart chain
/// per step. A step whose reference is not the previously decoded one
/// (gap refs are legal in the format) falls back to a real chain restart.
template <typename T>
void verify_series_chain(pcw::h5::File& file,
                         const std::vector<const pcw::h5::DatasetDesc*>& steps) {
  std::vector<T> prev;
  std::uint32_t prev_step = 0;
  for (const pcw::h5::DatasetDesc* d : steps) {
    std::vector<T> out;
    if (!d->is_keyframe() && (prev.empty() || d->series_ref_step != prev_step)) {
      out = pcw::core::restart_at_step<T>(file, d->series_base, d->series_step);
    } else {
      out.resize(pcw::sz::element_count(d->global_dims));
      for (const auto& part : d->partitions) {
        // Same guards as h5::read_dataset: a corrupt footer or a blob
        // whose stored extents disagree with the partition must fail
        // cleanly, not scatter out of bounds.
        if (part.elem_offset + part.elem_count > out.size() ||
            part.elem_offset + part.elem_count < part.elem_offset ||
            (!d->is_keyframe() && part.elem_offset + part.elem_count > prev.size())) {
          throw std::runtime_error("series partition exceeds dataset extent");
        }
        const auto payload = pcw::h5::read_partition_payload(file, *d, part);
        const std::span<const T> ref =
            d->is_keyframe()
                ? std::span<const T>{}
                : std::span<const T>(prev.data() + part.elem_offset, part.elem_count);
        const auto vals = pcw::sz::decompress<T>(payload, ref);
        if (vals.size() != part.elem_count) {
          throw std::runtime_error("series partition extents disagree with blob");
        }
        std::memcpy(out.data() + part.elem_offset, vals.data(),
                    vals.size() * sizeof(T));
      }
    }
    std::printf("  %-24s OK (%zu values, via chain)\n", d->name.c_str(), out.size());
    prev = std::move(out);
    prev_step = d->series_step;
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: pcw5ls <file.pcw5> [--partitions] [--blocks] [--steps] "
                 "[--verify]\n");
    return 2;
  }
  bool show_partitions = false, show_blocks = false, show_steps = false, verify = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--partitions") == 0) {
      show_partitions = true;
    } else if (std::strcmp(argv[i], "--blocks") == 0) {
      show_blocks = true;
    } else if (std::strcmp(argv[i], "--steps") == 0) {
      show_steps = true;
    } else if (std::strcmp(argv[i], "--verify") == 0) {
      verify = true;
    } else {
      std::fprintf(stderr,
                   "error: unknown flag %s\n"
                   "usage: pcw5ls <file.pcw5> [--partitions] [--blocks] [--steps] "
                   "[--verify]\n",
                   argv[i]);
      return 2;
    }
  }

  try {
    auto file = pcw::h5::File::open(argv[1]);
    std::printf("%s: %llu bytes, %zu dataset(s)\n\n", argv[1],
                static_cast<unsigned long long>(file->file_bytes()),
                file->datasets().size());

    pcw::util::Table table({"dataset", "dtype", "dims", "filter", "parts", "stored",
                            "reserved", "ratio", "overflows"});
    for (const auto& desc : file->datasets()) {
      std::uint64_t stored = 0, reserved = 0, elems = desc.global_dims.count();
      int overflows = 0;
      if (desc.layout == pcw::h5::Layout::kContiguous) {
        stored = reserved = desc.nbytes;
      } else {
        for (const auto& part : desc.partitions) {
          stored += part.actual_bytes;
          reserved += std::max(part.reserved_bytes, part.actual_bytes);
          overflows += part.overflow_bytes > 0;
        }
      }
      const double raw =
          static_cast<double>(elems * pcw::h5::element_size(desc.dtype));
      char dims_str[64];
      std::snprintf(dims_str, sizeof(dims_str), "%zux%zux%zu", desc.global_dims.d0,
                    desc.global_dims.d1, desc.global_dims.d2);
      table.add_row({desc.name, dtype_name(desc.dtype), dims_str,
                     filter_name(desc.filter), std::to_string(desc.partitions.size()),
                     pcw::util::Table::fmt_bytes(static_cast<double>(stored)),
                     pcw::util::Table::fmt_bytes(static_cast<double>(reserved)),
                     pcw::util::Table::fmt(raw / static_cast<double>(stored), 1) + "x",
                     std::to_string(overflows)});
    }
    table.print(std::cout);

    if (show_partitions) {
      for (const auto& desc : file->datasets()) {
        if (desc.layout != pcw::h5::Layout::kPartitioned) continue;
        std::printf("\n%s partitions:\n", desc.name.c_str());
        pcw::util::Table pt({"rank", "elems", "offset", "reserved", "actual", "overflow"});
        for (const auto& part : desc.partitions) {
          pt.add_row({std::to_string(part.rank), std::to_string(part.elem_count),
                      std::to_string(part.file_offset),
                      std::to_string(part.reserved_bytes),
                      std::to_string(part.actual_bytes),
                      part.overflow_bytes > 0
                          ? std::to_string(part.overflow_bytes) + "@" +
                                std::to_string(part.overflow_offset)
                          : "-"});
        }
        pt.print(std::cout);
      }
    }

    if (show_blocks) {
      std::printf("\nsz block index (per-block cost of partial reads):\n");
      print_block_summaries(*file);
    }

    if (show_steps) {
      std::printf("\ntime-series steps (chain = blobs a restart decodes):\n");
      print_step_tables(*file);
    }

    if (verify) {
      std::printf("\nverifying (full decode of every dataset)...\n");
      for (const auto& desc : file->datasets()) {
        if (desc.series_member) continue;  // verified chain-wise below
        try {
          if (desc.dtype == pcw::h5::DataType::kFloat32) {
            const auto v = pcw::h5::read_dataset<float>(*file, desc.name);
            std::printf("  %-24s OK (%zu values)\n", desc.name.c_str(), v.size());
          } else if (desc.dtype == pcw::h5::DataType::kFloat64) {
            const auto v = pcw::h5::read_dataset<double>(*file, desc.name);
            std::printf("  %-24s OK (%zu values)\n", desc.name.c_str(), v.size());
          } else {
            std::printf("  %-24s skipped (raw bytes)\n", desc.name.c_str());
          }
        } catch (const std::exception& e) {
          std::printf("  %-24s FAILED: %s\n", desc.name.c_str(), e.what());
          return 1;
        }
      }
      // Series: temporal deltas cannot decode standalone, and chaining
      // per step would redo shared prefixes — walk each series once in
      // step order with a running reconstruction instead.
      std::map<std::string, std::vector<const pcw::h5::DatasetDesc*>> series;
      for (const auto& desc : file->datasets()) {
        if (desc.series_member) series[desc.series_base].push_back(&desc);
      }
      for (auto& [base, steps] : series) {
        std::sort(steps.begin(), steps.end(), [](const auto* a, const auto* b) {
          return a->series_step < b->series_step;
        });
        try {
          if (steps.front()->dtype == pcw::h5::DataType::kFloat32) {
            verify_series_chain<float>(*file, steps);
          } else {
            verify_series_chain<double>(*file, steps);
          }
        } catch (const std::exception& e) {
          std::printf("  %-24s FAILED: %s\n", base.c_str(), e.what());
          return 1;
        }
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
