// pcw5ls — inspect a .pcw5 shared file: dataset table, per-partition
// layout, storage accounting, and optional full decode verification.
//
//   pcw5ls <file.pcw5> [--partitions] [--verify]
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "h5/dataset_io.h"
#include "h5/file.h"
#include "util/table.h"

namespace {

const char* filter_name(pcw::h5::FilterId id) {
  switch (id) {
    case pcw::h5::FilterId::kNone: return "none";
    case pcw::h5::FilterId::kSz: return "sz";
    case pcw::h5::FilterId::kZfp: return "zfp";
  }
  return "?";
}

const char* dtype_name(pcw::h5::DataType t) {
  switch (t) {
    case pcw::h5::DataType::kFloat32: return "float32";
    case pcw::h5::DataType::kFloat64: return "float64";
    case pcw::h5::DataType::kBytes: return "bytes";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: pcw5ls <file.pcw5> [--partitions] [--verify]\n");
    return 2;
  }
  bool show_partitions = false, verify = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--partitions") == 0) show_partitions = true;
    if (std::strcmp(argv[i], "--verify") == 0) verify = true;
  }

  try {
    auto file = pcw::h5::File::open(argv[1]);
    std::printf("%s: %llu bytes, %zu dataset(s)\n\n", argv[1],
                static_cast<unsigned long long>(file->file_bytes()),
                file->datasets().size());

    pcw::util::Table table({"dataset", "dtype", "dims", "filter", "parts", "stored",
                            "reserved", "ratio", "overflows"});
    for (const auto& desc : file->datasets()) {
      std::uint64_t stored = 0, reserved = 0, elems = desc.global_dims.count();
      int overflows = 0;
      if (desc.layout == pcw::h5::Layout::kContiguous) {
        stored = reserved = desc.nbytes;
      } else {
        for (const auto& part : desc.partitions) {
          stored += part.actual_bytes;
          reserved += std::max(part.reserved_bytes, part.actual_bytes);
          overflows += part.overflow_bytes > 0;
        }
      }
      const double raw =
          static_cast<double>(elems * pcw::h5::element_size(desc.dtype));
      char dims_str[64];
      std::snprintf(dims_str, sizeof(dims_str), "%zux%zux%zu", desc.global_dims.d0,
                    desc.global_dims.d1, desc.global_dims.d2);
      table.add_row({desc.name, dtype_name(desc.dtype), dims_str,
                     filter_name(desc.filter), std::to_string(desc.partitions.size()),
                     pcw::util::Table::fmt_bytes(static_cast<double>(stored)),
                     pcw::util::Table::fmt_bytes(static_cast<double>(reserved)),
                     pcw::util::Table::fmt(raw / static_cast<double>(stored), 1) + "x",
                     std::to_string(overflows)});
    }
    table.print(std::cout);

    if (show_partitions) {
      for (const auto& desc : file->datasets()) {
        if (desc.layout != pcw::h5::Layout::kPartitioned) continue;
        std::printf("\n%s partitions:\n", desc.name.c_str());
        pcw::util::Table pt({"rank", "elems", "offset", "reserved", "actual", "overflow"});
        for (const auto& part : desc.partitions) {
          pt.add_row({std::to_string(part.rank), std::to_string(part.elem_count),
                      std::to_string(part.file_offset),
                      std::to_string(part.reserved_bytes),
                      std::to_string(part.actual_bytes),
                      part.overflow_bytes > 0
                          ? std::to_string(part.overflow_bytes) + "@" +
                                std::to_string(part.overflow_offset)
                          : "-"});
        }
        pt.print(std::cout);
      }
    }

    if (verify) {
      std::printf("\nverifying (full decode of every dataset)...\n");
      for (const auto& desc : file->datasets()) {
        try {
          if (desc.dtype == pcw::h5::DataType::kFloat32) {
            const auto v = pcw::h5::read_dataset<float>(*file, desc.name);
            std::printf("  %-24s OK (%zu values)\n", desc.name.c_str(), v.size());
          } else if (desc.dtype == pcw::h5::DataType::kFloat64) {
            const auto v = pcw::h5::read_dataset<double>(*file, desc.name);
            std::printf("  %-24s OK (%zu values)\n", desc.name.c_str(), v.size());
          } else {
            std::printf("  %-24s skipped (raw bytes)\n", desc.name.c_str());
          }
        } catch (const std::exception& e) {
          std::printf("  %-24s FAILED: %s\n", desc.name.c_str(), e.what());
          return 1;
        }
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
