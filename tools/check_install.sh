#!/usr/bin/env bash
# Install-package smoke: `cmake --install` the built tree into a scratch
# prefix, then configure/build/run the out-of-tree find_package(pcw)
# consumer (tests/consumer) against it. Proves the export set resolves
# and the installed pcw/ headers stand alone.
#
#   tools/check_install.sh [BUILD_DIR]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

build_dir="${1:-build}"
scratch="$(mktemp -d)"
trap 'rm -rf "${scratch}"' EXIT

cmake --install "${build_dir}" --prefix "${scratch}/prefix" >/dev/null
cmake -S tests/consumer -B "${scratch}/consumer-build" \
  -DCMAKE_PREFIX_PATH="${scratch}/prefix" \
  -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "${scratch}/consumer-build" >/dev/null
"${scratch}/consumer-build/pcw_consumer"
echo "find_package(pcw) install check OK"
