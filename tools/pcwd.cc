// pcwd — the checkpoint-store daemon: serves a catalog of .pcw5 files to
// concurrent pcwz/pcw5ls clients (and anything else speaking the
// protocol in docs/store.md) over a Unix or TCP socket.
//
//   pcwd --listen unix:<path>|tcp:<host>:<port> [--cache-mb N] [--stats]
//
// Reads go through the server's decoded-block cache; concurrent
// WRITE_STEPs are group-committed. The daemon exits 0 on SIGINT/SIGTERM
// or a client's SHUTDOWN request, after committing and closing every
// writable file. --cache-mb sizes the decoded-block cache (default 256).
#include <csignal>
#include <cstdio>
#include <optional>
#include <string>

#include "cli_common.h"
#include "pcw/store.h"

namespace {

constexpr const char* kUsage =
    "usage: pcwd --listen unix:<path>|tcp:<host>:<port> [--cache-mb N] [--stats]\n";

volatile std::sig_atomic_t g_signalled = 0;

void on_signal(int) { g_signalled = 1; }

}  // namespace

int main(int argc, char** argv) {
  const bool stats = pcw::cli::strip_stats_flag(argc, argv);
  std::optional<std::string> listen;
  pcw::store::StoreOptions options;
  pcw::cli::ArgCursor args(argc, argv, 1, kUsage);
  while (args.next()) {
    const std::string arg = args.arg();
    if (arg == "--listen") {
      listen = args.value("--listen");
    } else if (arg == "--cache-mb") {
      options.with_cache_bytes(std::stoull(args.value("--cache-mb")) << 20);
    } else {
      args.unknown();
    }
  }
  if (!listen) pcw::cli::usage_exit(kUsage, "--listen is required");

  pcw::Result<pcw::store::Server> started = pcw::store::Server::start(*listen, options);
  if (!started.ok()) {
    std::fprintf(stderr, "error: %s\n", started.status().message().c_str());
    return 1;
  }
  pcw::store::Server server = std::move(started).value();
  std::printf("pcwd: listening on %s\n", server.address().c_str());
  std::fflush(stdout);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  // Poll-wait so a signal (which cannot touch condition variables) still
  // gets a prompt, clean shutdown.
  while (g_signalled == 0) {
    if (server.wait_for_ms(200)) break;
  }

  const pcw::Status stopped = server.stop();
  if (!stopped.ok()) {
    std::fprintf(stderr, "error: shutdown: %s\n", stopped.message().c_str());
    if (stats) pcw::cli::print_stats();
    return 1;
  }
  std::printf("pcwd: shut down cleanly\n");
  if (stats) pcw::cli::print_stats();
  return 0;
}
