// Shared CLI plumbing for the pcwz / pcw5ls front ends: the usage/exit-2
// contract (tests/cli_test.sh pins that unknown flags and commands exit 2
// with a usage message), sequential flag parsing with unknown-flag
// rejection, and raw-file I/O helpers. This used to be duplicated —
// slightly divergently — in both tools.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <optional>
#include <string>
#include <vector>

#include "pcw/telemetry.h"

namespace pcw::cli {

/// Prints "error: <why>" (when given) plus the tool's usage text to
/// stderr and exits 2 — the misuse exit code the CLI contract pins.
[[noreturn]] inline void usage_exit(const char* usage_text, const std::string& why = {}) {
  if (!why.empty()) std::fprintf(stderr, "error: %s\n\n", why.c_str());
  std::fputs(usage_text, stderr);
  std::exit(2);
}

/// Sequential cursor over argv[start..): next()/arg() iterate, value()
/// consumes the current flag's argument or usage-exits, unknown()
/// rejects the current argument under the shared exit-2 contract.
class ArgCursor {
 public:
  ArgCursor(int argc, char** argv, int start, const char* usage_text)
      : argc_(argc), argv_(argv), i_(start - 1), usage_(usage_text) {}

  bool next() { return ++i_ < argc_; }
  std::string arg() const { return argv_[i_]; }

  std::string value(const char* flag) {
    if (i_ + 1 >= argc_) usage_exit(usage_, std::string(flag) + " needs a value");
    return argv_[++i_];
  }

  [[noreturn]] void unknown() const { usage_exit(usage_, "unknown flag " + arg()); }

 private:
  int argc_;
  char** argv_;
  int i_;
  const char* usage_;
};

/// Slurps a file or exits 1 (runtime failure, not misuse).
inline std::vector<std::uint8_t> read_file_or_exit(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    std::exit(1);
  }
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

inline void write_file_or_exit(const std::string& path, const void* data,
                               std::size_t bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out ||
      !out.write(static_cast<const char*>(data), static_cast<std::streamsize>(bytes))) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    std::exit(1);
  }
}

/// --stats support shared by pcwz and pcw5ls. Every subcommand accepts
/// the flag; strip_stats_flag() removes it from argv before per-command
/// parsing so the existing flag grammars stay untouched. Arming happens
/// up front (buffered tracing, so per-span totals accompany the
/// counters); print_stats() emits the telemetry snapshot after the
/// command body runs. tests/cli_test.sh pins the "telemetry:" header
/// and counter-row format.
inline bool strip_stats_flag(int& argc, char** argv) {
  bool found = false;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--stats") {
      found = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  if (found) {
    const pcw::Status armed =
        pcw::configure(pcw::RuntimeOptions().with_trace_buffered());
    if (!armed.ok()) {
      std::fprintf(stderr, "warning: %s\n", armed.message().c_str());
    }
  }
  return found;
}

/// Strips one "<flag> <value>" pair from argv wherever it appears — the
/// same pre-pass style as strip_stats_flag, so global flags like
/// "--remote <addr>" compose with --stats and with every per-command
/// grammar (which never sees the flag) while keeping the exit-2
/// contract: the flag without its value is misuse. Returns the value,
/// or nullopt when the flag was absent.
inline std::optional<std::string> strip_value_flag(int& argc, char** argv,
                                                   const char* flag,
                                                   const char* usage_text) {
  std::optional<std::string> value;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == flag) {
      if (i + 1 >= argc) usage_exit(usage_text, std::string(flag) + " needs a value");
      value = argv[++i];
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return value;
}

inline void print_stats() {
  std::printf("\ntelemetry:\n");
  for (const pcw::TelemetryItem& item : pcw::telemetry_items(pcw::metrics_snapshot())) {
    std::printf("  %-22s %llu\n", item.name,
                static_cast<unsigned long long>(item.value));
  }
  const std::vector<pcw::SpanStat> spans = pcw::trace_span_stats();
  if (spans.empty()) return;
  std::printf("spans:\n");
  for (const pcw::SpanStat& s : spans) {
    std::printf("  %-22s %-8s x%-8llu %.3f ms\n", s.name, s.cat,
                static_cast<unsigned long long>(s.count),
                static_cast<double>(s.total_ns) / 1e6);
  }
}

}  // namespace pcw::cli
