// Shared CLI plumbing for the pcwz / pcw5ls front ends: the usage/exit-2
// contract (tests/cli_test.sh pins that unknown flags and commands exit 2
// with a usage message), sequential flag parsing with unknown-flag
// rejection, and raw-file I/O helpers. This used to be duplicated —
// slightly divergently — in both tools.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

namespace pcw::cli {

/// Prints "error: <why>" (when given) plus the tool's usage text to
/// stderr and exits 2 — the misuse exit code the CLI contract pins.
[[noreturn]] inline void usage_exit(const char* usage_text, const std::string& why = {}) {
  if (!why.empty()) std::fprintf(stderr, "error: %s\n\n", why.c_str());
  std::fputs(usage_text, stderr);
  std::exit(2);
}

/// Sequential cursor over argv[start..): next()/arg() iterate, value()
/// consumes the current flag's argument or usage-exits, unknown()
/// rejects the current argument under the shared exit-2 contract.
class ArgCursor {
 public:
  ArgCursor(int argc, char** argv, int start, const char* usage_text)
      : argc_(argc), argv_(argv), i_(start - 1), usage_(usage_text) {}

  bool next() { return ++i_ < argc_; }
  std::string arg() const { return argv_[i_]; }

  std::string value(const char* flag) {
    if (i_ + 1 >= argc_) usage_exit(usage_, std::string(flag) + " needs a value");
    return argv_[++i_];
  }

  [[noreturn]] void unknown() const { usage_exit(usage_, "unknown flag " + arg()); }

 private:
  int argc_;
  char** argv_;
  int i_;
  const char* usage_;
};

/// Slurps a file or exits 1 (runtime failure, not misuse).
inline std::vector<std::uint8_t> read_file_or_exit(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    std::exit(1);
  }
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

inline void write_file_or_exit(const std::string& path, const void* data,
                               std::size_t bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out ||
      !out.write(static_cast<const char*>(data), static_cast<std::streamsize>(bytes))) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    std::exit(1);
  }
}

}  // namespace pcw::cli
