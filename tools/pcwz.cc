// pcwz — command-line front end for the pcw standalone codec surface
// (pcw/codec.h: the sz error-bounded and zfp fixed-rate compressors).
//
//   pcwz compress   <in.f32> <out.pcwz> --dims D0,D1,D2 --eb 1e-3 [--rel]
//                   [--radius N] [--no-lossless]
//   pcwz compress   <in.f32> <out.pzfp> --dims D0,D1,D2 --zfp-rate 8
//   pcwz decompress <in.pcwz|in.pzfp> <out.f32>
//   pcwz inspect    <in.pcwz|in.pzfp>
//   pcwz verify     <in.pcwz|in.pzfp> [--shallow]
//   pcwz read       <file.pcw5> <dataset> <out.raw> [--region L0,L1,L2:H0,H1,H2]
//   pcwz restart    <file.pcw5> <field> <step> <out.raw> [--region ...]
//   pcwz stats      --remote <addr>
//
// `verify` checks a blob's structure and (checksummed containers) its
// CRCs without writing anything, localizing damage to block indices;
// exit 0 = intact, 1 = damaged, 2 = unparseable. Raw files are
// little-endian float32 arrays (numpy `.tofile` format).
//
// `read` and `restart` accept --remote unix:<path>|tcp:<host>:<port> to
// serve the request through a running pcwd instead of opening the file
// locally (the <file> argument then names the path server-side);
// `stats` prints a pcwd server's telemetry rows and is remote-only.
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "cli_common.h"
#include "pcw/codec.h"
#include "pcw/reader.h"
#include "pcw/series.h"
#include "pcw/store.h"
#include "pcw/text.h"

namespace {

using namespace pcw;

constexpr const char* kUsage =
    "usage:\n"
    "  pcwz compress   <in.f32> <out> --dims D0,D1,D2 --eb B [--rel]\n"
    "                  [--radius N] [--no-lossless]\n"
    "  pcwz compress   <in.f32> <out> --dims D0,D1,D2 --zfp-rate R\n"
    "  pcwz decompress <in> <out.f32>\n"
    "  pcwz inspect    <in>\n"
    "  pcwz verify     <in> [--shallow]\n"
    "  pcwz read       <file.pcw5> <dataset> <out.raw> [--region L0,L1,L2:H0,H1,H2]\n"
    "  pcwz restart    <file.pcw5> <field> <step> <out.raw> [--region ...]\n"
    "  pcwz stats      --remote <addr>\n"
    "every command accepts --stats (print the telemetry counters and\n"
    "span totals the run accumulated); read/restart/stats accept\n"
    "--remote unix:<path>|tcp:<host>:<port> to go through a pcwd server\n";

[[noreturn]] int fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.message().c_str());
  std::exit(1);
}

Dims parse_dims(const std::string& spec) {
  Dims dims;
  if (std::sscanf(spec.c_str(), "%zu,%zu,%zu", &dims.d0, &dims.d1, &dims.d2) != 3) {
    cli::usage_exit(kUsage, "--dims expects D0,D1,D2 (use 1 for unused dimensions)");
  }
  return dims;
}

int cmd_compress(int argc, char** argv) {
  if (argc < 4) cli::usage_exit(kUsage, "compress needs <in> <out>");
  const std::string in_path = argv[2], out_path = argv[3];
  std::optional<Dims> dims;
  CodecOptions options;  // defaults to the sz error-bounded codec
  cli::ArgCursor args(argc, argv, 4, kUsage);
  while (args.next()) {
    const std::string arg = args.arg();
    if (arg == "--dims") {
      dims = parse_dims(args.value("--dims"));
    } else if (arg == "--eb") {
      options.with_error_bound(std::stod(args.value("--eb")));
    } else if (arg == "--rel") {
      options.with_relative();
    } else if (arg == "--radius") {
      options.with_radius(static_cast<std::uint32_t>(std::stoul(args.value("--radius"))));
    } else if (arg == "--no-lossless") {
      options.with_lossless(false);
    } else if (arg == "--zfp-rate") {
      options.with_zfp_rate(static_cast<std::uint32_t>(std::stoul(args.value("--zfp-rate"))));
    } else {
      args.unknown();
    }
  }
  if (!dims) cli::usage_exit(kUsage, "--dims is required");

  const auto raw = cli::read_file_or_exit(in_path);
  if (raw.size() != dims->count() * sizeof(float)) {
    std::fprintf(stderr, "error: %s holds %zu bytes but dims need %zu\n",
                 in_path.c_str(), raw.size(), dims->count() * sizeof(float));
    return 1;
  }
  FieldView field;
  field.dtype = DType::kFloat32;
  field.bytes = raw;
  field.dims = *dims;

  util::Timer timer;
  const Result<std::vector<std::uint8_t>> blob = encode_blob(field, options);
  if (!blob.ok()) fail(blob.status());
  const double seconds = timer.seconds();
  cli::write_file_or_exit(out_path, blob->data(), blob->size());
  std::printf("%s: %zu -> %zu bytes (%.2fx, %.2f bits/value) in %.3f s (%.1f MB/s)\n",
              out_path.c_str(), raw.size(), blob->size(),
              static_cast<double>(raw.size()) / static_cast<double>(blob->size()),
              bit_rate(blob->size(), dims->count()), seconds,
              static_cast<double>(raw.size()) / seconds / 1e6);
  return 0;
}

int cmd_decompress(int argc, char** argv) {
  if (argc < 4) cli::usage_exit(kUsage, "decompress needs <in> <out>");
  if (argc > 4) cli::usage_exit(kUsage, "unknown flag " + std::string(argv[4]));
  const auto blob = cli::read_file_or_exit(argv[2]);
  util::Timer timer;
  const Result<DecodedBlob> decoded = decode_blob(blob);
  if (!decoded.ok()) fail(decoded.status());
  const double seconds = timer.seconds();
  cli::write_file_or_exit(argv[3], decoded->bytes.data(), decoded->bytes.size());
  const std::size_t values = decoded->dims.count();
  std::printf("%s: %zu values in %.3f s (%.1f MB/s)\n", argv[3], values, seconds,
              static_cast<double>(decoded->bytes.size()) / seconds / 1e6);
  return 0;
}

int cmd_inspect(int argc, char** argv) {
  if (argc < 3) cli::usage_exit(kUsage, "inspect needs <in>");
  if (argc > 3) cli::usage_exit(kUsage, "unknown flag " + std::string(argv[3]));
  const auto blob = cli::read_file_or_exit(argv[2]);
  const Result<BlobInfo> info_or = inspect_blob(blob);
  if (!info_or.ok()) fail(info_or.status());
  const BlobInfo& info = *info_or;

  if (info.filter_id == kCodecZfp) {
    std::printf("codec: pcw::zfp (fixed rate)\n");
    std::printf("dims: %zu x %zu x %zu (%zu values)\n", info.dims.d0, info.dims.d1,
                info.dims.d2, info.dims.count());
    std::printf("bit-rate: %.2f bits/value\n", bit_rate(blob.size(), info.dims.count()));
    return 0;
  }
  std::printf("codec: pcw::sz (error bounded)\n");
  std::printf("container: v%u, %u block%s\n", info.version, info.block_count,
              info.block_count == 1 ? "" : "s");
  if (info.version >= 3) {
    std::printf("predictor: %u/%u blocks temporal%s\n", info.temporal_blocks,
                info.block_count,
                info.temporal_blocks > 0 ? " (decoding needs the reference step)" : "");
  }
  std::printf("dtype: %s\n", to_string(info.dtype));
  std::printf("dims: %zu x %zu x %zu (%zu values)\n", info.dims.d0, info.dims.d1,
              info.dims.d2, info.dims.count());
  std::printf("abs error bound: %g\n", info.abs_error_bound);
  std::printf("quantizer radius: %u\n", info.radius);
  std::printf("outliers: %llu (%.3f%%)\n",
              static_cast<unsigned long long>(info.outlier_count),
              100.0 * static_cast<double>(info.outlier_count) /
                  static_cast<double>(info.dims.count()));
  std::printf("lossless stage: %s\n", info.lz_applied ? "applied" : "skipped");
  std::printf("bit-rate: %.2f bits/value\n", bit_rate(blob.size(), info.dims.count()));
  return 0;
}

int cmd_verify(int argc, char** argv) {
  if (argc < 3) cli::usage_exit(kUsage, "verify needs <in>");
  bool deep = true;
  cli::ArgCursor args(argc, argv, 3, kUsage);
  while (args.next()) {
    if (args.arg() == "--shallow") {
      deep = false;
    } else {
      args.unknown();
    }
  }
  const auto blob = cli::read_file_or_exit(argv[2]);
  const BlobVerifyReport report = verify_blob(blob, deep);
  if (!report.parsed) {
    std::printf("%s: UNPARSEABLE (%s)\n", argv[2], report.detail.c_str());
    return 2;
  }
  if (report.version > 0) {
    std::printf("container: v%u (%s)\n", report.version,
                report.checksummed ? "checksummed" : "no checksums");
  }
  if (report.ok) {
    std::printf("%s: OK%s\n", argv[2],
                report.checksummed ? "" : " (structural checks only)");
    return 0;
  }
  std::printf("%s: DAMAGED: %s\n", argv[2], report.detail.c_str());
  if (!report.damaged_blocks.empty()) {
    std::printf("damaged blocks:");
    for (const std::uint32_t b : report.damaged_blocks) std::printf(" %u", b);
    std::printf("\n");
  }
  return 1;
}

Region parse_region(const std::string& spec) {
  Region r;
  if (std::sscanf(spec.c_str(), "%zu,%zu,%zu:%zu,%zu,%zu", &r.lo[0], &r.lo[1],
                  &r.lo[2], &r.hi[0], &r.hi[1], &r.hi[2]) != 6) {
    cli::usage_exit(kUsage, "--region expects L0,L1,L2:H0,H1,H2 (half-open)");
  }
  return r;
}

void write_remote_read(const store::RemoteRead& read, const std::string& out_path,
                       const std::string& what) {
  cli::write_file_or_exit(out_path, read.bytes.data(), read.bytes.size());
  std::printf("%s: %zu values (%s, %zux%zux%zu) from %s\n", out_path.c_str(),
              read.bytes.size() / element_size(read.dtype), to_string(read.dtype),
              read.extents.d0, read.extents.d1, read.extents.d2, what.c_str());
}

store::Client connect_or_fail(const std::string& address) {
  Result<store::Client> client = store::Client::connect(address);
  if (!client.ok()) fail(client.status());
  return std::move(client).value();
}

/// `pcwz read <file.pcw5> <dataset> <out.raw>`: one dataset (whole, or a
/// --region hyperslab), decoded locally or by a pcwd server.
int cmd_read(int argc, char** argv, const std::optional<std::string>& remote) {
  if (argc < 5) cli::usage_exit(kUsage, "read needs <file> <dataset> <out>");
  const std::string path = argv[2], dataset = argv[3], out_path = argv[4];
  std::optional<Region> region;
  cli::ArgCursor args(argc, argv, 5, kUsage);
  while (args.next()) {
    if (args.arg() == "--region") {
      region = parse_region(args.value("--region"));
    } else {
      args.unknown();
    }
  }
  if (remote) {
    store::Client client = connect_or_fail(*remote);
    const Result<store::RemoteFile> file = client.open(path);
    if (!file.ok()) fail(file.status());
    const Result<store::RemoteRead> read = client.read_region(file->id, dataset, region);
    if (!read.ok()) fail(read.status());
    write_remote_read(*read, out_path, *remote);
    return 0;
  }
  const Result<Reader> reader = Reader::open(path);
  if (!reader.ok()) fail(reader.status());
  const Result<DatasetInfo> info = reader->dataset(dataset);
  if (!info.ok()) fail(info.status());
  const Result<std::vector<std::uint8_t>> bytes =
      region ? reader->read_region_bytes(dataset, *region, info->dtype)
             : reader->read_bytes(dataset, info->dtype);
  if (!bytes.ok()) fail(bytes.status());
  cli::write_file_or_exit(out_path, bytes->data(), bytes->size());
  std::printf("%s: %zu values (%s) from %s\n", out_path.c_str(),
              bytes->size() / element_size(info->dtype), to_string(info->dtype),
              path.c_str());
  return 0;
}

/// `pcwz restart <file.pcw5> <field> <step> <out.raw>`: one series step
/// reconstructed through its restart chain, locally or server-side.
int cmd_restart(int argc, char** argv, const std::optional<std::string>& remote) {
  if (argc < 6) cli::usage_exit(kUsage, "restart needs <file> <field> <step> <out>");
  const std::string path = argv[2], field = argv[3], out_path = argv[5];
  const auto step = static_cast<std::uint32_t>(std::stoul(argv[4]));
  std::optional<Region> region;
  cli::ArgCursor args(argc, argv, 6, kUsage);
  while (args.next()) {
    if (args.arg() == "--region") {
      region = parse_region(args.value("--region"));
    } else {
      args.unknown();
    }
  }
  if (remote) {
    store::Client client = connect_or_fail(*remote);
    const Result<store::RemoteFile> file = client.open(path);
    if (!file.ok()) fail(file.status());
    const Result<store::RemoteRead> read =
        client.read_step(file->id, field, step, region);
    if (!read.ok()) fail(read.status());
    write_remote_read(*read, out_path, *remote);
    return 0;
  }
  const Result<Reader> reader = Reader::open(path);
  if (!reader.ok()) fail(reader.status());
  const Result<DatasetInfo> info = reader->series_step(field, step);
  if (!info.ok()) fail(info.status());
  const Result<std::vector<std::uint8_t>> bytes =
      restart_bytes(*reader, field, step, info->dtype, region);
  if (!bytes.ok()) fail(bytes.status());
  cli::write_file_or_exit(out_path, bytes->data(), bytes->size());
  std::printf("%s: %zu values (%s) from %s step %u\n", out_path.c_str(),
              bytes->size() / element_size(info->dtype), to_string(info->dtype),
              path.c_str(), step);
  return 0;
}

/// `pcwz stats --remote <addr>`: a pcwd server's telemetry counters.
int cmd_stats(int argc, char** argv, const std::optional<std::string>& remote) {
  if (argc > 2) cli::usage_exit(kUsage, "unknown flag " + std::string(argv[2]));
  if (!remote) cli::usage_exit(kUsage, "stats needs --remote <addr>");
  store::Client client = connect_or_fail(*remote);
  const Result<std::vector<store::RemoteStat>> stats = client.stats();
  if (!stats.ok()) fail(stats.status());
  std::printf("server telemetry (%s):\n", remote->c_str());
  for (const store::RemoteStat& s : *stats) {
    std::printf("  %-22s %llu\n", s.name.c_str(),
                static_cast<unsigned long long>(s.value));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool stats = cli::strip_stats_flag(argc, argv);
  const std::optional<std::string> remote =
      cli::strip_value_flag(argc, argv, "--remote", kUsage);
  if (argc < 2) cli::usage_exit(kUsage);
  const std::string cmd = argv[1];
  const bool takes_remote = cmd == "read" || cmd == "restart" || cmd == "stats";
  if (remote && !takes_remote) {
    cli::usage_exit(kUsage, "--remote is not supported by " + cmd);
  }
  // The façade returns Status instead of throwing, but flag parsing
  // (std::stod/std::stoul) can still throw on malformed numbers.
  try {
    int rc = -1;
    if (cmd == "compress") rc = cmd_compress(argc, argv);
    else if (cmd == "decompress") rc = cmd_decompress(argc, argv);
    else if (cmd == "inspect") rc = cmd_inspect(argc, argv);
    else if (cmd == "verify") rc = cmd_verify(argc, argv);
    else if (cmd == "read") rc = cmd_read(argc, argv, remote);
    else if (cmd == "restart") rc = cmd_restart(argc, argv, remote);
    else if (cmd == "stats") rc = cmd_stats(argc, argv, remote);
    if (rc >= 0) {
      if (stats) cli::print_stats();
      return rc;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  cli::usage_exit(kUsage, "unknown command " + cmd);
}
