// pcwz — command-line front end for the pcw::sz / pcw::zfp compressors.
//
//   pcwz compress   <in.f32> <out.pcwz> --dims D0,D1,D2 --eb 1e-3 [--rel]
//                   [--radius N] [--no-lossless]
//   pcwz compress   <in.f32> <out.pzfp> --dims D0,D1,D2 --zfp-rate 8
//   pcwz decompress <in.pcwz|in.pzfp> <out.f32>
//   pcwz inspect    <in.pcwz|in.pzfp>
//
// Raw files are little-endian float32 arrays (numpy `.tofile` format).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "sz/compressor.h"
#include "util/timer.h"
#include "zfp/zfp.h"

namespace {

using namespace pcw;

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg != nullptr) std::fprintf(stderr, "error: %s\n\n", msg);
  std::fprintf(stderr,
               "usage:\n"
               "  pcwz compress   <in.f32> <out> --dims D0,D1,D2 --eb B [--rel]\n"
               "                  [--radius N] [--no-lossless]\n"
               "  pcwz compress   <in.f32> <out> --dims D0,D1,D2 --zfp-rate R\n"
               "  pcwz decompress <in> <out.f32>\n"
               "  pcwz inspect    <in>\n");
  std::exit(2);
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    std::exit(1);
  }
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const void* data, std::size_t bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out || !out.write(static_cast<const char*>(data), static_cast<std::streamsize>(bytes))) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    std::exit(1);
  }
}

sz::Dims parse_dims(const std::string& spec) {
  sz::Dims dims;
  if (std::sscanf(spec.c_str(), "%zu,%zu,%zu", &dims.d0, &dims.d1, &dims.d2) != 3) {
    usage("--dims expects D0,D1,D2 (use 1 for unused dimensions)");
  }
  return dims;
}

int cmd_compress(int argc, char** argv) {
  if (argc < 4) usage("compress needs <in> <out>");
  const std::string in_path = argv[2], out_path = argv[3];
  std::optional<sz::Dims> dims;
  sz::Params sz_params;
  std::optional<int> zfp_rate;
  for (int i = 4; i < argc; ++i) {
    const std::string arg = argv[i];
    auto need_value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) usage((std::string(flag) + " needs a value").c_str());
      return argv[++i];
    };
    if (arg == "--dims") {
      dims = parse_dims(need_value("--dims"));
    } else if (arg == "--eb") {
      sz_params.error_bound = std::stod(need_value("--eb"));
    } else if (arg == "--rel") {
      sz_params.mode = sz::ErrorBoundMode::kRelative;
    } else if (arg == "--radius") {
      sz_params.radius = static_cast<std::uint32_t>(std::stoul(need_value("--radius")));
    } else if (arg == "--no-lossless") {
      sz_params.lossless = false;
    } else if (arg == "--zfp-rate") {
      zfp_rate = std::stoi(need_value("--zfp-rate"));
    } else {
      usage(("unknown flag " + arg).c_str());
    }
  }
  if (!dims) usage("--dims is required");

  const auto raw = read_file(in_path);
  if (raw.size() != dims->count() * sizeof(float)) {
    std::fprintf(stderr, "error: %s holds %zu bytes but dims need %zu\n",
                 in_path.c_str(), raw.size(), dims->count() * sizeof(float));
    return 1;
  }
  std::span<const float> data{reinterpret_cast<const float*>(raw.data()), dims->count()};

  util::Timer timer;
  std::vector<std::uint8_t> blob;
  if (zfp_rate) {
    zfp::Params zp;
    zp.rate_bits = *zfp_rate;
    blob = zfp::compress(data, *dims, zp);
  } else {
    blob = sz::compress<float>(data, *dims, sz_params);
  }
  const double seconds = timer.seconds();
  write_file(out_path, blob.data(), blob.size());
  std::printf("%s: %zu -> %zu bytes (%.2fx, %.2f bits/value) in %.3f s (%.1f MB/s)\n",
              out_path.c_str(), raw.size(), blob.size(),
              static_cast<double>(raw.size()) / static_cast<double>(blob.size()),
              sz::bit_rate(blob.size(), dims->count()), seconds,
              static_cast<double>(raw.size()) / seconds / 1e6);
  return 0;
}

bool is_zfp_blob(std::span<const std::uint8_t> blob) {
  return blob.size() >= 4 && std::memcmp(blob.data(), "PZFP", 4) == 0;
}

int cmd_decompress(int argc, char** argv) {
  if (argc < 4) usage("decompress needs <in> <out>");
  if (argc > 4) usage(("unknown flag " + std::string(argv[4])).c_str());
  const auto blob = read_file(argv[2]);
  util::Timer timer;
  std::vector<float> values;
  if (is_zfp_blob(blob)) {
    values = zfp::decompress(blob);
  } else {
    values = sz::decompress<float>(blob);
  }
  const double seconds = timer.seconds();
  write_file(argv[3], values.data(), values.size() * sizeof(float));
  std::printf("%s: %zu values in %.3f s (%.1f MB/s)\n", argv[3], values.size(), seconds,
              static_cast<double>(values.size() * 4) / seconds / 1e6);
  return 0;
}

int cmd_inspect(int argc, char** argv) {
  if (argc < 3) usage("inspect needs <in>");
  if (argc > 3) usage(("unknown flag " + std::string(argv[3])).c_str());
  const auto blob = read_file(argv[2]);
  if (is_zfp_blob(blob)) {
    sz::Dims dims;
    (void)zfp::decompress(blob, &dims);  // validates and yields extents
    std::printf("codec: pcw::zfp (fixed rate)\n");
    std::printf("dims: %zu x %zu x %zu (%zu values)\n", dims.d0, dims.d1, dims.d2,
                dims.count());
    std::printf("bit-rate: %.2f bits/value\n", sz::bit_rate(blob.size(), dims.count()));
    return 0;
  }
  const sz::HeaderInfo info = sz::inspect(blob);
  std::printf("codec: pcw::sz (error bounded)\n");
  std::printf("container: v%u, %u block%s\n", info.version, info.block_count,
              info.block_count == 1 ? "" : "s");
  if (info.version >= 3) {
    std::printf("predictor: %u/%u blocks temporal%s\n", info.temporal_blocks,
                info.block_count,
                info.temporal_blocks > 0 ? " (decoding needs the reference step)" : "");
  }
  std::printf("dtype: %s\n", info.dtype == sz::DataType::kFloat32 ? "float32" : "float64");
  std::printf("dims: %zu x %zu x %zu (%zu values)\n", info.dims.d0, info.dims.d1,
              info.dims.d2, info.dims.count());
  std::printf("abs error bound: %g\n", info.abs_error_bound);
  std::printf("quantizer radius: %u\n", info.radius);
  std::printf("outliers: %llu (%.3f%%)\n",
              static_cast<unsigned long long>(info.outlier_count),
              100.0 * static_cast<double>(info.outlier_count) /
                  static_cast<double>(info.dims.count()));
  std::printf("lossless stage: %s\n", info.lz_applied ? "applied" : "skipped");
  std::printf("bit-rate: %.2f bits/value\n", sz::bit_rate(blob.size(), info.dims.count()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "compress") return cmd_compress(argc, argv);
    if (cmd == "decompress") return cmd_decompress(argc, argv);
    if (cmd == "inspect") return cmd_inspect(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  usage(("unknown command " + cmd).c_str());
}
