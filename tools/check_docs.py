#!/usr/bin/env python3
"""Link-and-anchor checker for the markdown documentation.

Scans README.md and docs/*.md and fails on:

  * a markdown link whose relative target does not exist;
  * a link with a ``#fragment`` that names no heading in the target file
    (GitHub anchor slugging, duplicate-suffix aware);
  * a backticked file reference (`docs/foo.md`, `tools/bar.py`, ...)
    that resolves against none of the repo roots — the way README
    references docs, docs cross-reference each other, and both point at
    tools, so a rename or deletion anywhere surfaces here;
  * a file in docs/ that docs/README.md (the index) does not mention;
  * a top-level README that has lost its pointer to the docs index.

Fenced code blocks are skipped entirely: their ``#`` lines are not
headings and their paths (`out.pcw5`, `in.f32`) are placeholders.

Runs as the tier-1 CTest ``docs_links`` and as a CI step. No arguments;
the repo root is derived from this script's location.

Exit code 0 = all references resolve; 1 = any violation (each printed).
"""

import os
import re
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# A backticked token is treated as a file reference when it contains a
# path separator and one of the extensions documentation actually links
# to. Tokens with glob or placeholder characters are ignored.
REF_EXTENSIONS = (".md", ".py", ".sh", ".cc", ".h", ".hpp", ".cpp",
                  ".json", ".yml", ".yaml", ".cmake", ".txt")
# Include-style (`pcw/telemetry.h`) and source-style (`sz/lorenzo.cc`)
# references resolve against these roots in addition to the repo root
# and the referencing file's own directory.
SEARCH_ROOTS = ("", "include", "src")

PROBLEMS = []


def problem(msg):
    PROBLEMS.append(msg)
    print(f"FAIL: {msg}")


def strip_fences(lines):
    """Yields (lineno, line) for lines outside ``` fenced blocks."""
    fenced = False
    for i, line in enumerate(lines, 1):
        if line.lstrip().startswith("```"):
            fenced = not fenced
            continue
        if not fenced:
            yield i, line


def github_anchors(path):
    """The set of anchor slugs GitHub generates for a markdown file."""
    with open(path, encoding="utf-8") as f:
        lines = f.read().splitlines()
    seen = {}
    anchors = set()
    for _, line in strip_fences(lines):
        m = re.match(r"#{1,6}\s+(.*)", line)
        if not m:
            continue
        text = m.group(1).strip()
        text = re.sub(r"`([^`]*)`", r"\1", text)          # drop code spans
        text = re.sub(r"\[([^]]*)\]\([^)]*\)", r"\1", text)  # unwrap links
        slug = re.sub(r"[^\w\- ]", "", text.lower()).strip()
        slug = re.sub(r" +", "-", slug)
        n = seen.get(slug, 0)
        seen[slug] = n + 1
        anchors.add(slug if n == 0 else f"{slug}-{n}")
    return anchors


def resolve(ref, from_dir):
    """First existing path for `ref`, or None."""
    candidates = [os.path.normpath(os.path.join(from_dir, ref))]
    candidates += [os.path.normpath(os.path.join(ROOT, r, ref))
                   for r in SEARCH_ROOTS]
    for c in candidates:
        if os.path.isfile(c):
            return c
    return None


def check_file(path):
    rel = os.path.relpath(path, ROOT)
    from_dir = os.path.dirname(path)
    with open(path, encoding="utf-8") as f:
        lines = f.read().splitlines()
    n_links = n_refs = 0
    for lineno, line in strip_fences(lines):
        # Markdown links: [text](target). Images and external URLs pass.
        for m in re.finditer(r"\[[^]]*\]\(([^)\s]+)\)", line):
            target = m.group(1)
            if re.match(r"[a-z]+:", target):  # http:, https:, mailto:
                continue
            n_links += 1
            fname, _, fragment = target.partition("#")
            dest = path if not fname else resolve(fname, from_dir)
            if dest is None:
                problem(f"{rel}:{lineno}: broken link '{target}'")
                continue
            if fragment and fragment not in github_anchors(dest):
                problem(f"{rel}:{lineno}: link '{target}' names no heading "
                        f"in {os.path.relpath(dest, ROOT)}")
        # Backticked file references.
        for m in re.finditer(r"`([^`\s]+)`", line):
            ref = m.group(1)
            if ("/" not in ref or not ref.endswith(REF_EXTENSIONS)
                    or any(ch in ref for ch in "*?{<>")):
                continue
            n_refs += 1
            if resolve(ref, from_dir) is None:
                problem(f"{rel}:{lineno}: stale file reference `{ref}`")
    print(f"ok: {rel}: {n_links} link(s), {n_refs} file reference(s)")


def main():
    readme = os.path.join(ROOT, "README.md")
    docs_dir = os.path.join(ROOT, "docs")
    index = os.path.join(docs_dir, "README.md")
    pages = sorted(
        os.path.join(docs_dir, f) for f in os.listdir(docs_dir)
        if f.endswith(".md"))

    for path in [readme] + pages:
        check_file(path)

    # Index completeness: every doc page appears in docs/README.md, and
    # the top-level README points readers at the index.
    if not os.path.isfile(index):
        problem("docs/README.md: index missing")
    else:
        with open(index, encoding="utf-8") as f:
            index_text = f.read()
        for page in pages:
            name = os.path.basename(page)
            if name != "README.md" and name not in index_text:
                problem(f"docs/README.md: index does not mention {name}")
    with open(readme, encoding="utf-8") as f:
        if "docs/README.md" not in f.read():
            problem("README.md: no pointer to the docs index docs/README.md")

    if PROBLEMS:
        print(f"\n{len(PROBLEMS)} documentation violation(s)")
        return 1
    print("\nall documentation references resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
