#!/usr/bin/env bash
# Tier-1 verification: configure, build everything, run the tier1-labelled
# CTest suites. This is the exact gate CI runs; run it locally before
# pushing.
#
# Usage:
#   tools/run_tier1.sh                 # RelWithDebInfo into build/
#   tools/run_tier1.sh --asan          # ASan+UBSan config into build-asan/
#   tools/run_tier1.sh --tsan          # ThreadSanitizer config into build-tsan/
#   tools/run_tier1.sh --filter REGEX  # only tests matching REGEX (ctest -R)
#   tools/run_tier1.sh --build-dir DIR [extra cmake args...]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir=""
default_build_dir="${repo_root}/build"
build_type=RelWithDebInfo
cmake_args=()
ctest_args=()

while [[ $# -gt 0 ]]; do
  case "$1" in
    --asan)
      default_build_dir="${repo_root}/build-asan"
      cmake_args+=(-DPCW_SANITIZE=ON)
      shift
      ;;
    --tsan)
      default_build_dir="${repo_root}/build-tsan"
      cmake_args+=(-DPCW_SANITIZE_THREAD=ON)
      shift
      ;;
    --build-dir)
      if [[ $# -lt 2 ]]; then
        echo "error: --build-dir requires a directory argument" >&2
        exit 2
      fi
      build_dir="$2"
      shift 2
      ;;
    --filter)
      if [[ $# -lt 2 ]]; then
        echo "error: --filter requires a regex argument" >&2
        exit 2
      fi
      ctest_args+=(-R "$2")
      shift 2
      ;;
    *)
      cmake_args+=("$1")
      shift
      ;;
  esac
done

# An explicit --build-dir wins over the --asan default, whatever the order.
build_dir="${build_dir:-${default_build_dir}}"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE="${build_type}" "${cmake_args[@]+"${cmake_args[@]}"}"
cmake --build "${build_dir}" -j
ctest --test-dir "${build_dir}" -L tier1 --output-on-failure -j "$(nproc)" \
  "${ctest_args[@]+"${ctest_args[@]}"}"
