#!/usr/bin/env python3
"""Validator for PCW_TRACE output (Chrome trace-event JSON).

Checks that a trace file written by util::trace (the PCW_TRACE env hook,
pcw::flush_trace, or trace::write_json) is something chrome://tracing /
Perfetto will actually load:

  * top-level object with a "traceEvents" array and displayTimeUnit;
  * every event is a complete ("X") span with name, cat, pid, tid, and
    non-negative numeric ts/dur;
  * args, when present, is an object of numbers;
  * spans never end before they start.

``--require NAME ...`` additionally asserts that each named span occurs
at least once -- tests/trace_smoke.sh uses this to pin that a bench-sized
run emits the per-block sz stage spans, the h5 async-queue spans, and the
per-step engine spans.

Usage:  tools/check_trace.py TRACE.json [--require NAME ...]
Exit 0 = valid (and all required spans present); 1 = any violation.
"""

import argparse
import collections
import json
import numbers
import sys

PROBLEMS = []


def problem(msg):
    PROBLEMS.append(msg)
    print(f"FAIL: {msg}")


def check_event(i, ev):
    if not isinstance(ev, dict):
        problem(f"event {i}: not an object")
        return None
    for key in ("name", "cat", "ph"):
        if not isinstance(ev.get(key), str) or not ev[key]:
            problem(f"event {i}: missing string field '{key}'")
            return None
    if ev["ph"] != "X":
        problem(f"event {i} ({ev['name']}): phase {ev['ph']!r}, want complete 'X'")
        return None
    for key in ("pid", "tid", "ts", "dur"):
        if not isinstance(ev.get(key), numbers.Number):
            problem(f"event {i} ({ev['name']}): missing numeric field '{key}'")
            return None
    if ev["ts"] < 0 or ev["dur"] < 0:
        problem(f"event {i} ({ev['name']}): negative ts/dur")
        return None
    if "args" in ev:
        if not isinstance(ev["args"], dict) or not all(
            isinstance(v, numbers.Number) for v in ev["args"].values()
        ):
            problem(f"event {i} ({ev['name']}): args is not an object of numbers")
            return None
    return ev["name"]


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", help="Chrome trace-event JSON file to validate")
    ap.add_argument("--require", nargs="+", default=[], metavar="NAME",
                    help="span names that must occur at least once")
    args = ap.parse_args()

    try:
        with open(args.trace) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        problem(f"{args.trace}: unreadable ({e})")
        print(f"\n{len(PROBLEMS)} trace violation(s)")
        return 1

    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        problem(f"{args.trace}: no top-level traceEvents array")
    else:
        names = collections.Counter()
        for i, ev in enumerate(doc["traceEvents"]):
            name = check_event(i, ev)
            if name is not None:
                names[name] += 1
        if doc.get("displayTimeUnit") not in ("ns", "ms"):
            problem(f"{args.trace}: displayTimeUnit "
                    f"{doc.get('displayTimeUnit')!r}, want 'ns' or 'ms'")
        if not names:
            problem(f"{args.trace}: no events recorded")
        for want in args.require:
            if names[want] == 0:
                problem(f"{args.trace}: required span '{want}' never recorded")
        if not PROBLEMS:
            top = ", ".join(f"{n} x{c}" for n, c in names.most_common(8))
            print(f"ok: {args.trace}: {sum(names.values())} events, "
                  f"{len(names)} span names ({top})")

    if PROBLEMS:
        print(f"\n{len(PROBLEMS)} trace violation(s)")
        return 1
    print("\ntrace valid")
    return 0


if __name__ == "__main__":
    sys.exit(main())
