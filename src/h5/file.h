// h5lite File: the shared-file handle.
//
// One File object is shared by all ranks of a (simulated-MPI) run, like an
// MPI-IO/parallel-HDF5 file handle. Thread-safety contract:
//   * pwrite/pread are safe from any thread (POSIX pwrite is atomic w.r.t.
//     the offset argument),
//   * alloc() is lock-free (atomic cursor),
//   * add_dataset()/metadata access is mutex-protected,
//   * the async queue is a background-thread writer emulating HDF5's
//     asynchronous VOL connector [Tang et al., TPDS'22]: async_write()
//     enqueues and returns immediately; WriteTicket::wait() (or flush())
//     observes durability and any I/O error.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "h5/format.h"
#include "util/thread_pool.h"

namespace pcw::mpi {
class Comm;
}

namespace pcw::h5 {

/// Completion handle for an asynchronous write.
class WriteTicket {
 public:
  WriteTicket() = default;
  explicit WriteTicket(std::shared_future<void> f) : fut_(std::move(f)) {}
  /// Blocks until the write is on disk; rethrows any I/O error.
  void wait() const {
    if (fut_.valid()) fut_.get();
  }
  bool valid() const { return fut_.valid(); }

 private:
  std::shared_future<void> fut_;
};

/// Completion handle for an asynchronous read; take() blocks until the
/// bytes are in memory and rethrows any I/O error. The buffer moves out
/// of the ticket (one-shot, move-only) so the hot read path never copies
/// a payload it already owns.
class ReadTicket {
 public:
  ReadTicket() = default;
  explicit ReadTicket(std::future<std::vector<std::uint8_t>> f) : fut_(std::move(f)) {}
  std::vector<std::uint8_t> take() {
    if (!fut_.valid()) throw std::runtime_error("h5: empty read ticket");
    return fut_.get();
  }
  bool valid() const { return fut_.valid(); }

 private:
  std::future<std::vector<std::uint8_t>> fut_;
};

struct FileOptions {
  /// Background I/O threads for the async queue (writes on the write
  /// path, payload prefetch on the read path). The paper's async VOL uses
  /// one background thread; more can be useful on real parallel FS.
  unsigned async_threads = 1;
  /// Create via a temp file ("<path>.tmp") promoted by an atomic rename
  /// at the first commit, so a crash before any commit leaves nothing at
  /// the final path. Disable to write the final path in place (a reader
  /// of a never-committed file then gets a clean "no committed footer").
  bool atomic_create = true;
  /// Bounded retry budget for *transient* I/O errors (EIO/EAGAIN) in the
  /// async write queue: total attempts = 1 + write_retries, with
  /// escalating backoff. Permanent errors (ENOSPC, crash) never retry.
  unsigned write_retries = 3;
};

class File {
 public:
  /// Creates/truncates a file for writing. The data cursor starts after
  /// the superblock.
  static std::shared_ptr<File> create(const std::string& path, FileOptions opts = {});

  /// Opens an existing file read-only and parses the dataset table. The
  /// async queue serves read prefetch (async_read) on opened files.
  static std::shared_ptr<File> open(const std::string& path, FileOptions opts = {});

  ~File();
  File(const File&) = delete;
  File& operator=(const File&) = delete;

  // ---- data-region primitives -------------------------------------------

  /// Reserves `bytes` of data region; returns the starting offset.
  std::uint64_t alloc(std::uint64_t bytes);

  /// Collective allocation: every rank passes the same total, every rank
  /// receives the same base offset (rank 0 allocates, then broadcast).
  std::uint64_t alloc_collective(mpi::Comm& comm, std::uint64_t total_bytes);

  /// Synchronous positioned write/read.
  void pwrite(std::uint64_t offset, std::span<const std::uint8_t> data);
  std::vector<std::uint8_t> pread(std::uint64_t offset, std::uint64_t size) const;

  /// Asynchronous positioned write: the buffer is moved into the queue.
  WriteTicket async_write(std::uint64_t offset, std::vector<std::uint8_t> data);

  /// Asynchronous positioned read: the request lands on the background
  /// I/O queue immediately; ReadTicket::take() yields the bytes. This is
  /// what lets the read engine overlap field k's decompression with the
  /// payload reads of field k+1 (the write pipeline run in reverse).
  ReadTicket async_read(std::uint64_t offset, std::uint64_t size);

  /// Waits until every queued async write has completed, then rethrows
  /// the first write error whose WriteTicket nobody waited on. The error
  /// is sticky: a payload that never reached the disk cannot be made
  /// durable by a later commit, so every flush/commit/close after a
  /// failed write keeps failing rather than sealing a footer over the
  /// hole.
  void flush_async();

  // ---- metadata -----------------------------------------------------------

  /// Registers a dataset (call once per dataset, any single rank).
  void add_dataset(DatasetDesc desc);

  /// Updates an already-registered dataset (e.g. to fill in actual sizes
  /// and overflow segments after the write wave).
  void update_dataset(const DatasetDesc& desc);

  const std::vector<DatasetDesc>& datasets() const { return datasets_; }
  const DatasetDesc* find_dataset(const std::string& name) const;

  /// Resolves one step of a time series by its logical field name
  /// (DatasetDesc::series_base); nullptr when absent.
  const DatasetDesc* find_series(const std::string& base, std::uint32_t step) const;

  /// Crash-consistent commit: drain the async queue, fsync the data,
  /// append a sealed footer, fsync, publish it in the alternate
  /// superblock slot, fsync again. The file stays writable; each commit
  /// supersedes the previous one while the previous footer remains intact
  /// on disk as the shadow copy a reader falls back to if the newest
  /// commit is torn. The first commit of an atomic_create file also
  /// promotes the temp file to the final path.
  void commit();

  /// Collective commit: barriers around the queue drain, then rank 0
  /// commits. Call after each step's metadata is registered to bound data
  /// loss to one step.
  void commit_collective(mpi::Comm& comm);

  /// Collective close: barrier, async flush, then rank 0 commits. The
  /// File stays usable read-only.
  void close_collective(mpi::Comm& comm);

  /// Non-collective close for single-writer use. Surfaces any pending
  /// I/O or fsync error — data is not durable until this (or commit())
  /// returns.
  void close_single();

  std::uint64_t data_end() const { return cursor_.load(); }
  const std::string& path() const { return path_; }

  /// Total bytes of file consumed (superblock + data + footer), valid
  /// after close. This is the "storage size" benches report.
  std::uint64_t file_bytes() const { return file_bytes_; }

 private:
  File() = default;
  void commit_locked();
  void promote_temp();

  std::string path_;        // final path (what path() reports)
  std::string write_path_;  // where bytes land: path_ or path_ + ".tmp"
  int fd_ = -1;
  bool writable_ = false;
  FileOptions opts_;
  bool temp_pending_ = false;   // atomic_create file not yet promoted
  std::uint64_t commit_seq_ = 0;
  std::atomic<std::uint64_t> cursor_{kSuperblockSize};
  std::uint64_t file_bytes_ = 0;

  mutable std::mutex meta_mu_;
  std::vector<DatasetDesc> datasets_;
  bool closed_ = false;

  // First async write failure (post-retry); rethrown by flush_async().
  std::mutex err_mu_;
  std::exception_ptr async_error_;

  std::unique_ptr<util::ThreadPool> async_pool_;
};

}  // namespace pcw::h5
