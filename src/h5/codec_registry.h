// The codec registry: the single authority mapping on-disk filter ids to
// Filter factories plus capability flags.
//
// Replaces the hardwired kNone/kSz/kZfp switch that used to live in
// make_filter: dataset_io and the read engines resolve every filter here,
// so a codec registered at runtime (pcw::register_codec) round-trips
// through the h5 layer without that layer knowing it exists. Built-ins
// self-register on first use; registration is thread-safe.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "h5/filter.h"

namespace pcw::h5 {

/// Knob bundle handed to every factory; each codec reads the slice it
/// understands (sz the error-bound family, zfp the rate, customs none).
struct FilterParams {
  sz::Params sz;
  zfp::Params zfp;
};

struct CodecEntry {
  std::uint32_t id = 0;
  std::string name;
  /// Capability metadata (surfaced via pcw::registered_codecs); the
  /// decode paths key off the Filter virtuals themselves — see
  /// Filter::stored_dims / decode_region.
  bool supports_decode_region = false;
  bool supports_temporal = false;
  bool builtin = false;
  std::function<std::unique_ptr<Filter>(const FilterParams&)> make;
};

class CodecRegistry {
 public:
  /// The process-wide registry, built-ins pre-registered.
  static CodecRegistry& instance();

  /// Registers a codec. Throws std::invalid_argument on an empty
  /// name/factory and std::runtime_error on an already-taken id.
  void add(CodecEntry entry);

  bool contains(std::uint32_t id) const;

  /// Entry metadata (factory included); throws std::invalid_argument with
  /// the known-id list on an unknown id.
  CodecEntry info(std::uint32_t id) const;

  /// All entries: built-ins first, then customs, each group by id.
  std::vector<CodecEntry> entries() const;

  /// Instantiates the filter for `id`; unknown ids throw
  /// std::invalid_argument naming the id and the registered set (the
  /// clean "file needs a codec this build does not have" error).
  std::unique_ptr<Filter> make(std::uint32_t id, const FilterParams& params = {}) const;

 private:
  CodecRegistry();

  mutable std::mutex mu_;
  std::vector<CodecEntry> entries_;
};

}  // namespace pcw::h5
