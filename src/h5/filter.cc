#include "h5/filter.h"

#include <cstring>
#include <stdexcept>

#include "h5/codec_registry.h"

namespace pcw::h5 {

std::vector<std::uint8_t> Filter::decode_region(std::span<const std::uint8_t> blob,
                                                DataType dtype,
                                                const sz::Dims& local_dims,
                                                const sz::Region& region,
                                                unsigned threads,
                                                sz::RegionDecodeStats* stats) const {
  (void)threads;
  sz::validate_region(region, local_dims);
  const std::vector<std::uint8_t> full =
      decode(blob, dtype, sz::element_count(local_dims));
  const std::size_t esize = element_size(dtype);
  std::vector<std::uint8_t> out(region.count() * esize);
  sz::for_each_region_row(region, local_dims,
                          [&](std::size_t g, std::size_t len, std::size_t o) {
                            std::memcpy(out.data() + o * esize, full.data() + g * esize,
                                        len * esize);
                          });
  if (stats != nullptr) {
    stats->blocks_total = 1;
    stats->blocks_decoded = 1;
    stats->used_block_index = false;
  }
  return out;
}

std::vector<std::uint8_t> NullFilter::decode(std::span<const std::uint8_t> blob,
                                             DataType dtype,
                                             std::uint64_t expect_elems) const {
  if (blob.size() != expect_elems * element_size(dtype)) {
    throw std::runtime_error("h5: null-filter size mismatch");
  }
  return {blob.begin(), blob.end()};
}

std::vector<std::uint8_t> SzFilter::encode(std::span<const std::uint8_t> raw,
                                           DataType dtype, const sz::Dims& dims) const {
  switch (dtype) {
    case DataType::kFloat32: {
      if (raw.size() != dims.count() * sizeof(float)) {
        throw std::invalid_argument("h5: sz-filter f32 size mismatch");
      }
      std::span<const float> data{reinterpret_cast<const float*>(raw.data()), dims.count()};
      return sz::compress<float>(data, dims, params_);
    }
    case DataType::kFloat64: {
      if (raw.size() != dims.count() * sizeof(double)) {
        throw std::invalid_argument("h5: sz-filter f64 size mismatch");
      }
      std::span<const double> data{reinterpret_cast<const double*>(raw.data()), dims.count()};
      return sz::compress<double>(data, dims, params_);
    }
    case DataType::kBytes:
      throw std::invalid_argument("h5: sz filter requires a float type");
  }
  throw std::invalid_argument("h5: unknown dtype");
}

std::vector<std::uint8_t> SzFilter::decode(std::span<const std::uint8_t> blob,
                                           DataType dtype,
                                           std::uint64_t expect_elems) const {
  switch (dtype) {
    case DataType::kFloat32: {
      std::vector<float> vals =
          sz::decompress<float>(blob, nullptr, params_.threads, params_.verify);
      if (vals.size() != expect_elems) throw std::runtime_error("h5: sz element count");
      std::vector<std::uint8_t> out(vals.size() * sizeof(float));
      std::memcpy(out.data(), vals.data(), out.size());
      return out;
    }
    case DataType::kFloat64: {
      std::vector<double> vals =
          sz::decompress<double>(blob, nullptr, params_.threads, params_.verify);
      if (vals.size() != expect_elems) throw std::runtime_error("h5: sz element count");
      std::vector<std::uint8_t> out(vals.size() * sizeof(double));
      std::memcpy(out.data(), vals.data(), out.size());
      return out;
    }
    case DataType::kBytes:
      throw std::invalid_argument("h5: sz filter requires a float type");
  }
  throw std::invalid_argument("h5: unknown dtype");
}

std::vector<std::uint8_t> SzFilter::decode_region(std::span<const std::uint8_t> blob,
                                                  DataType dtype,
                                                  const sz::Dims& local_dims,
                                                  const sz::Region& region,
                                                  unsigned threads,
                                                  sz::RegionDecodeStats* stats) const {
  // The fast path trusts the container's own extents; if the caller's
  // coordinate system disagrees (e.g. a flat {1,1,n} view of a 3-D blob),
  // partial decode would reinterpret the data, so fall back to decoding
  // everything and slicing in the caller's coordinates.
  if (sz::inspect(blob).dims != local_dims) {
    return Filter::decode_region(blob, dtype, local_dims, region, threads, stats);
  }
  switch (dtype) {
    case DataType::kFloat32: {
      const std::vector<float> vals =
          sz::decompress_region<float>(blob, region, threads, stats, params_.verify);
      std::vector<std::uint8_t> out(vals.size() * sizeof(float));
      std::memcpy(out.data(), vals.data(), out.size());
      return out;
    }
    case DataType::kFloat64: {
      const std::vector<double> vals =
          sz::decompress_region<double>(blob, region, threads, stats, params_.verify);
      std::vector<std::uint8_t> out(vals.size() * sizeof(double));
      std::memcpy(out.data(), vals.data(), out.size());
      return out;
    }
    case DataType::kBytes:
      throw std::invalid_argument("h5: sz filter requires a float type");
  }
  throw std::invalid_argument("h5: unknown dtype");
}

std::optional<sz::Dims> SzFilter::stored_dims(std::span<const std::uint8_t> blob) const {
  return sz::inspect(blob).dims;
}

std::vector<std::uint8_t> ZfpFilter::encode(std::span<const std::uint8_t> raw,
                                            DataType dtype, const sz::Dims& dims) const {
  if (dtype != DataType::kFloat32) {
    throw std::invalid_argument("h5: zfp filter supports f32 only");
  }
  if (raw.size() != dims.count() * sizeof(float)) {
    throw std::invalid_argument("h5: zfp-filter f32 size mismatch");
  }
  std::span<const float> data{reinterpret_cast<const float*>(raw.data()), dims.count()};
  return zfp::compress(data, dims, params_);
}

std::vector<std::uint8_t> ZfpFilter::decode(std::span<const std::uint8_t> blob,
                                            DataType dtype,
                                            std::uint64_t expect_elems) const {
  if (dtype != DataType::kFloat32) {
    throw std::invalid_argument("h5: zfp filter supports f32 only");
  }
  const std::vector<float> vals = zfp::decompress(blob);
  if (vals.size() != expect_elems) throw std::runtime_error("h5: zfp element count");
  std::vector<std::uint8_t> out(vals.size() * sizeof(float));
  std::memcpy(out.data(), vals.data(), out.size());
  return out;
}

std::unique_ptr<Filter> make_filter(FilterId id, const sz::Params& sz_params,
                                    const zfp::Params& zfp_params) {
  FilterParams params;
  params.sz = sz_params;
  params.zfp = zfp_params;
  return CodecRegistry::instance().make(static_cast<std::uint32_t>(id), params);
}

}  // namespace pcw::h5
