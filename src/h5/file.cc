#include "h5/file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "mpi/comm.h"
#include "util/crc32c.h"
#include "util/fault.h"
#include "util/io_error.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace pcw::h5 {
namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  const int e = errno;
  throw util::IoError("h5: " + what + ": " + std::strerror(e), e,
                      util::IoError::transient_errno(e));
}

void pwrite_loop(int fd, const std::uint8_t* buf, std::size_t len, std::uint64_t off) {
  while (len > 0) {
    const ssize_t n = ::pwrite(fd, buf, len, static_cast<off_t>(off));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("pwrite");
    }
    buf += n;
    len -= static_cast<std::size_t>(n);
    off += static_cast<std::uint64_t>(n);
  }
}

void full_pwrite(int fd, const std::uint8_t* buf, std::size_t len, std::uint64_t off) {
  auto& reg = util::metrics::Registry::get();
  reg.io_writes.add();
  reg.io_write_bytes.add(len);
  util::trace::Span span("pwrite", "h5", "bytes", len);
  const std::uint64_t t0 = util::trace::now_ns();
  if (util::fault::armed()) {
    if (const auto tear = util::fault::on_write(len)) {
      // Torn write: the prefix reaches the disk, then the power goes.
      pwrite_loop(fd, buf, std::min(static_cast<std::size_t>(*tear), len), off);
      throw util::fault::CrashError();
    }
  }
  pwrite_loop(fd, buf, len, off);
  reg.io_write_ns.record(util::trace::now_ns() - t0);
}

void full_pread(int fd, std::uint8_t* buf, std::size_t len, std::uint64_t off) {
  auto& reg = util::metrics::Registry::get();
  reg.io_reads.add();
  reg.io_read_bytes.add(len);
  util::trace::Span span("pread", "h5", "bytes", len);
  std::uint8_t* const start = buf;
  const std::size_t total = len;
  while (len > 0) {
    const ssize_t n = ::pread(fd, buf, len, static_cast<off_t>(off));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("pread");
    }
    if (n == 0) throw std::runtime_error("h5: pread past EOF");
    buf += n;
    len -= static_cast<std::size_t>(n);
    off += static_cast<std::uint64_t>(n);
  }
  if (util::fault::armed()) util::fault::on_read(start, total);
}

void fsync_fd(int fd) {
  util::metrics::Registry::get().io_syncs.add();
  util::trace::Span span("fsync", "h5");
  if (util::fault::armed()) util::fault::on_sync();
  while (::fsync(fd) < 0) {
    if (errno == EINTR) continue;
    throw_errno("fsync");
  }
}

/// Makes a rename() of an entry in `path`'s directory durable.
void fsync_parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int dfd = ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd < 0) throw_errno("open parent dir");
  try {
    fsync_fd(dfd);
  } catch (...) {
    ::close(dfd);
    throw;
  }
  ::close(dfd);
}

}  // namespace

std::shared_ptr<File> File::create(const std::string& path, FileOptions opts) {
  auto file = std::shared_ptr<File>(new File());
  file->path_ = path;
  file->opts_ = opts;
  file->write_path_ = opts.atomic_create ? path + ".tmp" : path;
  file->temp_pending_ = opts.atomic_create;
  file->writable_ = true;
  file->fd_ = ::open(file->write_path_.c_str(), O_CREAT | O_TRUNC | O_RDWR, 0644);
  if (file->fd_ < 0) throw_errno("open for create");
  // Placeholder superblock: slot 0 carries magic/version with seq 0 and
  // footer_off 0 ("no commit yet"), slot 1 stays zero. A reader of a
  // never-committed in-place file gets a clean "no committed footer".
  std::vector<std::uint8_t> sb(kSuperblockSize, 0);
  serialize_slot(SuperblockSlot{}, sb.data());
  full_pwrite(file->fd_, sb.data(), sb.size(), 0);
  file->async_pool_ = std::make_unique<util::ThreadPool>(opts.async_threads);
  return file;
}

std::shared_ptr<File> File::open(const std::string& path, FileOptions opts) {
  auto file = std::shared_ptr<File>(new File());
  file->path_ = path;
  file->write_path_ = path;
  file->opts_ = opts;
  file->writable_ = false;
  file->fd_ = ::open(path.c_str(), O_RDONLY);
  if (file->fd_ < 0) throw_errno("open for read");
  file->async_pool_ = std::make_unique<util::ThreadPool>(opts.async_threads);

  struct stat st {};
  if (::fstat(file->fd_, &st) < 0) throw_errno("fstat");
  const auto fsize = static_cast<std::uint64_t>(st.st_size);

  std::uint8_t head[kLegacySuperblockSize];
  full_pread(file->fd_, head, sizeof(head), 0);
  std::uint32_t magic, version;
  std::memcpy(&magic, head, 4);
  std::memcpy(&version, head + 4, 4);
  if (magic != kMagic) throw std::runtime_error("h5: bad magic (not a PCW5 file)");
  if (version < kVersionMin || version > kVersion) {
    throw std::runtime_error("h5: unsupported version");
  }

  if (version < 3) {
    // Legacy single superblock patched at close.
    std::uint64_t footer_off, footer_size;
    std::memcpy(&footer_off, head + 8, 8);
    std::memcpy(&footer_size, head + 16, 8);
    if (footer_off == 0) throw std::runtime_error("h5: file was not closed");
    if (footer_off > fsize || footer_size > fsize - footer_off) {
      throw std::runtime_error("h5: footer extends past end of file");
    }
    std::vector<std::uint8_t> footer(footer_size);
    full_pread(file->fd_, footer.data(), footer.size(), footer_off);
    file->datasets_ = parse_footer(footer, version);
    file->cursor_.store(footer_off);
    file->file_bytes_ = footer_off + footer_size;
    file->closed_ = true;
    return file;
  }

  // v3: two commit slots; take the valid one with the highest sequence
  // number, falling back to the other (the shadow copy of the previous
  // commit) when the newest footer turns out torn or corrupt.
  std::uint8_t sb[kSuperblockSize];
  full_pread(file->fd_, sb, sizeof(sb), 0);
  std::optional<SuperblockSlot> slots[2] = {parse_slot(sb),
                                            parse_slot(sb + kSuperblockSlotSize)};
  if (slots[1] && (!slots[0] || slots[1]->seq > slots[0]->seq)) {
    std::swap(slots[0], slots[1]);
  }
  std::string detail = "h5: no committed footer";
  for (const auto& slot : slots) {
    if (!slot || slot->footer_off == 0) continue;
    if (slot->footer_off > fsize || slot->footer_size > fsize - slot->footer_off ||
        slot->footer_size < kFooterTrailerBytes) {
      detail = "h5: footer extends past end of file";
      continue;
    }
    std::vector<std::uint8_t> footer(slot->footer_size);
    full_pread(file->fd_, footer.data(), footer.size(), slot->footer_off);
    if (util::crc32c(0, footer.data(), footer.size()) != slot->footer_crc) {
      detail = "h5: footer checksum mismatch";
      continue;
    }
    try {
      file->datasets_ = parse_sealed_footer(footer);
    } catch (const std::exception& e) {
      detail = e.what();
      continue;
    }
    file->commit_seq_ = slot->seq;
    file->cursor_.store(slot->footer_off);
    file->file_bytes_ = slot->footer_off + slot->footer_size;
    file->closed_ = true;
    return file;
  }
  throw std::runtime_error(detail);
}

File::~File() {
  if (async_pool_) async_pool_->wait_idle();
  if (fd_ >= 0) ::close(fd_);
  // An atomic_create file that never committed leaves no trace behind.
  if (temp_pending_) ::unlink(write_path_.c_str());
}

std::uint64_t File::alloc(std::uint64_t bytes) {
  if (!writable_) throw std::runtime_error("h5: alloc on read-only file");
  return cursor_.fetch_add(bytes);
}

std::uint64_t File::alloc_collective(mpi::Comm& comm, std::uint64_t total_bytes) {
  std::uint64_t base = 0;
  if (comm.rank() == 0) base = alloc(total_bytes);
  return comm.bcast(base, 0);
}

void File::pwrite(std::uint64_t offset, std::span<const std::uint8_t> data) {
  if (!writable_) throw std::runtime_error("h5: pwrite on read-only file");
  full_pwrite(fd_, data.data(), data.size(), offset);
}

std::vector<std::uint8_t> File::pread(std::uint64_t offset, std::uint64_t size) const {
  std::vector<std::uint8_t> out(size);
  full_pread(fd_, out.data(), out.size(), offset);
  return out;
}

namespace {

/// Decrements the async-queue depth gauge when a queued task finishes,
/// on every exit path (return, retry exhaustion, rethrow).
struct DepthDrop {
  ~DepthDrop() { util::metrics::Registry::get().io_queue_depth.add(-1); }
};

}  // namespace

WriteTicket File::async_write(std::uint64_t offset, std::vector<std::uint8_t> data) {
  if (!writable_) throw std::runtime_error("h5: async_write on read-only file");
  auto buf = std::make_shared<std::vector<std::uint8_t>>(std::move(data));
  const unsigned retries = opts_.write_retries;
  {
    auto& reg = util::metrics::Registry::get();
    reg.io_async_enqueues.add();
    reg.io_queue_depth.add(1);
  }
  util::trace::instant("enqueue", "h5", "bytes", buf->size());
  std::future<void> fut = async_pool_->submit([this, offset, buf, retries] {
    DepthDrop drop;
    util::trace::Span span("async_write", "h5", "bytes", buf->size());
    for (unsigned attempt = 0;; ++attempt) {
      try {
        full_pwrite(fd_, buf->data(), buf->size(), offset);
        return;
      } catch (const util::IoError& e) {
        if (!e.transient() || attempt >= retries) {
          // Record the post-retry failure so flush_async()/commit()
          // surface it even when nobody waits on this ticket — a commit
          // must never seal a footer over a payload that never landed.
          std::lock_guard lock(err_mu_);
          if (!async_error_) async_error_ = std::current_exception();
          throw;
        }
        util::metrics::Registry::get().io_write_retries.add();
        // Escalating backoff: 1, 4, 16... ms.
        std::this_thread::sleep_for(std::chrono::milliseconds(1u << (2 * attempt)));
      }
    }
  });
  return WriteTicket(fut.share());
}

ReadTicket File::async_read(std::uint64_t offset, std::uint64_t size) {
  // submit() futures carry void, so the bytes travel through an explicit
  // promise; exceptions (short read, I/O error) surface at get().
  auto promise = std::make_shared<std::promise<std::vector<std::uint8_t>>>();
  ReadTicket ticket(promise->get_future());
  {
    auto& reg = util::metrics::Registry::get();
    reg.io_async_enqueues.add();
    reg.io_queue_depth.add(1);
  }
  async_pool_->submit([this, offset, size, promise] {
    DepthDrop drop;
    util::trace::Span span("async_read", "h5", "bytes", size);
    try {
      promise->set_value(pread(offset, size));
    } catch (...) {
      promise->set_exception(std::current_exception());
    }
  });
  return ticket;
}

void File::flush_async() {
  if (async_pool_) async_pool_->wait_idle();
  std::lock_guard lock(err_mu_);
  if (async_error_) std::rethrow_exception(async_error_);
}

void File::add_dataset(DatasetDesc desc) {
  std::lock_guard lock(meta_mu_);
  for (const auto& d : datasets_) {
    if (d.name == desc.name) throw std::invalid_argument("h5: duplicate dataset " + desc.name);
  }
  datasets_.push_back(std::move(desc));
}

void File::update_dataset(const DatasetDesc& desc) {
  std::lock_guard lock(meta_mu_);
  for (auto& d : datasets_) {
    if (d.name == desc.name) {
      d = desc;
      return;
    }
  }
  throw std::invalid_argument("h5: update of unknown dataset " + desc.name);
}

const DatasetDesc* File::find_dataset(const std::string& name) const {
  std::lock_guard lock(meta_mu_);
  for (const auto& d : datasets_) {
    if (d.name == name) return &d;
  }
  return nullptr;
}

const DatasetDesc* File::find_series(const std::string& base, std::uint32_t step) const {
  std::lock_guard lock(meta_mu_);
  for (const auto& d : datasets_) {
    if (d.series_member && d.series_step == step && d.series_base == base) return &d;
  }
  return nullptr;
}

void File::promote_temp() {
  if (::rename(write_path_.c_str(), path_.c_str()) < 0) throw_errno("rename");
  temp_pending_ = false;
  fsync_parent_dir(path_);
}

void File::commit_locked() {
  if (!writable_) throw std::runtime_error("h5: commit on read-only file");
  if (closed_) throw std::runtime_error("h5: commit on closed file");
  // 1. Data durable before the footer that describes it.
  fsync_fd(fd_);
  // 2. Footer appended into freshly *allocated* space, so no later data
  //    write can ever land on a committed footer, then made durable.
  std::vector<std::uint8_t> footer = seal_footer(datasets_);
  const std::uint64_t footer_off = cursor_.fetch_add(footer.size());
  full_pwrite(fd_, footer.data(), footer.size(), footer_off);
  fsync_fd(fd_);
  // 3. Publication: overwrite only the slot the *previous* commit did not
  //    use. Until this fsync returns, a reader still sees the previous
  //    commit; after it, the new one. There is no in-between.
  SuperblockSlot slot;
  slot.seq = commit_seq_ + 1;
  slot.footer_off = footer_off;
  slot.footer_size = footer.size();
  slot.footer_crc = util::crc32c(0, footer.data(), footer.size());
  std::uint8_t raw[kSuperblockSlotSize];
  serialize_slot(slot, raw);
  full_pwrite(fd_, raw, sizeof(raw), (slot.seq % 2) * kSuperblockSlotSize);
  fsync_fd(fd_);
  commit_seq_ = slot.seq;
  file_bytes_ = footer_off + footer.size();
  if (temp_pending_) promote_temp();
}

void File::commit() {
  flush_async();
  std::lock_guard lock(meta_mu_);
  commit_locked();
}

void File::commit_collective(mpi::Comm& comm) {
  comm.barrier();  // all writes issued
  flush_async();   // drain the shared async queue
  comm.barrier();
  if (comm.rank() == 0) {
    std::lock_guard lock(meta_mu_);
    commit_locked();
  }
  comm.barrier();
}

void File::close_collective(mpi::Comm& comm) {
  comm.barrier();          // all writes issued
  flush_async();           // drain this process's async queue
  comm.barrier();          // all queues drained
  if (comm.rank() == 0) {
    std::lock_guard lock(meta_mu_);
    if (!closed_) {
      commit_locked();
      closed_ = true;
    }
  }
  comm.barrier();
}

void File::close_single() {
  flush_async();
  std::lock_guard lock(meta_mu_);
  if (closed_) return;
  commit_locked();
  closed_ = true;
}

}  // namespace pcw::h5
