#include "h5/file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "mpi/comm.h"

namespace pcw::h5 {
namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error("h5: " + what + ": " + std::strerror(errno));
}

void full_pwrite(int fd, const std::uint8_t* buf, std::size_t len, std::uint64_t off) {
  while (len > 0) {
    const ssize_t n = ::pwrite(fd, buf, len, static_cast<off_t>(off));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("pwrite");
    }
    buf += n;
    len -= static_cast<std::size_t>(n);
    off += static_cast<std::uint64_t>(n);
  }
}

void full_pread(int fd, std::uint8_t* buf, std::size_t len, std::uint64_t off) {
  while (len > 0) {
    const ssize_t n = ::pread(fd, buf, len, static_cast<off_t>(off));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("pread");
    }
    if (n == 0) throw std::runtime_error("h5: pread past EOF");
    buf += n;
    len -= static_cast<std::size_t>(n);
    off += static_cast<std::uint64_t>(n);
  }
}

}  // namespace

std::shared_ptr<File> File::create(const std::string& path, FileOptions opts) {
  auto file = std::shared_ptr<File>(new File());
  file->path_ = path;
  file->writable_ = true;
  file->fd_ = ::open(path.c_str(), O_CREAT | O_TRUNC | O_RDWR, 0644);
  if (file->fd_ < 0) throw_errno("open for create");
  // Placeholder superblock; patched at close.
  std::vector<std::uint8_t> sb(kSuperblockSize, 0);
  full_pwrite(file->fd_, sb.data(), sb.size(), 0);
  file->async_pool_ = std::make_unique<util::ThreadPool>(opts.async_threads);
  return file;
}

std::shared_ptr<File> File::open(const std::string& path, FileOptions opts) {
  auto file = std::shared_ptr<File>(new File());
  file->path_ = path;
  file->writable_ = false;
  file->fd_ = ::open(path.c_str(), O_RDONLY);
  if (file->fd_ < 0) throw_errno("open for read");
  file->async_pool_ = std::make_unique<util::ThreadPool>(opts.async_threads);

  std::uint8_t sb[kSuperblockSize];
  full_pread(file->fd_, sb, sizeof(sb), 0);
  std::uint32_t magic, version;
  std::uint64_t footer_off, footer_size;
  std::memcpy(&magic, sb, 4);
  std::memcpy(&version, sb + 4, 4);
  std::memcpy(&footer_off, sb + 8, 8);
  std::memcpy(&footer_size, sb + 16, 8);
  if (magic != kMagic) throw std::runtime_error("h5: bad magic (not a PCW5 file)");
  if (version < kVersionMin || version > kVersion) {
    throw std::runtime_error("h5: unsupported version");
  }
  if (footer_off == 0) throw std::runtime_error("h5: file was not closed");

  std::vector<std::uint8_t> footer(footer_size);
  full_pread(file->fd_, footer.data(), footer.size(), footer_off);
  file->datasets_ = parse_footer(footer, version);
  file->cursor_.store(footer_off);
  file->file_bytes_ = footer_off + footer_size;
  file->closed_ = true;
  return file;
}

File::~File() {
  if (async_pool_) async_pool_->wait_idle();
  if (fd_ >= 0) ::close(fd_);
}

std::uint64_t File::alloc(std::uint64_t bytes) {
  if (!writable_) throw std::runtime_error("h5: alloc on read-only file");
  return cursor_.fetch_add(bytes);
}

std::uint64_t File::alloc_collective(mpi::Comm& comm, std::uint64_t total_bytes) {
  std::uint64_t base = 0;
  if (comm.rank() == 0) base = alloc(total_bytes);
  return comm.bcast(base, 0);
}

void File::pwrite(std::uint64_t offset, std::span<const std::uint8_t> data) {
  if (!writable_) throw std::runtime_error("h5: pwrite on read-only file");
  full_pwrite(fd_, data.data(), data.size(), offset);
}

std::vector<std::uint8_t> File::pread(std::uint64_t offset, std::uint64_t size) const {
  std::vector<std::uint8_t> out(size);
  full_pread(fd_, out.data(), out.size(), offset);
  return out;
}

WriteTicket File::async_write(std::uint64_t offset, std::vector<std::uint8_t> data) {
  if (!writable_) throw std::runtime_error("h5: async_write on read-only file");
  auto buf = std::make_shared<std::vector<std::uint8_t>>(std::move(data));
  std::future<void> fut = async_pool_->submit([this, offset, buf] {
    full_pwrite(fd_, buf->data(), buf->size(), offset);
  });
  return WriteTicket(fut.share());
}

ReadTicket File::async_read(std::uint64_t offset, std::uint64_t size) {
  // submit() futures carry void, so the bytes travel through an explicit
  // promise; exceptions (short read, I/O error) surface at get().
  auto promise = std::make_shared<std::promise<std::vector<std::uint8_t>>>();
  ReadTicket ticket(promise->get_future());
  async_pool_->submit([this, offset, size, promise] {
    try {
      promise->set_value(pread(offset, size));
    } catch (...) {
      promise->set_exception(std::current_exception());
    }
  });
  return ticket;
}

void File::flush_async() {
  if (async_pool_) async_pool_->wait_idle();
}

void File::add_dataset(DatasetDesc desc) {
  std::lock_guard lock(meta_mu_);
  for (const auto& d : datasets_) {
    if (d.name == desc.name) throw std::invalid_argument("h5: duplicate dataset " + desc.name);
  }
  datasets_.push_back(std::move(desc));
}

void File::update_dataset(const DatasetDesc& desc) {
  std::lock_guard lock(meta_mu_);
  for (auto& d : datasets_) {
    if (d.name == desc.name) {
      d = desc;
      return;
    }
  }
  throw std::invalid_argument("h5: update of unknown dataset " + desc.name);
}

const DatasetDesc* File::find_dataset(const std::string& name) const {
  std::lock_guard lock(meta_mu_);
  for (const auto& d : datasets_) {
    if (d.name == name) return &d;
  }
  return nullptr;
}

const DatasetDesc* File::find_series(const std::string& base, std::uint32_t step) const {
  std::lock_guard lock(meta_mu_);
  for (const auto& d : datasets_) {
    if (d.series_member && d.series_step == step && d.series_base == base) return &d;
  }
  return nullptr;
}

void File::write_footer_and_superblock() {
  const std::vector<std::uint8_t> footer = serialize_footer(datasets_);
  const std::uint64_t footer_off = cursor_.load();
  full_pwrite(fd_, footer.data(), footer.size(), footer_off);
  std::uint8_t sb[kSuperblockSize] = {};
  const std::uint64_t footer_size = footer.size();
  std::memcpy(sb, &kMagic, 4);
  std::memcpy(sb + 4, &kVersion, 4);
  std::memcpy(sb + 8, &footer_off, 8);
  std::memcpy(sb + 16, &footer_size, 8);
  full_pwrite(fd_, sb, sizeof(sb), 0);
  file_bytes_ = footer_off + footer_size;
  closed_ = true;
}

void File::close_collective(mpi::Comm& comm) {
  comm.barrier();          // all writes issued
  flush_async();           // drain this process's async queue
  comm.barrier();          // all queues drained
  if (comm.rank() == 0) {
    std::lock_guard lock(meta_mu_);
    if (!closed_) write_footer_and_superblock();
  }
  comm.barrier();
}

void File::close_single() {
  flush_async();
  std::lock_guard lock(meta_mu_);
  if (!closed_) write_footer_and_superblock();
}

}  // namespace pcw::h5
