#include "h5/dataset_io.h"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <stdexcept>

#include "sz/compressor.h"
#include "util/timer.h"

namespace pcw::h5 {
namespace {

// dtype_of<T>() comes from h5/format.h (via dataset_io.h).

std::span<const std::uint8_t> as_bytes_span(const void* p, std::size_t bytes) {
  return {static_cast<const std::uint8_t*>(p), bytes};
}

/// Rethrows the in-flight exception with the failing dataset/partition
/// prepended, preserving the exception type callers dispatch on. Filter
/// decode errors used to surface as bare size-mismatch text with no
/// location; every decode site below funnels through here.
[[noreturn]] void rethrow_with_location(const std::string& dataset, std::size_t part) {
  const std::string where =
      "dataset '" + dataset + "' partition " + std::to_string(part) + ": ";
  try {
    throw;
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(where + e.what());
  } catch (const std::exception& e) {
    throw std::runtime_error(where + e.what());
  }
}

}  // namespace

template <typename T>
void write_contiguous(mpi::Comm& comm, File& file, const std::string& name,
                      std::span<const T> local, const sz::Dims& global_dims) {
  // Element counts are statically known: one allgather of counts (this is
  // not data-dependent — it mirrors the hyperslab selection an HDF5 app
  // declares up front), then fully independent writes.
  const auto counts = comm.allgather<std::uint64_t>(local.size());
  const std::uint64_t total_elems =
      std::accumulate(counts.begin(), counts.end(), std::uint64_t{0});
  if (total_elems != global_dims.count()) {
    throw std::invalid_argument("h5: contiguous slice counts != global dims");
  }
  std::uint64_t my_elem_offset = 0;
  for (int r = 0; r < comm.rank(); ++r) my_elem_offset += counts[static_cast<std::size_t>(r)];

  const std::uint64_t base = file.alloc_collective(comm, total_elems * sizeof(T));
  file.pwrite(base + my_elem_offset * sizeof(T),
              as_bytes_span(local.data(), local.size_bytes()));

  if (comm.rank() == 0) {
    DatasetDesc desc;
    desc.name = name;
    desc.dtype = dtype_of<T>();
    desc.global_dims = global_dims;
    desc.layout = Layout::kContiguous;
    desc.filter = FilterId::kNone;
    desc.file_offset = base;
    desc.nbytes = total_elems * sizeof(T);
    file.add_dataset(std::move(desc));
  }
}

template <typename T>
FilterWriteStats write_filtered_collective(mpi::Comm& comm, File& file,
                                           const std::string& name,
                                           std::span<const T> local,
                                           const sz::Dims& local_dims,
                                           const sz::Dims& global_dims,
                                           const Filter& filter) {
  FilterWriteStats stats;
  util::Timer timer;

  // Phase 1: local compression. The collective write below cannot start
  // anywhere until *every* rank has finished this phase — that is the
  // bottleneck the paper's overlapping design removes.
  const std::vector<std::uint8_t> blob =
      filter.encode(as_bytes_span(local.data(), local.size_bytes()), dtype_of<T>(),
                    local_dims);
  stats.compressed_bytes = blob.size();
  stats.compress_seconds = timer.seconds();

  // Phase 2: exchange compressed sizes; everyone derives identical offsets.
  timer.reset();
  const auto sizes = comm.allgather<std::uint64_t>(blob.size());
  const auto counts = comm.allgather<std::uint64_t>(local.size());
  stats.exchange_seconds = timer.seconds();

  // Phase 3: collective write. Entered together (allgather synchronized
  // phase 2), exited together via barrier — collective semantics.
  timer.reset();
  std::uint64_t total_bytes = 0, my_off = 0, my_elem_off = 0, total_elems = 0;
  for (int r = 0; r < comm.size(); ++r) {
    const auto idx = static_cast<std::size_t>(r);
    if (r < comm.rank()) {
      my_off += sizes[idx];
      my_elem_off += counts[idx];
    }
    total_bytes += sizes[idx];
    total_elems += counts[idx];
  }
  if (total_elems != global_dims.count()) {
    throw std::invalid_argument("h5: filtered slice counts != global dims");
  }
  const std::uint64_t base = file.alloc_collective(comm, total_bytes);
  file.pwrite(base + my_off, blob);

  // Metadata: gather the partition table on rank 0.
  PartitionRecord mine;
  mine.rank = static_cast<std::uint32_t>(comm.rank());
  mine.elem_offset = my_elem_off;
  mine.elem_count = local.size();
  mine.file_offset = base + my_off;
  mine.reserved_bytes = blob.size();
  mine.actual_bytes = blob.size();
  const auto parts = comm.allgatherv<PartitionRecord>({&mine, 1});
  if (comm.rank() == 0) {
    DatasetDesc desc;
    desc.name = name;
    desc.dtype = dtype_of<T>();
    desc.global_dims = global_dims;
    desc.layout = Layout::kPartitioned;
    desc.filter = filter.id();
    if (filter.id() == FilterId::kSz) {
      desc.abs_error_bound = static_cast<const SzFilter&>(filter).params().error_bound;
    }
    for (const auto& rank_parts : parts) {
      desc.partitions.insert(desc.partitions.end(), rank_parts.begin(), rank_parts.end());
    }
    file.add_dataset(std::move(desc));
  }
  comm.barrier();
  stats.write_seconds = timer.seconds();
  return stats;
}

std::vector<std::uint8_t> read_partition_payload(const File& file,
                                                 const DatasetDesc& desc,
                                                 const PartitionRecord& part) {
  (void)desc;
  const std::uint64_t in_slot = std::min(part.actual_bytes, part.reserved_bytes);
  std::vector<std::uint8_t> payload = file.pread(part.file_offset, in_slot);
  if (part.overflow_bytes > 0) {
    const auto tail = file.pread(part.overflow_offset, part.overflow_bytes);
    payload.insert(payload.end(), tail.begin(), tail.end());
  }
  if (payload.size() != part.actual_bytes) {
    throw std::runtime_error("h5: partition payload size mismatch");
  }
  return payload;
}

template <typename T>
std::vector<T> read_dataset(const File& file, const std::string& name,
                            const sz::Params& sz_params) {
  const DatasetDesc* desc = file.find_dataset(name);
  if (desc == nullptr) throw std::invalid_argument("h5: no dataset named " + name);
  if (desc->dtype != dtype_of<T>()) throw std::runtime_error("h5: dtype mismatch");

  const std::uint64_t total = sz::element_count(desc->global_dims);
  std::vector<T> out(total);

  if (desc->layout == Layout::kContiguous) {
    if (desc->nbytes != total * sizeof(T)) throw std::runtime_error("h5: extent mismatch");
    const auto bytes = file.pread(desc->file_offset, desc->nbytes);
    std::memcpy(out.data(), bytes.data(), bytes.size());
    return out;
  }

  const auto filter = make_filter(desc->filter, sz_params);
  for (std::size_t p = 0; p < desc->partitions.size(); ++p) {
    const auto& part = desc->partitions[p];
    const auto payload = read_partition_payload(file, *desc, part);
    std::vector<std::uint8_t> raw;
    try {
      raw = filter->decode(payload, desc->dtype, part.elem_count);
    } catch (const std::exception&) {
      rethrow_with_location(desc->name, p);
    }
    if (part.elem_offset + part.elem_count > total) {
      throw std::runtime_error("h5: partition exceeds dataset extent");
    }
    std::memcpy(out.data() + part.elem_offset, raw.data(), raw.size());
  }
  return out;
}

template void write_contiguous<float>(mpi::Comm&, File&, const std::string&,
                                      std::span<const float>, const sz::Dims&);
template void write_contiguous<double>(mpi::Comm&, File&, const std::string&,
                                       std::span<const double>, const sz::Dims&);
template FilterWriteStats write_filtered_collective<float>(mpi::Comm&, File&,
                                                           const std::string&,
                                                           std::span<const float>,
                                                           const sz::Dims&, const sz::Dims&,
                                                           const Filter&);
template FilterWriteStats write_filtered_collective<double>(mpi::Comm&, File&,
                                                            const std::string&,
                                                            std::span<const double>,
                                                            const sz::Dims&, const sz::Dims&,
                                                            const Filter&);
template std::vector<float> read_dataset<float>(const File&, const std::string&,
                                                const sz::Params&);
template std::vector<double> read_dataset<double>(const File&, const std::string&,
                                                  const sz::Params&);

// ---- region (hyperslab) reads ---------------------------------------------

RegionSelection plan_region_selection(const DatasetDesc& desc, const sz::Region& region) {
  sz::validate_region(region, desc.global_dims);
  RegionSelection sel;
  sel.region = region;
  sel.elements = region.count();
  sel.partitions_total =
      desc.layout == Layout::kContiguous ? 1 : desc.partitions.size();
  if (sel.elements == 0) return sel;

  // The selected rows in global-flat order; flat_lo is strictly
  // increasing, which the per-partition binary search below relies on.
  std::vector<RowSegment> rows;
  sz::for_each_region_row(region, desc.global_dims,
                          [&](std::size_t g, std::size_t len, std::size_t o) {
                            rows.push_back({g, len, o});
                          });

  if (desc.layout == Layout::kContiguous) {
    PartitionSelection ps;
    ps.flat_lo = rows.front().flat_lo;
    ps.flat_hi = rows.back().flat_lo + rows.back().len;
    ps.segments = std::move(rows);
    sel.parts.push_back(std::move(ps));
    return sel;
  }

  const std::uint64_t row_len = rows.front().len;  // all rows share one length
  for (std::size_t p = 0; p < desc.partitions.size(); ++p) {
    const PartitionRecord& part = desc.partitions[p];
    const std::uint64_t lo = part.elem_offset;
    const std::uint64_t hi = part.elem_offset + part.elem_count;
    PartitionSelection ps;
    ps.part_index = p;
    // First row whose end can reach past the partition start: a row
    // starting mid-partition-boundary is clipped, not dropped.
    const std::uint64_t start_key = lo >= row_len ? lo - row_len + 1 : 0;
    auto it = std::lower_bound(
        rows.begin(), rows.end(), start_key,
        [](const RowSegment& r, std::uint64_t v) { return r.flat_lo < v; });
    for (; it != rows.end() && it->flat_lo < hi; ++it) {
      const std::uint64_t s = std::max(it->flat_lo, lo);
      const std::uint64_t e = std::min(it->flat_lo + it->len, hi);
      if (s >= e) continue;
      ps.segments.push_back({s, e - s, it->out_offset + (s - it->flat_lo)});
    }
    if (ps.segments.empty()) continue;
    ps.flat_lo = ps.segments.front().flat_lo;
    ps.flat_hi = ps.segments.back().flat_lo + ps.segments.back().len;
    sel.parts.push_back(std::move(ps));
  }
  return sel;
}

std::uint64_t selection_payload_bytes(const DatasetDesc& desc,
                                      const RegionSelection& sel) {
  std::uint64_t total = 0;
  for (const PartitionSelection& ps : sel.parts) {
    if (ps.part_index == kContiguousSelection) {
      total += (ps.flat_hi - ps.flat_lo) * element_size(desc.dtype);
    } else {
      total += desc.partitions[ps.part_index].actual_bytes;
    }
  }
  return total;
}

std::vector<std::uint8_t> PayloadTicket::join() {
  std::vector<std::uint8_t> payload = slot.take();
  if (overflow.valid()) {
    const std::vector<std::uint8_t> tail = overflow.take();
    payload.insert(payload.end(), tail.begin(), tail.end());
  }
  if (payload.size() != expect_bytes) {
    throw std::runtime_error("h5: partition payload size mismatch");
  }
  return payload;
}

std::vector<PayloadTicket> async_read_selection(File& file, const DatasetDesc& desc,
                                                const RegionSelection& sel) {
  std::vector<PayloadTicket> tickets;
  tickets.reserve(sel.parts.size());
  for (const PartitionSelection& ps : sel.parts) {
    PayloadTicket t;
    if (ps.part_index == kContiguousSelection) {
      // Same metadata consistency gate as the synchronous path, so
      // corrupt footers throw here instead of reading a neighbour's bytes.
      if (desc.nbytes != sz::element_count(desc.global_dims) * element_size(desc.dtype)) {
        throw std::runtime_error("h5: extent mismatch");
      }
      const std::uint64_t bytes = (ps.flat_hi - ps.flat_lo) * element_size(desc.dtype);
      t.slot = file.async_read(desc.file_offset + ps.flat_lo * element_size(desc.dtype),
                               bytes);
      t.expect_bytes = bytes;
    } else {
      const PartitionRecord& part = desc.partitions[ps.part_index];
      t.slot = file.async_read(part.file_offset,
                               std::min(part.actual_bytes, part.reserved_bytes));
      if (part.overflow_bytes > 0) {
        t.overflow = file.async_read(part.overflow_offset, part.overflow_bytes);
      }
      t.expect_bytes = part.actual_bytes;
    }
    tickets.push_back(std::move(t));
  }
  return tickets;
}

std::vector<std::uint8_t> read_selection_payload(const File& file,
                                                 const DatasetDesc& desc,
                                                 const PartitionSelection& ps) {
  if (ps.part_index == kContiguousSelection) {
    if (desc.nbytes != sz::element_count(desc.global_dims) * element_size(desc.dtype)) {
      throw std::runtime_error("h5: extent mismatch");
    }
    const std::size_t esize = element_size(desc.dtype);
    return file.pread(desc.file_offset + ps.flat_lo * esize,
                      (ps.flat_hi - ps.flat_lo) * esize);
  }
  return read_partition_payload(file, desc, desc.partitions[ps.part_index]);
}

template <typename T>
void scatter_selection_part(const DatasetDesc& desc, const RegionSelection& sel,
                            const PartitionSelection& ps,
                            std::span<const std::uint8_t> payload, unsigned threads,
                            std::span<T> out, RegionReadStats* stats,
                            sz::VerifyMode verify) {
  if (out.size() != sel.elements) {
    throw std::invalid_argument("h5: region buffer size mismatch");
  }
  if (stats != nullptr) stats->payload_bytes += payload.size();

  // Contiguous pseudo-partition: the payload is exactly the raw hull
  // [flat_lo, flat_hi), so segments copy straight through.
  if (ps.part_index == kContiguousSelection) {
    if (payload.size() != (ps.flat_hi - ps.flat_lo) * sizeof(T)) {
      throw std::runtime_error("h5: contiguous hull size mismatch");
    }
    for (const RowSegment& seg : ps.segments) {
      std::memcpy(out.data() + seg.out_offset,
                  payload.data() + (seg.flat_lo - ps.flat_lo) * sizeof(T),
                  seg.len * sizeof(T));
    }
    return;
  }

  const PartitionRecord& part = desc.partitions[ps.part_index];
  sz::Params filter_params;
  filter_params.verify = verify;
  const auto filter = make_filter(desc.filter, filter_params);
  // Decode coordinate system: self-describing blobs carry their true
  // local extents (which is what unlocks the block-indexed partial
  // decode); codecs without stored extents are sliced in flat {1,1,n}
  // order. The registry-made filter answers for itself — no per-id
  // switch here.
  sz::Dims local_dims = sz::Dims::make_1d(part.elem_count);
  try {
    if (const auto stored = filter->stored_dims(payload)) {
      if (sz::element_count(*stored) != part.elem_count) {
        throw std::runtime_error("h5: partition extents disagree with blob");
      }
      local_dims = *stored;
    }
  } catch (const std::exception&) {
    rethrow_with_location(desc.name, ps.part_index);
  }

  // The needed flat interval, as the smallest covering box of the
  // partition's extents. The covering box is itself one contiguous flat
  // range, so segments index the decoded buffer by offset subtraction.
  const sz::Region cover = sz::covering_region(local_dims, ps.flat_lo - part.elem_offset,
                                               ps.flat_hi - part.elem_offset);
  const std::size_t cover_lo = sz::region_flat_lo(cover, local_dims);

  sz::RegionDecodeStats dstats;
  std::vector<std::uint8_t> bytes;
  try {
    bytes = filter->decode_region(payload, desc.dtype, local_dims, cover, threads, &dstats);
  } catch (const std::exception&) {
    rethrow_with_location(desc.name, ps.part_index);
  }
  if (stats != nullptr) {
    stats->blocks_total += dstats.blocks_total;
    stats->blocks_decoded += dstats.blocks_decoded;
  }

  for (const RowSegment& seg : ps.segments) {
    const std::size_t src = (seg.flat_lo - part.elem_offset) - cover_lo;
    std::memcpy(out.data() + seg.out_offset, bytes.data() + src * sizeof(T),
                seg.len * sizeof(T));
  }
}

template <typename T>
std::vector<T> read_region(const File& file, const std::string& name,
                           const sz::Region& region, const sz::Params& sz_params,
                           RegionReadStats* stats) {
  const DatasetDesc* desc = file.find_dataset(name);
  if (desc == nullptr) throw std::invalid_argument("h5: no dataset named " + name);
  if (desc->dtype != dtype_of<T>()) throw std::runtime_error("h5: dtype mismatch");

  const RegionSelection sel = plan_region_selection(*desc, region);
  if (stats != nullptr) {
    stats->partitions_total += sel.partitions_total;
    stats->partitions_read += sel.parts.size();
  }
  std::vector<T> out(sel.elements);
  for (const PartitionSelection& ps : sel.parts) {
    const std::vector<std::uint8_t> payload = read_selection_payload(file, *desc, ps);
    scatter_selection_part<T>(*desc, sel, ps, payload, sz_params.threads, out, stats,
                              sz_params.verify);
  }
  return out;
}

template void scatter_selection_part<float>(const DatasetDesc&, const RegionSelection&,
                                            const PartitionSelection&,
                                            std::span<const std::uint8_t>, unsigned,
                                            std::span<float>, RegionReadStats*,
                                            sz::VerifyMode);
template void scatter_selection_part<double>(const DatasetDesc&, const RegionSelection&,
                                             const PartitionSelection&,
                                             std::span<const std::uint8_t>, unsigned,
                                             std::span<double>, RegionReadStats*,
                                             sz::VerifyMode);
template std::vector<float> read_region<float>(const File&, const std::string&,
                                               const sz::Region&, const sz::Params&,
                                               RegionReadStats*);
template std::vector<double> read_region<double>(const File&, const std::string&,
                                                 const sz::Region&, const sz::Params&,
                                                 RegionReadStats*);

}  // namespace pcw::h5
