#include "h5/dataset_io.h"

#include <cstring>
#include <numeric>
#include <stdexcept>

#include "util/timer.h"

namespace pcw::h5 {
namespace {

// dtype_of<T>() comes from h5/format.h (via dataset_io.h).

std::span<const std::uint8_t> as_bytes_span(const void* p, std::size_t bytes) {
  return {static_cast<const std::uint8_t*>(p), bytes};
}

}  // namespace

template <typename T>
void write_contiguous(mpi::Comm& comm, File& file, const std::string& name,
                      std::span<const T> local, const sz::Dims& global_dims) {
  // Element counts are statically known: one allgather of counts (this is
  // not data-dependent — it mirrors the hyperslab selection an HDF5 app
  // declares up front), then fully independent writes.
  const auto counts = comm.allgather<std::uint64_t>(local.size());
  const std::uint64_t total_elems =
      std::accumulate(counts.begin(), counts.end(), std::uint64_t{0});
  if (total_elems != global_dims.count()) {
    throw std::invalid_argument("h5: contiguous slice counts != global dims");
  }
  std::uint64_t my_elem_offset = 0;
  for (int r = 0; r < comm.rank(); ++r) my_elem_offset += counts[static_cast<std::size_t>(r)];

  const std::uint64_t base = file.alloc_collective(comm, total_elems * sizeof(T));
  file.pwrite(base + my_elem_offset * sizeof(T),
              as_bytes_span(local.data(), local.size_bytes()));

  if (comm.rank() == 0) {
    DatasetDesc desc;
    desc.name = name;
    desc.dtype = dtype_of<T>();
    desc.global_dims = global_dims;
    desc.layout = Layout::kContiguous;
    desc.filter = FilterId::kNone;
    desc.file_offset = base;
    desc.nbytes = total_elems * sizeof(T);
    file.add_dataset(std::move(desc));
  }
}

template <typename T>
FilterWriteStats write_filtered_collective(mpi::Comm& comm, File& file,
                                           const std::string& name,
                                           std::span<const T> local,
                                           const sz::Dims& local_dims,
                                           const sz::Dims& global_dims,
                                           const Filter& filter) {
  FilterWriteStats stats;
  util::Timer timer;

  // Phase 1: local compression. The collective write below cannot start
  // anywhere until *every* rank has finished this phase — that is the
  // bottleneck the paper's overlapping design removes.
  const std::vector<std::uint8_t> blob =
      filter.encode(as_bytes_span(local.data(), local.size_bytes()), dtype_of<T>(),
                    local_dims);
  stats.compressed_bytes = blob.size();
  stats.compress_seconds = timer.seconds();

  // Phase 2: exchange compressed sizes; everyone derives identical offsets.
  timer.reset();
  const auto sizes = comm.allgather<std::uint64_t>(blob.size());
  const auto counts = comm.allgather<std::uint64_t>(local.size());
  stats.exchange_seconds = timer.seconds();

  // Phase 3: collective write. Entered together (allgather synchronized
  // phase 2), exited together via barrier — collective semantics.
  timer.reset();
  std::uint64_t total_bytes = 0, my_off = 0, my_elem_off = 0, total_elems = 0;
  for (int r = 0; r < comm.size(); ++r) {
    const auto idx = static_cast<std::size_t>(r);
    if (r < comm.rank()) {
      my_off += sizes[idx];
      my_elem_off += counts[idx];
    }
    total_bytes += sizes[idx];
    total_elems += counts[idx];
  }
  if (total_elems != global_dims.count()) {
    throw std::invalid_argument("h5: filtered slice counts != global dims");
  }
  const std::uint64_t base = file.alloc_collective(comm, total_bytes);
  file.pwrite(base + my_off, blob);

  // Metadata: gather the partition table on rank 0.
  PartitionRecord mine;
  mine.rank = static_cast<std::uint32_t>(comm.rank());
  mine.elem_offset = my_elem_off;
  mine.elem_count = local.size();
  mine.file_offset = base + my_off;
  mine.reserved_bytes = blob.size();
  mine.actual_bytes = blob.size();
  const auto parts = comm.allgatherv<PartitionRecord>({&mine, 1});
  if (comm.rank() == 0) {
    DatasetDesc desc;
    desc.name = name;
    desc.dtype = dtype_of<T>();
    desc.global_dims = global_dims;
    desc.layout = Layout::kPartitioned;
    desc.filter = filter.id();
    if (filter.id() == FilterId::kSz) {
      desc.abs_error_bound = static_cast<const SzFilter&>(filter).params().error_bound;
    }
    for (const auto& rank_parts : parts) {
      desc.partitions.insert(desc.partitions.end(), rank_parts.begin(), rank_parts.end());
    }
    file.add_dataset(std::move(desc));
  }
  comm.barrier();
  stats.write_seconds = timer.seconds();
  return stats;
}

std::vector<std::uint8_t> read_partition_payload(const File& file,
                                                 const DatasetDesc& desc,
                                                 const PartitionRecord& part) {
  (void)desc;
  const std::uint64_t in_slot = std::min(part.actual_bytes, part.reserved_bytes);
  std::vector<std::uint8_t> payload = file.pread(part.file_offset, in_slot);
  if (part.overflow_bytes > 0) {
    const auto tail = file.pread(part.overflow_offset, part.overflow_bytes);
    payload.insert(payload.end(), tail.begin(), tail.end());
  }
  if (payload.size() != part.actual_bytes) {
    throw std::runtime_error("h5: partition payload size mismatch");
  }
  return payload;
}

template <typename T>
std::vector<T> read_dataset(const File& file, const std::string& name,
                            const sz::Params& sz_params) {
  const DatasetDesc* desc = file.find_dataset(name);
  if (desc == nullptr) throw std::invalid_argument("h5: no dataset named " + name);
  if (desc->dtype != dtype_of<T>()) throw std::runtime_error("h5: dtype mismatch");

  const std::uint64_t total = desc->global_dims.count();
  std::vector<T> out(total);

  if (desc->layout == Layout::kContiguous) {
    if (desc->nbytes != total * sizeof(T)) throw std::runtime_error("h5: extent mismatch");
    const auto bytes = file.pread(desc->file_offset, desc->nbytes);
    std::memcpy(out.data(), bytes.data(), bytes.size());
    return out;
  }

  const auto filter = make_filter(desc->filter, sz_params);
  for (const auto& part : desc->partitions) {
    const auto payload = read_partition_payload(file, *desc, part);
    const auto raw = filter->decode(payload, desc->dtype, part.elem_count);
    if (part.elem_offset + part.elem_count > total) {
      throw std::runtime_error("h5: partition exceeds dataset extent");
    }
    std::memcpy(out.data() + part.elem_offset, raw.data(), raw.size());
  }
  return out;
}

template void write_contiguous<float>(mpi::Comm&, File&, const std::string&,
                                      std::span<const float>, const sz::Dims&);
template void write_contiguous<double>(mpi::Comm&, File&, const std::string&,
                                       std::span<const double>, const sz::Dims&);
template FilterWriteStats write_filtered_collective<float>(mpi::Comm&, File&,
                                                           const std::string&,
                                                           std::span<const float>,
                                                           const sz::Dims&, const sz::Dims&,
                                                           const Filter&);
template FilterWriteStats write_filtered_collective<double>(mpi::Comm&, File&,
                                                            const std::string&,
                                                            std::span<const double>,
                                                            const sz::Dims&, const sz::Dims&,
                                                            const Filter&);
template std::vector<float> read_dataset<float>(const File&, const std::string&,
                                                const sz::Params&);
template std::vector<double> read_dataset<double>(const File&, const std::string&,
                                                  const sz::Params&);

}  // namespace pcw::h5
