// h5lite on-disk format.
//
// HDF5-inspired single shared file with deferred metadata:
//
//   [superblock: 128 B][data region ......][footer(s)][EOF]
//
// Data is written offset-addressed (pwrite) by any number of writers; the
// footer — the dataset table — is serialized at commit by rank 0 and
// published through the superblock. Deferred metadata is what lets
// partitions land at *predicted* offsets without any metadata round-trip,
// and lets overflow segments be appended after the main write wave.
//
// Format v3 makes commits crash-consistent (docs/integrity.md):
//   * The footer is *sealed*: serialized records followed by a 20-byte
//     trailer [payload_crc u32][payload_size u64][version u32][magic u32],
//     so a torn or misdirected footer write is detected, not parsed.
//   * The superblock holds two 64-byte commit slots written alternately
//     (slot = seq % 2). Each commit appends a fresh sealed footer, fsyncs,
//     then overwrites only the *other* slot — the previous commit's slot
//     and footer stay intact as the shadow copy a reader falls back to
//     when the newest slot or footer is torn.
// v1/v2 files (single 32-byte superblock patched in place at close)
// remain readable.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sz/dims.h"

namespace pcw::h5 {

inline constexpr std::uint32_t kMagic = 0x35574350;  // "PCW5"
/// v2 adds per-step time-series fields to each dataset record; v3 adds
/// the sealed footer + dual-slot commit protocol (record layout of v2).
inline constexpr std::uint32_t kVersion = 3;
inline constexpr std::uint32_t kVersionMin = 1;
/// v1/v2 superblock: one 32-byte header patched in place at close.
inline constexpr std::uint64_t kLegacySuperblockSize = 32;
/// One v3 commit slot; two of them form the v3 superblock.
inline constexpr std::uint64_t kSuperblockSlotSize = 64;
inline constexpr std::uint64_t kSuperblockSize = 2 * kSuperblockSlotSize;
inline constexpr std::uint32_t kFooterMagic = 0x46574350;  // "PCWF"
/// Sealed-footer trailer: payload_crc u32, payload_size u64, version u32,
/// magic u32.
inline constexpr std::uint64_t kFooterTrailerBytes = 20;

enum class DataType : std::uint8_t { kFloat32 = 0, kFloat64 = 1, kBytes = 2 };

/// Maps an element type to its h5lite tag; shared by dataset_io and the
/// engine (was copy-pasted per translation unit).
template <typename T>
constexpr DataType dtype_of();
template <>
constexpr DataType dtype_of<float>() {
  return DataType::kFloat32;
}
template <>
constexpr DataType dtype_of<double>() {
  return DataType::kFloat64;
}

inline std::size_t element_size(DataType t) {
  switch (t) {
    case DataType::kFloat32: return 4;
    case DataType::kFloat64: return 8;
    case DataType::kBytes: return 1;
  }
  return 1;
}

enum class Layout : std::uint8_t {
  kContiguous = 0,    // one extent, uncompressed
  kPartitioned = 1,   // per-rank partitions, possibly filtered
};

enum class FilterId : std::uint32_t {
  kNone = 0,
  kSz = 1,            // pcw::sz error-bounded lossy filter (H5Z-SZ analog)
  kZfp = 2,           // pcw::zfp fixed-rate lossy filter (H5Z-ZFP analog)
};

/// One rank's slice of a partitioned dataset.
struct PartitionRecord {
  std::uint32_t rank = 0;
  std::uint64_t elem_offset = 0;     // first element in flattened global order
  std::uint64_t elem_count = 0;
  std::uint64_t file_offset = 0;     // start of the reserved slot
  std::uint64_t reserved_bytes = 0;  // slot size (predicted * r_space)
  std::uint64_t actual_bytes = 0;    // bytes of real (compressed) payload
  // Overflow segment: payload bytes beyond the reserved slot, appended at
  // the end of the data region after the main write wave (§III-D).
  std::uint64_t overflow_offset = 0;
  std::uint64_t overflow_bytes = 0;
};

struct DatasetDesc {
  std::string name;
  DataType dtype = DataType::kFloat32;
  sz::Dims global_dims;              // logical extents of the whole field
  Layout layout = Layout::kContiguous;
  FilterId filter = FilterId::kNone;
  double abs_error_bound = 0.0;      // informational, for filtered data
  // kContiguous:
  std::uint64_t file_offset = 0;
  std::uint64_t nbytes = 0;
  // kPartitioned:
  std::vector<PartitionRecord> partitions;

  // Time-series membership (format v2). A series is a set of datasets
  // sharing series_base, one per step; `name` stays unique per step
  // ("rho@t0003"). series_ref_step is the step whose reconstruction the
  // temporal blocks of this step reference — equal to series_step for a
  // spatial keyframe (the restart-chain anchor).
  bool series_member = false;
  std::string series_base;
  std::uint32_t series_step = 0;
  std::uint32_t series_ref_step = 0;

  bool is_keyframe() const { return series_member && series_ref_step == series_step; }
};

/// Canonical dataset name of one series step ("rho@t0042"); what
/// SeriesWriter registers and find_series scans for.
std::string series_dataset_name(const std::string& base, std::uint32_t step);

/// Footer (dataset table) serialization. serialize_footer always writes
/// the current version; parse_footer accepts any version in
/// [kVersionMin, kVersion] (v1 records simply carry no series fields).
/// Every size parse_footer reads is capped against the bytes actually
/// present before any allocation, so a corrupt footer fails cleanly.
std::vector<std::uint8_t> serialize_footer(const std::vector<DatasetDesc>& datasets);
std::vector<DatasetDesc> parse_footer(const std::vector<std::uint8_t>& bytes,
                                      std::uint32_t version = kVersion);

/// Sealed footer (v3): serialized records plus the checksummed,
/// magic-terminated trailer. parse_sealed_footer validates magic, version,
/// size and CRC before parsing and throws on any mismatch.
std::vector<std::uint8_t> seal_footer(const std::vector<DatasetDesc>& datasets);
std::vector<DatasetDesc> parse_sealed_footer(const std::vector<std::uint8_t>& bytes);

/// One v3 superblock commit slot. A slot with footer_off == 0 (seq 0) is
/// the create-time placeholder: "no commit yet".
struct SuperblockSlot {
  std::uint64_t seq = 0;
  std::uint64_t footer_off = 0;
  std::uint64_t footer_size = 0;
  std::uint32_t footer_crc = 0;  // CRC32C of the sealed footer block
};

/// Serializes `slot` into kSuperblockSlotSize bytes at `out` (zero-padded,
/// self-checksummed).
void serialize_slot(const SuperblockSlot& slot, std::uint8_t* out);

/// Parses kSuperblockSlotSize bytes; nullopt when the magic, version or
/// slot checksum does not hold (a torn or never-written slot).
std::optional<SuperblockSlot> parse_slot(const std::uint8_t* in);

}  // namespace pcw::h5
