// h5lite filter pipeline (HDF5 dynamically-loaded-filter analog).
//
// A Filter transforms a partition's raw element bytes to a stored blob
// and back. SzFilter is the H5Z-SZ counterpart: each partition is
// compressed independently with pcw::sz, and the stored blob is
// self-describing (dims + error bound live in the sz container header).
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "h5/format.h"
#include "sz/compressor.h"
#include "zfp/zfp.h"

namespace pcw::h5 {

class Filter {
 public:
  virtual ~Filter() = default;

  virtual FilterId id() const = 0;

  /// Encodes one partition. `raw` holds elem-count elements of `dtype`
  /// with logical extents `dims` (dims.count() == element count).
  virtual std::vector<std::uint8_t> encode(std::span<const std::uint8_t> raw,
                                           DataType dtype,
                                           const sz::Dims& dims) const = 0;

  /// Decodes one stored blob back to exactly `expect_elems` elements of
  /// `dtype`; throws on mismatch or corruption.
  virtual std::vector<std::uint8_t> decode(std::span<const std::uint8_t> blob,
                                           DataType dtype,
                                           std::uint64_t expect_elems) const = 0;

  /// Decodes only `region` (half-open box in the partition's `local_dims`
  /// coordinates), returning region.count() elements in the region's own
  /// row-major order. The base implementation decodes everything and
  /// slices; SzFilter overrides it with a block-indexed partial decode.
  /// `stats`, when non-null, reports how much of the blob was decoded.
  virtual std::vector<std::uint8_t> decode_region(std::span<const std::uint8_t> blob,
                                                  DataType dtype,
                                                  const sz::Dims& local_dims,
                                                  const sz::Region& region,
                                                  unsigned threads,
                                                  sz::RegionDecodeStats* stats) const;

  /// The logical extents a self-describing blob carries, when the codec's
  /// container records them (what unlocks block-indexed partial decode in
  /// the blob's own coordinate system). nullopt for codecs whose blobs
  /// are not self-describing — callers then slice in flat order.
  virtual std::optional<sz::Dims> stored_dims(std::span<const std::uint8_t> blob) const {
    (void)blob;
    return std::nullopt;
  }
};

/// Identity filter (uncompressed partitioned layout).
class NullFilter final : public Filter {
 public:
  FilterId id() const override { return FilterId::kNone; }
  std::vector<std::uint8_t> encode(std::span<const std::uint8_t> raw, DataType,
                                   const sz::Dims&) const override {
    return {raw.begin(), raw.end()};
  }
  std::vector<std::uint8_t> decode(std::span<const std::uint8_t> blob, DataType dtype,
                                   std::uint64_t expect_elems) const override;
};

/// Error-bounded lossy filter backed by pcw::sz (H5Z-SZ analog).
class SzFilter final : public Filter {
 public:
  explicit SzFilter(sz::Params params) : params_(params) {}

  FilterId id() const override { return FilterId::kSz; }
  std::vector<std::uint8_t> encode(std::span<const std::uint8_t> raw, DataType dtype,
                                   const sz::Dims& dims) const override;
  std::vector<std::uint8_t> decode(std::span<const std::uint8_t> blob, DataType dtype,
                                   std::uint64_t expect_elems) const override;
  /// Block-indexed partial decode via sz::decompress_region when the
  /// container extents match `local_dims`; otherwise the full-decode
  /// fallback keeps mismatched metadata readable.
  std::vector<std::uint8_t> decode_region(std::span<const std::uint8_t> blob,
                                          DataType dtype, const sz::Dims& local_dims,
                                          const sz::Region& region, unsigned threads,
                                          sz::RegionDecodeStats* stats) const override;
  std::optional<sz::Dims> stored_dims(std::span<const std::uint8_t> blob) const override;

  const sz::Params& params() const { return params_; }

 private:
  sz::Params params_;
};

/// Fixed-rate lossy filter backed by pcw::zfp (H5Z-ZFP analog). Fixed
/// rate means encode() output size is a pure function of the element
/// count — the property the no-extra-space ablation exploits.
class ZfpFilter final : public Filter {
 public:
  explicit ZfpFilter(zfp::Params params) : params_(params) {}

  FilterId id() const override { return FilterId::kZfp; }
  std::vector<std::uint8_t> encode(std::span<const std::uint8_t> raw, DataType dtype,
                                   const sz::Dims& dims) const override;
  std::vector<std::uint8_t> decode(std::span<const std::uint8_t> blob, DataType dtype,
                                   std::uint64_t expect_elems) const override;

  const zfp::Params& params() const { return params_; }

 private:
  zfp::Params params_;
};

/// Factory keyed by the on-disk FilterId, resolved through the
/// CodecRegistry — registered out-of-tree codecs instantiate here exactly
/// like the built-ins. Unknown ids throw std::invalid_argument naming the
/// registered set.
std::unique_ptr<Filter> make_filter(FilterId id, const sz::Params& sz_params = {},
                                    const zfp::Params& zfp_params = {});

}  // namespace pcw::h5
