// High-level dataset I/O: the two *baseline* write paths the paper
// compares against, plus the shared-file reader.
//
//   * write_contiguous     — "original non-compression solution": every
//     rank writes its slice independently at a statically computable
//     offset (sizes are known a priori, no data-dependent sync).
//   * write_filtered_collective — "previous compression-filter solution"
//     (H5Z-SZ): every rank compresses, compressed sizes are exchanged,
//     offsets derived, then data lands collectively. The compress ->
//     size-exchange -> write ordering is the serialization bottleneck the
//     paper removes.
//
// The paper's own predictive/overlapped path lives in pcw::core; it uses
// the File primitives directly.
#pragma once

#include <string>

#include "h5/file.h"
#include "h5/filter.h"
#include "mpi/comm.h"
#include "sz/dims.h"

namespace pcw::h5 {

/// Phase timings measured inside the collective filter path, so benches
/// can reproduce the paper's stacked-bar breakdowns (Fig. 16/17).
struct FilterWriteStats {
  double compress_seconds = 0.0;
  double exchange_seconds = 0.0;   // allgather of compressed sizes
  double write_seconds = 0.0;      // collective write incl. final barrier
  std::uint64_t compressed_bytes = 0;   // this rank's partition
};

/// Non-compression baseline. `local` is this rank's slice (flattened);
/// slices are concatenated in rank order to form the global array of
/// `global_dims.count()` elements. Independent writes, one barrier pair
/// around metadata registration.
template <typename T>
void write_contiguous(mpi::Comm& comm, File& file, const std::string& name,
                      std::span<const T> local, const sz::Dims& global_dims);

/// H5Z-SZ-style baseline: compress with `filter`, exchange sizes, write
/// collectively. `local_dims` describes this rank's slice extents (used
/// by the SZ predictor). Returns this rank's timing breakdown.
template <typename T>
FilterWriteStats write_filtered_collective(mpi::Comm& comm, File& file,
                                           const std::string& name,
                                           std::span<const T> local,
                                           const sz::Dims& local_dims,
                                           const sz::Dims& global_dims,
                                           const Filter& filter);

/// Reads a whole dataset back as the flattened global array, reassembling
/// partitions and undoing any filter (overflow segments included).
template <typename T>
std::vector<T> read_dataset(const File& file, const std::string& name,
                            const sz::Params& sz_params = {});

/// Reads one partition's stored payload (slot + overflow concatenated).
std::vector<std::uint8_t> read_partition_payload(const File& file,
                                                 const DatasetDesc& desc,
                                                 const PartitionRecord& part);

// ---- region (hyperslab) reads ---------------------------------------------
//
// A Region selects a half-open box of the dataset's global extents,
// interpreted over the flattened global element order (partitions
// concatenated by elem_offset) — i.e. a region read is always byte-
// identical to slicing read_dataset()'s result. For slab-decomposed
// writes that order coincides with the spatial row-major global box; see
// docs/read_path.md for the non-slab caveat.

/// One contiguous run of selected elements, already clipped to its
/// partition: a global-flat interval plus where it lands in the region's
/// own row-major output buffer.
struct RowSegment {
  std::uint64_t flat_lo = 0;     // global flat element index
  std::uint64_t len = 0;         // elements
  std::uint64_t out_offset = 0;  // element offset into the region buffer
};

/// Sentinel part_index for a kContiguous dataset's single pseudo-
/// partition (there is no PartitionRecord to point at).
inline constexpr std::size_t kContiguousSelection = static_cast<std::size_t>(-1);

/// One partition's share of a region selection.
struct PartitionSelection {
  std::size_t part_index = kContiguousSelection;  // into desc.partitions
  std::uint64_t flat_lo = 0, flat_hi = 0;         // hull of the segments
  std::vector<RowSegment> segments;
};

/// A planned region read: which partitions contribute which element runs.
/// Pure metadata work — planning never touches payload bytes, which is
/// what lets the read engine issue all of a field's payload reads
/// asynchronously before any decode starts.
struct RegionSelection {
  sz::Region region;           // the validated request
  std::uint64_t elements = 0;  // region.count()
  std::size_t partitions_total = 0;
  std::vector<PartitionSelection> parts;  // only partitions with overlap
};

/// Aggregated cost accounting for a region read.
struct RegionReadStats {
  std::uint64_t payload_bytes = 0;     // stored bytes fetched
  std::uint64_t partitions_total = 0;  // partitions in the dataset
  std::uint64_t partitions_read = 0;   // partitions that overlapped
  std::uint64_t blocks_total = 0;      // sz blocks in the read partitions
  std::uint64_t blocks_decoded = 0;    // sz blocks actually decoded
};

/// Plans `region` against a dataset: validates the request and clips the
/// selected rows to partition boundaries. Throws std::invalid_argument on
/// inverted or out-of-bounds regions.
RegionSelection plan_region_selection(const DatasetDesc& desc, const sz::Region& region);

/// Stored payload bytes executing `sel` will fetch.
std::uint64_t selection_payload_bytes(const DatasetDesc& desc, const RegionSelection& sel);

/// In-flight partition payload: slot plus optional overflow tail on the
/// file's async queue; join() assembles and validates the payload,
/// moving the bytes out of the tickets (one-shot).
struct PayloadTicket {
  ReadTicket slot;
  ReadTicket overflow;  // invalid when the partition has no overflow
  std::uint64_t expect_bytes = 0;
  std::vector<std::uint8_t> join();
};

/// Issues the async payload reads one planned selection needs, in
/// sel.parts order (a contiguous pseudo-partition reads only its hull).
std::vector<PayloadTicket> async_read_selection(File& file, const DatasetDesc& desc,
                                                const RegionSelection& sel);

/// Synchronous counterpart: fetches one planned partition's payload on
/// the calling thread (no async queue) — the read engine's strictly
/// serial baseline and read_region's fetch path.
std::vector<std::uint8_t> read_selection_payload(const File& file,
                                                 const DatasetDesc& desc,
                                                 const PartitionSelection& ps);

/// Decodes one planned partition from its payload into the region output
/// buffer (`out` has sel.elements elements). For sz partitions only the
/// blocks overlapping the selection are decoded, fanned out across
/// `threads`; `verify` sets the checksum depth applied to v4 containers.
/// `stats`, when non-null, is accumulated into.
template <typename T>
void scatter_selection_part(const DatasetDesc& desc, const RegionSelection& sel,
                            const PartitionSelection& part_sel,
                            std::span<const std::uint8_t> payload, unsigned threads,
                            std::span<T> out, RegionReadStats* stats,
                            sz::VerifyMode verify = sz::VerifyMode::kBlock);

/// Reads one hyperslab of a dataset, decoding only what the selection
/// needs (synchronous; the pipelined multi-field version is
/// core::read_fields). `sz_params.threads` fans the block decode out.
template <typename T>
std::vector<T> read_region(const File& file, const std::string& name,
                           const sz::Region& region, const sz::Params& sz_params = {},
                           RegionReadStats* stats = nullptr);

}  // namespace pcw::h5
