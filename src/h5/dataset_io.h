// High-level dataset I/O: the two *baseline* write paths the paper
// compares against, plus the shared-file reader.
//
//   * write_contiguous     — "original non-compression solution": every
//     rank writes its slice independently at a statically computable
//     offset (sizes are known a priori, no data-dependent sync).
//   * write_filtered_collective — "previous compression-filter solution"
//     (H5Z-SZ): every rank compresses, compressed sizes are exchanged,
//     offsets derived, then data lands collectively. The compress ->
//     size-exchange -> write ordering is the serialization bottleneck the
//     paper removes.
//
// The paper's own predictive/overlapped path lives in pcw::core; it uses
// the File primitives directly.
#pragma once

#include <string>

#include "h5/file.h"
#include "h5/filter.h"
#include "mpi/comm.h"
#include "sz/dims.h"

namespace pcw::h5 {

/// Phase timings measured inside the collective filter path, so benches
/// can reproduce the paper's stacked-bar breakdowns (Fig. 16/17).
struct FilterWriteStats {
  double compress_seconds = 0.0;
  double exchange_seconds = 0.0;   // allgather of compressed sizes
  double write_seconds = 0.0;      // collective write incl. final barrier
  std::uint64_t compressed_bytes = 0;   // this rank's partition
};

/// Non-compression baseline. `local` is this rank's slice (flattened);
/// slices are concatenated in rank order to form the global array of
/// `global_dims.count()` elements. Independent writes, one barrier pair
/// around metadata registration.
template <typename T>
void write_contiguous(mpi::Comm& comm, File& file, const std::string& name,
                      std::span<const T> local, const sz::Dims& global_dims);

/// H5Z-SZ-style baseline: compress with `filter`, exchange sizes, write
/// collectively. `local_dims` describes this rank's slice extents (used
/// by the SZ predictor). Returns this rank's timing breakdown.
template <typename T>
FilterWriteStats write_filtered_collective(mpi::Comm& comm, File& file,
                                           const std::string& name,
                                           std::span<const T> local,
                                           const sz::Dims& local_dims,
                                           const sz::Dims& global_dims,
                                           const Filter& filter);

/// Reads a whole dataset back as the flattened global array, reassembling
/// partitions and undoing any filter (overflow segments included).
template <typename T>
std::vector<T> read_dataset(const File& file, const std::string& name,
                            const sz::Params& sz_params = {});

/// Reads one partition's stored payload (slot + overflow concatenated).
std::vector<std::uint8_t> read_partition_payload(const File& file,
                                                 const DatasetDesc& desc,
                                                 const PartitionRecord& part);

}  // namespace pcw::h5
