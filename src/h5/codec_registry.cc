#include "h5/codec_registry.h"

#include <algorithm>
#include <stdexcept>

namespace pcw::h5 {
namespace {

std::string known_ids_of(const std::vector<CodecEntry>& entries) {
  std::string out;
  for (const CodecEntry& e : entries) {
    if (!out.empty()) out += ", ";
    out += std::to_string(e.id) + " (" + e.name + ")";
  }
  return out;
}

}  // namespace

CodecRegistry::CodecRegistry() {
  // Built-ins. Capability flags mirror the Filter implementations: only
  // the sz container carries a block index (partial decode) and the
  // temporal predictor.
  entries_.push_back({static_cast<std::uint32_t>(FilterId::kNone), "none",
                      /*supports_decode_region=*/false, /*supports_temporal=*/false,
                      /*builtin=*/true,
                      [](const FilterParams&) -> std::unique_ptr<Filter> {
                        return std::make_unique<NullFilter>();
                      }});
  entries_.push_back({static_cast<std::uint32_t>(FilterId::kSz), "sz",
                      /*supports_decode_region=*/true, /*supports_temporal=*/true,
                      /*builtin=*/true,
                      [](const FilterParams& p) -> std::unique_ptr<Filter> {
                        return std::make_unique<SzFilter>(p.sz);
                      }});
  entries_.push_back({static_cast<std::uint32_t>(FilterId::kZfp), "zfp",
                      /*supports_decode_region=*/false, /*supports_temporal=*/false,
                      /*builtin=*/true,
                      [](const FilterParams& p) -> std::unique_ptr<Filter> {
                        return std::make_unique<ZfpFilter>(p.zfp);
                      }});
}

CodecRegistry& CodecRegistry::instance() {
  static CodecRegistry registry;
  return registry;
}

void CodecRegistry::add(CodecEntry entry) {
  if (entry.name.empty()) throw std::invalid_argument("codec: empty name");
  if (!entry.make) throw std::invalid_argument("codec: empty factory");
  std::lock_guard<std::mutex> lock(mu_);
  for (const CodecEntry& e : entries_) {
    if (e.id == entry.id) {
      throw std::runtime_error("codec: filter id " + std::to_string(entry.id) +
                               " already registered as '" + e.name + "'");
    }
  }
  entries_.push_back(std::move(entry));
}

bool CodecRegistry::contains(std::uint32_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::any_of(entries_.begin(), entries_.end(),
                     [&](const CodecEntry& e) { return e.id == id; });
}

CodecEntry CodecRegistry::info(std::uint32_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const CodecEntry& e : entries_) {
    if (e.id == id) return e;
  }
  throw std::invalid_argument("codec: no codec registered for filter id " +
                              std::to_string(id) + " (registered: " +
                              known_ids_of(entries_) + ")");
}

std::vector<CodecEntry> CodecRegistry::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<CodecEntry> out = entries_;
  std::stable_sort(out.begin(), out.end(), [](const CodecEntry& a, const CodecEntry& b) {
    if (a.builtin != b.builtin) return a.builtin;
    return a.id < b.id;
  });
  return out;
}

std::unique_ptr<Filter> CodecRegistry::make(std::uint32_t id,
                                            const FilterParams& params) const {
  return info(id).make(params);
}

}  // namespace pcw::h5
