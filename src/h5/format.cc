#include "h5/format.h"

#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "util/crc32c.h"
#include "util/pod_io.h"

namespace pcw::h5 {
namespace {

template <typename T>
void put(std::vector<std::uint8_t>& out, const T& v) {
  util::append_pod(out, v);
}

void put_string(std::vector<std::uint8_t>& out, const std::string& s) {
  put(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

template <typename T>
T get(const std::vector<std::uint8_t>& in, std::size_t& pos) {
  if (pos + sizeof(T) > in.size()) throw std::runtime_error("h5: truncated footer");
  T v;
  std::memcpy(&v, in.data() + pos, sizeof(T));
  pos += sizeof(T);
  return v;
}

std::string get_string(const std::vector<std::uint8_t>& in, std::size_t& pos) {
  const auto len = get<std::uint32_t>(in, pos);
  if (pos + len > in.size()) throw std::runtime_error("h5: truncated footer string");
  std::string s(reinterpret_cast<const char*>(in.data() + pos), len);
  pos += len;
  return s;
}

}  // namespace

std::string series_dataset_name(const std::string& base, std::uint32_t step) {
  char suffix[16];
  std::snprintf(suffix, sizeof suffix, "@t%04u", step);
  return base + suffix;
}

std::vector<std::uint8_t> serialize_footer(const std::vector<DatasetDesc>& datasets) {
  std::vector<std::uint8_t> out;
  put(out, static_cast<std::uint32_t>(datasets.size()));
  for (const auto& d : datasets) {
    put_string(out, d.name);
    put(out, static_cast<std::uint8_t>(d.dtype));
    put(out, static_cast<std::uint8_t>(d.layout));
    put(out, static_cast<std::uint32_t>(d.filter));
    put(out, static_cast<std::uint64_t>(d.global_dims.d0));
    put(out, static_cast<std::uint64_t>(d.global_dims.d1));
    put(out, static_cast<std::uint64_t>(d.global_dims.d2));
    put(out, d.abs_error_bound);
    put(out, d.file_offset);
    put(out, d.nbytes);
    put(out, static_cast<std::uint8_t>(d.series_member ? 1 : 0));
    if (d.series_member) {
      put_string(out, d.series_base);
      put(out, d.series_step);
      put(out, d.series_ref_step);
    }
    put(out, static_cast<std::uint64_t>(d.partitions.size()));
    for (const auto& p : d.partitions) {
      put(out, p.rank);
      put(out, p.elem_offset);
      put(out, p.elem_count);
      put(out, p.file_offset);
      put(out, p.reserved_bytes);
      put(out, p.actual_bytes);
      put(out, p.overflow_offset);
      put(out, p.overflow_bytes);
    }
  }
  return out;
}

std::vector<DatasetDesc> parse_footer(const std::vector<std::uint8_t>& bytes,
                                      std::uint32_t version) {
  if (version < kVersionMin || version > kVersion) {
    throw std::runtime_error("h5: unsupported footer version");
  }
  std::size_t pos = 0;
  const auto n = get<std::uint32_t>(bytes, pos);
  // Cap counts against the bytes present before reserving/resizing: a
  // corrupt count must fail the parse, not size an allocation. Every
  // dataset record is well over one byte, every partition record is
  // exactly 60 bytes.
  if (n > bytes.size()) throw std::runtime_error("h5: truncated footer");
  std::vector<DatasetDesc> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    DatasetDesc d;
    d.name = get_string(bytes, pos);
    d.dtype = static_cast<DataType>(get<std::uint8_t>(bytes, pos));
    d.layout = static_cast<Layout>(get<std::uint8_t>(bytes, pos));
    d.filter = static_cast<FilterId>(get<std::uint32_t>(bytes, pos));
    d.global_dims.d0 = get<std::uint64_t>(bytes, pos);
    d.global_dims.d1 = get<std::uint64_t>(bytes, pos);
    d.global_dims.d2 = get<std::uint64_t>(bytes, pos);
    d.abs_error_bound = get<double>(bytes, pos);
    d.file_offset = get<std::uint64_t>(bytes, pos);
    d.nbytes = get<std::uint64_t>(bytes, pos);
    if (version >= 2) {
      d.series_member = get<std::uint8_t>(bytes, pos) != 0;
      if (d.series_member) {
        d.series_base = get_string(bytes, pos);
        d.series_step = get<std::uint32_t>(bytes, pos);
        d.series_ref_step = get<std::uint32_t>(bytes, pos);
        if (d.series_ref_step > d.series_step) {
          throw std::runtime_error("h5: series step references a later step");
        }
      }
    }
    const auto nparts = get<std::uint64_t>(bytes, pos);
    if (nparts > (bytes.size() - pos) / 60) {
      throw std::runtime_error("h5: truncated footer");
    }
    d.partitions.resize(nparts);
    for (auto& p : d.partitions) {
      p.rank = get<std::uint32_t>(bytes, pos);
      p.elem_offset = get<std::uint64_t>(bytes, pos);
      p.elem_count = get<std::uint64_t>(bytes, pos);
      p.file_offset = get<std::uint64_t>(bytes, pos);
      p.reserved_bytes = get<std::uint64_t>(bytes, pos);
      p.actual_bytes = get<std::uint64_t>(bytes, pos);
      p.overflow_offset = get<std::uint64_t>(bytes, pos);
      p.overflow_bytes = get<std::uint64_t>(bytes, pos);
    }
    out.push_back(std::move(d));
  }
  return out;
}

std::vector<std::uint8_t> seal_footer(const std::vector<DatasetDesc>& datasets) {
  std::vector<std::uint8_t> out = serialize_footer(datasets);
  const std::uint32_t payload_crc = util::crc32c(0, out.data(), out.size());
  const std::uint64_t payload_size = out.size();
  put(out, payload_crc);
  put(out, payload_size);
  put(out, kVersion);
  put(out, kFooterMagic);
  return out;
}

std::vector<DatasetDesc> parse_sealed_footer(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < kFooterTrailerBytes) {
    throw std::runtime_error("h5: footer too small");
  }
  const std::size_t tail = bytes.size() - kFooterTrailerBytes;
  std::uint32_t payload_crc, version, magic;
  std::uint64_t payload_size;
  std::memcpy(&payload_crc, bytes.data() + tail, 4);
  std::memcpy(&payload_size, bytes.data() + tail + 4, 8);
  std::memcpy(&version, bytes.data() + tail + 12, 4);
  std::memcpy(&magic, bytes.data() + tail + 16, 4);
  if (magic != kFooterMagic) throw std::runtime_error("h5: bad footer magic");
  if (version < 3 || version > kVersion) {
    throw std::runtime_error("h5: unsupported footer version");
  }
  if (payload_size != tail) throw std::runtime_error("h5: footer size mismatch");
  if (util::crc32c(0, bytes.data(), tail) != payload_crc) {
    throw std::runtime_error("h5: footer checksum mismatch");
  }
  std::vector<std::uint8_t> payload(bytes.begin(),
                                    bytes.begin() + static_cast<std::ptrdiff_t>(tail));
  return parse_footer(payload, version);
}

void serialize_slot(const SuperblockSlot& slot, std::uint8_t* out) {
  std::memset(out, 0, kSuperblockSlotSize);
  std::memcpy(out + 0, &kMagic, 4);
  std::memcpy(out + 4, &kVersion, 4);
  std::memcpy(out + 8, &slot.seq, 8);
  std::memcpy(out + 16, &slot.footer_off, 8);
  std::memcpy(out + 24, &slot.footer_size, 8);
  std::memcpy(out + 32, &slot.footer_crc, 4);
  const std::uint32_t slot_crc = util::crc32c(0, out, 36);
  std::memcpy(out + 36, &slot_crc, 4);
}

std::optional<SuperblockSlot> parse_slot(const std::uint8_t* in) {
  std::uint32_t magic, version, slot_crc;
  std::memcpy(&magic, in + 0, 4);
  std::memcpy(&version, in + 4, 4);
  std::memcpy(&slot_crc, in + 36, 4);
  if (magic != kMagic || version < 3 || version > kVersion) return std::nullopt;
  if (util::crc32c(0, in, 36) != slot_crc) return std::nullopt;
  SuperblockSlot s;
  std::memcpy(&s.seq, in + 8, 8);
  std::memcpy(&s.footer_off, in + 16, 8);
  std::memcpy(&s.footer_size, in + 24, 8);
  std::memcpy(&s.footer_crc, in + 32, 4);
  return s;
}

}  // namespace pcw::h5
