// pcw::zfp — fixed-rate transform-based lossy compressor (ZFP stand-in).
//
// The paper names ZFP support as future work; this module provides it and
// enables an ablation the paper implies but never runs: with a *fixed-
// rate* compressor every partition's compressed size is exactly
// rate * n / 8 bytes, so offsets are computable with **zero** prediction
// error — no extra space, no overflow handling (see
// bench_ablation_fixed_rate).
//
// Algorithm (following Lindstrom'14, simplified):
//   * the field is partitioned into 4x4x4 blocks (edges padded by
//     replicating the nearest sample),
//   * each block is block-normalized to a common exponent and converted
//     to 30-bit fixed point,
//   * a separable integer lifting transform decorrelates each axis,
//   * coefficients are reordered by total sequency and mapped to
//     negabinary so sign information embeds into magnitude bits,
//   * bit planes are emitted MSB-first until the per-block bit budget
//     (rate * block-size) is exhausted — truncation IS the compression.
//
// Fixed-rate mode trades the error bound for a size guarantee: the
// per-value rate is exact, the point-wise error is data-dependent (but
// decays ~2x per extra bit/value on smooth data; tests pin this).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "sz/dims.h"

namespace pcw::zfp {

struct Params {
  /// Bits per value, in [2, 32] for f32 (the block header adds ~0.25
  /// bits/value on top). Rates are rounded up to whole bits.
  int rate_bits = 8;
};

/// Exact compressed size for `count` elements at this rate, including the
/// container header and per-block overheads — the property the fixed-rate
/// write path relies on. Identical on every rank for identical counts.
std::size_t compressed_size(const sz::Dims& dims, const Params& params);

/// Compresses a float field at fixed rate. Output size ==
/// compressed_size(dims, params), always.
std::vector<std::uint8_t> compress(std::span<const float> data, const sz::Dims& dims,
                                   const Params& params);

/// Decompresses a blob produced by compress(). Throws on malformed input.
std::vector<float> decompress(std::span<const std::uint8_t> blob,
                              sz::Dims* dims_out = nullptr);

}  // namespace pcw::zfp
