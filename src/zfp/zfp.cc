#include "zfp/zfp.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

namespace pcw::zfp {
namespace {

constexpr std::uint32_t kMagic = 0x50465A50;  // "PZFP"
constexpr std::uint8_t kVersion = 1;
constexpr std::size_t kHeaderBytes = 40;
constexpr int kBlockEdge = 4;
constexpr int kBlockSize = 64;
constexpr int kFixedPointBits = 30;
constexpr std::uint32_t kNegabinaryMask = 0xaaaaaaaau;
// Biased block exponent; 0 is reserved for an all-zero block.
constexpr int kExponentBias = 16384;

// Sequency (total-degree) ordering of the 4x4x4 coefficient cube: low-
// frequency coefficients first, so bit-plane truncation discards the
// highest-frequency detail. Computed once.
const std::array<std::uint8_t, kBlockSize>& sequency_order() {
  static const std::array<std::uint8_t, kBlockSize> order = [] {
    std::array<std::uint8_t, kBlockSize> idx{};
    for (int i = 0; i < kBlockSize; ++i) idx[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
    std::stable_sort(idx.begin(), idx.end(), [](std::uint8_t a, std::uint8_t b) {
      const int da = (a & 3) + ((a >> 2) & 3) + ((a >> 4) & 3);
      const int db = (b & 3) + ((b >> 2) & 3) + ((b >> 4) & 3);
      return da < db;
    });
    return idx;
  }();
  return order;
}

// Two's-complement wrapping helpers: the lifting transform relies on
// hardware wraparound for large coefficients (as real zfp does), which is
// undefined for signed int — route the adds/subs/left-shifts through
// uint32 so the bits are identical and the arithmetic is defined.
inline std::int32_t wadd(std::int32_t a, std::int32_t b) {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(a) +
                                   static_cast<std::uint32_t>(b));
}
inline std::int32_t wsub(std::int32_t a, std::int32_t b) {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(a) -
                                   static_cast<std::uint32_t>(b));
}
inline std::int32_t wshl1(std::int32_t a) {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(a) << 1);
}

// ZFP's integer lifting transform on a stride-s 4-vector (Lindstrom'14).
void fwd_lift(std::int32_t* p, std::size_t s) {
  std::int32_t x = p[0 * s], y = p[1 * s], z = p[2 * s], w = p[3 * s];
  x = wadd(x, w); x >>= 1; w = wsub(w, x);
  z = wadd(z, y); z >>= 1; y = wsub(y, z);
  x = wadd(x, z); x >>= 1; z = wsub(z, x);
  w = wadd(w, y); w >>= 1; y = wsub(y, w);
  w = wadd(w, y >> 1); y = wsub(y, w >> 1);
  p[0 * s] = x; p[1 * s] = y; p[2 * s] = z; p[3 * s] = w;
}

void inv_lift(std::int32_t* p, std::size_t s) {
  std::int32_t x = p[0 * s], y = p[1 * s], z = p[2 * s], w = p[3 * s];
  y = wadd(y, w >> 1); w = wsub(w, y >> 1);
  y = wadd(y, w); w = wshl1(w); w = wsub(w, y);
  z = wadd(z, x); x = wshl1(x); x = wsub(x, z);
  y = wadd(y, z); z = wshl1(z); z = wsub(z, y);
  w = wadd(w, x); x = wshl1(x); x = wsub(x, w);
  p[0 * s] = x; p[1 * s] = y; p[2 * s] = z; p[3 * s] = w;
}

std::uint32_t to_negabinary(std::int32_t x) {
  return (static_cast<std::uint32_t>(x) + kNegabinaryMask) ^ kNegabinaryMask;
}

std::int32_t from_negabinary(std::uint32_t u) {
  return static_cast<std::int32_t>((u ^ kNegabinaryMask) - kNegabinaryMask);
}

struct Geometry {
  std::size_t bx, by, bz;        // blocks per dimension
  std::size_t block_bytes;       // exponent + payload per block
  std::size_t payload_bits;      // rate * 64
};

Geometry geometry(const sz::Dims& dims, const Params& params) {
  if (params.rate_bits < 2 || params.rate_bits > 32) {
    throw std::invalid_argument("zfp: rate must be in [2, 32] bits/value");
  }
  Geometry g;
  g.bx = (dims.d0 + kBlockEdge - 1) / kBlockEdge;
  g.by = (dims.d1 + kBlockEdge - 1) / kBlockEdge;
  g.bz = (dims.d2 + kBlockEdge - 1) / kBlockEdge;
  g.payload_bits = static_cast<std::size_t>(params.rate_bits) * kBlockSize;
  g.block_bytes = 2 + (g.payload_bits + 7) / 8;
  return g;
}

}  // namespace

std::size_t compressed_size(const sz::Dims& dims, const Params& params) {
  const Geometry g = geometry(dims, params);
  return kHeaderBytes + g.bx * g.by * g.bz * g.block_bytes;
}

std::vector<std::uint8_t> compress(std::span<const float> data, const sz::Dims& dims,
                                   const Params& params) {
  if (data.size() != dims.count() || data.empty()) {
    throw std::invalid_argument("zfp: data size must equal dims.count() and be > 0");
  }
  const Geometry g = geometry(dims, params);
  std::vector<std::uint8_t> out(compressed_size(dims, params), 0);

  // Header.
  std::size_t pos = 0;
  auto put = [&](const void* p, std::size_t n) {
    std::memcpy(out.data() + pos, p, n);
    pos += n;
  };
  const std::uint8_t rate = static_cast<std::uint8_t>(params.rate_bits);
  const std::uint64_t d0 = dims.d0, d1 = dims.d1, d2 = dims.d2;
  put(&kMagic, 4);
  put(&kVersion, 1);
  put(&rate, 1);
  pos += 2;  // reserved
  put(&d0, 8);
  put(&d1, 8);
  put(&d2, 8);
  pos = kHeaderBytes;

  const std::size_t sx = dims.d1 * dims.d2;
  const std::size_t sy = dims.d2;

  std::int32_t coeffs[kBlockSize];
  std::uint32_t nb[kBlockSize];
  for (std::size_t cx = 0; cx < g.bx; ++cx) {
    for (std::size_t cy = 0; cy < g.by; ++cy) {
      for (std::size_t cz = 0; cz < g.bz; ++cz) {
        // Gather with replicate-clamp padding.
        float block[kBlockSize];
        float max_abs = 0.0f;
        for (int i = 0; i < kBlockEdge; ++i) {
          const std::size_t x = std::min(cx * kBlockEdge + static_cast<std::size_t>(i), dims.d0 - 1);
          for (int j = 0; j < kBlockEdge; ++j) {
            const std::size_t y = std::min(cy * kBlockEdge + static_cast<std::size_t>(j), dims.d1 - 1);
            for (int k = 0; k < kBlockEdge; ++k) {
              const std::size_t z = std::min(cz * kBlockEdge + static_cast<std::size_t>(k), dims.d2 - 1);
              const float v = data[x * sx + y * sy + z];
              block[(i * 4 + j) * 4 + k] = v;
              max_abs = std::max(max_abs, std::abs(v));
            }
          }
        }

        std::uint16_t stored_exp = 0;
        if (max_abs > 0.0f && std::isfinite(static_cast<double>(max_abs))) {
          const int e = std::ilogb(max_abs) + 1;
          stored_exp = static_cast<std::uint16_t>(e + kExponentBias);
          // Fixed point: values scaled so the largest fits 30 bits. The
          // lifting transform's averaging steps shrink magnitudes, so
          // int32 arithmetic cannot overflow from this range.
          for (int i = 0; i < kBlockSize; ++i) {
            coeffs[i] = static_cast<std::int32_t>(
                std::ldexp(static_cast<double>(block[i]), kFixedPointBits - e));
          }
          // Separable transform: z (stride 1), y (stride 4), x (stride 16).
          for (int a = 0; a < 16; ++a) fwd_lift(coeffs + a * 4, 1);
          for (int a = 0; a < 16; ++a) fwd_lift(coeffs + (a / 4) * 16 + (a % 4), 4);
          for (int a = 0; a < 16; ++a) fwd_lift(coeffs + a, 16);
          const auto& order = sequency_order();
          for (int i = 0; i < kBlockSize; ++i) nb[i] = to_negabinary(coeffs[order[static_cast<std::size_t>(i)]]);
        } else {
          std::memset(nb, 0, sizeof(nb));
        }

        std::memcpy(out.data() + pos, &stored_exp, 2);
        std::uint8_t* payload = out.data() + pos + 2;
        if (stored_exp != 0) {
          // Bit planes MSB-first, truncated at the budget.
          std::size_t bit = 0;
          for (int plane = 31; plane >= 0 && bit < g.payload_bits; --plane) {
            for (int i = 0; i < kBlockSize && bit < g.payload_bits; ++i, ++bit) {
              if ((nb[i] >> plane) & 1u) {
                payload[bit >> 3] |= static_cast<std::uint8_t>(1u << (bit & 7));
              }
            }
          }
        }
        pos += g.block_bytes;
      }
    }
  }
  return out;
}

std::vector<float> decompress(std::span<const std::uint8_t> blob, sz::Dims* dims_out) {
  if (blob.size() < kHeaderBytes) throw std::runtime_error("zfp: truncated header");
  std::size_t pos = 0;
  auto get = [&](void* p, std::size_t n) {
    std::memcpy(p, blob.data() + pos, n);
    pos += n;
  };
  std::uint32_t magic;
  std::uint8_t version, rate;
  get(&magic, 4);
  get(&version, 1);
  get(&rate, 1);
  pos += 2;
  if (magic != kMagic) throw std::runtime_error("zfp: bad magic");
  if (version != kVersion) throw std::runtime_error("zfp: unsupported version");
  std::uint64_t d0, d1, d2;
  get(&d0, 8);
  get(&d1, 8);
  get(&d2, 8);
  pos = kHeaderBytes;

  sz::Dims dims{d0, d1, d2};
  Params params;
  params.rate_bits = rate;
  const Geometry g = geometry(dims, params);
  if (blob.size() != compressed_size(dims, params)) {
    throw std::runtime_error("zfp: blob size mismatch");
  }

  std::vector<float> out(dims.count());
  const std::size_t sx = dims.d1 * dims.d2;
  const std::size_t sy = dims.d2;

  std::uint32_t nb[kBlockSize];
  std::int32_t coeffs[kBlockSize];
  for (std::size_t cx = 0; cx < g.bx; ++cx) {
    for (std::size_t cy = 0; cy < g.by; ++cy) {
      for (std::size_t cz = 0; cz < g.bz; ++cz) {
        std::uint16_t stored_exp;
        std::memcpy(&stored_exp, blob.data() + pos, 2);
        const std::uint8_t* payload = blob.data() + pos + 2;
        pos += g.block_bytes;

        float block[kBlockSize];
        if (stored_exp == 0) {
          std::memset(block, 0, sizeof(block));
        } else {
          std::memset(nb, 0, sizeof(nb));
          std::size_t bit = 0;
          for (int plane = 31; plane >= 0 && bit < g.payload_bits; --plane) {
            for (int i = 0; i < kBlockSize && bit < g.payload_bits; ++i, ++bit) {
              if ((payload[bit >> 3] >> (bit & 7)) & 1u) {
                nb[i] |= 1u << plane;
              }
            }
          }
          const auto& order = sequency_order();
          for (int i = 0; i < kBlockSize; ++i) coeffs[order[static_cast<std::size_t>(i)]] = from_negabinary(nb[i]);
          for (int a = 0; a < 16; ++a) inv_lift(coeffs + a, 16);
          for (int a = 0; a < 16; ++a) inv_lift(coeffs + (a / 4) * 16 + (a % 4), 4);
          for (int a = 0; a < 16; ++a) inv_lift(coeffs + a * 4, 1);
          const int e = static_cast<int>(stored_exp) - kExponentBias;
          for (int i = 0; i < kBlockSize; ++i) {
            block[i] = static_cast<float>(
                std::ldexp(static_cast<double>(coeffs[i]), e - kFixedPointBits));
          }
        }

        // Scatter, dropping padded samples.
        for (int i = 0; i < kBlockEdge; ++i) {
          const std::size_t x = cx * kBlockEdge + static_cast<std::size_t>(i);
          if (x >= dims.d0) break;
          for (int j = 0; j < kBlockEdge; ++j) {
            const std::size_t y = cy * kBlockEdge + static_cast<std::size_t>(j);
            if (y >= dims.d1) break;
            for (int k = 0; k < kBlockEdge; ++k) {
              const std::size_t z = cz * kBlockEdge + static_cast<std::size_t>(k);
              if (z >= dims.d2) break;
              out[x * sx + y * sy + z] = block[(i * 4 + j) * 4 + k];
            }
          }
        }
      }
    }
  }
  if (dims_out != nullptr) *dims_out = dims;
  return out;
}

}  // namespace pcw::zfp
