#include "pcw/writer.h"

#include <stdexcept>

#include "core/engine.h"
#include "h5/codec_registry.h"
#include "h5/dataset_io.h"
#include "pcw/facade_impl.h"
#include "util/timer.h"

namespace pcw {
namespace {

core::WriteMode to_core(WriteMode m) {
  switch (m) {
    case WriteMode::kNoCompression: return core::WriteMode::kNoCompression;
    case WriteMode::kFilterCollective: return core::WriteMode::kFilterCollective;
    case WriteMode::kOverlap: return core::WriteMode::kOverlap;
    case WriteMode::kOverlapReorder: return core::WriteMode::kOverlapReorder;
  }
  return core::WriteMode::kOverlapReorder;
}

void merge_rank_report(const core::RankReport& r, WriteReport& out) {
  out.predict_seconds += r.predict_seconds;
  out.exchange_seconds += r.exchange_seconds;
  out.compress_seconds += r.compress_seconds;
  out.write_seconds += r.write_seconds;
  out.overflow_seconds += r.overflow_seconds;
  out.raw_bytes += r.raw_bytes;
  out.compressed_bytes += r.compressed_bytes;
  out.reserved_bytes += r.reserved_bytes;
  out.overflow_bytes += r.overflow_bytes;
  out.overflow_partitions += r.overflow_partitions;
  out.order = r.order;
}

template <typename T>
std::span<const T> typed_span(const FieldView& v) {
  return {reinterpret_cast<const T*>(v.bytes.data()), v.bytes.size() / sizeof(T)};
}

/// The write path proper: fields stored with kCodecSz run the predictive
/// engine as one batch (all four modes); every other codec — built-in or
/// registered — takes the collective filter path through the registry, so
/// an out-of-tree codec writes real partitioned datasets with zero
/// h5-layer knowledge.
template <typename T>
void write_typed(mpi::Comm& comm, h5::File& file, const WriterOptions& options,
                 std::span<const Field> fields, WriteReport& out) {
  core::EngineConfig config;
  config.mode = to_core(options.mode);
  config.rspace = options.extra_space;
  config.compress_threads = options.compress_threads;

  std::vector<core::FieldSpec<T>> engine_fields;
  for (const Field& f : fields) {
    if (f.local.bytes.size() != f.local.dims.count() * sizeof(T)) {
      throw std::invalid_argument("writer: field '" + f.name +
                                  "' bytes do not match its local dims");
    }
    if (options.mode == WriteMode::kNoCompression || f.codec.filter_id == kCodecSz) {
      core::FieldSpec<T> spec;
      spec.name = f.name;
      spec.local = typed_span<T>(f.local);
      spec.local_dims = detail::to_sz(f.local.dims);
      spec.global_dims = detail::to_sz(f.global_dims);
      spec.params = detail::to_sz_params(f.codec);
      engine_fields.push_back(spec);
    } else {
      h5::FilterParams params;
      params.sz = detail::to_sz_params(f.codec);
      params.zfp = detail::to_zfp_params(f.codec);
      const auto filter =
          h5::CodecRegistry::instance().make(f.codec.filter_id, params);
      const h5::FilterWriteStats stats = h5::write_filtered_collective<T>(
          comm, file, f.name, typed_span<T>(f.local), detail::to_sz(f.local.dims),
          detail::to_sz(f.global_dims), *filter);
      out.compress_seconds += stats.compress_seconds;
      out.exchange_seconds += stats.exchange_seconds;
      out.write_seconds += stats.write_seconds;
      out.compressed_bytes += stats.compressed_bytes;
      out.reserved_bytes += stats.compressed_bytes;
      out.raw_bytes += f.local.bytes.size();
    }
  }
  if (!engine_fields.empty()) {
    merge_rank_report(core::write_fields<T>(comm, file, engine_fields, config), out);
  }
}

}  // namespace

Result<Writer> Writer::create(const std::string& path, WriterOptions options) {
  return detail::guarded([&] {
    h5::FileOptions fopts;
    fopts.async_threads = options.async_threads;
    fopts.atomic_create = options.atomic_create;
    fopts.write_retries = options.write_retries;
    Writer writer;
    writer.impl_ = std::make_shared<Impl>();
    writer.impl_->file = h5::File::create(path, fopts);
    writer.impl_->options = options;
    writer.impl_->telemetry_base = util::metrics::snapshot();
    return writer;
  });
}

Result<WriteReport> Writer::write(Rank& rank, std::span<const Field> fields) {
  if (!impl_) {
    return Status(StatusCode::kFailedPrecondition, "writer: invalid handle");
  }
  return detail::guarded([&] {
    if (fields.empty()) throw std::invalid_argument("writer: no fields");
    const DType dtype = fields.front().local.dtype;
    for (const Field& f : fields) {
      if (f.local.dtype != dtype) {
        throw std::invalid_argument(
            "writer: mixed element types in one write call");
      }
    }
    WriteReport out;
    util::Timer total;
    switch (dtype) {
      case DType::kFloat32:
        write_typed<float>(rank.impl().comm, *impl_->file, impl_->options, fields, out);
        break;
      case DType::kFloat64:
        write_typed<double>(rank.impl().comm, *impl_->file, impl_->options, fields, out);
        break;
      case DType::kBytes:
        throw std::invalid_argument("writer: raw-bytes fields are not supported");
    }
    out.total_seconds = total.seconds();
    return out;
  });
}

Status Writer::commit(Rank& rank) {
  if (!impl_) return Status(StatusCode::kFailedPrecondition, "writer: invalid handle");
  return detail::guarded_status([&] { impl_->file->commit_collective(rank.impl().comm); });
}

Status Writer::commit() {
  if (!impl_) return Status(StatusCode::kFailedPrecondition, "writer: invalid handle");
  return detail::guarded_status([&] { impl_->file->commit(); });
}

Status Writer::close(Rank& rank) {
  if (!impl_) return Status(StatusCode::kFailedPrecondition, "writer: invalid handle");
  return detail::guarded_status([&] { impl_->file->close_collective(rank.impl().comm); });
}

Status Writer::close() {
  if (!impl_) return Status(StatusCode::kFailedPrecondition, "writer: invalid handle");
  return detail::guarded_status([&] { impl_->file->close_single(); });
}

std::uint64_t Writer::file_bytes() const {
  return impl_ ? impl_->file->file_bytes() : 0;
}

std::string Writer::path() const { return impl_ ? impl_->file->path() : std::string(); }

Telemetry Writer::telemetry() const {
  return impl_ ? detail::telemetry_since(impl_->telemetry_base) : Telemetry{};
}

}  // namespace pcw
