#include "pcw/runtime.h"

#include "mpi/comm.h"
#include "pcw/facade_impl.h"

namespace pcw {

int Rank::rank() const { return impl_->comm.rank(); }
int Rank::size() const { return impl_->comm.size(); }
void Rank::barrier() { impl_->comm.barrier(); }

Status run(int ranks, const std::function<void(Rank&)>& body) {
  return detail::guarded_status([&] {
    mpi::Runtime::run(ranks, [&](mpi::Comm& comm) {
      Rank::Impl impl{comm};
      Rank rank(&impl);
      body(rank);
    });
  });
}

}  // namespace pcw
