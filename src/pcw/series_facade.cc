#include "pcw/series.h"

#include <stdexcept>

#include "core/series.h"
#include "pcw/facade_impl.h"

namespace pcw {
namespace {

core::SeriesConfig to_core(const SeriesOptions& o) {
  core::SeriesConfig config;
  config.keyframe_interval = o.keyframe_interval;
  config.compress_threads = o.compress_threads;
  config.pipeline = o.pipeline;
  config.commit_every_step = o.commit_every_step;
  return config;
}

sz::VerifyMode to_core(VerifyMode mode) {
  switch (mode) {
    case VerifyMode::kOff: return sz::VerifyMode::kOff;
    case VerifyMode::kBlob: return sz::VerifyMode::kBlob;
    case VerifyMode::kBlock: return sz::VerifyMode::kBlock;
  }
  return sz::VerifyMode::kBlock;
}

core::SeriesReadConfig to_core(const SeriesReadOptions& o) {
  core::SeriesReadConfig config;
  config.decompress_threads = o.decompress_threads;
  config.pipeline = o.pipeline;
  config.verify = to_core(o.verify);
  config.degraded = o.degraded;
  return config;
}

SeriesStepReport from_core(const core::SeriesStepReport& r) {
  SeriesStepReport out;
  out.step = r.step;
  out.keyframe = r.keyframe;
  out.compress_seconds = r.compress_seconds;
  out.write_seconds = r.write_seconds;
  out.total_seconds = r.total_seconds;
  out.raw_bytes = r.raw_bytes;
  out.compressed_bytes = r.compressed_bytes;
  out.temporal_blocks = r.temporal_blocks;
  out.spatial_blocks = r.spatial_blocks;
  return out;
}

void merge_read_report(const core::SeriesReadReport& r, SeriesReadReport& out) {
  out.steps_chained = std::max(out.steps_chained, r.steps_chained);
  out.bytes_read += r.bytes_read;
  out.elements_out += r.elements_out;
  out.blocks_total += r.blocks_total;
  out.blocks_decoded += r.blocks_decoded;
  out.read_seconds += r.read_seconds;
  out.decompress_seconds += r.decompress_seconds;
  out.total_seconds += r.total_seconds;
  for (const core::DegradedRead& d : r.degraded) {
    DegradedRead pub;
    pub.dataset = d.dataset;
    pub.partition = d.partition;
    pub.step_requested = d.step_requested;
    pub.step_recovered = d.step_recovered;
    pub.detail = d.detail;
    out.degraded.push_back(std::move(pub));
  }
}

template <typename T>
std::vector<core::FieldSpec<T>> to_specs(std::span<const Field> fields) {
  std::vector<core::FieldSpec<T>> specs;
  specs.reserve(fields.size());
  for (const Field& f : fields) {
    if (f.codec.filter_id != kCodecSz) {
      throw std::invalid_argument(
          "series: steps are stored with the sz temporal codec; field '" + f.name +
          "' selects codec id " + std::to_string(f.codec.filter_id));
    }
    if (f.local.bytes.size() != f.local.dims.count() * sizeof(T)) {
      throw std::invalid_argument("series: field '" + f.name +
                                  "' bytes do not match its local dims");
    }
    core::FieldSpec<T> spec;
    spec.name = f.name;
    spec.local = {reinterpret_cast<const T*>(f.local.bytes.data()),
                  f.local.bytes.size() / sizeof(T)};
    spec.local_dims = detail::to_sz(f.local.dims);
    spec.global_dims = detail::to_sz(f.global_dims);
    spec.params = detail::to_sz_params(f.codec);
    specs.push_back(spec);
  }
  return specs;
}

std::vector<core::ReadSpec> to_read_specs(std::span<const ReadRequest> requests) {
  std::vector<core::ReadSpec> specs;
  specs.reserve(requests.size());
  for (const ReadRequest& req : requests) {
    core::ReadSpec spec;
    spec.name = req.name;
    if (req.region) spec.region.emplace(detail::to_sz(*req.region));
    specs.push_back(std::move(spec));
  }
  return specs;
}

}  // namespace

Result<SeriesWriter> SeriesWriter::create(Writer& writer, SeriesOptions options) {
  if (!writer.valid()) {
    return Status(StatusCode::kFailedPrecondition, "series: invalid Writer handle");
  }
  SeriesWriter out;
  out.impl_ = std::make_shared<Impl>();
  out.impl_->writer = writer.impl();
  out.impl_->options = options;
  out.impl_->telemetry_base = util::metrics::snapshot();
  return out;
}

Telemetry SeriesWriter::telemetry() const {
  return impl_ ? detail::telemetry_since(impl_->telemetry_base) : Telemetry{};
}

Result<SeriesStepReport> SeriesWriter::write_step(Rank& rank,
                                                  std::span<const Field> fields) {
  if (!impl_) {
    return Status(StatusCode::kFailedPrecondition, "series: invalid handle");
  }
  if (fields.empty()) {
    return Status(StatusCode::kInvalidArgument, "series: no fields");
  }
  const DType dtype = fields.front().local.dtype;
  for (const Field& f : fields) {
    if (f.local.dtype != dtype) {
      return Status(StatusCode::kInvalidArgument,
                    "series: mixed element types in one step");
    }
  }
  if (dtype == DType::kBytes) {
    return Status(StatusCode::kInvalidArgument,
                  "series: raw-bytes fields are not supported");
  }
  // The element type is pinned by the first step (the engine underneath
  // is templated on it).
  if ((dtype == DType::kFloat32 && impl_->f64.has_value()) ||
      (dtype == DType::kFloat64 && impl_->f32.has_value())) {
    return Status(StatusCode::kFailedPrecondition,
                  "series: element type changed mid-series");
  }
  return detail::guarded([&] {
    if (dtype == DType::kFloat32) {
      if (!impl_->f32) {
        impl_->f32.emplace(*impl_->writer->file, to_core(impl_->options));
      }
      return from_core(impl_->f32->write_step(rank.impl().comm, to_specs<float>(fields)));
    }
    if (!impl_->f64) {
      impl_->f64.emplace(*impl_->writer->file, to_core(impl_->options));
    }
    return from_core(impl_->f64->write_step(rank.impl().comm, to_specs<double>(fields)));
  });
}

std::uint32_t SeriesWriter::next_step() const {
  if (!impl_) return 0;
  if (impl_->f32) return impl_->f32->next_step();
  if (impl_->f64) return impl_->f64->next_step();
  return 0;
}

template <typename T>
Result<std::vector<T>> restart(const Reader& reader, const std::string& field,
                               std::uint32_t step, const std::optional<Region>& region,
                               const SeriesReadOptions& options,
                               SeriesReadReport* report) {
  if (!reader.valid()) {
    return Status(StatusCode::kFailedPrecondition, "series: invalid Reader handle");
  }
  return detail::guarded([&] {
    std::optional<sz::Region> core_region;
    if (region) core_region = detail::to_sz(*region);
    core::SeriesReadReport core_report;
    std::vector<T> out = core::restart_at_step<T>(*reader.impl()->file, field, step,
                                                  core_region, to_core(options),
                                                  &core_report);
    if (report != nullptr) merge_read_report(core_report, *report);
    return out;
  });
}

template Result<std::vector<float>> restart<float>(const Reader&, const std::string&,
                                                   std::uint32_t,
                                                   const std::optional<Region>&,
                                                   const SeriesReadOptions&,
                                                   SeriesReadReport*);
template Result<std::vector<double>> restart<double>(const Reader&, const std::string&,
                                                     std::uint32_t,
                                                     const std::optional<Region>&,
                                                     const SeriesReadOptions&,
                                                     SeriesReadReport*);

Result<std::vector<std::uint8_t>> restart_bytes(const Reader& reader,
                                                const std::string& field,
                                                std::uint32_t step, DType expected,
                                                const std::optional<Region>& region,
                                                const SeriesReadOptions& options,
                                                SeriesReadReport* report) {
  return detail::dispatch_dtype(expected, [&]<typename T>(T) {
    return detail::erase_typed(restart<T>(reader, field, step, region, options, report));
  });
}

template <typename T>
Result<std::vector<std::vector<T>>> read_series(Rank& rank, const Reader& reader,
                                                std::span<const ReadRequest> requests,
                                                std::uint32_t step,
                                                const SeriesReadOptions& options,
                                                SeriesReadReport* report) {
  if (!reader.valid()) {
    return Status(StatusCode::kFailedPrecondition, "series: invalid Reader handle");
  }
  return detail::guarded([&] {
    const std::vector<core::ReadSpec> specs = to_read_specs(requests);
    core::SeriesReadReport core_report;
    std::vector<std::vector<T>> out = core::read_series<T>(
        rank.impl().comm, *reader.impl()->file, specs, step, to_core(options),
        &core_report);
    if (report != nullptr) merge_read_report(core_report, *report);
    return out;
  });
}

template Result<std::vector<std::vector<float>>> read_series<float>(
    Rank&, const Reader&, std::span<const ReadRequest>, std::uint32_t,
    const SeriesReadOptions&, SeriesReadReport*);
template Result<std::vector<std::vector<double>>> read_series<double>(
    Rank&, const Reader&, std::span<const ReadRequest>, std::uint32_t,
    const SeriesReadOptions&, SeriesReadReport*);

Result<std::vector<std::vector<std::uint8_t>>> read_series_bytes(
    Rank& rank, const Reader& reader, std::span<const ReadRequest> requests,
    std::uint32_t step, DType expected, const SeriesReadOptions& options,
    SeriesReadReport* report) {
  return detail::dispatch_dtype(expected, [&]<typename T>(T) {
    return detail::erase_typed(
        read_series<T>(rank, reader, requests, step, options, report));
  });
}

}  // namespace pcw
