// Shared pimpl definitions for the pcw:: façade handles. Internal: lives
// in src/, never installed — public headers only forward-declare these.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "core/series.h"
#include "h5/file.h"
#include "mpi/comm.h"
#include "pcw/convert.h"
#include "pcw/reader.h"
#include "pcw/runtime.h"
#include "pcw/series.h"
#include "pcw/telemetry.h"
#include "pcw/writer.h"
#include "util/metrics.h"

namespace pcw {

struct Rank::Impl {
  mpi::Comm& comm;
};

struct Writer::Impl {
  std::shared_ptr<h5::File> file;
  WriterOptions options;
  /// Registry state at handle creation; telemetry() reports the delta.
  util::metrics::Snapshot telemetry_base;
};

struct Reader::Impl {
  std::shared_ptr<h5::File> file;
  ReaderOptions options;
  util::metrics::Snapshot telemetry_base;
};

struct SeriesWriter::Impl {
  std::shared_ptr<Writer::Impl> writer;
  SeriesOptions options;
  util::metrics::Snapshot telemetry_base;
  /// The element type is pinned by the first write_step; exactly one of
  /// these engines exists from then on (the engine is templated on T).
  std::optional<core::SeriesWriter<float>> f32;
  std::optional<core::SeriesWriter<double>> f64;
};

namespace detail {
/// Defined in telemetry.cc: current registry state minus `base` (level
/// readings pass through current).
Telemetry telemetry_since(const util::metrics::Snapshot& base);
}  // namespace detail

}  // namespace pcw
