#include "pcw/telemetry.h"

#include "pcw/convert.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace pcw {
namespace {

Telemetry from_snapshot(const util::metrics::Snapshot& s) {
  Telemetry t;
  t.sz_bytes_in = s.sz_bytes_in;
  t.sz_bytes_out = s.sz_bytes_out;
  t.sz_blocks_encoded = s.sz_blocks_encoded;
  t.sz_blocks_decoded = s.sz_blocks_decoded;
  t.sz_temporal_blocks = s.sz_temporal_blocks;
  t.sz_outliers = s.sz_outliers;
  t.sz_huffman_symbols = s.sz_huffman_symbols;
  t.io_writes = s.io_writes;
  t.io_write_bytes = s.io_write_bytes;
  t.io_reads = s.io_reads;
  t.io_read_bytes = s.io_read_bytes;
  t.io_syncs = s.io_syncs;
  t.io_write_retries = s.io_write_retries;
  t.io_async_enqueues = s.io_async_enqueues;
  t.io_queue_depth = s.io_queue_depth;
  t.io_queue_hiwater = s.io_queue_hiwater;
  t.io_write_p50_ns = s.io_write_p50_ns;
  t.io_write_p99_ns = s.io_write_p99_ns;
  t.fault_writes = s.fault_writes;
  t.fault_reads = s.fault_reads;
  t.fault_syncs = s.fault_syncs;
  t.fault_fired = s.fault_fired;
  t.engine_writes = s.engine_writes;
  t.series_steps = s.series_steps;
  t.chain_links_decoded = s.chain_links_decoded;
  t.degraded_reads = s.degraded_reads;
  t.store_requests = s.store_requests;
  t.store_cache_hits = s.store_cache_hits;
  t.store_cache_misses = s.store_cache_misses;
  t.store_cache_evictions = s.store_cache_evictions;
  t.store_coalesced = s.store_coalesced;
  t.store_write_batches = s.store_write_batches;
  t.store_cache_bytes = s.store_cache_bytes;
  t.store_cache_hiwater = s.store_cache_hiwater;
  t.store_active_clients = s.store_active_clients;
  t.store_clients_hiwater = s.store_clients_hiwater;
  t.trace_spans = s.trace_spans;
  t.trace_dropped = s.trace_dropped;
  return t;
}

}  // namespace

namespace detail {

/// The handles' telemetry(): process-wide counters minus the snapshot
/// taken when the handle was created. Level readings — queue depth,
/// high-water, latency percentiles — are not differences and pass
/// through current.
Telemetry telemetry_since(const util::metrics::Snapshot& base) {
  const util::metrics::Snapshot now = util::metrics::snapshot();
  Telemetry t = from_snapshot(now);
  t.sz_bytes_in -= base.sz_bytes_in;
  t.sz_bytes_out -= base.sz_bytes_out;
  t.sz_blocks_encoded -= base.sz_blocks_encoded;
  t.sz_blocks_decoded -= base.sz_blocks_decoded;
  t.sz_temporal_blocks -= base.sz_temporal_blocks;
  t.sz_outliers -= base.sz_outliers;
  t.sz_huffman_symbols -= base.sz_huffman_symbols;
  t.io_writes -= base.io_writes;
  t.io_write_bytes -= base.io_write_bytes;
  t.io_reads -= base.io_reads;
  t.io_read_bytes -= base.io_read_bytes;
  t.io_syncs -= base.io_syncs;
  t.io_write_retries -= base.io_write_retries;
  t.io_async_enqueues -= base.io_async_enqueues;
  t.fault_writes -= base.fault_writes;
  t.fault_reads -= base.fault_reads;
  t.fault_syncs -= base.fault_syncs;
  t.fault_fired -= base.fault_fired;
  t.engine_writes -= base.engine_writes;
  t.series_steps -= base.series_steps;
  t.chain_links_decoded -= base.chain_links_decoded;
  t.degraded_reads -= base.degraded_reads;
  t.store_requests -= base.store_requests;
  t.store_cache_hits -= base.store_cache_hits;
  t.store_cache_misses -= base.store_cache_misses;
  t.store_cache_evictions -= base.store_cache_evictions;
  t.store_coalesced -= base.store_coalesced;
  t.store_write_batches -= base.store_write_batches;
  return t;
}

}  // namespace detail

Telemetry metrics_snapshot() { return from_snapshot(util::metrics::snapshot()); }

void metrics_reset() { util::metrics::reset(); }

std::vector<TelemetryItem> telemetry_items(const Telemetry& t) {
  return {
      {"sz_bytes_in", t.sz_bytes_in},
      {"sz_bytes_out", t.sz_bytes_out},
      {"sz_blocks_encoded", t.sz_blocks_encoded},
      {"sz_blocks_decoded", t.sz_blocks_decoded},
      {"sz_temporal_blocks", t.sz_temporal_blocks},
      {"sz_outliers", t.sz_outliers},
      {"sz_huffman_symbols", t.sz_huffman_symbols},
      {"io_writes", t.io_writes},
      {"io_write_bytes", t.io_write_bytes},
      {"io_reads", t.io_reads},
      {"io_read_bytes", t.io_read_bytes},
      {"io_syncs", t.io_syncs},
      {"io_write_retries", t.io_write_retries},
      {"io_async_enqueues", t.io_async_enqueues},
      {"io_queue_depth", t.io_queue_depth},
      {"io_queue_hiwater", t.io_queue_hiwater},
      {"io_write_p50_ns", t.io_write_p50_ns},
      {"io_write_p99_ns", t.io_write_p99_ns},
      {"fault_writes", t.fault_writes},
      {"fault_reads", t.fault_reads},
      {"fault_syncs", t.fault_syncs},
      {"fault_fired", t.fault_fired},
      {"engine_writes", t.engine_writes},
      {"series_steps", t.series_steps},
      {"chain_links_decoded", t.chain_links_decoded},
      {"degraded_reads", t.degraded_reads},
      {"store_requests", t.store_requests},
      {"store_cache_hits", t.store_cache_hits},
      {"store_cache_misses", t.store_cache_misses},
      {"store_cache_evictions", t.store_cache_evictions},
      {"store_coalesced", t.store_coalesced},
      {"store_write_batches", t.store_write_batches},
      {"store_cache_bytes", t.store_cache_bytes},
      {"store_cache_hiwater", t.store_cache_hiwater},
      {"store_active_clients", t.store_active_clients},
      {"store_clients_hiwater", t.store_clients_hiwater},
      {"trace_spans", t.trace_spans},
      {"trace_dropped", t.trace_dropped},
  };
}

Status configure(const RuntimeOptions& options) {
  return detail::guarded_status([&] {
    if (!options.trace_path.empty()) {
      util::trace::set_flush_path(options.trace_path);
      util::trace::start(options.trace_capacity);
    } else if (options.trace_buffered) {
      util::trace::start(options.trace_capacity);
    }
  });
}

bool tracing_active() { return util::trace::enabled(); }

Status flush_trace(const std::string& path) {
  const std::string target = path.empty() ? util::trace::flush_path() : path;
  if (target.empty()) {
    return Status(StatusCode::kInvalidArgument,
                  "telemetry: no trace path configured");
  }
  if (!util::trace::write_json(target)) {
    return Status(StatusCode::kIoError, "telemetry: cannot write " + target);
  }
  return Status::Ok();
}

void trace_stop() { util::trace::stop(); }

void trace_reset() {
  util::trace::stop();
  util::trace::clear();
}

std::vector<SpanStat> trace_span_stats() {
  std::vector<SpanStat> out;
  for (const util::trace::SpanStat& s : util::trace::span_stats()) {
    out.push_back({s.name, s.cat, s.count, s.total_ns});
  }
  return out;
}

}  // namespace pcw
