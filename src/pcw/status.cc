#include "pcw/status.h"

#include "pcw/types.h"
#include "pcw/writer.h"

namespace pcw {

const char* to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kCorruptData: return "CORRUPT_DATA";
    case StatusCode::kIoError: return "IO_ERROR";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
  }
  return "?";
}

std::string Status::to_string() const {
  if (ok()) return "OK";
  return std::string(pcw::to_string(code_)) + ": " + message_;
}

const char* to_string(DType t) {
  switch (t) {
    case DType::kFloat32: return "float32";
    case DType::kFloat64: return "float64";
    case DType::kBytes: return "bytes";
  }
  return "?";
}

const char* to_string(WriteMode mode) {
  switch (mode) {
    case WriteMode::kNoCompression: return "no-compression";
    case WriteMode::kFilterCollective: return "filter-collective";
    case WriteMode::kOverlap: return "overlap";
    case WriteMode::kOverlapReorder: return "overlap+reorder";
  }
  return "?";
}

}  // namespace pcw
