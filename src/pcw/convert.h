// Internal glue for the pcw:: façade: conversions between the public
// value types (pcw/types.h) and the engine's internal ones, plus the
// exception → Status boundary every façade entry point funnels through.
#pragma once

#include <cstring>
#include <exception>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "h5/format.h"
#include "pcw/bridge.h"
#include "pcw/codec.h"
#include "pcw/status.h"
#include "pcw/types.h"
#include "sz/compressor.h"
#include "sz/dims.h"
#include "util/io_error.h"
#include "zfp/zfp.h"

namespace pcw::detail {

// Extent/region conversions delegate to the single authority in
// pcw/bridge.h (the toolkit header the in-tree consumers use too).
inline sz::Dims to_sz(const Dims& d) { return as_internal(d); }
inline Dims from_sz(const sz::Dims& d) { return as_dims(d); }
inline sz::Region to_sz(const Region& r) { return as_internal(r); }
inline Region from_sz(const sz::Region& r) { return as_region(r); }

inline h5::DataType to_h5(DType t) {
  switch (t) {
    case DType::kFloat32: return h5::DataType::kFloat32;
    case DType::kFloat64: return h5::DataType::kFloat64;
    case DType::kBytes: return h5::DataType::kBytes;
  }
  return h5::DataType::kBytes;
}
inline DType from_h5(h5::DataType t) {
  switch (t) {
    case h5::DataType::kFloat32: return DType::kFloat32;
    case h5::DataType::kFloat64: return DType::kFloat64;
    case h5::DataType::kBytes: return DType::kBytes;
  }
  return DType::kBytes;
}
inline DType from_sz(sz::DataType t) {
  return t == sz::DataType::kFloat32 ? DType::kFloat32 : DType::kFloat64;
}

inline sz::Params to_sz_params(const CodecOptions& c) {
  sz::Params p;
  p.mode = c.mode == ErrorBoundMode::kRelative ? sz::ErrorBoundMode::kRelative
                                               : sz::ErrorBoundMode::kAbsolute;
  p.error_bound = c.error_bound;
  p.radius = c.radius;
  p.lossless = c.lossless;
  return p;
}

inline zfp::Params to_zfp_params(const CodecOptions& c) {
  zfp::Params p;
  p.rate_bits = static_cast<int>(c.rate_bits);
  return p;
}

/// Copies a typed vector out as raw element bytes (the type-erased return
/// convention of the façade's *_bytes methods).
template <typename T>
std::vector<std::uint8_t> to_bytes(const std::vector<T>& vals) {
  std::vector<std::uint8_t> out(vals.size() * sizeof(T));
  if (!out.empty()) std::memcpy(out.data(), vals.data(), out.size());
  return out;
}

/// Erases a typed read result to the byte-vector convention of the
/// façade's `*_bytes` methods.
template <typename T>
Result<std::vector<std::uint8_t>> erase_typed(Result<std::vector<T>> r) {
  if (!r.ok()) return r.status();
  return to_bytes(*r);
}
template <typename T>
Result<std::vector<std::vector<std::uint8_t>>> erase_typed(
    Result<std::vector<std::vector<T>>> r) {
  if (!r.ok()) return r.status();
  std::vector<std::vector<std::uint8_t>> out;
  out.reserve(r->size());
  for (const auto& vals : *r) out.push_back(to_bytes(vals));
  return out;
}

/// Dispatches a runtime dtype tag onto a typed callable (invoked with a
/// float or double tag value); the byte dtype is uniformly unsupported
/// at the façade.
template <typename Fn>
auto dispatch_dtype(DType expected, Fn&& fn) -> decltype(fn(float{})) {
  if (expected == DType::kFloat32) return fn(float{});
  if (expected == DType::kFloat64) return fn(double{});
  return Status(StatusCode::kInvalidArgument,
                "pcw: raw-bytes datasets are not supported; use kFloat32/kFloat64");
}

/// Thrown inside a guarded() body for call-sequencing errors that must
/// surface as kFailedPrecondition (a plain runtime_error would classify
/// as kCorruptData).
class FailedPreconditionError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Maps the in-flight exception to a Status. Classification keys off the
/// exception type first and well-known message prefixes second (the
/// engine throws std::invalid_argument for caller bugs and
/// std::runtime_error for corrupt data / I/O, with "no dataset named" /
/// "already registered" / errno text distinguishing the finer codes).
inline Status status_from_current_exception() {
  // A Status round-tripped through a thrown runtime_error — the
  // documented rank-body idiom is `throw std::runtime_error(
  // status.to_string())` — keeps its code and message instead of
  // degrading to the fallback (an ENOSPC must not resurface as
  // kCorruptData with a doubled prefix).
  auto unwrap = [](const std::string& msg) -> std::optional<Status> {
    constexpr StatusCode kPrefixed[] = {
        StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kCorruptData,     StatusCode::kIoError,
        StatusCode::kFailedPrecondition, StatusCode::kAlreadyExists,
        StatusCode::kInternal,        StatusCode::kResourceExhausted,
    };
    for (StatusCode code : kPrefixed) {
      const std::string prefix = std::string(pcw::to_string(code)) + ": ";
      if (msg.rfind(prefix, 0) == 0) {
        return Status(code, msg.substr(prefix.size()));
      }
    }
    return std::nullopt;
  };
  auto classify = [](StatusCode fallback, const std::string& msg) {
    const auto has = [&](const char* needle) {
      return msg.find(needle) != std::string::npos;
    };
    if (has("no dataset named") || has("no codec registered") || has("no series") ||
        has("unknown series") || has("unknown step") || has("no step")) {
      return StatusCode::kNotFound;
    }
    if (has("already registered") || has("duplicate dataset")) {
      return StatusCode::kAlreadyExists;
    }
    if (has("open for read") || has("open for create") || has("pread") ||
        has("pwrite")) {
      return StatusCode::kIoError;
    }
    return fallback;
  };
  try {
    throw;
  } catch (const FailedPreconditionError& e) {
    return {StatusCode::kFailedPrecondition, e.what()};
  } catch (const std::invalid_argument& e) {
    if (auto s = unwrap(e.what())) return *s;
    return {classify(StatusCode::kInvalidArgument, e.what()), e.what()};
  } catch (const util::IoError& e) {
    // Must precede the runtime_error arm (IoError derives from it). A full
    // device/quota is actionable by the caller, so it gets its own code.
    return {e.resource_exhausted() ? StatusCode::kResourceExhausted
                                   : StatusCode::kIoError,
            e.what()};
  } catch (const std::runtime_error& e) {
    if (auto s = unwrap(e.what())) return *s;
    return {classify(StatusCode::kCorruptData, e.what()), e.what()};
  } catch (const std::exception& e) {
    return {StatusCode::kInternal, e.what()};
  } catch (...) {
    return {StatusCode::kInternal, "unknown exception"};
  }
}

/// Runs `fn` inside the exception → Status boundary. `fn` returns the
/// Result's value type.
template <typename Fn>
auto guarded(Fn&& fn) -> Result<decltype(fn())> {
  try {
    return std::forward<Fn>(fn)();
  } catch (...) {
    return status_from_current_exception();
  }
}

/// Status-returning variant for void operations.
template <typename Fn>
Status guarded_status(Fn&& fn) {
  try {
    std::forward<Fn>(fn)();
    return Status::Ok();
  } catch (...) {
    return status_from_current_exception();
  }
}

}  // namespace pcw::detail
