#include "pcw/reader.h"

#include <numeric>
#include <stdexcept>

#include "core/read_engine.h"
#include "core/read_planner.h"
#include "core/scrub.h"
#include "h5/dataset_io.h"
#include "pcw/facade_impl.h"
#include "util/timer.h"

namespace pcw {
namespace {

sz::VerifyMode to_sz_verify(VerifyMode mode) {
  switch (mode) {
    case VerifyMode::kOff: return sz::VerifyMode::kOff;
    case VerifyMode::kBlob: return sz::VerifyMode::kBlob;
    case VerifyMode::kBlock: return sz::VerifyMode::kBlock;
  }
  return sz::VerifyMode::kBlock;
}

DatasetInfo info_of(const h5::DatasetDesc& d) {
  DatasetInfo info;
  info.name = d.name;
  info.dtype = detail::from_h5(d.dtype);
  info.dims = detail::from_sz(d.global_dims);
  info.layout =
      d.layout == h5::Layout::kContiguous ? Layout::kContiguous : Layout::kPartitioned;
  info.filter_id = static_cast<std::uint32_t>(d.filter);
  info.error_bound = d.abs_error_bound;
  if (d.layout == h5::Layout::kContiguous) {
    info.stored_bytes = d.nbytes;
  } else {
    for (const h5::PartitionRecord& p : d.partitions) info.stored_bytes += p.actual_bytes;
  }
  info.partitions.reserve(d.partitions.size());
  for (const h5::PartitionRecord& p : d.partitions) {
    PartitionInfo part;
    part.rank = p.rank;
    part.elem_offset = p.elem_offset;
    part.elem_count = p.elem_count;
    part.file_offset = p.file_offset;
    part.reserved_bytes = p.reserved_bytes;
    part.actual_bytes = p.actual_bytes;
    part.overflow_offset = p.overflow_offset;
    part.overflow_bytes = p.overflow_bytes;
    info.partitions.push_back(part);
  }
  info.series_member = d.series_member;
  info.series_base = d.series_base;
  info.series_step = d.series_step;
  info.series_ref_step = d.series_ref_step;
  return info;
}

/// Resolves + type-checks a dataset; classification-friendly throws.
const h5::DatasetDesc& resolve(const h5::File& file, const std::string& name,
                               DType expected) {
  const h5::DatasetDesc* desc = file.find_dataset(name);
  if (desc == nullptr) throw std::invalid_argument("h5: no dataset named " + name);
  if (detail::from_h5(desc->dtype) != expected) {
    throw std::invalid_argument("dataset '" + name + "' holds " +
                                std::string(to_string(detail::from_h5(desc->dtype))) +
                                ", requested " + to_string(expected));
  }
  return *desc;
}

void merge_read_report(const core::ReadReport& r, ReadReport& out) {
  out.plan_seconds += r.plan_seconds;
  out.read_seconds += r.read_seconds;
  out.decompress_seconds += r.decompress_seconds;
  out.total_seconds += r.total_seconds;
  out.bytes_read += r.bytes_read;
  out.elements_out += r.elements_out;
  out.partitions_total += r.partitions_total;
  out.partitions_read += r.partitions_read;
  out.blocks_total += r.blocks_total;
  out.blocks_decoded += r.blocks_decoded;
}

}  // namespace

Result<Reader> Reader::open(const std::string& path, ReaderOptions options) {
  return detail::guarded([&] {
    h5::FileOptions fopts;
    fopts.async_threads = options.async_threads;
    Reader reader;
    reader.impl_ = std::make_shared<Impl>();
    reader.impl_->file = h5::File::open(path, fopts);
    reader.impl_->options = options;
    reader.impl_->telemetry_base = util::metrics::snapshot();
    return reader;
  });
}

Telemetry Reader::telemetry() const {
  return impl_ ? detail::telemetry_since(impl_->telemetry_base) : Telemetry{};
}

std::vector<DatasetInfo> Reader::datasets() const {
  std::vector<DatasetInfo> out;
  if (!impl_) return out;
  for (const h5::DatasetDesc& d : impl_->file->datasets()) out.push_back(info_of(d));
  return out;
}

Result<DatasetInfo> Reader::dataset(const std::string& name) const {
  if (!impl_) return Status(StatusCode::kFailedPrecondition, "reader: invalid handle");
  return detail::guarded([&] {
    const h5::DatasetDesc* desc = impl_->file->find_dataset(name);
    if (desc == nullptr) throw std::invalid_argument("h5: no dataset named " + name);
    return info_of(*desc);
  });
}

Result<DatasetInfo> Reader::series_step(const std::string& base,
                                        std::uint32_t step) const {
  if (!impl_) return Status(StatusCode::kFailedPrecondition, "reader: invalid handle");
  return detail::guarded([&] {
    const h5::DatasetDesc* desc = impl_->file->find_series(base, step);
    if (desc == nullptr) {
      throw std::invalid_argument("h5: no series step " + std::to_string(step) +
                                  " of " + base);
    }
    return info_of(*desc);
  });
}

std::uint64_t Reader::file_bytes() const {
  return impl_ ? impl_->file->file_bytes() : 0;
}

std::string Reader::path() const { return impl_ ? impl_->file->path() : std::string(); }

template <typename T>
Result<std::vector<T>> Reader::read(const std::string& name) const {
  if (!impl_) return Status(StatusCode::kFailedPrecondition, "reader: invalid handle");
  return detail::guarded([&] {
    resolve(*impl_->file, name, dtype_of<T>());
    sz::Params params;
    params.threads = impl_->options.decompress_threads;
    params.verify = to_sz_verify(impl_->options.verify);
    return h5::read_dataset<T>(*impl_->file, name, params);
  });
}

template Result<std::vector<float>> Reader::read<float>(const std::string&) const;
template Result<std::vector<double>> Reader::read<double>(const std::string&) const;

Result<std::vector<std::uint8_t>> Reader::read_bytes(const std::string& name,
                                                     DType expected) const {
  return detail::dispatch_dtype(expected, [&]<typename T>(T) {
    return detail::erase_typed(read<T>(name));
  });
}

template <typename T>
Result<std::vector<T>> Reader::read_region(const std::string& name, const Region& region,
                                           ReadReport* report) const {
  if (!impl_) return Status(StatusCode::kFailedPrecondition, "reader: invalid handle");
  return detail::guarded([&] {
    resolve(*impl_->file, name, dtype_of<T>());
    sz::Params params;
    params.threads = impl_->options.decompress_threads;
    params.verify = to_sz_verify(impl_->options.verify);
    util::Timer total;
    h5::RegionReadStats stats;
    std::vector<T> out =
        h5::read_region<T>(*impl_->file, name, detail::to_sz(region), params, &stats);
    if (report != nullptr) {
      report->total_seconds += total.seconds();
      report->bytes_read += stats.payload_bytes;
      report->elements_out += region.count();
      report->partitions_total += stats.partitions_total;
      report->partitions_read += stats.partitions_read;
      report->blocks_total += stats.blocks_total;
      report->blocks_decoded += stats.blocks_decoded;
    }
    return out;
  });
}

template Result<std::vector<float>> Reader::read_region<float>(const std::string&,
                                                               const Region&,
                                                               ReadReport*) const;
template Result<std::vector<double>> Reader::read_region<double>(const std::string&,
                                                                 const Region&,
                                                                 ReadReport*) const;

Result<std::vector<std::uint8_t>> Reader::read_region_bytes(const std::string& name,
                                                            const Region& region,
                                                            DType expected,
                                                            ReadReport* report) const {
  return detail::dispatch_dtype(expected, [&]<typename T>(T) {
    return detail::erase_typed(read_region<T>(name, region, report));
  });
}

template <typename T>
Result<std::vector<std::vector<T>>> Reader::read_fields(
    Rank& rank, std::span<const ReadRequest> requests, ReadReport* report) const {
  if (!impl_) return Status(StatusCode::kFailedPrecondition, "reader: invalid handle");
  return detail::guarded([&] {
    std::vector<core::ReadSpec> specs;
    specs.reserve(requests.size());
    for (const ReadRequest& req : requests) {
      resolve(*impl_->file, req.name, dtype_of<T>());
      core::ReadSpec spec;
      spec.name = req.name;
      if (req.region) spec.region.emplace(detail::to_sz(*req.region));
      specs.push_back(std::move(spec));
    }
    core::ReadEngineConfig config;
    config.decompress_threads = impl_->options.decompress_threads;
    config.pipeline = impl_->options.pipeline;
    config.verify = to_sz_verify(impl_->options.verify);
    core::ReadReport core_report;
    std::vector<std::vector<T>> out =
        core::read_fields<T>(rank.impl().comm, *impl_->file, specs, config, &core_report);
    if (report != nullptr) merge_read_report(core_report, *report);
    return out;
  });
}

template Result<std::vector<std::vector<float>>> Reader::read_fields<float>(
    Rank&, std::span<const ReadRequest>, ReadReport*) const;
template Result<std::vector<std::vector<double>>> Reader::read_fields<double>(
    Rank&, std::span<const ReadRequest>, ReadReport*) const;

Result<std::vector<std::vector<std::uint8_t>>> Reader::read_fields_bytes(
    Rank& rank, std::span<const ReadRequest> requests, DType expected,
    ReadReport* report) const {
  return detail::dispatch_dtype(expected, [&]<typename T>(T) {
    return detail::erase_typed(read_fields<T>(rank, requests, report));
  });
}

Result<std::vector<std::uint8_t>> Reader::partition_payload(const std::string& name,
                                                            std::size_t part_index) const {
  if (!impl_) return Status(StatusCode::kFailedPrecondition, "reader: invalid handle");
  return detail::guarded([&] {
    const h5::DatasetDesc* desc = impl_->file->find_dataset(name);
    if (desc == nullptr) throw std::invalid_argument("h5: no dataset named " + name);
    if (part_index >= desc->partitions.size()) {
      throw std::invalid_argument("reader: partition index out of range for " + name);
    }
    return h5::read_partition_payload(*impl_->file, *desc,
                                      desc->partitions[part_index]);
  });
}

Result<std::vector<std::uint8_t>> Reader::partition_prefix(const std::string& name,
                                                           std::size_t part_index,
                                                           std::uint64_t max_bytes) const {
  if (!impl_) return Status(StatusCode::kFailedPrecondition, "reader: invalid handle");
  return detail::guarded([&] {
    const h5::DatasetDesc* desc = impl_->file->find_dataset(name);
    if (desc == nullptr) throw std::invalid_argument("h5: no dataset named " + name);
    if (part_index >= desc->partitions.size()) {
      throw std::invalid_argument("reader: partition index out of range for " + name);
    }
    const h5::PartitionRecord& part = desc->partitions[part_index];
    // The prefix may straddle slot and overflow segment.
    const std::uint64_t want = std::min(part.actual_bytes, max_bytes);
    const std::uint64_t in_slot =
        std::min(want, std::min(part.actual_bytes, part.reserved_bytes));
    std::vector<std::uint8_t> payload = impl_->file->pread(part.file_offset, in_slot);
    if (want > in_slot) {
      const auto tail = impl_->file->pread(part.overflow_offset, want - in_slot);
      payload.insert(payload.end(), tail.begin(), tail.end());
    }
    return payload;
  });
}

Result<ScrubReport> Reader::scrub(bool deep) const {
  if (!impl_) return Status(StatusCode::kFailedPrecondition, "reader: invalid handle");
  return detail::guarded([&] {
    const core::ScrubReport core = core::scrub_file(*impl_->file, deep);
    ScrubReport out;
    out.clean = core.clean;
    out.damaged = core.damaged;
    out.unreadable = core.unreadable;
    out.datasets.reserve(core.datasets.size());
    for (const core::DatasetScrub& d : core.datasets) {
      ScrubDataset s;
      s.name = d.name;
      s.state = static_cast<ScrubHealth>(d.state);
      s.salvageable = d.salvageable;
      s.partitions = d.partitions;
      s.damaged_partitions = d.damaged_partitions;
      s.detail = d.detail;
      out.datasets.push_back(std::move(s));
    }
    return out;
  });
}

Region restart_region(const Dims& global, int rank, int nranks) {
  return detail::from_sz(core::restart_region(detail::to_sz(global), rank, nranks));
}

}  // namespace pcw
