#include "pcw/codec.h"

#include <cstring>
#include <stdexcept>
#include <utility>

#include "h5/codec_registry.h"
#include "pcw/convert.h"
#include "sz/compressor.h"
#include "zfp/zfp.h"

namespace pcw {
namespace {

static_assert(kMaxBlobHeaderBytes == sz::kMaxHeaderBytes,
              "public header-economy bound must track the sz container");

/// Adapts a registered pcw::Codec to the internal Filter interface; this
/// is the entire bridge an out-of-tree codec crosses into the h5 layer.
class RegisteredCodecFilter final : public h5::Filter {
 public:
  RegisteredCodecFilter(std::uint32_t id, std::unique_ptr<Codec> codec)
      : id_(id), codec_(std::move(codec)) {}

  h5::FilterId id() const override { return static_cast<h5::FilterId>(id_); }

  std::vector<std::uint8_t> encode(std::span<const std::uint8_t> raw,
                                   h5::DataType dtype,
                                   const sz::Dims& dims) const override {
    FieldView view;
    view.dtype = detail::from_h5(dtype);
    view.bytes = raw;
    view.dims = detail::from_sz(dims);
    return codec_->encode(view);
  }

  std::vector<std::uint8_t> decode(std::span<const std::uint8_t> blob,
                                   h5::DataType dtype,
                                   std::uint64_t expect_elems) const override {
    return codec_->decode(blob, detail::from_h5(dtype), expect_elems);
  }

 private:
  std::uint32_t id_;
  std::unique_ptr<Codec> codec_;
};

CodecInfo info_of(const h5::CodecEntry& e) {
  CodecInfo info;
  info.filter_id = e.id;
  info.name = e.name;
  info.caps.supports_decode_region = e.supports_decode_region;
  info.caps.supports_temporal = e.supports_temporal;
  info.builtin = e.builtin;
  return info;
}

bool is_zfp_blob(std::span<const std::uint8_t> blob) {
  return blob.size() >= 4 && std::memcmp(blob.data(), "PZFP", 4) == 0;
}

std::vector<std::uint8_t> take_bytes(const void* data, std::size_t bytes) {
  std::vector<std::uint8_t> out(bytes);
  if (bytes > 0) std::memcpy(out.data(), data, bytes);
  return out;
}

}  // namespace

Status register_codec(std::uint32_t filter_id, std::string name, CodecCaps caps,
                      CodecFactory factory) {
  return detail::guarded_status([&] {
    if (!factory) throw std::invalid_argument("codec: empty factory");
    h5::CodecEntry entry;
    entry.id = filter_id;
    entry.name = std::move(name);
    entry.supports_decode_region = caps.supports_decode_region;
    entry.supports_temporal = caps.supports_temporal;
    entry.builtin = false;
    entry.make = [filter_id, factory = std::move(factory)](const h5::FilterParams&) {
      return std::unique_ptr<h5::Filter>(
          new RegisteredCodecFilter(filter_id, factory()));
    };
    h5::CodecRegistry::instance().add(std::move(entry));
  });
}

std::vector<CodecInfo> registered_codecs() {
  std::vector<CodecInfo> out;
  for (const h5::CodecEntry& e : h5::CodecRegistry::instance().entries()) {
    out.push_back(info_of(e));
  }
  return out;
}

Result<CodecInfo> find_codec(std::uint32_t filter_id) {
  return detail::guarded(
      [&] { return info_of(h5::CodecRegistry::instance().info(filter_id)); });
}

Result<std::vector<std::uint8_t>> encode_blob(const FieldView& field,
                                              const CodecOptions& options) {
  return detail::guarded([&] {
    if (field.bytes.size() != field.dims.count() * element_size(field.dtype)) {
      throw std::invalid_argument("codec: field bytes do not match dims");
    }
    h5::FilterParams params;
    params.sz = detail::to_sz_params(options);
    params.zfp = detail::to_zfp_params(options);
    const auto filter = h5::CodecRegistry::instance().make(options.filter_id, params);
    return filter->encode(field.bytes, detail::to_h5(field.dtype),
                          detail::to_sz(field.dims));
  });
}

Result<DecodedBlob> decode_blob(std::span<const std::uint8_t> blob,
                                const FieldView& prev) {
  return detail::guarded([&] {
    DecodedBlob out;
    if (is_zfp_blob(blob)) {
      sz::Dims dims;
      const std::vector<float> vals = zfp::decompress(blob, &dims);
      out.dtype = DType::kFloat32;
      out.dims = detail::from_sz(dims);
      out.bytes = take_bytes(vals.data(), vals.size() * sizeof(float));
      return out;
    }
    const sz::HeaderInfo info = sz::inspect(blob);
    out.dtype = detail::from_sz(info.dtype);
    out.dims = detail::from_sz(info.dims);
    if (info.temporal_blocks > 0 && prev.bytes.empty()) {
      throw detail::FailedPreconditionError(
          "codec: blob holds temporal blocks; decoding needs the reconstructed "
          "reference step (prev)");
    }
    if (!prev.bytes.empty() && prev.dtype != out.dtype) {
      throw std::invalid_argument("codec: prev dtype differs from blob dtype");
    }
    if (out.dtype == DType::kFloat32) {
      const std::span<const float> ref{
          reinterpret_cast<const float*>(prev.bytes.data()),
          prev.bytes.size() / sizeof(float)};
      const std::vector<float> vals = sz::decompress<float>(blob, ref);
      out.bytes = take_bytes(vals.data(), vals.size() * sizeof(float));
    } else {
      const std::span<const double> ref{
          reinterpret_cast<const double*>(prev.bytes.data()),
          prev.bytes.size() / sizeof(double)};
      const std::vector<double> vals = sz::decompress<double>(blob, ref);
      out.bytes = take_bytes(vals.data(), vals.size() * sizeof(double));
    }
    return out;
  });
}

Result<BlobInfo> inspect_blob(std::span<const std::uint8_t> blob) {
  return detail::guarded([&] {
    BlobInfo out;
    if (is_zfp_blob(blob)) {
      sz::Dims dims;
      (void)zfp::decompress(blob, &dims);  // validates and yields extents
      out.filter_id = kCodecZfp;
      out.codec = "zfp";
      out.dtype = DType::kFloat32;
      out.dims = detail::from_sz(dims);
      return out;
    }
    const sz::HeaderInfo info = sz::inspect(blob);
    out.filter_id = kCodecSz;
    out.codec = "sz";
    out.dtype = detail::from_sz(info.dtype);
    out.dims = detail::from_sz(info.dims);
    out.abs_error_bound = info.abs_error_bound;
    out.radius = info.radius;
    out.outlier_count = info.outlier_count;
    out.lz_applied = info.lz_applied;
    out.version = info.version;
    out.block_count = info.block_count;
    out.temporal_blocks = info.temporal_blocks;
    out.checksummed = info.checksummed;
    return out;
  });
}

Result<std::vector<BlobBlockInfo>> inspect_blob_blocks(
    std::span<const std::uint8_t> blob) {
  return detail::guarded([&] {
    if (is_zfp_blob(blob)) {
      throw std::invalid_argument("codec: zfp blobs carry no block index");
    }
    const sz::HeaderInfo info = sz::inspect(blob);
    const std::size_t esize = info.dtype == sz::DataType::kFloat32 ? 4 : 8;
    std::vector<BlobBlockInfo> out;
    for (const sz::BlockInfo& blk : sz::inspect_blocks(blob)) {
      BlobBlockInfo b;
      b.elem_count = blk.elem_count;
      b.stored_bytes = blk.stored_bytes(esize);
      b.temporal = blk.predictor == sz::Predictor::kTemporal;
      out.push_back(b);
    }
    return out;
  });
}

BlobVerifyReport verify_blob(std::span<const std::uint8_t> blob, bool deep) {
  BlobVerifyReport out;
  if (is_zfp_blob(blob)) {
    // zfp carries no checksums; a full decode is the only structural check.
    try {
      sz::Dims dims;
      (void)zfp::decompress(blob, &dims);
      out.parsed = true;
      out.ok = true;
    } catch (const std::exception& e) {
      out.detail = e.what();
    }
    return out;
  }
  const sz::BlobVerifyReport rep = sz::verify_blob(blob, deep);
  out.parsed = rep.parsed;
  out.version = rep.version;
  out.checksummed = rep.checksummed;
  out.ok = rep.ok;
  out.damaged_blocks = rep.damaged_blocks;
  out.detail = rep.detail;
  return out;
}

}  // namespace pcw
