// Runtime dispatch for the sz SIMD kernels, plus the scalar reference
// paths. The per-ISA entry points live in kernels_avx2.cc /
// kernels_avx512.cc (same signatures, per-ISA namespaces); this TU is
// compiled with the portable baseline flags and decides, per call, which
// one runs. PCW_HAVE_AVX2 / PCW_HAVE_AVX512 mirror which ISA TUs the
// build compiled (set from src/CMakeLists.txt), and util::simd_active()
// is clamped to the same macros, so dispatch can never reach code that
// was not built.
#include "sz/kernels.h"

#include <stdexcept>

#include "util/cpu.h"

#ifndef PCW_HAVE_AVX2
#define PCW_HAVE_AVX2 0
#endif
#ifndef PCW_HAVE_AVX512
#define PCW_HAVE_AVX512 0
#endif

namespace pcw::sz::kern {

#if PCW_HAVE_AVX2
namespace avx2 {
template <typename T>
void quantize_lanes(const QuantizeBatch<T>&);
template <typename T>
void dequantize_lanes(const DequantizeBatch<T>&);
template <typename T>
void temporal_quantize(const T*, const T*, std::size_t, double, std::uint32_t,
                       std::uint32_t*, std::vector<T>&, T*);
template <typename T>
bool temporal_dequant_range(const std::uint32_t*, const T*, T*, std::size_t,
                            std::span<const T>, std::size_t&, double, std::uint32_t);
}  // namespace avx2
#endif

#if PCW_HAVE_AVX512
namespace avx512 {
template <typename T>
void quantize_lanes(const QuantizeBatch<T>&);
template <typename T>
void dequantize_lanes(const DequantizeBatch<T>&);
template <typename T>
void temporal_quantize(const T*, const T*, std::size_t, double, std::uint32_t,
                       std::uint32_t*, std::vector<T>&, T*);
template <typename T>
bool temporal_dequant_range(const std::uint32_t*, const T*, T*, std::size_t,
                            std::span<const T>, std::size_t&, double, std::uint32_t);
}  // namespace avx512
#endif

int lane_width() {
  switch (util::simd_active()) {
#if PCW_HAVE_AVX512
    case util::Simd::kAvx512:
      return 16;
#endif
#if PCW_HAVE_AVX2
    case util::Simd::kAvx2:
      return 16;
#endif
    default:
      return 1;
  }
}

int lane_granularity() {
  switch (util::simd_active()) {
#if PCW_HAVE_AVX512
    case util::Simd::kAvx512:
      return 8;  // doubles per zmm
#endif
#if PCW_HAVE_AVX2
    case util::Simd::kAvx2:
      return 4;  // doubles per ymm
#endif
    default:
      return 1;
  }
}

template <typename T>
void quantize_lanes(const QuantizeBatch<T>& batch) {
  switch (util::simd_active()) {
#if PCW_HAVE_AVX512
    case util::Simd::kAvx512:
      avx512::quantize_lanes<T>(batch);
      return;
#endif
#if PCW_HAVE_AVX2
    case util::Simd::kAvx2:
      avx2::quantize_lanes<T>(batch);
      return;
#endif
    default:
      throw std::logic_error("kern::quantize_lanes: no lane kernel at active level");
  }
}

template <typename T>
void dequantize_lanes(const DequantizeBatch<T>& batch) {
  switch (util::simd_active()) {
#if PCW_HAVE_AVX512
    case util::Simd::kAvx512:
      avx512::dequantize_lanes<T>(batch);
      return;
#endif
#if PCW_HAVE_AVX2
    case util::Simd::kAvx2:
      avx2::dequantize_lanes<T>(batch);
      return;
#endif
    default:
      throw std::logic_error("kern::dequantize_lanes: no lane kernel at active level");
  }
}

template <typename T>
bool try_temporal_quantize(const T* data, const T* prev, std::size_t n, double eb,
                           std::uint32_t radius, std::uint32_t* codes,
                           std::vector<T>& outliers, T* recon) {
  if (radius > kLaneMaxRadius) return false;
  switch (util::simd_active()) {
#if PCW_HAVE_AVX512
    case util::Simd::kAvx512:
      avx512::temporal_quantize<T>(data, prev, n, eb, radius, codes, outliers, recon);
      return true;
#endif
#if PCW_HAVE_AVX2
    case util::Simd::kAvx2:
      avx2::temporal_quantize<T>(data, prev, n, eb, radius, codes, outliers, recon);
      return true;
#endif
    default:
      return false;
  }
}

template <typename T>
bool temporal_dequant_range(const std::uint32_t* codes, const T* prev, T* out,
                            std::size_t n, std::span<const T> outliers, std::size_t& k,
                            double eb, std::uint32_t radius) {
  if (radius <= kLaneMaxRadius) {
    switch (util::simd_active()) {
#if PCW_HAVE_AVX512
      case util::Simd::kAvx512:
        return avx512::temporal_dequant_range<T>(codes, prev, out, n, outliers, k, eb,
                                                 radius);
#endif
#if PCW_HAVE_AVX2
      case util::Simd::kAvx2:
        return avx2::temporal_dequant_range<T>(codes, prev, out, n, outliers, k, eb,
                                               radius);
#endif
      default:
        break;
    }
  }
  // Scalar reference: the per-point loop from temporal.cc.
  const double twice_eb = 2.0 * eb;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t code = codes[i];
    if (code == 0) {
      if (k >= outliers.size()) return false;
      out[i] = outliers[k++];
    } else {
      const auto q = static_cast<long long>(code) - static_cast<long long>(radius);
      out[i] = static_cast<T>(static_cast<double>(prev[i]) +
                              static_cast<double>(q) * twice_eb);
    }
  }
  return true;
}

template void quantize_lanes<float>(const QuantizeBatch<float>&);
template void quantize_lanes<double>(const QuantizeBatch<double>&);
template void dequantize_lanes<float>(const DequantizeBatch<float>&);
template void dequantize_lanes<double>(const DequantizeBatch<double>&);
template bool try_temporal_quantize<float>(const float*, const float*, std::size_t,
                                           double, std::uint32_t, std::uint32_t*,
                                           std::vector<float>&, float*);
template bool try_temporal_quantize<double>(const double*, const double*, std::size_t,
                                            double, std::uint32_t, std::uint32_t*,
                                            std::vector<double>&, double*);
template bool temporal_dequant_range<float>(const std::uint32_t*, const float*, float*,
                                            std::size_t, std::span<const float>,
                                            std::size_t&, double, std::uint32_t);
template bool temporal_dequant_range<double>(const std::uint32_t*, const double*,
                                             double*, std::size_t,
                                             std::span<const double>, std::size_t&,
                                             double, std::uint32_t);

}  // namespace pcw::sz::kern
