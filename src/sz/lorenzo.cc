#include "sz/lorenzo.h"

#include <cmath>
#include <stdexcept>

namespace pcw::sz {
namespace {

// The hot loops below peel the boundary faces (x==0 plane, y==0 rows,
// z==0 cells) out of the sweep so the interior stencil carries no
// has_x/has_y/has_z tests per point — each loop body computes exactly the
// terms its region needs. The arithmetic per cell is identical to the
// generic zero-padded Lorenzo stencil, so codes match the pre-peeled
// implementation bit-for-bit.

template <typename T>
struct Quantizer {
  QuantizeResult<T>& result;
  std::span<const T> data;
  T* recon;
  double eb;
  double twice_eb;
  long long radius;
  long long max_q;

  // Quantizes point i given its prediction; returns nothing, writes
  // codes/recon/outliers.
  inline void cell(std::size_t i, double pred) {
    const double orig = static_cast<double>(data[i]);
    const double scaled = (orig - pred) / twice_eb;
    bool predictable = std::abs(scaled) <= static_cast<double>(max_q);
    long long q = 0;
    double rec = 0.0;
    if (predictable) {
      q = std::llround(scaled);
      rec = pred + static_cast<double>(q) * twice_eb;
      // Verify against the original in the *storage* precision: the
      // value the decompressor reproduces is T(rec), so the bound must
      // hold after the narrowing conversion too.
      predictable = std::abs(static_cast<double>(static_cast<T>(rec)) - orig) <= eb;
    }
    if (predictable) {
      result.codes[i] = static_cast<std::uint32_t>(q + radius);
      recon[i] = static_cast<T>(rec);
    } else {
      result.codes[i] = 0;
      result.outliers.push_back(data[i]);
      recon[i] = data[i];
    }
  }
};

}  // namespace

template <typename T>
QuantizeResult<T> lorenzo_quantize(std::span<const T> data, const Dims& dims,
                                   double eb, std::uint32_t radius) {
  if (data.size() != dims.count()) {
    throw std::invalid_argument("lorenzo_quantize: data size != dims.count()");
  }
  if (eb <= 0.0) throw std::invalid_argument("lorenzo_quantize: eb must be > 0");
  if (radius < 2) throw std::invalid_argument("lorenzo_quantize: radius must be >= 2");

  QuantizeResult<T> result;
  result.codes.resize(data.size());
  result.recon.resize(data.size());
  std::vector<T>& recon = result.recon;

  const std::size_t sx = dims.d1 * dims.d2;
  const std::size_t sy = dims.d2;
  Quantizer<T> qz{result,
                  data,
                  recon.data(),
                  eb,
                  2.0 * eb,
                  static_cast<long long>(radius),
                  static_cast<long long>(radius) - 1};
  const T* r = recon.data();
  auto at = [r](std::size_t idx) { return static_cast<double>(r[idx]); };

  // x == 0 plane: 2-D stencil in (y, z).
  {
    qz.cell(0, 0.0);                                        // origin
    for (std::size_t z = 1; z < dims.d2; ++z) {             // first row
      qz.cell(z, at(z - 1));
    }
    for (std::size_t y = 1; y < dims.d1; ++y) {
      const std::size_t row = y * sy;
      qz.cell(row, at(row - sy));                           // z == 0 cell
      for (std::size_t z = 1; z < dims.d2; ++z) {           // interior row
        const std::size_t i = row + z;
        qz.cell(i, at(i - 1) + at(i - sy) - at(i - sy - 1));
      }
    }
  }
  // x >= 1 planes: full 3-D stencil in the interior.
  for (std::size_t x = 1; x < dims.d0; ++x) {
    const std::size_t plane = x * sx;
    qz.cell(plane, at(plane - sx));                         // y == 0, z == 0
    for (std::size_t z = 1; z < dims.d2; ++z) {             // y == 0 row
      const std::size_t i = plane + z;
      qz.cell(i, at(i - 1) + at(i - sx) - at(i - sx - 1));
    }
    for (std::size_t y = 1; y < dims.d1; ++y) {
      const std::size_t row = plane + y * sy;
      qz.cell(row, at(row - sy) + at(row - sx) - at(row - sx - sy));  // z == 0
      for (std::size_t z = 1; z < dims.d2; ++z) {           // branchless interior
        const std::size_t i = row + z;
        const double pred = at(i - 1) + at(i - sy) + at(i - sx) -
                            at(i - sy - 1) - at(i - sx - 1) - at(i - sx - sy) +
                            at(i - sx - sy - 1);
        qz.cell(i, pred);
      }
    }
  }
  return result;
}

template <typename T>
void lorenzo_dequantize(std::span<const std::uint32_t> codes,
                        std::span<const T> outliers, const Dims& dims, double eb,
                        std::uint32_t radius, std::span<T> out) {
  if (codes.size() != dims.count() || out.size() != dims.count()) {
    throw std::invalid_argument("lorenzo_dequantize: size mismatch");
  }
  const double twice_eb = 2.0 * eb;
  const std::size_t sx = dims.d1 * dims.d2;
  const std::size_t sy = dims.d2;

  std::size_t next_outlier = 0;
  T* r = out.data();
  auto at = [r](std::size_t idx) { return static_cast<double>(r[idx]); };
  auto cell = [&](std::size_t i, double pred) {
    const std::uint32_t code = codes[i];
    if (code == 0) {
      if (next_outlier >= outliers.size()) {
        throw std::runtime_error("lorenzo_dequantize: outlier underrun");
      }
      r[i] = outliers[next_outlier++];
    } else {
      const auto q = static_cast<long long>(code) - static_cast<long long>(radius);
      r[i] = static_cast<T>(pred + static_cast<double>(q) * twice_eb);
    }
  };

  // x == 0 plane.
  {
    cell(0, 0.0);
    for (std::size_t z = 1; z < dims.d2; ++z) cell(z, at(z - 1));
    for (std::size_t y = 1; y < dims.d1; ++y) {
      const std::size_t row = y * sy;
      cell(row, at(row - sy));
      for (std::size_t z = 1; z < dims.d2; ++z) {
        const std::size_t i = row + z;
        cell(i, at(i - 1) + at(i - sy) - at(i - sy - 1));
      }
    }
  }
  // x >= 1 planes.
  for (std::size_t x = 1; x < dims.d0; ++x) {
    const std::size_t plane = x * sx;
    cell(plane, at(plane - sx));
    for (std::size_t z = 1; z < dims.d2; ++z) {
      const std::size_t i = plane + z;
      cell(i, at(i - 1) + at(i - sx) - at(i - sx - 1));
    }
    for (std::size_t y = 1; y < dims.d1; ++y) {
      const std::size_t row = plane + y * sy;
      cell(row, at(row - sy) + at(row - sx) - at(row - sx - sy));
      for (std::size_t z = 1; z < dims.d2; ++z) {
        const std::size_t i = row + z;
        const double pred = at(i - 1) + at(i - sy) + at(i - sx) -
                            at(i - sy - 1) - at(i - sx - 1) - at(i - sx - sy) +
                            at(i - sx - sy - 1);
        cell(i, pred);
      }
    }
  }
  if (next_outlier != outliers.size()) {
    throw std::runtime_error("lorenzo_dequantize: outlier overrun");
  }
}

template QuantizeResult<float> lorenzo_quantize<float>(std::span<const float>,
                                                       const Dims&, double,
                                                       std::uint32_t);
template QuantizeResult<double> lorenzo_quantize<double>(std::span<const double>,
                                                         const Dims&, double,
                                                         std::uint32_t);
template void lorenzo_dequantize<float>(std::span<const std::uint32_t>,
                                        std::span<const float>, const Dims&, double,
                                        std::uint32_t, std::span<float>);
template void lorenzo_dequantize<double>(std::span<const std::uint32_t>,
                                         std::span<const double>, const Dims&, double,
                                         std::uint32_t, std::span<double>);

}  // namespace pcw::sz
