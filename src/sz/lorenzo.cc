#include "sz/lorenzo.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sz/kernels.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace pcw::sz {
namespace {

// The hot loops below peel the boundary faces (x==0 plane, y==0 rows,
// z==0 cells) out of the sweep so the interior stencil carries no
// has_x/has_y/has_z tests per point — each loop body computes exactly the
// terms its region needs. The arithmetic per cell is identical to the
// generic zero-padded Lorenzo stencil, so codes match the pre-peeled
// implementation bit-for-bit.

template <typename T>
struct Quantizer {
  QuantizeResult<T>& result;
  std::span<const T> data;
  T* recon;
  double eb;
  double twice_eb;
  long long radius;
  long long max_q;

  // Quantizes point i given its prediction; returns nothing, writes
  // codes/recon/outliers.
  inline void cell(std::size_t i, double pred) {
    const double orig = static_cast<double>(data[i]);
    const double scaled = (orig - pred) / twice_eb;
    bool predictable = std::abs(scaled) <= static_cast<double>(max_q);
    long long q = 0;
    double rec = 0.0;
    if (predictable) {
      q = std::llround(scaled);
      rec = pred + static_cast<double>(q) * twice_eb;
      // Verify against the original in the *storage* precision: the
      // value the decompressor reproduces is T(rec), so the bound must
      // hold after the narrowing conversion too.
      predictable = std::abs(static_cast<double>(static_cast<T>(rec)) - orig) <= eb;
    }
    if (predictable) {
      result.codes[i] = static_cast<std::uint32_t>(q + radius);
      recon[i] = static_cast<T>(rec);
    } else {
      result.codes[i] = 0;
      result.outliers.push_back(data[i]);
      recon[i] = data[i];
    }
  }
};

}  // namespace

template <typename T>
QuantizeResult<T> lorenzo_quantize(std::span<const T> data, const Dims& dims,
                                   double eb, std::uint32_t radius) {
  if (data.size() != dims.count()) {
    throw std::invalid_argument("lorenzo_quantize: data size != dims.count()");
  }
  if (eb <= 0.0) throw std::invalid_argument("lorenzo_quantize: eb must be > 0");
  if (radius < 2) throw std::invalid_argument("lorenzo_quantize: radius must be >= 2");

  QuantizeResult<T> result;
  result.codes.resize(data.size());
  result.recon.resize(data.size());
  std::vector<T>& recon = result.recon;

  const std::size_t sx = dims.d1 * dims.d2;
  const std::size_t sy = dims.d2;
  Quantizer<T> qz{result,
                  data,
                  recon.data(),
                  eb,
                  2.0 * eb,
                  static_cast<long long>(radius),
                  static_cast<long long>(radius) - 1};
  const T* r = recon.data();
  auto at = [r](std::size_t idx) { return static_cast<double>(r[idx]); };

  // x == 0 plane: 2-D stencil in (y, z).
  {
    qz.cell(0, 0.0);                                        // origin
    for (std::size_t z = 1; z < dims.d2; ++z) {             // first row
      qz.cell(z, at(z - 1));
    }
    for (std::size_t y = 1; y < dims.d1; ++y) {
      const std::size_t row = y * sy;
      qz.cell(row, at(row - sy));                           // z == 0 cell
      for (std::size_t z = 1; z < dims.d2; ++z) {           // interior row
        const std::size_t i = row + z;
        qz.cell(i, at(i - 1) + at(i - sy) - at(i - sy - 1));
      }
    }
  }
  // x >= 1 planes: full 3-D stencil in the interior.
  for (std::size_t x = 1; x < dims.d0; ++x) {
    const std::size_t plane = x * sx;
    qz.cell(plane, at(plane - sx));                         // y == 0, z == 0
    for (std::size_t z = 1; z < dims.d2; ++z) {             // y == 0 row
      const std::size_t i = plane + z;
      qz.cell(i, at(i - 1) + at(i - sx) - at(i - sx - 1));
    }
    for (std::size_t y = 1; y < dims.d1; ++y) {
      const std::size_t row = plane + y * sy;
      qz.cell(row, at(row - sy) + at(row - sx) - at(row - sx - sy));  // z == 0
      for (std::size_t z = 1; z < dims.d2; ++z) {           // branchless interior
        const std::size_t i = row + z;
        const double pred = at(i - 1) + at(i - sy) + at(i - sx) -
                            at(i - sy - 1) - at(i - sx - 1) - at(i - sx - sy) +
                            at(i - sx - sy - 1);
        qz.cell(i, pred);
      }
    }
  }
  return result;
}

template <typename T>
void lorenzo_dequantize(std::span<const std::uint32_t> codes,
                        std::span<const T> outliers, const Dims& dims, double eb,
                        std::uint32_t radius, std::span<T> out) {
  if (codes.size() != dims.count() || out.size() != dims.count()) {
    throw std::invalid_argument("lorenzo_dequantize: size mismatch");
  }
  const double twice_eb = 2.0 * eb;
  const std::size_t sx = dims.d1 * dims.d2;
  const std::size_t sy = dims.d2;

  std::size_t next_outlier = 0;
  T* r = out.data();
  auto at = [r](std::size_t idx) { return static_cast<double>(r[idx]); };
  auto cell = [&](std::size_t i, double pred) {
    const std::uint32_t code = codes[i];
    if (code == 0) {
      if (next_outlier >= outliers.size()) {
        throw std::runtime_error("lorenzo_dequantize: outlier underrun");
      }
      r[i] = outliers[next_outlier++];
    } else {
      const auto q = static_cast<long long>(code) - static_cast<long long>(radius);
      r[i] = static_cast<T>(pred + static_cast<double>(q) * twice_eb);
    }
  };

  // x == 0 plane.
  {
    cell(0, 0.0);
    for (std::size_t z = 1; z < dims.d2; ++z) cell(z, at(z - 1));
    for (std::size_t y = 1; y < dims.d1; ++y) {
      const std::size_t row = y * sy;
      cell(row, at(row - sy));
      for (std::size_t z = 1; z < dims.d2; ++z) {
        const std::size_t i = row + z;
        cell(i, at(i - 1) + at(i - sy) - at(i - sy - 1));
      }
    }
  }
  // x >= 1 planes.
  for (std::size_t x = 1; x < dims.d0; ++x) {
    const std::size_t plane = x * sx;
    cell(plane, at(plane - sx));
    for (std::size_t z = 1; z < dims.d2; ++z) {
      const std::size_t i = plane + z;
      cell(i, at(i - 1) + at(i - sx) - at(i - sx - 1));
    }
    for (std::size_t y = 1; y < dims.d1; ++y) {
      const std::size_t row = plane + y * sy;
      cell(row, at(row - sy) + at(row - sx) - at(row - sx - sy));
      for (std::size_t z = 1; z < dims.d2; ++z) {
        const std::size_t i = row + z;
        const double pred = at(i - 1) + at(i - sy) + at(i - sx) -
                            at(i - sy - 1) - at(i - sx - 1) - at(i - sx - sy) +
                            at(i - sx - sy - 1);
        cell(i, pred);
      }
    }
  }
  if (next_outlier != outliers.size()) {
    throw std::runtime_error("lorenzo_dequantize: outlier overrun");
  }
}

template <typename T>
std::vector<QuantizeResult<T>> lorenzo_quantize_blocks(
    std::span<const T> data, std::span<const BlockRange> blocks, double eb,
    std::uint32_t radius, unsigned threads, T* recon_out,
    std::span<std::vector<std::uint32_t>> hists) {
  if (eb <= 0.0) throw std::invalid_argument("lorenzo_quantize: eb must be > 0");
  if (radius < 2) throw std::invalid_argument("lorenzo_quantize: radius must be >= 2");
  if (!hists.empty() && hists.size() != blocks.size()) {
    throw std::invalid_argument("lorenzo_quantize: hists size != block count");
  }

  // Partition into lockstep groups — runs of consecutive blocks with
  // identical extents and contiguous data, rounded down to the lane
  // granularity (up to lane_width() lanes per group) — and scalar
  // singles. The partition depends on the dispatch level, but both
  // kernels produce identical bytes, so blobs do not.
  struct Task {
    std::size_t first = 0;
    int count = 1;  // lanes for a lockstep group, 1 for a single
  };
  std::vector<Task> tasks;
  tasks.reserve(blocks.size());
  const int w = kern::lane_width();
  const int g = kern::lane_granularity();
  std::size_t b = 0;
  while (b < blocks.size()) {
    int run = 0;
    if (w > 1 && radius <= kern::kLaneMaxRadius) {
      const std::size_t bc = blocks[b].dims.count();
      if (bc > 0) {
        const int cap = static_cast<int>(
            std::min<std::size_t>(static_cast<std::size_t>(w), blocks.size() - b));
        run = 1;
        while (run < cap) {
          const BlockRange& cur = blocks[b + static_cast<std::size_t>(run)];
          const bool contiguous =
              cur.dims.d0 == blocks[b].dims.d0 && cur.dims.d1 == blocks[b].dims.d1 &&
              cur.dims.d2 == blocks[b].dims.d2 &&
              cur.elem_offset ==
                  blocks[b].elem_offset + static_cast<std::size_t>(run) * bc;
          if (!contiguous) break;
          ++run;
        }
        run = (run / g) * g;
        if (blocks[b].elem_offset + static_cast<std::size_t>(run) * bc > data.size()) {
          run = 0;
        }
      }
    }
    const bool group = run >= g && run > 1;
    tasks.push_back({b, group ? run : 1});
    b += group ? static_cast<std::size_t>(run) : 1;
  }

  std::vector<QuantizeResult<T>> quants(blocks.size());
  util::parallel_for(tasks.size(), threads, [&](std::size_t t) {
    const Task& task = tasks[t];
    util::trace::Span span("quantize", "sz", "block", task.first);
    if (task.count == 1) {
      const BlockRange& blk = blocks[task.first];
      QuantizeResult<T>& q = quants[task.first];
      q = lorenzo_quantize<T>(data.subspan(blk.elem_offset, blk.dims.count()),
                              blk.dims, eb, radius);
      if (recon_out != nullptr) {
        std::copy(q.recon.begin(), q.recon.end(), recon_out + blk.elem_offset);
      }
      std::vector<T>().swap(q.recon);
      if (!hists.empty()) {
        std::vector<std::uint32_t>& hist = hists[task.first];
        hist.assign(2ull * radius, 0);
        for (const std::uint32_t c : q.codes) ++hist[c];
      }
      return;
    }
    const std::size_t bc = blocks[task.first].dims.count();
    std::uint32_t* codes[kern::kMaxLanes] = {};
    std::vector<T>* outs[kern::kMaxLanes] = {};
    std::uint32_t* hptr[kern::kMaxLanes] = {};
    for (int l = 0; l < task.count; ++l) {
      QuantizeResult<T>& q = quants[task.first + static_cast<std::size_t>(l)];
      q.codes.resize(bc);
      codes[l] = q.codes.data();
      outs[l] = &q.outliers;
      if (!hists.empty()) {
        std::vector<std::uint32_t>& hist = hists[task.first + static_cast<std::size_t>(l)];
        hist.assign(2ull * radius, 0);
        hptr[l] = hist.data();
      }
    }
    kern::QuantizeBatch<T> batch;
    batch.data = data.data() + blocks[task.first].elem_offset;
    batch.bc = bc;
    batch.dims = blocks[task.first].dims;
    batch.eb = eb;
    batch.radius = radius;
    batch.codes = codes;
    batch.outliers = outs;
    batch.recon =
        recon_out != nullptr ? recon_out + blocks[task.first].elem_offset : nullptr;
    batch.hist = hists.empty() ? nullptr : hptr;
    batch.lanes = task.count;
    kern::quantize_lanes<T>(batch);
  });
  return quants;
}

template QuantizeResult<float> lorenzo_quantize<float>(std::span<const float>,
                                                       const Dims&, double,
                                                       std::uint32_t);
template QuantizeResult<double> lorenzo_quantize<double>(std::span<const double>,
                                                         const Dims&, double,
                                                         std::uint32_t);
template void lorenzo_dequantize<float>(std::span<const std::uint32_t>,
                                        std::span<const float>, const Dims&, double,
                                        std::uint32_t, std::span<float>);
template void lorenzo_dequantize<double>(std::span<const std::uint32_t>,
                                         std::span<const double>, const Dims&, double,
                                         std::uint32_t, std::span<double>);
template std::vector<QuantizeResult<float>> lorenzo_quantize_blocks<float>(
    std::span<const float>, std::span<const BlockRange>, double, std::uint32_t,
    unsigned, float*, std::span<std::vector<std::uint32_t>>);
template std::vector<QuantizeResult<double>> lorenzo_quantize_blocks<double>(
    std::span<const double>, std::span<const BlockRange>, double, std::uint32_t,
    unsigned, double*, std::span<std::vector<std::uint32_t>>);

}  // namespace pcw::sz
