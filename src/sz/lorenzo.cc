#include "sz/lorenzo.h"

#include <cmath>
#include <stdexcept>

namespace pcw::sz {
namespace {

// Lorenzo predictor over the reconstruction buffer. Out-of-range
// neighbours contribute 0 (zero-padding), so the very first point is
// predicted as 0 and the first row/plane degrade to lower-order stencils.
template <typename T>
double predict(const T* recon, std::size_t i, std::size_t x, std::size_t y,
               std::size_t z, std::size_t sx, std::size_t sy) {
  const bool has_x = x > 0, has_y = y > 0, has_z = z > 0;
  double p = 0.0;
  if (has_z) p += static_cast<double>(recon[i - 1]);
  if (has_y) p += static_cast<double>(recon[i - sy]);
  if (has_x) p += static_cast<double>(recon[i - sx]);
  if (has_y && has_z) p -= static_cast<double>(recon[i - sy - 1]);
  if (has_x && has_z) p -= static_cast<double>(recon[i - sx - 1]);
  if (has_x && has_y) p -= static_cast<double>(recon[i - sx - sy]);
  if (has_x && has_y && has_z) p += static_cast<double>(recon[i - sx - sy - 1]);
  return p;
}

}  // namespace

template <typename T>
QuantizeResult<T> lorenzo_quantize(std::span<const T> data, const Dims& dims,
                                   double eb, std::uint32_t radius) {
  if (data.size() != dims.count()) {
    throw std::invalid_argument("lorenzo_quantize: data size != dims.count()");
  }
  if (eb <= 0.0) throw std::invalid_argument("lorenzo_quantize: eb must be > 0");
  if (radius < 2) throw std::invalid_argument("lorenzo_quantize: radius must be >= 2");

  QuantizeResult<T> result;
  result.codes.resize(data.size());
  std::vector<T> recon(data.size());

  const double twice_eb = 2.0 * eb;
  const std::size_t sx = dims.d1 * dims.d2;
  const std::size_t sy = dims.d2;
  const auto max_q = static_cast<long long>(radius) - 1;

  std::size_t i = 0;
  for (std::size_t x = 0; x < dims.d0; ++x) {
    for (std::size_t y = 0; y < dims.d1; ++y) {
      for (std::size_t z = 0; z < dims.d2; ++z, ++i) {
        const double orig = static_cast<double>(data[i]);
        const double pred = predict(recon.data(), i, x, y, z, sx, sy);
        const double diff = orig - pred;
        const double scaled = diff / twice_eb;
        bool predictable = std::abs(scaled) <= static_cast<double>(max_q);
        long long q = 0;
        double rec = 0.0;
        if (predictable) {
          q = std::llround(scaled);
          rec = pred + static_cast<double>(q) * twice_eb;
          // Verify against the original in the *storage* precision: the
          // value the decompressor reproduces is T(rec), so the bound must
          // hold after the narrowing conversion too.
          predictable = std::abs(static_cast<double>(static_cast<T>(rec)) - orig) <= eb;
        }
        if (predictable) {
          result.codes[i] = static_cast<std::uint32_t>(q + static_cast<long long>(radius));
          recon[i] = static_cast<T>(rec);
        } else {
          result.codes[i] = 0;
          result.outliers.push_back(data[i]);
          recon[i] = data[i];
        }
      }
    }
  }
  return result;
}

template <typename T>
void lorenzo_dequantize(std::span<const std::uint32_t> codes,
                        std::span<const T> outliers, const Dims& dims, double eb,
                        std::uint32_t radius, std::span<T> out) {
  if (codes.size() != dims.count() || out.size() != dims.count()) {
    throw std::invalid_argument("lorenzo_dequantize: size mismatch");
  }
  const double twice_eb = 2.0 * eb;
  const std::size_t sx = dims.d1 * dims.d2;
  const std::size_t sy = dims.d2;

  std::size_t next_outlier = 0;
  std::size_t i = 0;
  for (std::size_t x = 0; x < dims.d0; ++x) {
    for (std::size_t y = 0; y < dims.d1; ++y) {
      for (std::size_t z = 0; z < dims.d2; ++z, ++i) {
        const std::uint32_t code = codes[i];
        if (code == 0) {
          if (next_outlier >= outliers.size()) {
            throw std::runtime_error("lorenzo_dequantize: outlier underrun");
          }
          out[i] = outliers[next_outlier++];
        } else {
          const double pred = predict(out.data(), i, x, y, z, sx, sy);
          const auto q = static_cast<long long>(code) - static_cast<long long>(radius);
          out[i] = static_cast<T>(pred + static_cast<double>(q) * twice_eb);
        }
      }
    }
  }
  if (next_outlier != outliers.size()) {
    throw std::runtime_error("lorenzo_dequantize: outlier overrun");
  }
}

template QuantizeResult<float> lorenzo_quantize<float>(std::span<const float>,
                                                       const Dims&, double,
                                                       std::uint32_t);
template QuantizeResult<double> lorenzo_quantize<double>(std::span<const double>,
                                                         const Dims&, double,
                                                         std::uint32_t);
template void lorenzo_dequantize<float>(std::span<const std::uint32_t>,
                                        std::span<const float>, const Dims&, double,
                                        std::uint32_t, std::span<float>);
template void lorenzo_dequantize<double>(std::span<const std::uint32_t>,
                                         std::span<const double>, const Dims&, double,
                                         std::uint32_t, std::span<double>);

}  // namespace pcw::sz
