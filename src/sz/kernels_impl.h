// Lane-lockstep kernel bodies, compiled once per ISA level.
//
// This header is the single source of the vector kernels. Each ISA TU
// (kernels_avx2.cc, kernels_avx512.cc) defines PCW_KERNEL_NS and
// PCW_KERNEL_WIDTH before including it; every helper lands in a per-ISA
// namespace (with TU-internal linkage for the bodies), so no function
// compiled with one ISA's flags can be picked by the linker for another
// ISA's call path.
//
// The kernels use GCC/Clang vector extensions — fixed-width vector types
// with element-wise operators — rather than relying on the
// auto-vectorizer, which on these loops drowns the math in per-cell
// alias-versioning checks. A batch of `lanes` blocks is processed as
// H = lanes/NV native-register-width vectors (NV doubles: one zmm under
// AVX-512, one ymm under AVX2). Two deliberate consequences:
//   * every vector op is exactly one machine-width op — wider logical
//     vectors tempt GCC into xmm-granularity blend chains;
//   * the H halves carry independent Lorenzo recurrences (lanes are
//     separate blocks), so their serial dependency chains overlap in the
//     pipeline. The sweep is latency-bound by that chain, which is why
//     wider groups (up to 4 * NV lanes) keep paying: throughput is
//     lanes / chain-latency.
// Every vector operation is the element-wise single-rounded IEEE
// operation (converts, + - * /, compares, selects), i.e. exactly the
// scalar instruction each lane would have executed, so byte-identity with
// the scalar kernels in lorenzo.cc / temporal.cc holds by construction.
// The two places the op sequence differs from the scalar source are
// exact-by-proof rewrites, both gated by radius <= kLaneMaxRadius = 2^30:
//   * std::llround(x) (libm; no vector form) becomes floor plus a
//     round-half-away carry, with floor(x) itself computed as
//     double(int32(x)) minus (trunc > x). For |x| < 2^31 the truncating
//     convert is the scalar cast; for |x| <= 2^30, x - floor(x) is exact
//     (both are multiples of x's ulp, which divides 1), so the carry
//     compare sees the exact fraction and the sum equals llround(x).
//   * (long long)code - (long long)radius becomes double(int32(code)) -
//     double(radius): every quantity is a 31-bit integer, exactly
//     representable in double, so the difference is exact either way.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "sz/kernels.h"
#include "util/trace.h"

#if !defined(PCW_KERNEL_NS) || !defined(PCW_KERNEL_WIDTH)
#error "include kernels_impl.h from an ISA TU defining PCW_KERNEL_NS and PCW_KERNEL_WIDTH"
#endif

namespace pcw::sz::kern::PCW_KERNEL_NS {
namespace {

constexpr int WMAX = PCW_KERNEL_WIDTH;  // widest lane batch (4 halves)
constexpr int NV = WMAX / 4;            // doubles per native vector register

/// Cells per staged I/O tile in the lane sweeps: big enough to amortize
/// touching the W per-block streams (and their TLB pages), small enough
/// that a tile (kTile * W elements in and out) stays L2-resident.
constexpr std::size_t kTile = 256;

typedef double nvd __attribute__((vector_size(NV * sizeof(double))));
typedef float nvf __attribute__((vector_size(NV * sizeof(float))));
typedef std::int32_t nvi __attribute__((vector_size(NV * sizeof(std::int32_t))));
typedef std::uint32_t nvu __attribute__((vector_size(NV * sizeof(std::uint32_t))));
typedef std::int64_t nvl __attribute__((vector_size(NV * sizeof(std::int64_t))));

template <typename V>
inline V vload(const void* p) {
  V v;
  std::memcpy(&v, p, sizeof(V));
  return v;
}
template <typename V>
inline void vstore(void* p, V v) {
  std::memcpy(p, &v, sizeof(V));
}

/// |x| with the exact fabs semantics (sign bit cleared, NaN payload kept).
inline nvd vabs(nvd x) {
  return reinterpret_cast<nvd>(reinterpret_cast<nvl>(x) & 0x7fffffffffffffffll);
}

/// floor(x) for |x| <= 2^30 (see header comment for the exactness proof).
inline nvd vfloor30(nvd x) {
  const nvd t = __builtin_convertvector(__builtin_convertvector(x, nvi), nvd);
  return t - ((t > x) ? 1.0 : 0.0);
}

// Horizontal OR of a 32-bit mask vector: nonzero iff any lane is set.
// Used only for the rare-path branch (outliers), never for values.
typedef std::int32_t vi32x4 __attribute__((vector_size(16)));
typedef std::int32_t vi32x8 __attribute__((vector_size(32)));
inline std::int32_t hor_or(vi32x4 v) { return v[0] | v[1] | v[2] | v[3]; }
inline std::int32_t hor_or(vi32x8 v) {
  return hor_or(__builtin_shufflevector(v, v, 0, 1, 2, 3) |
                __builtin_shufflevector(v, v, 4, 5, 6, 7));
}

/// Native vector of the stored element type T.
template <typename T>
struct NatVec;
template <>
struct NatVec<float> {
  using type = nvf;
};
template <>
struct NatVec<double> {
  using type = nvd;
};
template <typename T>
using nvT = typename NatVec<T>::type;

template <typename T>
inline nvd to_double(nvT<T> v) {
  if constexpr (std::is_same_v<T, double>) {
    return v;
  } else {
    return __builtin_convertvector(v, nvd);
  }
}
template <typename T>
inline nvT<T> to_T(nvd v) {
  if constexpr (std::is_same_v<T, double>) {
    return v;
  } else {
    return __builtin_convertvector(v, nvf);
  }
}

/// Reusable per-thread scratch for the lane-major staging arrays. The
/// groups a worker processes are uniformly sized, so one geometric-growth
/// buffer per thread turns tens of MB of fresh-page faults per group call
/// into a one-time cost. Returns 64-byte-aligned carve-outs.
class Scratch {
 public:
  unsigned char* reserve(std::size_t bytes) {
    if (cap_ < bytes) {
      // Slack covers base alignment plus per-carve rounding.
      buf_ = std::make_unique_for_overwrite<unsigned char[]>(bytes + 4 * 64);
      cap_ = bytes;
    }
    used_ = 0;
    base_ = buf_.get();
    base_ += (64 - reinterpret_cast<std::uintptr_t>(base_) % 64) % 64;
    return base_;
  }
  template <typename U>
  U* carve(std::size_t count) {
    used_ = (used_ + 63) & ~std::size_t{63};
    U* p = reinterpret_cast<U*>(base_ + used_);
    used_ += count * sizeof(U);
    return p;
  }

 private:
  std::unique_ptr<unsigned char[]> buf_;
  unsigned char* base_ = nullptr;
  std::size_t cap_ = 0;
  std::size_t used_ = 0;
};
inline thread_local Scratch tls_scratch;

/// H native vectors holding one lattice point of H*NV lanes. The halves
/// belong to different blocks, so arithmetic on them forms H independent
/// dependency chains — the +/- operators below are the left-associative
/// prediction sums from the scalar kernels, applied per half.
template <int H>
struct VPack {
  nvd h[H];
};
template <int H>
inline VPack<H> operator+(VPack<H> x, VPack<H> y) {
  VPack<H> r;
  for (int p = 0; p < H; ++p) r.h[p] = x.h[p] + y.h[p];
  return r;
}
template <int H>
inline VPack<H> operator-(VPack<H> x, VPack<H> y) {
  VPack<H> r;
  for (int p = 0; p < H; ++p) r.h[p] = x.h[p] - y.h[p];
  return r;
}

// The lattice of reconstructed neighbours is stored in T, not double:
// every value the scalar kernels feed back into a prediction is
// double(T(v)) — exactly representable in T — so narrowing the lattice
// loses nothing and halves its memory traffic for float data. pack_load
// re-widens on load, which reproduces the scalar kernels' (double)
// conversion of their T output arrays.
template <int H, typename T>
inline VPack<H> pack_load(const T* p) {
  VPack<H> r;
  for (int q = 0; q < H; ++q) r.h[q] = to_double<T>(vload<nvT<T>>(p + q * NV));
  return r;
}

// Walks one block shape in the exact region order of the scalar kernels
// in lorenzo.cc: the x == 0 plane with its 2-D stencil, then the full 3-D
// stencil planes, each with origin / first-row / z == 0 cells peeled.
// `at(idx)` loads all lanes of lattice point idx; `cell(i, pred)` takes
// the prediction computed in the scalar kernel's left-to-right
// floating-point order (the chains below are left-associative, so each
// lane sees the identical sequence of single-rounded adds).
template <typename At, typename Cell, typename Zero>
inline void sweep(const Dims& dims, const At& at, const Cell& cell, Zero zero) {
  const std::size_t sx = dims.d1 * dims.d2;
  const std::size_t sy = dims.d2;
  cell(0, zero);
  for (std::size_t z = 1; z < dims.d2; ++z) cell(z, at(z - 1));
  for (std::size_t y = 1; y < dims.d1; ++y) {
    const std::size_t row = y * sy;
    cell(row, at(row - sy));
    for (std::size_t z = 1; z < dims.d2; ++z) {
      const std::size_t i = row + z;
      cell(i, at(i - 1) + at(i - sy) - at(i - sy - 1));
    }
  }
  for (std::size_t x = 1; x < dims.d0; ++x) {
    const std::size_t plane = x * sx;
    cell(plane, at(plane - sx));
    for (std::size_t z = 1; z < dims.d2; ++z) {
      const std::size_t i = plane + z;
      cell(i, at(i - 1) + at(i - sx) - at(i - sx - 1));
    }
    for (std::size_t y = 1; y < dims.d1; ++y) {
      const std::size_t row = plane + y * sy;
      cell(row, at(row - sy) + at(row - sx) - at(row - sx - sy));
      for (std::size_t z = 1; z < dims.d2; ++z) {
        const std::size_t i = row + z;
        cell(i, at(i - 1) + at(i - sy) + at(i - sx) - at(i - sy - 1) -
                    at(i - sx - 1) - at(i - sx - sy) + at(i - sx - sy - 1));
      }
    }
  }
}

/// One quantizer step for NV lanes. Mirrors Quantizer<T>::cell in
/// lorenzo.cc statement for statement; lanes failing the range test are
/// clamped to zero inputs so the branch-free math stays in range for them
/// (their results are fully masked out, and NaN/inf lanes fail the
/// compare and land on the outlier path exactly like the scalar kernel).
/// Returns the code vector (0 marks outliers).
template <typename T>
inline nvu quant_half(nvd orig, nvd pred, double twice_eb, double eb,
                      double max_qd, std::int32_t radius_i, nvd* rec_out) {
  const nvd scaled = (orig - pred) / twice_eb;
  const nvl p1 = vabs(scaled) <= max_qd;
  const nvd sc = p1 ? scaled : 0.0;
  const nvd pc = p1 ? pred : 0.0;
  const nvd fl = vfloor30(sc);
  const nvd frac = sc - fl;
  const nvl carry = (frac > 0.5) | ((frac == 0.5) & (sc > 0.0));
  const nvd qd = fl + (carry ? 1.0 : 0.0);
  const nvd rec = pc + qd * twice_eb;
  const nvd drec = to_double<T>(to_T<T>(rec));
  const nvl p2 = p1 & (vabs(drec - orig) <= eb);
  const nvi p2n = __builtin_convertvector(p2, nvi);
  const nvi qi = __builtin_convertvector(qd, nvi) + radius_i;
  *rec_out = p2 ? drec : orig;
  return reinterpret_cast<nvu>(p2n ? qi : nvi{});
}

template <typename T, int H>
void quantize_lanes_impl(const QuantizeBatch<T>& b) {
  constexpr int W = H * NV;
  const std::size_t bc = b.bc;
  const double eb = b.eb;
  const double twice_eb = 2.0 * eb;
  const double max_qd = static_cast<double>(static_cast<long long>(b.radius) - 1);
  const auto radius_i = static_cast<std::int32_t>(b.radius);

  tls_scratch.reserve(bc * W * sizeof(T) + kTile * W * (sizeof(T) + sizeof(std::uint32_t)));
  T* const tlm = tls_scratch.carve<T>(bc * W);
  T* const tin = tls_scratch.carve<T>(kTile * W);
  std::uint32_t* const tco = tls_scratch.carve<std::uint32_t>(kTile * W);

  // Only the lattice is staged lane-major for the whole block (the
  // stencil re-reads it seven times per cell, so its window must stay
  // cache-resident). Input and code traffic goes through small L2-sized
  // tiles instead: the sweep visits cells strictly in order, so every
  // kTile cells the inputs of the next tile are burst-copied in from the
  // W per-block streams and the finished codes burst-copied out. The
  // bursts touch each stream (and its TLB pages) once per tile, and the
  // per-cell loads/stores inside the sweep stay contiguous — no full-size
  // staging arrays, no extra DRAM pass.
  std::size_t tbase = 0;  // first cell of the staged tile
  auto stage_in = [&](std::size_t i0) {
    const std::size_t n = std::min(kTile, bc - i0);
    for (int l = 0; l < W; ++l) {
      const T* src = b.data + static_cast<std::size_t>(l) * bc + i0;
      for (std::size_t j = 0; j < n; ++j) tin[j * W + l] = src[j];
    }
  };
  auto flush_codes = [&](std::size_t i0) {
    const std::size_t n = std::min(kTile, bc - i0);
    for (int l = 0; l < W; ++l) {
      std::uint32_t* dst = b.codes[l] + i0;
      if (b.hist != nullptr) {
        std::uint32_t* hl = b.hist[l];
        for (std::size_t j = 0; j < n; ++j) {
          const std::uint32_t c = tco[j * W + l];
          dst[j] = c;
          ++hl[c];
        }
      } else {
        for (std::size_t j = 0; j < n; ++j) dst[j] = tco[j * W + l];
      }
    }
  };
  stage_in(0);

  auto at = [tlm](std::size_t idx) { return pack_load<H, T>(tlm + idx * W); };
  auto cell = [&](std::size_t i, VPack<H> pred) {
    std::size_t j = i - tbase;
    if (j == kTile) {
      flush_codes(tbase);
      tbase = i;
      stage_in(i);
      j = 0;
    }
    nvu cs[H];
    nvi zero = {};
    for (int p = 0; p < H; ++p) {
      const nvd orig = to_double<T>(vload<nvT<T>>(tin + j * W + p * NV));
      nvd rec;
      cs[p] = quant_half<T>(orig, pred.h[p], twice_eb, eb, max_qd, radius_i, &rec);
      // rec holds double(T(rec)) on predictable lanes and orig (an exact
      // T) otherwise — both round-trip T exactly.
      vstore(tlm + i * W + p * NV, to_T<T>(rec));
      vstore(tco + j * W + p * NV, cs[p]);
      zero |= (cs[p] == 0u);
    }
    // Quantized codes are >= 1 (q >= 1 - radius), so code 0 marks exactly
    // the outlier lanes; each lane's outliers accumulate in sweep order.
    if (hor_or(zero)) {
      for (int l = 0; l < W; ++l) {
        if (tco[j * W + l] == 0) b.outliers[l]->push_back(tin[j * W + l]);
      }
    }
  };
  {
    util::trace::Span span("lane_sweep", "sz", "lanes", W);
    sweep(b.dims, at, cell, VPack<H>{});
    flush_codes(tbase);
  }

  if (b.recon != nullptr) {
    util::trace::Span span("lane_recon_out", "sz", "lanes", W);
    for (std::size_t i = 0; i < bc; ++i) {
      for (int l = 0; l < W; ++l) {
        b.recon[static_cast<std::size_t>(l) * bc + i] = tlm[i * W + l];
      }
    }
  }
}

/// One dequantizer step for NV lanes: pred + (code - radius) * 2eb,
/// narrowed through T exactly like the scalar kernel's output array.
/// Outlier lanes (code 0) get a placeholder zero — the caller patches
/// them from the per-lane outlier streams — selected *before* the
/// narrowing cast so the cast stays in T's range. Returns the T lattice
/// value; the next cell re-widens it on load (double(T(v)) is exact).
template <typename T>
inline nvT<T> dequant_half(nvu code, nvd pred, double twice_eb, double dradius) {
  const nvd q = __builtin_convertvector(reinterpret_cast<nvi>(code), nvd) - dradius;
  const nvd val = pred + q * twice_eb;
  const nvl nonzero = __builtin_convertvector(reinterpret_cast<nvi>(code), nvl) != 0ll;
  const nvd vs = nonzero ? val : nvd{};
  return to_T<T>(vs);
}

template <typename T, int H>
void dequantize_lanes_impl(const DequantizeBatch<T>& b) {
  constexpr int W = H * NV;
  const std::size_t bc = b.bc;
  const double twice_eb = 2.0 * b.eb;
  const double dradius = static_cast<double>(b.radius);

  tls_scratch.reserve(bc * W * sizeof(T) + kTile * W * (sizeof(T) + sizeof(std::uint32_t)));
  T* const tlm = tls_scratch.carve<T>(bc * W);
  T* const tout = tls_scratch.carve<T>(kTile * W);
  std::uint32_t* const tci = tls_scratch.carve<std::uint32_t>(kTile * W);

  // Mirror of the quantizer's tiling: codes burst-copied in from the W
  // per-block streams a tile at a time, reconstructed values written to
  // the lane-major lattice (stencil window) and to the output tile, which
  // is burst-flushed to each block's slice of `out`. Outliers are
  // bounds-checked at the consumption point and totals re-checked after
  // the sweep, so a mismatched run raises the scalar kernel's exact
  // underrun/overrun errors.
  std::size_t tbase = 0;
  auto stage_codes = [&](std::size_t i0) {
    const std::size_t n = std::min(kTile, bc - i0);
    for (int l = 0; l < W; ++l) {
      const std::uint32_t* src = b.codes[l] + i0;
      for (std::size_t j = 0; j < n; ++j) tci[j * W + l] = src[j];
    }
  };
  auto flush_out = [&](std::size_t i0) {
    const std::size_t n = std::min(kTile, bc - i0);
    for (int l = 0; l < W; ++l) {
      T* dst = b.out + static_cast<std::size_t>(l) * bc + i0;
      for (std::size_t j = 0; j < n; ++j) dst[j] = tout[j * W + l];
    }
  };
  stage_codes(0);

  std::size_t k[kMaxLanes] = {};
  auto at = [tlm](std::size_t idx) { return pack_load<H, T>(tlm + idx * W); };
  auto cell = [&](std::size_t i, VPack<H> pred) {
    std::size_t j = i - tbase;
    if (j == kTile) {
      flush_out(tbase);
      tbase = i;
      stage_codes(i);
      j = 0;
    }
    nvi zero = {};
    for (int p = 0; p < H; ++p) {
      const nvu code = vload<nvu>(tci + j * W + p * NV);
      const nvT<T> val = dequant_half<T>(code, pred.h[p], twice_eb, dradius);
      vstore(tlm + i * W + p * NV, val);
      vstore(tout + j * W + p * NV, val);
      zero |= (code == 0u);
    }
    if (hor_or(zero)) {
      // Outliers are stored as T; the lattice is T, so this is exactly
      // the scalar kernel's output-array write.
      for (int l = 0; l < W; ++l) {
        if (tci[j * W + l] == 0) {
          if (k[l] >= b.outliers[l].size()) {
            throw std::runtime_error("lorenzo_dequantize: outlier underrun");
          }
          const T v = b.outliers[l][k[l]++];
          tlm[i * W + l] = v;
          tout[j * W + l] = v;
        }
      }
    }
  };
  {
    util::trace::Span span("lane_sweep", "sz", "lanes", W);
    sweep(b.dims, at, cell, VPack<H>{});
    flush_out(tbase);
  }
  for (int l = 0; l < W; ++l) {
    if (k[l] != b.outliers[l].size()) {
      throw std::runtime_error("lorenzo_dequantize: outlier overrun");
    }
  }
}

template <typename T>
void temporal_quantize_impl(const T* data, const T* prev, std::size_t n, double eb,
                            std::uint32_t radius, std::uint32_t* codes,
                            std::vector<T>& outliers, T* recon) {
  constexpr int W = WMAX;  // point-wise: always run the widest chunks
  const double twice_eb = 2.0 * eb;
  const double max_qd = static_cast<double>(static_cast<long long>(radius) - 1);
  const auto radius_i = static_cast<std::int32_t>(radius);
  const auto radius_ll = static_cast<long long>(radius);
  std::size_t i = 0;
  for (; i + W <= n; i += W) {
    nvi zero = {};
    for (int p = 0; p < 4; ++p) {
      const nvd orig = to_double<T>(vload<nvT<T>>(data + i + p * NV));
      const nvd pred = to_double<T>(vload<nvT<T>>(prev + i + p * NV));
      nvd rec;
      const nvu code =
          quant_half<T>(orig, pred, twice_eb, eb, max_qd, radius_i, &rec);
      vstore(codes + i + p * NV, code);
      // The scalar kernel stores T(rec) for predictable points and
      // data[i] otherwise; rec already holds orig = double(data[i]) on
      // outlier lanes, and T(double(data[i])) == data[i] exactly.
      vstore(recon + i + p * NV, to_T<T>(rec));
      zero |= (code == 0u);
    }
    if (hor_or(zero)) {
      for (int l = 0; l < W; ++l) {
        if (codes[i + l] == 0) outliers.push_back(data[i + l]);
      }
    }
  }
  // Scalar tail: literally the per-point loop from temporal.cc.
  for (; i < n; ++i) {
    const double orig = static_cast<double>(data[i]);
    const double pred = static_cast<double>(prev[i]);
    const double scaled = (orig - pred) / twice_eb;
    bool predictable = std::abs(scaled) <= max_qd;
    long long q = 0;
    double rec = 0.0;
    if (predictable) {
      q = std::llround(scaled);
      rec = pred + static_cast<double>(q) * twice_eb;
      predictable = std::abs(static_cast<double>(static_cast<T>(rec)) - orig) <= eb;
    }
    if (predictable) {
      codes[i] = static_cast<std::uint32_t>(q + radius_ll);
      recon[i] = static_cast<T>(rec);
    } else {
      codes[i] = 0;
      outliers.push_back(data[i]);
      recon[i] = data[i];
    }
  }
}

template <typename T>
bool temporal_dequant_range_impl(const std::uint32_t* codes, const T* prev, T* out,
                                 std::size_t n, std::span<const T> outliers,
                                 std::size_t& k, double eb, std::uint32_t radius) {
  constexpr int W = WMAX;
  const double twice_eb = 2.0 * eb;
  const double dradius = static_cast<double>(radius);
  std::size_t i = 0;
  for (; i + W <= n; i += W) {
    nvu cs[4];
    nvi zero = {};
    for (int p = 0; p < 4; ++p) {
      cs[p] = vload<nvu>(codes + i + p * NV);
      zero |= (cs[p] == 0u);
    }
    if (hor_or(zero)) {
      // Chunks holding an outlier run scalar to keep consumption in order.
      for (int l = 0; l < W; ++l) {
        const std::uint32_t c = codes[i + l];
        if (c == 0) {
          if (k >= outliers.size()) return false;
          out[i + l] = outliers[k++];
        } else {
          const auto q = static_cast<long long>(c) - static_cast<long long>(radius);
          out[i + l] = static_cast<T>(static_cast<double>(prev[i + l]) +
                                      static_cast<double>(q) * twice_eb);
        }
      }
      continue;
    }
    for (int p = 0; p < 4; ++p) {
      const nvd q =
          __builtin_convertvector(reinterpret_cast<nvi>(cs[p]), nvd) - dradius;
      const nvd pred = to_double<T>(vload<nvT<T>>(prev + i + p * NV));
      vstore(out + i + p * NV, to_T<T>(pred + q * twice_eb));
    }
  }
  for (; i < n; ++i) {
    const std::uint32_t code = codes[i];
    if (code == 0) {
      if (k >= outliers.size()) return false;
      out[i] = outliers[k++];
    } else {
      const auto q = static_cast<long long>(code) - static_cast<long long>(radius);
      out[i] = static_cast<T>(static_cast<double>(prev[i]) +
                              static_cast<double>(q) * twice_eb);
    }
  }
  return true;
}

}  // namespace

template <typename T>
void quantize_lanes(const QuantizeBatch<T>& b) {
  switch (b.lanes == 0 || b.lanes % NV != 0 ? 0 : b.lanes / NV) {
    case 1:
      quantize_lanes_impl<T, 1>(b);
      return;
    case 2:
      quantize_lanes_impl<T, 2>(b);
      return;
    case 3:
      quantize_lanes_impl<T, 3>(b);
      return;
    case 4:
      quantize_lanes_impl<T, 4>(b);
      return;
    case 5:
      quantize_lanes_impl<T, 5>(b);
      return;
    case 6:
      quantize_lanes_impl<T, 6>(b);
      return;
    case 7:
      quantize_lanes_impl<T, 7>(b);
      return;
    case 8:
      quantize_lanes_impl<T, 8>(b);
      return;
    default:
      throw std::logic_error("kern::quantize_lanes: unsupported lane count");
  }
}
template <typename T>
void dequantize_lanes(const DequantizeBatch<T>& b) {
  switch (b.lanes == 0 || b.lanes % NV != 0 ? 0 : b.lanes / NV) {
    case 1:
      dequantize_lanes_impl<T, 1>(b);
      return;
    case 2:
      dequantize_lanes_impl<T, 2>(b);
      return;
    case 3:
      dequantize_lanes_impl<T, 3>(b);
      return;
    case 4:
      dequantize_lanes_impl<T, 4>(b);
      return;
    case 5:
      dequantize_lanes_impl<T, 5>(b);
      return;
    case 6:
      dequantize_lanes_impl<T, 6>(b);
      return;
    case 7:
      dequantize_lanes_impl<T, 7>(b);
      return;
    case 8:
      dequantize_lanes_impl<T, 8>(b);
      return;
    default:
      throw std::logic_error("kern::dequantize_lanes: unsupported lane count");
  }
}
template <typename T>
void temporal_quantize(const T* data, const T* prev, std::size_t n, double eb,
                       std::uint32_t radius, std::uint32_t* codes,
                       std::vector<T>& outliers, T* recon) {
  temporal_quantize_impl<T>(data, prev, n, eb, radius, codes, outliers, recon);
}
template <typename T>
bool temporal_dequant_range(const std::uint32_t* codes, const T* prev, T* out,
                            std::size_t n, std::span<const T> outliers, std::size_t& k,
                            double eb, std::uint32_t radius) {
  return temporal_dequant_range_impl<T>(codes, prev, out, n, outliers, k, eb, radius);
}

template void quantize_lanes<float>(const QuantizeBatch<float>&);
template void quantize_lanes<double>(const QuantizeBatch<double>&);
template void dequantize_lanes<float>(const DequantizeBatch<float>&);
template void dequantize_lanes<double>(const DequantizeBatch<double>&);
template void temporal_quantize<float>(const float*, const float*, std::size_t, double,
                                       std::uint32_t, std::uint32_t*,
                                       std::vector<float>&, float*);
template void temporal_quantize<double>(const double*, const double*, std::size_t,
                                        double, std::uint32_t, std::uint32_t*,
                                        std::vector<double>&, double*);
template bool temporal_dequant_range<float>(const std::uint32_t*, const float*, float*,
                                            std::size_t, std::span<const float>,
                                            std::size_t&, double, std::uint32_t);
template bool temporal_dequant_range<double>(const std::uint32_t*, const double*,
                                             double*, std::size_t,
                                             std::span<const double>, std::size_t&,
                                             double, std::uint32_t);

}  // namespace pcw::sz::kern::PCW_KERNEL_NS
