#include "sz/compressor.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "sz/huffman.h"
#include "sz/lorenzo.h"
#include "sz/lossless.h"
#include "util/bitstream.h"
#include "util/pod_io.h"

namespace pcw::sz {
namespace {

constexpr std::uint32_t kMagic = 0x5A574350;  // "PCWZ"
constexpr std::uint8_t kVersion = 1;
constexpr std::uint8_t kFlagLz = 0x01;

using util::append_pod;

template <typename T>
T read_pod(std::span<const std::uint8_t> in, std::size_t& pos) {
  if (pos + sizeof(T) > in.size()) throw std::runtime_error("sz: truncated header");
  T v;
  std::memcpy(&v, in.data() + pos, sizeof(T));
  pos += sizeof(T);
  return v;
}

template <typename T>
constexpr DataType dtype_of();
template <>
constexpr DataType dtype_of<float>() {
  return DataType::kFloat32;
}
template <>
constexpr DataType dtype_of<double>() {
  return DataType::kFloat64;
}

struct RawHeader {
  std::uint8_t flags = 0;
  DataType dtype = DataType::kFloat32;
  Dims dims;
  double abs_eb = 0.0;
  std::uint32_t radius = 0;
  std::uint64_t outlier_count = 0;
  std::uint64_t codebook_size = 0;
  std::uint64_t huff_bytes = 0;
  std::uint64_t payload_raw_size = 0;
  std::size_t header_end = 0;
};

RawHeader parse_header(std::span<const std::uint8_t> blob) {
  std::size_t pos = 0;
  if (read_pod<std::uint32_t>(blob, pos) != kMagic) {
    throw std::runtime_error("sz: bad magic");
  }
  if (read_pod<std::uint8_t>(blob, pos) != kVersion) {
    throw std::runtime_error("sz: unsupported version");
  }
  RawHeader h;
  h.dtype = static_cast<DataType>(read_pod<std::uint8_t>(blob, pos));
  h.flags = read_pod<std::uint8_t>(blob, pos);
  (void)read_pod<std::uint8_t>(blob, pos);  // reserved
  h.dims.d0 = read_pod<std::uint64_t>(blob, pos);
  h.dims.d1 = read_pod<std::uint64_t>(blob, pos);
  h.dims.d2 = read_pod<std::uint64_t>(blob, pos);
  h.abs_eb = read_pod<double>(blob, pos);
  h.radius = read_pod<std::uint32_t>(blob, pos);
  h.outlier_count = read_pod<std::uint64_t>(blob, pos);
  h.codebook_size = read_pod<std::uint64_t>(blob, pos);
  h.huff_bytes = read_pod<std::uint64_t>(blob, pos);
  h.payload_raw_size = read_pod<std::uint64_t>(blob, pos);
  h.header_end = pos;
  return h;
}

}  // namespace

template <typename T>
double resolve_error_bound(std::span<const T> data, const Params& params) {
  if (params.error_bound <= 0.0) {
    throw std::invalid_argument("sz: error_bound must be > 0");
  }
  if (params.mode == ErrorBoundMode::kAbsolute) return params.error_bound;
  T lo = std::numeric_limits<T>::max();
  T hi = std::numeric_limits<T>::lowest();
  for (const T v : data) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double range = static_cast<double>(hi) - static_cast<double>(lo);
  // Degenerate (constant) data: any positive bound works; pick the raw one.
  return range > 0.0 ? params.error_bound * range : params.error_bound;
}

template <typename T>
std::vector<std::uint8_t> compress(std::span<const T> data, const Dims& dims,
                                   const Params& params) {
  if (data.size() != dims.count() || data.empty()) {
    throw std::invalid_argument("sz: data size must equal dims.count() and be > 0");
  }
  const double eb = resolve_error_bound(data, params);
  auto quant = lorenzo_quantize<T>(data, dims, eb, params.radius);

  // Frequency table over the observed alphabet.
  std::vector<std::uint64_t> counts(2ull * params.radius, 0);
  for (const std::uint32_t c : quant.codes) ++counts[c];
  std::vector<SymbolCount> freqs;
  for (std::uint32_t s = 0; s < counts.size(); ++s) {
    if (counts[s] > 0) freqs.push_back({s, counts[s]});
  }

  HuffmanEncoder encoder(freqs);
  util::BitWriter writer;
  writer.reserve_bytes(quant.codes.size() / 2);
  for (const std::uint32_t c : quant.codes) encoder.encode(c, writer);
  const std::vector<std::uint8_t> huff_bytes = writer.finish();
  const std::vector<std::uint8_t> codebook = encoder.serialize_codebook();

  std::vector<std::uint8_t> payload;
  payload.reserve(codebook.size() + huff_bytes.size() + quant.outliers.size() * sizeof(T));
  payload.insert(payload.end(), codebook.begin(), codebook.end());
  payload.insert(payload.end(), huff_bytes.begin(), huff_bytes.end());
  if (!quant.outliers.empty()) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(quant.outliers.data());
    payload.insert(payload.end(), p, p + quant.outliers.size() * sizeof(T));
  }

  std::uint8_t flags = 0;
  std::vector<std::uint8_t> stored;
  // The LZ stage only pays off when the Huffman stream still carries long
  // runs — i.e. at low bit-rates. Past ~20% of the original bit width the
  // entropy stage output is effectively incompressible, and running LZ
  // there would only drag the throughput floor down (SZ keeps its Fig.-5
  // band ~2x wide for the same reason: its zstd pass is cheap relative to
  // our from-scratch LZ, so we gate instead).
  const double payload_bits_per_val =
      8.0 * static_cast<double>(payload.size()) / static_cast<double>(data.size());
  const bool lz_worthwhile = payload_bits_per_val < 0.2 * 8.0 * sizeof(T);
  if (params.lossless && lz_worthwhile) {
    std::vector<std::uint8_t> lz = lz_compress(payload);
    if (lz.size() < payload.size()) {
      stored = std::move(lz);
      flags |= kFlagLz;
    }
  }
  if (!(flags & kFlagLz)) stored = std::move(payload);

  std::vector<std::uint8_t> blob;
  blob.reserve(64 + stored.size());
  append_pod(blob, kMagic);
  append_pod(blob, kVersion);
  append_pod(blob, static_cast<std::uint8_t>(dtype_of<T>()));
  append_pod(blob, flags);
  append_pod(blob, std::uint8_t{0});  // reserved
  append_pod(blob, static_cast<std::uint64_t>(dims.d0));
  append_pod(blob, static_cast<std::uint64_t>(dims.d1));
  append_pod(blob, static_cast<std::uint64_t>(dims.d2));
  append_pod(blob, eb);
  append_pod(blob, params.radius);
  append_pod(blob, static_cast<std::uint64_t>(quant.outliers.size()));
  append_pod(blob, static_cast<std::uint64_t>(codebook.size()));
  append_pod(blob, static_cast<std::uint64_t>(huff_bytes.size()));
  append_pod(blob, static_cast<std::uint64_t>(codebook.size() + huff_bytes.size() +
                                              quant.outliers.size() * sizeof(T)));
  blob.insert(blob.end(), stored.begin(), stored.end());
  return blob;
}

template <typename T>
std::vector<T> decompress(std::span<const std::uint8_t> blob, Dims* dims_out) {
  const RawHeader h = parse_header(blob);
  if (h.dtype != dtype_of<T>()) {
    throw std::runtime_error("sz: element type mismatch");
  }
  const std::size_t n = h.dims.count();
  if (n == 0) throw std::runtime_error("sz: empty dims");

  std::span<const std::uint8_t> stored = blob.subspan(h.header_end);
  std::vector<std::uint8_t> payload_buf;
  std::span<const std::uint8_t> payload;
  if (h.flags & kFlagLz) {
    payload_buf = lz_decompress(stored, h.payload_raw_size);
    payload = payload_buf;
  } else {
    payload = stored;
  }
  if (payload.size() < h.payload_raw_size) {
    throw std::runtime_error("sz: truncated payload");
  }

  std::size_t consumed = 0;
  HuffmanDecoder decoder(payload.subspan(0, h.codebook_size), &consumed);
  if (consumed != h.codebook_size) {
    throw std::runtime_error("sz: codebook size mismatch");
  }
  util::BitReader reader(payload.subspan(h.codebook_size, h.huff_bytes));
  std::vector<std::uint32_t> codes(n);
  for (std::size_t i = 0; i < n; ++i) codes[i] = decoder.decode(reader);

  std::vector<T> outliers(h.outlier_count);
  const std::size_t outlier_bytes = h.outlier_count * sizeof(T);
  const std::size_t outlier_off = h.codebook_size + h.huff_bytes;
  if (outlier_off + outlier_bytes > payload.size()) {
    throw std::runtime_error("sz: truncated outliers");
  }
  if (outlier_bytes > 0) {
    std::memcpy(outliers.data(), payload.data() + outlier_off, outlier_bytes);
  }

  std::vector<T> out(n);
  lorenzo_dequantize<T>(codes, outliers, h.dims, h.abs_eb, h.radius, out);
  if (dims_out != nullptr) *dims_out = h.dims;
  return out;
}

HeaderInfo inspect(std::span<const std::uint8_t> blob) {
  const RawHeader h = parse_header(blob);
  HeaderInfo info;
  info.dtype = h.dtype;
  info.dims = h.dims;
  info.abs_error_bound = h.abs_eb;
  info.radius = h.radius;
  info.outlier_count = h.outlier_count;
  info.lz_applied = (h.flags & kFlagLz) != 0;
  info.payload_raw_size = h.payload_raw_size;
  info.header_size = h.header_end;
  return info;
}

template double resolve_error_bound<float>(std::span<const float>, const Params&);
template double resolve_error_bound<double>(std::span<const double>, const Params&);
template std::vector<std::uint8_t> compress<float>(std::span<const float>, const Dims&,
                                                   const Params&);
template std::vector<std::uint8_t> compress<double>(std::span<const double>, const Dims&,
                                                    const Params&);
template std::vector<float> decompress<float>(std::span<const std::uint8_t>, Dims*);
template std::vector<double> decompress<double>(std::span<const std::uint8_t>, Dims*);

}  // namespace pcw::sz
