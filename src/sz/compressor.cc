#include "sz/compressor.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "sz/blocks.h"
#include "sz/huffman.h"
#include "sz/kernels.h"
#include "sz/lorenzo.h"
#include "sz/lossless.h"
#include "sz/temporal.h"
#include "util/bitstream.h"
#include "util/crc32c.h"
#include "util/metrics.h"
#include "util/pod_io.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace pcw::sz {
namespace {

constexpr std::uint32_t kMagic = 0x5A574350;  // "PCWZ"
constexpr std::uint8_t kVersionV1 = 1;
constexpr std::uint8_t kVersionV2 = 2;
constexpr std::uint8_t kVersionV3 = 3;
constexpr std::uint8_t kVersionV4 = 4;
constexpr std::uint8_t kFlagLz = 0x01;
// Informational fast-path flag: set iff any block index entry records the
// temporal predictor (the blob cannot decode without a reference step).
constexpr std::uint8_t kFlagTemporal = 0x02;

// v2 fixed header: magic..payload_raw_size (the v1 header, 76 bytes) plus
// the u32 block count; the per-block index follows. v3 shares the fixed
// header and appends one predictor byte to each index entry.
//
// v4 inserts integrity fields between payload_raw_size and the block
// count: stored_size u64 (the stored, post-LZ payload bytes — the exact
// extent the stored-payload CRC covers), header_crc u32 at [84, 88)
// (CRC32C of the whole header with these four bytes zeroed), codebook_crc
// u32, stored_crc u32. Each v4 index entry always carries the predictor
// byte plus a block CRC (its pre-LZ Huffman substream ++ outlier run).
constexpr std::size_t kV2FixedHeaderBytes = 80;
constexpr std::size_t kV2IndexEntryBytes = 24;
constexpr std::size_t kV3IndexEntryBytes = 25;
constexpr std::size_t kV4FixedHeaderBytes = 100;
constexpr std::size_t kV4IndexEntryBytes = 29;
constexpr std::size_t kV4HeaderCrcOffset = 84;
static_assert(kV2FixedHeaderBytes + kMaxBlocks * kV3IndexEntryBytes <= kMaxHeaderBytes &&
                  kV4FixedHeaderBytes + kMaxBlocks * kV4IndexEntryBytes <= kMaxHeaderBytes,
              "kMaxHeaderBytes no longer covers the largest possible header");

// Structural plausibility caps, all provable for any blob our encoder can
// emit (max code length 56 bits, ≤ 1 outlier per element, codebook of
// count u32 + ≤ 6 bytes per distinct symbol, LZ extension bytes add ≤ 255
// output bytes each). A header that violates one is malformed, rejected
// before its fields can size an allocation — the fuzz-sweep guarantee
// that truncated or bit-flipped blobs can never OOM the reader.
constexpr std::uint64_t kMaxHuffBitsPerElem = 56;
constexpr std::uint64_t kMaxCodebookBytesPerSymbol = 6;
constexpr std::uint64_t kMaxLzExpansion = 300;
constexpr std::uint64_t kCapSlackBytes = 65536;

using util::append_pod;

template <typename T>
T read_pod(std::span<const std::uint8_t> in, std::size_t& pos) {
  if (pos + sizeof(T) > in.size()) throw std::runtime_error("sz: truncated header");
  T v;
  std::memcpy(&v, in.data() + pos, sizeof(T));
  pos += sizeof(T);
  return v;
}

/// One block-index entry: element extent, Huffman substream bytes,
/// outlier count, and (v3) the per-block predictor choice, in block order.
struct BlockEntry {
  std::uint64_t elem_count = 0;
  std::uint64_t huff_bytes = 0;
  std::uint64_t outlier_count = 0;
  Predictor predictor = Predictor::kSpatial;
  std::uint32_t block_crc = 0;  // v4: CRC32C(huff substream ++ outlier run)
};

struct RawHeader {
  std::uint8_t version = 0;
  std::uint8_t flags = 0;
  DataType dtype = DataType::kFloat32;
  Dims dims;
  double abs_eb = 0.0;
  std::uint32_t radius = 0;
  std::uint64_t outlier_count = 0;
  std::uint64_t codebook_size = 0;
  std::uint64_t huff_bytes = 0;
  std::uint64_t payload_raw_size = 0;
  std::uint64_t stored_size = 0;    // v4: stored (post-LZ) payload bytes
  std::uint32_t header_crc = 0;     // v4
  std::uint32_t codebook_crc = 0;   // v4
  std::uint32_t stored_crc = 0;     // v4
  std::vector<BlockEntry> blocks;   // v2+ only; empty for v1
  std::size_t header_end = 0;

  std::size_t elem_size() const { return dtype == DataType::kFloat32 ? 4 : 8; }
};

RawHeader parse_header(std::span<const std::uint8_t> blob) {
  std::size_t pos = 0;
  if (read_pod<std::uint32_t>(blob, pos) != kMagic) {
    throw std::runtime_error("sz: bad magic");
  }
  RawHeader h;
  h.version = read_pod<std::uint8_t>(blob, pos);
  if (h.version < kVersionV1 || h.version > kVersionV4) {
    throw std::runtime_error("sz: unsupported version");
  }
  const std::uint8_t dtype_byte = read_pod<std::uint8_t>(blob, pos);
  if (dtype_byte > static_cast<std::uint8_t>(DataType::kFloat64)) {
    throw std::runtime_error("sz: unknown element type");
  }
  h.dtype = static_cast<DataType>(dtype_byte);
  h.flags = read_pod<std::uint8_t>(blob, pos);
  (void)read_pod<std::uint8_t>(blob, pos);  // reserved
  h.dims.d0 = read_pod<std::uint64_t>(blob, pos);
  h.dims.d1 = read_pod<std::uint64_t>(blob, pos);
  h.dims.d2 = read_pod<std::uint64_t>(blob, pos);
  h.abs_eb = read_pod<double>(blob, pos);
  h.radius = read_pod<std::uint32_t>(blob, pos);
  h.outlier_count = read_pod<std::uint64_t>(blob, pos);
  h.codebook_size = read_pod<std::uint64_t>(blob, pos);
  h.huff_bytes = read_pod<std::uint64_t>(blob, pos);
  h.payload_raw_size = read_pod<std::uint64_t>(blob, pos);
  if (h.version >= kVersionV4) {
    h.stored_size = read_pod<std::uint64_t>(blob, pos);
    h.header_crc = read_pod<std::uint32_t>(blob, pos);
    h.codebook_crc = read_pod<std::uint32_t>(blob, pos);
    h.stored_crc = read_pod<std::uint32_t>(blob, pos);
  }
  if (h.version >= kVersionV2) {
    const std::uint32_t n_blocks = read_pod<std::uint32_t>(blob, pos);
    if (n_blocks == 0) throw std::runtime_error("sz: zero block count");
    // The writer never emits more than kMaxBlocks slabs, and the
    // kMaxHeaderBytes guarantee is sized to that cap — a bigger count is
    // a malformed header, rejected before it can drive a huge reserve.
    if (n_blocks > kMaxBlocks) {
      throw std::runtime_error("sz: block count exceeds format limit");
    }
    h.blocks.reserve(n_blocks);
    // Overflow-checked accumulation: wrapping sums would let crafted index
    // entries (e.g. two +2^63 offsets) pass the totals check below while
    // individual entries drive out-of-bounds substream offsets.
    auto checked_add = [](std::uint64_t a, std::uint64_t b) {
      std::uint64_t r;
      if (__builtin_add_overflow(a, b, &r)) {
        throw std::runtime_error("sz: block index overflow");
      }
      return r;
    };
    std::uint64_t elems = 0, huff = 0, outliers = 0;
    for (std::uint32_t b = 0; b < n_blocks; ++b) {
      BlockEntry e;
      e.elem_count = read_pod<std::uint64_t>(blob, pos);
      e.huff_bytes = read_pod<std::uint64_t>(blob, pos);
      e.outlier_count = read_pod<std::uint64_t>(blob, pos);
      if (h.version >= kVersionV3) {
        const auto p = read_pod<std::uint8_t>(blob, pos);
        if (p > static_cast<std::uint8_t>(Predictor::kTemporal)) {
          throw std::runtime_error("sz: unknown block predictor");
        }
        e.predictor = static_cast<Predictor>(p);
      }
      if (h.version >= kVersionV4) {
        e.block_crc = read_pod<std::uint32_t>(blob, pos);
      }
      if (e.elem_count == 0) throw std::runtime_error("sz: empty block");
      // Per-block plausibility: every element consumes at least one code
      // bit, and a block holds at most one outlier per element.
      if (e.huff_bytes < (e.elem_count + 7) / 8 || e.outlier_count > e.elem_count) {
        throw std::runtime_error("sz: block index inconsistent with header");
      }
      elems = checked_add(elems, e.elem_count);
      huff = checked_add(huff, e.huff_bytes);
      outliers = checked_add(outliers, e.outlier_count);
      h.blocks.push_back(e);
    }
    // element_count() is the overflow-checked dims product, so crafted
    // extents cannot wrap the totals comparison.
    if (elems != element_count(h.dims) || huff != h.huff_bytes ||
        outliers != h.outlier_count) {
      throw std::runtime_error("sz: block index inconsistent with header");
    }
  }
  h.header_end = pos;

  // Whole-header plausibility caps (see the constants above): reject any
  // header whose sizes could not have come from our encoder, before those
  // sizes can drive an allocation.
  const std::uint64_t n = element_count(h.dims);
  if (n == 0) throw std::runtime_error("sz: empty dims");
  std::uint64_t huff_cap, codebook_cap;
  const bool cap_overflow =
      __builtin_mul_overflow(n, kMaxHuffBitsPerElem / 8 + 1, &huff_cap) ||
      __builtin_add_overflow(huff_cap, kCapSlackBytes, &huff_cap) ||
      __builtin_mul_overflow(n, kMaxCodebookBytesPerSymbol, &codebook_cap) ||
      __builtin_add_overflow(codebook_cap, kCapSlackBytes, &codebook_cap);
  if (cap_overflow || h.outlier_count > n || h.huff_bytes > huff_cap ||
      h.codebook_size > codebook_cap || h.huff_bytes < (n + 7) / 8) {
    throw std::runtime_error("sz: header sizes implausible");
  }
  // The three payload sections must add up exactly; every later subspan
  // and the LZ expansion target are bounded once this holds.
  std::uint64_t outlier_bytes, sum;
  const bool sum_overflow =
      __builtin_mul_overflow(h.outlier_count,
                             static_cast<std::uint64_t>(h.elem_size()), &outlier_bytes) ||
      __builtin_add_overflow(h.codebook_size, h.huff_bytes, &sum) ||
      __builtin_add_overflow(sum, outlier_bytes, &sum);
  if (sum_overflow || sum != h.payload_raw_size) {
    throw std::runtime_error("sz: payload sections inconsistent with header");
  }
  if (h.version >= kVersionV4) {
    // Without LZ the stored section *is* the raw payload; with LZ it must
    // be smaller (the writer only keeps a winning LZ pass).
    const bool lz = (h.flags & kFlagLz) != 0;
    if (lz ? h.stored_size >= h.payload_raw_size
           : h.stored_size != h.payload_raw_size) {
      throw std::runtime_error("sz: stored size inconsistent with header");
    }
  }
  return h;
}

/// Reconstructs each v2 block's extents from its element count, inverting
/// split_blocks' slab rule. Throws if a block does not cover whole slabs.
std::vector<BlockRange> blocks_from_index(const RawHeader& h) {
  const Dims& dims = h.dims;
  const int axis = slowest_nonunit_axis(dims);
  const std::size_t axis_len = extent(dims, axis);
  const std::size_t row_elems = axis_len == 0 ? 1 : element_count(dims) / axis_len;
  std::vector<BlockRange> out;
  out.reserve(h.blocks.size());
  std::size_t offset = 0;
  for (const BlockEntry& e : h.blocks) {
    if (row_elems == 0 || e.elem_count % row_elems != 0) {
      throw std::runtime_error("sz: block extent not slab-aligned");
    }
    BlockRange b;
    b.elem_offset = offset;
    b.dims = slab_dims(dims, axis, e.elem_count / row_elems);
    offset += e.elem_count;
    out.push_back(b);
  }
  return out;
}

/// Checks the three payload sections add up exactly (with overflow-safe
/// arithmetic); every later subspan is bounds-safe once this holds.
void validate_payload_extent(const RawHeader& h, std::size_t elem_size,
                             std::size_t payload_size) {
  std::uint64_t outlier_bytes, sum;
  const bool overflow =
      __builtin_mul_overflow(h.outlier_count, static_cast<std::uint64_t>(elem_size),
                             &outlier_bytes) ||
      __builtin_add_overflow(h.codebook_size, h.huff_bytes, &sum) ||
      __builtin_add_overflow(sum, outlier_bytes, &sum);
  if (overflow || sum != h.payload_raw_size || payload_size < h.payload_raw_size) {
    throw std::runtime_error("sz: truncated payload");
  }
}

// ---- container v4 checksum computation / verification ----------------------

/// CRC32C of the header bytes with the header_crc field itself zeroed.
std::uint32_t header_crc_of(std::span<const std::uint8_t> header_bytes) {
  static constexpr std::uint8_t kZeros[4] = {0, 0, 0, 0};
  std::uint32_t c = util::crc32c(0, header_bytes.data(), kV4HeaderCrcOffset);
  c = util::crc32c(c, kZeros, sizeof(kZeros));
  c = util::crc32c(c, header_bytes.data() + kV4HeaderCrcOffset + 4,
                   header_bytes.size() - kV4HeaderCrcOffset - 4);
  return c;
}

void verify_header_crc(const RawHeader& h, std::span<const std::uint8_t> blob) {
  if (header_crc_of(blob.subspan(0, h.header_end)) != h.header_crc) {
    throw std::runtime_error("sz: header checksum mismatch");
  }
}

/// kBlob verification: one sequential CRC pass over the stored (post-LZ)
/// payload detects any flipped bit without LZ expansion or decode work.
void verify_stored_crc(const RawHeader& h, std::span<const std::uint8_t> blob) {
  if (blob.size() < h.header_end + h.stored_size) {
    throw std::runtime_error("sz: truncated payload");
  }
  if (util::crc32c(0, blob.subspan(h.header_end, h.stored_size)) != h.stored_crc) {
    throw std::runtime_error("sz: stored payload checksum mismatch");
  }
}

void verify_codebook_crc(const RawHeader& h, std::span<const std::uint8_t> payload) {
  if (util::crc32c(0, payload.subspan(0, h.codebook_size)) != h.codebook_crc) {
    throw std::runtime_error("sz: codebook checksum mismatch");
  }
}

/// Per-block CRC over the block's pre-LZ Huffman substream ++ outlier
/// run. The error names the block; callers up the stack prefix the
/// dataset and partition.
void verify_block_crc(const RawHeader& h, std::span<const std::uint8_t> payload,
                      std::size_t b, std::size_t huff_off, std::size_t outlier_off,
                      std::size_t elem_size) {
  const BlockEntry& e = h.blocks[b];
  std::uint32_t c = util::crc32c(0, payload.data() + huff_off, e.huff_bytes);
  c = util::crc32c(c, payload.data() + outlier_off, e.outlier_count * elem_size);
  if (c != e.block_crc) {
    throw std::runtime_error("sz: block " + std::to_string(b) + " checksum mismatch");
  }
}

/// Pre-decode verification per the VerifyMode knob (no-op below v4).
/// kBlock's per-block CRCs run later, on only the blocks being decoded.
void verify_before_decode(const RawHeader& h, std::span<const std::uint8_t> blob,
                          VerifyMode verify) {
  if (h.version < kVersionV4 || verify == VerifyMode::kOff) return;
  verify_header_crc(h, blob);
  // kBlock normally defers to the per-block CRCs of the decoded blocks,
  // but an LZ-compressed payload has a hole they cannot close: a flipped
  // match offset can expand to the exact same pre-LZ bytes when the match
  // source is periodic data. The expansion reads every stored byte anyway,
  // so the stored CRC costs one marginal pass and restores the guarantee
  // that every flipped bit fails the decode.
  if (verify == VerifyMode::kBlob || (h.flags & kFlagLz)) verify_stored_crc(h, blob);
}

}  // namespace

template <typename T>
double resolve_error_bound(std::span<const T> data, const Params& params) {
  if (params.error_bound <= 0.0) {
    throw std::invalid_argument("sz: error_bound must be > 0");
  }
  if (params.mode == ErrorBoundMode::kAbsolute) return params.error_bound;
  T lo = std::numeric_limits<T>::max();
  T hi = std::numeric_limits<T>::lowest();
  for (const T v : data) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double range = static_cast<double>(hi) - static_cast<double>(lo);
  // Degenerate (constant) data: any positive bound works; pick the raw one.
  return range > 0.0 ? params.error_bound * range : params.error_bound;
}

namespace {

/// Builds the code histogram used both for the shared codebook and for
/// the per-block predictor decision.
inline std::vector<std::uint32_t> code_histogram(const std::vector<std::uint32_t>& codes,
                                                 std::uint32_t radius) {
  std::vector<std::uint32_t> hist(2ull * radius, 0);
  for (const std::uint32_t c : codes) ++hist[c];
  return hist;
}

/// Estimated storage cost of one quantized block in bits: the Shannon
/// bound on its Huffman substream plus the raw bytes of its outliers. An
/// approximation (the codebook is shared across blocks), but a pure
/// function of the block's own codes — which is what keeps the per-block
/// predictor choice, and hence the blob, independent of thread count.
template <typename T>
double block_cost_bits(const std::vector<std::uint32_t>& hist, std::size_t outliers,
                       std::size_t elems) {
  const double total = static_cast<double>(elems);
  double bits = 0.0;
  for (const std::uint32_t count : hist) {
    if (count > 0) {
      bits += static_cast<double>(count) * std::log2(total / static_cast<double>(count));
    }
  }
  return bits + static_cast<double>(outliers) * 8.0 * static_cast<double>(sizeof(T));
}

}  // namespace

template <typename T>
std::vector<std::uint8_t> compress(std::span<const T> data, const Dims& dims,
                                   const Params& params) {
  return compress<T>(data, dims, params, std::span<const T>{});
}

template <typename T>
std::vector<std::uint8_t> compress(std::span<const T> data, const Dims& dims,
                                   const Params& params, std::span<const T> prev,
                                   std::vector<T>* recon_out) {
  if (data.size() != dims.count() || data.empty()) {
    throw std::invalid_argument("sz: data size must equal dims.count() and be > 0");
  }
  const bool temporal = params.predictor == Predictor::kTemporal;
  if (temporal && prev.size() != data.size()) {
    throw std::invalid_argument("sz: temporal predictor needs a prev step of equal size");
  }
  if (!temporal && !prev.empty()) {
    throw std::invalid_argument("sz: prev step given but predictor is spatial");
  }
  const double eb = resolve_error_bound<T>(data, params);
  const std::vector<BlockRange> blocks = split_blocks(dims);
  const std::size_t n_blocks = blocks.size();
  util::trace::Span compress_span("compress", "sz", "bytes",
                                  data.size() * sizeof(T));

  // Stage 1: quantization + histogram. lorenzo_quantize_blocks runs
  // lockstep SIMD groups where the decomposition allows and writes the
  // spatial reconstruction straight into recon_out (series writers keep
  // it as the next temporal reference — blocks write disjoint slices, no
  // race), so compress never holds a second copy of the field. A
  // temporal compression then quantizes each block the delta way too and
  // keeps whichever entropy-codes smaller, so a block with a stale or
  // turbulent reference degrades to exactly the spatial cost.
  std::vector<std::vector<std::uint32_t>> hists(n_blocks);
  std::vector<Predictor> preds(n_blocks, Predictor::kSpatial);
  if (recon_out != nullptr) recon_out->resize(data.size());
  // The quantizer fills the spatial histograms itself, while each code
  // tile is still cache-resident — same counts as a separate pass.
  std::vector<QuantizeResult<T>> quants = lorenzo_quantize_blocks<T>(
      data, blocks, eb, params.radius, params.threads,
      recon_out != nullptr ? recon_out->data() : nullptr, hists);
  if (temporal) util::parallel_for(n_blocks, params.threads, [&](std::size_t b) {
    const BlockRange& blk = blocks[b];
    const auto block_data = data.subspan(blk.elem_offset, blk.dims.count());
    auto delta = temporal_quantize<T>(
        block_data, prev.subspan(blk.elem_offset, blk.dims.count()), eb, params.radius);
    auto delta_hist = code_histogram(delta.codes, params.radius);
    const double spatial_cost =
        block_cost_bits<T>(hists[b], quants[b].outliers.size(), block_data.size());
    const double delta_cost =
        block_cost_bits<T>(delta_hist, delta.outliers.size(), block_data.size());
    if (delta_cost < spatial_cost) {
      quants[b] = std::move(delta);
      hists[b] = std::move(delta_hist);
      preds[b] = Predictor::kTemporal;
      if (recon_out != nullptr) {
        std::copy(quants[b].recon.begin(), quants[b].recon.end(),
                  recon_out->begin() + static_cast<std::ptrdiff_t>(blk.elem_offset));
      }
    }
    std::vector<T>().swap(quants[b].recon);
  });

  // Stage 2: merge histograms into one shared canonical codebook. The
  // merge is a plain sum, so the codebook — and hence the whole blob — is
  // independent of how the blocks were scheduled.
  std::vector<std::uint64_t> counts(2ull * params.radius, 0);
  for (const auto& hist : hists) {
    for (std::size_t s = 0; s < hist.size(); ++s) counts[s] += hist[s];
  }
  hists.clear();
  std::vector<SymbolCount> freqs;
  for (std::uint32_t s = 0; s < counts.size(); ++s) {
    if (counts[s] > 0) freqs.push_back({s, counts[s]});
  }
  const HuffmanEncoder encoder(freqs);
  const std::vector<std::uint8_t> codebook = encoder.serialize_codebook();

  // Stage 3: per-block Huffman encoding into independent substreams. The
  // v4 block CRCs are taken here too, inside the parallel fan-out while
  // the substream is cache-hot — off the serial assembly path.
  std::vector<std::vector<std::uint8_t>> huffs(n_blocks);
  std::vector<std::uint32_t> block_crcs(n_blocks, 0);
  util::parallel_for(n_blocks, params.threads, [&](std::size_t b) {
    util::trace::Span span("huffman_encode", "sz", "block", b);
    util::BitWriter writer;
    writer.reserve_bytes(quants[b].codes.size() / 2);
    encoder.encode_all(quants[b].codes, writer);
    huffs[b] = writer.finish();
    if (params.checksum) {
      std::uint32_t c = util::crc32c(0, huffs[b].data(), huffs[b].size());
      c = util::crc32c(c, quants[b].outliers.data(),
                       quants[b].outliers.size() * sizeof(T));
      block_crcs[b] = c;
    }
  });

  // Stage 4: serial container assembly. With checksums off, a spatial
  // compression keeps emitting container v2 byte-for-byte and a temporal
  // one v3; with checksums on (the default) both emit v4, whose index
  // entries always carry the predictor byte plus the block CRC.
  const std::uint8_t version =
      params.checksum ? kVersionV4 : (temporal ? kVersionV3 : kVersionV2);
  const std::size_t entry_bytes =
      params.checksum ? kV4IndexEntryBytes
                      : (temporal ? kV3IndexEntryBytes : kV2IndexEntryBytes);
  std::uint64_t huff_total = 0, outlier_total = 0, symbol_total = 0;
  std::uint64_t temporal_blocks = 0;
  bool any_temporal = false;
  for (std::size_t b = 0; b < n_blocks; ++b) {
    huff_total += huffs[b].size();
    outlier_total += quants[b].outliers.size();
    symbol_total += quants[b].codes.size();
    if (preds[b] == Predictor::kTemporal) ++temporal_blocks;
    any_temporal = any_temporal || preds[b] == Predictor::kTemporal;
  }
  const std::size_t payload_size = codebook.size() +
                                   static_cast<std::size_t>(huff_total) +
                                   static_cast<std::size_t>(outlier_total) * sizeof(T);
  const std::size_t fixed_bytes =
      params.checksum ? kV4FixedHeaderBytes : kV2FixedHeaderBytes;
  const std::size_t header_size = fixed_bytes + n_blocks * entry_bytes;

  // The LZ stage only pays off when the Huffman stream still carries long
  // runs — i.e. at low bit-rates. Past ~20% of the original bit width the
  // entropy stage output is effectively incompressible, and running LZ
  // there would only drag the throughput floor down (SZ keeps its Fig.-5
  // band ~2x wide for the same reason: its zstd pass is cheap relative to
  // our from-scratch LZ, so we gate instead).
  const double payload_bits_per_val =
      8.0 * static_cast<double>(payload_size) / static_cast<double>(data.size());
  const bool lz_worthwhile = payload_bits_per_val < 0.2 * 8.0 * sizeof(T);

  std::uint8_t flags = any_temporal ? kFlagTemporal : std::uint8_t{0};
  // When the LZ stage is attempted the payload is pre-assembled; `stored`
  // then holds whichever of (LZ output, raw payload) won, so the losing
  // branch never re-concatenates the parts.
  std::vector<std::uint8_t> stored;
  bool have_stored = false;
  if (params.lossless && lz_worthwhile) {
    std::vector<std::uint8_t> payload;
    payload.reserve(payload_size);
    payload.insert(payload.end(), codebook.begin(), codebook.end());
    for (const auto& huff : huffs) payload.insert(payload.end(), huff.begin(), huff.end());
    for (const auto& quant : quants) {
      const auto* p = reinterpret_cast<const std::uint8_t*>(quant.outliers.data());
      payload.insert(payload.end(), p, p + quant.outliers.size() * sizeof(T));
    }
    std::vector<std::uint8_t> lz;
    {
      util::trace::Span span("lz", "sz", "bytes", payload.size());
      lz = lz_compress(payload);
    }
    if (lz.size() < payload.size()) {
      stored = std::move(lz);
      flags |= kFlagLz;
    } else {
      stored = std::move(payload);
    }
    have_stored = true;
  }

  // v4 integrity fields: the stored-payload CRC covers the bytes exactly
  // as they land in the container (post-LZ); without an LZ pass it is
  // chained over the sections to avoid materializing the payload twice.
  const std::uint64_t stored_size =
      have_stored ? stored.size() : static_cast<std::uint64_t>(payload_size);
  std::uint32_t codebook_crc = 0, stored_crc = 0;
  if (params.checksum) {
    codebook_crc = util::crc32c(0, codebook.data(), codebook.size());
    if (have_stored) {
      stored_crc = util::crc32c(0, stored.data(), stored.size());
    } else {
      std::uint32_t c = codebook_crc;
      for (const auto& huff : huffs) c = util::crc32c(c, huff.data(), huff.size());
      for (const auto& quant : quants) {
        c = util::crc32c(c, quant.outliers.data(), quant.outliers.size() * sizeof(T));
      }
      stored_crc = c;
    }
  }

  // Reserve the true final size up front; every append below lands in
  // place with no regrowth or second copy of the payload.
  std::vector<std::uint8_t> blob;
  blob.reserve(header_size + (have_stored ? stored.size() : payload_size));
  append_pod(blob, kMagic);
  append_pod(blob, version);
  append_pod(blob, static_cast<std::uint8_t>(dtype_of<T>()));
  append_pod(blob, flags);
  append_pod(blob, std::uint8_t{0});  // reserved
  append_pod(blob, static_cast<std::uint64_t>(dims.d0));
  append_pod(blob, static_cast<std::uint64_t>(dims.d1));
  append_pod(blob, static_cast<std::uint64_t>(dims.d2));
  append_pod(blob, eb);
  append_pod(blob, params.radius);
  append_pod(blob, outlier_total);
  append_pod(blob, static_cast<std::uint64_t>(codebook.size()));
  append_pod(blob, huff_total);
  append_pod(blob, static_cast<std::uint64_t>(payload_size));
  if (params.checksum) {
    append_pod(blob, stored_size);
    append_pod(blob, std::uint32_t{0});  // header_crc, patched below
    append_pod(blob, codebook_crc);
    append_pod(blob, stored_crc);
  }
  append_pod(blob, static_cast<std::uint32_t>(n_blocks));
  for (std::size_t b = 0; b < n_blocks; ++b) {
    append_pod(blob, static_cast<std::uint64_t>(blocks[b].dims.count()));
    append_pod(blob, static_cast<std::uint64_t>(huffs[b].size()));
    append_pod(blob, static_cast<std::uint64_t>(quants[b].outliers.size()));
    if (temporal || params.checksum) append_pod(blob, static_cast<std::uint8_t>(preds[b]));
    if (params.checksum) append_pod(blob, block_crcs[b]);
  }
  if (params.checksum) {
    // The header CRC is computed over the finished header with its own
    // field zeroed (it still is — the placeholder), then patched in.
    const std::uint32_t hcrc = header_crc_of(std::span(blob.data(), header_size));
    std::memcpy(blob.data() + kV4HeaderCrcOffset, &hcrc, sizeof(hcrc));
  }
  if (have_stored) {
    blob.insert(blob.end(), stored.begin(), stored.end());
  } else {
    blob.insert(blob.end(), codebook.begin(), codebook.end());
    for (const auto& huff : huffs) blob.insert(blob.end(), huff.begin(), huff.end());
    for (const auto& quant : quants) {
      const auto* p = reinterpret_cast<const std::uint8_t*>(quant.outliers.data());
      blob.insert(blob.end(), p, p + quant.outliers.size() * sizeof(T));
    }
  }
  {
    auto& reg = util::metrics::Registry::get();
    reg.sz_bytes_in.add(data.size() * sizeof(T));
    reg.sz_bytes_out.add(blob.size());
    reg.sz_blocks_encoded.add(n_blocks);
    reg.sz_temporal_blocks.add(temporal_blocks);
    reg.sz_outliers.add(outlier_total);
    reg.sz_huffman_symbols.add(symbol_total);
  }
  return blob;
}

namespace {

/// v1 (single-stream) decode: one Huffman stream and one outlier run over
/// the whole domain, exactly as the seed compressor wrote it.
template <typename T>
void decode_v1(const RawHeader& h, std::span<const std::uint8_t> payload,
               std::span<T> out) {
  std::size_t consumed = 0;
  HuffmanDecoder decoder(payload.subspan(0, h.codebook_size), &consumed);
  if (consumed != h.codebook_size) {
    throw std::runtime_error("sz: codebook size mismatch");
  }
  const std::size_t n = h.dims.count();
  util::BitReader reader(payload.subspan(h.codebook_size, h.huff_bytes));
  std::vector<std::uint32_t> codes(n);
  decoder.decode_run(reader, codes.data(), n);

  std::vector<T> outliers(h.outlier_count);
  const std::size_t outlier_off = h.codebook_size + h.huff_bytes;
  if (h.outlier_count > 0) {
    std::memcpy(outliers.data(), payload.data() + outlier_off,
                h.outlier_count * sizeof(T));
  }
  lorenzo_dequantize<T>(codes, outliers, h.dims, h.abs_eb, h.radius, out);
}

/// Per-block payload offsets (prefix sums over the block index).
struct BlockOffsets {
  std::vector<std::size_t> huff;
  std::vector<std::size_t> outlier;
};

BlockOffsets block_payload_offsets(const RawHeader& h, std::size_t elem_size) {
  BlockOffsets off;
  off.huff.resize(h.blocks.size());
  off.outlier.resize(h.blocks.size());
  std::size_t huff_cursor = h.codebook_size;
  std::size_t outlier_cursor = h.codebook_size + h.huff_bytes;
  for (std::size_t b = 0; b < h.blocks.size(); ++b) {
    off.huff[b] = huff_cursor;
    off.outlier[b] = outlier_cursor;
    huff_cursor += h.blocks[b].huff_bytes;
    outlier_cursor += h.blocks[b].outlier_count * elem_size;
  }
  return off;
}

/// Builds the shared Huffman decoder from the payload's codebook section.
HuffmanDecoder make_decoder(const RawHeader& h, std::span<const std::uint8_t> payload) {
  std::size_t consumed = 0;
  HuffmanDecoder decoder(payload.subspan(0, h.codebook_size), &consumed);
  if (consumed != h.codebook_size) {
    throw std::runtime_error("sz: codebook size mismatch");
  }
  return decoder;
}

/// True when any block needs the reconstructed reference step to decode.
bool needs_reference(const RawHeader& h) {
  for (const BlockEntry& e : h.blocks) {
    if (e.predictor == Predictor::kTemporal) return true;
  }
  return false;
}

/// Entropy-decodes one block's codes and copies out its outlier run.
template <typename T>
void decode_block_codes(const HuffmanDecoder& decoder,
                        std::span<const std::uint8_t> payload, const BlockEntry& entry,
                        std::size_t huff_off, std::size_t outlier_off, std::size_t n,
                        std::vector<std::uint32_t>& codes, std::vector<T>& outliers) {
  util::BitReader reader(payload.subspan(huff_off, entry.huff_bytes));
  codes.resize(n);
  {
    util::trace::Span span("huffman_decode", "sz", "symbols", n);
    decoder.decode_run(reader, codes.data(), n);
  }
  outliers.resize(entry.outlier_count);
  if (entry.outlier_count > 0) {
    std::memcpy(outliers.data(), payload.data() + outlier_off,
                entry.outlier_count * sizeof(T));
  }
  auto& reg = util::metrics::Registry::get();
  reg.sz_blocks_decoded.add();
  reg.sz_huffman_symbols.add(n);
}

/// Entropy-decodes and dequantizes one v2/v3 block into `out` (block-
/// local row-major order, blk.dims.count() elements). `prev` holds the
/// block's slice of the reference step for temporal blocks (empty for
/// spatial ones).
template <typename T>
void decode_block(const HuffmanDecoder& decoder, const RawHeader& h,
                  std::span<const std::uint8_t> payload, const BlockRange& blk,
                  const BlockEntry& entry, std::size_t huff_off,
                  std::size_t outlier_off, std::span<const T> prev, std::span<T> out) {
  std::vector<std::uint32_t> codes;
  std::vector<T> outliers;
  decode_block_codes<T>(decoder, payload, entry, huff_off, outlier_off,
                        blk.dims.count(), codes, outliers);
  util::trace::Span span("dequantize", "sz", "elems", blk.dims.count());
  if (entry.predictor == Predictor::kTemporal) {
    temporal_dequantize<T>(codes, outliers, prev, h.abs_eb, h.radius, out);
  } else {
    lorenzo_dequantize<T>(codes, outliers, blk.dims, h.abs_eb, h.radius, out);
  }
}

/// v2/v3 decode: blocks decode + dequantize independently (and in
/// parallel). `prev` is the full-field reference step, or empty when the
/// container has no temporal blocks.
template <typename T>
void decode_blocks(const RawHeader& h, std::span<const std::uint8_t> payload,
                   unsigned threads, std::span<const T> prev, std::span<T> out,
                   bool check_crcs) {
  const HuffmanDecoder decoder = make_decoder(h, payload);
  const std::vector<BlockRange> blocks = blocks_from_index(h);
  const BlockOffsets off = block_payload_offsets(h, sizeof(T));

  // Mirror of the quantize-side partition (lorenzo_quantize_blocks):
  // runs of consecutive spatial blocks with identical extents and
  // contiguous data — rounded down to the lane granularity, up to
  // lane_width() lanes — dequantize in SIMD lockstep; everything else —
  // singles, temporal blocks, the non-uniform tail — keeps the scalar
  // per-block path and all of its error semantics.
  struct Task {
    std::size_t first = 0;
    int count = 1;
  };
  std::vector<Task> tasks;
  tasks.reserve(blocks.size());
  const int w = kern::lane_width();
  const int g = kern::lane_granularity();
  std::size_t scan = 0;
  while (scan < blocks.size()) {
    int run = 0;
    if (w > 1 && h.radius <= kern::kLaneMaxRadius) {
      const std::size_t bc = blocks[scan].dims.count();
      if (bc > 0) {
        const int cap = static_cast<int>(
            std::min<std::size_t>(static_cast<std::size_t>(w), blocks.size() - scan));
        while (run < cap) {
          const std::size_t b = scan + static_cast<std::size_t>(run);
          const bool lockstep =
              h.blocks[b].predictor == Predictor::kSpatial &&
              blocks[b].dims.d0 == blocks[scan].dims.d0 &&
              blocks[b].dims.d1 == blocks[scan].dims.d1 &&
              blocks[b].dims.d2 == blocks[scan].dims.d2 &&
              blocks[b].elem_offset ==
                  blocks[scan].elem_offset + static_cast<std::size_t>(run) * bc;
          if (!lockstep) break;
          ++run;
        }
        run = (run / g) * g;
      }
    }
    const bool group = run >= g && run > 1;
    tasks.push_back({scan, group ? run : 1});
    scan += group ? static_cast<std::size_t>(run) : 1;
  }

  util::parallel_for(tasks.size(), threads, [&](std::size_t t) {
    const Task& task = tasks[t];
    if (task.count == 1) {
      const std::size_t b = task.first;
      const BlockRange& blk = blocks[b];
      if (check_crcs) {
        verify_block_crc(h, payload, b, off.huff[b], off.outlier[b], sizeof(T));
      }
      const std::span<const T> blk_prev =
          h.blocks[b].predictor == Predictor::kTemporal
              ? prev.subspan(blk.elem_offset, blk.dims.count())
              : std::span<const T>{};
      decode_block<T>(decoder, h, payload, blk, h.blocks[b], off.huff[b],
                      off.outlier[b], blk_prev,
                      out.subspan(blk.elem_offset, blk.dims.count()));
      return;
    }
    const std::size_t first = task.first;
    const std::size_t bc = blocks[first].dims.count();
    // Reused across tasks (and calls): decode_block_codes overwrites each
    // lane's codes and outliers in full, so retained capacity is safe and
    // saves a multi-MB allocation + zero-fill per task.
    static thread_local std::vector<std::vector<std::uint32_t>> codes;
    static thread_local std::vector<std::vector<T>> outliers;
    if (codes.size() < static_cast<std::size_t>(task.count)) {
      codes.resize(static_cast<std::size_t>(task.count));
      outliers.resize(static_cast<std::size_t>(task.count));
    }
    const std::uint32_t* cptr[kern::kMaxLanes] = {};
    std::span<const T> optr[kern::kMaxLanes];
    for (int l = 0; l < task.count; ++l) {
      const std::size_t b = first + static_cast<std::size_t>(l);
      if (check_crcs) {
        verify_block_crc(h, payload, b, off.huff[b], off.outlier[b], sizeof(T));
      }
      decode_block_codes<T>(decoder, payload, h.blocks[b], off.huff[b], off.outlier[b],
                            bc, codes[static_cast<std::size_t>(l)],
                            outliers[static_cast<std::size_t>(l)]);
      cptr[l] = codes[static_cast<std::size_t>(l)].data();
      optr[l] = outliers[static_cast<std::size_t>(l)];
    }
    util::trace::Span span("dequantize", "sz", "elems",
                           bc * static_cast<std::size_t>(task.count));
    kern::DequantizeBatch<T> batch;
    batch.codes = cptr;
    batch.outliers = optr;
    batch.bc = bc;
    batch.dims = blocks[first].dims;
    batch.eb = h.abs_eb;
    batch.radius = h.radius;
    batch.out = out.data() + blocks[first].elem_offset;
    batch.lanes = task.count;
    kern::dequantize_lanes<T>(batch);
  });
}

/// Resolves the stored section into the raw (pre-LZ) payload and checks
/// the three payload sections add up; `buf` owns the bytes when an LZ
/// expansion was needed.
std::span<const std::uint8_t> prepare_payload(const RawHeader& h,
                                              std::span<const std::uint8_t> blob,
                                              std::size_t elem_size,
                                              std::vector<std::uint8_t>& buf) {
  std::span<const std::uint8_t> payload = blob.subspan(h.header_end);
  if (h.version >= kVersionV4) {
    if (payload.size() < h.stored_size) throw std::runtime_error("sz: truncated payload");
    payload = payload.subspan(0, h.stored_size);
  }
  if (h.flags & kFlagLz) {
    // Plausibility cap before the expansion buffer is sized: one LZ input
    // byte cannot expand into more than kMaxLzExpansion output bytes, so
    // a crafted payload_raw_size can never drive a huge allocation.
    std::uint64_t expand_cap;
    if (__builtin_mul_overflow(static_cast<std::uint64_t>(payload.size()),
                               kMaxLzExpansion, &expand_cap) ||
        __builtin_add_overflow(expand_cap, kCapSlackBytes, &expand_cap) ||
        h.payload_raw_size > expand_cap) {
      throw std::runtime_error("sz: implausible LZ expansion");
    }
    util::trace::Span span("lz_expand", "sz", "bytes", payload.size());
    buf = lz_decompress(payload, h.payload_raw_size);
    payload = buf;
  }
  validate_payload_extent(h, elem_size, payload.size());
  return payload;
}

}  // namespace

template <typename T>
std::vector<T> decompress(std::span<const std::uint8_t> blob, Dims* dims_out,
                          unsigned threads, VerifyMode verify) {
  return decompress<T>(blob, std::span<const T>{}, dims_out, threads, verify);
}

template <typename T>
std::vector<T> decompress(std::span<const std::uint8_t> blob, std::span<const T> prev,
                          Dims* dims_out, unsigned threads, VerifyMode verify) {
  util::trace::Span decompress_span("decompress", "sz", "bytes", blob.size());
  const RawHeader h = parse_header(blob);
  if (h.dtype != dtype_of<T>()) {
    throw std::runtime_error("sz: element type mismatch");
  }
  const std::size_t n = element_count(h.dims);
  if (n == 0) throw std::runtime_error("sz: empty dims");
  if (!prev.empty() && prev.size() != n) {
    throw std::invalid_argument("sz: reference step size != stored element count");
  }
  if (prev.empty() && needs_reference(h)) {
    throw std::runtime_error("sz: temporal blob requires a reference step");
  }
  verify_before_decode(h, blob, verify);

  std::vector<std::uint8_t> payload_buf;
  const std::span<const std::uint8_t> payload =
      prepare_payload(h, blob, sizeof(T), payload_buf);

  const bool check_blocks = h.version >= kVersionV4 && verify == VerifyMode::kBlock;
  if (check_blocks) verify_codebook_crc(h, payload);
  std::vector<T> out(n);
  if (h.version == kVersionV1) {
    decode_v1<T>(h, payload, out);
  } else {
    decode_blocks<T>(h, payload, threads, prev, out, check_blocks);
  }
  if (dims_out != nullptr) *dims_out = h.dims;
  return out;
}

template <typename T>
std::vector<T> decompress_region(std::span<const std::uint8_t> blob, const Region& region,
                                 unsigned threads, RegionDecodeStats* stats,
                                 VerifyMode verify) {
  return decompress_region<T>(blob, region, std::span<const T>{}, threads, stats, verify);
}

template <typename T>
std::vector<T> decompress_region(std::span<const std::uint8_t> blob, const Region& region,
                                 std::span<const T> prev_region, unsigned threads,
                                 RegionDecodeStats* stats, VerifyMode verify) {
  util::trace::Span region_span("decompress_region", "sz", "bytes", blob.size());
  const RawHeader h = parse_header(blob);
  if (h.dtype != dtype_of<T>()) {
    throw std::runtime_error("sz: element type mismatch");
  }
  if (element_count(h.dims) == 0) throw std::runtime_error("sz: empty dims");
  validate_region(region, h.dims);
  if (!prev_region.empty() && prev_region.size() != region.count()) {
    throw std::invalid_argument("sz: reference region size != region element count");
  }
  verify_before_decode(h, blob, verify);
  const bool check_blocks = h.version >= kVersionV4 && verify == VerifyMode::kBlock;

  RegionDecodeStats local;
  local.blocks_total = h.version == kVersionV1 ? 1 : h.blocks.size();

  std::vector<T> out(region.count());
  if (region.empty()) {
    if (stats != nullptr) *stats = local;
    return out;
  }

  std::vector<std::uint8_t> payload_buf;
  const std::span<const std::uint8_t> payload =
      prepare_payload(h, blob, sizeof(T), payload_buf);
  if (check_blocks) verify_codebook_crc(h, payload);

  if (h.version == kVersionV1) {
    // v1 has one monolithic Huffman stream: no random access is possible,
    // so old blobs decode fully and the request is sliced out.
    std::vector<T> full(element_count(h.dims));
    decode_v1<T>(h, payload, full);
    for_each_region_row(region, h.dims, [&](std::size_t g, std::size_t len,
                                            std::size_t o) {
      std::memcpy(out.data() + o, full.data() + g, len * sizeof(T));
    });
    local.blocks_decoded = 1;
    if (stats != nullptr) *stats = local;
    return out;
  }

  const HuffmanDecoder decoder = make_decoder(h, payload);
  const std::vector<BlockRange> blocks = blocks_from_index(h);
  const BlockOffsets off = block_payload_offsets(h, sizeof(T));

  // Blocks are slabs along one axis, so "does block b overlap the
  // request" is a 1-D interval test along that axis.
  const int axis = slowest_nonunit_axis(h.dims);
  struct NeededBlock {
    std::size_t b = 0;
    Region isect;  // region ∩ block box, in field coordinates
  };
  std::vector<NeededBlock> needed;
  std::size_t begin = 0;
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    const std::size_t len = extent(blocks[b].dims, axis);
    Region box = Region::of(h.dims);
    box.lo[axis] = begin;
    box.hi[axis] = begin + len;
    begin += len;
    const Region isect = intersect(region, box);
    if (!isect.empty()) needed.push_back({b, isect});
  }
  local.blocks_decoded = needed.size();
  local.used_block_index = true;

  for (const NeededBlock& nb : needed) {
    if (h.blocks[nb.b].predictor == Predictor::kTemporal && prev_region.empty()) {
      throw std::runtime_error("sz: temporal blob requires a reference step");
    }
  }

  // Each needed block decodes, then its share of the request lands in
  // `out`. Blocks cover disjoint rows of the output, so the parallel
  // writes never alias. Spatial blocks dequantize whole into a scratch
  // buffer (the Lorenzo stencil chains through the block) and scatter;
  // temporal blocks are point-wise, so after the (inherently sequential)
  // entropy decode only the selected rows are dequantized, against the
  // matching rows of prev_region.
  const auto st = strides_of(h.dims);
  const std::size_t rd1 = region.hi[1] - region.lo[1];
  const std::size_t rd2 = region.hi[2] - region.lo[2];
  util::parallel_for(needed.size(), threads, [&](std::size_t i) {
    const NeededBlock& nb = needed[i];
    const BlockRange& blk = blocks[nb.b];
    const BlockEntry& entry = h.blocks[nb.b];
    if (check_blocks) {
      verify_block_crc(h, payload, nb.b, off.huff[nb.b], off.outlier[nb.b], sizeof(T));
    }
    const Region& is = nb.isect;
    const std::size_t zlen = is.hi[2] - is.lo[2];
    if (entry.predictor == Predictor::kSpatial) {
      std::vector<T> buf(blk.dims.count());
      decode_block<T>(decoder, h, payload, blk, entry, off.huff[nb.b],
                      off.outlier[nb.b], std::span<const T>{}, buf);
      for (std::size_t x = is.lo[0]; x < is.hi[0]; ++x) {
        for (std::size_t y = is.lo[1]; y < is.hi[1]; ++y) {
          const std::size_t g = x * st[0] + y * st[1] + is.lo[2];
          const std::size_t o = ((x - region.lo[0]) * rd1 + (y - region.lo[1])) * rd2 +
                                (is.lo[2] - region.lo[2]);
          std::memcpy(out.data() + o, buf.data() + (g - blk.elem_offset),
                      zlen * sizeof(T));
        }
      }
      return;
    }
    std::vector<std::uint32_t> codes;
    std::vector<T> outliers;
    decode_block_codes<T>(decoder, payload, entry, off.huff[nb.b], off.outlier[nb.b],
                          blk.dims.count(), codes, outliers);
    // Walk the selected rows in ascending block-local order, carrying the
    // outlier cursor across the skipped spans (outliers are stored in
    // whole-block order; skipping is just counting their code-0 markers).
    // Rows are contiguous in codes, prev_region, and out, so each one is
    // a temporal dequantize range and takes the dispatched point kernel.
    // The tail walk pins the outlier count so a corrupt substream fails
    // loudly instead of mis-scattering.
    std::size_t cursor = 0, k = 0;
    auto skip_to = [&](std::size_t target) {
      k += static_cast<std::size_t>(
          std::count(codes.begin() + static_cast<std::ptrdiff_t>(cursor),
                     codes.begin() + static_cast<std::ptrdiff_t>(target), 0u));
      cursor = target;
    };
    for (std::size_t x = is.lo[0]; x < is.hi[0]; ++x) {
      for (std::size_t y = is.lo[1]; y < is.hi[1]; ++y) {
        const std::size_t g = x * st[0] + y * st[1] + is.lo[2];
        const std::size_t l = g - blk.elem_offset;
        const std::size_t o = ((x - region.lo[0]) * rd1 + (y - region.lo[1])) * rd2 +
                              (is.lo[2] - region.lo[2]);
        skip_to(l);
        if (!kern::temporal_dequant_range<T>(codes.data() + l, prev_region.data() + o,
                                             out.data() + o, zlen,
                                             std::span<const T>(outliers), k, h.abs_eb,
                                             h.radius)) {
          throw std::runtime_error("sz: outlier underrun");
        }
        cursor = l + zlen;
      }
    }
    skip_to(codes.size());
    if (k != outliers.size()) {
      throw std::runtime_error("sz: outlier overrun");
    }
  });

  if (stats != nullptr) *stats = local;
  return out;
}

std::vector<BlockInfo> inspect_blocks(std::span<const std::uint8_t> blob) {
  const RawHeader h = parse_header(blob);
  std::vector<BlockInfo> out;
  if (h.version == kVersionV1) {
    out.push_back({element_count(h.dims), h.huff_bytes, h.outlier_count,
                   Predictor::kSpatial});
    return out;
  }
  out.reserve(h.blocks.size());
  for (const BlockEntry& e : h.blocks) {
    out.push_back({e.elem_count, e.huff_bytes, e.outlier_count, e.predictor});
  }
  return out;
}

HeaderInfo inspect(std::span<const std::uint8_t> blob) {
  const RawHeader h = parse_header(blob);
  HeaderInfo info;
  info.dtype = h.dtype;
  info.dims = h.dims;
  info.abs_error_bound = h.abs_eb;
  info.radius = h.radius;
  info.outlier_count = h.outlier_count;
  info.lz_applied = (h.flags & kFlagLz) != 0;
  info.payload_raw_size = h.payload_raw_size;
  info.header_size = h.header_end;
  info.version = h.version;
  info.block_count =
      h.version == kVersionV1 ? 1 : static_cast<std::uint32_t>(h.blocks.size());
  for (const BlockEntry& e : h.blocks) {
    info.temporal_blocks += e.predictor == Predictor::kTemporal ? 1 : 0;
  }
  info.checksummed = h.version >= kVersionV4;
  return info;
}

BlobVerifyReport verify_blob(std::span<const std::uint8_t> blob, bool deep) {
  BlobVerifyReport r;
  RawHeader h;
  try {
    h = parse_header(blob);
  } catch (const std::exception& e) {
    r.detail = e.what();
    return r;
  }
  r.parsed = true;
  r.version = h.version;
  r.checksummed = h.version >= kVersionV4;
  const std::size_t esize = h.elem_size();
  // A failed stored CRC is only deferred (not returned) in deep mode so
  // the per-block pass below can localize the damage first.
  std::string stored_fail;
  try {
    if (r.checksummed) {
      verify_header_crc(h, blob);
      try {
        verify_stored_crc(h, blob);  // includes the truncation check
      } catch (const std::exception& e) {
        if (!deep) {
          r.detail = e.what();
          return r;
        }
        stored_fail = e.what();
      }
    } else if (!(h.flags & kFlagLz)) {
      // Legacy blobs carry no CRCs; check what structure allows — the
      // stored extent against the actual bytes. (LZ blobs validate their
      // length only on expansion, which scrub's cheap pass skips.)
      validate_payload_extent(h, esize, blob.size() - h.header_end);
    }
  } catch (const std::exception& e) {
    r.detail = e.what();
    return r;
  }
  if (deep) {
    try {
      // Expanding the LZ stage also validates legacy (pre-v4) LZ blobs,
      // whose stored extent the cheap pass cannot check without it.
      std::vector<std::uint8_t> buf;
      const std::span<const std::uint8_t> payload = prepare_payload(h, blob, esize, buf);
      if (r.checksummed) {
        try {
          verify_codebook_crc(h, payload);
        } catch (const std::exception& e) {
          r.detail = e.what();
          return r;
        }
        const BlockOffsets off = block_payload_offsets(h, esize);
        for (std::size_t b = 0; b < h.blocks.size(); ++b) {
          try {
            verify_block_crc(h, payload, b, off.huff[b], off.outlier[b], esize);
          } catch (const std::exception& e) {
            r.damaged_blocks.push_back(static_cast<std::uint32_t>(b));
            if (r.detail.empty()) r.detail = e.what();
          }
        }
        if (!r.damaged_blocks.empty()) return r;
      }
    } catch (const std::exception& e) {
      r.detail = e.what();
      return r;
    }
  }
  if (!stored_fail.empty()) {
    // Damage in the stored (LZ) stream that no block CRC maps back to —
    // e.g. a flipped match offset whose expansion happens to reproduce
    // the same bytes. Still corruption; still reported.
    r.detail = stored_fail;
    return r;
  }
  r.ok = true;
  return r;
}

template double resolve_error_bound<float>(std::span<const float>, const Params&);
template double resolve_error_bound<double>(std::span<const double>, const Params&);
template std::vector<std::uint8_t> compress<float>(std::span<const float>, const Dims&,
                                                   const Params&);
template std::vector<std::uint8_t> compress<double>(std::span<const double>, const Dims&,
                                                    const Params&);
template std::vector<std::uint8_t> compress<float>(std::span<const float>, const Dims&,
                                                   const Params&, std::span<const float>,
                                                   std::vector<float>*);
template std::vector<std::uint8_t> compress<double>(std::span<const double>, const Dims&,
                                                    const Params&, std::span<const double>,
                                                    std::vector<double>*);
template std::vector<float> decompress<float>(std::span<const std::uint8_t>, Dims*,
                                              unsigned, VerifyMode);
template std::vector<double> decompress<double>(std::span<const std::uint8_t>, Dims*,
                                                unsigned, VerifyMode);
template std::vector<float> decompress<float>(std::span<const std::uint8_t>,
                                              std::span<const float>, Dims*, unsigned,
                                              VerifyMode);
template std::vector<double> decompress<double>(std::span<const std::uint8_t>,
                                                std::span<const double>, Dims*, unsigned,
                                                VerifyMode);
template std::vector<float> decompress_region<float>(std::span<const std::uint8_t>,
                                                     const Region&, unsigned,
                                                     RegionDecodeStats*, VerifyMode);
template std::vector<double> decompress_region<double>(std::span<const std::uint8_t>,
                                                       const Region&, unsigned,
                                                       RegionDecodeStats*, VerifyMode);
template std::vector<float> decompress_region<float>(std::span<const std::uint8_t>,
                                                     const Region&, std::span<const float>,
                                                     unsigned, RegionDecodeStats*,
                                                     VerifyMode);
template std::vector<double> decompress_region<double>(std::span<const std::uint8_t>,
                                                       const Region&,
                                                       std::span<const double>, unsigned,
                                                       RegionDecodeStats*, VerifyMode);

}  // namespace pcw::sz
