// AVX2 kernel instantiations: up to 16 blocks per lane batch in ymm
// halves of 4 doubles. Compiled with -mavx2 -ffp-contract=off -O3
// (src/CMakeLists.txt); see kernels_impl.h for why plain C++ under
// per-file flags is the whole trick.
#define PCW_KERNEL_NS avx2
#define PCW_KERNEL_WIDTH 16
#include "sz/kernels_impl.h"
