#include "sz/lossless.h"

#include <bit>
#include <cstring>
#include <stdexcept>

namespace pcw::sz {
namespace {

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxOffset = 65535;
constexpr int kHashBits = 16;
constexpr std::size_t kHashSize = std::size_t{1} << kHashBits;
constexpr int kMaxChainDepth = 16;  // hash-chain probe limit: speed/ratio knob

std::uint32_t load32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

std::uint32_t hash4(std::uint32_t v) {
  return (v * 2654435761u) >> (32 - kHashBits);
}

void put_extended_length(std::vector<std::uint8_t>& out, std::size_t len) {
  while (len >= 255) {
    out.push_back(255);
    len -= 255;
  }
  out.push_back(static_cast<std::uint8_t>(len));
}

std::size_t get_extended_length(std::span<const std::uint8_t> in, std::size_t& pos) {
  std::size_t len = 0;
  for (;;) {
    if (pos >= in.size()) throw std::runtime_error("lz: truncated length");
    const std::uint8_t b = in[pos++];
    len += b;
    if (b != 255) return len;
  }
}

}  // namespace

std::vector<std::uint8_t> lz_compress(std::span<const std::uint8_t> input) {
  std::vector<std::uint8_t> out;
  out.reserve(input.size() / 2 + 64);
  const std::size_t n = input.size();
  const std::uint8_t* src = input.data();

  // head[h]: most recent position with hash h; chain[i]: previous position
  // with the same hash as i. Positions stored +1 so 0 means "none". Both
  // tables are reused across calls; head is reset each call, but chain
  // needs no clearing — every position reachable through head was
  // inserted this call, and insertion writes chain[pos] first, so stale
  // entries from earlier buffers are never read.
  static thread_local std::vector<std::uint32_t> head;
  static thread_local std::vector<std::uint32_t> chain;
  head.assign(kHashSize, 0);
  if (chain.size() < n) chain.resize(n);

  // Exact length of the common prefix of src[a..] and src[b..], capped at
  // `limit` — word-at-a-time with a ctz on the first differing word, same
  // value as the byte loop.
  auto match_len = [src](std::size_t a, std::size_t b, std::size_t limit) {
    std::size_t len = 0;
    if constexpr (std::endian::native == std::endian::little) {
      while (len + 8 <= limit) {
        std::uint64_t x, y;
        std::memcpy(&x, src + a + len, 8);
        std::memcpy(&y, src + b + len, 8);
        const std::uint64_t diff = x ^ y;
        if (diff != 0) {
          return len + (static_cast<std::size_t>(std::countr_zero(diff)) >> 3);
        }
        len += 8;
      }
    }
    while (len < limit && src[a + len] == src[b + len]) ++len;
    return len;
  };

  std::size_t pos = 0;
  std::size_t literal_start = 0;

  auto emit_sequence = [&](std::size_t lit_len, std::size_t match_len,
                           std::size_t offset, bool final_literals) {
    const std::size_t lit_token = lit_len < 15 ? lit_len : 15;
    std::size_t match_token = 0;
    if (!final_literals) {
      const std::size_t m = match_len - kMinMatch;
      match_token = m < 15 ? m : 15;
    }
    out.push_back(static_cast<std::uint8_t>((lit_token << 4) | match_token));
    if (lit_token == 15) put_extended_length(out, lit_len - 15);
    out.insert(out.end(), src + literal_start, src + literal_start + lit_len);
    if (final_literals) return;
    out.push_back(static_cast<std::uint8_t>(offset & 0xff));
    out.push_back(static_cast<std::uint8_t>(offset >> 8));
    if (match_token == 15) put_extended_length(out, match_len - kMinMatch - 15);
  };

  while (pos + kMinMatch <= n) {
    const std::uint32_t h = hash4(load32(src + pos));
    std::size_t best_len = 0;
    std::size_t best_offset = 0;
    std::uint32_t candidate = head[h];
    for (int depth = 0; depth < kMaxChainDepth && candidate != 0; ++depth) {
      const std::size_t cand_pos = candidate - 1;
      const std::size_t offset = pos - cand_pos;
      if (offset > kMaxOffset) break;  // chain is ordered; older ones are farther
      // Cheap reject: compare the byte just past the current best.
      if (best_len == 0 ||
          (pos + best_len < n && src[cand_pos + best_len] == src[pos + best_len])) {
        const std::size_t len = match_len(cand_pos, pos, n - pos);
        if (len > best_len) {
          best_len = len;
          best_offset = offset;
        }
      }
      candidate = chain[cand_pos];
    }

    if (best_len >= kMinMatch) {
      emit_sequence(pos - literal_start, best_len, best_offset, false);
      // Insert hash entries across the match so later data can reference
      // its interior; stride 1 would be thorough but slow, stride 2 is a
      // good ratio/speed compromise for Huffman-stream inputs.
      const std::size_t match_end = pos + best_len;
      for (; pos + kMinMatch <= match_end && pos + kMinMatch <= n; pos += 2) {
        const std::uint32_t hh = hash4(load32(src + pos));
        chain[pos] = head[hh];
        head[hh] = static_cast<std::uint32_t>(pos + 1);
      }
      pos = match_end;
      literal_start = pos;
    } else {
      chain[pos] = head[h];
      head[h] = static_cast<std::uint32_t>(pos + 1);
      ++pos;
    }
  }

  // Trailing literal-only sequence (possibly empty — still emitted so the
  // decoder can detect completion by consuming all input).
  emit_sequence(n - literal_start, 0, 0, true);
  return out;
}

std::vector<std::uint8_t> lz_decompress(std::span<const std::uint8_t> input,
                                        std::size_t expected_size) {
  std::vector<std::uint8_t> out;
  out.reserve(expected_size);
  std::size_t pos = 0;
  while (pos < input.size()) {
    const std::uint8_t token = input[pos++];
    std::size_t lit_len = token >> 4;
    if (lit_len == 15) lit_len += get_extended_length(input, pos);
    if (pos + lit_len > input.size()) throw std::runtime_error("lz: truncated literals");
    out.insert(out.end(), input.begin() + static_cast<std::ptrdiff_t>(pos),
               input.begin() + static_cast<std::ptrdiff_t>(pos + lit_len));
    pos += lit_len;
    if (pos >= input.size()) break;  // final literal-only sequence
    if (pos + 2 > input.size()) throw std::runtime_error("lz: truncated offset");
    const std::size_t offset = input[pos] | (static_cast<std::size_t>(input[pos + 1]) << 8);
    pos += 2;
    std::size_t match_len = (token & 0x0f) + kMinMatch;
    if ((token & 0x0f) == 15) match_len += get_extended_length(input, pos);
    if (offset == 0 || offset > out.size()) throw std::runtime_error("lz: bad offset");
    // Byte-by-byte copy: overlapping matches (offset < match_len) are the
    // run-length case and must replicate progressively.
    std::size_t from = out.size() - offset;
    for (std::size_t i = 0; i < match_len; ++i) out.push_back(out[from + i]);
  }
  if (out.size() != expected_size) throw std::runtime_error("lz: size mismatch");
  return out;
}

}  // namespace pcw::sz
