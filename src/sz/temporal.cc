#include "sz/temporal.h"

#include <cmath>
#include <stdexcept>

#include "sz/kernels.h"

namespace pcw::sz {

template <typename T>
QuantizeResult<T> temporal_quantize(std::span<const T> data, std::span<const T> prev,
                                    double eb, std::uint32_t radius) {
  if (prev.size() != data.size()) {
    throw std::invalid_argument("temporal_quantize: prev size != data size");
  }
  if (eb <= 0.0) throw std::invalid_argument("temporal_quantize: eb must be > 0");
  if (radius < 2) throw std::invalid_argument("temporal_quantize: radius must be >= 2");

  QuantizeResult<T> result;
  result.codes.resize(data.size());
  result.recon.resize(data.size());

  // The point-wise loop vectorizes directly; the kernel layer owns the
  // dispatched variants and produces bytes identical to the loop below,
  // which stays as the scalar reference (and the PCW_SIMD=off path).
  if (kern::try_temporal_quantize<T>(data.data(), prev.data(), data.size(), eb, radius,
                                     result.codes.data(), result.outliers,
                                     result.recon.data())) {
    return result;
  }

  const double twice_eb = 2.0 * eb;
  const auto r = static_cast<long long>(radius);
  const auto max_q = static_cast<long long>(radius) - 1;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const double orig = static_cast<double>(data[i]);
    const double pred = static_cast<double>(prev[i]);
    const double scaled = (orig - pred) / twice_eb;
    bool predictable = std::abs(scaled) <= static_cast<double>(max_q);
    long long q = 0;
    double rec = 0.0;
    if (predictable) {
      q = std::llround(scaled);
      rec = pred + static_cast<double>(q) * twice_eb;
      // Same storage-precision check as the Lorenzo quantizer: the decoder
      // reproduces T(rec), so the bound must survive the narrowing.
      predictable = std::abs(static_cast<double>(static_cast<T>(rec)) - orig) <= eb;
    }
    if (predictable) {
      result.codes[i] = static_cast<std::uint32_t>(q + r);
      result.recon[i] = static_cast<T>(rec);
    } else {
      result.codes[i] = 0;
      result.outliers.push_back(data[i]);
      result.recon[i] = data[i];
    }
  }
  return result;
}

template <typename T>
void temporal_dequantize(std::span<const std::uint32_t> codes,
                         std::span<const T> outliers, std::span<const T> prev,
                         double eb, std::uint32_t radius, std::span<T> out) {
  if (prev.size() != codes.size() || out.size() != codes.size()) {
    throw std::invalid_argument("temporal_dequantize: size mismatch");
  }
  std::size_t next_outlier = 0;
  if (!kern::temporal_dequant_range<T>(codes.data(), prev.data(), out.data(),
                                       codes.size(), outliers, next_outlier, eb,
                                       radius)) {
    throw std::runtime_error("temporal_dequantize: outlier underrun");
  }
  if (next_outlier != outliers.size()) {
    throw std::runtime_error("temporal_dequantize: outlier overrun");
  }
}

template QuantizeResult<float> temporal_quantize<float>(std::span<const float>,
                                                        std::span<const float>, double,
                                                        std::uint32_t);
template QuantizeResult<double> temporal_quantize<double>(std::span<const double>,
                                                          std::span<const double>, double,
                                                          std::uint32_t);
template void temporal_dequantize<float>(std::span<const std::uint32_t>,
                                         std::span<const float>, std::span<const float>,
                                         double, std::uint32_t, std::span<float>);
template void temporal_dequantize<double>(std::span<const std::uint32_t>,
                                          std::span<const double>, std::span<const double>,
                                          double, std::uint32_t, std::span<double>);

}  // namespace pcw::sz
