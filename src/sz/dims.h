// Dataset extents and hyperslab regions. Row-major C order with the last
// dimension fastest, matching how Nyx/VPIC field arrays are laid out on
// disk.
//
// The checked helpers here (element_count, strides_of, clamp_region,
// covering_region, ...) are the single authority for extent/stride
// arithmetic; the compressor, the block splitter, and the h5 read path
// all share them instead of re-deriving the math per layer.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <stdexcept>

namespace pcw::sz {

struct Dims {
  // d0 is the slowest-varying dimension, d2 the fastest. 1-D data is
  // {1, 1, n}; 2-D data is {1, rows, cols}.
  std::size_t d0 = 1;
  std::size_t d1 = 1;
  std::size_t d2 = 1;

  static Dims make_1d(std::size_t n) { return {1, 1, n}; }
  static Dims make_2d(std::size_t rows, std::size_t cols) { return {1, rows, cols}; }
  static Dims make_3d(std::size_t x, std::size_t y, std::size_t z) { return {x, y, z}; }

  std::size_t count() const { return d0 * d1 * d2; }

  /// Number of dimensions with extent > 1 (minimum 1).
  int rank() const {
    int r = (d0 > 1) + (d1 > 1) + (d2 > 1);
    return r == 0 ? 1 : r;
  }

  bool operator==(const Dims&) const = default;
};

/// dims.count() with overflow checking. Parsing paths feed untrusted
/// extents through this so crafted headers cannot wrap the element count
/// into a small allocation.
inline std::size_t element_count(const Dims& dims) {
  std::size_t n = 0;
  if (__builtin_mul_overflow(dims.d0, dims.d1, &n) ||
      __builtin_mul_overflow(n, dims.d2, &n)) {
    throw std::overflow_error("sz: element count overflows size_t");
  }
  return n;
}

/// Row-major strides in elements: one step along axis a advances the flat
/// index by strides_of(dims)[a].
inline std::array<std::size_t, 3> strides_of(const Dims& dims) {
  return {dims.d1 * dims.d2, dims.d2, 1};
}

/// The slowest-varying axis with extent > 1 (2 when all extents are 1):
/// the axis split_blocks slabs the field along.
inline int slowest_nonunit_axis(const Dims& dims) {
  return dims.d0 > 1 ? 0 : (dims.d1 > 1 ? 1 : 2);
}

inline std::size_t extent(const Dims& dims, int axis) {
  return axis == 0 ? dims.d0 : (axis == 1 ? dims.d1 : dims.d2);
}

/// Half-open axis-aligned box [lo, hi) in Dims coordinates. lo == hi on
/// any axis makes the selection empty (a valid degenerate request).
struct Region {
  std::array<std::size_t, 3> lo{0, 0, 0};
  std::array<std::size_t, 3> hi{0, 0, 0};

  /// The whole field.
  static Region of(const Dims& d) { return {{0, 0, 0}, {d.d0, d.d1, d.d2}}; }

  bool empty() const { return hi[0] <= lo[0] || hi[1] <= lo[1] || hi[2] <= lo[2]; }

  /// Box extents; all-zero when empty, never partially zero.
  Dims extents() const {
    if (empty()) return Dims{0, 0, 0};
    return Dims{hi[0] - lo[0], hi[1] - lo[1], hi[2] - lo[2]};
  }

  std::size_t count() const { return empty() ? 0 : element_count(extents()); }

  bool operator==(const Region&) const = default;
};

/// Throws std::invalid_argument unless lo <= hi <= extents on every axis.
/// lo == hi (an empty selection) is valid; an inverted or out-of-bounds
/// request is a caller bug, never silently clipped.
inline void validate_region(const Region& r, const Dims& dims) {
  const std::array<std::size_t, 3> ext{dims.d0, dims.d1, dims.d2};
  for (int a = 0; a < 3; ++a) {
    if (r.lo[a] > r.hi[a]) {
      throw std::invalid_argument("sz: region lo exceeds hi");
    }
    if (r.hi[a] > ext[a]) {
      throw std::invalid_argument("sz: region exceeds field extents");
    }
  }
}

/// Clamps a request into the field box: lo and hi are cut to the extents
/// and ordered, so the result always passes validate_region.
inline Region clamp_region(const Region& r, const Dims& dims) {
  const std::array<std::size_t, 3> ext{dims.d0, dims.d1, dims.d2};
  Region out;
  for (int a = 0; a < 3; ++a) {
    out.lo[a] = std::min(r.lo[a], ext[a]);
    out.hi[a] = std::min(std::max(r.hi[a], out.lo[a]), ext[a]);
  }
  return out;
}

/// Box intersection; disjoint inputs produce an empty (lo == hi) result.
inline Region intersect(const Region& a, const Region& b) {
  Region out;
  for (int ax = 0; ax < 3; ++ax) {
    out.lo[ax] = std::max(a.lo[ax], b.lo[ax]);
    out.hi[ax] = std::max(out.lo[ax], std::min(a.hi[ax], b.hi[ax]));
  }
  return out;
}

/// Flat index of the region's lowest corner.
inline std::size_t region_flat_lo(const Region& r, const Dims& dims) {
  const auto st = strides_of(dims);
  return r.lo[0] * st[0] + r.lo[1] * st[1] + r.lo[2];
}

/// Smallest box of `dims` covering the flat interval [flat_lo, flat_hi).
/// The result is plane- or row-aligned, so it is itself one contiguous
/// flat range starting at region_flat_lo(result) — which is what lets a
/// decoded covering box be indexed by plain flat-offset subtraction.
inline Region covering_region(const Dims& dims, std::size_t flat_lo, std::size_t flat_hi) {
  if (flat_lo > flat_hi || flat_hi > element_count(dims)) {
    throw std::invalid_argument("sz: flat interval out of range");
  }
  Region r = Region::of(dims);
  if (flat_lo == flat_hi) {
    r.hi = r.lo;
    return r;
  }
  const auto st = strides_of(dims);
  const std::size_t plane = st[0], row = st[1];
  r.lo[0] = flat_lo / plane;
  r.hi[0] = (flat_hi - 1) / plane + 1;
  if (r.hi[0] - r.lo[0] == 1) {
    const std::size_t a = flat_lo - r.lo[0] * plane;
    const std::size_t b = flat_hi - r.lo[0] * plane;
    r.lo[1] = a / row;
    r.hi[1] = (b - 1) / row + 1;
    if (r.hi[1] - r.lo[1] == 1) {
      r.lo[2] = a - r.lo[1] * row;
      r.hi[2] = b - r.lo[1] * row;
    }
  }
  return r;
}

/// Calls fn(flat_start, len, region_offset) for every contiguous row of
/// the region, in row-major order. flat_start indexes the full dims box;
/// region_offset indexes the region's own row-major buffer.
template <typename Fn>
void for_each_region_row(const Region& r, const Dims& dims, Fn&& fn) {
  if (r.empty()) return;
  const auto st = strides_of(dims);
  const std::size_t len = r.hi[2] - r.lo[2];
  std::size_t out = 0;
  for (std::size_t x = r.lo[0]; x < r.hi[0]; ++x) {
    for (std::size_t y = r.lo[1]; y < r.hi[1]; ++y) {
      fn(x * st[0] + y * st[1] + r.lo[2], len, out);
      out += len;
    }
  }
}

}  // namespace pcw::sz
