// Dataset extents. Row-major C order with the last dimension fastest,
// matching how Nyx/VPIC field arrays are laid out on disk.
#pragma once

#include <array>
#include <cstddef>

namespace pcw::sz {

struct Dims {
  // d0 is the slowest-varying dimension, d2 the fastest. 1-D data is
  // {1, 1, n}; 2-D data is {1, rows, cols}.
  std::size_t d0 = 1;
  std::size_t d1 = 1;
  std::size_t d2 = 1;

  static Dims make_1d(std::size_t n) { return {1, 1, n}; }
  static Dims make_2d(std::size_t rows, std::size_t cols) { return {1, rows, cols}; }
  static Dims make_3d(std::size_t x, std::size_t y, std::size_t z) { return {x, y, z}; }

  std::size_t count() const { return d0 * d1 * d2; }

  /// Number of dimensions with extent > 1 (minimum 1).
  int rank() const {
    int r = (d0 > 1) + (d1 > 1) + (d2 > 1);
    return r == 0 ? 1 : r;
  }

  bool operator==(const Dims&) const = default;
};

}  // namespace pcw::sz
