// Lorenzo prediction + error-bounded linear quantization.
//
// This is the decorrelation stage of the pcw::sz compressor, matching the
// structure of SZ's "best-fit" default path:
//   * each point is predicted from already-reconstructed neighbours
//     (1-, 2- or 3-D Lorenzo stencil, zero-padded at boundaries),
//   * the prediction residual is quantized to an integer multiple of
//     2*error_bound,
//   * residuals outside the bounded codebook (|q| >= radius) fall back to
//     storing the raw value ("unpredictable data" in SZ terminology).
//
// Predicting from *reconstructed* values — not originals — is what makes
// the point-wise error bound compose: every reconstructed neighbour is
// itself within eb of its original, and the quantizer re-centres on the
// actual prediction each step, so |recon - orig| <= eb holds point-wise.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sz/dims.h"

namespace pcw::sz {

/// Quantization-code alphabet: code 0 marks an unpredictable point whose
/// raw value is stored in `outliers`; codes [1, 2*radius-1] encode the
/// signed residual q = code - radius.
template <typename T>
struct QuantizeResult {
  std::vector<std::uint32_t> codes;  // one per input point
  std::vector<T> outliers;           // raw values of code==0 points, in order
  /// The reconstruction the decompressor will reproduce, bit for bit. The
  /// quantizer computes it anyway (predictions come from reconstructed
  /// neighbours); exporting it lets the time-series writer keep the
  /// decoded step as the next temporal reference without a decode pass.
  std::vector<T> recon;
};

/// Quantizes `data` with point-wise absolute error bound `eb`.
/// radius must be >= 2; SZ's default 32768 gives a 65536-code alphabet.
template <typename T>
QuantizeResult<T> lorenzo_quantize(std::span<const T> data, const Dims& dims,
                                   double eb, std::uint32_t radius);

/// Inverse transform. `out` must have dims.count() elements.
template <typename T>
void lorenzo_dequantize(std::span<const std::uint32_t> codes,
                        std::span<const T> outliers, const Dims& dims, double eb,
                        std::uint32_t radius, std::span<T> out);

}  // namespace pcw::sz
