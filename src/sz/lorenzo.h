// Lorenzo prediction + error-bounded linear quantization.
//
// This is the decorrelation stage of the pcw::sz compressor, matching the
// structure of SZ's "best-fit" default path:
//   * each point is predicted from already-reconstructed neighbours
//     (1-, 2- or 3-D Lorenzo stencil, zero-padded at boundaries),
//   * the prediction residual is quantized to an integer multiple of
//     2*error_bound,
//   * residuals outside the bounded codebook (|q| >= radius) fall back to
//     storing the raw value ("unpredictable data" in SZ terminology).
//
// Predicting from *reconstructed* values — not originals — is what makes
// the point-wise error bound compose: every reconstructed neighbour is
// itself within eb of its original, and the quantizer re-centres on the
// actual prediction each step, so |recon - orig| <= eb holds point-wise.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sz/blocks.h"
#include "sz/dims.h"

namespace pcw::sz {

/// Quantization-code alphabet: code 0 marks an unpredictable point whose
/// raw value is stored in `outliers`; codes [1, 2*radius-1] encode the
/// signed residual q = code - radius.
template <typename T>
struct QuantizeResult {
  std::vector<std::uint32_t> codes;  // one per input point
  std::vector<T> outliers;           // raw values of code==0 points, in order
  /// The reconstruction the decompressor will reproduce, bit for bit. The
  /// quantizer computes it anyway (predictions come from reconstructed
  /// neighbours); exporting it lets the time-series writer keep the
  /// decoded step as the next temporal reference without a decode pass.
  std::vector<T> recon;
};

/// Quantizes `data` with point-wise absolute error bound `eb`.
/// radius must be >= 2; SZ's default 32768 gives a 65536-code alphabet.
template <typename T>
QuantizeResult<T> lorenzo_quantize(std::span<const T> data, const Dims& dims,
                                   double eb, std::uint32_t radius);

/// Inverse transform. `out` must have dims.count() elements.
template <typename T>
void lorenzo_dequantize(std::span<const std::uint32_t> codes,
                        std::span<const T> outliers, const Dims& dims, double eb,
                        std::uint32_t radius, std::span<T> out);

/// Quantizes a whole split_blocks() decomposition of `data`. Byte-for-byte
/// the same codes/outliers as calling lorenzo_quantize per block, but runs
/// lane_width() equal-shape consecutive blocks in SIMD lockstep when the
/// active dispatch level allows (src/sz/kernels.h; leftover and non-uniform
/// blocks take the scalar kernel), and fans tasks across `threads`.
///
/// Differences from the per-block API, for the sake of the hot path: the
/// returned results always have empty `recon` vectors; the reconstruction
/// instead lands in `recon_out` (full-field length, block slices disjoint)
/// when it is non-null, so compress never holds a second field copy.
///
/// When `hists` is non-empty (one slot per block) each slot is filled
/// with the block's code histogram (2 * radius entries) — identical
/// counts to a separate pass over the codes, but accumulated while the
/// codes are still cache-resident in the kernel's staging tiles.
template <typename T>
std::vector<QuantizeResult<T>> lorenzo_quantize_blocks(
    std::span<const T> data, std::span<const BlockRange> blocks, double eb,
    std::uint32_t radius, unsigned threads, T* recon_out = nullptr,
    std::span<std::vector<std::uint32_t>> hists = {});

}  // namespace pcw::sz
