// Byte-oriented LZ77 back end (LZ4-like token format).
//
// SZ applies a general-purpose lossless compressor (zstd) after Huffman
// coding; this module is our from-scratch stand-in. It matters most at
// very high compression ratios, where the Huffman stream still contains
// long runs (e.g. all-zero quantization codes) that entropy coding alone
// cannot collapse below 1 bit/symbol — exactly the regime the paper's
// Eq. (3) compensates for.
//
// Format (repeats until input consumed):
//   token byte: high nibble = literal run length (15 => extended bytes),
//               low nibble  = match length - kMinMatch (15 => extended)
//   [extended literal length: 255-terminated byte sequence]
//   literal bytes
//   match offset: u16 little-endian (1..65535), absent in the final
//                 literal-only sequence
//   [extended match length bytes]
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace pcw::sz {

/// Greedy hash-chain LZ compressor. Never fails; worst case the output is
/// input size + small per-block overhead.
std::vector<std::uint8_t> lz_compress(std::span<const std::uint8_t> input);

/// Inverse of lz_compress. `expected_size` is the decoded size recorded by
/// the caller (the compressor container stores it); used to preallocate
/// and to validate.
std::vector<std::uint8_t> lz_decompress(std::span<const std::uint8_t> input,
                                        std::size_t expected_size);

}  // namespace pcw::sz
