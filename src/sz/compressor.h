// pcw::sz top-level error-bounded lossy compressor (SZ3 stand-in).
//
// Pipeline: Lorenzo predict+quantize -> canonical Huffman -> LZ back end.
// The container is self-describing: decompress() needs only the blob.
//
// Container v2 splits the field into independent slabs (sz/blocks.h) that
// compress and decompress in parallel on util::ThreadPool, sharing one
// canonical codebook built from the merged per-block histograms. v1
// (single-stream) blobs remain readable.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "sz/dims.h"

namespace pcw::sz {

enum class DataType : std::uint8_t { kFloat32 = 0, kFloat64 = 1 };

/// Maps an element type to its container tag; the single authority shared
/// by the compressor, filters, and engine (was copy-pasted per layer).
template <typename T>
constexpr DataType dtype_of();
template <>
constexpr DataType dtype_of<float>() {
  return DataType::kFloat32;
}
template <>
constexpr DataType dtype_of<double>() {
  return DataType::kFloat64;
}

enum class ErrorBoundMode : std::uint8_t {
  kAbsolute = 0,   // |recon - orig| <= error_bound
  kRelative = 1,   // |recon - orig| <= error_bound * (max - min)
};

struct Params {
  ErrorBoundMode mode = ErrorBoundMode::kAbsolute;
  double error_bound = 1e-3;
  /// Half-width of the quantization codebook; alphabet is 2*radius codes.
  /// SZ's default. Larger radius = fewer outliers, bigger codebook.
  std::uint32_t radius = 32768;
  /// Apply the LZ lossless stage when it shrinks the payload.
  bool lossless = true;
  /// Worker threads for the block-parallel pipeline: 1 = serial (default),
  /// 0 = all hardware threads, N = exactly N. The blob is byte-identical
  /// for every value — blocks are a pure function of the extents.
  unsigned threads = 1;
};

/// Parsed container header, exposed for tests/benches/the ratio model.
struct HeaderInfo {
  DataType dtype = DataType::kFloat32;
  Dims dims;
  double abs_error_bound = 0.0;   // as applied (relative already resolved)
  std::uint32_t radius = 0;
  std::uint64_t outlier_count = 0;
  bool lz_applied = false;
  std::uint64_t payload_raw_size = 0;   // pre-LZ payload bytes
  std::uint64_t header_size = 0;        // container header + block index bytes
  std::uint32_t version = 0;            // container version (1 or 2)
  std::uint32_t block_count = 0;        // v2 slab count (1 for v1)
};

/// Compresses `data`; throws std::invalid_argument on bad params/sizes.
template <typename T>
std::vector<std::uint8_t> compress(std::span<const T> data, const Dims& dims,
                                   const Params& params);

/// Decompresses a blob produced by compress<T>. Throws std::runtime_error
/// on malformed input or element-type mismatch. If `dims_out` is non-null
/// it receives the stored extents. `threads` fans v2 blocks out across
/// util::ThreadPool (same 0/1/N semantics as Params::threads); the output
/// is identical for every value.
template <typename T>
std::vector<T> decompress(std::span<const std::uint8_t> blob, Dims* dims_out = nullptr,
                          unsigned threads = 1);

/// Parses the container header without touching the payload.
HeaderInfo inspect(std::span<const std::uint8_t> blob);

/// Bits per element for a compressed blob of `compressed_bytes` covering
/// `element_count` values.
inline double bit_rate(std::size_t compressed_bytes, std::size_t element_count) {
  return element_count == 0
             ? 0.0
             : 8.0 * static_cast<double>(compressed_bytes) / static_cast<double>(element_count);
}

/// original/compressed size ratio for T-typed data.
template <typename T>
double compression_ratio(std::size_t compressed_bytes, std::size_t element_count) {
  return compressed_bytes == 0 ? 0.0
                               : static_cast<double>(element_count * sizeof(T)) /
                                     static_cast<double>(compressed_bytes);
}

/// Resolves a Params error bound against concrete data (relative mode uses
/// the value range). Exposed so the ratio model applies identical logic.
template <typename T>
double resolve_error_bound(std::span<const T> data, const Params& params);

}  // namespace pcw::sz
