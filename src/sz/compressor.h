// pcw::sz top-level error-bounded lossy compressor (SZ3 stand-in).
//
// Pipeline: Lorenzo predict+quantize -> canonical Huffman -> LZ back end.
// The container is self-describing: decompress() needs only the blob.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "sz/dims.h"

namespace pcw::sz {

enum class DataType : std::uint8_t { kFloat32 = 0, kFloat64 = 1 };

enum class ErrorBoundMode : std::uint8_t {
  kAbsolute = 0,   // |recon - orig| <= error_bound
  kRelative = 1,   // |recon - orig| <= error_bound * (max - min)
};

struct Params {
  ErrorBoundMode mode = ErrorBoundMode::kAbsolute;
  double error_bound = 1e-3;
  /// Half-width of the quantization codebook; alphabet is 2*radius codes.
  /// SZ's default. Larger radius = fewer outliers, bigger codebook.
  std::uint32_t radius = 32768;
  /// Apply the LZ lossless stage when it shrinks the payload.
  bool lossless = true;
};

/// Parsed container header, exposed for tests/benches/the ratio model.
struct HeaderInfo {
  DataType dtype = DataType::kFloat32;
  Dims dims;
  double abs_error_bound = 0.0;   // as applied (relative already resolved)
  std::uint32_t radius = 0;
  std::uint64_t outlier_count = 0;
  bool lz_applied = false;
  std::uint64_t payload_raw_size = 0;   // pre-LZ payload bytes
  std::uint64_t header_size = 0;        // container header bytes
};

/// Compresses `data`; throws std::invalid_argument on bad params/sizes.
template <typename T>
std::vector<std::uint8_t> compress(std::span<const T> data, const Dims& dims,
                                   const Params& params);

/// Decompresses a blob produced by compress<T>. Throws std::runtime_error
/// on malformed input or element-type mismatch. If `dims_out` is non-null
/// it receives the stored extents.
template <typename T>
std::vector<T> decompress(std::span<const std::uint8_t> blob, Dims* dims_out = nullptr);

/// Parses the container header without touching the payload.
HeaderInfo inspect(std::span<const std::uint8_t> blob);

/// Bits per element for a compressed blob of `compressed_bytes` covering
/// `element_count` values.
inline double bit_rate(std::size_t compressed_bytes, std::size_t element_count) {
  return element_count == 0
             ? 0.0
             : 8.0 * static_cast<double>(compressed_bytes) / static_cast<double>(element_count);
}

/// original/compressed size ratio for T-typed data.
template <typename T>
double compression_ratio(std::size_t compressed_bytes, std::size_t element_count) {
  return compressed_bytes == 0 ? 0.0
                               : static_cast<double>(element_count * sizeof(T)) /
                                     static_cast<double>(compressed_bytes);
}

/// Resolves a Params error bound against concrete data (relative mode uses
/// the value range). Exposed so the ratio model applies identical logic.
template <typename T>
double resolve_error_bound(std::span<const T> data, const Params& params);

}  // namespace pcw::sz
