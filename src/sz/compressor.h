// pcw::sz top-level error-bounded lossy compressor (SZ3 stand-in).
//
// Pipeline: Lorenzo predict+quantize -> canonical Huffman -> LZ back end.
// The container is self-describing: decompress() needs only the blob.
//
// Container v2 splits the field into independent slabs (sz/blocks.h) that
// compress and decompress in parallel on util::ThreadPool, sharing one
// canonical codebook built from the merged per-block histograms. v1
// (single-stream) blobs remain readable.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "sz/dims.h"

namespace pcw::sz {

enum class DataType : std::uint8_t { kFloat32 = 0, kFloat64 = 1 };

/// Maps an element type to its container tag; the single authority shared
/// by the compressor, filters, and engine (was copy-pasted per layer).
template <typename T>
constexpr DataType dtype_of();
template <>
constexpr DataType dtype_of<float>() {
  return DataType::kFloat32;
}
template <>
constexpr DataType dtype_of<double>() {
  return DataType::kFloat64;
}

enum class ErrorBoundMode : std::uint8_t {
  kAbsolute = 0,   // |recon - orig| <= error_bound
  kRelative = 1,   // |recon - orig| <= error_bound * (max - min)
};

struct Params {
  ErrorBoundMode mode = ErrorBoundMode::kAbsolute;
  double error_bound = 1e-3;
  /// Half-width of the quantization codebook; alphabet is 2*radius codes.
  /// SZ's default. Larger radius = fewer outliers, bigger codebook.
  std::uint32_t radius = 32768;
  /// Apply the LZ lossless stage when it shrinks the payload.
  bool lossless = true;
  /// Worker threads for the block-parallel pipeline: 1 = serial (default),
  /// 0 = all hardware threads, N = exactly N. The blob is byte-identical
  /// for every value — blocks are a pure function of the extents.
  unsigned threads = 1;
};

/// Parsed container header, exposed for tests/benches/the ratio model.
struct HeaderInfo {
  DataType dtype = DataType::kFloat32;
  Dims dims;
  double abs_error_bound = 0.0;   // as applied (relative already resolved)
  std::uint32_t radius = 0;
  std::uint64_t outlier_count = 0;
  bool lz_applied = false;
  std::uint64_t payload_raw_size = 0;   // pre-LZ payload bytes
  std::uint64_t header_size = 0;        // container header + block index bytes
  std::uint32_t version = 0;            // container version (1 or 2)
  std::uint32_t block_count = 0;        // v2 slab count (1 for v1)
};

/// Compresses `data`; throws std::invalid_argument on bad params/sizes.
template <typename T>
std::vector<std::uint8_t> compress(std::span<const T> data, const Dims& dims,
                                   const Params& params);

/// Decompresses a blob produced by compress<T>. Throws std::runtime_error
/// on malformed input or element-type mismatch. If `dims_out` is non-null
/// it receives the stored extents. `threads` fans v2 blocks out across
/// util::ThreadPool (same 0/1/N semantics as Params::threads); the output
/// is identical for every value.
template <typename T>
std::vector<T> decompress(std::span<const std::uint8_t> blob, Dims* dims_out = nullptr,
                          unsigned threads = 1);

/// Instrumentation for a decompress_region call: how much of the blob was
/// actually decoded. Tests pin that a v2 partial read touches only the
/// blocks intersecting the request; tools report read cost from it.
struct RegionDecodeStats {
  std::uint64_t blocks_total = 0;    // blocks in the container (1 for v1)
  std::uint64_t blocks_decoded = 0;  // blocks Huffman-decoded + dequantized
  /// True when the v2 block index drove a partial decode; false on the v1
  /// fallback (full decode + slice).
  bool used_block_index = false;
};

/// Decompresses only the hyperslab `region` (half-open [lo, hi) box in the
/// stored extents). On a v2 blob, only the slabs overlapping the request
/// are entropy-decoded and dequantized — in parallel across `threads` —
/// so a thin slice of a large field costs a fraction of a full decode. v1
/// blobs fall back to full decode + slice, so old containers keep
/// working. Returns region.count() elements in the region's own row-major
/// order. Throws std::invalid_argument on an inverted or out-of-bounds
/// request and std::runtime_error on malformed blobs / type mismatch.
template <typename T>
std::vector<T> decompress_region(std::span<const std::uint8_t> blob, const Region& region,
                                 unsigned threads = 1, RegionDecodeStats* stats = nullptr);

/// Parses the container header without touching the payload.
HeaderInfo inspect(std::span<const std::uint8_t> blob);

/// One v2 block-index entry, exposed for tools (pcw5ls --blocks) and
/// tests. stored_bytes(sizeof(T)) is the pre-LZ payload share of the
/// block — the marginal cost of decoding it in a partial read.
struct BlockInfo {
  std::uint64_t elem_count = 0;
  std::uint64_t huff_bytes = 0;
  std::uint64_t outlier_count = 0;

  std::uint64_t stored_bytes(std::size_t elem_size) const {
    return huff_bytes + outlier_count * elem_size;
  }
};

/// The per-block index of a v2 blob, in block order; a v1 blob yields one
/// synthetic entry covering the whole field.
std::vector<BlockInfo> inspect_blocks(std::span<const std::uint8_t> blob);

/// Upper bound on the container header + block index size for any
/// supported version: the leading kMaxHeaderBytes of a blob always
/// suffice for inspect()/inspect_blocks(), which is what lets tools
/// summarize huge datasets with header-sized reads. Pinned against the
/// layout constants by a static_assert in compressor.cc.
inline constexpr std::size_t kMaxHeaderBytes = 2048;

/// Bits per element for a compressed blob of `compressed_bytes` covering
/// `element_count` values.
inline double bit_rate(std::size_t compressed_bytes, std::size_t element_count) {
  return element_count == 0
             ? 0.0
             : 8.0 * static_cast<double>(compressed_bytes) / static_cast<double>(element_count);
}

/// original/compressed size ratio for T-typed data.
template <typename T>
double compression_ratio(std::size_t compressed_bytes, std::size_t element_count) {
  return compressed_bytes == 0 ? 0.0
                               : static_cast<double>(element_count * sizeof(T)) /
                                     static_cast<double>(compressed_bytes);
}

/// Resolves a Params error bound against concrete data (relative mode uses
/// the value range). Exposed so the ratio model applies identical logic.
template <typename T>
double resolve_error_bound(std::span<const T> data, const Params& params);

}  // namespace pcw::sz
