// pcw::sz top-level error-bounded lossy compressor (SZ3 stand-in).
//
// Pipeline: Lorenzo predict+quantize -> canonical Huffman -> LZ back end.
// The container is self-describing: decompress() needs only the blob.
//
// Container v2 splits the field into independent slabs (sz/blocks.h) that
// compress and decompress in parallel on util::ThreadPool, sharing one
// canonical codebook built from the merged per-block histograms. v1
// (single-stream) blobs remain readable.
//
// Container v3 (Params::predictor = kTemporal) adds the temporal
// predictor for time series: blocks quantize x_t[i] - x̂_{t-1}[i] against
// the reconstructed previous step, falling back to the spatial stencil
// per block when the delta histogram costs more, with the choice recorded
// in the block index. With Params::checksum = false, spatial compressions
// keep emitting v2 byte-for-byte and temporal ones v3.
//
// Container v4 (Params::checksum, the default) adds CRC32C integrity
// data: a header checksum, a checksum of the stored (post-LZ) payload, a
// checksum of the codebook section, and one per block (its Huffman
// substream + outlier run). decompress()/decompress_region() verify per
// the VerifyMode knob; verify_blob() checks a blob without decoding it.
// See docs/integrity.md for the byte layout.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "sz/dims.h"

namespace pcw::sz {

enum class DataType : std::uint8_t { kFloat32 = 0, kFloat64 = 1 };

/// Maps an element type to its container tag; the single authority shared
/// by the compressor, filters, and engine (was copy-pasted per layer).
template <typename T>
constexpr DataType dtype_of();
template <>
constexpr DataType dtype_of<float>() {
  return DataType::kFloat32;
}
template <>
constexpr DataType dtype_of<double>() {
  return DataType::kFloat64;
}

enum class ErrorBoundMode : std::uint8_t {
  kAbsolute = 0,   // |recon - orig| <= error_bound
  kRelative = 1,   // |recon - orig| <= error_bound * (max - min)
};

/// Decorrelation stage. kSpatial is the Lorenzo stencil (container v2);
/// kTemporal predicts each point from the reconstructed previous time
/// step and quantizes x_t[i] - x̂_{t-1}[i] (container v3). The choice is
/// re-made *per block*: a temporal compression falls back to the spatial
/// stencil for any block whose delta histogram would cost more bits, so a
/// turbulent region never pays for a bad reference. The per-block choice
/// is recorded in the block index.
enum class Predictor : std::uint8_t { kSpatial = 0, kTemporal = 1 };

/// Read-side checksum verification depth (container v4; a no-op on v1–v3
/// blobs, which carry no checksums).
///   kOff   — trust the bytes; zero verification cost.
///   kBlob  — verify the header CRC and the CRC of the stored (post-LZ)
///            payload before decoding: every flipped bit anywhere in the
///            blob is detected with one sequential CRC pass and no
///            entropy decode or LZ expansion.
///   kBlock — verify the header + codebook CRCs plus the per-block CRC of
///            each block actually decoded; a partial region read pays
///            only for the blocks it touches. When the blob carries an LZ
///            stage the stored-payload CRC is checked too (the expansion
///            reads every stored byte anyway, and per-block CRCs alone
///            cannot catch an LZ-stream flip whose expansion reproduces
///            identical bytes). The default.
enum class VerifyMode : std::uint8_t { kOff = 0, kBlob = 1, kBlock = 2 };

struct Params {
  ErrorBoundMode mode = ErrorBoundMode::kAbsolute;
  double error_bound = 1e-3;
  /// Half-width of the quantization codebook; alphabet is 2*radius codes.
  /// SZ's default. Larger radius = fewer outliers, bigger codebook.
  std::uint32_t radius = 32768;
  /// Apply the LZ lossless stage when it shrinks the payload.
  bool lossless = true;
  /// Worker threads for the block-parallel pipeline: 1 = serial (default),
  /// 0 = all hardware threads, N = exactly N. The blob is byte-identical
  /// for every value — blocks are a pure function of the extents.
  unsigned threads = 1;
  /// kTemporal requires the prev-step overload of compress(); kSpatial
  /// with checksum = false keeps emitting container v2 byte-for-byte.
  Predictor predictor = Predictor::kSpatial;
  /// Emit container v4 with CRC32C checksums (header, stored payload,
  /// codebook, and per block). false reproduces the legacy v2/v3 bytes
  /// exactly. Checksums are computed inside the parallel encode stages,
  /// off the serial assembly path.
  bool checksum = true;
  /// Verification depth applied by the decompress entry points when this
  /// Params is used on the read side (h5::SzFilter threads it through).
  VerifyMode verify = VerifyMode::kBlock;
};

/// Parsed container header, exposed for tests/benches/the ratio model.
struct HeaderInfo {
  DataType dtype = DataType::kFloat32;
  Dims dims;
  double abs_error_bound = 0.0;   // as applied (relative already resolved)
  std::uint32_t radius = 0;
  std::uint64_t outlier_count = 0;
  bool lz_applied = false;
  std::uint64_t payload_raw_size = 0;   // pre-LZ payload bytes
  std::uint64_t header_size = 0;        // container header + block index bytes
  std::uint32_t version = 0;            // container version (1, 2, 3 or 4)
  std::uint32_t block_count = 0;        // v2+ slab count (1 for v1)
  /// Blocks whose predictor is kTemporal; > 0 means decoding needs the
  /// reconstructed reference step (the prev overloads below).
  std::uint32_t temporal_blocks = 0;
  /// True for container v4: the blob carries CRC32C checksums.
  bool checksummed = false;
};

/// Compresses `data`; throws std::invalid_argument on bad params/sizes.
/// Params::predictor must be kSpatial (use the prev overload for
/// temporal compression).
template <typename T>
std::vector<std::uint8_t> compress(std::span<const T> data, const Dims& dims,
                                   const Params& params);

/// Temporal-capable compress: with Params::predictor == kTemporal, `prev`
/// must hold the *reconstructed* previous step (dims.count() elements,
/// i.e. what decompress returned / recon_out delivered for step t-1);
/// each block then stores whichever of the temporal delta or the spatial
/// stencil entropy-codes smaller. With kSpatial, `prev` must be empty and
/// the output matches the two-argument overload byte-for-byte. If
/// `recon_out` is non-null it receives the reconstruction the
/// decompressor will reproduce (bit-identical) — the cheap way for a
/// series writer to keep the next reference without a decode pass.
template <typename T>
std::vector<std::uint8_t> compress(std::span<const T> data, const Dims& dims,
                                   const Params& params, std::span<const T> prev,
                                   std::vector<T>* recon_out = nullptr);

/// Decompresses a blob produced by compress<T>. Throws std::runtime_error
/// on malformed input, element-type mismatch, checksum mismatch (per
/// `verify`, container v4), or when the blob contains temporal blocks
/// (those need the prev overload). If `dims_out` is non-null it receives
/// the stored extents. `threads` fans v2+ blocks out across
/// util::ThreadPool (same 0/1/N semantics as Params::threads); the output
/// is identical for every value.
template <typename T>
std::vector<T> decompress(std::span<const std::uint8_t> blob, Dims* dims_out = nullptr,
                          unsigned threads = 1,
                          VerifyMode verify = VerifyMode::kBlock);

/// Temporal-capable decompress: `prev` holds the reconstructed reference
/// step (dims.count() elements) temporal blocks dequantize against;
/// spatial blocks ignore it, so passing the reference to an all-spatial
/// blob is valid. Throws std::invalid_argument when prev is non-empty but
/// the wrong size, std::runtime_error when temporal blocks are present
/// and prev is empty.
template <typename T>
std::vector<T> decompress(std::span<const std::uint8_t> blob, std::span<const T> prev,
                          Dims* dims_out = nullptr, unsigned threads = 1,
                          VerifyMode verify = VerifyMode::kBlock);

/// Instrumentation for a decompress_region call: how much of the blob was
/// actually decoded. Tests pin that a v2 partial read touches only the
/// blocks intersecting the request; tools report read cost from it.
struct RegionDecodeStats {
  std::uint64_t blocks_total = 0;    // blocks in the container (1 for v1)
  std::uint64_t blocks_decoded = 0;  // blocks Huffman-decoded + dequantized
  /// True when the v2 block index drove a partial decode; false on the v1
  /// fallback (full decode + slice).
  bool used_block_index = false;
};

/// Decompresses only the hyperslab `region` (half-open [lo, hi) box in the
/// stored extents). On a v2 blob, only the slabs overlapping the request
/// are entropy-decoded and dequantized — in parallel across `threads` —
/// so a thin slice of a large field costs a fraction of a full decode. v1
/// blobs fall back to full decode + slice, so old containers keep
/// working. Returns region.count() elements in the region's own row-major
/// order. Throws std::invalid_argument on an inverted or out-of-bounds
/// request and std::runtime_error on malformed blobs / type mismatch.
template <typename T>
std::vector<T> decompress_region(std::span<const std::uint8_t> blob, const Region& region,
                                 unsigned threads = 1, RegionDecodeStats* stats = nullptr,
                                 VerifyMode verify = VerifyMode::kBlock);

/// Temporal-capable region decode: `prev_region` holds the reconstructed
/// reference step *over the same region* (region.count() elements in the
/// region's own row-major order — e.g. the previous link of a restart
/// chain). Temporal blocks entropy-decode whole (Huffman streams are
/// sequential) but dequantize only the selected rows against prev_region,
/// so a chained sparse read never materializes reference data outside the
/// request. Spatial blocks ignore prev_region. Throws
/// std::invalid_argument when prev_region is non-empty but not
/// region.count() elements, std::runtime_error when a selected temporal
/// block has no reference.
template <typename T>
std::vector<T> decompress_region(std::span<const std::uint8_t> blob, const Region& region,
                                 std::span<const T> prev_region, unsigned threads = 1,
                                 RegionDecodeStats* stats = nullptr,
                                 VerifyMode verify = VerifyMode::kBlock);

/// Parses the container header without touching the payload.
HeaderInfo inspect(std::span<const std::uint8_t> blob);

/// verify_blob() outcome — a non-throwing damage report for scrub tools.
struct BlobVerifyReport {
  bool parsed = false;        // header parsed and structurally consistent
  std::uint32_t version = 0;  // container version (0 when unparseable)
  bool checksummed = false;   // v4: the blob carries CRCs to check
  /// parsed, structurally sound, and every applicable checksum matched.
  /// For v1–v3 blobs this is structural consistency only.
  bool ok = false;
  /// Deep mode, v4: indices of blocks whose CRC failed.
  std::vector<std::uint32_t> damaged_blocks;
  std::string detail;  // first failure, human-readable ("" when ok)
};

/// Verifies a blob without decoding it and without throwing. The cheap
/// pass checks structure plus (v4) the header and stored-payload CRCs —
/// enough to detect any corruption. `deep` additionally expands LZ (which
/// also validates the stored extent of legacy pre-v4 LZ blobs) and, on
/// v4, checks the codebook and every per-block CRC, localizing the
/// damage to block indices so region reads can route around it.
BlobVerifyReport verify_blob(std::span<const std::uint8_t> blob, bool deep = false);

/// One v2/v3 block-index entry, exposed for tools (pcw5ls --blocks) and
/// tests. stored_bytes(sizeof(T)) is the pre-LZ payload share of the
/// block — the marginal cost of decoding it in a partial read.
struct BlockInfo {
  std::uint64_t elem_count = 0;
  std::uint64_t huff_bytes = 0;
  std::uint64_t outlier_count = 0;
  /// v3 per-block choice; always kSpatial for v1/v2 containers.
  Predictor predictor = Predictor::kSpatial;

  std::uint64_t stored_bytes(std::size_t elem_size) const {
    return huff_bytes + outlier_count * elem_size;
  }
};

/// The per-block index of a v2 blob, in block order; a v1 blob yields one
/// synthetic entry covering the whole field.
std::vector<BlockInfo> inspect_blocks(std::span<const std::uint8_t> blob);

/// Upper bound on the container header + block index size for any
/// supported version: the leading kMaxHeaderBytes of a blob always
/// suffice for inspect()/inspect_blocks(), which is what lets tools
/// summarize huge datasets with header-sized reads. Pinned against the
/// layout constants by a static_assert in compressor.cc.
inline constexpr std::size_t kMaxHeaderBytes = 2048;

/// Bits per element for a compressed blob of `compressed_bytes` covering
/// `element_count` values.
inline double bit_rate(std::size_t compressed_bytes, std::size_t element_count) {
  return element_count == 0
             ? 0.0
             : 8.0 * static_cast<double>(compressed_bytes) / static_cast<double>(element_count);
}

/// original/compressed size ratio for T-typed data.
template <typename T>
double compression_ratio(std::size_t compressed_bytes, std::size_t element_count) {
  return compressed_bytes == 0 ? 0.0
                               : static_cast<double>(element_count * sizeof(T)) /
                                     static_cast<double>(compressed_bytes);
}

/// Resolves a Params error bound against concrete data (relative mode uses
/// the value range). Exposed so the ratio model applies identical logic.
template <typename T>
double resolve_error_bound(std::span<const T> data, const Params& params);

}  // namespace pcw::sz
