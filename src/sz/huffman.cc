#include "sz/huffman.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstring>
#include <queue>
#include <stdexcept>

#include "util/cpu.h"

namespace pcw::sz {
namespace {

void put_varint(std::vector<std::uint8_t>& out, std::uint32_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint32_t get_varint(std::span<const std::uint8_t> in, std::size_t& pos) {
  std::uint32_t v = 0;
  int shift = 0;
  for (;;) {
    if (pos >= in.size()) throw std::runtime_error("huffman: truncated varint");
    const std::uint8_t b = in[pos++];
    v |= static_cast<std::uint32_t>(b & 0x7f) << shift;
    if (!(b & 0x80)) return v;
    shift += 7;
    if (shift > 28) throw std::runtime_error("huffman: varint overflow");
  }
}

std::uint32_t reverse_bits(std::uint32_t code, int len) {
  std::uint32_t rev = 0;
  for (int i = 0; i < len; ++i) {
    rev = (rev << 1) | ((code >> i) & 1u);
  }
  return rev;
}

// Tree construction via the classic sort + two-queue merge: after the
// leaves are sorted by count, internal nodes are produced in
// non-decreasing count order, so the two minima are always at the fronts
// of the leaf queue and the internal-node FIFO. O(K log K) for the sort,
// O(K) for the merge — ~20x faster than a binary-heap build at the 30-60k
// distinct symbols tight error bounds produce.
std::vector<std::uint8_t> build_depths(std::span<const SymbolCount> freqs) {
  struct Leaf {
    std::uint64_t count;
    std::uint32_t entry;  // index into freqs
  };
  std::vector<Leaf> leaves;
  leaves.reserve(freqs.size());
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    if (freqs[i].count > 0) leaves.push_back({freqs[i].count, static_cast<std::uint32_t>(i)});
  }
  std::vector<std::uint8_t> depths(freqs.size(), 0);
  const std::size_t k = leaves.size();
  if (k == 0) return depths;
  if (k == 1) {
    depths[leaves[0].entry] = 1;
    return depths;
  }
  std::sort(leaves.begin(), leaves.end(), [](const Leaf& a, const Leaf& b) {
    if (a.count != b.count) return a.count < b.count;
    return a.entry < b.entry;
  });

  // Node ids: [0, k) leaves in sorted order, [k, 2k-1) internals in
  // creation order.
  std::vector<std::uint64_t> internal_count;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> children;
  internal_count.reserve(k - 1);
  children.reserve(k - 1);
  std::size_t next_leaf = 0, next_internal = 0;
  auto take_min = [&]() -> std::pair<std::uint64_t, std::uint32_t> {
    const bool leaf_ok = next_leaf < k;
    const bool internal_ok = next_internal < children.size();
    // <= prefers leaves on ties: keeps codes for rare symbols shallower.
    if (leaf_ok && (!internal_ok || leaves[next_leaf].count <= internal_count[next_internal])) {
      const auto id = static_cast<std::uint32_t>(next_leaf);
      return {leaves[next_leaf++].count, id};
    }
    const auto id = static_cast<std::uint32_t>(k + next_internal);
    return {internal_count[next_internal++], id};
  };
  for (std::size_t merge = 0; merge + 1 < k; ++merge) {
    const auto a = take_min();
    const auto b = take_min();
    children.emplace_back(a.second, b.second);
    internal_count.push_back(a.first + b.first);
  }

  // Depths: the root is the last internal; walk internals backwards.
  std::vector<std::uint8_t> node_depth(k + children.size(), 0);
  for (std::size_t idx = children.size(); idx-- > 0;) {
    const auto d = static_cast<std::uint8_t>(node_depth[k + idx] + 1);
    node_depth[children[idx].first] = d;
    node_depth[children[idx].second] = d;
  }
  for (std::size_t j = 0; j < k; ++j) {
    depths[leaves[j].entry] = node_depth[j];
  }
  return depths;
}

}  // namespace

std::vector<std::uint8_t> huffman_code_lengths(std::span<const SymbolCount> freqs) {
  // The BitWriter register holds at most 57 bits per put(); depths beyond
  // that are only reachable with pathological (near-Fibonacci) frequency
  // profiles. Flatten by square-rooting the counts until the tree fits.
  std::vector<SymbolCount> work(freqs.begin(), freqs.end());
  for (int attempt = 0; attempt < 8; ++attempt) {
    auto depths = build_depths(work);
    std::uint8_t max_depth = 0;
    for (auto d : depths) max_depth = std::max(max_depth, d);
    if (max_depth <= 56) return depths;
    for (auto& entry : work) {
      if (entry.count > 1) {
        entry.count = static_cast<std::uint64_t>(std::max<double>(
            1.0, std::sqrt(static_cast<double>(entry.count))));
      }
    }
  }
  throw std::runtime_error("huffman: could not bound code length");
}

HuffmanEncoder::HuffmanEncoder(std::span<const SymbolCount> freqs) {
  const auto depths = huffman_code_lengths(freqs);
  struct Entry {
    std::uint32_t symbol;
    std::uint8_t len;
  };
  std::vector<Entry> entries;
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    if (depths[i] > 0) entries.push_back({freqs[i].symbol, depths[i]});
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    if (a.len != b.len) return a.len < b.len;
    return a.symbol < b.symbol;
  });
  symbols_.reserve(entries.size());
  lengths_.reserve(entries.size());
  std::uint32_t min_sym = ~0u, max_sym = 0;
  for (const auto& e : entries) {
    symbols_.push_back(e.symbol);
    lengths_.push_back(e.len);
    min_sym = std::min(min_sym, e.symbol);
    max_sym = std::max(max_sym, e.symbol);
    max_len_ = std::max<int>(max_len_, e.len);
  }
  if (entries.empty()) return;
  min_sym_ = min_sym;
  code_of_.assign(max_sym - min_sym + 1, 0);
  len_of_.assign(max_sym - min_sym + 1, 0);
  packed_.assign(max_sym - min_sym + 1, 0);
  // Canonical code assignment in (length, symbol) order.
  std::uint32_t code = 0;
  std::uint8_t prev_len = entries.front().len;
  for (const auto& e : entries) {
    code <<= (e.len - prev_len);
    prev_len = e.len;
    code_of_[e.symbol - min_sym_] = reverse_bits(code, e.len);
    len_of_[e.symbol - min_sym_] = e.len;
    packed_[e.symbol - min_sym_] =
        code_of_[e.symbol - min_sym_] | (static_cast<std::uint64_t>(e.len) << 56);
    ++code;
  }
}

void HuffmanEncoder::encode(std::uint32_t symbol, util::BitWriter& out) const {
  assert(symbol >= min_sym_ && symbol - min_sym_ < len_of_.size());
  const std::uint32_t slot = symbol - min_sym_;
  assert(len_of_[slot] > 0 && "symbol not in codebook");
  out.put(code_of_[slot], len_of_[slot]);
}

void HuffmanEncoder::encode_all(std::span<const std::uint32_t> symbols,
                                util::BitWriter& out) const {
  // Bulk path: pack codewords into a local buffer with one unconditional
  // 8-byte store per symbol, then splice the whole run into the writer.
  // The stream is just the concatenation of LSB-first codewords, so this
  // emits the same bytes as per-symbol put() while skipping its register
  // spill per symbol. Needs a byte-aligned writer (block payloads start
  // one) and codes that fit the u32 table.
  if (std::endian::native == std::endian::little && out.byte_aligned() &&
      max_len_ > 0 && max_len_ <= 32) {
    static thread_local std::vector<std::uint8_t> buf;
    const std::size_t need =
        symbols.size() * static_cast<std::size_t>((max_len_ + 7) / 8) + 8;
    if (buf.size() < need) buf.resize(need);
    std::uint8_t* p = buf.data();
    std::uint64_t acc = 0;
    int nb = 0;
    for (const std::uint32_t symbol : symbols) {
      assert(symbol >= min_sym_ && symbol - min_sym_ < len_of_.size());
      const std::uint32_t slot = symbol - min_sym_;
      assert(len_of_[slot] > 0 && "symbol not in codebook");
      const std::uint64_t e = packed_[slot];
      acc |= (e & 0x00ffffffffffffffull) << nb;
      nb += static_cast<int>(e >> 56);
      std::memcpy(p, &acc, 8);  // nb <= 7 + 32: the register never overflows
      p += nb >> 3;
      acc >>= (nb & ~7);
      nb &= 7;
    }
    out.append_bytes({buf.data(), static_cast<std::size_t>(p - buf.data())});
    out.put(acc, nb);
    return;
  }
  for (const std::uint32_t symbol : symbols) {
    assert(symbol >= min_sym_ && symbol - min_sym_ < len_of_.size());
    const std::uint32_t slot = symbol - min_sym_;
    assert(len_of_[slot] > 0 && "symbol not in codebook");
    out.put(code_of_[slot], len_of_[slot]);
  }
}

std::vector<std::uint8_t> HuffmanEncoder::serialize_codebook() const {
  std::vector<std::uint8_t> out;
  put_varint(out, static_cast<std::uint32_t>(symbols_.size()));
  for (std::size_t i = 0; i < symbols_.size(); ++i) {
    put_varint(out, symbols_[i]);
    out.push_back(lengths_[i]);
  }
  return out;
}

std::uint64_t HuffmanEncoder::cost_bits(std::span<const SymbolCount> freqs) const {
  std::uint64_t bits = 0;
  for (const auto& f : freqs) {
    if (f.count == 0) continue;
    if (f.symbol < min_sym_ || f.symbol - min_sym_ >= len_of_.size()) continue;
    bits += f.count * len_of_[f.symbol - min_sym_];
  }
  return bits;
}

HuffmanDecoder::HuffmanDecoder(std::span<const std::uint8_t> codebook,
                               std::size_t* consumed) {
  std::size_t pos = 0;
  const std::uint32_t n = get_varint(codebook, pos);
  symbols_.resize(n);
  lengths_.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    symbols_[i] = get_varint(codebook, pos);
    if (pos >= codebook.size()) throw std::runtime_error("huffman: truncated codebook");
    lengths_[i] = codebook[pos++];
    if (lengths_[i] == 0 || lengths_[i] > 56) {
      throw std::runtime_error("huffman: invalid code length");
    }
  }
  if (consumed != nullptr) *consumed = pos;
  // Re-derive canonical order defensively (serialization is already sorted).
  std::vector<std::size_t> order(n);
  for (std::uint32_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    if (lengths_[a] != lengths_[b]) return lengths_[a] < lengths_[b];
    return symbols_[a] < symbols_[b];
  });
  std::vector<std::uint32_t> sym2(n);
  std::vector<std::uint8_t> len2(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    sym2[i] = symbols_[order[i]];
    len2[i] = lengths_[order[i]];
  }
  symbols_ = std::move(sym2);
  lengths_ = std::move(len2);
  for (auto l : lengths_) max_len_ = std::max<int>(max_len_, l);

  first_code_.assign(static_cast<std::size_t>(max_len_) + 2, 0);
  first_index_.assign(static_cast<std::size_t>(max_len_) + 2, 0);
  std::vector<std::uint32_t> count_per_len(static_cast<std::size_t>(max_len_) + 1, 0);
  for (auto l : lengths_) ++count_per_len[l];
  std::uint32_t code = 0, index = 0;
  for (int len = 1; len <= max_len_; ++len) {
    code <<= 1;
    first_code_[static_cast<std::size_t>(len)] = code;
    first_index_[static_cast<std::size_t>(len)] = index;
    code += count_per_len[static_cast<std::size_t>(len)];
    index += count_per_len[static_cast<std::size_t>(len)];
  }
  first_index_[static_cast<std::size_t>(max_len_) + 1] = index;

  // Level-1 table for short codes; long codes are collected per root
  // prefix and land in level-2 tables below.
  struct LongCode {
    std::uint32_t prefix;   // low kFastBits of the reversed code
    std::uint64_t subidx;   // remaining (len - kFastBits) stream bits
    std::uint8_t sublen;    // len - kFastBits
    std::uint32_t symbol;
    std::uint8_t len;
  };
  std::vector<LongCode> long_codes;
  fast_.assign(std::size_t{1} << kFastBits, FastEntry{});
  std::uint32_t running_code = 0;
  std::uint8_t prev_len = n > 0 ? lengths_[0] : 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    running_code <<= (lengths_[i] - prev_len);
    prev_len = lengths_[i];
    if (lengths_[i] <= kFastBits) {
      const auto rev =
          static_cast<std::uint32_t>(reverse_bits(running_code, lengths_[i]));
      const std::uint32_t step = 1u << lengths_[i];
      for (std::uint32_t fill = rev; fill < fast_.size(); fill += step) {
        fast_[fill] = {symbols_[i], lengths_[i]};
      }
    } else {
      const std::uint64_t rev = reverse_bits(running_code, lengths_[i]);
      LongCode lc;
      lc.prefix = static_cast<std::uint32_t>(rev & ((1u << kFastBits) - 1));
      lc.subidx = rev >> kFastBits;
      lc.sublen = static_cast<std::uint8_t>(lengths_[i] - kFastBits);
      lc.symbol = symbols_[i];
      lc.len = lengths_[i];
      long_codes.push_back(lc);
    }
    ++running_code;
  }
  // Build one level-2 table per distinct root prefix, sized for the
  // deepest code it must resolve (capped at kSubBits; anything deeper
  // keeps a hole and resolves via the canonical slow path).
  std::stable_sort(long_codes.begin(), long_codes.end(),
                   [](const LongCode& a, const LongCode& b) {
                     return a.prefix < b.prefix;
                   });
  for (std::size_t lo = 0; lo < long_codes.size();) {
    std::size_t hi = lo;
    std::uint8_t group_bits = 0;
    while (hi < long_codes.size() && long_codes[hi].prefix == long_codes[lo].prefix) {
      group_bits = std::max<std::uint8_t>(
          group_bits, std::min<std::uint8_t>(long_codes[hi].sublen, kSubBits));
      ++hi;
    }
    SubMeta meta;
    meta.offset = static_cast<std::uint32_t>(sub_.size());
    meta.bits = group_bits;
    sub_.resize(sub_.size() + (std::size_t{1} << group_bits));
    for (std::size_t j = lo; j < hi; ++j) {
      const LongCode& lc = long_codes[j];
      if (lc.sublen > group_bits) continue;  // deeper than the table: slow path
      const std::uint64_t step = std::uint64_t{1} << lc.sublen;
      for (std::uint64_t fill = lc.subidx; fill < (std::uint64_t{1} << group_bits);
           fill += step) {
        sub_[meta.offset + fill] = {lc.symbol, lc.len};
      }
    }
    fast_[long_codes[lo].prefix] = {static_cast<std::uint32_t>(sub_meta_.size()),
                                    kSubMarker};
    sub_meta_.push_back(meta);
    lo = hi;
  }

  // The pack table only pays off when decode_run actually runs the
  // multi-symbol path, which is gated to SIMD dispatch levels so
  // PCW_SIMD=off exercises (and times) the scalar single-symbol decoder.
  if (util::simd_active() != util::Simd::kScalar) build_pack_table();
}

// For every kFastBits window, pre-walk the chain of whole codes it
// provably contains. A code is accepted only while its entire codeword
// lies within the window's known bits: fast_ is replication-filled, so
// indexing with the remaining (zero-extended) window bits lands on the
// true entry whenever the entry's length fits the bits still known —
// longer entries, sub-table markers, and invalid prefixes terminate the
// walk since the unknown following bits could change them.
void HuffmanDecoder::build_pack_table() {
  if (symbols_.size() <= 1) return;
  for (const std::uint32_t s : symbols_) {
    if (s > 0xffffu) return;  // symbol does not fit a u16 pack slot
  }
  pack_.assign(fast_.size(), PackEntry{});
  for (std::uint32_t window = 0; window < fast_.size(); ++window) {
    PackEntry& e = pack_[window];
    int used = 0;
    while (e.nsyms < kPackSyms) {
      const FastEntry& fe = fast_[window >> used];
      if (fe.len == 0 || fe.len == kSubMarker || fe.len > kFastBits - used) break;
      e.syms[e.nsyms++] = static_cast<std::uint16_t>(fe.symbol);
      used += fe.len;
    }
    e.bits = static_cast<std::uint8_t>(used);
    // A single packed symbol is just decode() with extra steps; leave the
    // entry unpackable so the run loop takes the plain path.
    if (e.nsyms <= 1) e = PackEntry{};
  }
}

std::uint32_t HuffmanDecoder::decode(util::BitReader& in) const {
  if (symbols_.size() == 1) {
    in.get(1);
    return symbols_[0];
  }
  const auto window = static_cast<std::uint32_t>(in.peek(kFastBits));
  const FastEntry& entry = fast_[window];
  if (entry.len > 0 && entry.len <= kFastBits) {
    in.skip(entry.len);
    return entry.symbol;
  }
  if (entry.len == kSubMarker) {
    const SubMeta& meta = sub_meta_[entry.symbol];
    const auto subwin = static_cast<std::uint32_t>(
        in.peek(kFastBits + meta.bits) >> kFastBits);
    const FastEntry& sub = sub_[meta.offset + subwin];
    if (sub.len > 0) {
      in.skip(sub.len);
      return sub.symbol;
    }
  }
  return decode_slow(in);
}

void HuffmanDecoder::decode_run(util::BitReader& in, std::uint32_t* out,
                                std::size_t n) const {
  std::size_t i = 0;
  if (!pack_.empty()) {
    // Fast path preconditions: >= 64 bits left means the peek below is
    // entirely real bits and the skip cannot cross the end, and room for
    // kPackSyms outputs means the branchless full-entry store is safe.
    while (i + kPackSyms <= n && in.bits_remaining() >= 64) {
      const auto window = static_cast<std::uint32_t>(in.peek(kFastBits));
      const PackEntry& e = pack_[window];
      if (e.nsyms == 0) {
        out[i++] = decode(in);
        continue;
      }
      for (int s = 0; s < kPackSyms; ++s) out[i + s] = e.syms[s];
      i += e.nsyms;
      in.skip(e.bits);
    }
  }
  // Tail (and the whole run at scalar dispatch): per-symbol decode, so
  // truncated or corrupt streams fail exactly like the scalar decoder.
  for (; i < n; ++i) out[i] = decode(in);
}

// Canonical decode, MSB-first code assembled bit by bit. Reached only for
// invalid prefixes and codes deeper than kFastBits + kSubBits (which the
// flattening fallback in huffman_code_lengths makes pathological-only).
std::uint32_t HuffmanDecoder::decode_slow(util::BitReader& in) const {
  std::uint32_t code = 0;
  for (int len = 1; len <= max_len_; ++len) {
    code = (code << 1) | static_cast<std::uint32_t>(in.get(1));
    const std::uint32_t count =
        first_index_[static_cast<std::size_t>(len) + 1] - first_index_[static_cast<std::size_t>(len)];
    if (count > 0 && code >= first_code_[static_cast<std::size_t>(len)] &&
        code - first_code_[static_cast<std::size_t>(len)] < count) {
      return symbols_[first_index_[static_cast<std::size_t>(len)] + code -
                      first_code_[static_cast<std::size_t>(len)]];
    }
  }
  throw std::runtime_error("huffman: invalid bitstream");
}

}  // namespace pcw::sz
