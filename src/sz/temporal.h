// Temporal prediction + error-bounded linear quantization.
//
// The second predictor of the pcw::sz compressor (container v3): each
// point is predicted from the *reconstructed previous time step* at the
// same position, and the residual x_t[i] - x̂_{t-1}[i] is quantized to an
// integer multiple of 2*error_bound. For in-situ checkpoint series where
// consecutive steps barely differ, the residual distribution is far
// narrower than the spatial Lorenzo residual, so the shared Huffman stage
// spends fewer bits per value.
//
// Predicting from the reconstructed (not original) previous step is what
// keeps the bound from accumulating across a chain: the quantizer
// re-centres on x̂_{t-1} each step, so |x̂_t - x_t| <= eb holds point-wise
// at every step no matter how long the chain is.
//
// Unlike Lorenzo, the transform is point-wise — reconstruction needs no
// already-decoded neighbours — which is what lets decompress_region()
// dequantize only the selected rows of a temporal block against a
// region-shaped reference buffer.
#pragma once

#include <cstdint>
#include <span>

#include "sz/dims.h"
#include "sz/lorenzo.h"

namespace pcw::sz {

/// Quantizes `data` against the reconstructed previous step `prev`
/// (data.size() elements) with point-wise absolute error bound `eb`.
/// Same code/outlier conventions as lorenzo_quantize; result.recon holds
/// the reconstruction the decompressor will reproduce.
template <typename T>
QuantizeResult<T> temporal_quantize(std::span<const T> data, std::span<const T> prev,
                                    double eb, std::uint32_t radius);

/// Inverse transform. `prev` and `out` have codes.size() elements; `out`
/// may not alias `prev`.
template <typename T>
void temporal_dequantize(std::span<const std::uint32_t> codes,
                         std::span<const T> outliers, std::span<const T> prev,
                         double eb, std::uint32_t radius, std::span<T> out);

}  // namespace pcw::sz
