// AVX-512 kernel instantiations: up to 32 blocks per lane batch in zmm
// halves of 8 doubles (the Lorenzo sweep is latency-bound on its serial
// chain, so four independent zmm chains per cell quadruple throughput).
// Compiled with -mavx512f/bw/dq/vl -ffp-contract=off -O3
// (src/CMakeLists.txt); -ffp-contract=off matters here because AVX-512F
// implies FMA and contraction would change bytes. See kernels_impl.h.
#define PCW_KERNEL_NS avx512
#define PCW_KERNEL_WIDTH 32
#include "sz/kernels_impl.h"
