// Canonical Huffman codec over 32-bit symbols.
//
// This is the entropy stage of the pcw::sz compressor, mirroring SZ's
// customized Huffman encoder: the alphabet is the quantization-code space
// (2 * radius, typically 65536), but only the codes that actually occur
// are present in the codebook. Canonical code assignment keeps the
// serialized codebook small (symbol + bit length per entry) and makes
// decoding table-driven.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/bitstream.h"

namespace pcw::sz {

/// Frequency table entry for codebook construction.
struct SymbolCount {
  std::uint32_t symbol = 0;
  std::uint64_t count = 0;
};

class HuffmanEncoder {
 public:
  /// Builds a canonical codebook from symbol frequencies. Zero-count
  /// entries are ignored; an empty/all-zero table yields an empty book.
  explicit HuffmanEncoder(std::span<const SymbolCount> freqs);

  /// Appends the codeword for `symbol` (must be in the codebook).
  void encode(std::uint32_t symbol, util::BitWriter& out) const;

  /// Appends the codewords for a whole symbol run. Identical output to
  /// calling encode() per symbol; keeps the per-symbol table lookup and
  /// the BitWriter register dance inside one translation unit.
  void encode_all(std::span<const std::uint32_t> symbols, util::BitWriter& out) const;

  /// Serializes the codebook (count + per-symbol {varint symbol, u8 len}).
  std::vector<std::uint8_t> serialize_codebook() const;

  /// Total encoded size in bits if each symbol s occurs freqs[s] times —
  /// used by the ratio model to cost a hypothetical encoding.
  std::uint64_t cost_bits(std::span<const SymbolCount> freqs) const;

  int max_code_length() const { return max_len_; }
  std::size_t distinct_symbols() const { return lengths_.size(); }

 private:
  friend class HuffmanDecoder;
  // Sorted by (length, symbol): canonical order.
  std::vector<std::uint32_t> symbols_;
  std::vector<std::uint8_t> lengths_;        // parallel to symbols_
  // Dense lookup: symbol -> (reversed code, length); index by symbol via map
  // from symbol to slot. For the quantization alphabet symbols are dense
  // around the radius, so we use a hash-free two-table scheme: a direct
  // vector covering [min_sym, max_sym].
  std::uint32_t min_sym_ = 0;
  std::vector<std::uint32_t> code_of_;       // reversed bits, LSB-first stream
  std::vector<std::uint8_t> len_of_;
  /// code_of_ and len_of_ folded into one entry (code | len << 56) so the
  /// bulk encode loop does one table load per symbol instead of two.
  std::vector<std::uint64_t> packed_;
  int max_len_ = 0;
};

class HuffmanDecoder {
 public:
  /// Reconstructs the codebook from HuffmanEncoder::serialize_codebook
  /// output. Returns bytes consumed via `consumed`.
  HuffmanDecoder(std::span<const std::uint8_t> codebook, std::size_t* consumed);

  /// Decodes one symbol.
  std::uint32_t decode(util::BitReader& in) const;

  /// Decodes `n` symbols. Equivalent to calling decode() n times —
  /// including on malformed input, where truncated or invalid streams
  /// fail at the same symbol with the same error — but when the
  /// multi-symbol pack table is built (SIMD levels only, see
  /// build_pack_table) each table probe retires up to kPackSyms short
  /// codes at once.
  void decode_run(util::BitReader& in, std::uint32_t* out, std::size_t n) const;

  std::size_t distinct_symbols() const { return symbols_.size(); }

 private:
  static constexpr int kFastBits = 11;
  /// Second-level tables cover codes up to kFastBits + kSubBits long; only
  /// deeper (pathological) codes fall back to the per-bit canonical scan.
  static constexpr int kSubBits = 15;
  /// FastEntry::len marker: entry points into sub_meta_ via `symbol`.
  static constexpr std::uint8_t kSubMarker = 0xff;

  std::uint32_t decode_slow(util::BitReader& in) const;

  std::vector<std::uint32_t> symbols_;       // canonical order
  std::vector<std::uint8_t> lengths_;
  // Canonical decode tables per length (slow fallback only).
  std::vector<std::uint32_t> first_code_;    // index: length
  std::vector<std::uint32_t> first_index_;   // index into symbols_
  int max_len_ = 0;
  // Level 1: next kFastBits of the (LSB-first) stream -> symbol + length,
  // or a kSubMarker entry linking to a level-2 table for long codes.
  struct FastEntry {
    std::uint32_t symbol = 0;
    std::uint8_t len = 0;                    // 0 = invalid prefix (slow path)
  };
  std::vector<FastEntry> fast_;
  // Level 2: per long-code root prefix, a table over the following
  // `bits` stream bits. Stored concatenated in sub_.
  struct SubMeta {
    std::uint32_t offset = 0;                // into sub_
    std::uint8_t bits = 0;                   // table index width
  };
  std::vector<SubMeta> sub_meta_;
  std::vector<FastEntry> sub_;
  /// Symbols retired per pack-table probe. 7 u16 symbols + 2 counters =
  /// 16-byte entries, 32 KiB for the 2^kFastBits table.
  static constexpr int kPackSyms = 7;
  struct PackEntry {
    std::uint16_t syms[kPackSyms] = {};
    std::uint8_t nsyms = 0;  // 0 = window not packable: take the single path
    std::uint8_t bits = 0;   // total stream bits the packed run consumes
  };
  /// Multi-symbol table over the same kFastBits window as fast_: every
  /// run of whole codes that provably fits the window, regardless of the
  /// (unknown) bits that follow. Empty when disabled — scalar dispatch
  /// level, single-symbol books, or symbols too wide for u16.
  std::vector<PackEntry> pack_;
  void build_pack_table();
};

/// Computes canonical code lengths for the given frequencies via the
/// standard two-queue/heap Huffman construction. Exposed for the ratio
/// model, which costs hypothetical codebooks without encoding.
std::vector<std::uint8_t> huffman_code_lengths(std::span<const SymbolCount> freqs);

}  // namespace pcw::sz
