// SIMD-dispatched inner kernels of the sz pipeline.
//
// Two kinds of kernel live behind this interface (docs/kernels.md):
//
//  * Lane kernels (quantize_lanes / dequantize_lanes): the Lorenzo sweep
//    carries a serial dependency — every prediction reads reconstructed
//    neighbours written moments earlier — so it cannot vectorize within
//    one block. It vectorizes *across* blocks instead: split_blocks
//    yields independent equal-shape slabs, and a lane batch runs W of
//    them in lockstep, each vector lane executing exactly the scalar
//    operation sequence on its own block.
//  * Point kernels (temporal_*): the temporal delta predictor is
//    point-wise, so it vectorizes directly along the element axis.
//
// The contract for every kernel here: results are byte-identical to the
// scalar reference in lorenzo.cc / temporal.cc, for all inputs. SIMD
// changes speed, never bytes — the per-block outlier and quantization
// semantics are the container format.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "sz/dims.h"

namespace pcw::sz::kern {

/// Widest lane batch any build supports (AVX-512 runs up to 64 blocks in
/// lockstep, AVX2 up to 32). Callers size their pointer tables with this.
inline constexpr int kMaxLanes = 64;

/// Lane and point kernels do their code arithmetic in 32 bits; radius
/// beyond this cap (far past SZ's default 32768) falls back to scalar.
inline constexpr std::uint32_t kLaneMaxRadius = 1u << 30;

/// Widest lane count of the active SIMD level (1 = no lane kernels; use
/// the scalar per-block path). The Lorenzo sweep is latency-bound on its
/// per-block serial chain, so throughput scales with lane count — group
/// as many blocks as available, up to this.
int lane_width();

/// Lane-count granularity of the active SIMD level (the native vector
/// width in doubles; 1 when scalar). A batch's `lanes` must be a
/// multiple of this, between lane_granularity() and lane_width().
int lane_granularity();

/// One lockstep quantize batch: `lanes` equal-shape blocks stored
/// consecutively (block l spans data[l*bc, (l+1)*bc)).
template <typename T>
struct QuantizeBatch {
  const T* data = nullptr;                // lanes * bc elements
  std::size_t bc = 0;                     // elements per block
  Dims dims;                              // per-block extents
  double eb = 0.0;
  std::uint32_t radius = 0;               // must be <= kLaneMaxRadius
  std::uint32_t* const* codes = nullptr;  // per-lane outputs, bc each
  std::vector<T>* const* outliers = nullptr;  // per-lane outlier vectors
  T* recon = nullptr;  // optional lanes*bc reconstruction, or nullptr
  /// Optional per-lane code histograms (2 * radius entries each, caller
  /// pre-zeroed): filled while codes are still tile-resident, sparing the
  /// caller a separate full pass over them.
  std::uint32_t* const* hist = nullptr;
  int lanes = 0;       // multiple of lane_granularity(), <= lane_width()
};

/// One lockstep dequantize batch; `out` receives lanes*bc reconstructed
/// elements in block order. Throws the scalar kernel's exact
/// underrun/overrun errors when an outlier run does not match its codes.
template <typename T>
struct DequantizeBatch {
  const std::uint32_t* const* codes = nullptr;  // per-lane inputs, bc each
  const std::span<const T>* outliers = nullptr;  // per-lane outlier runs
  std::size_t bc = 0;
  Dims dims;
  double eb = 0.0;
  std::uint32_t radius = 0;  // must be <= kLaneMaxRadius
  T* out = nullptr;          // lanes * bc elements
  int lanes = 0;             // multiple of lane_granularity(), <= lane_width()
};

/// Lockstep Lorenzo quantize of `batch.lanes` blocks. Call only when
/// lane_width() > 1 and radius <= kLaneMaxRadius.
template <typename T>
void quantize_lanes(const QuantizeBatch<T>& batch);

/// Lockstep Lorenzo dequantize of `batch.lanes` blocks. Same gates.
template <typename T>
void dequantize_lanes(const DequantizeBatch<T>& batch);

/// Vectorized temporal (point-wise) quantize of the whole range. Returns
/// false — leaving all outputs untouched — when the active level is
/// scalar or radius exceeds the lane cap; the caller then runs its
/// scalar loop.
template <typename T>
bool try_temporal_quantize(const T* data, const T* prev, std::size_t n, double eb,
                           std::uint32_t radius, std::uint32_t* codes,
                           std::vector<T>& outliers, T* recon);

/// Temporal (point-wise) dequantize of one code range against its
/// reference slice, consuming outliers from position `k` onward. Always
/// available (internally SIMD or scalar — identical bytes either way);
/// returns false on outlier underrun with `k` at the failure point.
/// Shared by temporal_dequantize and the decompress_region row scatter.
template <typename T>
bool temporal_dequant_range(const std::uint32_t* codes, const T* prev, T* out,
                            std::size_t n, std::span<const T> outliers,
                            std::size_t& k, double eb, std::uint32_t radius);

}  // namespace pcw::sz::kern
