// Deterministic domain decomposition for the block-parallel sz pipeline.
//
// The container-v2 format splits a field into contiguous slabs along its
// slowest-varying non-unit dimension. Each slab is quantized, entropy-
// coded, and decoded independently (the Lorenzo predictor zero-pads at
// slab boundaries), which is what lets compress()/decompress() fan blocks
// out across util::ThreadPool — and what lets decompress_region() decode
// only the slabs a hyperslab request touches. The split is a pure
// function of the extents — never of the thread count — so blobs are
// byte-identical for any Params::threads.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "sz/dims.h"

namespace pcw::sz {

/// One slab: a contiguous element range with its own logical extents.
struct BlockRange {
  std::size_t elem_offset = 0;  // start index into the flattened field
  Dims dims;                    // slab extents (dims.count() elements)
};

/// Blocks must amortize their per-block cost (index entry, codebook reuse,
/// boundary-plane prediction reset); smaller fields stay single-block.
inline constexpr std::size_t kMinBlockElems = 32768;
/// Upper bound on slabs per field; 64 keeps the index tiny while leaving
/// plenty of parallel slack for any realistic core count.
inline constexpr std::size_t kMaxBlocks = 64;

/// Extents of a slab of `len` planes along `axis`, full width elsewhere.
inline Dims slab_dims(const Dims& dims, int axis, std::size_t len) {
  return axis == 0   ? Dims{len, dims.d1, dims.d2}
         : axis == 1 ? Dims{1, len, dims.d2}
                     : Dims{1, 1, len};
}

/// Splits `dims` into independent slabs along the slowest-varying
/// dimension with extent > 1. Always returns at least one block, in
/// element order, covering the field exactly.
inline std::vector<BlockRange> split_blocks(const Dims& dims) {
  const std::size_t total = element_count(dims);
  const int axis = slowest_nonunit_axis(dims);
  const std::size_t axis_len = extent(dims, axis);
  const std::size_t row_elems = axis_len == 0 ? 0 : total / axis_len;

  std::size_t n_blocks = std::min({axis_len, total / std::max<std::size_t>(kMinBlockElems, 1),
                                   kMaxBlocks});
  n_blocks = std::max<std::size_t>(n_blocks, 1);
  const std::size_t slab = (axis_len + n_blocks - 1) / n_blocks;

  std::vector<BlockRange> blocks;
  for (std::size_t begin = 0; begin < axis_len; begin += slab) {
    const std::size_t len = std::min(slab, axis_len - begin);
    BlockRange b;
    b.elem_offset = begin * row_elems;
    b.dims = slab_dims(dims, axis, len);
    blocks.push_back(b);
  }
  return blocks;
}

}  // namespace pcw::sz
