// Discrete-event parallel-write simulator.
//
// Writers are fluid flows sharing the platform's aggregate bandwidth
// under per-flow caps (max-min fair / water-filling). Events are job
// arrivals and completions; between events rates are constant, so the
// simulation is exact for the fluid model, with O(E * J) cost.
#pragma once

#include <span>
#include <vector>

#include "iosim/platform.h"

namespace pcw::iosim {

struct WriteJob {
  double arrival = 0.0;    // seconds at which the data is ready to write
  double bytes = 0.0;      // payload size
  double cap = 0.0;        // per-flow rate cap (bytes/s); 0 = derive below
  int proc = 0;            // owning process (informational)
  int tag = 0;             // caller-defined id (field index etc.)
  // Jobs sharing a chain id >= 0 are served strictly in input order (an
  // async write queue drained by one background thread); -1 = no chain.
  int chain = -1;
};

struct SimResult {
  double makespan = 0.0;               // time the last byte lands
  std::vector<double> finish;          // per job, same order as input
  double busy_seconds = 0.0;           // integral of (aggregate in use > 0)
};

/// Simulates independent asynchronous writes. Jobs with cap == 0 get the
/// platform per-process curve cap for their size; write_latency is added
/// to each arrival.
SimResult simulate_independent(const Platform& platform, std::span<const WriteJob> jobs);

/// Simulates one collective write of `bytes_per_proc[i]` from each of P
/// processes entering together at time `start`: derated bandwidth, entry
/// and exit synchronization included. Returns completion time.
double simulate_collective(const Platform& platform, double start,
                           std::span<const double> bytes_per_proc);

}  // namespace pcw::iosim
