// Parallel-filesystem platform models.
//
// The paper's large-scale numbers come from Summit (GPFS/Alpine) and Bebop
// (GPFS); neither is available here, so timing studies run against this
// analytic platform model. It captures the three effects the paper's
// results hinge on:
//
//   1. a *saturating per-process throughput curve* (Fig. 7): small
//      requests get a fraction of the plateau — this is why compressed
//      partitions write disproportionately slowly and why Eq. (2) using
//      the plateau mispredicts at low bit-rates (Fig. 13);
//   2. a *shared aggregate bandwidth* across concurrent writers
//      (processor-sharing with per-writer caps, water-filling);
//   3. *collective-write inefficiency*: collective writes achieve a
//      fraction of independent-write bandwidth plus a per-operation
//      synchronization cost growing with log2(P) — the paper cites
//      ExaHDF5 [19] for independent >> collective and relies on it.
//
// Preset constants are calibrated so the Fig.-16 operating point (512
// procs, ~14x ratio, balanced compression/write) reproduces the paper's
// reported step ratios (1.87x / 1.79x / 1.30x); see EXPERIMENTS.md.
#pragma once

#include <cmath>
#include <string>

namespace pcw::iosim {

struct Platform {
  std::string name;

  // Aggregate file-system bandwidth shared by all writers (bytes/s).
  double aggregate_bw = 32e9;

  // Per-process independent-write throughput: plateau * s / (s + half_size).
  double per_proc_plateau = 200e6;   // bytes/s
  double per_proc_half_size = 6e6;   // bytes

  // Collective writes are penalized twice: the shared-file aggregate
  // bandwidth available to a collective is derated (two-phase I/O,
  // lock contention), and each process's own rate is derated
  // (synchronized progress). ExaHDF5 [19] reports independent >>
  // collective; the paper relies on that gap.
  double collective_efficiency = 0.5;        // aggregate derate
  double collective_proc_efficiency = 0.65;  // per-process derate

  // Cost of one collective synchronization (barrier/offset exchange):
  // alpha + beta * log2(P).
  double sync_alpha = 3e-3;          // seconds
  double sync_beta = 0.5e-3;         // seconds per log2(P)

  // All-gather of one small value per rank: alpha + beta * log2(P).
  double allgather_alpha = 0.3e-3;
  double allgather_beta = 0.25e-3;

  // Fixed setup latency per independent write request (seconds).
  double write_latency = 0.2e-3;

  double per_proc_throughput(double bytes) const {
    return bytes <= 0.0 ? 0.0
                        : per_proc_plateau * bytes / (bytes + per_proc_half_size);
  }

  double sync_cost(int nprocs) const {
    return sync_alpha + sync_beta * std::log2(static_cast<double>(nprocs < 2 ? 2 : nprocs));
  }

  double allgather_cost(int nprocs) const {
    return allgather_alpha +
           allgather_beta * std::log2(static_cast<double>(nprocs < 2 ? 2 : nprocs));
  }

  /// Summit-like: high aggregate bandwidth, relatively cheap collectives.
  static Platform summit();
  /// Bebop-like: ~10x lower aggregate bandwidth, costlier collectives.
  static Platform bebop();
};

}  // namespace pcw::iosim
