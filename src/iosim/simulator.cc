#include "iosim/simulator.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace pcw::iosim {

Platform Platform::summit() {
  // Calibrated against the paper's Fig.-16 operating point (512 procs,
  // ~14-18x ratio, 256^3-per-rank weak scaling): per-process shared-file
  // write throughput on Alpine-class GPFS is tens of MB/s once hundreds
  // of writers contend, and the half-size of the Fig.-7 curve sits at
  // ~10 MB, which is what makes small compressed writes slow relative to
  // compression and the overlap/reordering profitable. See EXPERIMENTS.md
  // for the calibration derivation.
  Platform p;
  p.name = "summit";
  p.aggregate_bw = 15e9;
  p.per_proc_plateau = 20e6;
  p.per_proc_half_size = 12e6;
  p.collective_efficiency = 0.5;
  p.collective_proc_efficiency = 0.65;
  p.sync_alpha = 3e-3;
  p.sync_beta = 0.5e-3;
  p.allgather_alpha = 0.3e-3;
  p.allgather_beta = 0.25e-3;
  p.write_latency = 0.2e-3;
  return p;
}

Platform Platform::bebop() {
  Platform p;
  p.name = "bebop";
  p.aggregate_bw = 1.8e9;
  p.per_proc_plateau = 12e6;
  p.per_proc_half_size = 8e6;
  p.collective_efficiency = 0.5;
  p.collective_proc_efficiency = 0.65;
  p.sync_alpha = 5e-3;
  p.sync_beta = 1.0e-3;
  p.allgather_alpha = 0.5e-3;
  p.allgather_beta = 0.4e-3;
  p.write_latency = 0.5e-3;
  return p;
}

namespace {

// Max-min fair rate allocation (water-filling) of `capacity` across flows
// with per-flow caps. rates[i] is written for each active index.
void water_fill(const std::vector<std::size_t>& active,
                const std::vector<double>& caps, double capacity,
                std::vector<double>& rates) {
  double remaining_capacity = capacity;
  std::vector<std::size_t> unsettled = active;
  // Iteratively give constrained flows their cap; split what remains.
  while (!unsettled.empty()) {
    const double share = remaining_capacity / static_cast<double>(unsettled.size());
    bool any_capped = false;
    for (std::size_t k = 0; k < unsettled.size();) {
      const std::size_t j = unsettled[k];
      if (caps[j] <= share) {
        rates[j] = caps[j];
        remaining_capacity -= caps[j];
        unsettled[k] = unsettled.back();
        unsettled.pop_back();
        any_capped = true;
      } else {
        ++k;
      }
    }
    if (!any_capped) {
      for (const std::size_t j : unsettled) rates[j] = share;
      break;
    }
  }
}

}  // namespace

SimResult simulate_independent(const Platform& platform, std::span<const WriteJob> jobs) {
  const std::size_t n = jobs.size();
  SimResult result;
  result.finish.assign(n, 0.0);
  if (n == 0) return result;

  std::vector<double> remaining(n), caps(n), arrival(n), rates(n, 0.0);
  // Chain bookkeeping: a job is *eligible* once it has arrived AND every
  // earlier (input-order) job of its chain has finished.
  std::vector<std::size_t> chain_pred(n, SIZE_MAX);  // previous job in chain
  {
    std::vector<std::size_t> last_in_chain_sentinel;
    std::vector<int> chain_ids;
    std::vector<std::size_t> chain_last;
    for (std::size_t i = 0; i < n; ++i) {
      if (jobs[i].chain >= 0) {
        const int c = jobs[i].chain;
        std::size_t slot = SIZE_MAX;
        for (std::size_t k = 0; k < chain_ids.size(); ++k) {
          if (chain_ids[k] == c) slot = k;
        }
        if (slot == SIZE_MAX) {
          chain_ids.push_back(c);
          chain_last.push_back(i);
        } else {
          chain_pred[i] = chain_last[slot];
          chain_last[slot] = i;
        }
      }
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (jobs[i].bytes < 0.0) throw std::invalid_argument("iosim: negative job size");
    remaining[i] = jobs[i].bytes;
    caps[i] = jobs[i].cap > 0.0 ? jobs[i].cap : platform.per_proc_throughput(jobs[i].bytes);
    if (caps[i] <= 0.0) caps[i] = 1.0;  // zero-byte jobs finish instantly anyway
    arrival[i] = jobs[i].arrival + platform.write_latency;
  }

  std::vector<bool> done(n, false), started(n, false);
  std::vector<std::size_t> active;
  std::size_t n_done = 0;
  double now = 0.0;
  constexpr double kInf = std::numeric_limits<double>::infinity();

  auto eligible = [&](std::size_t j) {
    return !started[j] && arrival[j] <= now + 1e-15 &&
           (chain_pred[j] == SIZE_MAX || done[chain_pred[j]]);
  };

  while (n_done < n) {
    // Admit every eligible job; loop because retiring a zero-byte job can
    // unblock its chain successor at the same instant.
    for (bool changed = true; changed;) {
      changed = false;
      for (std::size_t j = 0; j < n; ++j) {
        if (!eligible(j)) continue;
        started[j] = true;
        changed = true;
        if (remaining[j] <= 0.0) {
          done[j] = true;
          ++n_done;
          result.finish[j] = std::max(now, arrival[j]);
        } else {
          active.push_back(j);
        }
      }
    }

    if (n_done == n) break;  // the admit pass can retire the final job

    if (active.empty()) {
      // Jump to the earliest pending arrival whose chain is unblocked (a
      // blocked job's predecessor is unfinished, and nothing is active,
      // so its predecessor must itself be waiting on its arrival).
      double next_t = kInf;
      for (std::size_t j = 0; j < n; ++j) {
        if (!started[j] && arrival[j] > now &&
            (chain_pred[j] == SIZE_MAX || done[chain_pred[j]])) {
          next_t = std::min(next_t, arrival[j]);
        }
      }
      if (next_t == kInf) throw std::runtime_error("iosim: deadlocked chains");
      now = next_t;
      continue;
    }

    water_fill(active, caps, platform.aggregate_bw, rates);

    // Time to the next event: earliest completion or next relevant arrival.
    double dt = kInf;
    for (const std::size_t j : active) {
      if (rates[j] > 0.0) dt = std::min(dt, remaining[j] / rates[j]);
    }
    for (std::size_t j = 0; j < n; ++j) {
      if (!started[j] && arrival[j] > now) dt = std::min(dt, arrival[j] - now);
    }
    if (!(dt > 0.0) || dt == kInf) {
      throw std::runtime_error("iosim: stalled simulation");
    }

    for (const std::size_t j : active) remaining[j] -= rates[j] * dt;
    now += dt;
    result.busy_seconds += dt;

    // Retire completed flows.
    for (std::size_t k = 0; k < active.size();) {
      const std::size_t j = active[k];
      if (remaining[j] <= 1e-9 * std::max(1.0, jobs[j].bytes)) {
        result.finish[j] = now;
        done[j] = true;
        ++n_done;
        active[k] = active.back();
        active.pop_back();
      } else {
        ++k;
      }
    }
  }

  result.makespan = 0.0;
  for (const double f : result.finish) result.makespan = std::max(result.makespan, f);
  return result;
}

double simulate_collective(const Platform& platform, double start,
                           std::span<const double> bytes_per_proc) {
  const int nprocs = static_cast<int>(bytes_per_proc.size());
  if (nprocs == 0) return start;
  // Entry sync: offsets are exchanged and every rank waits for the slot
  // assignment; exit sync: the collective returns together.
  double t = start + platform.sync_cost(nprocs);

  // All flows start together under derated bandwidth/caps; with identical
  // start times the fluid completion is the max of per-flow lower bounds
  // computed by a single water-filled simulation.
  Platform derated = platform;
  derated.aggregate_bw *= platform.collective_efficiency;
  derated.write_latency = 0.0;
  std::vector<WriteJob> jobs(static_cast<std::size_t>(nprocs));
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].arrival = 0.0;
    jobs[i].bytes = bytes_per_proc[i];
    jobs[i].cap = platform.per_proc_throughput(bytes_per_proc[i]) *
                  platform.collective_proc_efficiency;
    jobs[i].proc = static_cast<int>(i);
  }
  const SimResult r = simulate_independent(derated, jobs);
  t += r.makespan;
  t += platform.sync_cost(nprocs);
  return t;
}

}  // namespace pcw::iosim
