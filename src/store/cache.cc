#include "store/cache.h"

#include "util/metrics.h"

namespace pcw::store {

namespace metrics = util::metrics;

BlockCache::BlockCache(std::uint64_t capacity_bytes, unsigned shards) {
  if (shards == 0) shards = 1;
  shard_budget_ = capacity_bytes / shards;
  shards_.reserve(shards);
  for (unsigned i = 0; i < shards; ++i) shards_.push_back(std::make_unique<Shard>());
}

BlockCache::~BlockCache() {
  std::uint64_t resident = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lk(s->mu);
    resident += s->bytes;
  }
  if (resident != 0) {
    metrics::Registry::get().store_cache_bytes.add(-static_cast<std::int64_t>(resident));
  }
}

BlockCache::Shard& BlockCache::shard_of(const CacheKey& key) {
  const std::size_t h = CacheKeyHash{}(key);
  return *shards_[h % shards_.size()];
}

/// Caller holds s.mu. Evicts from the LRU tail until `key`'s value fits,
/// then inserts. An entry bigger than the whole shard budget stays
/// uncached (the caller still gets the decoded value).
void BlockCache::insert_locked(Shard& s, const CacheKey& key,
                               std::shared_ptr<const CachedValue> value) {
  const std::uint64_t size = value->bytes.size();
  if (size > shard_budget_) return;
  metrics::Registry& reg = metrics::Registry::get();
  while (s.bytes + size > shard_budget_ && !s.lru.empty()) {
    const CacheKey& victim = s.lru.back();
    auto it = s.map.find(victim);
    s.bytes -= it->second.value->bytes.size();
    reg.store_cache_bytes.add(-static_cast<std::int64_t>(it->second.value->bytes.size()));
    reg.store_cache_evictions.add(1);
    s.map.erase(it);
    s.lru.pop_back();
  }
  s.lru.push_front(key);
  s.map.emplace(key, Shard::Entry{std::move(value), s.lru.begin()});
  s.bytes += size;
  reg.store_cache_bytes.add(static_cast<std::int64_t>(size));
}

Result<std::shared_ptr<const CachedValue>> BlockCache::get_or_fill(
    const CacheKey& key, const std::function<Result<CachedValue>()>& fill) {
  metrics::Registry& reg = metrics::Registry::get();
  Shard& s = shard_of(key);
  std::shared_ptr<Flight> flight;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lk(s.mu);
    auto it = s.map.find(key);
    if (it != s.map.end()) {
      s.lru.splice(s.lru.begin(), s.lru, it->second.lru_it);
      reg.store_cache_hits.add(1);
      return it->second.value;
    }
    auto fit = s.flights.find(key);
    if (fit != s.flights.end()) {
      flight = fit->second;
      reg.store_coalesced.add(1);
    } else {
      flight = std::make_shared<Flight>();
      s.flights.emplace(key, flight);
      leader = true;
      reg.store_cache_misses.add(1);
    }
  }

  if (!leader) {
    std::unique_lock<std::mutex> lk(flight->mu);
    flight->cv.wait(lk, [&] { return flight->done; });
    return *flight->result;
  }

  // Flight leader: decode outside every lock, publish, then wake waiters.
  Result<std::shared_ptr<const CachedValue>> outcome =
      Status(StatusCode::kInternal, "store: cache fill did not run");
  try {
    Result<CachedValue> filled = fill();
    if (filled.ok()) {
      outcome = std::make_shared<const CachedValue>(std::move(filled).value());
    } else {
      outcome = filled.status();
    }
  } catch (const std::exception& e) {
    outcome = Status(StatusCode::kInternal, std::string("store: cache fill: ") + e.what());
  }

  {
    std::lock_guard<std::mutex> lk(s.mu);
    if (outcome.ok() && shard_budget_ != 0 && s.map.find(key) == s.map.end()) {
      insert_locked(s, key, outcome.value());
    }
    s.flights.erase(key);
  }
  {
    std::lock_guard<std::mutex> lk(flight->mu);
    flight->result = outcome;
    flight->done = true;
  }
  flight->cv.notify_all();
  return outcome;
}

std::shared_ptr<const CachedValue> BlockCache::lookup(const CacheKey& key) {
  Shard& s = shard_of(key);
  std::lock_guard<std::mutex> lk(s.mu);
  auto it = s.map.find(key);
  if (it == s.map.end()) return nullptr;
  s.lru.splice(s.lru.begin(), s.lru, it->second.lru_it);
  util::metrics::Registry::get().store_cache_hits.add(1);
  return it->second.value;
}

void BlockCache::invalidate_file(std::uint32_t file_id) {
  metrics::Registry& reg = metrics::Registry::get();
  for (const auto& sp : shards_) {
    Shard& s = *sp;
    std::lock_guard<std::mutex> lk(s.mu);
    for (auto it = s.lru.begin(); it != s.lru.end();) {
      if (it->file_id != file_id) {
        ++it;
        continue;
      }
      auto mit = s.map.find(*it);
      const std::uint64_t size = mit->second.value->bytes.size();
      s.bytes -= size;
      reg.store_cache_bytes.add(-static_cast<std::int64_t>(size));
      s.map.erase(mit);
      it = s.lru.erase(it);
    }
  }
}

std::uint64_t BlockCache::resident_bytes() const {
  std::uint64_t total = 0;
  for (const auto& sp : shards_) {
    std::lock_guard<std::mutex> lk(sp->mu);
    total += sp->bytes;
  }
  return total;
}

}  // namespace pcw::store
