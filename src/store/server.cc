// pcwd server: accept loop, thread-per-client service loop, and the
// request dispatch gluing the protocol to the catalog and cache.
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <thread>

#include "pcw/series.h"
#include "pcw/store.h"
#include "pcw/telemetry.h"
#include "store/cache.h"
#include "store/catalog.h"
#include "store/protocol.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace pcw::store {

namespace metrics = util::metrics;

namespace {

RemoteDataset to_remote(const DatasetInfo& info) {
  RemoteDataset d;
  d.name = info.name;
  d.dtype = info.dtype;
  d.dims = info.dims;
  d.filter_id = info.filter_id;
  d.stored_bytes = info.stored_bytes;
  d.partitions = static_cast<std::uint32_t>(info.partitions.size());
  d.series_member = info.series_member;
  d.series_base = info.series_base;
  d.series_step = info.series_step;
  d.series_ref_step = info.series_ref_step;
  return d;
}

/// Row-major copy of `region` out of a whole-field buffer with extents
/// `dims` (the cache's keyframe-reconstruction reuse: a resident whole
/// step serves any sparse region of it without another decode).
CachedValue slice_region(const CachedValue& whole, const Region& region) {
  CachedValue out;
  out.dtype = whole.dtype;
  out.extents = region.extents();
  const std::size_t elem = element_size(whole.dtype);
  const Dims& dims = whole.extents;
  out.bytes.resize(region.count() * elem);
  const std::size_t row = (region.hi[2] - region.lo[2]) * elem;
  std::size_t dst = 0;
  for (std::size_t i0 = region.lo[0]; i0 < region.hi[0]; ++i0) {
    for (std::size_t i1 = region.lo[1]; i1 < region.hi[1]; ++i1) {
      const std::size_t src =
          ((i0 * dims.d1 + i1) * dims.d2 + region.lo[2]) * elem;
      std::memcpy(out.bytes.data() + dst, whole.bytes.data() + src, row);
      dst += row;
    }
  }
  return out;
}

bool region_within(const Region& region, const Dims& dims) {
  return !region.empty() && region.hi[0] <= dims.d0 && region.hi[1] <= dims.d1 &&
         region.hi[2] <= dims.d2;
}

std::array<std::uint64_t, 6> box_of(const std::optional<Region>& region) {
  std::array<std::uint64_t, 6> box{};
  if (region.has_value()) {
    for (int i = 0; i < 3; ++i) box[static_cast<std::size_t>(i)] = region->lo[static_cast<std::size_t>(i)];
    for (int i = 0; i < 3; ++i) box[static_cast<std::size_t>(i) + 3] = region->hi[static_cast<std::size_t>(i)];
  }
  return box;
}

}  // namespace

struct Server::Impl {
  StoreOptions options;
  Address addr;
  int listen_fd = -1;
  Catalog catalog;
  BlockCache cache;

  std::thread accept_thread;
  std::atomic<bool> stopping{false};

  struct Conn {
    int fd = -1;
    std::thread worker;
    std::atomic<bool> finished{false};
  };
  std::mutex conns_mu;
  std::vector<std::unique_ptr<Conn>> conns;

  std::mutex stop_mu;
  std::condition_variable stop_cv;
  bool stop_requested = false;
  bool stopped = false;
  Status stop_status = Status::Ok();

  Impl(StoreOptions opts)
      : options(opts),
        catalog(opts.reader),
        cache(opts.cache_bytes, opts.cache_shards) {}

  void accept_loop();
  void serve_client(Conn* conn);
  Result<std::vector<std::uint8_t>> dispatch(std::uint8_t op,
                                             const std::vector<std::uint8_t>& payload,
                                             bool* want_shutdown);

  Result<std::vector<std::uint8_t>> handle_open(WireReader& req);
  Result<std::vector<std::uint8_t>> handle_list(WireReader& req);
  Result<std::vector<std::uint8_t>> handle_read(WireReader& req, bool series_step);
  Result<std::vector<std::uint8_t>> handle_write_step(WireReader& req);
  Result<std::vector<std::uint8_t>> handle_scrub(WireReader& req);
  Result<std::vector<std::uint8_t>> handle_stats();

  void request_stop() {
    {
      std::lock_guard<std::mutex> lk(stop_mu);
      stop_requested = true;
    }
    stop_cv.notify_all();
  }
};

void Server::Impl::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed (stop) or fatal: either way, stop accepting
    }
    if (stopping.load()) {
      ::close(fd);
      continue;
    }
    // Reap finished connections so a long-lived server does not
    // accumulate joinable threads. The Conn owns its fd: it is closed
    // here (or in stop()), strictly after the worker has been joined.
    std::lock_guard<std::mutex> lk(conns_mu);
    for (auto it = conns.begin(); it != conns.end();) {
      if ((*it)->finished.load()) {
        (*it)->worker.join();
        ::close((*it)->fd);
        it = conns.erase(it);
      } else {
        ++it;
      }
    }
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    Conn* raw = conn.get();
    conn->worker = std::thread([this, raw] { serve_client(raw); });
    conns.push_back(std::move(conn));
  }
}

void Server::Impl::serve_client(Conn* conn) {
  metrics::Registry::get().store_active_clients.add(1);
  std::vector<std::uint8_t> payload;
  bool want_shutdown = false;
  for (;;) {
    std::uint8_t op = 0;
    try {
      if (!read_frame(conn->fd, &op, &payload)) break;  // clean EOF
    } catch (const std::exception&) {
      break;  // torn frame or dead socket: nothing sane to reply to
    }
    metrics::Registry::get().store_requests.add(1);
    Result<std::vector<std::uint8_t>> reply = dispatch(op, payload, &want_shutdown);
    try {
      if (reply.ok()) {
        write_frame(conn->fd, 0, reply.value());
      } else {
        WireWriter w;
        w.str(reply.status().message());
        const std::vector<std::uint8_t> body = w.take();
        write_frame(conn->fd, static_cast<std::uint8_t>(reply.status().code()), body);
      }
    } catch (const std::exception&) {
      break;  // peer vanished mid-reply
    }
    if (want_shutdown) break;
  }
  // The fd stays open until the owner joins this thread: stop() may be
  // concurrently ::shutdown()-ing it, which must never hit a recycled fd.
  metrics::Registry::get().store_active_clients.add(-1);
  if (want_shutdown) request_stop();
  conn->finished.store(true);
}

Result<std::vector<std::uint8_t>> Server::Impl::dispatch(
    std::uint8_t op, const std::vector<std::uint8_t>& payload, bool* want_shutdown) {
  util::trace::Span span(op_name(op), "store");
  WireReader req{std::span<const std::uint8_t>(payload)};
  try {
    switch (static_cast<Op>(op)) {
      case Op::kOpen: return handle_open(req);
      case Op::kList: return handle_list(req);
      case Op::kReadRegion: return handle_read(req, /*series_step=*/false);
      case Op::kReadStep: return handle_read(req, /*series_step=*/true);
      case Op::kWriteStep: return handle_write_step(req);
      case Op::kScrub: return handle_scrub(req);
      case Op::kStats: return handle_stats();
      case Op::kPing: return std::vector<std::uint8_t>{};
      case Op::kShutdown:
        *want_shutdown = true;
        return std::vector<std::uint8_t>{};
    }
    return Status(StatusCode::kInvalidArgument,
                  "store: unknown opcode " + std::to_string(op));
  } catch (const std::exception& e) {
    // Truncated payloads and other parse failures land here.
    return Status(StatusCode::kInvalidArgument, std::string("store: ") + e.what());
  }
}

Result<std::vector<std::uint8_t>> Server::Impl::handle_open(WireReader& req) {
  const std::string path = req.str();
  const auto mode = static_cast<OpenMode>(req.u8());
  if (mode != OpenMode::kRead && mode != OpenMode::kCreate) {
    return Status(StatusCode::kInvalidArgument, "store: bad open mode");
  }
  Result<std::shared_ptr<FileEntry>> entry = catalog.open(path, mode);
  if (!entry.ok()) return entry.status();
  const FileEntry& e = *entry.value();
  std::uint32_t datasets = 0;
  if (Result<std::shared_ptr<Reader>> snap = e.snapshot(); snap.ok()) {
    datasets = static_cast<std::uint32_t>(snap.value()->datasets().size());
  }
  WireWriter w;
  w.u32(e.id());
  w.str(e.path());
  w.u8(e.writable() ? 1 : 0);
  w.u64(e.generation());
  w.u32(datasets);
  return w.take();
}

Result<std::vector<std::uint8_t>> Server::Impl::handle_list(WireReader& req) {
  const std::uint32_t file_id = req.u32();
  WireWriter w;
  if (file_id == 0) {  // whole-catalog listing: file records
    const auto entries = catalog.entries();
    w.u32(static_cast<std::uint32_t>(entries.size()));
    for (const auto& e : entries) {
      std::uint32_t datasets = 0;
      if (Result<std::shared_ptr<Reader>> snap = e->snapshot(); snap.ok()) {
        datasets = static_cast<std::uint32_t>(snap.value()->datasets().size());
      }
      w.u32(e->id());
      w.str(e->path());
      w.u8(e->writable() ? 1 : 0);
      w.u64(e->generation());
      w.u32(datasets);
    }
    return w.take();
  }
  Result<std::shared_ptr<FileEntry>> entry = catalog.find(file_id);
  if (!entry.ok()) return entry.status();
  Result<std::shared_ptr<Reader>> snap = entry.value()->snapshot();
  if (!snap.ok()) return snap.status();
  const std::vector<DatasetInfo> infos = snap.value()->datasets();
  w.u32(static_cast<std::uint32_t>(infos.size()));
  for (const DatasetInfo& info : infos) put_dataset(w, to_remote(info));
  return w.take();
}

Result<std::vector<std::uint8_t>> Server::Impl::handle_read(WireReader& req,
                                                            bool series_step) {
  const std::uint32_t file_id = req.u32();
  const std::string name = req.str();
  const std::uint32_t step = series_step ? req.u32() : 0;
  const std::optional<Region> region = req.region();
  const std::uint8_t expected = req.u8();

  Result<std::shared_ptr<FileEntry>> found = catalog.find(file_id);
  if (!found.ok()) return found.status();
  FileEntry& entry = *found.value();

  // Shared lock on the dataset's shard for the whole read: a write batch
  // touching this field waits, and vice versa.
  std::shared_lock<std::shared_mutex> lock = entry.lock_read(name);
  Result<std::shared_ptr<Reader>> snap = entry.snapshot();
  if (!snap.ok()) return snap.status();
  std::shared_ptr<Reader> reader = snap.value();
  const std::uint64_t generation = entry.generation();

  Result<DatasetInfo> info = series_step ? reader->series_step(name, step)
                                         : reader->dataset(name);
  if (!info.ok()) return info.status();
  const DType dtype = expected == kDTypeAny ? info.value().dtype
                                            : static_cast<DType>(expected);

  CacheKey key;
  key.file_id = file_id;
  key.generation = generation;
  key.kind = series_step ? 1 : 0;
  key.step = step;
  key.dtype = static_cast<std::uint8_t>(dtype);
  key.name = name;
  key.box = box_of(region);

  std::shared_ptr<const CachedValue> value;
  if (region.has_value()) {
    // Exact-region entry, else slice a resident whole-field/step decode
    // (keyframe reconstruction reuse), else decode just the region.
    value = cache.lookup(key);
    if (value == nullptr && region_within(*region, info.value().dims)) {
      CacheKey whole = key;
      whole.box = {};
      if (std::shared_ptr<const CachedValue> all = cache.lookup(whole)) {
        value = std::make_shared<const CachedValue>(slice_region(*all, *region));
      }
    }
  }
  if (value == nullptr) {
    const Dims extents = region.has_value() ? region->extents() : info.value().dims;
    auto fill = [&]() -> Result<CachedValue> {
      Result<std::vector<std::uint8_t>> bytes =
          series_step
              ? restart_bytes(*reader, name, step, dtype, region,
                              SeriesReadOptions())
              : (region.has_value()
                     ? reader->read_region_bytes(name, *region, dtype)
                     : reader->read_bytes(name, dtype));
      if (!bytes.ok()) return bytes.status();
      CachedValue v;
      v.dtype = dtype;
      v.extents = extents;
      v.bytes = std::move(bytes).value();
      return v;
    };
    Result<std::shared_ptr<const CachedValue>> filled = cache.get_or_fill(key, fill);
    if (!filled.ok()) return filled.status();
    value = std::move(filled).value();
  }

  WireWriter w;
  w.u8(static_cast<std::uint8_t>(value->dtype));
  w.u64(value->extents.d0);
  w.u64(value->extents.d1);
  w.u64(value->extents.d2);
  w.blob(value->bytes);
  return w.take();
}

Result<std::vector<std::uint8_t>> Server::Impl::handle_write_step(WireReader& req) {
  const std::uint32_t file_id = req.u32();
  auto pending = std::make_unique<PendingWrite>();
  pending->field = req.str();
  pending->dtype = static_cast<DType>(req.u8());
  pending->dims.d0 = static_cast<std::size_t>(req.u64());
  pending->dims.d1 = static_cast<std::size_t>(req.u64());
  pending->dims.d2 = static_cast<std::size_t>(req.u64());
  pending->error_bound = req.f64();
  pending->keyframe_interval = req.u32();
  pending->data = req.blob();
  if (pending->dtype != DType::kFloat32 && pending->dtype != DType::kFloat64) {
    return Status(StatusCode::kInvalidArgument,
                  "store: write_step dtype must be float32 or float64");
  }

  Result<std::shared_ptr<FileEntry>> found = catalog.find(file_id);
  if (!found.ok()) return found.status();
  Result<RemoteStep> step = found.value()->submit_write(std::move(pending), cache);
  if (!step.ok()) return step.status();
  WireWriter w;
  w.u32(step.value().step);
  w.u8(step.value().keyframe ? 1 : 0);
  w.u64(step.value().generation);
  return w.take();
}

Result<std::vector<std::uint8_t>> Server::Impl::handle_scrub(WireReader& req) {
  const std::uint32_t file_id = req.u32();
  const bool deep = req.u8() != 0;
  Result<std::shared_ptr<FileEntry>> found = catalog.find(file_id);
  if (!found.ok()) return found.status();
  FileEntry& entry = *found.value();
  // Scrub holds every shard shared: it tolerates concurrent readers but
  // never overlaps a write batch's commit window.
  const auto locks = entry.lock_read_all();
  Result<std::shared_ptr<Reader>> snap = entry.snapshot();
  if (!snap.ok()) return snap.status();
  Result<ScrubReport> report = snap.value()->scrub(deep);
  if (!report.ok()) return report.status();
  WireWriter w;
  put_scrub(w, report.value());
  return w.take();
}

Result<std::vector<std::uint8_t>> Server::Impl::handle_stats() {
  const Telemetry t = pcw::metrics_snapshot();
  const std::vector<TelemetryItem> items = telemetry_items(t);
  WireWriter w;
  w.u32(static_cast<std::uint32_t>(items.size()));
  for (const TelemetryItem& item : items) {
    w.str(item.name);
    w.u64(item.value);
  }
  return w.take();
}

// ---- public handle ---------------------------------------------------------

Result<Server> Server::start(const std::string& address, StoreOptions options) {
  auto impl = std::make_shared<Impl>(options);
  try {
    impl->addr = parse_address(address);
    impl->listen_fd = listen_on(impl->addr);
  } catch (const std::exception& e) {
    return Status(StatusCode::kIoError, e.what());
  }
  impl->accept_thread = std::thread([impl] { impl->accept_loop(); });
  Server server;
  server.impl_ = std::move(impl);
  return server;
}

std::string Server::address() const {
  if (impl_ == nullptr) return {};
  return to_spec(impl_->addr);
}

void Server::wait() {
  if (impl_ == nullptr) return;
  std::unique_lock<std::mutex> lk(impl_->stop_mu);
  impl_->stop_cv.wait(lk, [&] { return impl_->stop_requested || impl_->stopped; });
}

bool Server::wait_for_ms(unsigned ms) {
  if (impl_ == nullptr) return true;
  std::unique_lock<std::mutex> lk(impl_->stop_mu);
  return impl_->stop_cv.wait_for(lk, std::chrono::milliseconds(ms), [&] {
    return impl_->stop_requested || impl_->stopped;
  });
}

Status Server::stop() {
  if (impl_ == nullptr) {
    return Status(StatusCode::kFailedPrecondition, "store: invalid server handle");
  }
  Impl& s = *impl_;
  {
    std::lock_guard<std::mutex> lk(s.stop_mu);
    if (s.stopped) return s.stop_status;
  }
  s.stopping.store(true);
  // Closing the listener makes accept() fail, ending the accept loop.
  ::shutdown(s.listen_fd, SHUT_RDWR);
  ::close(s.listen_fd);
  if (s.accept_thread.joinable()) s.accept_thread.join();
  // Kick every live client off its blocking read, then join.
  {
    std::lock_guard<std::mutex> lk(s.conns_mu);
    for (auto& conn : s.conns) {
      if (!conn->finished.load()) ::shutdown(conn->fd, SHUT_RDWR);
    }
    for (auto& conn : s.conns) {
      if (conn->worker.joinable()) conn->worker.join();
      ::close(conn->fd);
    }
    s.conns.clear();
  }
  Status status = s.catalog.close_all();
  if (!s.addr.tcp) ::unlink(s.addr.path.c_str());
  {
    std::lock_guard<std::mutex> lk(s.stop_mu);
    s.stopped = true;
    s.stop_status = status;
  }
  s.stop_cv.notify_all();
  return status;
}

}  // namespace pcw::store
