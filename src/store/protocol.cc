#include "store/protocol.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace pcw::store {

const char* op_name(std::uint8_t op) {
  switch (static_cast<Op>(op)) {
    case Op::kOpen: return "store.open";
    case Op::kList: return "store.list";
    case Op::kReadRegion: return "store.read_region";
    case Op::kReadStep: return "store.read_step";
    case Op::kWriteStep: return "store.write_step";
    case Op::kScrub: return "store.scrub";
    case Op::kStats: return "store.stats";
    case Op::kPing: return "store.ping";
    case Op::kShutdown: return "store.shutdown";
  }
  return "store.unknown";
}

void put_dataset(WireWriter& w, const RemoteDataset& d) {
  w.str(d.name);
  w.u8(static_cast<std::uint8_t>(d.dtype));
  w.u64(d.dims.d0);
  w.u64(d.dims.d1);
  w.u64(d.dims.d2);
  w.u32(d.filter_id);
  w.u64(d.stored_bytes);
  w.u32(d.partitions);
  w.u8(d.series_member ? 1 : 0);
  w.str(d.series_base);
  w.u32(d.series_step);
  w.u32(d.series_ref_step);
}

RemoteDataset get_dataset(WireReader& r) {
  RemoteDataset d;
  d.name = r.str();
  d.dtype = static_cast<DType>(r.u8());
  d.dims.d0 = static_cast<std::size_t>(r.u64());
  d.dims.d1 = static_cast<std::size_t>(r.u64());
  d.dims.d2 = static_cast<std::size_t>(r.u64());
  d.filter_id = r.u32();
  d.stored_bytes = r.u64();
  d.partitions = r.u32();
  d.series_member = r.u8() != 0;
  d.series_base = r.str();
  d.series_step = r.u32();
  d.series_ref_step = r.u32();
  return d;
}

void put_scrub(WireWriter& w, const ScrubReport& report) {
  w.u64(report.clean);
  w.u64(report.damaged);
  w.u64(report.unreadable);
  w.u32(static_cast<std::uint32_t>(report.datasets.size()));
  for (const ScrubDataset& d : report.datasets) {
    w.str(d.name);
    w.u8(static_cast<std::uint8_t>(d.state));
    w.u8(d.salvageable ? 1 : 0);
    w.u64(d.partitions);
    w.u64(d.damaged_partitions);
    w.str(d.detail);
  }
}

ScrubReport get_scrub(WireReader& r) {
  ScrubReport report;
  report.clean = r.u64();
  report.damaged = r.u64();
  report.unreadable = r.u64();
  const std::uint32_t n = r.u32();
  report.datasets.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    ScrubDataset d;
    d.name = r.str();
    d.state = static_cast<ScrubHealth>(r.u8());
    d.salvageable = r.u8() != 0;
    d.partitions = r.u64();
    d.damaged_partitions = r.u64();
    d.detail = r.str();
    report.datasets.push_back(std::move(d));
  }
  return report;
}

namespace {

[[noreturn]] void raise_errno(const std::string& what) {
  throw std::runtime_error("store: " + what + ": " + std::strerror(errno));
}

/// Reads exactly n bytes. Returns false only on EOF before the first
/// byte when eof_ok; throws otherwise.
bool read_exact(int fd, void* buf, std::size_t n, bool eof_ok) {
  auto* p = static_cast<std::uint8_t*>(buf);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, p + got, n - got, 0);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) {
      if (got == 0 && eof_ok) return false;
      throw std::runtime_error("store: connection closed mid-frame");
    }
    if (errno == EINTR) continue;
    raise_errno("recv");
  }
  return true;
}

void write_exact(int fd, const void* buf, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  std::size_t sent = 0;
  while (sent < n) {
    // MSG_NOSIGNAL: a peer that vanished mid-reply must surface as EPIPE,
    // not kill the daemon with SIGPIPE.
    const ssize_t r = ::send(fd, p + sent, n - sent, MSG_NOSIGNAL);
    if (r >= 0) {
      sent += static_cast<std::size_t>(r);
      continue;
    }
    if (errno == EINTR) continue;
    raise_errno("send");
  }
}

}  // namespace

bool read_frame(int fd, std::uint8_t* tag, std::vector<std::uint8_t>* payload) {
  std::uint8_t head[5];
  if (!read_exact(fd, head, sizeof head, /*eof_ok=*/true)) return false;
  const std::uint32_t len = static_cast<std::uint32_t>(head[0]) |
                            static_cast<std::uint32_t>(head[1]) << 8 |
                            static_cast<std::uint32_t>(head[2]) << 16 |
                            static_cast<std::uint32_t>(head[3]) << 24;
  if (len > kMaxFrameBytes) {
    throw std::runtime_error("store: frame exceeds " + std::to_string(kMaxFrameBytes) +
                             " bytes");
  }
  *tag = head[4];
  payload->resize(len);
  if (len != 0) read_exact(fd, payload->data(), len, /*eof_ok=*/false);
  return true;
}

void write_frame(int fd, std::uint8_t tag, std::span<const std::uint8_t> payload) {
  if (payload.size() > kMaxFrameBytes) {
    throw std::runtime_error("store: oversized reply frame");
  }
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  std::uint8_t head[5] = {static_cast<std::uint8_t>(len),
                          static_cast<std::uint8_t>(len >> 8),
                          static_cast<std::uint8_t>(len >> 16),
                          static_cast<std::uint8_t>(len >> 24), tag};
  // One coalesced buffer per frame: small replies go out in one send.
  std::vector<std::uint8_t> frame;
  frame.reserve(sizeof head + payload.size());
  frame.insert(frame.end(), head, head + sizeof head);
  frame.insert(frame.end(), payload.begin(), payload.end());
  write_exact(fd, frame.data(), frame.size());
}

Address parse_address(const std::string& spec) {
  Address addr;
  if (spec.rfind("unix:", 0) == 0) {
    addr.tcp = false;
    addr.path = spec.substr(5);
  } else if (spec.rfind("tcp:", 0) == 0) {
    const std::string rest = spec.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 == rest.size()) {
      throw std::invalid_argument("store: bad tcp address '" + spec +
                                  "' (want tcp:<host>:<port>)");
    }
    addr.tcp = true;
    addr.host = rest.substr(0, colon);
    const std::string port = rest.substr(colon + 1);
    char* end = nullptr;
    const unsigned long v = std::strtoul(port.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || v > 65535) {
      throw std::invalid_argument("store: bad tcp port '" + port + "'");
    }
    addr.port = static_cast<std::uint16_t>(v);
  } else if (spec.find('/') != std::string::npos) {
    addr.tcp = false;
    addr.path = spec;
  } else {
    throw std::invalid_argument("store: bad address '" + spec +
                                "' (want unix:<path> or tcp:<host>:<port>)");
  }
  if (!addr.tcp && addr.path.empty()) {
    throw std::invalid_argument("store: empty unix socket path");
  }
  if (!addr.tcp && addr.path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    throw std::invalid_argument("store: unix socket path too long: " + addr.path);
  }
  return addr;
}

std::string to_spec(const Address& addr) {
  if (!addr.tcp) return "unix:" + addr.path;
  return "tcp:" + addr.host + ":" + std::to_string(addr.port);
}

namespace {

sockaddr_un make_unix_addr(const std::string& path) {
  sockaddr_un sa{};
  sa.sun_family = AF_UNIX;
  std::memcpy(sa.sun_path, path.c_str(), path.size() + 1);
  return sa;
}

struct AddrInfo {
  addrinfo* list = nullptr;
  ~AddrInfo() {
    if (list != nullptr) ::freeaddrinfo(list);
  }
};

AddrInfo resolve_tcp(const Address& addr, bool passive) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  if (passive) hints.ai_flags = AI_PASSIVE;
  AddrInfo out;
  const std::string port = std::to_string(addr.port);
  const int rc = ::getaddrinfo(addr.host.empty() ? nullptr : addr.host.c_str(),
                               port.c_str(), &hints, &out.list);
  if (rc != 0) {
    throw std::runtime_error("store: cannot resolve " + to_spec(addr) + ": " +
                             ::gai_strerror(rc));
  }
  return out;
}

}  // namespace

int listen_on(Address& addr) {
  int fd = -1;
  if (!addr.tcp) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) raise_errno("socket");
    const sockaddr_un sa = make_unix_addr(addr.path);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof sa) != 0) {
      const int saved = errno;
      ::close(fd);
      errno = saved;
      raise_errno("bind " + addr.path);
    }
  } else {
    const AddrInfo ai = resolve_tcp(addr, /*passive=*/true);
    for (addrinfo* a = ai.list; a != nullptr; a = a->ai_next) {
      fd = ::socket(a->ai_family, a->ai_socktype, a->ai_protocol);
      if (fd < 0) continue;
      const int one = 1;
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
      if (::bind(fd, a->ai_addr, a->ai_addrlen) == 0) break;
      ::close(fd);
      fd = -1;
    }
    if (fd < 0) raise_errno("bind " + to_spec(addr));
    if (addr.port == 0) {
      sockaddr_storage ss{};
      socklen_t len = sizeof ss;
      if (::getsockname(fd, reinterpret_cast<sockaddr*>(&ss), &len) == 0) {
        if (ss.ss_family == AF_INET) {
          addr.port = ntohs(reinterpret_cast<sockaddr_in*>(&ss)->sin_port);
        } else if (ss.ss_family == AF_INET6) {
          addr.port = ntohs(reinterpret_cast<sockaddr_in6*>(&ss)->sin6_port);
        }
      }
    }
  }
  if (::listen(fd, 64) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    raise_errno("listen " + to_spec(addr));
  }
  return fd;
}

int connect_to(const Address& addr) {
  if (!addr.tcp) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) raise_errno("socket");
    const sockaddr_un sa = make_unix_addr(addr.path);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof sa) != 0) {
      const int saved = errno;
      ::close(fd);
      errno = saved;
      raise_errno("connect " + to_spec(addr));
    }
    return fd;
  }
  const AddrInfo ai = resolve_tcp(addr, /*passive=*/false);
  for (addrinfo* a = ai.list; a != nullptr; a = a->ai_next) {
    const int fd = ::socket(a->ai_family, a->ai_socktype, a->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, a->ai_addr, a->ai_addrlen) == 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return fd;
    }
    ::close(fd);
  }
  raise_errno("connect " + to_spec(addr));
}

}  // namespace pcw::store
