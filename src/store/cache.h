// Sharded, byte-bounded LRU cache of decoded read results with
// single-flight coalescing: at most one decode per key runs at a time;
// concurrent requesters for the same key block on the in-flight decode
// and share its result instead of decoding again.
//
// Counter semantics (util::metrics, load-bearing for tests/store_test.cc):
//   store_cache_hits      — request served from a resident entry
//   store_cache_misses    — request that became the decode (flight leader)
//   store_coalesced       — request that joined another's in-flight decode
//   store_cache_evictions — entries dropped to make room under the budget
//   store_cache_bytes     — resident bytes gauge (+ high-water)
// Every get_or_fill() increments exactly one of {hits, misses, coalesced}.
#pragma once

#include <array>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "pcw/status.h"
#include "pcw/types.h"

namespace pcw::store {

/// Cache identity of one decoded result. `generation` is the owning
/// file's commit count — a commit bumps it, so stale entries become
/// unreachable (and age out via LRU) without an explicit flush.
struct CacheKey {
  std::uint32_t file_id = 0;
  std::uint64_t generation = 0;
  std::uint8_t kind = 0;  // 0 = plain dataset read, 1 = series step
  std::uint32_t step = 0;
  std::uint8_t dtype = 0;
  std::string name;  // dataset name (kind 0) or series base (kind 1)
  std::array<std::uint64_t, 6> box{};  // lo0..lo2, hi0..hi2; all-zero = whole field

  bool operator==(const CacheKey&) const = default;
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& k) const {
    std::uint64_t h = 1469598103934665603ull;  // FNV-1a over the fields
    auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 1099511628211ull;
    };
    mix(k.file_id);
    mix(k.generation);
    mix(k.kind);
    mix(k.step);
    mix(k.dtype);
    mix(std::hash<std::string>{}(k.name));
    for (std::uint64_t b : k.box) mix(b);
    return static_cast<std::size_t>(h);
  }
};

/// One decoded result: element bytes plus their logical extents.
struct CachedValue {
  DType dtype = DType::kFloat32;
  Dims extents;
  std::vector<std::uint8_t> bytes;
};

class BlockCache {
 public:
  /// `capacity_bytes` 0 disables residency (fills still coalesce).
  BlockCache(std::uint64_t capacity_bytes, unsigned shards);
  ~BlockCache();

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  /// Returns the entry for `key`, running `fill` at most once across all
  /// concurrent callers of the same key. A failed fill is not cached;
  /// every waiter receives its error. `fill` runs without any cache lock
  /// held, so it may take arbitrary time (a full chain decode).
  Result<std::shared_ptr<const CachedValue>> get_or_fill(
      const CacheKey& key, const std::function<Result<CachedValue>()>& fill);

  /// Residency probe without filling: counts a hit when present, counts
  /// nothing when absent (the caller falls through to get_or_fill, which
  /// does the miss accounting).
  std::shared_ptr<const CachedValue> lookup(const CacheKey& key);

  /// Drops every resident entry of `file_id` (all generations) — called
  /// after a commit so the next read decodes the new state.
  void invalidate_file(std::uint32_t file_id);

  std::uint64_t resident_bytes() const;

 private:
  struct Flight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    std::optional<Result<std::shared_ptr<const CachedValue>>> result;
  };

  struct Shard {
    mutable std::mutex mu;
    std::list<CacheKey> lru;  // front = most recently used
    struct Entry {
      std::shared_ptr<const CachedValue> value;
      std::list<CacheKey>::iterator lru_it;
    };
    std::unordered_map<CacheKey, Entry, CacheKeyHash> map;
    std::unordered_map<CacheKey, std::shared_ptr<Flight>, CacheKeyHash> flights;
    std::uint64_t bytes = 0;
  };

  Shard& shard_of(const CacheKey& key);
  void insert_locked(Shard& s, const CacheKey& key,
                     std::shared_ptr<const CachedValue> value);

  std::uint64_t shard_budget_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace pcw::store
