#include "store/catalog.h"

#include <algorithm>
#include <functional>
#include <set>

#include "pcw/runtime.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace pcw::store {

FileEntry::FileEntry(std::uint32_t id, std::string path, bool writable)
    : id_(id), path_(std::move(path)), writable_(writable) {}

Result<std::shared_ptr<Reader>> FileEntry::snapshot() const {
  std::lock_guard<std::mutex> lk(snap_mu_);
  if (reader_ == nullptr) {
    return Status(StatusCode::kFailedPrecondition,
                  "store: " + path_ + " has no committed state yet");
  }
  return reader_;
}

std::uint64_t FileEntry::generation() const {
  std::lock_guard<std::mutex> lk(snap_mu_);
  return generation_;
}

std::size_t FileEntry::shard_index(const std::string& name) const {
  return std::hash<std::string>{}(name) % kLockShards;
}

std::shared_lock<std::shared_mutex> FileEntry::lock_read(const std::string& name) {
  return std::shared_lock<std::shared_mutex>(shards_[shard_index(name)]);
}

std::vector<std::shared_lock<std::shared_mutex>> FileEntry::lock_read_all() {
  std::vector<std::shared_lock<std::shared_mutex>> locks;
  locks.reserve(kLockShards);
  for (auto& shard : shards_) locks.emplace_back(shard);
  return locks;
}

void FileEntry::adopt_reader(Reader reader) {
  std::lock_guard<std::mutex> lk(snap_mu_);
  reader_ = std::make_shared<Reader>(std::move(reader));
  generation_ = 1;
}

Status FileEntry::create_writer(const WriterOptions& options) {
  Result<Writer> writer = Writer::create(path_, options);
  if (!writer.ok()) return writer.status();
  std::lock_guard<std::mutex> lk(admit_mu_);
  writer_ = std::move(writer).value();
  return Status::Ok();
}

Result<RemoteStep> FileEntry::submit_write(std::unique_ptr<PendingWrite> w,
                                           BlockCache& cache) {
  if (!writable_) {
    return Status(StatusCode::kFailedPrecondition,
                  "store: " + path_ + " is open read-only");
  }
  const std::size_t elems = w->dims.count();
  if (elems == 0 || w->data.size() != elems * element_size(w->dtype)) {
    return Status(StatusCode::kInvalidArgument,
                  "store: write_step payload is " + std::to_string(w->data.size()) +
                      " bytes for dims " + std::to_string(w->dims.d0) + "x" +
                      std::to_string(w->dims.d1) + "x" + std::to_string(w->dims.d2));
  }
  std::future<Result<RemoteStep>> fut = w->done.get_future();
  bool leader = false;
  {
    std::lock_guard<std::mutex> lk(admit_mu_);
    pending_.push_back(std::move(w));
    if (!leader_active_) {
      leader_active_ = true;
      leader = true;
    }
  }
  // Block outside admit_mu_: a follower waiting on its future while
  // holding the lock would deadlock the leader's drain loop.
  if (!leader) return fut.get();
  // Batch leader: drain every write admitted while we were working, so
  // concurrent arrivals share one commit.
  for (;;) {
    std::vector<std::unique_ptr<PendingWrite>> batch;
    {
      std::lock_guard<std::mutex> lk(admit_mu_);
      if (pending_.empty()) {
        leader_active_ = false;
        break;
      }
      batch.reserve(pending_.size());
      for (auto& p : pending_) batch.push_back(std::move(p));
      pending_.clear();
    }
    process_batch(std::move(batch), cache);
  }
  return fut.get();
}

namespace {

/// True for engine/I-O failures that leave the writer's on-disk or
/// in-memory state untrusted; validation errors (bad dims, dtype
/// mismatch) are clean rejections that poison nothing.
bool poisons(const Status& s) {
  switch (s.code()) {
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
    case StatusCode::kFailedPrecondition:
      return false;
    default:
      return true;
  }
}

}  // namespace

void FileEntry::process_batch(std::vector<std::unique_ptr<PendingWrite>> batch,
                              BlockCache& cache) {
  util::trace::Span span("store.write_batch", "store");
  {
    std::lock_guard<std::mutex> lk(admit_mu_);
    if (poisoned_) {
      for (auto& item : batch) {
        item->done.set_value(Status(StatusCode::kFailedPrecondition,
                                    "store: writer poisoned: " + poison_detail_));
      }
      return;
    }
  }

  // Exclusive-lock the union of touched field shards, in index order.
  std::set<std::size_t> shard_ids;
  for (const auto& item : batch) shard_ids.insert(shard_index(item->field));
  std::vector<std::unique_lock<std::shared_mutex>> locks;
  locks.reserve(shard_ids.size());
  for (std::size_t idx : shard_ids) locks.emplace_back(shards_[idx]);

  struct Outcome {
    Result<RemoteStep> result = Status(StatusCode::kInternal, "store: step not attempted");
  };
  std::vector<Outcome> outcomes(batch.size());
  Status fatal = Status::Ok();

  // The engines are collective; a single-rank run hosts the whole batch.
  const Status run_status = pcw::run(1, [&](Rank& rank) {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      PendingWrite& item = *batch[i];
      auto sit = series_.find(item.field);
      if (sit == series_.end()) {
        Result<SeriesWriter> sw = SeriesWriter::create(
            writer_, SeriesOptions().with_keyframe_interval(item.keyframe_interval));
        if (!sw.ok()) {
          outcomes[i].result = sw.status();
          if (poisons(sw.status()) && fatal.ok()) fatal = sw.status();
          continue;
        }
        sit = series_.emplace(item.field, std::move(sw).value()).first;
      }
      SeriesWriter& series = sit->second;
      const std::uint32_t step = series.next_step();
      Field field;
      field.name = item.field;
      field.local = FieldView{item.dtype, std::span<const std::uint8_t>(item.data),
                              item.dims};
      field.global_dims = item.dims;
      field.codec = CodecOptions().with_error_bound(item.error_bound);
      Result<SeriesStepReport> report =
          series.write_step(rank, std::span<const Field>(&field, 1));
      if (!report.ok()) {
        outcomes[i].result = report.status();
        if (poisons(report.status()) && fatal.ok()) fatal = report.status();
        continue;
      }
      RemoteStep ack;
      ack.step = step;
      ack.keyframe = report.value().keyframe;
      outcomes[i].result = ack;
    }
  });
  if (!run_status.ok() && fatal.ok()) fatal = run_status;

  if (fatal.ok()) {
    const Status committed = writer_.commit();
    if (!committed.ok()) fatal = committed;
  }

  if (!fatal.ok()) {
    // The group commit never landed: nothing in this batch is durable,
    // and the writer's state is no longer trusted. Fail everyone and
    // poison; the read side keeps serving the last committed snapshot.
    {
      std::lock_guard<std::mutex> lk(admit_mu_);
      poisoned_ = true;
      poison_detail_ = fatal.message();
      series_.clear();
    }
    const Status refused(fatal.code(), "store: write batch failed: " + fatal.message());
    for (auto& item : batch) item->done.set_value(refused);
    return;
  }

  // Commit landed: publish the new snapshot, then acknowledge. The swap
  // happens before any promise resolves, so a reader acting on an ack
  // always sees its step.
  std::uint64_t gen = 0;
  Result<Reader> fresh = Reader::open(path_, reader_options_);
  {
    std::lock_guard<std::mutex> lk(snap_mu_);
    if (fresh.ok()) reader_ = std::make_shared<Reader>(std::move(fresh).value());
    gen = ++generation_;
  }
  cache.invalidate_file(id_);
  util::metrics::Registry::get().store_write_batches.add(1);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (outcomes[i].result.ok()) outcomes[i].result.value().generation = gen;
    batch[i]->done.set_value(std::move(outcomes[i].result));
  }
}

Status FileEntry::close_writer() {
  std::lock_guard<std::mutex> lk(admit_mu_);
  if (!writable_ || !writer_.valid()) return Status::Ok();
  series_.clear();
  if (poisoned_) {
    writer_ = Writer();  // drop without another commit attempt
    return Status::Ok();
  }
  const Status closed = writer_.close();
  writer_ = Writer();
  return closed;
}

Result<std::shared_ptr<FileEntry>> Catalog::open(const std::string& path, OpenMode mode) {
  // The catalog lock spans the open/create I/O: concurrent OPENs of the
  // same path must agree on one entry, and opens are rare enough that
  // serializing them is the simple correct choice (find() blocks only
  // for the duration of one file open).
  std::lock_guard<std::mutex> lk(mu_);
  auto it = by_path_.find(path);
  if (it != by_path_.end()) {
    std::shared_ptr<FileEntry> entry = by_id_.at(it->second);
    if (mode == OpenMode::kCreate && !entry->writable()) {
      return Status(StatusCode::kFailedPrecondition,
                    "store: " + path + " is already open read-only");
    }
    return entry;
  }

  auto entry = std::make_shared<FileEntry>(next_id_, path, mode == OpenMode::kCreate);
  if (mode == OpenMode::kRead) {
    Result<Reader> reader = Reader::open(path, reader_options_);
    if (!reader.ok()) return reader.status();
    entry->adopt_reader(std::move(reader).value());
  } else {
    const Status created = entry->create_writer(WriterOptions());
    if (!created.ok()) return created;
  }
  entry->set_reader_options(reader_options_);
  by_id_.emplace(next_id_, entry);
  by_path_.emplace(path, next_id_);
  ++next_id_;
  return entry;
}

Result<std::shared_ptr<FileEntry>> Catalog::find(std::uint32_t id) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = by_id_.find(id);
  if (it == by_id_.end()) {
    return Status(StatusCode::kNotFound,
                  "store: no open file with id " + std::to_string(id));
  }
  return it->second;
}

std::vector<std::shared_ptr<FileEntry>> Catalog::entries() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::shared_ptr<FileEntry>> out;
  out.reserve(by_id_.size());
  for (const auto& [id, entry] : by_id_) out.push_back(entry);
  return out;
}

Status Catalog::close_all() {
  Status first = Status::Ok();
  for (const std::shared_ptr<FileEntry>& entry : entries()) {
    const Status s = entry->close_writer();
    if (!s.ok() && first.ok()) first = s;
  }
  return first;
}

}  // namespace pcw::store
