// pcw::store::Client — blocking request/response handle over one pcwd
// connection. Calls are serialized per handle by a mutex; no exception
// crosses the façade (socket and protocol failures become Status).
#include <unistd.h>

#include <mutex>

#include "pcw/store.h"
#include "store/protocol.h"

namespace pcw::store {

struct Client::Impl {
  int fd = -1;
  std::mutex mu;  // one request/response in flight per connection

  ~Impl() {
    if (fd >= 0) ::close(fd);
  }
};

namespace {

/// Sends one request and decodes the reply envelope: kOk replies return
/// their payload, error replies become the carried Status, transport
/// failures become kIoError.
Result<std::vector<std::uint8_t>> call(Client::Impl& impl, Op op,
                                       std::vector<std::uint8_t> payload) {
  std::lock_guard<std::mutex> lk(impl.mu);
  if (impl.fd < 0) {
    return Status(StatusCode::kFailedPrecondition, "store: client is closed");
  }
  try {
    write_frame(impl.fd, static_cast<std::uint8_t>(op), payload);
    std::uint8_t tag = 0;
    std::vector<std::uint8_t> reply;
    if (!read_frame(impl.fd, &tag, &reply)) {
      return Status(StatusCode::kIoError, "store: server closed the connection");
    }
    if (tag != 0) {
      std::string message = "store: request failed";
      try {
        WireReader r{std::span<const std::uint8_t>(reply)};
        message = r.str();
      } catch (const std::exception&) {
      }
      return Status(static_cast<StatusCode>(tag), std::move(message));
    }
    return reply;
  } catch (const std::exception& e) {
    return Status(StatusCode::kIoError, e.what());
  }
}

RemoteFile get_file(WireReader& r) {
  RemoteFile f;
  f.id = r.u32();
  f.path = r.str();
  f.writable = r.u8() != 0;
  f.generation = r.u64();
  f.datasets = r.u32();
  return f;
}

RemoteRead get_read(WireReader& r) {
  RemoteRead out;
  out.dtype = static_cast<DType>(r.u8());
  out.extents.d0 = static_cast<std::size_t>(r.u64());
  out.extents.d1 = static_cast<std::size_t>(r.u64());
  out.extents.d2 = static_cast<std::size_t>(r.u64());
  out.bytes = r.blob();
  return out;
}

/// Wraps reply parsing: a malformed reply is a kCorruptData, not a leak
/// of the underlying std::runtime_error.
template <typename T, typename Fn>
Result<T> parse(Result<std::vector<std::uint8_t>> reply, Fn decode) {
  if (!reply.ok()) return reply.status();
  try {
    WireReader r{std::span<const std::uint8_t>(reply.value())};
    return decode(r);
  } catch (const std::exception& e) {
    return Status(StatusCode::kCorruptData, std::string("store: bad reply: ") + e.what());
  }
}

}  // namespace

Result<Client> Client::connect(const std::string& address) {
  auto impl = std::make_shared<Impl>();
  try {
    Address addr = parse_address(address);
    impl->fd = connect_to(addr);
  } catch (const std::exception& e) {
    return Status(StatusCode::kIoError, e.what());
  }
  Client client;
  client.impl_ = std::move(impl);
  return client;
}

Result<RemoteFile> Client::open(const std::string& path, OpenMode mode) {
  if (impl_ == nullptr) {
    return Status(StatusCode::kFailedPrecondition, "store: invalid client handle");
  }
  WireWriter w;
  w.str(path);
  w.u8(static_cast<std::uint8_t>(mode));
  return parse<RemoteFile>(call(*impl_, Op::kOpen, w.take()),
                           [](WireReader& r) { return get_file(r); });
}

Result<std::vector<RemoteFile>> Client::catalog() {
  if (impl_ == nullptr) {
    return Status(StatusCode::kFailedPrecondition, "store: invalid client handle");
  }
  WireWriter w;
  w.u32(0);
  return parse<std::vector<RemoteFile>>(
      call(*impl_, Op::kList, w.take()), [](WireReader& r) {
        const std::uint32_t n = r.u32();
        std::vector<RemoteFile> files;
        files.reserve(n);
        for (std::uint32_t i = 0; i < n; ++i) files.push_back(get_file(r));
        return files;
      });
}

Result<std::vector<RemoteDataset>> Client::list(std::uint32_t file_id) {
  if (impl_ == nullptr) {
    return Status(StatusCode::kFailedPrecondition, "store: invalid client handle");
  }
  if (file_id == 0) {
    return Status(StatusCode::kInvalidArgument,
                  "store: list needs a file id from open()");
  }
  WireWriter w;
  w.u32(file_id);
  return parse<std::vector<RemoteDataset>>(
      call(*impl_, Op::kList, w.take()), [](WireReader& r) {
        const std::uint32_t n = r.u32();
        std::vector<RemoteDataset> out;
        out.reserve(n);
        for (std::uint32_t i = 0; i < n; ++i) out.push_back(get_dataset(r));
        return out;
      });
}

Result<RemoteRead> Client::read_region(std::uint32_t file_id, const std::string& dataset,
                                       const std::optional<Region>& region,
                                       std::optional<DType> expected) {
  if (impl_ == nullptr) {
    return Status(StatusCode::kFailedPrecondition, "store: invalid client handle");
  }
  WireWriter w;
  w.u32(file_id);
  w.str(dataset);
  w.region(region);
  w.u8(expected.has_value() ? static_cast<std::uint8_t>(*expected) : kDTypeAny);
  return parse<RemoteRead>(call(*impl_, Op::kReadRegion, w.take()),
                           [](WireReader& r) { return get_read(r); });
}

Result<RemoteRead> Client::read_step(std::uint32_t file_id, const std::string& base,
                                     std::uint32_t step,
                                     const std::optional<Region>& region,
                                     std::optional<DType> expected) {
  if (impl_ == nullptr) {
    return Status(StatusCode::kFailedPrecondition, "store: invalid client handle");
  }
  WireWriter w;
  w.u32(file_id);
  w.str(base);
  w.u32(step);
  w.region(region);
  w.u8(expected.has_value() ? static_cast<std::uint8_t>(*expected) : kDTypeAny);
  return parse<RemoteRead>(call(*impl_, Op::kReadStep, w.take()),
                           [](WireReader& r) { return get_read(r); });
}

Result<RemoteStep> Client::write_step(std::uint32_t file_id, const std::string& field,
                                      const FieldView& data, double error_bound,
                                      std::uint32_t keyframe_interval) {
  if (impl_ == nullptr) {
    return Status(StatusCode::kFailedPrecondition, "store: invalid client handle");
  }
  WireWriter w;
  w.u32(file_id);
  w.str(field);
  w.u8(static_cast<std::uint8_t>(data.dtype));
  w.u64(data.dims.d0);
  w.u64(data.dims.d1);
  w.u64(data.dims.d2);
  w.f64(error_bound);
  w.u32(keyframe_interval);
  w.blob(data.bytes);
  return parse<RemoteStep>(call(*impl_, Op::kWriteStep, w.take()), [](WireReader& r) {
    RemoteStep s;
    s.step = r.u32();
    s.keyframe = r.u8() != 0;
    s.generation = r.u64();
    return s;
  });
}

Result<ScrubReport> Client::scrub(std::uint32_t file_id, bool deep) {
  if (impl_ == nullptr) {
    return Status(StatusCode::kFailedPrecondition, "store: invalid client handle");
  }
  WireWriter w;
  w.u32(file_id);
  w.u8(deep ? 1 : 0);
  return parse<ScrubReport>(call(*impl_, Op::kScrub, w.take()),
                            [](WireReader& r) { return get_scrub(r); });
}

Result<std::vector<RemoteStat>> Client::stats() {
  if (impl_ == nullptr) {
    return Status(StatusCode::kFailedPrecondition, "store: invalid client handle");
  }
  return parse<std::vector<RemoteStat>>(call(*impl_, Op::kStats, {}), [](WireReader& r) {
    const std::uint32_t n = r.u32();
    std::vector<RemoteStat> out;
    out.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      RemoteStat s;
      s.name = r.str();
      s.value = r.u64();
      out.push_back(std::move(s));
    }
    return out;
  });
}

Status Client::ping() {
  if (impl_ == nullptr) {
    return Status(StatusCode::kFailedPrecondition, "store: invalid client handle");
  }
  return call(*impl_, Op::kPing, {}).status();
}

Status Client::shutdown_server() {
  if (impl_ == nullptr) {
    return Status(StatusCode::kFailedPrecondition, "store: invalid client handle");
  }
  return call(*impl_, Op::kShutdown, {}).status();
}

Status Client::close() {
  if (impl_ == nullptr) {
    return Status(StatusCode::kFailedPrecondition, "store: invalid client handle");
  }
  std::lock_guard<std::mutex> lk(impl_->mu);
  if (impl_->fd >= 0) {
    ::close(impl_->fd);
    impl_->fd = -1;
  }
  return Status::Ok();
}

}  // namespace pcw::store
