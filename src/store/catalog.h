// The pcwd catalog: every file the server has open, each with a
// committed-state Reader snapshot, sharded per-dataset reader-writer
// locks, and (for writable files) a batched write-admission queue.
//
// Consistency model:
//   - Reads serve from an immutable `shared_ptr<pcw::Reader>` snapshot
//     of the last committed state. A commit opens a fresh Reader and
//     swaps it in (generation++), so a read observes the pre- or
//     post-commit state in full — never a hybrid. In-flight reads keep
//     the old snapshot alive through their shared_ptr.
//   - Concurrent WRITE_STEPs enqueue; the first arriver becomes the
//     batch leader, drains the queue in arrival order under exclusive
//     locks on the touched fields' shards, and lands ONE dual-slot
//     commit for the whole batch (group commit). Followers block on a
//     future until their step is durable.
//   - A failed engine write or torn commit poisons the writer: later
//     WRITE_STEPs fail with kFailedPrecondition while reads keep
//     serving the last committed snapshot.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "pcw/reader.h"
#include "pcw/series.h"
#include "pcw/store.h"
#include "pcw/writer.h"
#include "store/cache.h"

namespace pcw::store {

/// Per-dataset lock shards per file; dataset/base names hash onto them.
inline constexpr unsigned kLockShards = 16;

/// One queued WRITE_STEP, owning a copy of the client's element bytes.
struct PendingWrite {
  std::string field;
  DType dtype = DType::kFloat32;
  Dims dims;
  double error_bound = 1e-3;
  std::uint32_t keyframe_interval = 8;
  std::vector<std::uint8_t> data;
  std::promise<Result<RemoteStep>> done;
};

class FileEntry {
 public:
  FileEntry(std::uint32_t id, std::string path, bool writable);

  std::uint32_t id() const { return id_; }
  const std::string& path() const { return path_; }
  bool writable() const { return writable_; }

  /// The last committed state (kFailedPrecondition before a writable
  /// file's first commit). The returned Reader is immutable and safe for
  /// concurrent reads (h5 pread is thread-safe).
  Result<std::shared_ptr<Reader>> snapshot() const;
  std::uint64_t generation() const;

  /// Shared (reader-side) lock on the shard owning `name`.
  std::shared_lock<std::shared_mutex> lock_read(const std::string& name);
  /// Shared locks on every shard, in index order (SCRUB).
  std::vector<std::shared_lock<std::shared_mutex>> lock_read_all();

  /// Enqueues one write and blocks until the admitting group commit (or
  /// failure). `cache` is invalidated for this file after each commit.
  Result<RemoteStep> submit_write(std::unique_ptr<PendingWrite> w, BlockCache& cache);

  /// Installs the initial snapshot (read-only OPEN). Not thread-safe;
  /// called once before the entry is published.
  void adopt_reader(Reader reader);
  /// Creates the backing Writer (OPEN kCreate). Not thread-safe; called
  /// once before the entry is published.
  Status create_writer(const WriterOptions& options);

  void set_reader_options(const ReaderOptions& options) { reader_options_ = options; }

  /// Final commit + close of a writable file (server stop). Callers must
  /// have joined every client thread first.
  Status close_writer();

 private:
  struct Batch;
  void process_batch(std::vector<std::unique_ptr<PendingWrite>> batch, BlockCache& cache);
  std::size_t shard_index(const std::string& name) const;

  const std::uint32_t id_;
  const std::string path_;
  const bool writable_;
  ReaderOptions reader_options_;

  std::array<std::shared_mutex, kLockShards> shards_;

  // committed-state snapshot (swap under snap_mu_, innermost lock)
  mutable std::mutex snap_mu_;
  std::shared_ptr<Reader> reader_;
  std::uint64_t generation_ = 0;

  // write admission (admit_mu_ guards everything below)
  std::mutex admit_mu_;
  std::deque<std::unique_ptr<PendingWrite>> pending_;
  bool leader_active_ = false;
  bool poisoned_ = false;
  std::string poison_detail_;
  Writer writer_;
  std::map<std::string, SeriesWriter> series_;  // one per field name
};

class Catalog {
 public:
  explicit Catalog(ReaderOptions reader_options) : reader_options_(reader_options) {}

  /// Opens (kRead) or creates (kCreate) `path`, or returns the existing
  /// entry when the path is already in the catalog.
  Result<std::shared_ptr<FileEntry>> open(const std::string& path, OpenMode mode);

  Result<std::shared_ptr<FileEntry>> find(std::uint32_t id) const;
  std::vector<std::shared_ptr<FileEntry>> entries() const;

  /// Commits + closes every writable file; first error wins.
  Status close_all();

 private:
  ReaderOptions reader_options_;
  mutable std::mutex mu_;
  std::map<std::uint32_t, std::shared_ptr<FileEntry>> by_id_;
  std::map<std::string, std::uint32_t> by_path_;
  std::uint32_t next_id_ = 1;
};

}  // namespace pcw::store
