// pcwd wire protocol (internal): length-prefixed binary frames over a
// Unix or TCP stream socket, shared by the server (src/store/server.cc)
// and the client façade (src/store/client.cc).
//
// Frame layout (all integers little-endian):
//
//   request:  u32 payload_len | u8 opcode | payload
//   response: u32 payload_len | u8 status | payload
//
// The response status byte is the numeric pcw::StatusCode; a non-OK
// response carries the error message as its whole payload (one wire
// string). Strings and byte blobs are u32-length-prefixed. A frame
// longer than kMaxFrameBytes is a protocol error and closes the
// connection. docs/store.md is the normative description of every
// request/response payload.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "pcw/store.h"
#include "pcw/types.h"

namespace pcw::store {

inline constexpr std::uint32_t kProtocolVersion = 1;
/// Upper bound on one frame's payload: a whole decoded field plus
/// metadata must fit (1 GiB covers every in-tree workload many times
/// over while still bounding a hostile length prefix).
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 30;

/// Request opcodes. The response tag is a StatusCode, not an Op.
enum class Op : std::uint8_t {
  kOpen = 1,
  kList = 2,        // file_id 0 = whole-catalog listing
  kReadRegion = 3,
  kReadStep = 4,
  kWriteStep = 5,
  kScrub = 6,
  kStats = 7,
  kPing = 8,
  kShutdown = 9,
};

/// Span/telemetry name of an opcode ("?" for an unknown byte). Returns a
/// string literal, as util::trace requires.
const char* op_name(std::uint8_t op);

/// The wire encoding of "use the dataset's stored dtype" in the
/// expected-dtype byte of READ_REGION / READ_STEP.
inline constexpr std::uint8_t kDTypeAny = 0xFF;

// ---- serialization ---------------------------------------------------------

/// Append-only little-endian serializer for one frame payload.
class WireWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) { put(v); }
  void u64(std::uint64_t v) { put(v); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    put(bits);
  }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  void blob(std::span<const std::uint8_t> b) {
    u32(static_cast<std::uint32_t>(b.size()));
    buf_.insert(buf_.end(), b.begin(), b.end());
  }
  void region(const std::optional<Region>& r) {
    u8(r.has_value() ? 1 : 0);
    const Region box = r.value_or(Region{});
    for (int i = 0; i < 3; ++i) u64(box.lo[static_cast<std::size_t>(i)]);
    for (int i = 0; i < 3; ++i) u64(box.hi[static_cast<std::size_t>(i)]);
  }

  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  template <typename T>
  void put(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked cursor over a received payload; any overrun throws
/// (the dispatch loop converts that into a kInvalidArgument reply).
class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  std::uint32_t u32() { return get<std::uint32_t>(); }
  std::uint64_t u64() { return get<std::uint64_t>(); }
  double f64() {
    const std::uint64_t bits = get<std::uint64_t>();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }
  std::vector<std::uint8_t> blob() {
    const std::uint32_t n = u32();
    need(n);
    std::vector<std::uint8_t> b(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return b;
  }
  std::optional<Region> region() {
    if (u8() == 0) {
      for (int i = 0; i < 6; ++i) (void)u64();
      return std::nullopt;
    }
    Region r;
    for (int i = 0; i < 3; ++i) r.lo[static_cast<std::size_t>(i)] = static_cast<std::size_t>(u64());
    for (int i = 0; i < 3; ++i) r.hi[static_cast<std::size_t>(i)] = static_cast<std::size_t>(u64());
    return r;
  }
  bool done() const { return pos_ == data_.size(); }

 private:
  template <typename T>
  T get() {
    need(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += sizeof(T);
    return v;
  }
  void need(std::size_t n) const {
    if (pos_ + n > data_.size()) {
      throw std::runtime_error("store: truncated frame");
    }
  }
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

// Shared payload shapes (the structs live in pcw/store.h).
void put_dataset(WireWriter& w, const RemoteDataset& d);
RemoteDataset get_dataset(WireReader& r);
void put_scrub(WireWriter& w, const ScrubReport& report);
ScrubReport get_scrub(WireReader& r);

// ---- frame + socket I/O ----------------------------------------------------

/// Reads one frame. Returns false on clean EOF at a frame boundary;
/// throws std::runtime_error on a short/oversized/failed read.
bool read_frame(int fd, std::uint8_t* tag, std::vector<std::uint8_t>* payload);

/// Writes one frame (tag + payload) or throws std::runtime_error.
void write_frame(int fd, std::uint8_t tag, std::span<const std::uint8_t> payload);

/// A parsed listen/connect address: "unix:<path>" or "tcp:<host>:<port>".
/// A bare spec containing '/' is treated as a Unix socket path.
struct Address {
  bool tcp = false;
  std::string path;  // unix socket path
  std::string host;  // tcp host
  std::uint16_t port = 0;
};

/// Parses the address grammar; throws std::invalid_argument on a spec
/// that matches neither form.
Address parse_address(const std::string& spec);

/// Formats back to the canonical spec string.
std::string to_spec(const Address& addr);

/// Binds + listens; returns the fd and (for "tcp:host:0") rewrites
/// addr.port to the kernel-assigned port. Throws std::runtime_error.
int listen_on(Address& addr);

/// Connects; throws std::runtime_error naming the address on failure.
int connect_to(const Address& addr);

}  // namespace pcw::store
