// Per-rank read planning: turns each rank's restart/analysis requests
// into partition selections before any payload byte moves.
//
// Planning is pure metadata work over the parsed dataset table, so every
// rank plans independently with no communication — the read-side mirror
// of the write planner's "identical offsets from identical predictions"
// property. The plans drive core::read_fields' read/decompress pipeline.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "h5/dataset_io.h"
#include "h5/file.h"
#include "sz/dims.h"

namespace pcw::core {

/// One field this rank wants back.
struct ReadSpec {
  std::string name;
  /// Hyperslab in the dataset's global extents; nullopt reads everything.
  std::optional<sz::Region> region;
};

/// A planned field read: the resolved dataset plus its clipped selection.
struct FieldReadPlan {
  const h5::DatasetDesc* desc = nullptr;
  h5::RegionSelection selection;
  std::uint64_t payload_bytes = 0;  // stored bytes this plan will fetch
};

/// Resolves every spec against the file's dataset table. Throws
/// std::invalid_argument on unknown datasets or bad regions.
std::vector<FieldReadPlan> plan_read(const h5::File& file,
                                     std::span<const ReadSpec> specs);

/// The hyperslab rank `rank` of `nranks` owns on restart: the global box
/// cut into contiguous slabs along its slowest-varying non-unit axis,
/// remainder spread over the leading ranks. Ranks beyond the axis extent
/// receive an empty region — a valid request that reads nothing — so a
/// restart may use more ranks than the axis has planes.
sz::Region restart_region(const sz::Dims& global, int rank, int nranks);

}  // namespace pcw::core
