// pcw::core::write_fields — the paper's parallel-write engine, running
// for real on the simulated-MPI runtime and the h5lite shared file.
//
// Four modes, matching Fig. 4:
//   kNoCompression     (1) independent writes of raw data
//   kFilterCollective  (2) H5Z-SZ-style: compress, exchange sizes, then
//                          collective write (compression/write serialized)
//   kOverlap           (3) predictive: offsets pre-computed from the ratio
//                          model + extra space; compression of field k
//                          overlaps the asynchronous write of field k-1
//   kOverlapReorder    (4) (3) plus Algorithm-1 compression reordering
//
// The overlap path follows Fig. 3 exactly: predict (ratio, throughputs)
// -> all-gather predictions -> identical offset planning on every rank ->
// per-rank reorder -> compress/async-write pipeline -> overflow handling
// -> metadata registration.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/planner.h"
#include "core/scheduler.h"
#include "h5/dataset_io.h"
#include "h5/file.h"
#include "model/extra_space.h"
#include "model/ratio_model.h"
#include "model/throughput_model.h"
#include "mpi/comm.h"
#include "sz/compressor.h"

namespace pcw::core {

enum class WriteMode {
  kNoCompression = 0,
  kFilterCollective = 1,
  kOverlap = 2,
  kOverlapReorder = 3,
};

const char* to_string(WriteMode mode);

/// One field (dataset) as seen by one rank.
template <typename T>
struct FieldSpec {
  std::string name;
  std::span<const T> local;    // this rank's slice, flattened
  sz::Dims local_dims;         // extents of the slice (for the predictor)
  sz::Dims global_dims;        // logical global extents
  sz::Params params;           // error bound for this field
};

struct EngineConfig {
  WriteMode mode = WriteMode::kOverlapReorder;
  /// Extra-space ratio R_space (§III-D); Eq. (3) boost applied per
  /// partition automatically.
  double rspace = model::kDefaultRspace;
  model::RatioModelConfig ratio_config;
  /// Throughput models used for scheduling only (never for correctness);
  /// defaults are the paper's §IV-B fit.
  model::CompressionThroughputModel comp_model{101.7e6, 240.6e6, -1.716};
  model::WriteThroughputModel write_model{400e6, 2e6};
  /// Worker threads for each partition's sz compress/decompress (overrides
  /// every FieldSpec's Params::threads): 1 = serial, 0 = all hardware
  /// threads, N = exactly N. Blob bytes are identical for every value.
  unsigned compress_threads = 1;
};

/// Per-rank outcome and phase timings (wall-clock, this rank).
struct RankReport {
  double predict_seconds = 0.0;    // ratio/throughput prediction
  double exchange_seconds = 0.0;   // all-gather of predictions
  double compress_seconds = 0.0;   // sum over fields (serial)
  double write_seconds = 0.0;      // exposed write tail after last compress
  double overflow_seconds = 0.0;   // overflow gather + append
  double total_seconds = 0.0;

  std::uint64_t raw_bytes = 0;
  std::uint64_t compressed_bytes = 0;  // actual payload bytes (this rank)
  std::uint64_t reserved_bytes = 0;    // slot bytes (this rank)
  std::uint64_t overflow_bytes = 0;
  int overflow_partitions = 0;
  std::vector<int> order;              // compression order used
};

/// Writes all fields through the selected mode. Collective: every rank of
/// `comm` must call with the same field names/global dims/config. Dataset
/// metadata is registered; the caller closes the file.
template <typename T>
RankReport write_fields(mpi::Comm& comm, h5::File& file,
                        std::span<const FieldSpec<T>> fields,
                        const EngineConfig& config);

}  // namespace pcw::core
