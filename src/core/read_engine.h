// pcw::core::read_fields — the parallel restart/read engine: the write
// engine's Fig.-3 pipeline run in reverse.
//
// Each simulated-MPI rank issues its hyperslabs (full fields for a
// same-shape restart, restart_region() slabs for a repartitioned one,
// thin slices for analysis). Per field, every overlapping partition
// payload is issued on the file's asynchronous read queue up front; the
// payloads of field k+1 stream in from disk while field k is still being
// entropy-decoded — and within one sz partition only the container-v2
// blocks intersecting the request are decoded, fanned out across the
// shared thread pool.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/read_planner.h"
#include "mpi/comm.h"
#include "sz/compressor.h"

namespace pcw::core {

struct ReadEngineConfig {
  /// Worker threads for each partition's block decode: 1 = serial,
  /// 0 = all hardware threads, N = exactly N (sz::Params::threads
  /// semantics). The output is identical for every value.
  unsigned decompress_threads = 1;
  /// true: payloads land on the file's async read queue, a whole field at
  /// a time, and field k+1's reads overlap field k's decode. false: every
  /// payload is fetched synchronously right before its decode (no async
  /// queue at all) — the strictly serial baseline bench_read compares
  /// against.
  bool pipeline = true;
  /// Checksum depth applied to every v4 container decoded (no-op on
  /// v1–v3 blobs). kBlock verifies exactly the blocks a partial read
  /// touches; kBlob is one whole-payload CRC pass before any decode.
  sz::VerifyMode verify = sz::VerifyMode::kBlock;
};

/// Per-rank outcome and phase timings (wall-clock, this rank).
struct ReadReport {
  double plan_seconds = 0.0;        // selection planning (metadata only)
  double read_seconds = 0.0;        // time blocked waiting on payload I/O
  double decompress_seconds = 0.0;  // block decode + scatter
  double total_seconds = 0.0;

  std::uint64_t bytes_read = 0;        // stored payload bytes fetched
  std::uint64_t elements_out = 0;      // elements delivered to this rank
  std::uint64_t partitions_total = 0;  // partitions across requested fields
  std::uint64_t partitions_read = 0;   // partitions that overlapped
  std::uint64_t blocks_total = 0;      // sz blocks in the read partitions
  std::uint64_t blocks_decoded = 0;    // sz blocks actually decoded
};

/// Reads this rank's selection of every requested field; result i holds
/// specs[i]'s region in its own row-major order (specs[i].region ==
/// nullopt yields the whole field). Ranks read independently — the only
/// collective is a trailing barrier so timing reports are comparable.
/// Throws std::invalid_argument on unknown datasets/bad regions and
/// std::runtime_error on type mismatch or corruption.
template <typename T>
std::vector<std::vector<T>> read_fields(mpi::Comm& comm, h5::File& file,
                                        std::span<const ReadSpec> specs,
                                        const ReadEngineConfig& config,
                                        ReadReport* report = nullptr);

}  // namespace pcw::core
