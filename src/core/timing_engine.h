// Timing engine: plays the four write schedules of Fig. 4 against the
// iosim platform model at arbitrary scale (256..4096+ processes).
//
// The *functional* engine (engine.h) proves correctness end-to-end on
// real threads and a real file; this engine answers the paper's
// performance questions, which depend on a parallel file system we do not
// have. Inputs are per-(rank, field) partition profiles whose compression
// times/sizes come from *measured* compressions of the same synthetic
// data (bootstrap-resampled to the target scale), so the compute side is
// empirical and only the I/O side is modeled.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/engine.h"
#include "iosim/platform.h"
#include "iosim/simulator.h"
#include "model/throughput_model.h"
#include "util/rng.h"

namespace pcw::core {

/// One partition (one rank x one field) as the timing engine sees it.
struct PartitionProfile {
  double raw_bytes = 0.0;
  double elem_count = 0.0;
  double comp_seconds = 0.0;      // measured compression time
  double actual_bytes = 0.0;      // measured compressed size
  double predicted_bytes = 0.0;   // ratio-model prediction
  double predicted_ratio = 1.0;
};

struct TimingConfig {
  WriteMode mode = WriteMode::kOverlapReorder;
  double rspace = model::kDefaultRspace;
  /// Prediction-phase cost as a fraction of this rank's compression time
  /// (the ratio model's measured overhead; <10% per the paper, ~3% here).
  double predict_fraction = 0.03;
  model::CompressionThroughputModel comp_model{101.7e6, 240.6e6, -1.716};
  /// Eq.-(2) write-time model for Algorithm 1. When
  /// `calibrate_write_model_to_platform` is true (the paper's offline
  /// per-system calibration), the plateau is taken from the platform's
  /// per-process curve at the mean predicted size and `write_model` is
  /// ignored.
  bool calibrate_write_model_to_platform = true;
  model::WriteThroughputModel write_model{400e6, 2e6};
};

/// Phase breakdown in the paper's Fig.-16 reading: `compress` is the
/// slowest rank's total compression; `write_exposed` is the time between
/// the end of the slowest compression and the end of the write wave;
/// `overflow` covers the post-wave all-gather + tail appends.
struct Breakdown {
  double predict = 0.0;
  double exchange = 0.0;
  double compress = 0.0;
  double write_exposed = 0.0;
  double overflow = 0.0;
  double total = 0.0;

  double raw_bytes = 0.0;
  double ideal_compressed_bytes = 0.0;  // sum of actual compressed sizes
  double storage_bytes = 0.0;           // slots + overflow tails on disk
  int overflow_partitions = 0;
};

/// profiles[rank][field]; every rank must have the same field count.
Breakdown simulate_write(const iosim::Platform& platform,
                         const std::vector<std::vector<PartitionProfile>>& profiles,
                         const TimingConfig& config);

/// Bootstrap helper: replicates measured per-field samples across
/// `nranks` ranks with multiplicative jitter, preserving each field's
/// empirical spread. samples[field] holds >= 1 measured profiles.
std::vector<std::vector<PartitionProfile>> bootstrap_profiles(
    const std::vector<std::vector<PartitionProfile>>& samples, int nranks,
    util::Rng& rng, double jitter = 0.08);

/// Linearly scales every profile by `factor` (sizes, counts and times):
/// benches measure small sample partitions for speed, then scale to the
/// paper's per-process partition sizes (e.g. 256^3 = 64 MiB). Valid
/// because compression cost and size are ~linear in input bytes.
void scale_profiles(std::vector<std::vector<PartitionProfile>>& profiles, double factor);

}  // namespace pcw::core
