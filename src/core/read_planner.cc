#include "core/read_planner.h"

#include <stdexcept>

namespace pcw::core {

std::vector<FieldReadPlan> plan_read(const h5::File& file,
                                     std::span<const ReadSpec> specs) {
  std::vector<FieldReadPlan> plans;
  plans.reserve(specs.size());
  for (const ReadSpec& spec : specs) {
    const h5::DatasetDesc* desc = file.find_dataset(spec.name);
    if (desc == nullptr) {
      throw std::invalid_argument("read: no dataset named " + spec.name);
    }
    FieldReadPlan plan;
    plan.desc = desc;
    const sz::Region region =
        spec.region.value_or(sz::Region::of(desc->global_dims));
    plan.selection = h5::plan_region_selection(*desc, region);
    plan.payload_bytes = h5::selection_payload_bytes(*desc, plan.selection);
    plans.push_back(std::move(plan));
  }
  return plans;
}

sz::Region restart_region(const sz::Dims& global, int rank, int nranks) {
  if (rank < 0 || nranks < 1 || rank >= nranks) {
    throw std::invalid_argument("read: rank outside [0, nranks)");
  }
  const int axis = sz::slowest_nonunit_axis(global);
  const std::size_t len = sz::extent(global, axis);
  const auto n = static_cast<std::size_t>(nranks);
  const auto r = static_cast<std::size_t>(rank);
  const std::size_t base = len / n, rem = len % n;
  const std::size_t lo = r * base + std::min(r, rem);
  const std::size_t hi = lo + base + (r < rem ? 1 : 0);
  sz::Region region = sz::Region::of(global);
  region.lo[axis] = lo;
  region.hi[axis] = hi;
  return region;
}

}  // namespace pcw::core
