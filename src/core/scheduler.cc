#include "core/scheduler.h"

#include <algorithm>
#include <numeric>

namespace pcw::core {

double pipeline_makespan(std::span<const ScheduledTask> tasks,
                         std::span<const int> order) {
  double tc = 0.0, tw = 0.0;
  for (const int idx : order) {
    const ScheduledTask& t = tasks[static_cast<std::size_t>(idx)];
    tc += t.comp_seconds;
    tw = t.write_seconds + std::max(tc, tw);
  }
  return tw;
}

std::vector<int> optimize_order(std::span<const ScheduledTask> tasks) {
  std::vector<int> queue;
  queue.reserve(tasks.size());
  std::vector<int> candidate;
  for (int field = 0; field < static_cast<int>(tasks.size()); ++field) {
    double best_time = 0.0;
    std::size_t best_pos = 0;
    bool first = true;
    for (std::size_t pos = 0; pos <= queue.size(); ++pos) {
      candidate = queue;
      candidate.insert(candidate.begin() + static_cast<std::ptrdiff_t>(pos), field);
      const double t = pipeline_makespan(tasks, candidate);
      if (first || t < best_time) {
        best_time = t;
        best_pos = pos;
        first = false;
      }
    }
    queue.insert(queue.begin() + static_cast<std::ptrdiff_t>(best_pos), field);
  }
  return queue;
}

std::vector<int> identity_order(std::size_t n) {
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  return order;
}

std::vector<int> longest_write_first_order(std::span<const ScheduledTask> tasks) {
  std::vector<int> order = identity_order(tasks.size());
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return tasks[static_cast<std::size_t>(a)].write_seconds >
           tasks[static_cast<std::size_t>(b)].write_seconds;
  });
  return order;
}

}  // namespace pcw::core
