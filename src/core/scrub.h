// pcw::core::scrub_file — offline damage audit of a checkpoint file.
//
// Walks every dataset of an open file and verifies what can be verified
// without decoding: extent/structure checks for every partition and, for
// v4 sz containers, the stored checksums (deep mode additionally checks
// the codebook and every per-block CRC, localizing damage to block
// indices). A second pass follows series restart chains so a step whose
// own bytes are fine but whose chain passes through a damaged ancestor is
// reported damaged too — with `salvageable` telling whether a degraded
// read (SeriesReadConfig::degraded: keyframe fallback) can still deliver
// data for it. pcw::Reader::scrub and `pcw5ls --scrub` surface this.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "h5/file.h"

namespace pcw::core {

enum class DatasetHealth : std::uint8_t {
  kClean = 0,       // every check passed
  kDamaged = 1,     // some payload failed verification (or its chain did)
  kUnreadable = 2,  // no payload byte of the dataset could even be read
};

struct DatasetScrub {
  std::string name;
  DatasetHealth state = DatasetHealth::kClean;
  /// Damaged, but a degraded series read can still deliver data for this
  /// dataset (its chain's keyframe is intact). Always false when clean.
  bool salvageable = false;
  std::uint64_t partitions = 0;
  std::uint64_t damaged_partitions = 0;
  /// First damage found, naming partition (and blocks when localized).
  std::string detail;
};

struct ScrubReport {
  std::vector<DatasetScrub> datasets;
  std::uint64_t clean = 0;
  std::uint64_t damaged = 0;
  std::uint64_t unreadable = 0;
  bool ok() const { return damaged == 0 && unreadable == 0; }
};

/// Scrubs every dataset of `file`. `deep` additionally decodes v4 sz
/// payload structure far enough to CRC the codebook and each block,
/// naming the damaged block indices in `detail` (one extra pass over the
/// stored bytes; still no entropy decode).
ScrubReport scrub_file(const h5::File& file, bool deep = true);

}  // namespace pcw::core
