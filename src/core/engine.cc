#include "core/engine.h"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <stdexcept>

#include "util/metrics.h"
#include "util/timer.h"
#include "util/trace.h"

namespace pcw::core {
namespace {

using h5::dtype_of;

/// Per-(field, rank) prediction message exchanged in the all-gather.
struct PredMsg {
  std::uint64_t predicted_bytes = 0;
  double predicted_ratio = 1.0;
  std::uint64_t elem_count = 0;
};
static_assert(std::is_trivially_copyable_v<PredMsg>);

/// Per-(field, rank) outcome message exchanged after the write wave.
struct ActualMsg {
  std::uint64_t actual_bytes = 0;
  std::uint64_t overflow_bytes = 0;
};
static_assert(std::is_trivially_copyable_v<ActualMsg>);

template <typename T>
RankReport run_no_compression(mpi::Comm& comm, h5::File& file,
                              std::span<const FieldSpec<T>> fields) {
  RankReport report;
  util::Timer total;
  util::Timer phase;
  for (const auto& field : fields) {
    h5::write_contiguous<T>(comm, file, field.name, field.local, field.global_dims);
    report.raw_bytes += field.local.size_bytes();
  }
  report.compressed_bytes = report.raw_bytes;
  report.write_seconds = phase.seconds();
  report.total_seconds = total.seconds();
  report.order = identity_order(fields.size());
  return report;
}

template <typename T>
RankReport run_filter_collective(mpi::Comm& comm, h5::File& file,
                                 std::span<const FieldSpec<T>> fields,
                                 const EngineConfig& config) {
  // H5Z-SZ semantics: the write of the shared file cannot start until all
  // compressed sizes are known. Each dataset is compressed and written
  // collectively in sequence; within one dataset the phases are already
  // serialized by write_filtered_collective.
  RankReport report;
  util::Timer total;
  for (const auto& field : fields) {
    sz::Params params = field.params;
    params.threads = config.compress_threads;
    h5::SzFilter filter(params);
    const h5::FilterWriteStats stats = h5::write_filtered_collective<T>(
        comm, file, field.name, field.local, field.local_dims, field.global_dims,
        filter);
    report.compress_seconds += stats.compress_seconds;
    report.exchange_seconds += stats.exchange_seconds;
    report.write_seconds += stats.write_seconds;
    report.compressed_bytes += stats.compressed_bytes;
    report.raw_bytes += field.local.size_bytes();
  }
  report.reserved_bytes = report.compressed_bytes;  // filter path wastes nothing
  report.total_seconds = total.seconds();
  report.order = identity_order(fields.size());
  return report;
}

template <typename T>
RankReport run_overlap(mpi::Comm& comm, h5::File& file,
                       std::span<const FieldSpec<T>> fields,
                       const EngineConfig& config, bool reorder) {
  RankReport report;
  util::Timer total;
  const std::size_t nfields = fields.size();
  const auto nranks = static_cast<std::size_t>(comm.size());
  const auto my_rank = static_cast<std::size_t>(comm.rank());

  // --- Phase 1: prediction (ratio, compression time, write time). -------
  std::vector<PredMsg> my_preds(nfields);
  std::vector<ScheduledTask> tasks(nfields);
  {
    util::trace::StageTimer stage("predict", "engine", "fields", nfields);
    for (std::size_t f = 0; f < nfields; ++f) {
      const auto est = model::estimate_ratio<T>(fields[f].local, fields[f].local_dims,
                                                fields[f].params, config.ratio_config);
      const double raw_bytes = static_cast<double>(fields[f].local.size_bytes());
      // Predicted compressed size, plus the sz container margin the model
      // already amortizes; +1 guards the zero edge.
      my_preds[f].predicted_bytes =
          static_cast<std::uint64_t>(est.bit_rate / 8.0 *
                                     static_cast<double>(fields[f].local.size())) +
          1;
      my_preds[f].predicted_ratio = est.ratio;
      my_preds[f].elem_count = fields[f].local.size();
      tasks[f].comp_seconds = config.comp_model.predict_time(raw_bytes, est.bit_rate);
      tasks[f].write_seconds = config.write_model.predict_time(
          static_cast<double>(my_preds[f].predicted_bytes));
      report.raw_bytes += fields[f].local.size_bytes();
    }
    report.predict_seconds = stage.seconds();
  }

  // --- Phase 2: one all-gather distributes every prediction. ------------
  std::vector<std::vector<PredMsg>> all_preds;
  {
    util::trace::StageTimer stage("exchange", "engine");
    all_preds = comm.allgatherv<PredMsg>(my_preds);
    report.exchange_seconds = stage.seconds();
  }

  // --- Phase 3: identical offset planning on every rank. ----------------
  std::vector<std::vector<PartitionPrediction>> predictions(
      nfields, std::vector<PartitionPrediction>(nranks));
  for (std::size_t r = 0; r < nranks; ++r) {
    if (all_preds[r].size() != nfields) {
      throw std::runtime_error("engine: rank disagreement on field count");
    }
    for (std::size_t f = 0; f < nfields; ++f) {
      predictions[f][r].predicted_bytes = all_preds[r][f].predicted_bytes;
      predictions[f][r].predicted_ratio = all_preds[r][f].predicted_ratio;
    }
  }
  const LayoutPlan plan = plan_layout(predictions, config.rspace);
  const std::uint64_t base = file.alloc_collective(comm, plan.total_bytes);
  for (std::size_t f = 0; f < nfields; ++f) {
    report.reserved_bytes += plan.slots[f][my_rank].reserved_bytes;
  }

  // --- Phase 4: compression-order optimization (Algorithm 1). -----------
  report.order = reorder ? optimize_order(tasks) : identity_order(nfields);

  // --- Phase 5: compress/async-write pipeline. ---------------------------
  std::vector<ActualMsg> my_actuals(nfields);
  std::vector<std::vector<std::uint8_t>> overflow_tails(nfields);
  std::vector<h5::WriteTicket> tickets;
  tickets.reserve(nfields);
  double compress_accum = 0.0;
  for (const int fi : report.order) {
    const auto f = static_cast<std::size_t>(fi);
    std::vector<std::uint8_t> blob;
    {
      util::trace::StageTimer stage("compress", "engine", "field", f);
      sz::Params comp_params = fields[f].params;
      comp_params.threads = config.compress_threads;
      blob = sz::compress<T>(fields[f].local, fields[f].local_dims, comp_params);
      compress_accum += stage.seconds();
    }

    const PartitionSlot& slot = plan.slots[f][my_rank];
    my_actuals[f].actual_bytes = blob.size();
    report.compressed_bytes += blob.size();
    if (blob.size() > slot.reserved_bytes) {
      // Overflow: the slot takes what fits; the excess is appended after
      // the main wave (§III-D).
      my_actuals[f].overflow_bytes = blob.size() - slot.reserved_bytes;
      report.overflow_bytes += my_actuals[f].overflow_bytes;
      ++report.overflow_partitions;
      overflow_tails[f].assign(blob.begin() + static_cast<std::ptrdiff_t>(slot.reserved_bytes),
                               blob.end());
      blob.resize(slot.reserved_bytes);
    }
    tickets.push_back(file.async_write(base + slot.offset, std::move(blob)));
  }
  report.compress_seconds = compress_accum;

  // Exposed write tail: from the end of the last compression to the last
  // byte of this rank's async queue landing.
  {
    util::trace::StageTimer stage("write_exposed", "engine", "tickets",
                                  tickets.size());
    for (const auto& ticket : tickets) ticket.wait();
    report.write_seconds = stage.seconds();
  }

  // --- Phase 6: overflow handling + outcome gather. ---------------------
  std::vector<std::vector<ActualMsg>> all_actuals;
  std::vector<std::vector<std::uint64_t>> overflow_offsets;
  std::uint64_t overflow_base = 0;
  {
    util::trace::StageTimer stage("overflow", "engine");
    all_actuals = comm.allgatherv<ActualMsg>(my_actuals);
    std::vector<std::vector<std::uint64_t>> overflow_sizes(
        nfields, std::vector<std::uint64_t>(nranks, 0));
    for (std::size_t r = 0; r < nranks; ++r) {
      for (std::size_t f = 0; f < nfields; ++f) {
        overflow_sizes[f][r] = all_actuals[r][f].overflow_bytes;
      }
    }
    std::uint64_t overflow_total = 0;
    overflow_offsets = assign_overflow_offsets(overflow_sizes, &overflow_total);
    if (overflow_total > 0) {
      overflow_base = file.alloc_collective(comm, overflow_total);
      for (std::size_t f = 0; f < nfields; ++f) {
        if (!overflow_tails[f].empty()) {
          file.pwrite(overflow_base + overflow_offsets[f][my_rank], overflow_tails[f]);
        }
      }
    }
    report.overflow_seconds = stage.seconds();
  }

  // --- Phase 7: metadata registration (rank 0). --------------------------
  if (comm.rank() == 0) {
    for (std::size_t f = 0; f < nfields; ++f) {
      h5::DatasetDesc desc;
      desc.name = fields[f].name;
      desc.dtype = dtype_of<T>();
      desc.global_dims = fields[f].global_dims;
      desc.layout = h5::Layout::kPartitioned;
      desc.filter = h5::FilterId::kSz;
      desc.abs_error_bound = fields[f].params.error_bound;
      std::uint64_t elem_cursor = 0;
      for (std::size_t r = 0; r < nranks; ++r) {
        h5::PartitionRecord part;
        part.rank = static_cast<std::uint32_t>(r);
        part.elem_offset = elem_cursor;
        part.elem_count = all_preds[r][f].elem_count;
        elem_cursor += part.elem_count;
        part.file_offset = base + plan.slots[f][r].offset;
        part.reserved_bytes = plan.slots[f][r].reserved_bytes;
        part.actual_bytes = all_actuals[r][f].actual_bytes;
        part.overflow_bytes = all_actuals[r][f].overflow_bytes;
        if (part.overflow_bytes > 0) {
          part.overflow_offset = overflow_base + overflow_offsets[f][r];
        }
        desc.partitions.push_back(part);
      }
      if (elem_cursor != fields[f].global_dims.count()) {
        throw std::runtime_error("engine: slice counts do not cover " + fields[f].name);
      }
      file.add_dataset(std::move(desc));
    }
  }
  comm.barrier();
  report.total_seconds = total.seconds();
  return report;
}

}  // namespace

const char* to_string(WriteMode mode) {
  switch (mode) {
    case WriteMode::kNoCompression: return "no-compression";
    case WriteMode::kFilterCollective: return "filter-collective";
    case WriteMode::kOverlap: return "overlap";
    case WriteMode::kOverlapReorder: return "overlap+reorder";
  }
  return "?";
}

template <typename T>
RankReport write_fields(mpi::Comm& comm, h5::File& file,
                        std::span<const FieldSpec<T>> fields,
                        const EngineConfig& config) {
  if (fields.empty()) throw std::invalid_argument("engine: no fields");
  util::metrics::Registry::get().engine_writes.add();
  switch (config.mode) {
    case WriteMode::kNoCompression:
      return run_no_compression<T>(comm, file, fields);
    case WriteMode::kFilterCollective:
      return run_filter_collective<T>(comm, file, fields, config);
    case WriteMode::kOverlap:
      return run_overlap<T>(comm, file, fields, config, /*reorder=*/false);
    case WriteMode::kOverlapReorder:
      return run_overlap<T>(comm, file, fields, config, /*reorder=*/true);
  }
  throw std::invalid_argument("engine: unknown mode");
}

template RankReport write_fields<float>(mpi::Comm&, h5::File&,
                                        std::span<const FieldSpec<float>>,
                                        const EngineConfig&);
template RankReport write_fields<double>(mpi::Comm&, h5::File&,
                                         std::span<const FieldSpec<double>>,
                                         const EngineConfig&);

}  // namespace pcw::core
