#include "core/planner.h"

#include <stdexcept>

#include "model/extra_space.h"

namespace pcw::core {
namespace {

std::uint64_t align_up(std::uint64_t v, std::uint64_t alignment) {
  return alignment == 0 ? v : (v + alignment - 1) / alignment * alignment;
}

}  // namespace

LayoutPlan plan_layout(const std::vector<std::vector<PartitionPrediction>>& predictions,
                       double rspace, std::uint64_t alignment) {
  LayoutPlan plan;
  plan.slots.resize(predictions.size());
  std::uint64_t cursor = 0;
  for (std::size_t f = 0; f < predictions.size(); ++f) {
    plan.slots[f].resize(predictions[f].size());
    if (!predictions[f].empty() && predictions[f].size() != predictions[0].size()) {
      throw std::invalid_argument("planner: ragged prediction matrix");
    }
    for (std::size_t r = 0; r < predictions[f].size(); ++r) {
      const auto& pred = predictions[f][r];
      const double reserved = model::reserved_bytes(
          static_cast<double>(pred.predicted_bytes), pred.predicted_ratio, rspace);
      PartitionSlot& slot = plan.slots[f][r];
      slot.offset = cursor;
      slot.reserved_bytes = align_up(static_cast<std::uint64_t>(reserved) + 1, alignment);
      cursor += slot.reserved_bytes;
    }
  }
  plan.total_bytes = cursor;
  return plan;
}

std::vector<std::vector<std::uint64_t>> assign_overflow_offsets(
    const std::vector<std::vector<std::uint64_t>>& overflow_bytes,
    std::uint64_t* total_out, std::uint64_t alignment) {
  // Rank-major: all of one rank's tails are adjacent, so a rank appends
  // its entire overflow with a single contiguous write.
  std::vector<std::vector<std::uint64_t>> offsets(overflow_bytes.size());
  std::size_t nranks = 0;
  for (std::size_t f = 0; f < overflow_bytes.size(); ++f) {
    offsets[f].resize(overflow_bytes[f].size(), 0);
    nranks = std::max(nranks, overflow_bytes[f].size());
  }
  std::uint64_t cursor = 0;
  for (std::size_t r = 0; r < nranks; ++r) {
    for (std::size_t f = 0; f < overflow_bytes.size(); ++f) {
      if (r >= overflow_bytes[f].size() || overflow_bytes[f][r] == 0) continue;
      offsets[f][r] = cursor;
      cursor += align_up(overflow_bytes[f][r], alignment);
    }
  }
  if (total_out != nullptr) *total_out = cursor;
  return offsets;
}

}  // namespace pcw::core
