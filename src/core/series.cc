#include "core/series.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "util/metrics.h"
#include "util/timer.h"
#include "util/trace.h"

namespace pcw::core {
namespace {

/// Per-(field, rank) metadata gathered after a step's write wave.
struct SeriesPartMsg {
  std::uint64_t elem_count = 0;
  std::uint64_t file_offset = 0;
  std::uint64_t bytes = 0;
};
static_assert(std::is_trivially_copyable_v<SeriesPartMsg>);

/// One field's resolved restart chain: the datasets from the nearest
/// keyframe (inclusive) to the requested step, plus the region selection
/// planned once and reused for every link (the layout is validated
/// identical along the chain).
struct ChainPlan {
  std::vector<const h5::DatasetDesc*> chain;  // keyframe first, target last
  h5::RegionSelection sel;
};

ChainPlan plan_chain(const h5::File& file, const std::string& base, std::uint32_t step,
                     const std::optional<sz::Region>& region_opt) {
  const h5::DatasetDesc* desc = file.find_series(base, step);
  if (desc == nullptr) {
    throw std::invalid_argument("series: no step " + std::to_string(step) + " of " +
                                base);
  }
  std::vector<const h5::DatasetDesc*> rev{desc};
  while (!rev.back()->is_keyframe()) {
    const h5::DatasetDesc* cur = rev.back();
    const h5::DatasetDesc* ref = file.find_series(base, cur->series_ref_step);
    if (ref == nullptr) {
      throw std::runtime_error("series: missing reference step " +
                               std::to_string(cur->series_ref_step) + " of " + base);
    }
    // parse_footer forbids ref > step, so ref < cur holds here and the
    // walk strictly descends — no cycle guard needed beyond this check.
    if (ref->series_step >= cur->series_step) {
      throw std::runtime_error("series: malformed reference chain for " + base);
    }
    rev.push_back(ref);
  }

  ChainPlan plan;
  plan.chain.assign(rev.rbegin(), rev.rend());
  const h5::DatasetDesc* last = plan.chain.back();
  for (const h5::DatasetDesc* d : plan.chain) {
    if (d->layout != h5::Layout::kPartitioned || d->filter != h5::FilterId::kSz) {
      throw std::runtime_error("series: step " + d->name +
                               " is not an sz-partitioned dataset");
    }
    if (d->dtype != last->dtype || !(d->global_dims == last->global_dims) ||
        d->partitions.size() != last->partitions.size()) {
      throw std::runtime_error("series: layout changed along the chain of " + base);
    }
    for (std::size_t p = 0; p < d->partitions.size(); ++p) {
      if (d->partitions[p].elem_offset != last->partitions[p].elem_offset ||
          d->partitions[p].elem_count != last->partitions[p].elem_count) {
        throw std::runtime_error("series: partitioning changed along the chain of " +
                                 base);
      }
    }
  }
  const sz::Region region = region_opt.value_or(sz::Region::of(last->global_dims));
  plan.sel = h5::plan_region_selection(*last, region);
  return plan;
}

/// Decode failure pinned to one link of a restart chain, so the degraded
/// fallback can tell a corrupt delta step (recoverable from the keyframe)
/// from a corrupt keyframe (not). Still a runtime_error whose what()
/// names dataset, partition and block for callers that let it escape.
class ChainLinkError : public std::runtime_error {
 public:
  ChainLinkError(std::size_t link, std::size_t partition, const std::string& what)
      : std::runtime_error(what), link_(link), partition_(partition) {}
  std::size_t link() const { return link_; }
  std::size_t partition() const { return partition_; }

 private:
  std::size_t link_;
  std::size_t partition_;
};

/// Chain-decodes one field's selection into `out` (sel.elements
/// elements). `tickets`, when non-null, holds the prefetched payloads as
/// [link][part]; otherwise payloads are fetched synchronously.
template <typename T>
void decode_chain(const h5::File& file, const ChainPlan& plan,
                  std::vector<std::vector<h5::PayloadTicket>>* tickets,
                  unsigned threads, sz::VerifyMode verify, std::span<T> out,
                  SeriesReadReport& report) {
  const h5::RegionSelection& sel = plan.sel;
  const std::size_t n_links = plan.chain.size();
  report.steps_chained = std::max<std::uint64_t>(report.steps_chained, n_links);

  for (std::size_t p = 0; p < sel.parts.size(); ++p) {
    const h5::PartitionSelection& ps = sel.parts[p];
    const h5::PartitionRecord& part = plan.chain.back()->partitions[ps.part_index];

    sz::Dims local_dims;
    sz::Region cover;
    std::size_t cover_lo = 0;
    std::vector<T> buf;  // the chain's running reconstruction over `cover`
    for (std::size_t s = 0; s < n_links; ++s) {
      std::vector<std::uint8_t> payload;
      {
        util::trace::StageTimer stage("read", "series", "link", s);
        payload = tickets != nullptr
                      ? (*tickets)[s][p].join()
                      : h5::read_selection_payload(file, *plan.chain[s], ps);
        report.read_seconds += stage.seconds();
      }
      report.bytes_read += payload.size();

      util::trace::StageTimer decode_stage("decode", "series", "link", s);
      const std::string where = "dataset '" + plan.chain[s]->name + "' partition " +
                                std::to_string(ps.part_index) + ": ";
      sz::Dims stored;
      try {
        stored = sz::inspect(payload).dims;
      } catch (const std::exception& e) {
        throw ChainLinkError(s, ps.part_index, where + e.what());
      }
      if (s == 0) {
        if (sz::element_count(stored) != part.elem_count) {
          throw std::runtime_error(where + "partition extents disagree with blob");
        }
        local_dims = stored;
        cover = sz::covering_region(local_dims, ps.flat_lo - part.elem_offset,
                                    ps.flat_hi - part.elem_offset);
        cover_lo = sz::region_flat_lo(cover, local_dims);
      } else if (!(stored == local_dims)) {
        throw std::runtime_error(where + "partition extents changed along the chain");
      }
      sz::RegionDecodeStats dstats;
      try {
        buf = sz::decompress_region<T>(payload, cover, std::span<const T>(buf), threads,
                                       &dstats, verify);
      } catch (const std::exception& e) {
        // Chain decode failures name the failing link, not just "series".
        throw ChainLinkError(s, ps.part_index, where + e.what());
      }
      report.blocks_total += dstats.blocks_total;
      report.blocks_decoded += dstats.blocks_decoded;
      report.decompress_seconds += decode_stage.seconds();
      util::metrics::Registry::get().chain_links_decoded.add();
    }

    for (const h5::RowSegment& seg : ps.segments) {
      const std::size_t src = (seg.flat_lo - part.elem_offset) - cover_lo;
      std::memcpy(out.data() + seg.out_offset, buf.data() + src, seg.len * sizeof(T));
    }
  }
  report.elements_out += sel.elements;
}

/// Degraded fallback: re-decodes the *whole field* at the chain's
/// keyframe step (chain length 1, synchronous fetches — the prefetched
/// tickets belong to the broken chain) and records the downgrade. The
/// selection re-uses the broken chain's plan, valid because plan_chain
/// verified the layout identical along the chain.
template <typename T>
void decode_keyframe_fallback(const h5::File& file, const ChainPlan& plan,
                              const ChainLinkError& err, std::uint32_t step,
                              unsigned threads, sz::VerifyMode verify, std::span<T> out,
                              SeriesReadReport& report) {
  const h5::DatasetDesc* keyframe = plan.chain.front();
  util::metrics::Registry::get().degraded_reads.add();
  util::trace::instant("degraded_read", "series", "step", step);
  ChainPlan kplan;
  kplan.chain = {keyframe};
  kplan.sel = plan.sel;
  decode_chain<T>(file, kplan, nullptr, threads, verify, out, report);
  DegradedRead d;
  d.dataset = plan.chain[err.link()]->name;
  d.partition = err.partition();
  d.step_requested = step;
  d.step_recovered = keyframe->series_step;
  d.detail = err.what();
  report.degraded.push_back(std::move(d));
}

}  // namespace

template <typename T>
SeriesWriter<T>::SeriesWriter(h5::File& file, SeriesConfig config)
    : file_(&file), config_(config) {
  if (config_.keyframe_interval == 0) config_.keyframe_interval = 1;
}

template <typename T>
SeriesStepReport SeriesWriter<T>::write_step(mpi::Comm& comm,
                                             std::span<const FieldSpec<T>> fields) {
  if (fields.empty()) throw std::invalid_argument("series: no fields");
  const std::uint32_t step = next_step_;
  if (bases_.empty()) {
    bases_.reserve(fields.size());
    for (const auto& field : fields) bases_.push_back(field.name);
    prev_.resize(fields.size());
  } else if (fields.size() != bases_.size()) {
    throw std::invalid_argument("series: field set changed mid-series");
  } else {
    for (std::size_t f = 0; f < fields.size(); ++f) {
      if (fields[f].name != bases_[f]) {
        throw std::invalid_argument("series: field set changed mid-series");
      }
    }
  }
  const bool keyframe = is_keyframe_step(step, config_.keyframe_interval);

  SeriesStepReport report;
  report.step = step;
  report.keyframe = keyframe;
  util::Timer total;
  util::trace::Span step_span("step", "series", "step", step);
  util::metrics::Registry::get().series_steps.add();

  // Compress/async-write pipeline: each blob is handed to the background
  // I/O queue the moment it exists, so the next field's compression
  // overlaps the write (the Fig.-3 schedule, with exact offsets from the
  // atomic cursor instead of predicted ones — a step's sizes are known
  // rank-locally before any byte moves, so no slack and no exchange).
  //
  // The reconstructions are staged in `recons` and committed to prev_
  // only after the whole step succeeded (payloads durable AND metadata
  // registered): if anything throws mid-step, the writer's reference
  // state still describes the last completed step (already-written blobs
  // are unreachable without their metadata, so a retried step stays
  // bound-correct).
  std::vector<SeriesPartMsg> my(fields.size());
  std::vector<std::vector<T>> recons(fields.size());
  std::vector<h5::WriteTicket> tickets;
  tickets.reserve(fields.size());
  double compress_accum = 0.0;
  for (std::size_t f = 0; f < fields.size(); ++f) {
    const FieldSpec<T>& field = fields[f];
    sz::Params params = field.params;
    params.threads = config_.compress_threads;
    params.predictor = keyframe ? sz::Predictor::kSpatial : sz::Predictor::kTemporal;
    if (!keyframe && prev_[f].size() != field.local.size()) {
      throw std::invalid_argument("series: field shape changed mid-series");
    }
    std::vector<std::uint8_t> blob;
    {
      util::trace::StageTimer stage("compress", "series", "field", f);
      blob = sz::compress<T>(
          field.local, field.local_dims, params,
          keyframe ? std::span<const T>{} : std::span<const T>(prev_[f]), &recons[f]);
      compress_accum += stage.seconds();
    }

    const sz::HeaderInfo info = sz::inspect(blob);
    report.temporal_blocks += info.temporal_blocks;
    report.spatial_blocks += info.block_count - info.temporal_blocks;
    report.raw_bytes += field.local.size_bytes();
    report.compressed_bytes += blob.size();

    my[f].elem_count = field.local.size();
    my[f].bytes = blob.size();
    my[f].file_offset = file_->alloc(blob.size());
    if (config_.pipeline) {
      tickets.push_back(file_->async_write(my[f].file_offset, std::move(blob)));
    } else {
      file_->pwrite(my[f].file_offset, blob);
    }
  }
  report.compress_seconds = compress_accum;

  {
    util::trace::StageTimer stage("write_exposed", "series", "tickets",
                                  tickets.size());
    for (const h5::WriteTicket& ticket : tickets) ticket.wait();
    report.write_seconds = stage.seconds();
  }

  // Metadata: one allgatherv carries every field's partition record.
  const auto all = comm.allgatherv<SeriesPartMsg>(my);
  if (comm.rank() == 0) {
    const auto nranks = static_cast<std::size_t>(comm.size());
    for (std::size_t f = 0; f < fields.size(); ++f) {
      h5::DatasetDesc desc;
      desc.name = h5::series_dataset_name(bases_[f], step);
      desc.dtype = h5::dtype_of<T>();
      desc.global_dims = fields[f].global_dims;
      desc.layout = h5::Layout::kPartitioned;
      desc.filter = h5::FilterId::kSz;
      desc.abs_error_bound = fields[f].params.error_bound;
      desc.series_member = true;
      desc.series_base = bases_[f];
      desc.series_step = step;
      desc.series_ref_step = keyframe ? step : step - 1;
      std::uint64_t elem_cursor = 0;
      for (std::size_t r = 0; r < nranks; ++r) {
        if (all[r].size() != fields.size()) {
          throw std::runtime_error("series: rank disagreement on field count");
        }
        h5::PartitionRecord part;
        part.rank = static_cast<std::uint32_t>(r);
        part.elem_offset = elem_cursor;
        part.elem_count = all[r][f].elem_count;
        part.file_offset = all[r][f].file_offset;
        part.reserved_bytes = all[r][f].bytes;
        part.actual_bytes = all[r][f].bytes;
        elem_cursor += part.elem_count;
        desc.partitions.push_back(part);
      }
      if (elem_cursor != fields[f].global_dims.count()) {
        throw std::runtime_error("series: slice counts do not cover " + bases_[f]);
      }
      file_->add_dataset(std::move(desc));
    }
  }
  comm.barrier();
  if (config_.commit_every_step) file_->commit_collective(comm);
  // The step is fully committed (payloads durable, metadata registered):
  // only now do the reconstructions become the next temporal references,
  // together with the step counter.
  for (std::size_t f = 0; f < fields.size(); ++f) prev_[f] = std::move(recons[f]);
  report.total_seconds = total.seconds();
  ++next_step_;
  return report;
}

template <typename T>
std::vector<std::vector<T>> read_series(mpi::Comm& comm, h5::File& file,
                                        std::span<const ReadSpec> specs,
                                        std::uint32_t step,
                                        const SeriesReadConfig& config,
                                        SeriesReadReport* report_out) {
  if (specs.empty()) throw std::invalid_argument("series: no fields");
  SeriesReadReport report;
  util::Timer total;

  std::vector<ChainPlan> plans;
  plans.reserve(specs.size());
  for (const ReadSpec& spec : specs) {
    plans.push_back(plan_chain(file, spec.name, step, spec.region));
    if (plans.back().chain.back()->dtype != h5::dtype_of<T>()) {
      throw std::runtime_error("series: dtype mismatch for " + spec.name);
    }
  }

  // Reverse-Fig.-3 overlap, chained: the payloads of every link of field
  // f+1's chain stream off disk while field f decodes.
  const std::size_t nfields = plans.size();
  std::vector<std::vector<std::vector<h5::PayloadTicket>>> inflight(nfields);
  std::vector<bool> issued(nfields, false);
  auto issue = [&](std::size_t f) {
    if (issued[f]) return;
    issued[f] = true;
    inflight[f].reserve(plans[f].chain.size());
    for (const h5::DatasetDesc* d : plans[f].chain) {
      inflight[f].push_back(h5::async_read_selection(file, *d, plans[f].sel));
    }
  };

  std::vector<std::vector<T>> results(nfields);
  for (std::size_t f = 0; f < nfields; ++f) {
    if (config.pipeline) {
      issue(f);
      if (f + 1 < nfields) issue(f + 1);
    }
    results[f].resize(plans[f].sel.elements);
    try {
      decode_chain<T>(file, plans[f], config.pipeline ? &inflight[f] : nullptr,
                      config.decompress_threads, config.verify, results[f], report);
    } catch (const ChainLinkError& e) {
      // A corrupt keyframe (link 0) has nothing older to fall back to.
      if (!config.degraded || e.link() == 0) throw;
      decode_keyframe_fallback<T>(file, plans[f], e, step, config.decompress_threads,
                                  config.verify, results[f], report);
    }
    inflight[f].clear();
  }

  comm.barrier();
  report.total_seconds = total.seconds();
  if (report_out != nullptr) *report_out = report;
  return results;
}

template <typename T>
std::vector<T> restart_at_step(h5::File& file, const std::string& field,
                               std::uint32_t step,
                               const std::optional<sz::Region>& region,
                               const SeriesReadConfig& config,
                               SeriesReadReport* report_out) {
  SeriesReadReport report;
  util::Timer total;
  ChainPlan plan = plan_chain(file, field, step, region);
  if (plan.chain.back()->dtype != h5::dtype_of<T>()) {
    throw std::runtime_error("series: dtype mismatch for " + field);
  }
  std::vector<std::vector<h5::PayloadTicket>> inflight;
  if (config.pipeline) {
    inflight.reserve(plan.chain.size());
    for (const h5::DatasetDesc* d : plan.chain) {
      inflight.push_back(h5::async_read_selection(file, *d, plan.sel));
    }
  }
  std::vector<T> out(plan.sel.elements);
  try {
    decode_chain<T>(file, plan, config.pipeline ? &inflight : nullptr,
                    config.decompress_threads, config.verify, out, report);
  } catch (const ChainLinkError& e) {
    if (!config.degraded || e.link() == 0) throw;
    decode_keyframe_fallback<T>(file, plan, e, step, config.decompress_threads,
                                config.verify, out, report);
  }
  report.total_seconds = total.seconds();
  if (report_out != nullptr) *report_out = report;
  return out;
}

template class SeriesWriter<float>;
template class SeriesWriter<double>;
template std::vector<std::vector<float>> read_series<float>(
    mpi::Comm&, h5::File&, std::span<const ReadSpec>, std::uint32_t,
    const SeriesReadConfig&, SeriesReadReport*);
template std::vector<std::vector<double>> read_series<double>(
    mpi::Comm&, h5::File&, std::span<const ReadSpec>, std::uint32_t,
    const SeriesReadConfig&, SeriesReadReport*);
template std::vector<float> restart_at_step<float>(h5::File&, const std::string&,
                                                   std::uint32_t,
                                                   const std::optional<sz::Region>&,
                                                   const SeriesReadConfig&,
                                                   SeriesReadReport*);
template std::vector<double> restart_at_step<double>(h5::File&, const std::string&,
                                                     std::uint32_t,
                                                     const std::optional<sz::Region>&,
                                                     const SeriesReadConfig&,
                                                     SeriesReadReport*);

}  // namespace pcw::core
