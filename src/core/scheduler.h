// Compression-order optimization (the paper's Algorithm 1).
//
// Within one process, F fields are compressed sequentially but written
// asynchronously; the pipeline makespan is
//
//     t_c <- t_c + P_c(l)                (compression is serial)
//     t_w <- P_w(l) + max(t_c, t_w)      (a write starts when both its
//                                         data and the I/O lane are free)
//
// Total compression time is order-invariant, so the optimizer permutes
// fields to minimize the exposed write tail. Algorithm 1 is a greedy
// insertion construction: fields are taken in input order and each is
// inserted at the position that minimizes TIME(Q). O(F^2) evaluations of
// an O(F) objective — negligible next to compression (the paper measures
// 0.17% overhead at F = 100).
#pragma once

#include <span>
#include <vector>

namespace pcw::core {

struct ScheduledTask {
  double comp_seconds = 0.0;   // P_c: predicted compression time
  double write_seconds = 0.0;  // P_w: predicted write time
};

/// TIME(q): pipeline makespan of tasks executed in the given order.
double pipeline_makespan(std::span<const ScheduledTask> tasks,
                         std::span<const int> order);

/// Algorithm 1: returns a permutation of [0, tasks.size()) to compress in.
std::vector<int> optimize_order(std::span<const ScheduledTask> tasks);

/// Baseline orders for ablation benches.
std::vector<int> identity_order(std::size_t n);
/// Natural greedy alternative: longest predicted write first.
std::vector<int> longest_write_first_order(std::span<const ScheduledTask> tasks);

}  // namespace pcw::core
