// pcw::core time-series engine: the in-situ scenario where the same
// fields are checkpointed every simulation step and consecutive steps
// barely differ.
//
// Write side — SeriesWriter::write_step keeps each field's *decoded*
// previous step (exported by the compressor, no decode pass) as the
// temporal reference, inserts spatial keyframes every K steps, and feeds
// each step through the async-write overlap schedule: field k+1
// compresses while field k's payload is still landing on the background
// I/O queue. Offsets are exact (allocated post-compression from the
// file's atomic cursor), so a series write needs no extra-space slack and
// no size exchange before data moves.
//
// Read side — read_series / restart_at_step reconstruct step t from the
// nearest keyframe forward. Each touched partition chain-decodes through
// the block-indexed partial decode: only the sz blocks intersecting the
// request are entropy-decoded at *every* link of the chain, so a sparse
// region read of a late step costs chain_len x (touched blocks), never
// chain_len x (whole field). Payloads of the whole chain are prefetched
// on the file's async read queue while earlier links decode.
//
// Error bound: every step quantizes its own original against the
// reconstructed reference, so |x̂_t - x_t| <= eb point-wise at every step
// — the bound never accumulates along a chain. Keyframes exist to bound
// *restart cost* (chain length <= K), not error.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/read_planner.h"
#include "h5/file.h"
#include "mpi/comm.h"

namespace pcw::core {

struct SeriesConfig {
  /// K: a spatial keyframe every K steps (step 0 is always one). K=1
  /// disables the temporal predictor entirely; larger K trades restart
  /// chain length for ratio. See docs/time_series.md for the cost model.
  std::uint32_t keyframe_interval = 8;
  /// Worker threads for each step's sz compression (Params::threads
  /// semantics). Blob bytes are identical for every value.
  unsigned compress_threads = 1;
  /// true: payloads land on the file's async write queue so the next
  /// field's compression overlaps the write. false: synchronous pwrite.
  bool pipeline = true;
  /// true: every write_step ends with a collective crash-consistent
  /// commit (h5::File::commit_collective), bounding data loss to one
  /// step at the cost of three fsyncs per step. false: data becomes
  /// durable at close.
  bool commit_every_step = false;
};

/// The keyframe planner: pure function of (step, K), identical on every
/// rank, so no agreement traffic is ever needed.
inline bool is_keyframe_step(std::uint32_t step, std::uint32_t interval) {
  return interval == 0 || step % interval == 0;
}

/// Per-rank outcome of one write_step call.
struct SeriesStepReport {
  std::uint32_t step = 0;
  bool keyframe = false;
  double compress_seconds = 0.0;
  double write_seconds = 0.0;   // exposed async tail after the last compress
  double total_seconds = 0.0;
  std::uint64_t raw_bytes = 0;
  std::uint64_t compressed_bytes = 0;
  /// Per-block predictor outcomes across this rank's partitions: temporal
  /// deltas kept vs blocks that fell back to (or were planned as) spatial.
  std::uint32_t temporal_blocks = 0;
  std::uint32_t spatial_blocks = 0;
};

/// Appends one step per call to a shared file. Collective: every rank of
/// `comm` calls write_step with the same field names/global dims in the
/// same order, every step; the field set is pinned by the first call.
/// One SeriesWriter instance per rank, living for the whole run (it holds
/// the temporal references).
template <typename T>
class SeriesWriter {
 public:
  SeriesWriter(h5::File& file, SeriesConfig config);

  SeriesStepReport write_step(mpi::Comm& comm, std::span<const FieldSpec<T>> fields);

  /// Steps written so far == the step index the next call will get.
  std::uint32_t next_step() const { return next_step_; }

 private:
  h5::File* file_;
  SeriesConfig config_;
  std::uint32_t next_step_ = 0;
  std::vector<std::string> bases_;
  std::vector<std::vector<T>> prev_;  // per field: decoded previous step
};

struct SeriesReadConfig {
  /// Worker threads for each partition's block decode (sz::Params::threads
  /// semantics). The output is identical for every value.
  unsigned decompress_threads = 1;
  /// true: the whole chain's payloads are issued on the async read queue
  /// up front, overlapping I/O with decode. false: synchronous fetches.
  bool pipeline = true;
  /// Checksum depth applied to every v4 container decoded along the
  /// chain (no-op on v1–v3 blobs).
  sz::VerifyMode verify = sz::VerifyMode::kBlock;
  /// true: when a non-keyframe link of a field's restart chain is corrupt,
  /// deliver the chain's keyframe step for that *whole field* instead of
  /// failing the read, recording the downgrade in
  /// SeriesReadReport::degraded (all partitions of a field always come
  /// from the same step — never a mix). A corrupt keyframe still throws.
  /// false: any corruption throws, naming dataset/partition/block.
  bool degraded = false;
};

/// One field the read had to time-travel: the requested step's chain was
/// damaged, the chain's keyframe was delivered instead.
struct DegradedRead {
  std::string dataset;            // the damaged step dataset ("rho@t0005")
  std::uint64_t partition = 0;    // partition whose payload was corrupt
  std::uint32_t step_requested = 0;
  std::uint32_t step_recovered = 0;  // keyframe step actually delivered
  std::string detail;             // underlying error (names the block)
};

/// Per-call outcome and cost accounting for a chained series read.
struct SeriesReadReport {
  std::uint64_t steps_chained = 0;   // longest keyframe->step chain decoded
  std::uint64_t bytes_read = 0;      // stored payload bytes fetched
  std::uint64_t elements_out = 0;
  std::uint64_t blocks_total = 0;    // sz blocks in touched partitions, per link
  std::uint64_t blocks_decoded = 0;  // blocks actually entropy-decoded
  double read_seconds = 0.0;         // time blocked on payload I/O
  double decompress_seconds = 0.0;
  double total_seconds = 0.0;
  /// Fields downgraded to their keyframe (SeriesReadConfig::degraded).
  std::vector<DegradedRead> degraded;
};

/// Reads this rank's selection of every requested field at time step
/// `step`, chain-decoding from each field's nearest keyframe; result i
/// holds specs[i].region (nullopt = whole field) in its own row-major
/// order, bit-identical to a from-scratch chain of full decodes sliced to
/// the region. Ranks read independently; the only collective is a
/// trailing barrier so timing reports are comparable. Throws
/// std::invalid_argument on unknown series/steps/bad regions and
/// std::runtime_error on layout or type mismatches along the chain.
template <typename T>
std::vector<std::vector<T>> read_series(mpi::Comm& comm, h5::File& file,
                                        std::span<const ReadSpec> specs,
                                        std::uint32_t step,
                                        const SeriesReadConfig& config = {},
                                        SeriesReadReport* report = nullptr);

/// Single-rank convenience: reconstructs one field at `step` (whole field
/// or a region) — what an analysis script or pcw5ls --verify calls.
template <typename T>
std::vector<T> restart_at_step(h5::File& file, const std::string& field,
                               std::uint32_t step,
                               const std::optional<sz::Region>& region = std::nullopt,
                               const SeriesReadConfig& config = {},
                               SeriesReadReport* report = nullptr);

}  // namespace pcw::core
