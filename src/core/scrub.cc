#include "core/scrub.h"

#include <stdexcept>
#include <unordered_map>

#include "h5/dataset_io.h"
#include "sz/compressor.h"

namespace pcw::core {
namespace {

std::string block_list(const std::vector<std::uint32_t>& blocks) {
  std::string s;
  for (std::size_t i = 0; i < blocks.size() && i < 8; ++i) {
    if (i > 0) s += ",";
    s += std::to_string(blocks[i]);
  }
  if (blocks.size() > 8) s += ",...";
  return s;
}

void note_damage(DatasetScrub& out, std::size_t partition, const std::string& what) {
  ++out.damaged_partitions;
  if (out.detail.empty()) {
    out.detail = "partition " + std::to_string(partition) + ": " + what;
  }
}

void scrub_contiguous(const h5::File& file, const h5::DatasetDesc& d, DatasetScrub& out) {
  out.partitions = 1;
  const std::uint64_t expect = sz::element_count(d.global_dims) * element_size(d.dtype);
  if (d.nbytes != expect) {
    out.state = DatasetHealth::kDamaged;
    note_damage(out, 0, "stored size disagrees with extents");
    return;
  }
  if (d.nbytes == 0) return;
  try {
    // Probe the last byte: catches a payload extent past EOF cheaply.
    file.pread(d.file_offset + d.nbytes - 1, 1);
  } catch (const std::exception& e) {
    out.state = DatasetHealth::kUnreadable;
    note_damage(out, 0, e.what());
  }
}

void scrub_partitioned(const h5::File& file, const h5::DatasetDesc& d, bool deep,
                       DatasetScrub& out) {
  out.partitions = d.partitions.size();
  std::uint64_t read_failures = 0;
  for (std::size_t p = 0; p < d.partitions.size(); ++p) {
    std::vector<std::uint8_t> payload;
    try {
      payload = h5::read_partition_payload(file, d, d.partitions[p]);
    } catch (const std::exception& e) {
      ++read_failures;
      note_damage(out, p, e.what());
      continue;
    }
    if (d.filter == h5::FilterId::kSz) {
      const sz::BlobVerifyReport rep = sz::verify_blob(payload, deep);
      if (!rep.ok) {
        std::string what = rep.detail;
        if (!rep.damaged_blocks.empty()) {
          what += " (blocks " + block_list(rep.damaged_blocks) + ")";
        }
        note_damage(out, p, what);
      }
    } else if (d.filter == h5::FilterId::kNone) {
      if (payload.size() != d.partitions[p].elem_count * element_size(d.dtype)) {
        note_damage(out, p, "stored size disagrees with extents");
      }
    }
    // Other codecs (zfp, out-of-tree): readability is all scrub can
    // check without a decode; their damage surfaces on read.
  }
  if (out.damaged_partitions == 0) return;
  out.state = read_failures == out.partitions ? DatasetHealth::kUnreadable
                                              : DatasetHealth::kDamaged;
}

}  // namespace

ScrubReport scrub_file(const h5::File& file, bool deep) {
  ScrubReport report;
  const std::vector<h5::DatasetDesc>& descs = file.datasets();
  report.datasets.reserve(descs.size());
  std::unordered_map<std::string, std::size_t> index;
  for (const h5::DatasetDesc& d : descs) {
    DatasetScrub s;
    s.name = d.name;
    if (d.layout == h5::Layout::kContiguous) {
      scrub_contiguous(file, d, s);
    } else {
      scrub_partitioned(file, d, deep, s);
    }
    index.emplace(s.name, report.datasets.size());
    report.datasets.push_back(std::move(s));
  }

  // Series pass: a step is only as healthy as its restart chain, and a
  // damaged step is salvageable exactly when its chain's keyframe is
  // intact (the degraded read's fallback target).
  for (std::size_t i = 0; i < descs.size(); ++i) {
    const h5::DatasetDesc& d = descs[i];
    DatasetScrub& s = report.datasets[i];
    if (!d.series_member) continue;

    const h5::DatasetDesc* cur = &d;
    const DatasetScrub* damaged_ancestor = nullptr;
    bool chain_intact = true;
    bool keyframe_clean = false;
    while (true) {
      if (cur->is_keyframe()) {
        const auto it = index.find(cur->name);
        keyframe_clean = it != index.end() &&
                         report.datasets[it->second].state == DatasetHealth::kClean;
        break;
      }
      const h5::DatasetDesc* ref = file.find_series(cur->series_base, cur->series_ref_step);
      if (ref == nullptr || ref->series_step >= cur->series_step) {
        chain_intact = false;
        if (s.detail.empty()) s.detail = "restart chain is missing a reference step";
        break;
      }
      if (ref != &d) {
        const auto it = index.find(ref->name);
        if (it != index.end() &&
            report.datasets[it->second].state != DatasetHealth::kClean &&
            damaged_ancestor == nullptr) {
          damaged_ancestor = &report.datasets[it->second];
        }
      }
      cur = ref;
    }

    if (!chain_intact) {
      s.state = DatasetHealth::kDamaged;
      s.salvageable = false;
      continue;
    }
    if (s.state == DatasetHealth::kClean && damaged_ancestor != nullptr) {
      s.state = DatasetHealth::kDamaged;
      s.detail = "restart chain passes through damaged step '" +
                 damaged_ancestor->name + "'";
    }
    if (s.state != DatasetHealth::kClean) {
      // A damaged keyframe cannot fall back to itself.
      s.salvageable = keyframe_clean && !d.is_keyframe();
    }
  }

  for (const DatasetScrub& s : report.datasets) {
    switch (s.state) {
      case DatasetHealth::kClean: ++report.clean; break;
      case DatasetHealth::kDamaged: ++report.damaged; break;
      case DatasetHealth::kUnreadable: ++report.unreadable; break;
    }
  }
  return report;
}

}  // namespace pcw::core
