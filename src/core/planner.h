// Offset planner (§III-D): turns predicted per-partition compressed sizes
// into a deterministic shared-file layout with reserved head-room.
//
// Every rank runs the planner on the *same* all-gathered predictions, so
// all ranks derive identical offsets with no further communication — the
// property that unlocks independent asynchronous writes.
#pragma once

#include <cstdint>
#include <vector>

namespace pcw::core {

struct PartitionPrediction {
  std::uint64_t predicted_bytes = 0;
  double predicted_ratio = 1.0;   // drives the Eq. (3) extra-space boost
};

struct PartitionSlot {
  std::uint64_t offset = 0;          // relative to the layout base
  std::uint64_t reserved_bytes = 0;  // predicted * effective r_space, aligned
};

struct LayoutPlan {
  std::uint64_t total_bytes = 0;
  // slots[field][rank]
  std::vector<std::vector<PartitionSlot>> slots;
};

/// Builds a field-major layout: all of field 0's partitions (rank order),
/// then field 1's, ... Slot sizes are predicted_bytes scaled by the
/// effective extra-space ratio (Eq. 3) and rounded up to `alignment`.
LayoutPlan plan_layout(const std::vector<std::vector<PartitionPrediction>>& predictions,
                       double rspace, std::uint64_t alignment = 64);

/// Assigns deterministic offsets for overflow tails appended after the
/// main layout: field-major, rank order, 64-byte aligned. Returns
/// offsets[field][rank] (relative to the overflow base) and the total via
/// `total_out`. Entries with zero bytes get offset 0.
std::vector<std::vector<std::uint64_t>> assign_overflow_offsets(
    const std::vector<std::vector<std::uint64_t>>& overflow_bytes,
    std::uint64_t* total_out, std::uint64_t alignment = 64);

}  // namespace pcw::core
