#include "core/timing_engine.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "model/extra_space.h"

namespace pcw::core {
namespace {

void validate(const std::vector<std::vector<PartitionProfile>>& profiles) {
  if (profiles.empty() || profiles[0].empty()) {
    throw std::invalid_argument("timing: empty profile matrix");
  }
  for (const auto& rank : profiles) {
    if (rank.size() != profiles[0].size()) {
      throw std::invalid_argument("timing: ragged profile matrix");
    }
  }
}

Breakdown simulate_no_compression(const iosim::Platform& platform,
                                  const std::vector<std::vector<PartitionProfile>>& profiles) {
  Breakdown b;
  std::vector<iosim::WriteJob> jobs;
  int chain = 0;
  for (const auto& rank : profiles) {
    for (const auto& part : rank) {
      iosim::WriteJob job;
      job.arrival = 0.0;
      job.bytes = part.raw_bytes;
      job.proc = chain;
      job.chain = chain;  // one async lane per process
      jobs.push_back(job);
      b.raw_bytes += part.raw_bytes;
    }
    ++chain;
  }
  const auto result = simulate_independent(platform, jobs);
  b.write_exposed = result.makespan;
  b.total = result.makespan + platform.sync_cost(static_cast<int>(profiles.size()));
  b.ideal_compressed_bytes = b.raw_bytes;
  b.storage_bytes = b.raw_bytes;
  return b;
}

Breakdown simulate_filter_collective(const iosim::Platform& platform,
                                     const std::vector<std::vector<PartitionProfile>>& profiles) {
  // H5Z-SZ path: every rank compresses all fields; the collective write of
  // the shared file starts only when all compressed sizes are known.
  Breakdown b;
  const int nprocs = static_cast<int>(profiles.size());
  const std::size_t nfields = profiles[0].size();
  double comp_end = 0.0;
  for (const auto& rank : profiles) {
    double rank_comp = 0.0;
    for (const auto& part : rank) {
      rank_comp += part.comp_seconds;
      b.raw_bytes += part.raw_bytes;
      b.ideal_compressed_bytes += part.actual_bytes;
    }
    comp_end = std::max(comp_end, rank_comp);
  }
  b.compress = comp_end;
  b.exchange = platform.allgather_cost(nprocs);

  double t = comp_end + b.exchange;
  for (std::size_t f = 0; f < nfields; ++f) {
    std::vector<double> bytes(profiles.size());
    for (std::size_t r = 0; r < profiles.size(); ++r) {
      bytes[r] = profiles[r][f].actual_bytes;
    }
    t = simulate_collective(platform, t, bytes);
  }
  b.write_exposed = t - comp_end - b.exchange;
  b.total = t;
  b.storage_bytes = b.ideal_compressed_bytes;
  return b;
}

Breakdown simulate_overlap(const iosim::Platform& platform,
                           const std::vector<std::vector<PartitionProfile>>& profiles,
                           const TimingConfig& config, bool reorder) {
  Breakdown b;
  const int nprocs = static_cast<int>(profiles.size());
  const std::size_t nfields = profiles[0].size();

  // Phase 1+2: prediction on each rank, then one all-gather. Ranks enter
  // the all-gather when their prediction ends; it completes for everyone
  // at max(predict) + allgather cost.
  double predict_max = 0.0;
  for (const auto& rank : profiles) {
    double rank_comp = 0.0;
    for (const auto& part : rank) rank_comp += part.comp_seconds;
    predict_max = std::max(predict_max, rank_comp * config.predict_fraction);
  }
  b.predict = predict_max;
  b.exchange = platform.allgather_cost(nprocs);
  const double start = predict_max + b.exchange;

  // Phase 3-5: per-rank order + pipeline; writes are independent flows
  // chained per rank (one async queue each).
  std::vector<iosim::WriteJob> jobs;
  std::vector<double> overflow_tail_bytes;  // parallel arrays for phase 6
  std::vector<double> job_field_overflow;
  double comp_end_global = 0.0;
  double overflow_total = 0.0;

  // Write-time prediction for Algorithm 1. The paper's Eq. (2) divides by
  // a stable C_thr measured offline on the target system; on systems with
  // a pronounced per-request setup cost (the Fig.-7 curve's half-size)
  // the offline measurement at the compressed-size operating point is the
  // size-dependent curve itself, so when
  // calibrate_write_model_to_platform is set we evaluate the curve per
  // partition — this is exactly the "empirical evaluation" §III-C calls
  // for, and it keeps the optimizer's cost aligned with the system.
  auto predict_write_seconds = [&](double predicted_bytes) {
    if (config.calibrate_write_model_to_platform) {
      const double thr = platform.per_proc_throughput(predicted_bytes);
      return thr > 0.0 ? predicted_bytes / thr : 0.0;
    }
    return config.write_model.predict_time(predicted_bytes);
  };

  for (std::size_t r = 0; r < profiles.size(); ++r) {
    const auto& rank = profiles[r];
    std::vector<ScheduledTask> tasks(nfields);
    for (std::size_t f = 0; f < nfields; ++f) {
      const double bit_rate =
          8.0 * rank[f].predicted_bytes / std::max(1.0, rank[f].elem_count);
      tasks[f].comp_seconds =
          config.comp_model.predict_time(rank[f].raw_bytes, bit_rate);
      tasks[f].write_seconds = predict_write_seconds(rank[f].predicted_bytes);
    }
    const std::vector<int> order =
        reorder ? optimize_order(tasks) : identity_order(nfields);

    double t = start;
    for (const int fi : order) {
      const auto f = static_cast<std::size_t>(fi);
      t += rank[f].comp_seconds;  // actual measured compression time
      const double reserved = model::reserved_bytes(
          rank[f].predicted_bytes, rank[f].predicted_ratio, config.rspace);
      const double in_slot = std::min(rank[f].actual_bytes, reserved);
      const double tail = rank[f].actual_bytes - in_slot;
      iosim::WriteJob job;
      job.arrival = t;
      job.bytes = in_slot;
      job.proc = static_cast<int>(r);
      job.chain = static_cast<int>(r);
      job.tag = fi;
      jobs.push_back(job);
      if (tail > 0.0) {
        overflow_total += tail;
        ++b.overflow_partitions;
      }
      overflow_tail_bytes.push_back(tail);
      b.raw_bytes += rank[f].raw_bytes;
      b.ideal_compressed_bytes += rank[f].actual_bytes;
      b.storage_bytes += std::max(reserved, in_slot);
    }
    comp_end_global = std::max(comp_end_global, t);
  }
  b.compress = comp_end_global - start;

  const auto wave = simulate_independent(platform, jobs);
  const double wave_end = std::max(wave.makespan, comp_end_global);
  b.write_exposed = wave_end - comp_end_global;

  // Phase 6: overflow handling — all-gather of overflow sizes, then the
  // overflowing ranks append their tails independently. A rank's tails
  // land in adjacent slots of the append region, so it issues them as a
  // single contiguous write.
  double t_end = wave_end;
  if (overflow_total > 0.0) {
    const double overflow_start = wave_end + platform.allgather_cost(nprocs);
    std::vector<double> rank_tail(profiles.size(), 0.0);
    for (std::size_t j = 0; j < overflow_tail_bytes.size(); ++j) {
      rank_tail[static_cast<std::size_t>(jobs[j].proc)] += overflow_tail_bytes[j];
    }
    std::vector<iosim::WriteJob> tail_jobs;
    for (std::size_t r = 0; r < rank_tail.size(); ++r) {
      if (rank_tail[r] <= 0.0) continue;
      iosim::WriteJob job;
      job.arrival = overflow_start;
      job.bytes = rank_tail[r];
      job.proc = static_cast<int>(r);
      job.chain = static_cast<int>(r);
      tail_jobs.push_back(job);
    }
    const auto tails = simulate_independent(platform, tail_jobs);
    t_end = std::max(overflow_start, tails.makespan);
    b.overflow = t_end - wave_end;
    b.storage_bytes += overflow_total;
  } else {
    // The size all-gather still happens (it also carries actual sizes for
    // the metadata), but costs only the collective latency.
    b.overflow = platform.allgather_cost(nprocs);
    t_end += b.overflow;
  }
  b.total = t_end;
  return b;
}

}  // namespace

Breakdown simulate_write(const iosim::Platform& platform,
                         const std::vector<std::vector<PartitionProfile>>& profiles,
                         const TimingConfig& config) {
  validate(profiles);
  switch (config.mode) {
    case WriteMode::kNoCompression:
      return simulate_no_compression(platform, profiles);
    case WriteMode::kFilterCollective:
      return simulate_filter_collective(platform, profiles);
    case WriteMode::kOverlap:
      return simulate_overlap(platform, profiles, config, /*reorder=*/false);
    case WriteMode::kOverlapReorder:
      return simulate_overlap(platform, profiles, config, /*reorder=*/true);
  }
  throw std::invalid_argument("timing: unknown mode");
}

std::vector<std::vector<PartitionProfile>> bootstrap_profiles(
    const std::vector<std::vector<PartitionProfile>>& samples, int nranks,
    util::Rng& rng, double jitter) {
  if (samples.empty()) throw std::invalid_argument("timing: no sample fields");
  const std::size_t nfields = samples.size();
  std::vector<std::vector<PartitionProfile>> out(
      static_cast<std::size_t>(nranks), std::vector<PartitionProfile>(nfields));
  for (int r = 0; r < nranks; ++r) {
    for (std::size_t f = 0; f < nfields; ++f) {
      const auto& pool = samples[f];
      if (pool.empty()) throw std::invalid_argument("timing: empty sample pool");
      const auto pick = pool[rng.uniform_index(pool.size())];
      PartitionProfile p = pick;
      // Multiplicative jitter, correlated between size and time (a
      // harder-to-compress partition is both bigger and slower).
      const double g = std::exp(rng.normal(0.0, jitter));
      p.comp_seconds *= g;
      p.actual_bytes *= g;
      p.predicted_bytes *= g * std::exp(rng.normal(0.0, jitter * 0.4));
      out[static_cast<std::size_t>(r)][f] = p;
    }
  }
  return out;
}

void scale_profiles(std::vector<std::vector<PartitionProfile>>& profiles,
                    double factor) {
  if (factor <= 0.0) throw std::invalid_argument("timing: scale factor must be > 0");
  for (auto& rank : profiles) {
    for (auto& p : rank) {
      p.raw_bytes *= factor;
      p.elem_count *= factor;
      p.comp_seconds *= factor;
      p.actual_bytes *= factor;
      p.predicted_bytes *= factor;
    }
  }
}

}  // namespace pcw::core
