#include "core/read_engine.h"

#include <stdexcept>

#include "util/timer.h"
#include "util/trace.h"

namespace pcw::core {

template <typename T>
std::vector<std::vector<T>> read_fields(mpi::Comm& comm, h5::File& file,
                                        std::span<const ReadSpec> specs,
                                        const ReadEngineConfig& config,
                                        ReadReport* report_out) {
  if (specs.empty()) throw std::invalid_argument("read: no fields");
  ReadReport report;
  util::Timer total;

  std::vector<FieldReadPlan> plans;
  {
    util::trace::StageTimer stage("plan", "read", "fields", specs.size());
    plans = plan_read(file, specs);
    for (const FieldReadPlan& plan : plans) {
      if (plan.desc->dtype != h5::dtype_of<T>()) {
        throw std::runtime_error("read: dtype mismatch for " + plan.desc->name);
      }
    }
    report.plan_seconds = stage.seconds();
  }

  const std::size_t nfields = plans.size();
  std::vector<std::vector<h5::PayloadTicket>> inflight(nfields);
  std::vector<bool> issued(nfields, false);
  auto issue = [&](std::size_t f) {
    if (issued[f]) return;
    issued[f] = true;
    inflight[f] = h5::async_read_selection(file, *plans[f].desc, plans[f].selection);
  };

  h5::RegionReadStats stats;
  std::vector<std::vector<T>> results(nfields);
  for (std::size_t f = 0; f < nfields; ++f) {
    // The reverse-Fig.-3 overlap: the next field's payloads are already
    // streaming off disk while this field entropy-decodes. pipeline=false
    // touches the async queue not at all — every payload is fetched on
    // this thread right before its decode, a genuinely serial baseline.
    if (config.pipeline) {
      issue(f);
      if (f + 1 < nfields) issue(f + 1);
    }

    const FieldReadPlan& plan = plans[f];
    results[f].resize(plan.selection.elements);
    report.elements_out += plan.selection.elements;
    report.partitions_total += plan.selection.partitions_total;
    report.partitions_read += plan.selection.parts.size();
    for (std::size_t p = 0; p < plan.selection.parts.size(); ++p) {
      std::vector<std::uint8_t> payload;
      {
        util::trace::StageTimer stage("payload_wait", "read", "part", p);
        payload =
            config.pipeline
                ? inflight[f][p].join()
                : h5::read_selection_payload(file, *plan.desc, plan.selection.parts[p]);
        report.read_seconds += stage.seconds();
      }
      util::trace::StageTimer stage("decode", "read", "part", p);
      h5::scatter_selection_part<T>(*plan.desc, plan.selection,
                                    plan.selection.parts[p], payload,
                                    config.decompress_threads, results[f], &stats,
                                    config.verify);
      report.decompress_seconds += stage.seconds();
    }
    inflight[f].clear();
  }

  report.bytes_read = stats.payload_bytes;
  report.blocks_total = stats.blocks_total;
  report.blocks_decoded = stats.blocks_decoded;
  comm.barrier();
  report.total_seconds = total.seconds();
  if (report_out != nullptr) *report_out = report;
  return results;
}

template std::vector<std::vector<float>> read_fields<float>(mpi::Comm&, h5::File&,
                                                            std::span<const ReadSpec>,
                                                            const ReadEngineConfig&,
                                                            ReadReport*);
template std::vector<std::vector<double>> read_fields<double>(mpi::Comm&, h5::File&,
                                                              std::span<const ReadSpec>,
                                                              const ReadEngineConfig&,
                                                              ReadReport*);

}  // namespace pcw::core
