// Simulated MPI runtime: SPMD ranks as threads over shared memory.
//
// The paper's algorithms need exactly four communication primitives —
// barrier, allgather (predicted sizes), allgatherv (overflow sizes,
// metadata), and allreduce (timing reductions) — plus point-to-point for
// completeness. This module provides them with MPI semantics (collective
// calls must be entered by every rank of the communicator, in the same
// order) so that pcw::core code reads like its MPI counterpart would.
//
// Error handling: if any rank throws, the runtime aborts the group —
// ranks blocked in collectives wake with AbortedError — and
// Runtime::run() rethrows the first rank's exception, so tests see
// failures instead of deadlocks.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <vector>

namespace pcw::mpi {

/// Thrown in ranks that were blocked in a collective when another rank
/// failed.
class AbortedError : public std::runtime_error {
 public:
  AbortedError() : std::runtime_error("mpi: group aborted") {}
};

namespace detail {
struct Group;
}

class Comm {
 public:
  Comm(std::shared_ptr<detail::Group> group, int rank);

  int rank() const { return rank_; }
  int size() const;

  void barrier();

  /// Gathers one trivially-copyable value from each rank; result is
  /// indexed by rank and identical on all ranks.
  template <typename T>
  std::vector<T> allgather(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* p = reinterpret_cast<const std::uint8_t*>(&value);
    auto raw = allgather_bytes({p, sizeof(T)});
    std::vector<T> out(raw.size());
    for (std::size_t r = 0; r < raw.size(); ++r) {
      if (raw[r].size() != sizeof(T)) throw std::runtime_error("mpi: allgather size");
      std::memcpy(&out[r], raw[r].data(), sizeof(T));
    }
    return out;
  }

  /// Variable-length gather of trivially-copyable element spans. Empty
  /// contributions are valid (a rank may have nothing to report).
  template <typename T>
  std::vector<std::vector<T>> allgatherv(std::span<const T> values) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* p = reinterpret_cast<const std::uint8_t*>(values.data());
    auto raw = allgather_bytes({p, values.size_bytes()});
    std::vector<std::vector<T>> out(raw.size());
    for (std::size_t r = 0; r < raw.size(); ++r) {
      out[r].resize(raw[r].size() / sizeof(T));
      // memcpy with a null source is UB even at size 0 (an empty span's
      // data() is null); skip the call instead.
      if (!raw[r].empty()) {
        std::memcpy(out[r].data(), raw[r].data(), raw[r].size());
      }
    }
    return out;
  }

  template <typename T>
  T allreduce_max(T value) {
    auto all = allgather(value);
    T best = all[0];
    for (const T& v : all) best = std::max(best, v);
    return best;
  }

  template <typename T>
  T allreduce_min(T value) {
    auto all = allgather(value);
    T best = all[0];
    for (const T& v : all) best = std::min(best, v);
    return best;
  }

  template <typename T>
  T allreduce_sum(T value) {
    auto all = allgather(value);
    T sum{};
    for (const T& v : all) sum += v;
    return sum;
  }

  /// One-to-all broadcast of a trivially-copyable value.
  template <typename T>
  T bcast(const T& value, int root) {
    // Implemented over allgather for simplicity; collective semantics are
    // identical and the message sizes here are tiny.
    return allgather(value).at(static_cast<std::size_t>(root));
  }

  /// Blocking point-to-point with a small tag space.
  void send(int dest, int tag, std::span<const std::uint8_t> bytes);
  std::vector<std::uint8_t> recv(int source, int tag);

  /// Byte-level allgatherv primitive the typed wrappers build on.
  std::vector<std::vector<std::uint8_t>> allgather_bytes(
      std::span<const std::uint8_t> bytes);

 private:
  std::shared_ptr<detail::Group> group_;
  int rank_;
};

class Runtime {
 public:
  /// Runs `fn` on `nranks` SPMD ranks (threads) and joins them. Rethrows
  /// the first rank exception, if any. Rank count must be in [1, 4096].
  static void run(int nranks, const std::function<void(Comm&)>& fn);
};

}  // namespace pcw::mpi
