#include "mpi/comm.h"

#include <map>
#include <thread>

namespace pcw::mpi {

namespace detail {

struct Group {
  explicit Group(int n) : nranks(n), slots(static_cast<std::size_t>(n)) {}

  const int nranks;

  std::mutex mu;
  std::condition_variable cv;
  bool aborted = false;

  // Sense-reversing central barrier.
  int arrived = 0;
  std::uint64_t generation = 0;

  // Collective exchange slots, one per rank. Protocol: write own slot,
  // barrier, read all, barrier (the second barrier licenses slot reuse).
  std::vector<std::vector<std::uint8_t>> slots;

  // Point-to-point mailboxes keyed by (dest, source, tag).
  struct MailboxKey {
    int dest, source, tag;
    auto operator<=>(const MailboxKey&) const = default;
  };
  std::map<MailboxKey, std::deque<std::vector<std::uint8_t>>> mailboxes;

  void check_abort_locked() const {
    if (aborted) throw AbortedError();
  }

  void abort() {
    std::lock_guard lock(mu);
    aborted = true;
    cv.notify_all();
  }

  void barrier() {
    std::unique_lock lock(mu);
    check_abort_locked();
    const std::uint64_t my_gen = generation;
    if (++arrived == nranks) {
      arrived = 0;
      ++generation;
      cv.notify_all();
    } else {
      cv.wait(lock, [&] { return generation != my_gen || aborted; });
    }
    check_abort_locked();
  }
};

}  // namespace detail

Comm::Comm(std::shared_ptr<detail::Group> group, int rank)
    : group_(std::move(group)), rank_(rank) {}

int Comm::size() const { return group_->nranks; }

void Comm::barrier() { group_->barrier(); }

std::vector<std::vector<std::uint8_t>> Comm::allgather_bytes(
    std::span<const std::uint8_t> bytes) {
  {
    std::lock_guard lock(group_->mu);
    group_->check_abort_locked();
    group_->slots[static_cast<std::size_t>(rank_)].assign(bytes.begin(), bytes.end());
  }
  group_->barrier();
  std::vector<std::vector<std::uint8_t>> out;
  {
    std::lock_guard lock(group_->mu);
    group_->check_abort_locked();
    out = group_->slots;  // copy: slots stay valid for the other readers
  }
  group_->barrier();
  return out;
}

void Comm::send(int dest, int tag, std::span<const std::uint8_t> bytes) {
  if (dest < 0 || dest >= group_->nranks) {
    throw std::invalid_argument("mpi: send dest out of range");
  }
  std::lock_guard lock(group_->mu);
  group_->check_abort_locked();
  group_->mailboxes[{dest, rank_, tag}].emplace_back(bytes.begin(), bytes.end());
  group_->cv.notify_all();
}

std::vector<std::uint8_t> Comm::recv(int source, int tag) {
  if (source < 0 || source >= group_->nranks) {
    throw std::invalid_argument("mpi: recv source out of range");
  }
  std::unique_lock lock(group_->mu);
  const detail::Group::MailboxKey key{rank_, source, tag};
  group_->cv.wait(lock, [&] {
    const auto it = group_->mailboxes.find(key);
    return group_->aborted || (it != group_->mailboxes.end() && !it->second.empty());
  });
  group_->check_abort_locked();
  auto& queue = group_->mailboxes[key];
  std::vector<std::uint8_t> msg = std::move(queue.front());
  queue.pop_front();
  return msg;
}

void Runtime::run(int nranks, const std::function<void(Comm&)>& fn) {
  if (nranks < 1 || nranks > 4096) {
    throw std::invalid_argument("mpi: nranks must be in [1, 4096]");
  }
  auto group = std::make_shared<detail::Group>(nranks);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  std::mutex err_mu;
  std::exception_ptr first_error;

  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      Comm comm(group, r);
      try {
        fn(comm);
      } catch (...) {
        {
          std::lock_guard lock(err_mu);
          if (!first_error) first_error = std::current_exception();
        }
        group->abort();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace pcw::mpi
