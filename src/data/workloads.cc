#include "data/workloads.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "data/noise.h"

namespace pcw::data {
namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

/// Per-particle deterministic uniform in [0, 1).
double hash_uniform(std::uint64_t seed, std::uint64_t i, std::uint64_t lane) {
  const std::uint64_t h = mix(seed ^ mix(i * 0x9e3779b97f4a7c15ull + lane));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Per-particle deterministic standard normal (Box-Muller).
double hash_normal(std::uint64_t seed, std::uint64_t i, std::uint64_t lane) {
  double u1 = hash_uniform(seed, i, lane * 2);
  const double u2 = hash_uniform(seed, i, lane * 2 + 1);
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
}

struct NyxRecipe {
  double feature_scale;   // noise periods across the domain
  int octaves;
  double persistence;
  double log_amplitude;   // for lognormal fields; 0 = linear field
  double linear_amplitude;
  double offset;
  std::uint64_t salt;
};

NyxRecipe nyx_recipe(NyxField field) {
  switch (field) {
    case NyxField::kBaryonDensity:
      return {6.0, 5, 0.55, 1.2, 0.0, 0.0, 0x1001};
    case NyxField::kDarkMatterDensity:
      return {8.0, 6, 0.6, 1.6, 0.0, 0.0, 0x1002};
    case NyxField::kTemperature:
      return {5.0, 4, 0.5, 1.0, 0.0, 0.0, 0x1003};  // scaled below
    case NyxField::kVelocityX:
      return {3.0, 3, 0.5, 0.0, 2.5e6, 0.0, 0x1004};
    case NyxField::kVelocityY:
      return {3.0, 3, 0.5, 0.0, 2.5e6, 0.0, 0x1005};
    case NyxField::kVelocityZ:
      return {3.0, 3, 0.5, 0.0, 2.5e6, 0.0, 0x1006};
    case NyxField::kParticleVx:
      return {4.0, 4, 0.55, 0.0, 2.5e6, 0.0, 0x1007};
    case NyxField::kParticleVy:
      return {4.0, 4, 0.55, 0.0, 2.5e6, 0.0, 0x1008};
    case NyxField::kParticleVz:
      return {4.0, 4, 0.55, 0.0, 2.5e6, 0.0, 0x1009};
  }
  throw std::invalid_argument("data: unknown nyx field");
}

}  // namespace

FieldInfo nyx_field_info(NyxField field) {
  // Bounds from the paper's §IV-A (after [13], [31]): PSNR ~78.6 dB and a
  // ~16x overall ratio on the 6 primary fields.
  switch (field) {
    case NyxField::kBaryonDensity: return {"baryon_density", 0.2};
    case NyxField::kDarkMatterDensity: return {"dark_matter_density", 0.4};
    case NyxField::kTemperature: return {"temperature", 1e3};
    case NyxField::kVelocityX: return {"velocity_x", 2e5};
    case NyxField::kVelocityY: return {"velocity_y", 2e5};
    case NyxField::kVelocityZ: return {"velocity_z", 2e5};
    case NyxField::kParticleVx: return {"particle_vx", 2e5};
    case NyxField::kParticleVy: return {"particle_vy", 2e5};
    case NyxField::kParticleVz: return {"particle_vz", 2e5};
  }
  throw std::invalid_argument("data: unknown nyx field");
}

void fill_nyx_field(std::span<float> out, const sz::Dims& local,
                    const std::array<std::size_t, 3>& origin, const sz::Dims& global,
                    NyxField field, std::uint64_t seed, double time) {
  if (out.size() != local.count()) {
    throw std::invalid_argument("data: output size != local dims");
  }
  const NyxRecipe recipe = nyx_recipe(field);
  const ValueNoise3D noise(seed ^ recipe.salt);
  // Structures grow mildly and drift with cosmic time; "time" is the
  // snapshot index, arbitrary units.
  const double contrast = 1.0 + 0.06 * time;
  const double drift = 0.11 * time;

  const double inv0 = recipe.feature_scale / static_cast<double>(global.d0);
  const double inv1 = recipe.feature_scale / static_cast<double>(global.d1);
  const double inv2 = recipe.feature_scale / static_cast<double>(global.d2);

  std::size_t i = 0;
  for (std::size_t x = 0; x < local.d0; ++x) {
    const double px = (static_cast<double>(origin[0] + x)) * inv0 + drift;
    for (std::size_t y = 0; y < local.d1; ++y) {
      const double py = (static_cast<double>(origin[1] + y)) * inv1 + drift * 0.7;
      for (std::size_t z = 0; z < local.d2; ++z, ++i) {
        const double pz = (static_cast<double>(origin[2] + z)) * inv2;
        const double g =
            noise.fbm(px, py, pz, recipe.octaves, 2.0, recipe.persistence) * contrast;
        double v;
        if (recipe.log_amplitude > 0.0) {
          v = std::exp(recipe.log_amplitude * 2.0 * g);  // lognormal-like
          if (field == NyxField::kTemperature) v *= 3.0e4;  // Kelvin scale
        } else {
          // Velocity-like: smooth large-scale flow plus fractal detail.
          v = recipe.linear_amplitude * g + recipe.offset;
        }
        out[i] = static_cast<float>(v);
      }
    }
  }
}

std::vector<float> make_nyx_field(const sz::Dims& global, NyxField field,
                                  std::uint64_t seed, double time) {
  std::vector<float> out(global.count());
  fill_nyx_field(out, global, {0, 0, 0}, global, field, seed, time);
  return out;
}

FieldInfo vpic_field_info(VpicField field) {
  // Bounds chosen so the developer-suggested config lands near the
  // paper's 13.8x overall VPIC ratio (validated in tests).
  switch (field) {
    case VpicField::kX: return {"x", 2e-4};
    case VpicField::kY: return {"y", 2e-4};
    case VpicField::kZ: return {"z", 2e-4};
    case VpicField::kUx: return {"ux", 4e-3};
    case VpicField::kUy: return {"uy", 4e-3};
    case VpicField::kUz: return {"uz", 4e-3};
    case VpicField::kKineticEnergy: return {"ke", 4e-3};
    case VpicField::kWeight: return {"weight", 1e-3};
  }
  throw std::invalid_argument("data: unknown vpic field");
}

void fill_vpic_field(std::span<float> out, std::uint64_t offset, std::uint64_t total,
                     VpicField field, std::uint64_t seed) {
  // Particles are binned into cells of `kPpc` (cell-sorted dump order, as
  // VPIC writes them): positions are cell origin + intra-cell jitter, so
  // position arrays are piecewise-slowly-varying; momenta are drifting
  // Maxwellians whose drift varies smoothly along the dump order
  // (reconnection outflow pattern).
  constexpr std::uint64_t kPpc = 64;
  const std::uint64_t ncells = (total + kPpc - 1) / kPpc;
  // Near-cubic cell grid.
  const auto nx = static_cast<std::uint64_t>(std::cbrt(static_cast<double>(ncells))) + 1;
  const std::uint64_t ny = nx, nz = (ncells + nx * ny - 1) / (nx * ny);
  const double inv_nx = 1.0 / static_cast<double>(nx);
  const double inv_ny = 1.0 / static_cast<double>(ny);
  const double inv_nz = 1.0 / static_cast<double>(std::max<std::uint64_t>(nz, 1));

  for (std::size_t k = 0; k < out.size(); ++k) {
    const std::uint64_t i = offset + k;
    const std::uint64_t cell = i / kPpc;
    const std::uint64_t cx = cell % nx;
    const std::uint64_t cy = (cell / nx) % ny;
    const std::uint64_t cz = cell / (nx * ny);
    const double fx = (static_cast<double>(cx) + hash_uniform(seed, i, 0)) * inv_nx;
    const double fy = (static_cast<double>(cy) + hash_uniform(seed, i, 1)) * inv_ny;
    const double fz = (static_cast<double>(cz) + hash_uniform(seed, i, 2)) * inv_nz;

    const double drift = 0.12 * std::sin(kTwoPi * fx) * std::cos(kTwoPi * 0.5 * fy);
    const double sigma = 0.05 * (1.0 + 0.5 * fz);

    double v = 0.0;
    switch (field) {
      case VpicField::kX: v = fx; break;
      case VpicField::kY: v = fy; break;
      case VpicField::kZ: v = fz; break;
      case VpicField::kUx: v = drift + sigma * hash_normal(seed, i, 3); break;
      case VpicField::kUy: v = sigma * hash_normal(seed, i, 4); break;
      case VpicField::kUz: v = 0.3 * drift + sigma * hash_normal(seed, i, 5); break;
      case VpicField::kKineticEnergy: {
        const double ux = drift + sigma * hash_normal(seed, i, 3);
        const double uy = sigma * hash_normal(seed, i, 4);
        const double uz = 0.3 * drift + sigma * hash_normal(seed, i, 5);
        v = 0.5 * (ux * ux + uy * uy + uz * uz);
        break;
      }
      case VpicField::kWeight:
        v = 1.0 + 0.01 * std::sin(kTwoPi * 3.0 * fz);
        break;
    }
    out[k] = static_cast<float>(v);
  }
}

std::vector<float> make_vpic_field(std::uint64_t total, VpicField field,
                                   std::uint64_t seed) {
  std::vector<float> out(total);
  fill_vpic_field(out, 0, total, field, seed);
  return out;
}

std::vector<float> make_rtm_field(const sz::Dims& global, std::uint64_t seed,
                                  double time) {
  // A handful of point sources emitting Ricker wavelets, superposed on a
  // weak smooth background — the qualitative texture of an RTM snapshot.
  std::vector<float> out(global.count());
  constexpr int kSources = 5;
  double sx[kSources], sy[kSources], sz_[kSources];
  for (int s = 0; s < kSources; ++s) {
    sx[s] = hash_uniform(seed, static_cast<std::uint64_t>(s), 10);
    sy[s] = hash_uniform(seed, static_cast<std::uint64_t>(s), 11);
    sz_[s] = hash_uniform(seed, static_cast<std::uint64_t>(s), 12);
  }
  const ValueNoise3D background(seed ^ 0xbeef);
  const double wavelength = 0.05;

  std::size_t i = 0;
  for (std::size_t x = 0; x < global.d0; ++x) {
    const double px = static_cast<double>(x) / static_cast<double>(global.d0);
    for (std::size_t y = 0; y < global.d1; ++y) {
      const double py = static_cast<double>(y) / static_cast<double>(global.d1);
      for (std::size_t z = 0; z < global.d2; ++z, ++i) {
        const double pz = static_cast<double>(z) / static_cast<double>(global.d2);
        double w = 0.02 * background.fbm(px * 4, py * 4, pz * 4, 3);
        for (int s = 0; s < kSources; ++s) {
          const double dx = px - sx[s], dy = py - sy[s], dz = pz - sz_[s];
          const double r = std::sqrt(dx * dx + dy * dy + dz * dz);
          const double u = (r - time * 0.6) / wavelength;
          const double pi_u = 3.141592653589793 * u;
          const double ricker = (1.0 - 2.0 * pi_u * pi_u) * std::exp(-pi_u * pi_u);
          w += ricker / (1.0 + 8.0 * r);
        }
        out[i] = static_cast<float>(w);
      }
    }
  }
  return out;
}

std::array<std::size_t, 3> BlockDecomposition::origin_of(int rank) const {
  const auto r = static_cast<std::size_t>(rank);
  const std::size_t bx = r / (grid[1] * grid[2]);
  const std::size_t by = (r / grid[2]) % grid[1];
  const std::size_t bz = r % grid[2];
  return {bx * local.d0, by * local.d1, bz * local.d2};
}

BlockDecomposition decompose(const sz::Dims& global, int nranks) {
  if (nranks < 1) throw std::invalid_argument("data: nranks must be >= 1");
  const auto n = static_cast<std::size_t>(nranks);
  // Search factor triples gx*gy*gz == nranks that divide the extents
  // evenly; prefer the most cubic local block.
  BlockDecomposition best;
  bool found = false;
  double best_score = 0.0;
  for (std::size_t gx = 1; gx <= n; ++gx) {
    if (n % gx != 0 || global.d0 % gx != 0) continue;
    const std::size_t rest = n / gx;
    for (std::size_t gy = 1; gy <= rest; ++gy) {
      if (rest % gy != 0 || global.d1 % gy != 0) continue;
      const std::size_t gz = rest / gy;
      if (global.d2 % gz != 0) continue;
      const sz::Dims local{global.d0 / gx, global.d1 / gy, global.d2 / gz};
      const double lo = static_cast<double>(std::min({local.d0, local.d1, local.d2}));
      const double hi = static_cast<double>(std::max({local.d0, local.d1, local.d2}));
      const double score = lo / hi;  // 1.0 = cube
      if (!found || score > best_score) {
        best.local = local;
        best.grid = {gx, gy, gz};
        best_score = score;
        found = true;
      }
    }
  }
  if (!found) {
    throw std::invalid_argument("data: no even decomposition for this rank count");
  }
  return best;
}

}  // namespace pcw::data
