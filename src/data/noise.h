// Deterministic lattice value-noise with fractal (fBm) stacking.
//
// The workload generators need smooth, spatially-correlated 3-D fields
// whose compressibility varies across space — the property behind the
// paper's Fig.-1 bit-rate spread. FFT-based Gaussian random fields would
// be the textbook choice; multi-octave value noise gives the same
// qualitative spectrum with O(1) per-point cost and exact global
// consistency across partitions (any rank can evaluate any coordinate).
#pragma once

#include <cstdint>

namespace pcw::data {

class ValueNoise3D {
 public:
  explicit ValueNoise3D(std::uint64_t seed) : seed_(seed) {}

  /// Smooth noise in [-1, 1], C0-continuous (trilinear between lattice
  /// points, smoothstep-eased).
  double at(double x, double y, double z) const;

  /// Fractal Brownian motion: `octaves` layers, each `lacunarity` times
  /// finer and `persistence` times weaker. Normalized to ~[-1, 1].
  double fbm(double x, double y, double z, int octaves, double lacunarity = 2.0,
             double persistence = 0.55) const;

 private:
  double lattice(std::int64_t ix, std::int64_t iy, std::int64_t iz) const;
  std::uint64_t seed_;
};

}  // namespace pcw::data
