// Synthetic stand-ins for the paper's evaluation datasets (Table I).
//
//   Nyx  — cosmology grids: 6 primary fields (baryon density, dark-matter
//          density, temperature, velocity x/y/z) plus the 3 particle-
//          velocity fields of the 4096^3 run. Fields are smooth fractal
//          fields with Nyx-like magnitudes so the paper's absolute error
//          bounds (0.2, 0.4, 1e3, 2e5, 2e5, 2e5) land near the paper's
//          ~16x ratio.
//   VPIC — particle arrays: stratified positions (locally ordered, like
//          cell-binned particle dumps) and drifting-Maxwellian momenta.
//   RTM  — Ricker-wavelet wavefield (used by Fig. 5's throughput sweep).
//
// All generators are globally consistent: a rank can generate exactly its
// partition given (origin, local dims, global dims, seed), and every rank
// observes the same global field. `time` evolves the fields smoothly so
// multi-time-step studies (Fig. 15) see realistic drift.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sz/compressor.h"
#include "sz/dims.h"

namespace pcw::data {

// ---------------------------------------------------------------------------
// Nyx-like cosmology grids
// ---------------------------------------------------------------------------

enum class NyxField {
  kBaryonDensity = 0,
  kDarkMatterDensity,
  kTemperature,
  kVelocityX,
  kVelocityY,
  kVelocityZ,
  kParticleVx,
  kParticleVy,
  kParticleVz,
};

inline constexpr int kNyxPrimaryFields = 6;
inline constexpr int kNyxAllFields = 9;

struct FieldInfo {
  const char* name;
  /// Paper-recommended absolute error bound ([13], [31]; §IV-A).
  double abs_error_bound;
};

FieldInfo nyx_field_info(NyxField field);

/// Fills `out` (local.count() elements) with the partition of `field`
/// whose lowest corner sits at `origin` inside `global`.
void fill_nyx_field(std::span<float> out, const sz::Dims& local,
                    const std::array<std::size_t, 3>& origin, const sz::Dims& global,
                    NyxField field, std::uint64_t seed, double time = 0.0);

/// Whole-field convenience wrapper.
std::vector<float> make_nyx_field(const sz::Dims& global, NyxField field,
                                  std::uint64_t seed, double time = 0.0);

// ---------------------------------------------------------------------------
// VPIC-like particle dumps
// ---------------------------------------------------------------------------

enum class VpicField {
  kX = 0,
  kY,
  kZ,
  kUx,
  kUy,
  kUz,
  kKineticEnergy,
  kWeight,
};

inline constexpr int kVpicAllFields = 8;

FieldInfo vpic_field_info(VpicField field);

/// Fills `out` with particles [offset, offset + out.size()) of a global
/// population of `total` particles.
void fill_vpic_field(std::span<float> out, std::uint64_t offset, std::uint64_t total,
                     VpicField field, std::uint64_t seed);

std::vector<float> make_vpic_field(std::uint64_t total, VpicField field,
                                   std::uint64_t seed);

// ---------------------------------------------------------------------------
// RTM-like wavefield
// ---------------------------------------------------------------------------

std::vector<float> make_rtm_field(const sz::Dims& global, std::uint64_t seed,
                                  double time = 0.4);

// ---------------------------------------------------------------------------
// Domain decomposition helpers
// ---------------------------------------------------------------------------

/// Splits `global` into `nranks` near-cubic blocks (nranks must be a
/// power of 8, 2, or any product of factors of global extents; falls back
/// to slab decomposition along d0 when no 3-D split divides evenly).
struct BlockDecomposition {
  sz::Dims local;                            // extents of every block
  std::array<std::size_t, 3> grid;           // blocks per dimension
  std::array<std::size_t, 3> origin_of(int rank) const;
};

BlockDecomposition decompose(const sz::Dims& global, int nranks);

}  // namespace pcw::data
