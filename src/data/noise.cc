#include "data/noise.h"

#include <cmath>

namespace pcw::data {
namespace {

double smoothstep(double t) { return t * t * (3.0 - 2.0 * t); }

std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

}  // namespace

double ValueNoise3D::lattice(std::int64_t ix, std::int64_t iy, std::int64_t iz) const {
  std::uint64_t h = seed_;
  h = mix(h ^ static_cast<std::uint64_t>(ix) * 0x9e3779b97f4a7c15ull);
  h = mix(h ^ static_cast<std::uint64_t>(iy) * 0xc2b2ae3d27d4eb4full);
  h = mix(h ^ static_cast<std::uint64_t>(iz) * 0x165667b19e3779f9ull);
  // Map to [-1, 1].
  return static_cast<double>(h >> 11) * 0x1.0p-52 - 1.0;
}

double ValueNoise3D::at(double x, double y, double z) const {
  const double fx = std::floor(x), fy = std::floor(y), fz = std::floor(z);
  const auto ix = static_cast<std::int64_t>(fx);
  const auto iy = static_cast<std::int64_t>(fy);
  const auto iz = static_cast<std::int64_t>(fz);
  const double tx = smoothstep(x - fx);
  const double ty = smoothstep(y - fy);
  const double tz = smoothstep(z - fz);

  double corners[2][2][2];
  for (int dx = 0; dx < 2; ++dx) {
    for (int dy = 0; dy < 2; ++dy) {
      for (int dz = 0; dz < 2; ++dz) {
        corners[dx][dy][dz] = lattice(ix + dx, iy + dy, iz + dz);
      }
    }
  }
  auto lerp = [](double a, double b, double t) { return a + (b - a) * t; };
  const double x00 = lerp(corners[0][0][0], corners[1][0][0], tx);
  const double x01 = lerp(corners[0][0][1], corners[1][0][1], tx);
  const double x10 = lerp(corners[0][1][0], corners[1][1][0], tx);
  const double x11 = lerp(corners[0][1][1], corners[1][1][1], tx);
  const double y0 = lerp(x00, x10, ty);
  const double y1 = lerp(x01, x11, ty);
  return lerp(y0, y1, tz);
}

double ValueNoise3D::fbm(double x, double y, double z, int octaves, double lacunarity,
                         double persistence) const {
  double sum = 0.0, amp = 1.0, norm = 0.0, freq = 1.0;
  for (int o = 0; o < octaves; ++o) {
    // Per-octave offset decorrelates octave lattices.
    const double off = 37.13 * static_cast<double>(o + 1);
    sum += amp * at(x * freq + off, y * freq + off * 0.618, z * freq + off * 0.382);
    norm += amp;
    amp *= persistence;
    freq *= lacunarity;
  }
  return norm > 0.0 ? sum / norm : 0.0;
}

}  // namespace pcw::data
