// The paper's Eq. (1) and Eq. (2): compression-throughput and write-time
// prediction.
//
// Eq. (1) models single-core compression throughput as a bounded power
// function of the predicted bit-rate B:
//
//     S(B) = (C_max - C_min) * (B/3)^a + C_min,      a < 0
//
// calibrated so S(3) = C_max (the "3" is the paper's empirically best
// pivot). As printed in the paper the function exceeds C_max for B < 3;
// the paper's own Fig. 5/6 shows throughput *bounded* by C_max there
// (the predict+encode pass still touches every point), so we clamp S to
// [C_min, C_max]. This is the only deviation from the printed formula and
// it matches the paper's stated observation (1) in §III-B.
//
// Eq. (2) models write time as compressed bytes over a stable per-process
// write throughput C_thr. The paper deliberately keeps this coarse: only
// *relative* write times across partitions matter for scheduling. The
// size-dependent saturating curve (Fig. 7) is also provided; the planner
// uses the stable plateau (reproducing the paper's low-bit-rate error in
// Fig. 13) while the I/O simulator uses the full curve.
#pragma once

#include <cstddef>
#include <span>

namespace pcw::model {

struct ThroughputSample {
  double bit_rate = 0.0;       // bits/value
  double throughput = 0.0;     // bytes of *original* data per second
};

class CompressionThroughputModel {
 public:
  CompressionThroughputModel() = default;
  CompressionThroughputModel(double c_min, double c_max, double a)
      : c_min_(c_min), c_max_(c_max), a_(a) {}

  /// Fits C_min, C_max (from sample extrema) and the exponent `a` (grid
  /// search + golden refinement) against offline (bit-rate, throughput)
  /// samples. Needs >= 3 samples.
  static CompressionThroughputModel calibrate(std::span<const ThroughputSample> samples);

  /// Predicted throughput (original bytes/s) at compressed bit-rate B.
  double throughput(double bit_rate) const;

  /// Eq. (1): predicted seconds to compress `original_bytes` at bit-rate B.
  double predict_time(double original_bytes, double bit_rate) const;

  double c_min() const { return c_min_; }
  double c_max() const { return c_max_; }
  double exponent() const { return a_; }

 private:
  double c_min_ = 100e6;   // defaults in the paper's observed band
  double c_max_ = 250e6;
  double a_ = -1.7;
};

struct WriteSample {
  double bytes = 0.0;          // request size per process
  double throughput = 0.0;     // bytes/s per process
};

class WriteThroughputModel {
 public:
  WriteThroughputModel() = default;
  WriteThroughputModel(double plateau, double half_size)
      : plateau_(plateau), half_size_(half_size) {}

  /// Fits the saturating curve thr(s) = plateau * s / (s + s_half) against
  /// offline per-process write measurements (Fig. 7 offline phase).
  static WriteThroughputModel calibrate(std::span<const WriteSample> samples);

  /// Size-dependent per-process throughput (bytes/s).
  double throughput(double bytes) const;

  /// The stable plateau C_thr used by Eq. (2).
  double stable_throughput() const { return plateau_; }

  /// Eq. (2): T_write = compressed_bytes / C_thr.
  double predict_time(double compressed_bytes) const {
    return plateau_ > 0.0 ? compressed_bytes / plateau_ : 0.0;
  }

  double half_size() const { return half_size_; }

 private:
  double plateau_ = 400e6;     // bytes/s; overridden by calibrate()
  double half_size_ = 2e6;     // bytes at which throughput is half plateau
};

}  // namespace pcw::model
