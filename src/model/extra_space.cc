#include "model/extra_space.h"

#include <algorithm>
#include <cmath>

namespace pcw::model {

double effective_rspace(double rspace, double predicted_ratio) {
  rspace = std::max(rspace, 1.0);
  if (predicted_ratio > 32.0) {
    return std::min(2.0, 1.0 + (rspace - 1.0) * 4.0);
  }
  return rspace;
}

double rspace_for_weight(double performance_weight) {
  const double w = std::clamp(performance_weight, 0.0, 1.0);
  // Concave map: sqrt gives ~half the head-room by w = 0.25, mirroring the
  // steep initial drop in overflow probability seen in Fig. 9/14.
  return kMinRspace + (kMaxRspace - kMinRspace) * std::sqrt(w);
}

double reserved_bytes(double predicted_bytes, double predicted_ratio, double rspace) {
  return predicted_bytes * effective_rspace(rspace, predicted_ratio);
}

}  // namespace pcw::model
