#include "model/ratio_model.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "sz/huffman.h"
#include "sz/lorenzo.h"

namespace pcw::model {
namespace {

// Quantizes one sampled block in isolation (zero-padded Lorenzo, exactly
// the compressor's stencil semantics but restricted to the block), and
// accumulates the code histogram plus LZ run statistics.
template <typename T>
void sample_block(std::span<const T> data, const sz::Dims& dims,
                  std::size_t bx, std::size_t by, std::size_t bz,
                  std::size_t ex, std::size_t ey, std::size_t ez, double eb,
                  std::uint32_t radius, const RatioModelConfig& config,
                  std::vector<std::uint64_t>& counts, std::uint64_t& outliers,
                  std::uint64_t& points, std::uint64_t& run_saved_codes,
                  std::vector<std::uint32_t>& scratch_codes,
                  std::vector<T>& scratch_recon) {
  const std::size_t n = ex * ey * ez;
  scratch_codes.resize(n);
  scratch_recon.resize(n);
  const double twice_eb = 2.0 * eb;
  const auto max_q = static_cast<long long>(radius) - 1;
  const std::size_t sy_src = dims.d2;
  const std::size_t sx_src = dims.d1 * dims.d2;

  std::size_t i = 0;
  for (std::size_t x = 0; x < ex; ++x) {
    for (std::size_t y = 0; y < ey; ++y) {
      for (std::size_t z = 0; z < ez; ++z, ++i) {
        const std::size_t src =
            (bx + x) * sx_src + (by + y) * sy_src + (bz + z);
        const double orig = static_cast<double>(data[src]);
        // Block-local Lorenzo on the scratch reconstruction buffer.
        const bool hx = x > 0, hy = y > 0, hz = z > 0;
        const std::size_t sx = ey * ez, sy = ez;
        double pred = 0.0;
        if (hz) pred += static_cast<double>(scratch_recon[i - 1]);
        if (hy) pred += static_cast<double>(scratch_recon[i - sy]);
        if (hx) pred += static_cast<double>(scratch_recon[i - sx]);
        if (hy && hz) pred -= static_cast<double>(scratch_recon[i - sy - 1]);
        if (hx && hz) pred -= static_cast<double>(scratch_recon[i - sx - 1]);
        if (hx && hy) pred -= static_cast<double>(scratch_recon[i - sx - sy]);
        if (hx && hy && hz)
          pred += static_cast<double>(scratch_recon[i - sx - sy - 1]);

        const double scaled = (orig - pred) / twice_eb;
        bool predictable = std::abs(scaled) <= static_cast<double>(max_q);
        long long q = 0;
        double rec = 0.0;
        if (predictable) {
          q = std::llround(scaled);
          rec = pred + static_cast<double>(q) * twice_eb;
          predictable =
              std::abs(static_cast<double>(static_cast<T>(rec)) - orig) <= eb;
        }
        if (predictable) {
          const auto code =
              static_cast<std::uint32_t>(q + static_cast<long long>(radius));
          scratch_codes[i] = code;
          ++counts[code];
          scratch_recon[i] = static_cast<T>(rec);
        } else {
          scratch_codes[i] = 0;
          ++counts[0];
          ++outliers;
          scratch_recon[i] = data[src];
        }
      }
    }
  }
  points += n;

  // Run-length structure: codes repeated >= min_lz_run times produce
  // byte-periodic Huffman output the LZ stage collapses. Count the codes
  // covered by such runs (minus a fixed anchor per run that LZ still
  // spends tokens on).
  std::size_t run_start = 0;
  for (std::size_t k = 1; k <= n; ++k) {
    if (k == n || scratch_codes[k] != scratch_codes[run_start]) {
      const std::size_t len = k - run_start;
      if (len >= config.min_lz_run && len > 8) run_saved_codes += len - 8;
      run_start = k;
    }
  }
}

}  // namespace

template <typename T>
RatioEstimate estimate_ratio(std::span<const T> data, const sz::Dims& dims,
                             const sz::Params& params,
                             const RatioModelConfig& config) {
  const double eb = sz::resolve_error_bound<T>(data, params);
  const std::size_t total = dims.count();

  // Block grid.
  const bool is_multidim = dims.rank() >= 2;
  const std::size_t bx = is_multidim ? std::min(config.block_edge, dims.d0) : 1;
  const std::size_t by = is_multidim ? std::min(config.block_edge, dims.d1) : 1;
  const std::size_t bz =
      is_multidim ? std::min(config.block_edge, dims.d2) : std::min(config.block_len_1d, dims.d2);
  const std::size_t gx = (dims.d0 + bx - 1) / bx;
  const std::size_t gy = (dims.d1 + by - 1) / by;
  const std::size_t gz = (dims.d2 + bz - 1) / bz;
  const std::size_t total_blocks = gx * gy * gz;
  const std::size_t block_points = bx * by * bz;
  std::size_t want_blocks = static_cast<std::size_t>(
      std::ceil(config.sample_fraction * static_cast<double>(total) /
                static_cast<double>(block_points)));
  want_blocks = std::clamp<std::size_t>(want_blocks, 1, total_blocks);
  // Prime-ish stride decorrelates the sample from periodic structure.
  const std::size_t stride = std::max<std::size_t>(1, total_blocks / want_blocks);

  std::vector<std::uint64_t> counts(2ull * params.radius, 0);
  std::uint64_t outliers = 0, points = 0, run_saved = 0;
  std::vector<std::uint32_t> scratch_codes;
  std::vector<T> scratch_recon;

  for (std::size_t b = 0; b < total_blocks; b += stride) {
    const std::size_t ix = b / (gy * gz);
    const std::size_t iy = (b / gz) % gy;
    const std::size_t iz = b % gz;
    const std::size_t x0 = ix * bx, y0 = iy * by, z0 = iz * bz;
    const std::size_t ex = std::min(bx, dims.d0 - x0);
    const std::size_t ey = std::min(by, dims.d1 - y0);
    const std::size_t ez = std::min(bz, dims.d2 - z0);
    sample_block<T>(data, dims, x0, y0, z0, ex, ey, ez, eb, params.radius,
                    config, counts, outliers, points, run_saved, scratch_codes,
                    scratch_recon);
  }

  RatioEstimate est;
  est.sampled_points = points;
  if (points == 0) return est;
  est.outlier_fraction = static_cast<double>(outliers) / static_cast<double>(points);

  // Hypothetical Huffman cost over the sampled histogram.
  std::vector<sz::SymbolCount> freqs;
  std::uint64_t distinct = 0;
  for (std::uint32_t s = 0; s < counts.size(); ++s) {
    if (counts[s] > 0) {
      freqs.push_back({s, counts[s]});
      ++distinct;
    }
  }
  const auto lengths = sz::huffman_code_lengths(freqs);
  std::uint64_t huff_bits = 0;
  double saved_bits = 0.0;
  for (std::size_t k = 0; k < freqs.size(); ++k) {
    huff_bits += freqs[k].count * lengths[k];
  }
  est.huffman_bit_rate = static_cast<double>(huff_bits) / static_cast<double>(points);

  // LZ gain: codes inside long runs compress to (almost) nothing; weight
  // the saved codes by the *modal* code length since runs are
  // overwhelmingly the zero-residual code.
  std::uint8_t modal_len = 8;
  std::uint64_t modal_count = 0;
  for (std::size_t k = 0; k < freqs.size(); ++k) {
    if (freqs[k].count > modal_count) {
      modal_count = freqs[k].count;
      modal_len = lengths[k];
    }
  }
  saved_bits = static_cast<double>(run_saved) * static_cast<double>(modal_len);
  if (params.lossless && huff_bits > 0) {
    est.lz_gain = std::clamp(1.0 - saved_bits / static_cast<double>(huff_bits), 0.02, 1.0);
  }

  // Per-partition overheads amortized over the full partition, not the
  // sample: serialized codebook (~3 bytes/distinct symbol) + container
  // header (~64 bytes).
  const double overhead_bits =
      (static_cast<double>(distinct) * 24.0 + 64.0 * 8.0) / static_cast<double>(total);
  const double outlier_raw_bits = est.outlier_fraction * 8.0 * sizeof(T);

  est.bit_rate = est.huffman_bit_rate * est.lz_gain + outlier_raw_bits + overhead_bits;
  est.bit_rate = std::max(est.bit_rate, 0.05);
  est.ratio = 8.0 * sizeof(T) / est.bit_rate;
  return est;
}

template RatioEstimate estimate_ratio<float>(std::span<const float>, const sz::Dims&,
                                             const sz::Params&, const RatioModelConfig&);
template RatioEstimate estimate_ratio<double>(std::span<const double>, const sz::Dims&,
                                              const sz::Params&, const RatioModelConfig&);

}  // namespace pcw::model
