// Sampling-based compression-ratio (bit-rate) prediction.
//
// Re-implements the ratio-quality model of Jin et al. [25] that the paper
// builds on: instead of compressing a partition to learn its size, we
//   1. sample a small fraction of the partition in contiguous blocks,
//   2. run the same Lorenzo quantization on each block in isolation,
//   3. cost a hypothetical Huffman codebook over the sampled
//      quantization-code histogram,
//   4. estimate the LZ back-end gain from run-length structure of the
//      sampled code stream,
// which yields a predicted bit-rate at a few percent of compression cost.
//
// Like the original model, accuracy degrades at very high ratios (> 32x,
// i.e. bit-rate < 1): there the final size is dominated by how well LZ
// collapses near-constant Huffman output, which run-length analysis only
// approximates. The paper's Eq. (3) widens the reserved extra space in
// exactly this regime; see model/extra_space.h.
#pragma once

#include <cstddef>
#include <span>

#include "sz/compressor.h"
#include "sz/dims.h"

namespace pcw::model {

struct RatioEstimate {
  double bit_rate = 0.0;          // predicted bits per element
  double ratio = 0.0;             // predicted original/compressed ratio
  double outlier_fraction = 0.0;  // predicted unpredictable-point fraction
  std::size_t sampled_points = 0; // how many points the estimate used
  double huffman_bit_rate = 0.0;  // pre-LZ entropy-stage estimate
  double lz_gain = 1.0;           // predicted LZ shrink factor (<= 1)
};

struct RatioModelConfig {
  /// Fraction of points to sample; the paper targets <10% of compression
  /// time for the whole prediction phase.
  double sample_fraction = 0.03;
  /// Sampled block edge (3-D) / block length (1-D).
  std::size_t block_edge = 8;
  std::size_t block_len_1d = 512;
  /// Runs of identical codes at least this long are assumed LZ-collapsible.
  std::size_t min_lz_run = 16;
};

/// Predicts the compressed bit-rate of `data` under `params` without
/// compressing it.
template <typename T>
RatioEstimate estimate_ratio(std::span<const T> data, const sz::Dims& dims,
                             const sz::Params& params,
                             const RatioModelConfig& config = {});

}  // namespace pcw::model
