// Extra-space policy (§III-D): how much head-room to reserve on top of
// each partition's *predicted* compressed size so that mispredictions
// rarely overflow.
#pragma once

namespace pcw::model {

/// Supported R_space interval. Below 1.1 the overflow-handling cost
/// explodes (the paper measured 32.4% overflowing partitions and +65.6%
/// time at 1.1 with no margin to spare); above 1.43 storage is traded for
/// negligible performance.
inline constexpr double kMinRspace = 1.1;
inline constexpr double kMaxRspace = 1.43;
inline constexpr double kDefaultRspace = 1.25;

/// Eq. (3): at predicted compression ratios above 32 the ratio model's
/// accuracy collapses (Huffman saturates at 32x for f32 and the LZ stage
/// dominates), so the reserved ratio is widened:
///     r_space = min(2, 1 + (R_space - 1) * 4)      for ratio > 32.
/// Below the threshold the user-chosen R_space applies unchanged.
double effective_rspace(double rspace, double predicted_ratio);

/// Fig. 9 mapping: converts a user preference weight w in [0, 1]
/// (0 = minimize storage overhead, 1 = maximize write performance) to an
/// R_space in [kMinRspace, kMaxRspace]. The curve is concave in w because
/// the first head-room increments buy the most overflow reduction —
/// matching the empirical average over Nyx/VPIC on both systems.
double rspace_for_weight(double performance_weight);

/// Bytes to reserve for a partition with predicted compressed size
/// `predicted_bytes` and predicted ratio `predicted_ratio` under policy
/// R_space (Eq. (3) applied automatically).
double reserved_bytes(double predicted_bytes, double predicted_ratio, double rspace);

}  // namespace pcw::model
