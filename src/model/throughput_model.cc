#include "model/throughput_model.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace pcw::model {
namespace {

double model_mse(std::span<const ThroughputSample> samples, double c_min,
                 double c_max, double a) {
  double mse = 0.0;
  for (const auto& s : samples) {
    const double pred = std::clamp(
        (c_max - c_min) * std::pow(s.bit_rate / 3.0, a) + c_min, c_min, c_max);
    const double rel = (pred - s.throughput) / s.throughput;
    mse += rel * rel;
  }
  return mse / static_cast<double>(samples.size());
}

}  // namespace

CompressionThroughputModel CompressionThroughputModel::calibrate(
    std::span<const ThroughputSample> samples) {
  if (samples.size() < 3) {
    throw std::invalid_argument("CompressionThroughputModel: need >= 3 samples");
  }
  double c_min = samples[0].throughput, c_max = samples[0].throughput;
  for (const auto& s : samples) {
    if (s.bit_rate <= 0.0 || s.throughput <= 0.0) {
      throw std::invalid_argument("CompressionThroughputModel: non-positive sample");
    }
    c_min = std::min(c_min, s.throughput);
    c_max = std::max(c_max, s.throughput);
  }
  if (c_max <= c_min) c_max = c_min * 1.01;  // degenerate flat profile

  // Coarse grid then golden-section refinement on the exponent.
  double best_a = -1.0, best_err = std::numeric_limits<double>::max();
  for (double a = -4.0; a <= -0.1; a += 0.05) {
    const double err = model_mse(samples, c_min, c_max, a);
    if (err < best_err) {
      best_err = err;
      best_a = a;
    }
  }
  double lo = best_a - 0.05, hi = best_a + 0.05;
  constexpr double kPhi = 0.6180339887498949;
  for (int it = 0; it < 40; ++it) {
    const double m1 = hi - kPhi * (hi - lo);
    const double m2 = lo + kPhi * (hi - lo);
    if (model_mse(samples, c_min, c_max, m1) < model_mse(samples, c_min, c_max, m2)) {
      hi = m2;
    } else {
      lo = m1;
    }
  }
  return CompressionThroughputModel(c_min, c_max, 0.5 * (lo + hi));
}

double CompressionThroughputModel::throughput(double bit_rate) const {
  if (bit_rate <= 0.0) return c_max_;
  const double s = (c_max_ - c_min_) * std::pow(bit_rate / 3.0, a_) + c_min_;
  return std::clamp(s, c_min_, c_max_);
}

double CompressionThroughputModel::predict_time(double original_bytes,
                                                double bit_rate) const {
  const double s = throughput(bit_rate);
  return s > 0.0 ? original_bytes / s : 0.0;
}

WriteThroughputModel WriteThroughputModel::calibrate(
    std::span<const WriteSample> samples) {
  if (samples.size() < 2) {
    throw std::invalid_argument("WriteThroughputModel: need >= 2 samples");
  }
  double plateau = 0.0;
  for (const auto& s : samples) {
    if (s.bytes <= 0.0 || s.throughput <= 0.0) {
      throw std::invalid_argument("WriteThroughputModel: non-positive sample");
    }
    plateau = std::max(plateau, s.throughput);
  }
  // Least-squares grid over s_half in log space; thr(s)=P*s/(s+h) with P
  // fixed to the observed max slightly inflated (the max sample itself is
  // still below the asymptote).
  plateau *= 1.05;
  double best_h = 1e6, best_err = std::numeric_limits<double>::max();
  for (double log_h = std::log(1e3); log_h <= std::log(1e9); log_h += 0.05) {
    const double h = std::exp(log_h);
    double err = 0.0;
    for (const auto& s : samples) {
      const double pred = plateau * s.bytes / (s.bytes + h);
      const double rel = (pred - s.throughput) / s.throughput;
      err += rel * rel;
    }
    if (err < best_err) {
      best_err = err;
      best_h = h;
    }
  }
  return WriteThroughputModel(plateau, best_h);
}

double WriteThroughputModel::throughput(double bytes) const {
  if (bytes <= 0.0) return 0.0;
  return plateau_ * bytes / (bytes + half_size_);
}

}  // namespace pcw::model
