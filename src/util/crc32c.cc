#include "util/crc32c.h"

#include <cstring>

namespace pcw::util {
namespace {

// Reflected Castagnoli polynomial (0x1EDC6F41 bit-reversed).
constexpr std::uint32_t kPoly = 0x82F63B78u;

struct Tables {
  std::uint32_t t[8][256];
};

constexpr Tables make_tables() {
  Tables tb{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1u) ? (c >> 1) ^ kPoly : c >> 1;
    tb.t[0][i] = c;
  }
  // Slice-by-8: t[j][b] advances a byte that sits j positions deeper in
  // the 8-byte word, so one iteration folds 64 bits with 8 table loads.
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = tb.t[0][i];
    for (int j = 1; j < 8; ++j) {
      c = tb.t[0][c & 0xffu] ^ (c >> 8);
      tb.t[j][i] = c;
    }
  }
  return tb;
}

constexpr Tables kTables = make_tables();

std::uint32_t crc_sw(std::uint32_t c, const std::uint8_t* p, std::size_t n) {
  const auto& t = kTables.t;
  while (n > 0 && (reinterpret_cast<std::uintptr_t>(p) & 7u) != 0) {
    c = t[0][(c ^ *p++) & 0xffu] ^ (c >> 8);
    --n;
  }
  while (n >= 8) {
    std::uint64_t w;
    std::memcpy(&w, p, 8);
    w ^= c;  // little-endian: the CRC folds into the word's low bytes
    c = t[7][w & 0xffu] ^ t[6][(w >> 8) & 0xffu] ^ t[5][(w >> 16) & 0xffu] ^
        t[4][(w >> 24) & 0xffu] ^ t[3][(w >> 32) & 0xffu] ^ t[2][(w >> 40) & 0xffu] ^
        t[1][(w >> 48) & 0xffu] ^ t[0][(w >> 56) & 0xffu];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) c = t[0][(c ^ *p++) & 0xffu] ^ (c >> 8);
  return c;
}

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define PCW_CRC32C_HW 1

__attribute__((target("sse4.2"))) std::uint32_t crc_hw(std::uint32_t c,
                                                       const std::uint8_t* p,
                                                       std::size_t n) {
  while (n > 0 && (reinterpret_cast<std::uintptr_t>(p) & 7u) != 0) {
    c = __builtin_ia32_crc32qi(c, *p++);
    --n;
  }
  while (n >= 8) {
    std::uint64_t w;
    std::memcpy(&w, p, 8);
    c = static_cast<std::uint32_t>(
        __builtin_ia32_crc32di(c, static_cast<unsigned long long>(w)));
    p += 8;
    n -= 8;
  }
  while (n-- > 0) c = __builtin_ia32_crc32qi(c, *p++);
  return c;
}

bool have_hw_crc() { return __builtin_cpu_supports("sse4.2") != 0; }
#endif

}  // namespace

std::uint32_t crc32c(std::uint32_t crc, const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
#ifdef PCW_CRC32C_HW
  static const bool hw = have_hw_crc();
  c = hw ? crc_hw(c, p, len) : crc_sw(c, p, len);
#else
  c = crc_sw(c, p, len);
#endif
  return c ^ 0xFFFFFFFFu;
}

}  // namespace pcw::util
