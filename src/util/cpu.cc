#include "util/cpu.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <thread>

// PCW_HAVE_AVX2 / PCW_HAVE_AVX512 mirror which kernel TUs the build
// actually compiled (set per-file from src/CMakeLists.txt). Detection is
// clamped to that: advertising a level with no kernels behind it would
// make the dispatch layer promise code that was never built.
#ifndef PCW_HAVE_AVX2
#define PCW_HAVE_AVX2 0
#endif
#ifndef PCW_HAVE_AVX512
#define PCW_HAVE_AVX512 0
#endif

namespace pcw::util {
namespace {

Simd detect() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_cpu_init();
  if (PCW_HAVE_AVX512 && __builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512bw") && __builtin_cpu_supports("avx512dq") &&
      __builtin_cpu_supports("avx512vl")) {
    return Simd::kAvx512;
  }
  if (PCW_HAVE_AVX2 && __builtin_cpu_supports("avx2")) {
    return Simd::kAvx2;
  }
#endif
  return Simd::kScalar;
}

Simd clamp(Simd level, Simd ceiling) {
  return static_cast<int>(level) < static_cast<int>(ceiling) ? level : ceiling;
}

Simd from_env(Simd detected) {
  const char* env = std::getenv("PCW_SIMD");
  if (env == nullptr || *env == '\0') return detected;
  if (std::strcmp(env, "avx512") == 0) return clamp(Simd::kAvx512, detected);
  if (std::strcmp(env, "avx2") == 0) return clamp(Simd::kAvx2, detected);
  // "off", "scalar", and anything unrecognized all mean the safe level.
  return Simd::kScalar;
}

// -1 = not yet resolved; otherwise the cached Simd value.
std::atomic<int> g_active{-1};

}  // namespace

Simd simd_detected() {
  static const Simd detected = detect();
  return detected;
}

Simd simd_active() {
  const int cached = g_active.load(std::memory_order_relaxed);
  if (cached >= 0) return static_cast<Simd>(cached);
  const Simd resolved = from_env(simd_detected());
  g_active.store(static_cast<int>(resolved), std::memory_order_relaxed);
  return resolved;
}

void simd_set_active(Simd level) {
  g_active.store(static_cast<int>(clamp(level, simd_detected())),
                 std::memory_order_relaxed);
}

const char* simd_name(Simd level) {
  switch (level) {
    case Simd::kAvx512:
      return "avx512";
    case Simd::kAvx2:
      return "avx2";
    default:
      return "scalar";
  }
}

unsigned hardware_threads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

}  // namespace pcw::util
