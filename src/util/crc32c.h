// CRC32C (Castagnoli) — the integrity checksum for every pcw on-disk
// structure: sz container v4 headers/blocks and the h5 footer-v3 commit
// protocol (docs/integrity.md).
//
// The Castagnoli polynomial is chosen over plain CRC32 because x86 has
// carried a hardware instruction for it since SSE4.2; the implementation
// dispatches to it at runtime and falls back to a slice-by-8 table walk
// elsewhere, so checksumming runs at memory speed and stays well under
// the <5% verification budget the read-path ratchet enforces.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace pcw::util {

/// Extends `crc` (the finalized CRC of the bytes seen so far; 0 for the
/// first chunk) over `len` more bytes. Chaining calls over consecutive
/// chunks yields the CRC of their concatenation:
///   crc32c(crc32c(0, a, la), b, lb) == crc32c(0, a||b).
std::uint32_t crc32c(std::uint32_t crc, const void* data, std::size_t len);

inline std::uint32_t crc32c(std::uint32_t crc, std::span<const std::uint8_t> data) {
  return crc32c(crc, data.data(), data.size());
}

}  // namespace pcw::util
