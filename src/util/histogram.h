// Fixed-bin histogram used for bit-rate distributions (Fig. 1) and
// quantization-code statistics in the ratio model.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace pcw::util {

class Histogram {
 public:
  /// Uniform bins over [lo, hi); values outside are clamped to end bins.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value);
  void add_all(std::span<const double> values);

  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;

  /// Fraction of samples in a bin (0 when empty).
  double fraction(std::size_t bin) const;

  /// Renders an ASCII bar chart, one line per bin, `width` chars max bar.
  std::string ascii(std::size_t width = 50) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace pcw::util
