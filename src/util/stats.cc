#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace pcw::util {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  const std::size_t n = std::min(xs.size(), ys.size());
  if (n < 2) return 0.0;
  const double mx = mean(xs.subspan(0, n));
  const double my = mean(ys.subspan(0, n));
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys) {
  LinearFit fit;
  const std::size_t n = std::min(xs.size(), ys.size());
  if (n < 2) return fit;
  const double mx = mean(xs.subspan(0, n));
  const double my = mean(ys.subspan(0, n));
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r2 = syy == 0.0 ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

double mape(std::span<const double> predicted, std::span<const double> actual) {
  const std::size_t n = std::min(predicted.size(), actual.size());
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (actual[i] == 0.0) continue;
    sum += std::abs((predicted[i] - actual[i]) / actual[i]);
    ++count;
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

double geomean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += std::log(x);
  return std::exp(s / static_cast<double>(xs.size()));
}

}  // namespace pcw::util
