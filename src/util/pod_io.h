// Appending trivially-copyable values to byte buffers, shared by the
// serializers (sz container header, h5lite footer).
#pragma once

#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

namespace pcw::util {

/// Appends the object representation of `v` (native endianness) to `out`.
/// resize+memcpy instead of insert(end, p, p+sizeof(T)): inserting from a
/// stack scalar trips GCC 12's -Wstringop-overflow at -O3.
template <typename T>
void append_pod(std::vector<std::uint8_t>& out, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  const std::size_t pos = out.size();
  out.resize(pos + sizeof(T));
  std::memcpy(out.data() + pos, &v, sizeof(T));
}

}  // namespace pcw::util
