#include "util/metrics.h"

#include "util/trace.h"

namespace pcw::util::metrics {

Snapshot snapshot() {
  Registry& r = Registry::get();
  Snapshot s;
  s.sz_bytes_in = r.sz_bytes_in.get();
  s.sz_bytes_out = r.sz_bytes_out.get();
  s.sz_blocks_encoded = r.sz_blocks_encoded.get();
  s.sz_blocks_decoded = r.sz_blocks_decoded.get();
  s.sz_temporal_blocks = r.sz_temporal_blocks.get();
  s.sz_outliers = r.sz_outliers.get();
  s.sz_huffman_symbols = r.sz_huffman_symbols.get();
  s.io_writes = r.io_writes.get();
  s.io_write_bytes = r.io_write_bytes.get();
  s.io_reads = r.io_reads.get();
  s.io_read_bytes = r.io_read_bytes.get();
  s.io_syncs = r.io_syncs.get();
  s.io_write_retries = r.io_write_retries.get();
  s.io_async_enqueues = r.io_async_enqueues.get();
  const std::int64_t depth = r.io_queue_depth.value();
  s.io_queue_depth = depth < 0 ? 0 : static_cast<std::uint64_t>(depth);
  s.io_queue_hiwater = r.io_queue_depth.hiwater();
  s.io_write_p50_ns = r.io_write_ns.quantile_bound(0.50);
  s.io_write_p99_ns = r.io_write_ns.quantile_bound(0.99);
  s.fault_writes = r.fault_writes.get();
  s.fault_reads = r.fault_reads.get();
  s.fault_syncs = r.fault_syncs.get();
  s.fault_fired = r.fault_fired.get();
  s.engine_writes = r.engine_writes.get();
  s.series_steps = r.series_steps.get();
  s.chain_links_decoded = r.chain_links_decoded.get();
  s.degraded_reads = r.degraded_reads.get();
  s.store_requests = r.store_requests.get();
  s.store_cache_hits = r.store_cache_hits.get();
  s.store_cache_misses = r.store_cache_misses.get();
  s.store_cache_evictions = r.store_cache_evictions.get();
  s.store_coalesced = r.store_coalesced.get();
  s.store_write_batches = r.store_write_batches.get();
  const std::int64_t cache_bytes = r.store_cache_bytes.value();
  s.store_cache_bytes = cache_bytes < 0 ? 0 : static_cast<std::uint64_t>(cache_bytes);
  s.store_cache_hiwater = r.store_cache_bytes.hiwater();
  const std::int64_t clients = r.store_active_clients.value();
  s.store_active_clients = clients < 0 ? 0 : static_cast<std::uint64_t>(clients);
  s.store_clients_hiwater = r.store_active_clients.hiwater();
  s.trace_spans = trace::recorded();
  s.trace_dropped = trace::dropped();
  return s;
}

void reset() {
  Registry& r = Registry::get();
  r.sz_bytes_in.reset();
  r.sz_bytes_out.reset();
  r.sz_blocks_encoded.reset();
  r.sz_blocks_decoded.reset();
  r.sz_temporal_blocks.reset();
  r.sz_outliers.reset();
  r.sz_huffman_symbols.reset();
  r.io_writes.reset();
  r.io_write_bytes.reset();
  r.io_reads.reset();
  r.io_read_bytes.reset();
  r.io_syncs.reset();
  r.io_write_retries.reset();
  r.io_async_enqueues.reset();
  r.io_queue_depth.reset();
  r.io_write_ns.reset();
  r.fault_writes.reset();
  r.fault_reads.reset();
  r.fault_syncs.reset();
  r.fault_fired.reset();
  r.engine_writes.reset();
  r.series_steps.reset();
  r.chain_links_decoded.reset();
  r.degraded_reads.reset();
  r.store_requests.reset();
  r.store_cache_hits.reset();
  r.store_cache_misses.reset();
  r.store_cache_evictions.reset();
  r.store_coalesced.reset();
  r.store_write_batches.reset();
  r.store_cache_bytes.reset();
  r.store_active_clients.reset();
}

}  // namespace pcw::util::metrics
