#include "util/table.h"

#include <algorithm>
#include <cstdio>

namespace pcw::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

Table& Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::fmt_bytes(double bytes) {
  static const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", bytes, units[u]);
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c];
      for (std::size_t pad = row[c].size(); pad < width[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace pcw::util
