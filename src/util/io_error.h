// Typed I/O failure: a runtime_error that still knows its errno, so one
// place (src/pcw/convert.h) can classify it into an actionable Status —
// ENOSPC/EDQUOT become kResourceExhausted, everything else kIoError —
// and the async write queue can tell transient faults (worth a bounded
// retry) from permanent ones. EINTR never reaches this type: every
// read/write/fsync call site loops on it.
#pragma once

#include <cerrno>
#include <stdexcept>
#include <string>

namespace pcw::util {

class IoError : public std::runtime_error {
 public:
  IoError(const std::string& what, int error_number, bool transient)
      : std::runtime_error(what), error_number_(error_number), transient_(transient) {}

  /// The errno captured at the failing call site.
  int error_number() const noexcept { return error_number_; }
  /// True for failures worth a bounded retry (EIO/EAGAIN-class).
  bool transient() const noexcept { return transient_; }
  /// ENOSPC/EDQUOT: the device or quota is full — retrying cannot help,
  /// but the caller can free space and resume (kResourceExhausted).
  bool resource_exhausted() const noexcept {
    return error_number_ == ENOSPC || error_number_ == EDQUOT;
  }

  static bool transient_errno(int e) noexcept {
    return e == EIO || e == EAGAIN || e == EWOULDBLOCK;
  }

 private:
  int error_number_;
  bool transient_;
};

}  // namespace pcw::util
