#include "util/fault.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "util/metrics.h"

namespace pcw::util::fault {
namespace {

struct State {
  std::mutex mu;
  Plan plan;
  Counts counts;
  bool crashed = false;  // a kCrash/kTear fired: all later I/O throws
  bool fired = false;    // the plan's one shot has been consumed
};

State& state() {
  static State s;
  return s;
}

std::atomic<bool> g_armed{false};

int parse_errno(const std::string& name) {
  if (name == "EIO") return EIO;
  if (name == "ENOSPC") return ENOSPC;
  if (name == "EDQUOT") return EDQUOT;
  if (name == "EAGAIN") return EAGAIN;
  if (name == "EACCES") return EACCES;
  return std::atoi(name.c_str());
}

/// Parses the PCW_FAULT grammar (see fault.h). Returns false on a spec
/// that does not parse; the caller warns and stays disarmed.
bool parse_env(const char* spec, Plan& plan) {
  std::vector<std::string> parts;
  const char* p = spec;
  while (true) {
    const char* colon = std::strchr(p, ':');
    if (colon == nullptr) {
      parts.emplace_back(p);
      break;
    }
    parts.emplace_back(p, colon);
    p = colon + 1;
  }
  if (parts.size() < 2) return false;
  if (parts[0] == "write") plan.op = Op::kWrite;
  else if (parts[0] == "read") plan.op = Op::kRead;
  else if (parts[0] == "sync") plan.op = Op::kSync;
  else return false;
  if (parts[1] == "fail") plan.action = Action::kFail;
  else if (parts[1] == "tear") plan.action = Action::kTear;
  else if (parts[1] == "crash") plan.action = Action::kCrash;
  else if (parts[1] == "flip") plan.action = Action::kFlip;
  else return false;
  plan.nth = parts.size() > 2 ? std::strtoull(parts[2].c_str(), nullptr, 10) : 1;
  if (plan.nth == 0) return false;
  if (plan.action == Action::kFail && parts.size() > 3) {
    plan.error_number = parse_errno(parts[3]);
    plan.transient = parts.size() > 4 && parts[4] == "transient";
  }
  if (plan.action == Action::kTear && parts.size() > 3) {
    plan.tear_bytes = std::strtoull(parts[3].c_str(), nullptr, 10);
  }
  if (plan.action == Action::kFlip && parts.size() > 3) {
    plan.flip_bit = std::strtoull(parts[3].c_str(), nullptr, 10);
  }
  return true;
}

struct EnvArm {
  EnvArm() {
    const char* spec = std::getenv("PCW_FAULT");
    if (spec == nullptr || *spec == '\0') return;
    Plan plan;
    if (parse_env(spec, plan)) {
      arm(plan);
    } else {
      std::fprintf(stderr, "pcw: ignoring unparseable PCW_FAULT=%s\n", spec);
    }
  }
};
const EnvArm g_env_arm;

[[noreturn]] void throw_fail(const Plan& plan, const char* op_name) {
  throw IoError(std::string("fault: injected ") + op_name + " failure (errno " +
                    std::to_string(plan.error_number) + ")",
                plan.error_number, plan.transient);
}

}  // namespace

void arm(const Plan& plan) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.plan = plan;
  s.counts = Counts{};
  s.crashed = false;
  s.fired = false;
  g_armed.store(true, std::memory_order_release);
}

void disarm() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  g_armed.store(false, std::memory_order_release);
  s.crashed = false;
  s.fired = false;
}

bool armed() noexcept { return g_armed.load(std::memory_order_acquire); }

Counts counts() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.counts;
}

std::optional<std::uint64_t> on_write(std::uint64_t len) {
  (void)len;
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  ++s.counts.writes;
  metrics::Registry::get().fault_writes.add();
  if (s.crashed) throw CrashError();
  if (s.plan.op != Op::kWrite || s.fired || s.counts.writes != s.plan.nth) {
    return std::nullopt;
  }
  s.fired = true;
  metrics::Registry::get().fault_fired.add();
  switch (s.plan.action) {
    case Action::kFail:
      throw_fail(s.plan, "write");
    case Action::kCrash:
      s.crashed = true;
      throw CrashError();
    case Action::kTear:
      s.crashed = true;
      return s.plan.tear_bytes;
    case Action::kFlip:
      break;  // flip targets reads; ignore on writes
  }
  return std::nullopt;
}

void on_read(std::uint8_t* data, std::size_t len) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  ++s.counts.reads;
  metrics::Registry::get().fault_reads.add();
  if (s.crashed) throw CrashError();
  if (s.plan.op != Op::kRead || s.fired || s.counts.reads != s.plan.nth) return;
  s.fired = true;
  metrics::Registry::get().fault_fired.add();
  switch (s.plan.action) {
    case Action::kFail:
      throw_fail(s.plan, "read");
    case Action::kCrash:
    case Action::kTear:
      s.crashed = true;
      throw CrashError();
    case Action::kFlip:
      if (len > 0) {
        const std::uint64_t bit = s.plan.flip_bit % (static_cast<std::uint64_t>(len) * 8);
        data[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      }
      break;
  }
}

void on_sync() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  ++s.counts.syncs;
  metrics::Registry::get().fault_syncs.add();
  if (s.crashed) throw CrashError();
  if (s.plan.op != Op::kSync || s.fired || s.counts.syncs != s.plan.nth) return;
  s.fired = true;
  metrics::Registry::get().fault_fired.add();
  switch (s.plan.action) {
    case Action::kFail:
      throw_fail(s.plan, "fsync");
    case Action::kCrash:
    case Action::kTear:
      s.crashed = true;
      throw CrashError();
    case Action::kFlip:
      break;
  }
}

}  // namespace pcw::util::fault
