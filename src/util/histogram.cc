#include "util/histogram.h"

#include <algorithm>
#include <cstdio>

namespace pcw::util {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins == 0 ? 1 : bins, 0) {}

void Histogram::add(double value) {
  const double span = hi_ - lo_;
  std::size_t bin = 0;
  if (span > 0) {
    const double t = (value - lo_) / span;
    const auto idx = static_cast<long long>(t * static_cast<double>(counts_.size()));
    bin = static_cast<std::size_t>(
        std::clamp<long long>(idx, 0, static_cast<long long>(counts_.size()) - 1));
  }
  ++counts_[bin];
  ++total_;
}

void Histogram::add_all(std::span<const double> values) {
  for (double v : values) add(v);
}

double Histogram::bin_lo(std::size_t bin) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) / static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t bin) const { return bin_lo(bin + 1); }

double Histogram::fraction(std::size_t bin) const {
  return total_ == 0 ? 0.0 : static_cast<double>(counts_.at(bin)) / static_cast<double>(total_);
}

std::string Histogram::ascii(std::size_t width) const {
  std::size_t peak = 1;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::string out;
  char buf[96];
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const std::size_t bar = counts_[b] * width / peak;
    std::snprintf(buf, sizeof(buf), "[%7.3f,%7.3f) %8zu |", bin_lo(b), bin_hi(b), counts_[b]);
    out += buf;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace pcw::util
