#include "util/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>

namespace pcw::util::trace {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

constexpr std::size_t kDefaultCapacity = 32768;

/// One thread's span storage. Only the owning thread writes slots and
/// `head`; it publishes progress with a release store so the (stopped,
/// mutex-holding) exporter reads a consistent prefix.
struct Ring {
  explicit Ring(std::size_t cap, std::uint32_t id) : slots(cap), tid(id) {}
  std::vector<Event> slots;
  std::uint64_t head = 0;  // total events ever recorded by this thread
  std::atomic<std::uint64_t> published{0};
  std::uint32_t tid;
};

struct Global {
  std::mutex mu;
  // Rings are created on a thread's first record and never destroyed, so
  // events from finished pool threads survive to the export and the
  // thread_local pointers stay valid for the process lifetime.
  std::vector<std::unique_ptr<Ring>> rings;
  std::size_t capacity = kDefaultCapacity;
  std::string exit_path;
  std::uint32_t next_tid = 1;
};

Global& global() {
  static Global* g = new Global();  // intentionally leaked: records until exit
  return *g;
}

thread_local Ring* t_ring = nullptr;

Ring* register_ring() {
  Global& g = global();
  std::lock_guard<std::mutex> lock(g.mu);
  g.rings.push_back(std::make_unique<Ring>(g.capacity, g.next_tid++));
  t_ring = g.rings.back().get();
  return t_ring;
}

void flush_at_exit() {
  const std::string path = flush_path();
  if (path.empty() || recorded() == 0) return;
  if (!write_json(path)) {
    std::fprintf(stderr, "pcw: could not write PCW_TRACE file %s\n", path.c_str());
  }
}

/// PCW_TRACE env arming, same static-initializer pattern as PCW_FAULT.
struct EnvArm {
  EnvArm() {
    const char* spec = std::getenv("PCW_TRACE");
    if (spec == nullptr || *spec == '\0') return;
    std::string path;
    std::size_t cap = 0;
    if (parse_spec(spec, &path, &cap)) {
      set_flush_path(path);
      start(cap);
      std::atexit(flush_at_exit);
    } else {
      std::fprintf(stderr, "pcw: ignoring unparseable PCW_TRACE=%s\n", spec);
    }
  }
};
const EnvArm g_env_arm;

/// Copies a ring's live window, oldest-first (pre-wrap order preserved).
void collect_ring(const Ring& ring, std::vector<Event>& out) {
  const std::uint64_t head = ring.published.load(std::memory_order_acquire);
  const std::size_t cap = ring.slots.size();
  const std::uint64_t first = head > cap ? head - cap : 0;
  for (std::uint64_t i = first; i < head; ++i) {
    out.push_back(ring.slots[i % cap]);
  }
}

}  // namespace

void start(std::size_t events_per_thread) {
  Global& g = global();
  std::lock_guard<std::mutex> lock(g.mu);
  if (events_per_thread > 0) g.capacity = events_per_thread;
  detail::g_enabled.store(true, std::memory_order_release);
}

void stop() { detail::g_enabled.store(false, std::memory_order_release); }

void clear() {
  Global& g = global();
  std::lock_guard<std::mutex> lock(g.mu);
  for (auto& ring : g.rings) {
    ring->head = 0;
    ring->published.store(0, std::memory_order_release);
  }
}

void set_flush_path(const std::string& path) {
  Global& g = global();
  std::lock_guard<std::mutex> lock(g.mu);
  g.exit_path = path;
}

std::string flush_path() {
  Global& g = global();
  std::lock_guard<std::mutex> lock(g.mu);
  return g.exit_path;
}

bool parse_spec(const char* spec, std::string* path_out, std::size_t* cap_out) {
  const std::string s(spec);
  if (s.empty()) return false;
  const std::size_t colon = s.rfind(":cap=");
  std::string path = s;
  std::size_t cap = 0;
  if (colon != std::string::npos) {
    path = s.substr(0, colon);
    const std::string num = s.substr(colon + 5);
    if (path.empty() || num.empty()) return false;
    char* end = nullptr;
    cap = static_cast<std::size_t>(std::strtoull(num.c_str(), &end, 10));
    if (end == nullptr || *end != '\0' || cap == 0) return false;
  }
  if (path.empty()) return false;
  if (path_out != nullptr) *path_out = path;
  if (cap_out != nullptr) *cap_out = cap;
  return true;
}

std::uint64_t recorded() {
  Global& g = global();
  std::lock_guard<std::mutex> lock(g.mu);
  std::uint64_t total = 0;
  for (const auto& ring : g.rings) {
    total += ring->published.load(std::memory_order_acquire);
  }
  return total;
}

std::uint64_t dropped() {
  Global& g = global();
  std::lock_guard<std::mutex> lock(g.mu);
  std::uint64_t total = 0;
  for (const auto& ring : g.rings) {
    const std::uint64_t head = ring->published.load(std::memory_order_acquire);
    if (head > ring->slots.size()) total += head - ring->slots.size();
  }
  return total;
}

std::vector<Event> events() {
  Global& g = global();
  std::lock_guard<std::mutex> lock(g.mu);
  std::vector<Event> out;
  for (const auto& ring : g.rings) collect_ring(*ring, out);
  return out;
}

std::vector<SpanStat> span_stats() {
  std::vector<SpanStat> stats;
  for (const Event& e : events()) {
    auto it = std::find_if(stats.begin(), stats.end(), [&](const SpanStat& s) {
      return std::strcmp(s.name, e.name) == 0 && std::strcmp(s.cat, e.cat) == 0;
    });
    if (it == stats.end()) {
      stats.push_back(SpanStat{e.name, e.cat, 0, 0});
      it = std::prev(stats.end());
    }
    ++it->count;
    it->total_ns += e.end_ns - e.start_ns;
  }
  std::sort(stats.begin(), stats.end(), [](const SpanStat& a, const SpanStat& b) {
    return a.total_ns > b.total_ns;
  });
  return stats;
}

void record(const char* name, const char* cat, std::uint64_t start_ns,
            std::uint64_t end_ns, const char* arg_name, std::uint64_t arg) {
  Ring* ring = t_ring;
  if (ring == nullptr) ring = register_ring();
  Event& e = ring->slots[ring->head % ring->slots.size()];
  e.name = name;
  e.cat = cat;
  e.arg_name = arg_name;
  e.arg = arg;
  e.start_ns = start_ns;
  e.end_ns = end_ns;
  e.tid = ring->tid;
  ring->published.store(++ring->head, std::memory_order_release);
}

bool write_json(const std::string& path) {
  stop();
  std::vector<Event> all = events();
  std::sort(all.begin(), all.end(), [](const Event& a, const Event& b) {
    return a.start_ns < b.start_ns;
  });
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  // Chrome trace-event format: complete ("X") events with microsecond
  // timestamps. Names/cats are in-tree literals, no escaping needed.
  std::fputs("{\"traceEvents\":[\n", f);
  for (std::size_t i = 0; i < all.size(); ++i) {
    const Event& e = all[i];
    const double ts_us = static_cast<double>(e.start_ns) / 1000.0;
    const double dur_us = static_cast<double>(e.end_ns - e.start_ns) / 1000.0;
    std::fprintf(f,
                 "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":1,"
                 "\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f",
                 e.name, e.cat, e.tid, ts_us, dur_us);
    if (e.arg_name != nullptr) {
      std::fprintf(f, ",\"args\":{\"%s\":%llu}", e.arg_name,
                   static_cast<unsigned long long>(e.arg));
    }
    std::fprintf(f, "}%s\n", i + 1 < all.size() ? "," : "");
  }
  std::fputs("],\"displayTimeUnit\":\"ns\"}\n", f);
  const bool ok = std::fclose(f) == 0;
  return ok;
}

}  // namespace pcw::util::trace
