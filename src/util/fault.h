// Deterministic I/O fault injection for crash-consistency and corruption
// testing. Compiled into the library unconditionally but dormant until
// armed — the h5 I/O layer guards every hook behind the single relaxed
// atomic load of armed(), so the production cost is one predictable
// branch per syscall.
//
// A Plan targets one operation class (write/read/sync) and fires on the
// Nth matching call:
//   kFail  — throw IoError with a chosen errno. A `transient` failure
//            fires once and then lets the (retried) call proceed, which
//            is exactly what the async queue's bounded retry expects.
//   kTear  — physically write only `tear_bytes` of the Nth pwrite, then
//            behave like kCrash: a torn sector followed by power loss.
//   kCrash — throw CrashError and latch: every later hooked I/O call
//            also throws, simulating a process that died mid-commit.
//   kFlip  — flip one bit of the Nth pread's returned buffer (silent
//            media corruption on the read path).
//
// Tests arm programmatically via arm()/disarm(); the PCW_FAULT
// environment variable arms the same plans from outside the process:
//   PCW_FAULT="write:crash:5"             crash at the 5th pwrite
//   PCW_FAULT="write:tear:4:100"          tear the 4th pwrite to 100 bytes
//   PCW_FAULT="write:fail:3:ENOSPC"       3rd pwrite fails with ENOSPC
//   PCW_FAULT="sync:fail:2:EIO:transient" 2nd fsync fails once with EIO
//   PCW_FAULT="read:flip:1:12345"         flip bit 12345 of the 1st pread
//
// Counters run whenever a plan is armed (even one that never fires, e.g.
// nth = UINT64_MAX), which is how the crash-point sweep sizes itself:
// dry-run once counting ops, then re-run arming a crash at each index.
#pragma once

#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <optional>

#include "util/io_error.h"

namespace pcw::util::fault {

enum class Op : std::uint8_t { kWrite = 0, kRead = 1, kSync = 2 };
enum class Action : std::uint8_t { kFail = 0, kTear = 1, kCrash = 2, kFlip = 3 };

struct Plan {
  Op op = Op::kWrite;
  Action action = Action::kCrash;
  /// Fires on the nth matching operation, 1-based. UINT64_MAX = never
  /// (count-only plan).
  std::uint64_t nth = 1;
  int error_number = EIO;   // kFail: errno to report
  bool transient = false;   // kFail: fire once, let the retry succeed
  std::uint64_t tear_bytes = 0;  // kTear: bytes that reach the disk
  std::uint64_t flip_bit = 0;    // kFlip: flat bit index (mod buffer bits)
};

struct Counts {
  std::uint64_t writes = 0;
  std::uint64_t reads = 0;
  std::uint64_t syncs = 0;
};

/// The simulated power-cut. Derives from IoError (never transient) so
/// the retry machinery refuses to resurrect a dead process.
class CrashError : public IoError {
 public:
  CrashError() : IoError("fault: simulated crash", EIO, false) {}
};

/// Installs `plan`, resets counters and the crash latch, starts hooking.
void arm(const Plan& plan);
/// Stops hooking and clears the crash latch; counters keep their values
/// so a dry run can read them after disarming.
void disarm();
/// Cheap armed check — the only fault-layer cost on the production path.
bool armed() noexcept;
/// Operation counts since the last arm().
Counts counts();

/// Write hook (call before the pwrite, only when armed()): nullopt means
/// proceed normally; a value means write exactly that many bytes and
/// then throw CrashError. Throws per the armed plan.
std::optional<std::uint64_t> on_write(std::uint64_t len);
/// Read hook (call after the bytes landed in `data`): may flip a bit in
/// place or throw per the armed plan.
void on_read(std::uint8_t* data, std::size_t len);
/// Fsync hook (call before the fsync). Throws per the armed plan.
void on_sync();

}  // namespace pcw::util::fault
