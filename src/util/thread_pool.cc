#include "util/thread_pool.h"

namespace pcw::util {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard lock(mu_);
      --active_;
      if (active_ == 0 && queue_.empty()) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  idle_cv_.wait(lock, [this] { return active_ == 0 && queue_.empty(); });
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(resolve_threads(0));
  return pool;
}

unsigned resolve_threads(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace pcw::util
