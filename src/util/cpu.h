// Runtime CPU feature detection and SIMD dispatch policy.
//
// The sz hot kernels ship in up to three flavours (scalar, AVX2,
// AVX-512); which one runs is decided here, once, at process level. The
// contract the whole codebase leans on: every flavour produces blobs
// byte-identical to the scalar kernels — dispatch changes speed, never
// bytes (docs/kernels.md) — so the level can be chosen per host, per
// environment, or per test without touching any container.
#pragma once

namespace pcw::util {

/// Kernel dispatch levels, ordered: a higher level implies the hardware
/// (and this build) supports every lower one.
enum class Simd {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,  // F + BW + DQ + VL
};

/// Highest level supported by both this build and the host CPU.
/// Constant for the process lifetime.
Simd simd_detected();

/// The level kernels dispatch on: simd_detected() clamped by the
/// PCW_SIMD environment variable (off|avx2|avx512; any other value means
/// off). Resolved once on first use, then cached.
Simd simd_active();

/// Test hook: force the active level (clamped to simd_detected(), so a
/// scalar host can never be asked to execute vector code).
void simd_set_active(Simd level);

/// Stable lower-case name for reports and bench JSON ("scalar", "avx2",
/// "avx512").
const char* simd_name(Simd level);

/// Hardware thread count as the runtime sees it (>= 1). Recorded in
/// bench baselines so single-core containers are interpretable.
unsigned hardware_threads();

}  // namespace pcw::util
