// Wall-clock timer for measured phases. A thin face over the telemetry
// clock (util/trace.h) so the whole repo — spans, phase reports, bench
// harnesses — reads one steady time source; prefer trace::StageTimer
// where the measured phase should also appear in a trace.
#pragma once

#include "util/trace.h"

namespace pcw::util {

class Timer {
 public:
  Timer() : start_(trace::now_ns()) {}

  void reset() { start_ = trace::now_ns(); }

  /// Elapsed seconds since construction or last reset().
  double seconds() const {
    return static_cast<double>(trace::now_ns() - start_) * 1e-9;
  }

 private:
  std::uint64_t start_;
};

}  // namespace pcw::util
