#include "util/bitstream.h"

#include <cassert>

namespace pcw::util {

void BitWriter::put(std::uint64_t bits, int nbits) {
  assert(nbits >= 0 && nbits <= 57);
  assert(nbits == 64 || (bits >> nbits) == 0);
  acc_ |= bits << nbits_;
  nbits_ += nbits;
  while (nbits_ >= 8) {
    bytes_.push_back(static_cast<std::uint8_t>(acc_));
    acc_ >>= 8;
    nbits_ -= 8;
  }
}

std::vector<std::uint8_t> BitWriter::finish() {
  if (nbits_ > 0) {
    bytes_.push_back(static_cast<std::uint8_t>(acc_));
  }
  acc_ = 0;
  nbits_ = 0;
  std::vector<std::uint8_t> out;
  out.swap(bytes_);
  return out;
}

void BitReader::refill() {
  while (avail_ <= 56 && byte_pos_ < bytes_.size()) {
    acc_ |= static_cast<std::uint64_t>(bytes_[byte_pos_++]) << avail_;
    avail_ += 8;
  }
}

std::uint64_t BitReader::get(int nbits) {
  assert(nbits >= 0 && nbits <= 57);
  if (avail_ < nbits) refill();
  const std::uint64_t mask = nbits == 0 ? 0 : (~0ull >> (64 - nbits));
  const std::uint64_t out = acc_ & mask;
  acc_ >>= nbits;
  avail_ -= nbits;
  bit_pos_ += nbits;
  return out;
}

std::uint64_t BitReader::peek(int nbits) {
  assert(nbits >= 0 && nbits <= 57);
  if (avail_ < nbits) refill();
  const std::uint64_t mask = nbits == 0 ? 0 : (~0ull >> (64 - nbits));
  return acc_ & mask;
}

void BitReader::skip(int nbits) {
  assert(nbits <= avail_);
  acc_ >>= nbits;
  avail_ -= nbits;
  bit_pos_ += nbits;
}

}  // namespace pcw::util
