#include "util/bitstream.h"

#include <bit>
#include <cassert>
#include <cstring>

namespace pcw::util {

void BitWriter::spill() {
  // Called with nbits_ >= 8: move every whole byte of the register into
  // the stream in one resize instead of per-byte push_backs.
  const int nbytes = nbits_ >> 3;
  const std::size_t pos = bytes_.size();
  bytes_.resize(pos + static_cast<std::size_t>(nbytes));
  if constexpr (std::endian::native == std::endian::little) {
    // Byte k of the little-endian register image is (acc_ >> 8k) & 0xff —
    // exactly the byte loop below — so one memcpy replaces it.
    std::memcpy(bytes_.data() + pos, &acc_, static_cast<std::size_t>(nbytes));
    acc_ = nbytes >= 8 ? 0 : acc_ >> (nbytes * 8);
  } else {
    std::uint64_t a = acc_;
    for (int k = 0; k < nbytes; ++k) {
      bytes_[pos + static_cast<std::size_t>(k)] = static_cast<std::uint8_t>(a);
      a >>= 8;
    }
    acc_ = a;
  }
  nbits_ &= 7;
}

std::vector<std::uint8_t> BitWriter::finish() {
  if (nbits_ > 0) {
    bytes_.push_back(static_cast<std::uint8_t>(acc_));
  }
  acc_ = 0;
  nbits_ = 0;
  std::vector<std::uint8_t> out;
  out.swap(bytes_);
  return out;
}

void BitReader::refill() {
  // Word-at-a-time refill (avail_ <= 56 here; get/peek cap nbits at 57).
  // One unaligned 64-bit load replaces up to 8 byte loads. `acc_ |= w <<
  // avail_` may deposit up to 7 bits beyond the bytes we account for; those
  // bits are the true continuation of the stream, so the next refill ORs
  // identical values over them — harmless.
  if (byte_pos_ + 8 <= bytes_.size()) {
    std::uint64_t w;
    std::memcpy(&w, bytes_.data() + byte_pos_, 8);
    if constexpr (std::endian::native == std::endian::big) {
      w = __builtin_bswap64(w);
    }
    acc_ |= w << avail_;
    const int consumed = (64 - avail_) >> 3;
    byte_pos_ += static_cast<std::size_t>(consumed);
    avail_ += consumed * 8;
    return;
  }
  // Tail: fewer than 8 bytes left; fall back to byte-at-a-time.
  while (avail_ <= 56 && byte_pos_ < bytes_.size()) {
    acc_ |= static_cast<std::uint64_t>(bytes_[byte_pos_++]) << avail_;
    avail_ += 8;
  }
}

std::uint64_t BitReader::get(int nbits) {
  assert(nbits >= 0 && nbits <= 57);
  if (avail_ < nbits) refill();
  const std::uint64_t mask = nbits == 0 ? 0 : (~0ull >> (64 - nbits));
  const std::uint64_t out = acc_ & mask;
  acc_ >>= nbits;
  avail_ -= nbits;
  bit_pos_ += static_cast<std::size_t>(nbits);
  return out;
}

std::uint64_t BitReader::peek(int nbits) {
  assert(nbits >= 0 && nbits <= 57);
  if (avail_ < nbits) refill();
  const std::uint64_t mask = nbits == 0 ? 0 : (~0ull >> (64 - nbits));
  std::uint64_t out = acc_ & mask;
  if (avail_ < nbits) {
    // Past the stream end the unaccounted register bits may hold stale
    // stream data; the documented contract is that they read as zero.
    const std::uint64_t valid =
        avail_ <= 0 ? 0 : (~0ull >> (64 - avail_));
    out &= valid;
  }
  return out;
}

void BitReader::skip(int nbits) {
  assert(nbits <= avail_);
  acc_ >>= nbits;
  avail_ -= nbits;
  bit_pos_ += static_cast<std::size_t>(nbits);
}

}  // namespace pcw::util
