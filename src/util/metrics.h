// Process-wide metrics registry: named counters, level gauges with
// high-water marks, and log2-bucketed histograms, all relaxed atomics.
// Always on — an uncontended relaxed fetch_add per block/syscall-grained
// event is noise next to the work it counts, so there is no arming knob;
// hot inner loops accumulate locally and add once per block.
//
// snapshot() returns a plain struct (mirrored publicly as
// pcw::Telemetry); reset() zeroes everything (CLI --stats, tests).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace pcw::util::metrics {

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t get() const noexcept { return v_.load(std::memory_order_relaxed); }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Level gauge (e.g. async-queue depth) with a monotone high-water mark.
class Gauge {
 public:
  void add(std::int64_t delta) noexcept {
    const std::int64_t now = v_.fetch_add(delta, std::memory_order_relaxed) + delta;
    if (delta > 0) {
      std::uint64_t hi = hi_.load(std::memory_order_relaxed);
      const auto unow = static_cast<std::uint64_t>(now < 0 ? 0 : now);
      while (unow > hi &&
             !hi_.compare_exchange_weak(hi, unow, std::memory_order_relaxed)) {
      }
    }
  }
  std::int64_t value() const noexcept { return v_.load(std::memory_order_relaxed); }
  std::uint64_t hiwater() const noexcept { return hi_.load(std::memory_order_relaxed); }
  void reset() noexcept {
    v_.store(0, std::memory_order_relaxed);
    hi_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
  std::atomic<std::uint64_t> hi_{0};
};

/// Log2-bucketed histogram of u64 samples (latencies in ns, sizes in
/// bytes): bucket b counts samples with bit_width == b.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void record(std::uint64_t v) noexcept {
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  /// Upper bound of the bucket holding quantile q in [0, 1] (0 if empty).
  std::uint64_t quantile_bound(double q) const noexcept {
    const std::uint64_t n = count();
    if (n == 0) return 0;
    const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(n - 1));
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      seen += buckets_[b].load(std::memory_order_relaxed);
      if (seen > rank) {
        return b >= 63 ? UINT64_MAX : (std::uint64_t{1} << (b + 1)) - 1;
      }
    }
    return UINT64_MAX;
  }
  void reset() noexcept {
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  }

 private:
  static std::size_t bucket_of(std::uint64_t v) noexcept {
    std::size_t b = 0;
    while (v > 1) {
      v >>= 1;
      ++b;
    }
    return b;
  }
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> buckets_[kBuckets]{};
};

/// The process-wide registry. Members are the metric taxonomy (see
/// docs/observability.md for the name table surfaced through pcw::).
struct Registry {
  // sz codec pipeline
  Counter sz_bytes_in;         // raw bytes entering compress()
  Counter sz_bytes_out;        // container bytes leaving compress()
  Counter sz_blocks_encoded;   // blocks through quantize+huffman encode
  Counter sz_blocks_decoded;   // blocks entropy-decoded (full or region)
  Counter sz_temporal_blocks;  // encoded blocks that chose the temporal path
  Counter sz_outliers;         // unpredictable values stored verbatim
  Counter sz_huffman_symbols;  // symbols through the Huffman tables (probes)
  // h5 I/O + async queue
  Counter io_writes;
  Counter io_write_bytes;
  Counter io_reads;
  Counter io_read_bytes;
  Counter io_syncs;
  Counter io_write_retries;   // transient-failure retries on the async queue
  Counter io_async_enqueues;  // async_write/async_read submissions
  Gauge io_queue_depth;       // in-flight async ops (value + high-water)
  Histogram io_write_ns;      // per-pwrite latency
  // fault injection (util::fault): ops observed while a plan was armed
  Counter fault_writes;
  Counter fault_reads;
  Counter fault_syncs;
  Counter fault_fired;  // plans that actually fired
  // engine / series
  Counter engine_writes;        // write_fields calls
  Counter series_steps;         // SeriesWriter steps
  Counter chain_links_decoded;  // restart-chain links decoded
  Counter degraded_reads;       // keyframe fallbacks taken
  // store (the pcwd checkpoint-store service, src/store)
  Counter store_requests;         // protocol requests served
  Counter store_cache_hits;       // decoded-block cache hits
  Counter store_cache_misses;     // cache misses that became decodes
  Counter store_cache_evictions;  // entries evicted under the byte budget
  Counter store_coalesced;        // readers that joined an in-flight decode
  Counter store_write_batches;    // group commits admitting >=1 WRITE_STEP
  Gauge store_cache_bytes;        // bytes resident in the cache (+ hiwater)
  Gauge store_active_clients;     // connected clients (+ hiwater)

  static Registry& get() noexcept {
    static Registry r;
    return r;
  }
};

/// Plain-struct snapshot of every registry member (the internal mirror
/// of pcw::Telemetry).
struct Snapshot {
  std::uint64_t sz_bytes_in = 0;
  std::uint64_t sz_bytes_out = 0;
  std::uint64_t sz_blocks_encoded = 0;
  std::uint64_t sz_blocks_decoded = 0;
  std::uint64_t sz_temporal_blocks = 0;
  std::uint64_t sz_outliers = 0;
  std::uint64_t sz_huffman_symbols = 0;
  std::uint64_t io_writes = 0;
  std::uint64_t io_write_bytes = 0;
  std::uint64_t io_reads = 0;
  std::uint64_t io_read_bytes = 0;
  std::uint64_t io_syncs = 0;
  std::uint64_t io_write_retries = 0;
  std::uint64_t io_async_enqueues = 0;
  std::uint64_t io_queue_depth = 0;
  std::uint64_t io_queue_hiwater = 0;
  std::uint64_t io_write_p50_ns = 0;
  std::uint64_t io_write_p99_ns = 0;
  std::uint64_t fault_writes = 0;
  std::uint64_t fault_reads = 0;
  std::uint64_t fault_syncs = 0;
  std::uint64_t fault_fired = 0;
  std::uint64_t engine_writes = 0;
  std::uint64_t series_steps = 0;
  std::uint64_t chain_links_decoded = 0;
  std::uint64_t degraded_reads = 0;
  std::uint64_t store_requests = 0;
  std::uint64_t store_cache_hits = 0;
  std::uint64_t store_cache_misses = 0;
  std::uint64_t store_cache_evictions = 0;
  std::uint64_t store_coalesced = 0;
  std::uint64_t store_write_batches = 0;
  std::uint64_t store_cache_bytes = 0;
  std::uint64_t store_cache_hiwater = 0;
  std::uint64_t store_active_clients = 0;
  std::uint64_t store_clients_hiwater = 0;
  std::uint64_t trace_spans = 0;
  std::uint64_t trace_dropped = 0;
};

Snapshot snapshot();
void reset();

}  // namespace pcw::util::metrics
