// Deterministic pseudo-random number generation for workload synthesis.
//
// We deliberately avoid <random> engines for the hot generation paths:
// xoshiro256** is ~5x faster than std::mt19937_64, has a trivially
// serializable 256-bit state, and gives identical streams on every
// platform, which keeps every benchmark reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <cmath>

namespace pcw::util {

/// xoshiro256** 1.0 (Blackman & Vigna, public domain reference algorithm).
class Rng {
 public:
  /// Seeds the four 64-bit words via splitmix64 so that even small or
  /// sequential seeds produce well-mixed initial states.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of mantissa entropy.
  double uniform() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n) {
    // Lemire's multiply-shift rejection method: unbiased and branch-light.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Box-Muller (cached second variate).
  double normal() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = uniform();
    // Guard against log(0); uniform() can return exactly 0.
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 6.283185307179586476925286766559 * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Forks an independent stream; streams from distinct lanes do not collide
  /// in practice because the fork reseeds through splitmix64.
  Rng fork(std::uint64_t lane) { return Rng(next_u64() ^ (lane * 0xd1342543de82ef95ull)); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace pcw::util
