// Bit-granular serialization used by the Huffman codec.
//
// Both ends operate word-at-a-time: the writer accumulates into a 64-bit
// register and spills all whole bytes in one step, and the reader refills
// its register with a single unaligned 64-bit load instead of a byte
// loop. This is what keeps the compressor in the hundreds-of-MB/s range
// the paper's throughput model (Fig. 5) assumes.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace pcw::util {

class BitWriter {
 public:
  BitWriter() = default;

  /// Appends the low `nbits` bits of `bits` (LSB-first within the stream).
  /// nbits must be in [0, 57]; longer fields are split by callers.
  void put(std::uint64_t bits, int nbits) {
    assert(nbits >= 0 && nbits <= 57);
    assert(nbits == 64 || (bits >> nbits) == 0);
    acc_ |= bits << nbits_;
    nbits_ += nbits;
    if (nbits_ >= 8) spill();
  }

  /// Flushes the partial register and returns the finished byte stream.
  /// The writer is left empty and reusable.
  std::vector<std::uint8_t> finish();

  /// Number of bits written so far (excluding padding).
  std::size_t bit_count() const { return bytes_.size() * 8 + nbits_; }

  /// True when the stream holds whole bytes only (no partial register).
  bool byte_aligned() const { return nbits_ == 0; }

  /// Splices whole bytes into the stream. Caller must be byte_aligned();
  /// bulk encoders pack bits themselves and append the result here.
  void append_bytes(std::span<const std::uint8_t> b) {
    assert(nbits_ == 0);
    bytes_.insert(bytes_.end(), b.begin(), b.end());
  }

  void reserve_bytes(std::size_t n) { bytes_.reserve(n); }

 private:
  /// Moves every whole byte of the register into the stream.
  void spill();

  std::vector<std::uint8_t> bytes_;
  std::uint64_t acc_ = 0;
  int nbits_ = 0;
};

class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  /// Reads `nbits` bits (matching BitWriter::put order). nbits in [0, 57].
  std::uint64_t get(int nbits);

  /// Peeks up to `nbits` without consuming; bits past the end read as zero.
  std::uint64_t peek(int nbits);

  /// Consumes `nbits` previously peeked bits.
  void skip(int nbits);

  std::size_t bits_consumed() const { return bit_pos_; }
  bool exhausted() const { return bit_pos_ >= bytes_.size() * 8; }

  /// Bits left before the stream is exhausted (0 at and past the end).
  /// Lets batch decoders prove a fast-path step cannot read or skip past
  /// the end without consulting peek's zero-fill semantics.
  std::size_t bits_remaining() const {
    const std::size_t total = bytes_.size() * 8;
    return bit_pos_ >= total ? 0 : total - bit_pos_;
  }

 private:
  void refill();

  std::span<const std::uint8_t> bytes_;
  std::size_t byte_pos_ = 0;   // next byte to load into the register
  std::size_t bit_pos_ = 0;    // absolute bits consumed
  std::uint64_t acc_ = 0;      // register of loaded-but-unconsumed bits
  int avail_ = 0;              // valid bits in acc_
};

}  // namespace pcw::util
