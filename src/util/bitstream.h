// Bit-granular serialization used by the Huffman codec.
//
// The writer accumulates into a 64-bit register and spills whole bytes,
// so the per-symbol cost is one shift/or plus an occasional memcpy; this
// is what keeps the compressor in the hundreds-of-MB/s range the paper's
// throughput model (Fig. 5) assumes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace pcw::util {

class BitWriter {
 public:
  BitWriter() = default;

  /// Appends the low `nbits` bits of `bits` (LSB-first within the stream).
  /// nbits must be in [0, 57]; longer fields are split by callers.
  void put(std::uint64_t bits, int nbits);

  /// Flushes the partial register and returns the finished byte stream.
  /// The writer is left empty and reusable.
  std::vector<std::uint8_t> finish();

  /// Number of bits written so far (excluding padding).
  std::size_t bit_count() const { return bytes_.size() * 8 + nbits_; }

  void reserve_bytes(std::size_t n) { bytes_.reserve(n); }

 private:
  std::vector<std::uint8_t> bytes_;
  std::uint64_t acc_ = 0;
  int nbits_ = 0;
};

class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  /// Reads `nbits` bits (matching BitWriter::put order). nbits in [0, 57].
  std::uint64_t get(int nbits);

  /// Peeks up to `nbits` without consuming; bits past the end read as zero.
  std::uint64_t peek(int nbits);

  /// Consumes `nbits` previously peeked bits.
  void skip(int nbits);

  std::size_t bits_consumed() const { return bit_pos_; }
  bool exhausted() const { return bit_pos_ >= bytes_.size() * 8; }

 private:
  void refill();

  std::span<const std::uint8_t> bytes_;
  std::size_t byte_pos_ = 0;   // next byte to load into the register
  std::size_t bit_pos_ = 0;    // absolute bits consumed
  std::uint64_t acc_ = 0;      // register of loaded-but-unconsumed bits
  int avail_ = 0;              // valid bits in acc_
};

}  // namespace pcw::util
