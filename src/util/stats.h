// Small statistics toolkit used by the prediction models and benches.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace pcw::util {

double mean(std::span<const double> xs);
double variance(std::span<const double> xs);   // population variance
double stddev(std::span<const double> xs);
double median(std::span<const double> xs);

/// Linear-interpolated quantile, q in [0, 1]. Empty input returns 0.
double quantile(std::span<const double> xs, double q);

/// Pearson correlation coefficient; returns 0 when either side is constant.
double pearson(std::span<const double> xs, std::span<const double> ys);

struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;
};

/// Ordinary least squares y = slope*x + intercept.
LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys);

/// Mean absolute percentage error of predictions vs actuals, in [0, inf).
/// Pairs whose actual value is 0 are skipped.
double mape(std::span<const double> predicted, std::span<const double> actual);

/// Geometric mean; all inputs must be > 0.
double geomean(std::span<const double> xs);

}  // namespace pcw::util
