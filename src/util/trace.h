// Always-on tracing: RAII scoped spans with nanosecond steady-clock
// stamps, recorded into per-thread ring buffers and exported as Chrome
// trace-event JSON (chrome://tracing / Perfetto). Compiled into the
// library unconditionally but dormant until armed — every span site
// costs one relaxed atomic load when tracing is off, the same
// single-branch discipline util::fault proved out for the I/O hooks.
//
// Arming:
//   * programmatic: trace::start() (tests, benches, the pcw:: façade's
//     RuntimeOptions::with_trace knob);
//   * environment:  PCW_TRACE=<path>[:cap=<events-per-thread>] arms at
//     process start and flushes the JSON to <path> at exit.
//
// Recording is owner-thread lock-free: each thread appends to its own
// ring (oldest events overwritten on wrap; dropped() counts them) and
// publishes with one release store. The control plane — start/stop/
// clear/write_json — takes a mutex and expects span-quiescence: callers
// stop tracing (or drain their pools; parallel_for joins before
// returning) before exporting, which every in-tree user does.
//
// This header is also the one clock source for the repo: util::Timer,
// the bench harnesses, and the engine's phase reports all derive their
// wall time from trace::now_ns().
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace pcw::util::trace {

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// Nanoseconds on the process-wide steady clock (the single clock every
/// span, timer, and phase report in the repo is stamped with).
inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// The dormant check — one relaxed atomic load per span site.
inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// One completed span (or instant event, start_ns == end_ns). Name/cat/
/// arg_name must be string literals (static storage): events keep the
/// pointers, never copies.
struct Event {
  const char* name = nullptr;
  const char* cat = nullptr;
  const char* arg_name = nullptr;  // nullptr = no numeric argument
  std::uint64_t arg = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint32_t tid = 0;  // stable per-thread id, assigned at first record
};

/// Starts collecting spans. `events_per_thread` sizes each thread's ring
/// (0 = keep the current capacity, default 32768); rings wrap, dropping
/// oldest events. Idempotent; capacity changes apply to new rings only.
void start(std::size_t events_per_thread = 0);
/// Stops collecting (span sites go back to the one-load dormant path).
/// Recorded events are kept until clear() or the next write_json().
void stop();
/// Drops every recorded event and resets the recorded/dropped counters.
/// Control-plane: requires no spans in flight.
void clear();

/// Stops tracing and writes every recorded event as Chrome trace-event
/// JSON. Returns false if the file cannot be written. Events are kept
/// (write_json can run twice); clear() discards them.
bool write_json(const std::string& path);

/// The path the process-exit hook flushes to ("" = no exit flush). Set
/// by the PCW_TRACE environment variable or set_flush_path().
void set_flush_path(const std::string& path);
std::string flush_path();

/// Parses the PCW_TRACE grammar `<path>[:cap=<events-per-thread>]`.
/// Returns false (outputs untouched) on a spec that does not parse.
bool parse_spec(const char* spec, std::string* path_out, std::size_t* cap_out);

/// Total events recorded since the last clear() (including overwritten
/// ones) and how many of those were lost to ring wrap.
std::uint64_t recorded();
std::uint64_t dropped();

/// Copies out the currently buffered events (oldest-first per thread).
/// Control-plane: requires no spans in flight.
std::vector<Event> events();

/// Aggregate view: count and total duration per distinct (cat, name).
struct SpanStat {
  const char* name = nullptr;
  const char* cat = nullptr;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
};
std::vector<SpanStat> span_stats();

/// Records a completed span. Span sites normally go through Span /
/// StageTimer; call this directly only with enabled() already checked.
void record(const char* name, const char* cat, std::uint64_t start_ns,
            std::uint64_t end_ns, const char* arg_name, std::uint64_t arg);

/// Records a zero-duration instant event (queue handoffs, markers).
inline void instant(const char* name, const char* cat,
                    const char* arg_name = nullptr, std::uint64_t arg = 0) {
  if (enabled()) {
    const std::uint64_t t = now_ns();
    record(name, cat, t, t, arg_name, arg);
  }
}

/// RAII scoped span. Dormant cost: one relaxed load in the constructor
/// (and one in the destructor when armed-at-construction), no clock
/// reads, no allocation.
class Span {
 public:
  explicit Span(const char* name, const char* cat = "pcw") noexcept {
    if (enabled()) {
      name_ = name;
      cat_ = cat;
      start_ = now_ns();
    }
  }
  Span(const char* name, const char* cat, const char* arg_name,
       std::uint64_t arg) noexcept {
    if (enabled()) {
      name_ = name;
      cat_ = cat;
      arg_name_ = arg_name;
      arg_ = arg;
      start_ = now_ns();
    }
  }
  ~Span() {
    // Re-checking enabled() keeps late destructions from racing an
    // export that ran after stop().
    if (name_ != nullptr && enabled()) {
      record(name_, cat_, start_, now_ns(), arg_name_, arg_);
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches/updates the numeric argument (no-op when dormant).
  void set_arg(const char* arg_name, std::uint64_t arg) noexcept {
    if (name_ != nullptr) {
      arg_name_ = arg_name;
      arg_ = arg;
    }
  }

 private:
  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  const char* arg_name_ = nullptr;
  std::uint64_t arg_ = 0;
  std::uint64_t start_ = 0;
};

/// Phase timer: always measures (engine reports need the seconds whether
/// or not tracing is armed) and doubles as a span when it is. The
/// replacement for the ad-hoc `util::Timer phase; ... phase.seconds()`
/// idiom in the engines and bench harnesses.
class StageTimer {
 public:
  explicit StageTimer(const char* name, const char* cat = "engine") noexcept
      : name_(name), cat_(cat), start_(now_ns()) {}
  StageTimer(const char* name, const char* cat, const char* arg_name,
             std::uint64_t arg) noexcept
      : name_(name), cat_(cat), arg_name_(arg_name), arg_(arg), start_(now_ns()) {}
  ~StageTimer() {
    if (enabled()) record(name_, cat_, start_, now_ns(), arg_name_, arg_);
  }
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

  /// Elapsed seconds since construction.
  double seconds() const noexcept {
    return static_cast<double>(now_ns() - start_) * 1e-9;
  }

 private:
  const char* name_;
  const char* cat_;
  const char* arg_name_ = nullptr;
  std::uint64_t arg_ = 0;
  std::uint64_t start_;
};

}  // namespace pcw::util::trace
