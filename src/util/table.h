// Column-aligned plain-text table printer for bench output.
//
// Every bench binary reproduces one paper table/figure by printing rows;
// this keeps their formatting uniform and diff-friendly.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace pcw::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  Table& add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string fmt(double v, int precision = 3);
  /// Formats a byte count with binary-unit suffix (KiB/MiB/GiB).
  static std::string fmt_bytes(double bytes);

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pcw::util
