// Fixed-size work-queue thread pool.
//
// Used by h5lite's async I/O queue, by the pcw::sz block-parallel
// compressor (via the shared() instance + parallel_for), and by benches
// that pre-generate data. The pool is deliberately simple (single
// mutex-protected deque): tasks in this codebase are coarse (compress a
// block, write a partition), so queue contention is negligible against
// task cost.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace pcw::util {

class ThreadPool {
 public:
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Process-wide pool sized at hardware_concurrency, created on first
  /// use. Shared by parallel_for callers so every compress/decompress call
  /// reuses the same workers instead of spawning threads per call.
  static ThreadPool& shared();

  /// Enqueues a task; the returned future observes its completion/exception.
  template <typename F>
  std::future<void> submit(F&& fn) {
    auto task = std::make_shared<std::packaged_task<void()>>(std::forward<F>(fn));
    std::future<void> fut = task->get_future();
    {
      std::lock_guard lock(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Blocks until every queued and running task has finished.
  void wait_idle();

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  unsigned active_ = 0;
  bool stop_ = false;
};

/// Resolves a thread-count knob: 0 means "all hardware threads", anything
/// else is taken literally (minimum 1).
unsigned resolve_threads(unsigned requested);

/// Runs fn(0) .. fn(n-1) across up to `threads` workers (dynamic index
/// scheduling over ThreadPool::shared(); the calling thread participates).
/// threads <= 1 or n <= 1 degrades to a plain inline loop. Rethrows the
/// first exception any index raised, after all indices finished.
///
/// Must not be called from inside a shared()-pool task: the caller waits
/// on pool futures, so nesting can deadlock a fully-occupied pool.
template <typename Fn>
void parallel_for(std::size_t n, unsigned threads, Fn&& fn) {
  threads = resolve_threads(threads);
  if (threads <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const auto helpers = static_cast<unsigned>(
      std::min<std::size_t>(threads, n) - 1);
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  auto run_indices = [next, n, &fn] {
    for (std::size_t i = next->fetch_add(1, std::memory_order_relaxed); i < n;
         i = next->fetch_add(1, std::memory_order_relaxed)) {
      fn(i);
    }
  };
  std::vector<std::future<void>> futs;
  futs.reserve(helpers);
  for (unsigned t = 0; t < helpers; ++t) {
    futs.push_back(ThreadPool::shared().submit(run_indices));
  }
  std::exception_ptr first_error;
  try {
    run_indices();
  } catch (...) {
    first_error = std::current_exception();
    // Drain remaining indices so helper futures can finish.
    next->store(n, std::memory_order_relaxed);
  }
  for (auto& fut : futs) {
    try {
      fut.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace pcw::util
