// Fixed-size work-queue thread pool.
//
// Used by h5lite's async I/O queue and by benches that pre-generate data.
// The pool is deliberately simple (single mutex-protected deque): tasks in
// this codebase are coarse (compress a field, write a partition), so queue
// contention is negligible against task cost.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace pcw::util {

class ThreadPool {
 public:
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; the returned future observes its completion/exception.
  template <typename F>
  std::future<void> submit(F&& fn) {
    auto task = std::make_shared<std::packaged_task<void()>>(std::forward<F>(fn));
    std::future<void> fut = task->get_future();
    {
      std::lock_guard lock(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Blocks until every queued and running task has finished.
  void wait_idle();

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  unsigned active_ = 0;
  bool stop_ = false;
};

}  // namespace pcw::util
