# Resolve a GoogleTest to link the suites against, without assuming network
# access. Produces the interface target `pcw::gtest_main` and sets
# PCW_GTEST_KIND to one of: fetchcontent, system, shim.
#
# Resolution order (PCW_GTEST_PROVIDER=auto):
#   1. FetchContent — honours FETCHCONTENT_SOURCE_DIR_GOOGLETEST; when unset
#      we point it at /usr/src/googletest if the distro ships sources, and
#      otherwise probe the release tarball with file(DOWNLOAD) first so a
#      failed fetch degrades instead of aborting the configure.
#   2. An installed libgtest (find_package(GTest)).
#   3. The vendored single-header shim under tests/support/ — a minimal
#      gtest-compatible implementation so air-gapped runners still get a
#      working `ctest`.
#
# Force a specific provider with -DPCW_GTEST_PROVIDER=fetch|system|shim.

include(FetchContent)

if(POLICY CMP0135)
  # Stamp extracted FetchContent trees with extraction time (silences the
  # CMake >= 3.24 dev warning and rebuilds correctly if the URL changes).
  cmake_policy(SET CMP0135 NEW)
endif()

set(PCW_GTEST_PROVIDER "auto" CACHE STRING
    "GoogleTest provider: auto, fetch, system, or shim")
set_property(CACHE PCW_GTEST_PROVIDER PROPERTY STRINGS auto fetch system shim)

set(PCW_GTEST_KIND "")
set(_pcw_gtest_url
    "https://github.com/google/googletest/archive/refs/tags/v1.14.0.tar.gz")
set(_pcw_gtest_sha256
    "8ad598c73ad796e0d8280b082cebd82a630d73e73cd3c70057938a6501bba5d7")

if(PCW_GTEST_PROVIDER MATCHES "^(auto|fetch)$")
  if(NOT DEFINED FETCHCONTENT_SOURCE_DIR_GOOGLETEST
     AND EXISTS "/usr/src/googletest/CMakeLists.txt")
    set(FETCHCONTENT_SOURCE_DIR_GOOGLETEST "/usr/src/googletest"
        CACHE PATH "Local googletest sources (offline FetchContent)")
  endif()

  set(_pcw_gtest_fetchable FALSE)
  if(DEFINED FETCHCONTENT_SOURCE_DIR_GOOGLETEST)
    set(_pcw_gtest_fetchable TRUE)
    FetchContent_Declare(googletest URL "${_pcw_gtest_url}")
  else()
    # Probe the download ourselves: file(DOWNLOAD) reports failure in STATUS
    # instead of aborting the configure the way a failed FetchContent does.
    # EXPECTED_HASH both pins the archive (supply-chain) and revalidates a
    # previously cached file, so a corrupt download (captive portal, cut
    # connection) is re-fetched instead of poisoning every later configure.
    set(_pcw_gtest_tarball "${CMAKE_BINARY_DIR}/_deps/googletest-src.tar.gz")
    file(DOWNLOAD "${_pcw_gtest_url}" "${_pcw_gtest_tarball}"
         STATUS _pcw_dl_status TIMEOUT 30
         EXPECTED_HASH SHA256=${_pcw_gtest_sha256})
    list(GET _pcw_dl_status 0 _pcw_dl_code)
    if(NOT _pcw_dl_code EQUAL 0)
      file(REMOVE "${_pcw_gtest_tarball}")
    endif()
    if(EXISTS "${_pcw_gtest_tarball}")
      set(_pcw_gtest_fetchable TRUE)
      FetchContent_Declare(googletest URL "${_pcw_gtest_tarball}"
                           URL_HASH SHA256=${_pcw_gtest_sha256})
    endif()
  endif()

  if(_pcw_gtest_fetchable)
    set(BUILD_GMOCK OFF CACHE BOOL "" FORCE)
    set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
    set(gtest_force_shared_crt ON CACHE BOOL "" FORCE)
    FetchContent_MakeAvailable(googletest)
    add_library(pcw_gtest_main INTERFACE)
    target_link_libraries(pcw_gtest_main INTERFACE gtest gtest_main)
    set(PCW_GTEST_KIND "fetchcontent")
  elseif(PCW_GTEST_PROVIDER STREQUAL "fetch")
    message(FATAL_ERROR
      "PCW_GTEST_PROVIDER=fetch but googletest could not be fetched "
      "(no network, no FETCHCONTENT_SOURCE_DIR_GOOGLETEST, no /usr/src/googletest)")
  endif()
endif()

if(NOT PCW_GTEST_KIND AND PCW_GTEST_PROVIDER MATCHES "^(auto|system)$")
  find_package(GTest QUIET)
  if(GTest_FOUND)
    add_library(pcw_gtest_main INTERFACE)
    target_link_libraries(pcw_gtest_main INTERFACE GTest::gtest GTest::gtest_main)
    set(PCW_GTEST_KIND "system")
  elseif(PCW_GTEST_PROVIDER STREQUAL "system")
    message(FATAL_ERROR "PCW_GTEST_PROVIDER=system but no installed GTest found")
  endif()
endif()

if(NOT PCW_GTEST_KIND)
  # Vendored fallback: minimal gtest-compatible shim, always available.
  add_library(pcw_gtest_main STATIC
    "${CMAKE_SOURCE_DIR}/tests/support/gtest_shim_runtime.cc"
    "${CMAKE_SOURCE_DIR}/tests/support/gtest_shim_main.cc")
  target_include_directories(pcw_gtest_main PUBLIC
    "${CMAKE_SOURCE_DIR}/tests/support")
  set(PCW_GTEST_KIND "shim")
endif()

add_library(pcw::gtest_main ALIAS pcw_gtest_main)
message(STATUS "pcw: GoogleTest provider = ${PCW_GTEST_KIND}")
