# Shared warning/sanitizer interface target; every pcw target links
# pcw_options so the gate applies uniformly (third-party code — fetched
# googletest — stays outside it).
#
# Controlled by the cache options defined in the root CMakeLists.txt:
#   PCW_WERROR           promote warnings to errors (default ON)
#   PCW_SANITIZE         AddressSanitizer + UndefinedBehaviorSanitizer (default OFF)
#   PCW_SANITIZE_THREAD  ThreadSanitizer (default OFF; the block-parallel
#                        sz pipeline and the async h5 queue run under it in CI)

if(PCW_SANITIZE AND PCW_SANITIZE_THREAD)
  message(FATAL_ERROR "PCW_SANITIZE and PCW_SANITIZE_THREAD are mutually exclusive")
endif()

add_library(pcw_options INTERFACE)
target_compile_options(pcw_options INTERFACE -Wall -Wextra)
if(PCW_WERROR)
  target_compile_options(pcw_options INTERFACE -Werror)
endif()
if(PCW_SANITIZE)
  target_compile_options(pcw_options INTERFACE
    -fsanitize=address,undefined -fno-omit-frame-pointer)
  target_link_options(pcw_options INTERFACE -fsanitize=address,undefined)
endif()
if(PCW_SANITIZE_THREAD)
  target_compile_options(pcw_options INTERFACE
    -fsanitize=thread -fno-omit-frame-pointer)
  target_link_options(pcw_options INTERFACE -fsanitize=thread)
endif()
