# Shared warning/sanitizer interface target; every pcw target links
# pcw_options so the gate applies uniformly (third-party code — fetched
# googletest, system benchmark — stays outside it).
#
# Controlled by the cache options defined in the root CMakeLists.txt:
#   PCW_WERROR    promote warnings to errors (default ON)
#   PCW_SANITIZE  AddressSanitizer + UndefinedBehaviorSanitizer (default OFF)

add_library(pcw_options INTERFACE)
target_compile_options(pcw_options INTERFACE -Wall -Wextra)
if(PCW_WERROR)
  target_compile_options(pcw_options INTERFACE -Werror)
endif()
if(PCW_SANITIZE)
  target_compile_options(pcw_options INTERFACE
    -fsanitize=address,undefined -fno-omit-frame-pointer)
  target_link_options(pcw_options INTERFACE -fsanitize=address,undefined)
endif()
