// Round-trip property suite: for Lorenzo-predictable (smooth) fields of any
// rank, sz::compress -> sz::decompress must stay inside the configured error
// bound, preserve extents, and agree with what inspect() reports.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "data/noise.h"
#include "sz/compressor.h"
#include "sz/dims.h"
#include "util/rng.h"

namespace pcw {
namespace {

// Smooth fractal field: exactly the kind of spatially-correlated data the
// Lorenzo predictor is built for.
template <typename T>
std::vector<T> smooth_field(const sz::Dims& dims, std::uint64_t seed) {
  const data::ValueNoise3D noise(seed);
  std::vector<T> out(dims.count());
  std::size_t i = 0;
  for (std::size_t x = 0; x < dims.d0; ++x) {
    for (std::size_t y = 0; y < dims.d1; ++y) {
      for (std::size_t z = 0; z < dims.d2; ++z) {
        const double v = noise.fbm(0.07 * static_cast<double>(x),
                                   0.07 * static_cast<double>(y),
                                   0.07 * static_cast<double>(z), 4);
        out[i++] = static_cast<T>(100.0 * v);
      }
    }
  }
  return out;
}

// Same field with uncorrelated jitter mixed in, so a fraction of points
// falls outside the predictor's reach (exercises the outlier path).
template <typename T>
std::vector<T> jittered_field(const sz::Dims& dims, std::uint64_t seed,
                              double jitter) {
  std::vector<T> out = smooth_field<T>(dims, seed);
  util::Rng rng(seed ^ 0xfeedface);
  for (auto& v : out) {
    if (rng.uniform() < 0.05) {
      v += static_cast<T>(jitter * rng.normal());
    }
  }
  return out;
}

template <typename T>
double max_abs_err(std::span<const T> a, std::span<const T> b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::fabs(static_cast<double>(a[i]) -
                                      static_cast<double>(b[i])));
  }
  return worst;
}

struct RoundTripCase {
  sz::Dims dims;
  double error_bound;
  sz::ErrorBoundMode mode;
};

class RoundTripSweep : public ::testing::TestWithParam<RoundTripCase> {};

template <typename T>
void check_round_trip(const RoundTripCase& c, std::uint64_t seed,
                      double jitter) {
  const std::vector<T> orig =
      jitter > 0.0 ? jittered_field<T>(c.dims, seed, jitter)
                   : smooth_field<T>(c.dims, seed);
  sz::Params params;
  params.mode = c.mode;
  params.error_bound = c.error_bound;

  const std::span<const T> orig_span(orig);
  const auto blob = sz::compress<T>(orig_span, c.dims, params);
  const double bound = sz::resolve_error_bound<T>(orig_span, params);

  sz::Dims dims_out;
  const std::vector<T> recon = sz::decompress<T>(blob, &dims_out);
  ASSERT_EQ(recon.size(), orig.size());
  EXPECT_EQ(dims_out, c.dims);

  // The bound certified by the container header must match the resolved
  // one, and the reconstruction must honour it.
  const auto info = sz::inspect(blob);
  EXPECT_NEAR(info.abs_error_bound, bound, 1e-12 * std::max(1.0, bound));
  EXPECT_LE(max_abs_err(std::span<const T>(recon), orig_span), bound)
      << "dims " << c.dims.d0 << "x" << c.dims.d1 << "x" << c.dims.d2
      << " eb=" << c.error_bound;
}

TEST_P(RoundTripSweep, Float32WithinBound) {
  check_round_trip<float>(GetParam(), 1234, 0.0);
}

TEST_P(RoundTripSweep, Float64WithinBound) {
  check_round_trip<double>(GetParam(), 1234, 0.0);
}

TEST_P(RoundTripSweep, Float32WithOutliersWithinBound) {
  check_round_trip<float>(GetParam(), 987, 50.0);
}

TEST_P(RoundTripSweep, Float64WithOutliersWithinBound) {
  check_round_trip<double>(GetParam(), 987, 50.0);
}

INSTANTIATE_TEST_SUITE_P(
    DimsAndBounds, RoundTripSweep,
    ::testing::Values(
        // 1-D
        RoundTripCase{sz::Dims::make_1d(10000), 1e-1,
                      sz::ErrorBoundMode::kAbsolute},
        RoundTripCase{sz::Dims::make_1d(10000), 1e-3,
                      sz::ErrorBoundMode::kAbsolute},
        RoundTripCase{sz::Dims::make_1d(8191), 1e-3,
                      sz::ErrorBoundMode::kRelative},
        // 2-D
        RoundTripCase{sz::Dims::make_2d(96, 128), 1e-1,
                      sz::ErrorBoundMode::kAbsolute},
        RoundTripCase{sz::Dims::make_2d(96, 128), 1e-4,
                      sz::ErrorBoundMode::kAbsolute},
        RoundTripCase{sz::Dims::make_2d(61, 67), 1e-3,
                      sz::ErrorBoundMode::kRelative},
        // 3-D
        RoundTripCase{sz::Dims::make_3d(24, 32, 40), 1e-2,
                      sz::ErrorBoundMode::kAbsolute},
        RoundTripCase{sz::Dims::make_3d(24, 32, 40), 1e-5,
                      sz::ErrorBoundMode::kAbsolute},
        RoundTripCase{sz::Dims::make_3d(17, 19, 23), 1e-2,
                      sz::ErrorBoundMode::kRelative},
        // 3-D, large enough for a multi-slab container-v2 split
        RoundTripCase{sz::Dims::make_3d(40, 48, 48), 1e-3,
                      sz::ErrorBoundMode::kAbsolute}));

// Compression on smooth data must actually compress: the whole paper is
// moot if predictable fields don't shrink.
TEST(RoundTripProperty, SmoothFieldCompresses) {
  const auto dims = sz::Dims::make_3d(32, 32, 32);
  const auto orig = smooth_field<float>(dims, 7);
  sz::Params params;
  params.error_bound = 1e-2;
  const auto blob =
      sz::compress<float>(std::span<const float>(orig), dims, params);
  EXPECT_LT(blob.size(), orig.size() * sizeof(float) / 2);
}

// Degenerate extents: single point and single row still round-trip.
TEST(RoundTripProperty, DegenerateExtents) {
  for (const auto& dims :
       {sz::Dims::make_1d(1), sz::Dims::make_1d(2), sz::Dims::make_2d(1, 33),
        sz::Dims::make_3d(1, 1, 5)}) {
    const auto orig = smooth_field<double>(dims, 3);
    sz::Params params;
    params.error_bound = 1e-3;
    const auto blob =
        sz::compress<double>(std::span<const double>(orig), dims, params);
    sz::Dims dims_out;
    const auto recon = sz::decompress<double>(blob, &dims_out);
    ASSERT_EQ(recon.size(), orig.size());
    EXPECT_EQ(dims_out, dims);
    EXPECT_LE(max_abs_err(std::span<const double>(recon),
                          std::span<const double>(orig)),
              params.error_bound);
  }
}

}  // namespace
}  // namespace pcw
