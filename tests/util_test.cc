#include <gtest/gtest.h>

#include <future>
#include <sstream>
#include <thread>

#include "util/bitstream.h"
#include "util/histogram.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace pcw::util {
namespace {

// ---------------------------------------------------------------- Rng ----

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIndexCoversRangeUnbiased) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_index(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, n / 10, n / 10 * 0.15);
  }
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(13);
  std::vector<double> xs(50000);
  for (auto& x : xs) x = rng.normal();
  EXPECT_NEAR(mean(xs), 0.0, 0.02);
  EXPECT_NEAR(stddev(xs), 1.0, 0.02);
}

TEST(Rng, NormalWithParamsShiftsAndScales) {
  Rng rng(17);
  std::vector<double> xs(50000);
  for (auto& x : xs) x = rng.normal(10.0, 2.0);
  EXPECT_NEAR(mean(xs), 10.0, 0.05);
  EXPECT_NEAR(stddev(xs), 2.0, 0.05);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(42);
  Rng c = a.fork(1);
  Rng a2(42);
  // Fork consumed one draw from a; c must not replay a's stream.
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (c.next_u64() == a2.next_u64());
  EXPECT_LT(same, 2);
}

// ---------------------------------------------------------- BitStream ----

TEST(BitStream, RoundTripSingleBits) {
  BitWriter w;
  for (int i = 0; i < 64; ++i) w.put(static_cast<std::uint64_t>(i % 2), 1);
  const auto bytes = w.finish();
  BitReader r(bytes);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(r.get(1), static_cast<std::uint64_t>(i % 2));
}

TEST(BitStream, RoundTripMixedWidths) {
  Rng rng(5);
  std::vector<std::pair<std::uint64_t, int>> fields;
  BitWriter w;
  for (int i = 0; i < 5000; ++i) {
    const int nbits = 1 + static_cast<int>(rng.uniform_index(57));
    const std::uint64_t v = rng.next_u64() & (~0ull >> (64 - nbits));
    fields.emplace_back(v, nbits);
    w.put(v, nbits);
  }
  const auto bytes = w.finish();
  BitReader r(bytes);
  for (const auto& [v, nbits] : fields) EXPECT_EQ(r.get(nbits), v);
}

TEST(BitStream, BitCountTracksExactly) {
  BitWriter w;
  w.put(0b101, 3);
  EXPECT_EQ(w.bit_count(), 3u);
  w.put(0xffff, 16);
  EXPECT_EQ(w.bit_count(), 19u);
}

TEST(BitStream, PeekDoesNotConsume) {
  BitWriter w;
  w.put(0b1011001, 7);
  const auto bytes = w.finish();
  BitReader r(bytes);
  EXPECT_EQ(r.peek(7), 0b1011001u);
  EXPECT_EQ(r.peek(7), 0b1011001u);
  EXPECT_EQ(r.get(7), 0b1011001u);
}

TEST(BitStream, SkipAfterPeekAdvances) {
  BitWriter w;
  w.put(0b11, 2);
  w.put(0b01, 2);
  const auto bytes = w.finish();
  BitReader r(bytes);
  r.peek(2);
  r.skip(2);
  EXPECT_EQ(r.get(2), 0b01u);
}

TEST(BitStream, PeekPastEndReadsZero) {
  BitWriter w;
  w.put(1, 1);
  const auto bytes = w.finish();
  BitReader r(bytes);
  EXPECT_EQ(r.get(1), 1u);
  // Remaining padding bits are zero.
  EXPECT_EQ(r.peek(7), 0u);
}

TEST(BitStream, MaxWidthFieldsAcrossWordBoundaries) {
  // 57-bit fields keep the reader register maximally full, stressing the
  // word-at-a-time refill's accounting at every byte phase.
  Rng rng(9);
  std::vector<std::uint64_t> fields;
  BitWriter w;
  for (int i = 0; i < 300; ++i) {
    const std::uint64_t v = rng.next_u64() & (~0ull >> (64 - 57));
    fields.push_back(v);
    w.put(v, 57);
  }
  const auto bytes = w.finish();
  BitReader r(bytes);
  for (const auto v : fields) EXPECT_EQ(r.get(57), v);
}

TEST(BitStream, PeekNearEndOfLongStreamReadsZero) {
  // The word refill deposits a few unaccounted look-ahead bits; the
  // past-the-end contract (zeros) must survive them at the stream tail.
  BitWriter w;
  for (int i = 0; i < 9; ++i) w.put(0xffu, 8);
  const auto bytes = w.finish();
  BitReader r(bytes);
  EXPECT_EQ(r.get(57), ~0ull >> (64 - 57));
  EXPECT_EQ(r.get(15), 0x7fffu);  // 72 bits written in total
  EXPECT_EQ(r.peek(12), 0u);
  EXPECT_EQ(r.get(12), 0u);
}

TEST(BitStream, FinishResetsWriter) {
  BitWriter w;
  w.put(0xff, 8);
  auto first = w.finish();
  EXPECT_EQ(first.size(), 1u);
  w.put(0x0f, 4);
  auto second = w.finish();
  EXPECT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0], 0x0f);
}

// -------------------------------------------------------------- Stats ----

TEST(Stats, MeanMedianBasics) {
  const std::vector<double> xs{1, 2, 3, 4, 100};
  EXPECT_DOUBLE_EQ(mean(xs), 22.0);
  EXPECT_DOUBLE_EQ(median(xs), 3.0);
}

TEST(Stats, EmptyInputsAreSafe) {
  const std::vector<double> xs;
  EXPECT_EQ(mean(xs), 0.0);
  EXPECT_EQ(variance(xs), 0.0);
  EXPECT_EQ(quantile(xs, 0.5), 0.0);
  EXPECT_EQ(geomean(xs), 0.0);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> xs{0, 10};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 10.0);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> ys{2, 4, 6, 8};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  const std::vector<double> zs{8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, zs), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantSideIsZero) {
  const std::vector<double> xs{1, 2, 3};
  const std::vector<double> ys{5, 5, 5};
  EXPECT_EQ(pearson(xs, ys), 0.0);
}

TEST(Stats, LinearFitRecoversLine) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 * i - 7.0);
  }
  const auto fit = linear_fit(xs, ys);
  EXPECT_NEAR(fit.slope, 3.0, 1e-9);
  EXPECT_NEAR(fit.intercept, -7.0, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-9);
}

TEST(Stats, MapeSkipsZeroActuals) {
  const std::vector<double> pred{1.1, 5.0};
  const std::vector<double> act{1.0, 0.0};
  EXPECT_NEAR(mape(pred, act), 0.1, 1e-12);
}

TEST(Stats, GeomeanMatchesHandComputation) {
  const std::vector<double> xs{1.0, 4.0};
  EXPECT_NEAR(geomean(xs), 2.0, 1e-12);
}

// -------------------------------------------------------------- Table ----

TEST(Table, AlignsColumnsAndPrintsAllRows) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "2.5"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("2.5"), std::string::npos);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);  // header+rule+2 rows
}

TEST(Table, FmtRespectsPrecision) {
  EXPECT_EQ(Table::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(Table::fmt(2.0, 0), "2");
}

TEST(Table, FmtBytesPicksUnits) {
  EXPECT_EQ(Table::fmt_bytes(512), "512.00 B");
  EXPECT_EQ(Table::fmt_bytes(2048), "2.00 KiB");
  EXPECT_EQ(Table::fmt_bytes(3.5 * 1024 * 1024), "3.50 MiB");
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("only"), std::string::npos);
}

// --------------------------------------------------------- ThreadPool ----

TEST(ThreadPool, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 100; ++i) {
    futs.push_back(pool.submit([&count] { ++count; }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleBlocksUntilDrained) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 20; ++i) {
    pool.submit([&count] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ++count;
    });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPool, PropagatesExceptionsThroughFuture) {
  ThreadPool pool(1);
  auto fut = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, ZeroRequestedThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  auto fut = pool.submit([] {});
  fut.get();
}

// ---------------------------------------------------------- Histogram ----

TEST(Histogram, BinsAndClampsOutliers) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);    // bin 0
  h.add(9.5);    // bin 9
  h.add(-5.0);   // clamped to bin 0
  h.add(100.0);  // clamped to bin 9
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, FractionSumsToOne) {
  Histogram h(0.0, 1.0, 4);
  for (int i = 0; i < 100; ++i) h.add(i / 100.0);
  double sum = 0.0;
  for (std::size_t b = 0; b < h.bins(); ++b) sum += h.fraction(b);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Histogram, BinEdgesAreUniform) {
  Histogram h(2.0, 4.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.5);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 3.5);
}

TEST(Histogram, AsciiRendersOneLinePerBin) {
  Histogram h(0, 1, 5);
  h.add(0.1);
  const std::string art = h.ascii(20);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 5);
}

// -------------------------------------------------------------- Timer ----

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = t.seconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 5.0);
}

TEST(Timer, ResetRestartsClock) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  t.reset();
  EXPECT_LT(t.seconds(), 0.01);
}

}  // namespace
}  // namespace pcw::util
