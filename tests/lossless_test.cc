#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "sz/lossless.h"
#include "util/rng.h"

namespace pcw::sz {
namespace {

std::vector<std::uint8_t> round_trip(const std::vector<std::uint8_t>& input) {
  const auto packed = lz_compress(input);
  return lz_decompress(packed, input.size());
}

TEST(Lossless, EmptyInput) {
  const std::vector<std::uint8_t> empty;
  EXPECT_EQ(round_trip(empty), empty);
}

TEST(Lossless, SingleByte) {
  const std::vector<std::uint8_t> one{42};
  EXPECT_EQ(round_trip(one), one);
}

TEST(Lossless, ShortInputBelowMinMatch) {
  const std::vector<std::uint8_t> in{1, 2, 3};
  EXPECT_EQ(round_trip(in), in);
}

TEST(Lossless, AllZerosCollapses) {
  const std::vector<std::uint8_t> zeros(100000, 0);
  const auto packed = lz_compress(zeros);
  EXPECT_LT(packed.size(), zeros.size() / 50);  // long-run RLE regime
  EXPECT_EQ(lz_decompress(packed, zeros.size()), zeros);
}

TEST(Lossless, PeriodicPatternCollapses) {
  std::vector<std::uint8_t> input;
  for (int i = 0; i < 50000; ++i) input.push_back(static_cast<std::uint8_t>(i % 13));
  const auto packed = lz_compress(input);
  EXPECT_LT(packed.size(), input.size() / 20);
  EXPECT_EQ(lz_decompress(packed, input.size()), input);
}

TEST(Lossless, RandomDataDoesNotExplode) {
  util::Rng rng(1);
  std::vector<std::uint8_t> input(100000);
  for (auto& b : input) b = static_cast<std::uint8_t>(rng.next_u64());
  const auto packed = lz_compress(input);
  // Worst case: token overhead only.
  EXPECT_LT(packed.size(), input.size() + input.size() / 100 + 64);
  EXPECT_EQ(lz_decompress(packed, input.size()), input);
}

TEST(Lossless, OverlappingMatchReplication) {
  // "abcabcabc...": matches overlap their own output (offset < length).
  std::vector<std::uint8_t> input;
  for (int i = 0; i < 10000; ++i) input.push_back("abc"[i % 3]);
  EXPECT_EQ(round_trip(input), input);
}

TEST(Lossless, LongLiteralRunsUseExtendedLengths) {
  // > 15 literals forces the extended-length encoding path.
  util::Rng rng(2);
  std::vector<std::uint8_t> input(1000);
  for (auto& b : input) b = static_cast<std::uint8_t>(rng.next_u64());
  EXPECT_EQ(round_trip(input), input);
}

TEST(Lossless, LongMatchesUseExtendedLengths) {
  std::vector<std::uint8_t> input(5000, 7);  // one giant match
  EXPECT_EQ(round_trip(input), input);
}

TEST(Lossless, MatchesBeyondWindowAreNotUsed) {
  // A repeat separated by > 64 KiB cannot be referenced; output must still
  // round-trip (as literals or nearer matches).
  std::vector<std::uint8_t> input;
  util::Rng rng(3);
  std::vector<std::uint8_t> chunk(256);
  for (auto& b : chunk) b = static_cast<std::uint8_t>(rng.next_u64());
  input.insert(input.end(), chunk.begin(), chunk.end());
  std::vector<std::uint8_t> noise(70000);
  for (auto& b : noise) b = static_cast<std::uint8_t>(rng.next_u64());
  input.insert(input.end(), noise.begin(), noise.end());
  input.insert(input.end(), chunk.begin(), chunk.end());
  EXPECT_EQ(round_trip(input), input);
}

TEST(Lossless, DecompressRejectsWrongExpectedSize) {
  const std::vector<std::uint8_t> input{1, 2, 3, 4, 5, 6, 7, 8};
  const auto packed = lz_compress(input);
  EXPECT_THROW(lz_decompress(packed, input.size() + 1), std::runtime_error);
}

TEST(Lossless, DecompressRejectsTruncatedStream) {
  std::vector<std::uint8_t> input(1000, 9);
  auto packed = lz_compress(input);
  packed.resize(packed.size() / 2);
  EXPECT_THROW(lz_decompress(packed, input.size()), std::runtime_error);
}

TEST(Lossless, DecompressRejectsBadOffset) {
  // Hand-craft a sequence with an offset pointing before the start: token
  // 0x01 = 0 literals, match len 4+1, offset 7 with nothing decoded yet.
  const std::vector<std::uint8_t> bad{0x01, 0x07, 0x00};
  EXPECT_THROW(lz_decompress(bad, 100), std::runtime_error);
}

class LosslessSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LosslessSizeSweep, RoundTripsHuffmanLikePayload) {
  // Payload shaped like our real input: Huffman-coded quantization codes
  // (biased bytes with recurring short patterns) plus a raw float tail.
  const std::size_t n = GetParam();
  util::Rng rng(n * 31 + 7);
  std::vector<std::uint8_t> input(n);
  std::uint8_t prev = 0;
  for (auto& b : input) {
    b = rng.uniform() < 0.7 ? prev : static_cast<std::uint8_t>(rng.uniform_index(16));
    prev = b;
  }
  EXPECT_EQ(round_trip(input), input);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LosslessSizeSweep,
                         ::testing::Values(0, 1, 4, 5, 255, 256, 4096, 65535, 65536,
                                           1 << 20));

}  // namespace
}  // namespace pcw::sz
