// Region (hyperslab) reads at the sz layer: decompress_region must be
// byte-identical to slicing a full decode — across container versions,
// thread counts, and degenerate requests — and must decode *only* the
// blocks a v2 request touches (pinned via RegionDecodeStats).
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstring>
#include <span>
#include <stdexcept>
#include <vector>

#include "support/build_v1_blob.h"
#include "sz/blocks.h"
#include "sz/compressor.h"
#include "sz/dims.h"
#include "util/rng.h"

namespace pcw::sz {
namespace {

std::vector<float> smooth_field(const Dims& dims, std::uint64_t seed,
                                double noise = 0.01) {
  std::vector<float> data(dims.count());
  util::Rng rng(seed);
  std::size_t i = 0;
  for (std::size_t x = 0; x < dims.d0; ++x) {
    for (std::size_t y = 0; y < dims.d1; ++y) {
      for (std::size_t z = 0; z < dims.d2; ++z) {
        data[i++] = static_cast<float>(
            std::sin(0.13 * static_cast<double>(x)) *
                std::cos(0.09 * static_cast<double>(y)) +
            0.3 * std::sin(0.21 * static_cast<double>(z)) + noise * rng.normal());
      }
    }
  }
  return data;
}

/// Reference slice: the region cut out of a full decode.
std::vector<float> slice(const std::vector<float>& full, const Region& r,
                         const Dims& dims) {
  std::vector<float> out(r.count());
  for_each_region_row(r, dims, [&](std::size_t g, std::size_t len, std::size_t o) {
    std::memcpy(out.data() + o, full.data() + g, len * sizeof(float));
  });
  return out;
}

void expect_region_matches(std::span<const std::uint8_t> blob,
                           const std::vector<float>& full, const Region& r,
                           const Dims& dims) {
  for (const unsigned threads : {1u, 2u, 8u}) {
    const auto got = decompress_region<float>(blob, r, threads);
    const auto want = slice(full, r, dims);
    ASSERT_EQ(got.size(), want.size());
    if (!want.empty()) {
      EXPECT_EQ(0, std::memcmp(got.data(), want.data(), want.size() * sizeof(float)))
          << "region [" << r.lo[0] << "," << r.hi[0] << ")x[" << r.lo[1] << ","
          << r.hi[1] << ")x[" << r.lo[2] << "," << r.hi[2] << ") threads=" << threads;
    }
  }
}

// ---- dims.h helper units ---------------------------------------------------

TEST(DimsHelpers, ElementCountChecksOverflow) {
  EXPECT_EQ(element_count(Dims::make_3d(4, 5, 6)), 120u);
  const std::size_t big = std::size_t{1} << (sizeof(std::size_t) * 4);
  EXPECT_THROW(element_count(Dims{big, big, 2}), std::overflow_error);
}

TEST(DimsHelpers, StridesAndAxis) {
  const Dims d = Dims::make_3d(4, 5, 6);
  const auto st = strides_of(d);
  EXPECT_EQ(st[0], 30u);
  EXPECT_EQ(st[1], 6u);
  EXPECT_EQ(st[2], 1u);
  EXPECT_EQ(slowest_nonunit_axis(d), 0);
  EXPECT_EQ(slowest_nonunit_axis(Dims::make_2d(5, 6)), 1);
  EXPECT_EQ(slowest_nonunit_axis(Dims::make_1d(6)), 2);
  EXPECT_EQ(slowest_nonunit_axis(Dims{1, 1, 1}), 2);
}

TEST(DimsHelpers, ValidateAndClamp) {
  const Dims d = Dims::make_3d(4, 5, 6);
  EXPECT_NO_THROW(validate_region(Region::of(d), d));
  EXPECT_NO_THROW(validate_region(Region{{1, 1, 1}, {1, 1, 1}}, d));  // empty
  EXPECT_THROW(validate_region(Region{{2, 0, 0}, {1, 5, 6}}, d), std::invalid_argument);
  EXPECT_THROW(validate_region(Region{{0, 0, 0}, {4, 5, 7}}, d), std::invalid_argument);

  const Region clamped = clamp_region(Region{{2, 9, 3}, {9, 1, 9}}, d);
  EXPECT_NO_THROW(validate_region(clamped, d));
  EXPECT_EQ(clamped.lo[0], 2u);
  EXPECT_EQ(clamped.hi[0], 4u);
  EXPECT_TRUE(clamped.empty());  // y was inverted after clamping
}

TEST(DimsHelpers, IntersectAndCount) {
  const Region a{{0, 0, 0}, {4, 4, 4}};
  const Region b{{2, 2, 2}, {8, 8, 8}};
  const Region i = intersect(a, b);
  EXPECT_EQ(i, (Region{{2, 2, 2}, {4, 4, 4}}));
  EXPECT_EQ(i.count(), 8u);
  EXPECT_TRUE(intersect(a, Region{{4, 0, 0}, {5, 4, 4}}).empty());
}

TEST(DimsHelpers, CoveringRegionIsMinimalAndContiguous) {
  const Dims d = Dims::make_3d(4, 5, 6);
  // Multi-plane interval -> whole planes.
  EXPECT_EQ(covering_region(d, 7, 65), (Region{{0, 0, 0}, {3, 5, 6}}));
  // Single plane -> whole rows of that plane ([37,49) touches rows 1..3).
  EXPECT_EQ(covering_region(d, 37, 49), (Region{{1, 1, 0}, {2, 4, 6}}));
  // Single row -> the exact chunk.
  EXPECT_EQ(covering_region(d, 38, 41), (Region{{1, 1, 2}, {2, 2, 5}}));
  // Empty interval.
  EXPECT_TRUE(covering_region(d, 12, 12).empty());
  EXPECT_THROW(covering_region(d, 10, 9), std::invalid_argument);
  EXPECT_THROW(covering_region(d, 0, 121), std::invalid_argument);

  // Contiguity invariant: the covering box's flat range brackets the
  // interval and region_flat_lo addresses its buffer.
  const Region c = covering_region(d, 37, 49);
  EXPECT_LE(region_flat_lo(c, d), 37u);
  EXPECT_GE(region_flat_lo(c, d) + c.count(), 49u);
}

// ---- decompress_region property sweep --------------------------------------

struct RegionCase {
  Dims dims;
  std::uint64_t seed;
};

class RegionReadSweep : public ::testing::TestWithParam<RegionCase> {};

TEST_P(RegionReadSweep, MatchesSliceOfFullDecode) {
  const auto& [dims, seed] = GetParam();
  const std::vector<float> data = smooth_field(dims, seed);
  Params params;
  params.error_bound = 1e-3;
  const auto blob = compress<float>(data, dims, params);
  const auto full = decompress<float>(blob);

  // Degenerate requests first: full field, single element, empty box.
  expect_region_matches(blob, full, Region::of(dims), dims);
  expect_region_matches(blob, full,
                        Region{{dims.d0 / 2, dims.d1 / 2, dims.d2 / 2},
                               {dims.d0 / 2 + 1, dims.d1 / 2 + 1, dims.d2 / 2 + 1}},
                        dims);
  expect_region_matches(blob, full, Region{{0, 0, 0}, {0, dims.d1, dims.d2}}, dims);

  // Random boxes (deterministic; may be empty on some axes).
  util::Rng rng(seed ^ 0x9e3779b97f4a7c15ull);
  for (int i = 0; i < 12; ++i) {
    Region r;
    const std::array<std::size_t, 3> ext{dims.d0, dims.d1, dims.d2};
    for (int a = 0; a < 3; ++a) {
      const auto lo = static_cast<std::size_t>(rng.uniform_index(ext[a] + 1));
      const auto hi =
          lo + static_cast<std::size_t>(rng.uniform_index(ext[a] - lo + 1));
      r.lo[a] = lo;
      r.hi[a] = hi;
    }
    expect_region_matches(blob, full, r, dims);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RegionReadSweep,
    ::testing::Values(RegionCase{Dims::make_3d(128, 32, 32), 11},  // 4 blocks on d0
                      RegionCase{Dims::make_2d(512, 512), 12},     // 8 blocks on d1
                      RegionCase{Dims::make_1d(262144), 13},       // 8 blocks on d2
                      RegionCase{Dims::make_3d(16, 16, 16), 14})); // single block

// ---- block-decode accounting -----------------------------------------------

TEST(RegionRead, DecodesOnlyIntersectingBlocks) {
  // 128x32x32 -> exactly 4 slabs of 32 planes along d0.
  const Dims dims = Dims::make_3d(128, 32, 32);
  const std::vector<float> data = smooth_field(dims, 7);
  Params params;
  params.error_bound = 1e-3;
  const auto blob = compress<float>(data, dims, params);
  ASSERT_EQ(inspect(blob).block_count, 4u);
  const auto full = decompress<float>(blob);

  struct Pin {
    Region region;
    std::uint64_t expect_decoded;
  };
  const Pin pins[] = {
      {Region{{0, 0, 0}, {32, 32, 32}}, 1},     // exactly slab 0
      {Region{{31, 0, 0}, {33, 32, 32}}, 2},    // straddles slabs 0|1
      {Region{{64, 5, 9}, {65, 6, 10}}, 1},     // single element, slab 2
      {Region{{0, 0, 0}, {128, 32, 32}}, 4},    // full field
      {Region{{96, 0, 0}, {96, 32, 32}}, 0},    // empty selection
  };
  for (const Pin& pin : pins) {
    RegionDecodeStats stats;
    const auto got = decompress_region<float>(blob, pin.region, 2, &stats);
    EXPECT_TRUE(stats.used_block_index || pin.region.empty());
    EXPECT_EQ(stats.blocks_total, 4u);
    EXPECT_EQ(stats.blocks_decoded, pin.expect_decoded);
    const auto want = slice(full, pin.region, dims);
    ASSERT_EQ(got.size(), want.size());
    if (!want.empty()) {
      EXPECT_EQ(0, std::memcmp(got.data(), want.data(), want.size() * sizeof(float)));
    }
  }
}

TEST(RegionRead, LzPayloadStillSupportsPartialDecode) {
  // A near-constant field compresses far past the LZ-worthwhile gate.
  const Dims dims = Dims::make_3d(128, 32, 32);
  const std::vector<float> data = smooth_field(dims, 21, /*noise=*/0.0);
  Params params;
  params.error_bound = 0.05;
  const auto blob = compress<float>(data, dims, params);
  ASSERT_TRUE(inspect(blob).lz_applied);

  const auto full = decompress<float>(blob);
  const Region r{{40, 3, 0}, {71, 30, 32}};
  RegionDecodeStats stats;
  const auto got = decompress_region<float>(blob, r, 1, &stats);
  EXPECT_TRUE(stats.used_block_index);
  EXPECT_LT(stats.blocks_decoded, stats.blocks_total);
  const auto want = slice(full, r, dims);
  ASSERT_EQ(got.size(), want.size());
  EXPECT_EQ(0, std::memcmp(got.data(), want.data(), want.size() * sizeof(float)));
}

// ---- v1 fallback -----------------------------------------------------------

TEST(RegionRead, V1BlobFallsBackToFullDecodeAndSlice) {
  const Dims dims = Dims::make_3d(64, 32, 32);
  const std::vector<float> data = smooth_field(dims, 31);
  const auto v1 = testsupport::build_v1_blob(data, dims, 1e-3, 32768);
  ASSERT_EQ(inspect(v1).version, 1u);
  const auto full = decompress<float>(v1);

  const Region regions[] = {
      Region::of(dims),
      Region{{10, 4, 7}, {20, 30, 21}},
      Region{{63, 31, 31}, {64, 32, 32}},
  };
  for (const Region& r : regions) {
    RegionDecodeStats stats;
    const auto got = decompress_region<float>(v1, r, 4, &stats);
    EXPECT_FALSE(stats.used_block_index);
    EXPECT_EQ(stats.blocks_total, 1u);
    EXPECT_EQ(stats.blocks_decoded, 1u);
    const auto want = slice(full, r, dims);
    ASSERT_EQ(got.size(), want.size());
    EXPECT_EQ(0, std::memcmp(got.data(), want.data(), want.size() * sizeof(float)));
  }
}

// ---- malformed requests ----------------------------------------------------

TEST(RegionRead, MalformedRequestsThrow) {
  const Dims dims = Dims::make_3d(64, 16, 16);
  const std::vector<float> data = smooth_field(dims, 41);
  Params params;
  params.error_bound = 1e-3;
  const auto v2 = compress<float>(data, dims, params);
  const auto v1 = testsupport::build_v1_blob(data, dims, 1e-3, 32768);

  for (const auto* blob : {&v2, &v1}) {
    // Inverted lo/hi.
    EXPECT_THROW(decompress_region<float>(*blob, Region{{5, 0, 0}, {4, 16, 16}}),
                 std::invalid_argument);
    // Out of bounds.
    EXPECT_THROW(decompress_region<float>(*blob, Region{{0, 0, 0}, {65, 16, 16}}),
                 std::invalid_argument);
    EXPECT_THROW(decompress_region<float>(*blob, Region{{0, 0, 16}, {64, 16, 17}}),
                 std::invalid_argument);
    // Element-type mismatch is a runtime (container) error.
    EXPECT_THROW(decompress_region<double>(*blob, Region{{0, 0, 0}, {1, 1, 1}}),
                 std::runtime_error);
  }
}

// ---- block index inspection ------------------------------------------------

TEST(RegionRead, InspectBlocksMatchesHeaderTotals) {
  const Dims dims = Dims::make_3d(128, 32, 32);
  const std::vector<float> data = smooth_field(dims, 51);
  Params params;
  params.error_bound = 1e-3;
  const auto blob = compress<float>(data, dims, params);
  const HeaderInfo info = inspect(blob);

  const auto blocks = inspect_blocks(blob);
  ASSERT_EQ(blocks.size(), info.block_count);
  std::uint64_t elems = 0, outliers = 0, stored = 0;
  for (const BlockInfo& b : blocks) {
    EXPECT_GT(b.elem_count, 0u);
    elems += b.elem_count;
    outliers += b.outlier_count;
    stored += b.stored_bytes(sizeof(float));
  }
  EXPECT_EQ(elems, dims.count());
  EXPECT_EQ(outliers, info.outlier_count);
  // Per-block stored bytes plus the shared codebook account for the whole
  // pre-LZ payload.
  EXPECT_LE(stored, info.payload_raw_size);

  // v1 synthesizes a single whole-field entry.
  const auto v1 = testsupport::build_v1_blob(data, dims, 1e-3, 32768);
  const auto v1_blocks = inspect_blocks(v1);
  ASSERT_EQ(v1_blocks.size(), 1u);
  EXPECT_EQ(v1_blocks[0].elem_count, dims.count());
}

}  // namespace
}  // namespace pcw::sz
