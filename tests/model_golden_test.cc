// Golden-value regression suite for the prediction models.
//
// Pins model::RatioModel estimates on fixed xoshiro-seeded fields and the
// kDefaultRspace-driven extra-space policy to exact expected values, so a
// future perf refactor that silently changes model output fails loudly here.
// The golden constants were captured from the bootstrap build (g++ 12,
// RelWithDebInfo); they are pure function-of-seed outputs, so any drift is a
// behaviour change, not noise.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "data/noise.h"
#include "model/extra_space.h"
#include "model/ratio_model.h"
#include "sz/compressor.h"
#include "sz/dims.h"
#include "util/rng.h"

namespace pcw {
namespace {

constexpr double kTol = 1e-9;

// Deterministic smooth field from the fixed seed; identical on every
// platform because ValueNoise3D and Rng are integer-seeded and portable.
std::vector<float> golden_field(const sz::Dims& dims, std::uint64_t seed) {
  const data::ValueNoise3D noise(seed);
  util::Rng rng(seed * 2654435761u);
  std::vector<float> out(dims.count());
  std::size_t i = 0;
  for (std::size_t x = 0; x < dims.d0; ++x) {
    for (std::size_t y = 0; y < dims.d1; ++y) {
      for (std::size_t z = 0; z < dims.d2; ++z) {
        const double v = noise.fbm(0.11 * static_cast<double>(x),
                                   0.11 * static_cast<double>(y),
                                   0.11 * static_cast<double>(z), 3);
        out[i++] = static_cast<float>(40.0 * v + 0.5 * rng.normal());
      }
    }
  }
  return out;
}

struct RatioGolden {
  std::uint64_t seed;
  double error_bound;
  double bit_rate;
  double ratio;
  double outlier_fraction;
  std::size_t sampled_points;
};

// Captured with the generator above on dims 32x32x32, default model config.
const RatioGolden kRatioGoldens[] = {
    {42, 1e-1, 5.192138671875, 6.1631635867776371, 0.0, 1024},
    {42, 1e-2, 8.37890625, 3.8191142191142191, 0.0, 1024},
    {7, 1e-3, 10.359375, 3.0889894419306185, 0.0, 1024},
};

TEST(ModelGolden, RatioModelEstimatesArePinned) {
  const auto dims = sz::Dims::make_3d(32, 32, 32);
  for (const auto& g : kRatioGoldens) {
    const auto field = golden_field(dims, g.seed);
    sz::Params params;
    params.error_bound = g.error_bound;
    const auto est = model::estimate_ratio<float>(std::span<const float>(field),
                                                  dims, params);
    EXPECT_NEAR(est.bit_rate, g.bit_rate, kTol)
        << "seed=" << g.seed << " eb=" << g.error_bound;
    EXPECT_NEAR(est.ratio, g.ratio, kTol)
        << "seed=" << g.seed << " eb=" << g.error_bound;
    EXPECT_NEAR(est.outlier_fraction, g.outlier_fraction, kTol)
        << "seed=" << g.seed << " eb=" << g.error_bound;
    EXPECT_EQ(est.sampled_points, g.sampled_points)
        << "seed=" << g.seed << " eb=" << g.error_bound;
  }
}

struct RspaceGolden {
  double predicted_ratio;
  double effective;
  double reserved;
};

// effective_rspace / reserved_bytes under kDefaultRspace for 1 MiB of
// predicted compressed size, spanning the Eq. (3) regime change at 32x.
const RspaceGolden kRspaceGoldens[] = {
    {4.0, 1.25, 1310720.0},
    {16.0, 1.25, 1310720.0},
    {31.999, 1.25, 1310720.0},
    {32.001, 2.0, 2097152.0},
    {64.0, 2.0, 2097152.0},
    {200.0, 2.0, 2097152.0},
};

TEST(ModelGolden, DefaultRspaceExtraSpaceIsPinned) {
  const double predicted_bytes = 1048576.0;
  for (const auto& g : kRspaceGoldens) {
    EXPECT_NEAR(model::effective_rspace(model::kDefaultRspace, g.predicted_ratio),
                g.effective, kTol)
        << "ratio=" << g.predicted_ratio;
    EXPECT_NEAR(model::reserved_bytes(predicted_bytes, g.predicted_ratio,
                                      model::kDefaultRspace),
                g.reserved, kTol)
        << "ratio=" << g.predicted_ratio;
  }
}

struct WeightGolden {
  double weight;
  double rspace;
};

// Fig. 9 mapping at representative preference weights.
const WeightGolden kWeightGoldens[] = {
    {0.0, 1.1},
    {0.25, 1.2650000000000001},
    {0.5, 1.3333452377915607},
    {0.75, 1.3857883832488647},
    {1.0, 1.43},
};

TEST(ModelGolden, RspaceForWeightIsPinned) {
  for (const auto& g : kWeightGoldens) {
    EXPECT_NEAR(model::rspace_for_weight(g.weight), g.rspace, kTol)
        << "w=" << g.weight;
  }
}

// The boundary constants themselves are part of the contract.
TEST(ModelGolden, RspaceConstants) {
  EXPECT_DOUBLE_EQ(model::kMinRspace, 1.1);
  EXPECT_DOUBLE_EQ(model::kMaxRspace, 1.43);
  EXPECT_DOUBLE_EQ(model::kDefaultRspace, 1.25);
  EXPECT_DOUBLE_EQ(model::rspace_for_weight(0.0), model::kMinRspace);
  EXPECT_DOUBLE_EQ(model::rspace_for_weight(1.0), model::kMaxRspace);
}

}  // namespace
}  // namespace pcw
