#include <gtest/gtest.h>

#include <vector>

#include "sz/huffman.h"
#include "util/bitstream.h"
#include "util/rng.h"

namespace pcw::sz {
namespace {

// Encodes `stream` with a codebook built from its own frequencies, then
// decodes via serialized-codebook reconstruction.
std::vector<std::uint32_t> round_trip(const std::vector<std::uint32_t>& stream) {
  std::vector<std::uint64_t> counts;
  for (const auto s : stream) {
    if (s >= counts.size()) counts.resize(s + 1, 0);
    ++counts[s];
  }
  std::vector<SymbolCount> freqs;
  for (std::uint32_t s = 0; s < counts.size(); ++s) {
    if (counts[s] > 0) freqs.push_back({s, counts[s]});
  }
  HuffmanEncoder enc(freqs);
  util::BitWriter w;
  for (const auto s : stream) enc.encode(s, w);
  const auto bits = w.finish();
  const auto book = enc.serialize_codebook();

  std::size_t consumed = 0;
  HuffmanDecoder dec(book, &consumed);
  EXPECT_EQ(consumed, book.size());
  util::BitReader r(bits);
  std::vector<std::uint32_t> out;
  out.reserve(stream.size());
  for (std::size_t i = 0; i < stream.size(); ++i) out.push_back(dec.decode(r));
  return out;
}

TEST(Huffman, RoundTripTwoSymbols) {
  const std::vector<std::uint32_t> stream{0, 1, 0, 0, 1, 1, 1, 0};
  EXPECT_EQ(round_trip(stream), stream);
}

TEST(Huffman, RoundTripSingleSymbolStream) {
  const std::vector<std::uint32_t> stream(100, 42);
  EXPECT_EQ(round_trip(stream), stream);
}

TEST(Huffman, RoundTripSparseHighSymbols) {
  // Quantization codes cluster near the radius; exercise sparse symbols.
  std::vector<std::uint32_t> stream;
  for (int i = 0; i < 500; ++i) stream.push_back(32768 + (i % 7) - 3);
  stream.push_back(0);  // outlier marker far from the cluster
  stream.push_back(65535);
  EXPECT_EQ(round_trip(stream), stream);
}

TEST(Huffman, SkewedDistributionCompressesNearEntropy) {
  // 90/10 split: entropy ~0.47 bits/symbol; Huffman gives 1 bit/symbol.
  util::Rng rng(3);
  std::vector<std::uint32_t> stream;
  for (int i = 0; i < 20000; ++i) stream.push_back(rng.uniform() < 0.9 ? 5 : 9);
  std::vector<SymbolCount> freqs{{5, 18000}, {9, 2000}};
  HuffmanEncoder enc(freqs);
  util::BitWriter w;
  for (const auto s : stream) enc.encode(s, w);
  EXPECT_LE(w.bit_count(), stream.size() + 8);  // ~1 bit/symbol
  EXPECT_EQ(round_trip(stream), stream);
}

TEST(Huffman, FrequentSymbolsGetShorterCodes) {
  std::vector<SymbolCount> freqs{{1, 1000}, {2, 100}, {3, 10}, {4, 1}};
  const auto lengths = huffman_code_lengths(freqs);
  EXPECT_LE(lengths[0], lengths[1]);
  EXPECT_LE(lengths[1], lengths[2]);
  EXPECT_LE(lengths[2], lengths[3]);
}

TEST(Huffman, KraftInequalityHolds) {
  util::Rng rng(17);
  std::vector<SymbolCount> freqs;
  for (std::uint32_t s = 0; s < 200; ++s) {
    freqs.push_back({s, rng.uniform_index(1000) + 1});
  }
  const auto lengths = huffman_code_lengths(freqs);
  double kraft = 0.0;
  for (const auto len : lengths) {
    ASSERT_GT(len, 0);
    kraft += std::pow(2.0, -static_cast<double>(len));
  }
  // A full binary code tree satisfies Kraft with equality.
  EXPECT_NEAR(kraft, 1.0, 1e-9);
}

TEST(Huffman, CostBitsMatchesActualEncoding) {
  std::vector<SymbolCount> freqs{{10, 500}, {11, 300}, {12, 150}, {13, 50}};
  HuffmanEncoder enc(freqs);
  util::BitWriter w;
  for (const auto& f : freqs) {
    for (std::uint64_t i = 0; i < f.count; ++i) enc.encode(f.symbol, w);
  }
  EXPECT_EQ(enc.cost_bits(freqs), w.bit_count());
}

TEST(Huffman, EmptyFrequencyTableYieldsEmptyBook) {
  std::vector<SymbolCount> freqs;
  HuffmanEncoder enc(freqs);
  EXPECT_EQ(enc.distinct_symbols(), 0u);
}

TEST(Huffman, ZeroCountEntriesIgnored) {
  std::vector<SymbolCount> freqs{{1, 100}, {2, 0}, {3, 100}};
  HuffmanEncoder enc(freqs);
  EXPECT_EQ(enc.distinct_symbols(), 2u);
}

TEST(Huffman, PathologicalFibonacciCountsStayBounded) {
  // Fibonacci-like frequencies build maximally deep trees; the flattening
  // fallback must keep codes <= 56 bits.
  std::vector<SymbolCount> freqs;
  std::uint64_t a = 1, b = 1;
  for (std::uint32_t s = 0; s < 80; ++s) {
    freqs.push_back({s, a});
    const std::uint64_t next = a + b;
    a = b;
    b = next;
    if (b > (1ull << 62)) break;
  }
  const auto lengths = huffman_code_lengths(freqs);
  for (const auto len : lengths) EXPECT_LE(len, 56);
}

TEST(Huffman, DecoderRejectsTruncatedCodebook) {
  std::vector<SymbolCount> freqs{{1, 10}, {2, 20}};
  HuffmanEncoder enc(freqs);
  auto book = enc.serialize_codebook();
  book.resize(book.size() - 1);
  std::size_t consumed = 0;
  EXPECT_THROW(HuffmanDecoder(book, &consumed), std::runtime_error);
}

TEST(Huffman, DecoderRejectsInvalidBitstream) {
  // Codebook covering only part of the bit space: an all-ones stream that
  // never matches a codeword must throw, not loop.
  std::vector<SymbolCount> freqs{{1, 3}, {2, 2}, {3, 1}};
  HuffmanEncoder enc(freqs);
  const auto book = enc.serialize_codebook();
  std::size_t consumed = 0;
  HuffmanDecoder dec(book, &consumed);
  // Find a prefix that is not a valid codeword by brute force; with 3
  // symbols of lengths (1,2,2) every 2-bit pattern is valid, so extend the
  // alphabet instead.
  std::vector<SymbolCount> freqs2{{1, 8}, {2, 4}, {3, 2}, {4, 1}, {5, 1}};
  HuffmanEncoder enc2(freqs2);
  std::size_t consumed2 = 0;
  HuffmanDecoder dec2(enc2.serialize_codebook(), &consumed2);
  // lengths are (1,2,3,4,4): pattern 1111...: follow 0/1 assignment; at
  // least decoding a random long stream must either produce symbols or
  // throw — never hang. We assert termination by bounded decode count.
  std::vector<std::uint8_t> junk(64, 0xff);
  util::BitReader r(junk);
  int produced = 0;
  try {
    for (int i = 0; i < 1000; ++i) {
      dec2.decode(r);
      ++produced;
    }
  } catch (const std::runtime_error&) {
    SUCCEED();
    return;
  }
  EXPECT_LE(produced, 1000);
}

TEST(Huffman, RoundTripDeepCodes) {
  // Fibonacci-ish counts force code lengths well past the level-1 table
  // (11 bits) and past the level-2 reach (26 bits), exercising the
  // subtable and canonical fallback paths of the table-driven decoder.
  // The codebook is built from these skewed counts directly (the encoded
  // stream itself is near-uniform so every depth gets hit).
  std::vector<SymbolCount> freqs;
  std::uint64_t a = 1, b = 1;
  for (std::uint32_t s = 0; s < 30; ++s) {
    freqs.push_back({s, a});
    const std::uint64_t next = a + b;
    a = b;
    b = next;
  }
  const HuffmanEncoder enc(freqs);
  ASSERT_GT(enc.max_code_length(), 26) << "fixture no longer reaches the slow path";

  std::vector<std::uint32_t> stream;
  for (std::uint32_t s = 0; s < freqs.size(); ++s) {
    for (int k = 0; k < 3; ++k) stream.push_back(s);
    stream.push_back(static_cast<std::uint32_t>(freqs.size()) - 1 - s);
  }
  util::BitWriter w;
  for (const auto s : stream) enc.encode(s, w);
  const auto bits = w.finish();

  std::size_t consumed = 0;
  const HuffmanDecoder dec(enc.serialize_codebook(), &consumed);
  util::BitReader r(bits);
  std::vector<std::uint32_t> out;
  for (std::size_t i = 0; i < stream.size(); ++i) out.push_back(dec.decode(r));
  EXPECT_EQ(out, stream);
}

class HuffmanRandomRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(HuffmanRandomRoundTrip, RoundTripsRandomAlphabet) {
  const int alphabet = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(alphabet) * 977);
  std::vector<std::uint32_t> stream;
  // Zipf-ish skew: symbol ~ floor(alphabet * u^3).
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    stream.push_back(static_cast<std::uint32_t>(u * u * u * alphabet));
  }
  EXPECT_EQ(round_trip(stream), stream);
}

INSTANTIATE_TEST_SUITE_P(AlphabetSizes, HuffmanRandomRoundTrip,
                         ::testing::Values(2, 3, 16, 100, 1000, 65536));

}  // namespace
}  // namespace pcw::sz
