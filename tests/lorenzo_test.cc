#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sz/lorenzo.h"
#include "util/rng.h"

namespace pcw::sz {
namespace {

template <typename T>
std::vector<T> round_trip(const std::vector<T>& data, const Dims& dims, double eb,
                          std::uint32_t radius = 32768) {
  const auto q = lorenzo_quantize<T>(data, dims, eb, radius);
  std::vector<T> out(data.size());
  lorenzo_dequantize<T>(q.codes, q.outliers, dims, eb, radius, out);
  return out;
}

template <typename T>
double max_abs_err(const std::vector<T>& a, const std::vector<T>& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(static_cast<double>(a[i]) - static_cast<double>(b[i])));
  }
  return m;
}

std::vector<float> smooth_3d(std::size_t n, std::uint64_t seed) {
  std::vector<float> data(n * n * n);
  util::Rng rng(seed);
  for (std::size_t x = 0; x < n; ++x) {
    for (std::size_t y = 0; y < n; ++y) {
      for (std::size_t z = 0; z < n; ++z) {
        data[(x * n + y) * n + z] = static_cast<float>(
            std::sin(0.11 * static_cast<double>(x)) *
                std::cos(0.07 * static_cast<double>(y)) +
            0.4 * std::sin(0.19 * static_cast<double>(z)) + 0.01 * rng.normal());
      }
    }
  }
  return data;
}

TEST(Lorenzo, BoundHolds3DSmooth) {
  const auto data = smooth_3d(24, 5);
  const Dims dims = Dims::make_3d(24, 24, 24);
  for (const double eb : {1e-1, 1e-3, 1e-6}) {
    EXPECT_LE(max_abs_err(data, round_trip(data, dims, eb)), eb) << "eb=" << eb;
  }
}

TEST(Lorenzo, BoundHolds1D) {
  util::Rng rng(7);
  std::vector<float> data(10000);
  double v = 0.0;
  for (auto& x : data) {
    v += rng.normal() * 0.1;
    x = static_cast<float>(v);
  }
  const Dims dims = Dims::make_1d(data.size());
  for (const double eb : {1e-2, 1e-4}) {
    EXPECT_LE(max_abs_err(data, round_trip(data, dims, eb)), eb);
  }
}

TEST(Lorenzo, BoundHolds2D) {
  const std::size_t n = 64;
  std::vector<float> data(n * n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      data[r * n + c] = static_cast<float>(std::sin(0.2 * static_cast<double>(r)) +
                                           std::cos(0.3 * static_cast<double>(c)));
    }
  }
  const Dims dims = Dims::make_2d(n, n);
  EXPECT_LE(max_abs_err(data, round_trip(data, dims, 1e-3)), 1e-3);
}

TEST(Lorenzo, BoundHoldsOnWhiteNoise) {
  // Worst case for the predictor: nothing is predictable well, yet the
  // bound must still hold (via large quantization codes or outliers).
  util::Rng rng(11);
  std::vector<float> data(4096);
  for (auto& x : data) x = static_cast<float>(rng.normal() * 100.0);
  const Dims dims = Dims::make_1d(data.size());
  EXPECT_LE(max_abs_err(data, round_trip(data, dims, 1e-3)), 1e-3);
}

TEST(Lorenzo, BoundHoldsDouble) {
  util::Rng rng(13);
  std::vector<double> data(20 * 20 * 20);
  for (auto& x : data) x = rng.normal();
  const Dims dims = Dims::make_3d(20, 20, 20);
  EXPECT_LE(max_abs_err(data, round_trip(data, dims, 1e-9)), 1e-9);
}

TEST(Lorenzo, ConstantDataProducesSingleDominantCode) {
  const std::vector<float> data(1000, 3.5f);
  const Dims dims = Dims::make_1d(1000);
  const auto q = lorenzo_quantize<float>(data, dims, 1e-3, 32768);
  EXPECT_TRUE(q.outliers.empty());
  // After the first element every residual is 0 => code == radius.
  std::size_t zero_codes = 0;
  for (const auto c : q.codes) zero_codes += (c == 32768);
  EXPECT_GE(zero_codes, q.codes.size() - 1);
}

TEST(Lorenzo, SmallRadiusForcesOutliers) {
  // Radius 2 codes residuals in {-1, 0, +1} quanta only; jumps become
  // outliers but the round trip stays exact-within-bound.
  std::vector<float> data(500);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = (i % 50 == 0) ? 1000.0f : 0.0f;
  }
  const Dims dims = Dims::make_1d(data.size());
  const auto q = lorenzo_quantize<float>(data, dims, 1e-3, 2);
  EXPECT_GT(q.outliers.size(), 0u);
  std::vector<float> out(data.size());
  lorenzo_dequantize<float>(q.codes, q.outliers, dims, 1e-3, 2, out);
  EXPECT_LE(max_abs_err(data, out), 1e-3);
}

TEST(Lorenzo, OutlierValuesStoredVerbatim) {
  std::vector<float> data{0.0f, 1e30f, 0.0f, -1e30f};
  const Dims dims = Dims::make_1d(4);
  const auto q = lorenzo_quantize<float>(data, dims, 1e-6, 256);
  std::vector<float> out(4);
  lorenzo_dequantize<float>(q.codes, q.outliers, dims, 1e-6, 256, out);
  EXPECT_EQ(out[1], 1e30f);
  EXPECT_EQ(out[3], -1e30f);
}

TEST(Lorenzo, RejectsSizeMismatch) {
  const std::vector<float> data(10);
  EXPECT_THROW(lorenzo_quantize<float>(data, Dims::make_1d(11), 1e-3, 32768),
               std::invalid_argument);
}

TEST(Lorenzo, RejectsNonPositiveErrorBound) {
  const std::vector<float> data(10);
  EXPECT_THROW(lorenzo_quantize<float>(data, Dims::make_1d(10), 0.0, 32768),
               std::invalid_argument);
  EXPECT_THROW(lorenzo_quantize<float>(data, Dims::make_1d(10), -1.0, 32768),
               std::invalid_argument);
}

TEST(Lorenzo, RejectsTinyRadius) {
  const std::vector<float> data(10);
  EXPECT_THROW(lorenzo_quantize<float>(data, Dims::make_1d(10), 1e-3, 1),
               std::invalid_argument);
}

TEST(Lorenzo, DequantizeDetectsOutlierUnderrun) {
  const std::vector<std::uint32_t> codes{0, 0};  // two outliers expected
  const std::vector<float> outliers{1.0f};       // only one provided
  std::vector<float> out(2);
  EXPECT_THROW(lorenzo_dequantize<float>(codes, outliers, Dims::make_1d(2), 1e-3,
                                         32768, out),
               std::runtime_error);
}

TEST(Lorenzo, DeterministicAcrossCalls) {
  const auto data = smooth_3d(16, 21);
  const Dims dims = Dims::make_3d(16, 16, 16);
  const auto a = lorenzo_quantize<float>(data, dims, 1e-3, 32768);
  const auto b = lorenzo_quantize<float>(data, dims, 1e-3, 32768);
  EXPECT_EQ(a.codes, b.codes);
  EXPECT_EQ(a.outliers, b.outliers);
}

TEST(Lorenzo, SmootherDataYieldsNarrowerCodes) {
  // The Fig.-5 premise: smoother data -> codes concentrated near the
  // zero-residual center -> higher ratio. Verify the concentration.
  const auto smooth = smooth_3d(24, 31);
  util::Rng rng(32);
  std::vector<float> rough(smooth.size());
  for (auto& x : rough) x = static_cast<float>(rng.normal());
  const Dims dims = Dims::make_3d(24, 24, 24);

  auto center_fraction = [&](const std::vector<float>& d) {
    const auto q = lorenzo_quantize<float>(d, dims, 1e-3, 32768);
    std::size_t center = 0;
    for (const auto c : q.codes) center += (c >= 32768 - 2 && c <= 32768 + 2);
    return static_cast<double>(center) / static_cast<double>(q.codes.size());
  };
  EXPECT_GT(center_fraction(smooth), center_fraction(rough));
}

struct BoundCase {
  double eb;
  std::uint32_t radius;
};

class LorenzoBoundSweep : public ::testing::TestWithParam<BoundCase> {};

TEST_P(LorenzoBoundSweep, ErrorBoundInvariant) {
  const auto [eb, radius] = GetParam();
  const auto data = smooth_3d(20, 777);
  const Dims dims = Dims::make_3d(20, 20, 20);
  EXPECT_LE(max_abs_err(data, round_trip(data, dims, eb, radius)), eb);
}

INSTANTIATE_TEST_SUITE_P(
    BoundsAndRadii, LorenzoBoundSweep,
    ::testing::Values(BoundCase{1.0, 32768}, BoundCase{1e-1, 32768},
                      BoundCase{1e-2, 4096}, BoundCase{1e-3, 256},
                      BoundCase{1e-4, 32768}, BoundCase{1e-5, 16},
                      BoundCase{1e-7, 32768}, BoundCase{1e-2, 2}));

}  // namespace
}  // namespace pcw::sz
