#!/usr/bin/env bash
# End-to-end PCW_TRACE smoke test: a bench-sized series write/read run
# with PCW_TRACE set must flush a Perfetto-loadable Chrome trace at
# process exit containing the per-block sz stage spans, the h5 I/O and
# async-queue spans, and the per-step engine spans — and the same run
# with PCW_TRACE unset must leave no trace file behind (the dormant
# contract). Validation is tools/check_trace.py; binaries come from
# CMake: $1 = bench_timeseries, $2 = check_trace.py, $3 = python3.
set -u

bench="$1"
check_trace="$2"
python="$3"
tmpdir="$(mktemp -d)"
trap 'rm -rf "${tmpdir}"' EXIT

fails=0

# Armed run: flush at exit, then validate schema + required span names.
trace="${tmpdir}/trace.json"
if ! PCW_TRACE="${trace}" "${bench}" --smoke >"${tmpdir}/bench.log" 2>&1; then
  echo "FAIL: bench_timeseries --smoke failed under PCW_TRACE"
  tail -5 "${tmpdir}/bench.log"
  fails=$((fails + 1))
elif [[ ! -s "${trace}" ]]; then
  echo "FAIL: PCW_TRACE=${trace} produced no trace file"
  fails=$((fails + 1))
elif ! "${python}" "${check_trace}" "${trace}" \
    --require quantize huffman_encode lz compress step write_exposed \
              pwrite fsync enqueue async_write; then
  echo "FAIL: trace file did not validate"
  fails=$((fails + 1))
else
  echo "ok: armed run flushed a valid trace with the required spans"
fi

# Capped run: the :cap= grammar must parse and still produce a valid file.
capped="${tmpdir}/capped.json"
if PCW_TRACE="${capped}:cap=64" "${bench}" --smoke >/dev/null 2>&1 &&
    "${python}" "${check_trace}" "${capped}" >/dev/null; then
  echo "ok: capped run (cap=64) flushed a valid trace"
else
  echo "FAIL: PCW_TRACE with :cap=64 did not produce a valid trace"
  fails=$((fails + 1))
fi

# Dormant run: no PCW_TRACE, no file. Run in a scratch dir so any stray
# output would be visible.
dormant="${tmpdir}/dormant"
mkdir "${dormant}"
if ! (cd "${dormant}" && "${bench}" --smoke >/dev/null 2>&1); then
  echo "FAIL: bench_timeseries --smoke failed without PCW_TRACE"
  fails=$((fails + 1))
elif compgen -G "${dormant}/*.json" >/dev/null; then
  echo "FAIL: dormant run left trace/JSON files: $(ls "${dormant}")"
  fails=$((fails + 1))
else
  echo "ok: dormant run left no trace file"
fi

if [[ ${fails} -ne 0 ]]; then
  echo "${fails} trace smoke check(s) failed"
  exit 1
fi
echo "all trace smoke checks passed"
