#include <gtest/gtest.h>

#include "model/extra_space.h"

namespace pcw::model {
namespace {

TEST(ExtraSpace, Eq3LeavesLowRatiosUntouched) {
  EXPECT_DOUBLE_EQ(effective_rspace(1.25, 10.0), 1.25);
  EXPECT_DOUBLE_EQ(effective_rspace(1.1, 31.9), 1.1);
}

TEST(ExtraSpace, Eq3BoostsHighRatios) {
  // r = min(2, 1 + (R-1)*4) above ratio 32.
  EXPECT_DOUBLE_EQ(effective_rspace(1.1, 33.0), 1.4);
  EXPECT_DOUBLE_EQ(effective_rspace(1.25, 100.0), 2.0);  // capped
  EXPECT_DOUBLE_EQ(effective_rspace(1.2, 50.0), 1.8);
}

TEST(ExtraSpace, Eq3CapAtTwo) {
  EXPECT_DOUBLE_EQ(effective_rspace(1.43, 64.0), 2.0);
  EXPECT_DOUBLE_EQ(effective_rspace(3.0, 64.0), 2.0);
}

TEST(ExtraSpace, RspaceBelowOneClamped) {
  EXPECT_DOUBLE_EQ(effective_rspace(0.5, 10.0), 1.0);
}

TEST(ExtraSpace, WeightMapEndpoints) {
  EXPECT_DOUBLE_EQ(rspace_for_weight(0.0), kMinRspace);
  EXPECT_DOUBLE_EQ(rspace_for_weight(1.0), kMaxRspace);
}

TEST(ExtraSpace, WeightMapMonotoneAndConcave) {
  double prev = 0.0;
  double prev_gain = 1e9;
  for (int i = 0; i <= 10; ++i) {
    const double r = rspace_for_weight(i / 10.0);
    EXPECT_GE(r, prev);
    if (i > 0) {
      const double gain = r - prev;
      EXPECT_LE(gain, prev_gain + 1e-12);  // concave: diminishing increments
      prev_gain = gain;
    }
    prev = r;
  }
}

TEST(ExtraSpace, WeightMapClampsOutOfRange) {
  EXPECT_DOUBLE_EQ(rspace_for_weight(-1.0), kMinRspace);
  EXPECT_DOUBLE_EQ(rspace_for_weight(2.0), kMaxRspace);
}

TEST(ExtraSpace, DefaultInsideSupportedInterval) {
  EXPECT_GE(kDefaultRspace, kMinRspace);
  EXPECT_LE(kDefaultRspace, kMaxRspace);
}

TEST(ExtraSpace, ReservedBytesAppliesPolicy) {
  EXPECT_DOUBLE_EQ(reserved_bytes(1000.0, 10.0, 1.25), 1250.0);
  // Boosted regime: 1.25 -> 2.0.
  EXPECT_DOUBLE_EQ(reserved_bytes(1000.0, 64.0, 1.25), 2000.0);
}

}  // namespace
}  // namespace pcw::model
